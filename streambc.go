// Package streambc is a scalable online (incremental) betweenness centrality
// library for evolving graphs, reproducing "Scalable Online Betweenness
// Centrality in Evolving Graphs" (Kourtellis, De Francisci Morales, Bonchi —
// ICDE 2016).
//
// The library maintains both vertex betweenness (VBC) and edge betweenness
// (EBC) while edges are added to and removed from a graph, one update at a
// time. A single offline Brandes pass builds the per-source betweenness data;
// afterwards every update only touches the affected region of each source's
// shortest-path DAG, the per-source data can live in memory or out of core on
// disk, and the source set can be partitioned across parallel workers — the
// three ingredients that make the approach scale to large, rapidly changing
// graphs. An approximate mode (WithSampledSources) maintains only a uniform
// sample of k sources with n/k scaling, cutting memory and update cost to
// k/n of exact maintenance in exchange for bounded, unbiased estimation
// error.
//
// Basic usage:
//
//	g := streambc.NewGraph(4)
//	g.AddEdge(0, 1)
//	g.AddEdge(1, 2)
//	g.AddEdge(2, 3)
//
//	s, _ := streambc.New(g)             // offline initialisation (Brandes)
//	s.Apply(streambc.Addition(0, 3))    // online updates
//	s.Apply(streambc.Removal(1, 2))
//	fmt.Println(s.VBC(), s.TopEdges(3)) // always up to date
//	s.Close()
package streambc

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"streambc/internal/bc"
	"streambc/internal/bdstore"
	"streambc/internal/engine"
	"streambc/internal/graph"
	"streambc/internal/incremental"
)

// Graph is a dynamic simple graph with dense integer vertex identifiers.
type Graph = graph.Graph

// Edge identifies an edge by its endpoints (canonical form has U <= V for
// undirected graphs).
type Edge = graph.Edge

// Update is one element of an edge stream: an addition or removal, optionally
// timestamped.
type Update = graph.Update

// Result bundles vertex and edge betweenness scores.
type Result = bc.Result

// Stats reports how much work the stream processor has done.
type Stats = engine.Stats

// NewGraph returns an empty undirected graph with n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewDirectedGraph returns an empty directed graph with n vertices.
func NewDirectedGraph(n int) *Graph { return graph.NewDirected(n) }

// LoadEdgeListFile reads a whitespace-separated edge list from a file.
func LoadEdgeListFile(path string, directed bool) (*Graph, error) {
	return graph.LoadEdgeListFile(path, directed)
}

// Addition builds an edge-addition update.
func Addition(u, v int) Update { return graph.Addition(u, v) }

// Removal builds an edge-removal update.
func Removal(u, v int) Update { return graph.Removal(u, v) }

// ErrBadUpdateWire is wrapped by every DecodeUpdate failure.
var ErrBadUpdateWire = graph.ErrBadUpdateWire

// EncodeUpdate appends the compact binary wire encoding of u to dst and
// returns the extended slice. The encoding is self-delimiting, so updates can
// be packed back to back; it is the on-disk format of the serving layer's
// write-ahead log and a stable way to persist or ship edge streams.
func EncodeUpdate(dst []byte, u Update) []byte { return graph.AppendUpdate(dst, u) }

// DecodeUpdate decodes one update from the front of b, returning the update
// and the number of bytes it occupied. Failures wrap ErrBadUpdateWire.
func DecodeUpdate(b []byte) (Update, int, error) { return graph.DecodeUpdate(b) }

// Betweenness computes vertex and edge betweenness centrality from scratch
// with Brandes' algorithm (no incremental state). Use it for static graphs or
// as a reference; for evolving graphs use New and Apply.
func Betweenness(g *Graph) *Result { return bc.Compute(g) }

// BetweennessParallel is Betweenness with the source set split across the
// given number of workers.
func BetweennessParallel(g *Graph, workers int) *Result { return bc.ComputeParallel(g, workers) }

// options collects the configuration of a Stream.
type options struct {
	workers    int
	diskDir    string
	storeOpts  StoreOptions
	sampleK    int
	sampleSeed int64
	sampled    bool
	shardIdx   int
	shardCnt   int
}

// Option configures New.
type Option func(*options)

// WithWorkers sets the number of parallel workers the stream processor uses
// (default 1). Each worker owns one partition of the source set, exactly like
// one mapper of the paper's parallel deployment.
func WithWorkers(n int) Option {
	return func(o *options) { o.workers = n }
}

// WithDiskStore keeps the per-source betweenness data out of core, in one
// sharded store per worker inside dir (created if needed): worker i owns the
// segment files under dir/worker-00i. Without this option the data stays in
// memory. Records use the columnar layout of Section 5.1 of the paper; for a
// graph with n vertices the stores need roughly 20*n*n bytes in total.
// Reads go through a per-segment mmap view where the platform supports it,
// and writes are batched per apply; WithStoreOptions tunes both.
func WithDiskStore(dir string) Option {
	return func(o *options) { o.diskDir = dir }
}

// StoreOptions tunes the out-of-core store selected by WithDiskStore.
type StoreOptions struct {
	// SegmentRecords is the number of source records grouped into one
	// segment file (0 = the bdstore default, 64). Larger segments mean fewer
	// files and longer sequential runs; smaller segments make background
	// growth rewrites finer-grained.
	SegmentRecords int
	// DisableMmap forces the positional-read fallback even where mmap is
	// available. Scores are bit-identical either way.
	DisableMmap bool
}

// WithStoreOptions overrides the out-of-core store tuning. It only has an
// effect together with WithDiskStore.
func WithStoreOptions(so StoreOptions) Option {
	return func(o *options) { o.storeOpts = so }
}

// WithSampledSources turns on the approximate execution mode: instead of
// maintaining per-source betweenness data for every one of the n vertices,
// the stream maintains it only for a uniform random sample of k sources
// (drawn deterministically from seed) and scales every contribution by n/k,
// which keeps the vertex and edge betweenness estimates unbiased. Memory (or
// disk) footprint, initialisation time and per-update work all drop from
// O(n·n) to O(k·n); accuracy degrades gracefully as k shrinks (the `approx`
// experiment of cmd/bcbench measures the trade-off).
//
// k is clamped to n; k < 1 makes New fail. The sample is fixed for the life
// of the stream — vertices added by later updates are never promoted to
// sources (their betweenness is still estimated, as targets and
// intermediates of the sampled sources' shortest paths) — and is recorded in
// snapshots, so Restore round-trips it. k == n selects every source and is
// bit-identical to the exact mode while no new vertices arrive; on streams
// that grow the graph the two modes diverge, because exact maintenance
// promotes every arrival to a source and a sample never grows.
func WithSampledSources(k int, seed int64) Option {
	return func(o *options) {
		o.sampleK = k
		o.sampleSeed = seed
		o.sampled = true
	}
}

// WithShard restricts the stream to write-path shard i of n: the stream
// applies every update of the graph, but accumulates betweenness only over
// source stride i of n (sources s with s%n == i in exact mode; every n-th
// sampled source in approximate mode), exactly the partial a one-worker
// shard of the serving layer's sharded deployment maintains. Summing the
// partial scores of all n shards over the same stream reproduces the full
// scores exactly — and bit-for-bit equal to an n-worker engine that folds
// its per-worker partials in worker order (cmd/bcrun's -shard flag exposes
// this for offline verification). i must be in [0, n); n < 2 means unsharded.
func WithShard(i, n int) Option {
	return func(o *options) {
		o.shardIdx = i
		o.shardCnt = n
	}
}

// Stream maintains betweenness centrality for an evolving graph.
type Stream struct {
	eng     *engine.Engine
	diskDir string
}

// New runs the offline initialisation (one Brandes pass over every source)
// and returns a Stream ready to consume updates. New takes ownership of g:
// all further mutations must go through Apply.
func New(g *Graph, opts ...Option) (*Stream, error) {
	cfg, econf, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	if err := applySampling(&econf, cfg, g.N()); err != nil {
		return nil, err
	}
	eng, err := engine.New(g, econf)
	if err != nil {
		return nil, err
	}
	return &Stream{eng: eng, diskDir: cfg.diskDir}, nil
}

// applySampling resolves WithSampledSources against the actual vertex count:
// it draws the source sample and sets the n/k estimator scale on the engine
// configuration.
func applySampling(econf *engine.Config, cfg options, n int) error {
	if !cfg.sampled {
		return nil
	}
	if cfg.sampleK < 1 {
		return fmt.Errorf("streambc: sampled source count must be at least 1, got %d", cfg.sampleK)
	}
	if n == 0 {
		return fmt.Errorf("streambc: cannot sample sources of an empty graph")
	}
	k := min(cfg.sampleK, n)
	econf.Sources = bc.SampleSources(n, k, cfg.sampleSeed)
	econf.Scale = float64(n) / float64(k)
	return nil
}

// buildConfig folds the functional options into the engine configuration,
// creating the disk store directory when one is requested. It is shared by
// New and Restore.
func buildConfig(opts []Option) (options, engine.Config, error) {
	cfg := options{workers: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	econf := engine.Config{Workers: cfg.workers}
	if cfg.shardCnt > 1 {
		econf.ShardIndex, econf.ShardCount = cfg.shardIdx, cfg.shardCnt
	}
	if cfg.storeOpts.SegmentRecords < 0 || cfg.storeOpts.SegmentRecords > bdstore.MaxSegmentRecords {
		return cfg, econf, fmt.Errorf("streambc: segment records must be in [1, %d] (or 0 for the default), got %d",
			bdstore.MaxSegmentRecords, cfg.storeOpts.SegmentRecords)
	}
	if cfg.diskDir != "" {
		if err := os.MkdirAll(cfg.diskDir, 0o755); err != nil {
			return cfg, econf, fmt.Errorf("streambc: creating disk store directory: %w", err)
		}
		econf.Store = engine.DiskFactoryOpts(cfg.diskDir, bdstore.Options{
			SegmentRecords: cfg.storeOpts.SegmentRecords,
			DisableMmap:    cfg.storeOpts.DisableMmap,
		})
	}
	return cfg, econf, nil
}

// Apply consumes one update (edge addition or removal) and brings all
// betweenness scores up to date. Updates referencing unseen vertex
// identifiers grow the graph automatically.
func (s *Stream) Apply(upd Update) error { return s.eng.Apply(upd) }

// ApplyAll applies a whole stream of updates in order, one at a time, and
// returns how many were applied before the first error (if any). Use
// ApplyBatch to amortise per-source store I/O across the stream.
func (s *Stream) ApplyAll(updates []Update) (int, error) { return s.eng.ApplyAll(updates) }

// ApplyBatch applies a batch of updates as one unit. The updates are applied
// in order and the resulting scores are bit-identical to sequential Apply
// calls on the same stream, but each affected source's betweenness data is
// loaded at most once and saved at most once for the whole batch — the
// difference between one disk read/write per (source, update) and one per
// (source, batch) in the out-of-core configuration. It returns the number of
// updates applied before the first error, if any.
func (s *Stream) ApplyBatch(updates []Update) (int, error) { return s.eng.ApplyBatch(updates) }

// Graph returns the current graph. Treat it as read-only.
func (s *Stream) Graph() *Graph { return s.eng.Graph() }

// Result returns the live betweenness scores (owned by the Stream).
func (s *Stream) Result() *Result { return s.eng.Result() }

// VBC returns the current vertex betweenness scores, indexed by vertex.
// The slice is owned by the Stream; do not modify it.
func (s *Stream) VBC() []float64 { return s.eng.VBC() }

// EBC returns the current edge betweenness scores keyed by canonical edge.
// The map is owned by the Stream; do not modify it.
func (s *Stream) EBC() map[Edge]float64 { return s.eng.EBC() }

// VertexBetweenness returns the betweenness of a single vertex (0 for
// unknown identifiers).
func (s *Stream) VertexBetweenness(v int) float64 {
	vbc := s.eng.VBC()
	if v < 0 || v >= len(vbc) {
		return 0
	}
	return vbc[v]
}

// EdgeBetweenness returns the betweenness of the edge (u,v), or 0 if the edge
// does not exist.
func (s *Stream) EdgeBetweenness(u, v int) float64 {
	return s.eng.EBC()[bc.EdgeKey(s.eng.Graph(), u, v)]
}

// Stats returns cumulative work counters (updates applied, sources skipped
// thanks to the distance probe, sources updated).
func (s *Stream) Stats() Stats { return s.eng.Stats() }

// Workers returns the number of parallel workers.
func (s *Stream) Workers() int { return s.eng.Workers() }

// Sampled reports whether the stream runs in the sampled-source approximate
// mode (WithSampledSources).
func (s *Stream) Sampled() bool { return s.eng.Sampled() }

// SampledSources returns a copy of the sampled source set, in ascending
// order, or nil in exact mode.
func (s *Stream) SampledSources() []int { return s.eng.SampledSources() }

// SampleScale returns the estimator factor applied to every betweenness
// contribution: n/k in sampled mode, 1 in exact mode.
func (s *Stream) SampleScale() float64 { return s.eng.Scale() }

// Close releases the per-source stores (and their disk files' handles).
func (s *Stream) Close() error { return s.eng.Close() }

// VertexScore pairs a vertex with its betweenness.
type VertexScore = bc.VertexScore

// EdgeScore pairs an edge with its betweenness.
type EdgeScore = bc.EdgeScore

// TopVertices returns the k vertices with the highest betweenness, in
// decreasing order (ties broken by vertex identifier).
func (s *Stream) TopVertices(k int) []VertexScore {
	return TopVertices(s.Result(), k)
}

// TopEdges returns the k edges with the highest betweenness, in decreasing
// order (ties broken by edge order).
func (s *Stream) TopEdges(k int) []EdgeScore {
	return TopEdges(s.Result(), k)
}

// TopVertices returns the k highest-betweenness vertices of a result.
// Out-of-range values of k are clamped to [0, n].
func TopVertices(res *Result, k int) []VertexScore { return bc.TopVertices(res, k) }

// TopEdges returns the k highest-betweenness edges of a result.
// Out-of-range values of k are clamped to [0, m].
func TopEdges(res *Result, k int) []EdgeScore { return bc.TopEdges(res, k) }

// Updater is the single-machine, sequential form of the stream processor: the
// same per-source algorithm without the worker pool. It is mostly useful for
// embedding in other tools (the parallel Stream is built on the same
// primitives) and for benchmarks that isolate the algorithmic speedup from
// the parallel speedup.
type Updater = incremental.Updater

// ReplayReport summarises an online replay of a timestamped stream: how many
// updates were not processed before the next one arrived, and by how much
// they were late.
type ReplayReport = engine.ReplayReport

// Replay feeds a timestamped update stream to the Stream, measuring the
// processing time of every update and reporting which updates would have
// missed their online deadline (the next arrival), as in Section 6.2 of the
// paper.
func (s *Stream) Replay(stream []Update) (*ReplayReport, error) {
	return engine.Replay(s.eng, stream)
}

// DiskFiles returns the files backing the per-worker disk stores when the
// stream was created with WithDiskStore, or (nil, nil) otherwise: every
// worker's MANIFEST and segment files in the sharded v2 layout, plus any
// legacy v1 bd-worker-*.bin files found in the directory. A failure to walk
// the directory is reported instead of being silently swallowed.
func (s *Stream) DiskFiles() ([]string, error) {
	if s.diskDir == "" {
		return nil, nil
	}
	var files []string
	err := filepath.WalkDir(s.diskDir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		switch {
		case strings.HasSuffix(path, ".bds"),
			strings.HasSuffix(path, ".bin"),
			filepath.Base(path) == "MANIFEST":
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("streambc: listing disk store files: %w", err)
	}
	sort.Strings(files)
	return files, nil
}
