package streambc

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestStreamSnapshotRestore(t *testing.T) {
	g := GenerateRandomGraph(40, 90, 4)
	s, err := New(g.Clone(), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	adds, err := RandomAdditions(s.Graph(), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyAll(adds); err != nil {
		t.Fatal(err)
	}
	if err := s.Apply(Removal(adds[0].U, adds[0].V)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	// Restore into a different configuration: out of core, more workers.
	dir := t.TempDir()
	r, err := Restore(bytes.NewReader(buf.Bytes()), WithWorkers(3), WithDiskStore(dir))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer r.Close()

	if got, want := r.Stats().UpdatesApplied, s.Stats().UpdatesApplied; got != want {
		t.Fatalf("restored applied offset = %d, want %d", got, want)
	}
	if r.Graph().N() != s.Graph().N() || r.Graph().M() != s.Graph().M() {
		t.Fatalf("restored graph %d/%d, want %d/%d", r.Graph().N(), r.Graph().M(), s.Graph().N(), s.Graph().M())
	}
	for v, x := range s.VBC() {
		if r.VBC()[v] != x {
			t.Fatalf("restored VBC[%d] = %v, want exact %v", v, r.VBC()[v], x)
		}
	}
	for e, x := range s.EBC() {
		if r.EBC()[e] != x {
			t.Fatalf("restored EBC[%v] = %v, want exact %v", e, r.EBC()[e], x)
		}
	}
	files, err := r.DiskFiles()
	if err != nil {
		t.Fatalf("DiskFiles: %v", err)
	}
	manifests, segments := 0, 0
	for _, f := range files {
		switch {
		case filepath.Base(f) == "MANIFEST":
			manifests++
		case strings.HasSuffix(f, ".bds"):
			segments++
		}
	}
	if manifests != 3 || segments < 3 {
		t.Fatalf("restored DiskFiles = %v, want one MANIFEST and at least one segment per worker", files)
	}

	// The restored stream must stay exact under further updates.
	upd := Addition(0, 41)
	if err := s.Apply(upd); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(upd); err != nil {
		t.Fatal(err)
	}
	want := Betweenness(r.Graph())
	for v := range want.VBC {
		if d := want.VBC[v] - r.VBC()[v]; d > 1e-7 || d < -1e-7 {
			t.Fatalf("post-restore VBC[%d] = %v, want %v", v, r.VBC()[v], want.VBC[v])
		}
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore(strings.NewReader("definitely not a snapshot")); err == nil {
		t.Fatal("Restore must reject malformed input")
	}
}

func TestTopKClamping(t *testing.T) {
	s, err := New(buildPath(t, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if got := s.TopVertices(-3); len(got) != 0 {
		t.Fatalf("TopVertices(-3) = %v, want empty", got)
	}
	if got := s.TopVertices(100); len(got) != 4 {
		t.Fatalf("TopVertices(100) returned %d scores, want all 4", len(got))
	}
	if got := s.TopEdges(-1); len(got) != 0 {
		t.Fatalf("TopEdges(-1) = %v, want empty", got)
	}
	if got := s.TopEdges(100); len(got) != 3 {
		t.Fatalf("TopEdges(100) returned %d scores, want all 3", len(got))
	}
	// Decreasing order with deterministic tie-breaks.
	top := s.TopVertices(4)
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatalf("TopVertices not sorted: %v", top)
		}
	}
}

func TestDiskFilesHandlesGlobMetacharacters(t *testing.T) {
	// The glob-based v1 listing choked on store directories whose names were
	// malformed glob patterns; the walk-based listing must handle them.
	dir := filepath.Join(t.TempDir(), "bad[dir")
	s, err := New(buildPath(t, 4), WithDiskStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	files, err := s.DiskFiles()
	if err != nil {
		t.Fatalf("DiskFiles: %v", err)
	}
	if len(files) == 0 {
		t.Fatal("DiskFiles returned no files for a disk-backed stream")
	}
}
