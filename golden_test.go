package streambc

// Golden bit-identity test of the incremental engine on the disk-replay
// workload. The golden file was captured from the engine BEFORE the CSR
// refactor of the graph core (PR 7) and is deliberately never regenerated in
// CI: it pins the exact float64 bit patterns of every vertex and edge score,
// so any change to traversal order, accumulation grouping or graph layout
// that perturbs even one ULP fails this test. Regenerate only for an
// intentional, understood change to the scores themselves:
//
//	go test -run TestDiskReplayScoresGolden -update-golden .
//
// Scores are stored as hexadecimal IEEE-754 bit patterns, not decimals, so
// the comparison is exact by construction.

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden score files")

const goldenPath = "testdata/diskreplay_scores.json"

// goldenScores is the serialised form of one engine configuration's scores.
type goldenScores struct {
	VBC []string          `json:"vbc"` // float64 bits, hex, one per vertex
	EBC map[string]string `json:"ebc"` // "u-v" -> float64 bits, hex
}

type goldenFile struct {
	// Applied is the number of stream updates applied before capture; it ends
	// mid add/remove pair so the final graph differs from the initial one and
	// both the addition and the removal paths of the kernel are exercised.
	Applied int                     `json:"applied"`
	Configs map[string]goldenScores `json:"configs"`
}

func captureScores(t *testing.T, s *Stream) goldenScores {
	t.Helper()
	res := s.Result()
	g := goldenScores{
		VBC: make([]string, len(res.VBC)),
		EBC: make(map[string]string, len(res.EBC)),
	}
	for v, x := range res.VBC {
		g.VBC[v] = fmt.Sprintf("%016x", math.Float64bits(x))
	}
	for e, x := range res.EBC {
		g.EBC[fmt.Sprintf("%d-%d", e.U, e.V)] = fmt.Sprintf("%016x", math.Float64bits(x))
	}
	return g
}

// runGoldenConfig replays the deterministic disk-replay stream through one
// engine configuration and returns the captured scores.
func runGoldenConfig(t *testing.T, opts ...Option) goldenScores {
	t.Helper()
	g, pairs := diskReplayWorkload(t, 400, 32)
	s, err := New(g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const applied = 49 // three batches of 16 plus one single Apply; odd, so it ends mid-pair
	stream := pairs[:applied-1]
	for off := 0; off < len(stream); off += 16 {
		end := min(off+16, len(stream))
		if _, err := s.ApplyBatch(stream[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	// One unbatched Apply so the batch-of-one path is pinned too.
	if err := s.Apply(pairs[applied-1]); err != nil {
		t.Fatal(err)
	}
	return captureScores(t, s)
}

func TestDiskReplayScoresGolden(t *testing.T) {
	got := goldenFile{
		Applied: 49,
		Configs: map[string]goldenScores{
			"disk-1worker": runGoldenConfig(t, WithDiskStore(t.TempDir())),
			"mem-4workers": runGoldenConfig(t, WithWorkers(4)),
		},
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		b, err := json.MarshalIndent(&got, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if got.Applied != want.Applied {
		t.Fatalf("applied %d updates, golden captured after %d", got.Applied, want.Applied)
	}
	for name, w := range want.Configs {
		cur, ok := got.Configs[name]
		if !ok {
			t.Errorf("config %s missing from run", name)
			continue
		}
		compareGolden(t, name, w, cur)
	}
}

func compareGolden(t *testing.T, name string, want, got goldenScores) {
	t.Helper()
	if len(got.VBC) != len(want.VBC) {
		t.Errorf("%s: %d vertex scores, golden has %d", name, len(got.VBC), len(want.VBC))
		return
	}
	bad := 0
	for v := range want.VBC {
		if got.VBC[v] != want.VBC[v] {
			if bad < 5 {
				t.Errorf("%s: VBC[%d] = %s, golden %s", name, v, got.VBC[v], want.VBC[v])
			}
			bad++
		}
	}
	if len(got.EBC) != len(want.EBC) {
		t.Errorf("%s: %d edge scores, golden has %d", name, len(got.EBC), len(want.EBC))
	}
	keys := make([]string, 0, len(want.EBC))
	for k := range want.EBC {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if got.EBC[k] != want.EBC[k] {
			if bad < 10 {
				t.Errorf("%s: EBC[%s] = %s, golden %s", name, k, got.EBC[k], want.EBC[k])
			}
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("%s: %d score mismatches vs pre-CSR golden", name, bad)
	}
}
