package streambc

import (
	"streambc/internal/community"
	"streambc/internal/gen"
)

// This file exposes the workload generators and the Girvan-Newman use case
// through the public API, so that examples and downstream users do not need
// access to the internal packages.

// GenerateSocialGraph generates a connected social-network-like graph with n
// vertices using preferential attachment with triad closure (Holme-Kim):
// heavy-tailed degrees and tunable clustering, the same qualitative structure
// as the synthetic graphs of the paper. attach is the number of edges each
// arriving vertex creates (average degree ~= 2*attach); closure in [0,1]
// controls the clustering coefficient.
func GenerateSocialGraph(n, attach int, closure float64, seed int64) *Graph {
	return gen.Connected(gen.HolmeKim(n, attach, closure, seed))
}

// GenerateRandomGraph generates a connected Erdős–Rényi style graph with
// (close to) m edges.
func GenerateRandomGraph(n, m int, seed int64) *Graph {
	return gen.Connected(gen.ErdosRenyi(n, m, seed))
}

// GenerateCommunityGraph generates a planted-partition graph with the given
// number of communities of equal size and returns it together with the
// ground-truth community of each vertex.
func GenerateCommunityGraph(communities, size int, pIn, pOut float64, seed int64) (*Graph, []int) {
	return gen.PlantedPartition(communities, size, pIn, pOut, seed)
}

// RandomAdditions builds an update stream of count additions between
// unconnected vertex pairs of g.
func RandomAdditions(g *Graph, count int, seed int64) ([]Update, error) {
	return gen.RandomAdditions(g, count, seed)
}

// RandomRemovals builds an update stream of count removals of existing edges
// of g.
func RandomRemovals(g *Graph, count int, seed int64) ([]Update, error) {
	return gen.RandomRemovals(g, count, seed)
}

// MixedUpdates builds a replayable stream that interleaves additions and
// removals (removeFraction of the updates are removals).
func MixedUpdates(g *Graph, count int, removeFraction float64, seed int64) ([]Update, error) {
	return gen.MixedStream(g, count, removeFraction, seed)
}

// TimestampUpdates assigns bursty arrival times (mean inter-arrival gap in
// seconds) to a copy of the update stream, for use with Stream.Replay.
func TimestampUpdates(updates []Update, meanGapSeconds, burstiness float64, seed int64) []Update {
	return gen.Timestamp(updates, gen.ArrivalModel{MeanGap: meanGapSeconds, Burstiness: burstiness}, seed)
}

// Communities is the result of a Girvan-Newman decomposition.
type Communities = community.Result

// CommunityOptions controls DetectCommunities.
type CommunityOptions struct {
	// MaxRemovals bounds the number of edges removed (0 = no bound).
	MaxRemovals int
	// TargetCommunities stops the decomposition once the graph has split into
	// at least this many components (0 = ignore).
	TargetCommunities int
	// Recompute switches to the baseline that reruns Brandes after every
	// removal instead of using the incremental framework.
	Recompute bool
}

// DetectCommunities runs Girvan-Newman community detection on g (undirected),
// driven by incrementally maintained edge betweenness.
func DetectCommunities(g *Graph, opts CommunityOptions) (*Communities, error) {
	method := community.Incremental
	if opts.Recompute {
		method = community.Recompute
	}
	return community.Detect(g, community.Options{
		Method:            method,
		MaxRemovals:       opts.MaxRemovals,
		TargetCommunities: opts.TargetCommunities,
	})
}
