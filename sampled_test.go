package streambc

import (
	"bytes"
	"math"
	"testing"
)

// sampledConfigs enumerates the store/worker matrix the differential test
// covers.
var sampledConfigs = []struct {
	name    string
	workers int
	disk    bool
}{
	{"mem-1w", 1, false},
	{"mem-4w", 4, false},
	{"disk-1w", 1, true},
	{"disk-4w", 4, true},
}

// TestFullSampleBitIdenticalToExact checks, for every store/worker
// configuration, that WithSampledSources(n, seed) — a sample of every vertex,
// scale 1 — produces scores bit-identical to the default exact mode on a
// stream that adds no new vertices (on growing streams the modes are
// documented to diverge: exact maintenance promotes arrivals to sources, a
// sample never grows). The exact mode itself is untouched by the sampling
// code (scale 1 bypasses the scaled accumulator), so this pins the k = n
// sampled path to today's exact scores.
func TestFullSampleBitIdenticalToExact(t *testing.T) {
	base := GenerateSocialGraph(80, 3, 0.5, 11)
	n := base.N()
	updates, err := MixedUpdates(base, 20, 0.4, 7)
	if err != nil {
		t.Fatal(err)
	}

	for _, cfgCase := range sampledConfigs {
		t.Run(cfgCase.name, func(t *testing.T) {
			exactOpts := []Option{WithWorkers(cfgCase.workers)}
			sampledOpts := []Option{WithWorkers(cfgCase.workers), WithSampledSources(n, 1)}
			if cfgCase.disk {
				exactOpts = append(exactOpts, WithDiskStore(t.TempDir()))
				sampledOpts = append(sampledOpts, WithDiskStore(t.TempDir()))
			}

			exact, err := New(base.Clone(), exactOpts...)
			if err != nil {
				t.Fatalf("New exact: %v", err)
			}
			defer exact.Close()
			sampled, err := New(base.Clone(), sampledOpts...)
			if err != nil {
				t.Fatalf("New sampled: %v", err)
			}
			defer sampled.Close()
			if !sampled.Sampled() || sampled.SampleScale() != 1 {
				t.Fatalf("full sample: Sampled=%v scale=%g", sampled.Sampled(), sampled.SampleScale())
			}

			if _, err := exact.ApplyBatch(updates); err != nil {
				t.Fatalf("exact ApplyBatch: %v", err)
			}
			if _, err := sampled.ApplyBatch(updates); err != nil {
				t.Fatalf("sampled ApplyBatch: %v", err)
			}

			ev, sv := exact.VBC(), sampled.VBC()
			if len(ev) != len(sv) {
				t.Fatalf("VBC lengths differ: %d vs %d", len(ev), len(sv))
			}
			for v := range ev {
				if ev[v] != sv[v] {
					t.Fatalf("VBC[%d]: exact %v != full-sample %v", v, ev[v], sv[v])
				}
			}
			ee, se := exact.EBC(), sampled.EBC()
			if len(ee) != len(se) {
				t.Fatalf("EBC sizes differ: %d vs %d", len(ee), len(se))
			}
			for e, x := range ee {
				if se[e] != x {
					t.Fatalf("EBC[%v]: exact %v != full-sample %v", e, x, se[e])
				}
			}
		})
	}
}

// avgSampledError replays the updates at sample size k for several sample
// seeds and returns the mean floored relative VBC error against the exact
// scores.
func avgSampledError(t *testing.T, base *Graph, updates []Update, exactVBC []float64, k int) float64 {
	t.Helper()
	maxExact := 0.0
	for _, x := range exactVBC {
		maxExact = math.Max(maxExact, x)
	}
	floor := 0.01 * maxExact
	total := 0.0
	seeds := []int64{3, 17, 101}
	for _, seed := range seeds {
		s, err := New(base.Clone(), WithSampledSources(k, seed))
		if err != nil {
			t.Fatalf("New sampled k=%d: %v", k, err)
		}
		if _, err := s.ApplyBatch(updates); err != nil {
			s.Close()
			t.Fatalf("sampled ApplyBatch k=%d: %v", k, err)
		}
		sum := 0.0
		for v, x := range s.VBC() {
			sum += math.Abs(x-exactVBC[v]) / math.Max(exactVBC[v], floor)
		}
		total += sum / float64(len(exactVBC))
		s.Close()
	}
	return total / float64(len(seeds))
}

// TestSampledEstimatesConvergeWithK checks the statistical behaviour of the
// estimator: the mean relative VBC error shrinks as the sample grows, and is
// small in absolute terms at k = n/2. All seeds are fixed, so the measured
// errors are deterministic; the thresholds below leave generous headroom over
// the observed values.
func TestSampledEstimatesConvergeWithK(t *testing.T) {
	base := GenerateSocialGraph(160, 3, 0.5, 19)
	n := base.N()
	updates, err := MixedUpdates(base, 16, 0.4, 23)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := New(base.Clone())
	if err != nil {
		t.Fatalf("New exact: %v", err)
	}
	defer exact.Close()
	if _, err := exact.ApplyBatch(updates); err != nil {
		t.Fatalf("exact ApplyBatch: %v", err)
	}
	exactVBC := append([]float64(nil), exact.VBC()...)

	small := avgSampledError(t, base, updates, exactVBC, n/8)
	large := avgSampledError(t, base, updates, exactVBC, n/2)
	t.Logf("mean relative VBC error: k=n/8 %.4f, k=n/2 %.4f", small, large)
	if large >= small {
		t.Fatalf("error did not shrink with k: k=n/8 %.4f <= k=n/2 %.4f", small, large)
	}
	if large > 0.5 {
		t.Fatalf("mean relative error at k=n/2 too large: %.4f", large)
	}
}

// TestSampledSnapshotRoundTripsViaAPI checks that Snapshot/Restore preserves
// the sampled mode end to end through the public API: sample, scale and
// scores round-trip, and the restored stream continues identically.
func TestSampledSnapshotRoundTripsViaAPI(t *testing.T) {
	base := GenerateSocialGraph(60, 3, 0.5, 5)
	n := base.N()
	updates, err := MixedUpdates(base, 16, 0.4, 9)
	if err != nil {
		t.Fatal(err)
	}

	s, err := New(base.Clone(), WithWorkers(2), WithSampledSources(n/3, 77))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer s.Close()
	if _, err := s.ApplyBatch(updates[:8]); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}

	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	// Restore with a conflicting sampling option: the snapshot's sample wins.
	r, err := Restore(bytes.NewReader(buf.Bytes()), WithWorkers(2), WithSampledSources(2, 1))
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer r.Close()

	want, got := s.SampledSources(), r.SampledSources()
	if len(want) != len(got) {
		t.Fatalf("restored sample %v, want %v", got, want)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("restored sample %v, want %v", got, want)
		}
	}
	if r.SampleScale() != s.SampleScale() {
		t.Fatalf("restored scale %g, want %g", r.SampleScale(), s.SampleScale())
	}
	for v := range s.VBC() {
		if r.VBC()[v] != s.VBC()[v] {
			t.Fatalf("restored VBC[%d] = %v, want %v", v, r.VBC()[v], s.VBC()[v])
		}
	}

	rest := updates[8:]
	if _, err := s.ApplyBatch(rest); err != nil {
		t.Fatalf("original continue: %v", err)
	}
	if _, err := r.ApplyBatch(rest); err != nil {
		t.Fatalf("restored continue: %v", err)
	}
	for v := range s.VBC() {
		if !approx(r.VBC()[v], s.VBC()[v]) {
			t.Fatalf("post-restore VBC[%d] = %g, want %g", v, r.VBC()[v], s.VBC()[v])
		}
	}
}

// TestSampledOptionValidation pins the error behaviour of WithSampledSources.
func TestSampledOptionValidation(t *testing.T) {
	if _, err := New(buildPath(t, 4), WithSampledSources(0, 1)); err == nil {
		t.Fatal("New accepted a sample size of 0")
	}
	if _, err := New(NewGraph(0), WithSampledSources(3, 1)); err == nil {
		t.Fatal("New accepted sampling an empty graph")
	}
	// k > n clamps to n (exact-equivalent), it does not fail.
	s, err := New(buildPath(t, 4), WithSampledSources(99, 1))
	if err != nil {
		t.Fatalf("New with k > n: %v", err)
	}
	defer s.Close()
	if got := len(s.SampledSources()); got != 4 {
		t.Fatalf("clamped sample size = %d, want 4", got)
	}
	if s.SampleScale() != 1 {
		t.Fatalf("clamped scale = %g, want 1", s.SampleScale())
	}
}
