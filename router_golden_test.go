package streambc

// Golden bit-identity test of the sharded write path. The router's merged
// scores are pinned to the SAME golden file as the single-process engine
// (testdata/diskreplay_scores.json): a cluster of one disk-backed shard must
// reproduce the "disk-1worker" bits, and a four-shard cluster must reproduce
// the "mem-4workers" bits, because the router's update-major shard-order
// merge performs exactly the reduce fold of a 4-worker engine. The golden is
// never regenerated here — if these comparisons fail, the sharded write path
// has drifted from the engine, not the other way round.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"streambc/internal/bc"
	"streambc/internal/engine"
	"streambc/internal/router"
	"streambc/internal/server"
)

// captureResultScores formats a merged result the way the golden file stores
// scores: hexadecimal IEEE-754 bit patterns.
func captureResultScores(res *bc.Result) goldenScores {
	g := goldenScores{
		VBC: make([]string, len(res.VBC)),
		EBC: make(map[string]string, len(res.EBC)),
	}
	for v, x := range res.VBC {
		g.VBC[v] = fmt.Sprintf("%016x", math.Float64bits(x))
	}
	for e, x := range res.EBC {
		g.EBC[fmt.Sprintf("%d-%d", e.U, e.V)] = fmt.Sprintf("%016x", math.Float64bits(x))
	}
	return g
}

// runRouterGoldenConfig replays the golden disk-replay workload — the same
// graph, stream, batching (three batches of 16 plus one single update) and
// applied count as runGoldenConfig — through a shard cluster behind a router
// and returns the merged scores.
func runRouterGoldenConfig(t *testing.T, shards int, disk bool) goldenScores {
	t.Helper()
	g, pairs := diskReplayWorkload(t, 400, 32)
	conns := make([]router.ShardConn, shards)
	for i := 0; i < shards; i++ {
		cfg := engine.Config{Workers: 1}
		if shards > 1 {
			cfg.ShardIndex, cfg.ShardCount = i, shards
		}
		dir := t.TempDir()
		if disk {
			store := filepath.Join(dir, "store")
			if err := os.MkdirAll(store, 0o755); err != nil {
				t.Fatal(err)
			}
			cfg.Store = engine.DiskFactory(store)
		}
		eng, err := engine.New(g.Clone(), cfg)
		if err != nil {
			t.Fatalf("shard %d engine: %v", i, err)
		}
		wal, err := server.OpenWAL(server.WALConfig{Dir: filepath.Join(dir, "wal")}, 0)
		if err != nil {
			t.Fatalf("shard %d WAL: %v", i, err)
		}
		srv := server.New(eng, server.Config{WAL: wal, SnapshotDir: dir})
		srv.Start()
		t.Cleanup(func() {
			srv.Close()
			eng.Close()
		})
		conns[i] = router.NewLocalShard(fmt.Sprintf("shard%d", i), srv)
	}
	rt, err := router.New(context.Background(), router.Config{Shards: conns})
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	rt.Start()
	t.Cleanup(func() { rt.Close() })

	apply := func(ups []Update) {
		t.Helper()
		b, err := rt.Enqueue(ups)
		if err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := b.Wait(ctx); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if errs := b.Errs(); len(errs) > 0 {
			t.Fatalf("batch errors: %v", errs)
		}
	}
	const applied = 49 // mirrors runGoldenConfig exactly
	stream := pairs[:applied-1]
	for off := 0; off < len(stream); off += 16 {
		apply(stream[off:min(off+16, len(stream))])
	}
	apply([]Update{pairs[applied-1]})

	res, seq := rt.Result()
	if want := uint64(len(stream)/16 + 1); seq != want {
		t.Fatalf("router merged %d records, want %d", seq, want)
	}
	return captureResultScores(res)
}

// TestRouterDiskReplayScoresGolden replays the golden workload through shard
// clusters and compares the merged scores against the pinned single-process
// bits, key by key. Never regenerates the golden file.
func TestRouterDiskReplayScoresGolden(t *testing.T) {
	if *updateGolden {
		t.Skip("the golden file is owned by TestDiskReplayScoresGolden; the router must match it, not redefine it")
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	got := map[string]goldenScores{
		"disk-1worker": runRouterGoldenConfig(t, 1, true),
		"mem-4workers": runRouterGoldenConfig(t, 4, false),
	}
	for name, g := range got {
		w, ok := want.Configs[name]
		if !ok {
			t.Fatalf("golden file has no config %s", name)
		}
		compareGolden(t, "router/"+name, w, g)
	}
}
