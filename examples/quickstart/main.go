// Quickstart: build a small graph, initialise the stream processor once, then
// keep vertex and edge betweenness up to date while edges are added and
// removed online.
package main

import (
	"fmt"
	"log"

	"streambc"
)

func main() {
	// A small collaboration network: two tight groups joined by a bridge.
	//
	//   0 - 1         5 - 6
	//   | X |   3-4   | X |
	//   2 - +         + - 7
	//
	g := streambc.NewGraph(8)
	edges := [][2]int{
		{0, 1}, {0, 2}, {1, 2}, {1, 3}, // left triangle + link to the bridge
		{3, 4},                         // the bridge
		{4, 5}, {5, 6}, {5, 7}, {6, 7}, // right triangle + link to the bridge
	}
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}

	// Offline step: one Brandes pass builds the per-source betweenness data.
	stream, err := streambc.New(g)
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Close()

	fmt.Println("== initial graph ==")
	printTop(stream)

	// Online step: updates arrive one by one and the scores stay up to date.
	updates := []streambc.Update{
		streambc.Addition(2, 4), // a second route to the bridge
		streambc.Addition(0, 8), // a brand new vertex joins
		streambc.Removal(3, 4),  // the original bridge disappears
	}
	for _, upd := range updates {
		if err := stream.Apply(upd); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== after %v ==\n", upd)
		printTop(stream)
	}

	// Batched step: a whole burst of updates applied as one unit. The
	// updates are still applied in order (the scores are bit-identical to
	// calling Apply once per update), but each affected source's betweenness
	// data is loaded and saved only once for the whole batch — the win that
	// matters when the data lives on disk (WithDiskStore).
	burst := []streambc.Update{
		streambc.Addition(3, 4), // the bridge returns
		streambc.Addition(2, 6), // a shortcut across the groups...
		streambc.Removal(2, 6),  // ...that is immediately retracted
	}
	if _, err := stream.ApplyBatch(burst); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== after a batch of %d updates ==\n", len(burst))
	printTop(stream)

	stats := stream.Stats()
	fmt.Printf("\nprocessed %d updates; skipped %d source iterations, updated %d\n",
		stats.UpdatesApplied, stats.SourcesSkipped, stats.SourcesUpdated)
}

func printTop(s *streambc.Stream) {
	fmt.Println("  top vertices:")
	for _, v := range s.TopVertices(3) {
		fmt.Printf("    vertex %d  betweenness %.1f\n", v.Vertex, v.Score)
	}
	fmt.Println("  top edges:")
	for _, e := range s.TopEdges(3) {
		fmt.Printf("    edge (%d,%d)  betweenness %.1f\n", e.Edge.U, e.Edge.V, e.Score)
	}
}
