// Outofcore: run the stream processor with the per-source betweenness data on
// disk, split across several workers — the configuration that lets the paper
// scale to graphs whose O(n^2) state does not fit in memory. The example
// shows the columnar store files, applies a burst of updates, and verifies
// the maintained scores against a from-scratch recomputation.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"streambc"
)

func main() {
	const (
		vertices = 1500
		workers  = 4
		updates  = 50
	)

	dir, err := os.MkdirTemp("", "streambc-outofcore-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	g := streambc.GenerateSocialGraph(vertices, 5, 0.5, 11)
	fmt.Printf("graph: %d vertices, %d edges\n", g.N(), g.M())
	fmt.Printf("per-source data: %d records of %d entries each (~%.1f MB on disk)\n",
		g.N(), g.N(), float64(g.N())*float64(g.N())*20/1e6)

	start := time.Now()
	s, err := streambc.New(g.Clone(),
		streambc.WithWorkers(workers),
		streambc.WithDiskStore(dir),
		// 128 sources per segment file: fewer, larger files than the default.
		streambc.WithStoreOptions(streambc.StoreOptions{SegmentRecords: 128}))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	fmt.Printf("offline initialisation (Brandes over %d sources, %d workers): %s\n",
		g.N(), workers, time.Since(start).Round(time.Millisecond))

	// Each worker owns a sharded store directory: a MANIFEST plus segment
	// files of fixed-size records, grouped by source-id prefix.
	files, err := s.DiskFiles()
	if err != nil {
		log.Fatal(err)
	}
	type workerFiles struct {
		segments int
		bytes    int64
	}
	perWorker := map[string]*workerFiles{}
	for _, path := range files {
		info, err := os.Stat(path)
		if err != nil {
			log.Fatal(err)
		}
		worker := path
		for filepath.Dir(worker) != dir {
			worker = filepath.Dir(worker)
		}
		wf := perWorker[worker]
		if wf == nil {
			wf = &workerFiles{}
			perWorker[worker] = wf
		}
		wf.bytes += info.Size()
		if filepath.Ext(path) == ".bds" {
			wf.segments++
		}
	}
	fmt.Println("worker store directories:")
	workersSorted := make([]string, 0, len(perWorker))
	for w := range perWorker {
		workersSorted = append(workersSorted, w)
	}
	sort.Strings(workersSorted)
	for _, w := range workersSorted {
		wf := perWorker[w]
		// Segment files are created sparse: with strided source partitions
		// most slots of every worker's segments are holes, so the apparent
		// size overstates what the filesystem actually allocates.
		fmt.Printf("  %-14s %3d segment files %8.2f MB apparent (sparse)\n",
			filepath.Base(w), wf.segments, float64(wf.bytes)/1e6)
	}

	stream, err := streambc.MixedUpdates(g, updates, 0.3, 12)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if _, err := s.ApplyAll(stream); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	fmt.Printf("applied %d updates out of core in %s (%.1f ms per update)\n",
		len(stream), elapsed.Round(time.Millisecond), float64(elapsed.Milliseconds())/float64(len(stream)))

	// Cross-check the online scores against a from-scratch computation.
	start = time.Now()
	want := streambc.Betweenness(s.Graph())
	fmt.Printf("from-scratch Brandes on the final graph: %s\n", time.Since(start).Round(time.Millisecond))

	maxErr := 0.0
	for v, score := range s.VBC() {
		if diff := math.Abs(score - want.VBC[v]); diff > maxErr {
			maxErr = diff
		}
	}
	fmt.Printf("maximum |incremental - recomputed| vertex betweenness difference: %.2e\n", maxErr)

	fmt.Println("\ntop 5 vertices by betweenness:")
	for _, v := range s.TopVertices(5) {
		fmt.Printf("  vertex %-6d %12.0f\n", v.Vertex, v.Score)
	}
}
