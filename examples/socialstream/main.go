// Socialstream: keep betweenness centrality online while a social network
// evolves. The example generates a social-like graph, replays a timestamped
// stream of new friendships and unfollows, tracks the emerging "brokers" (the
// vertices whose betweenness grows the most), and reports whether the updates
// kept up with the arrival rate — the scenario that motivates the paper.
package main

import (
	"fmt"
	"log"

	"streambc"
)

func main() {
	const (
		people      = 2000
		attachments = 5
		clustering  = 0.6
		updates     = 150
	)

	// A social-network-like graph: heavy-tailed degrees, high clustering.
	g := streambc.GenerateSocialGraph(people, attachments, clustering, 1)
	fmt.Printf("generated social graph: %d people, %d ties\n", g.N(), g.M())

	// An evolving workload: 70% new ties, 30% broken ties, arriving in bursts
	// roughly every 50 ms.
	mixed, err := streambc.MixedUpdates(g, updates, 0.3, 2)
	if err != nil {
		log.Fatal(err)
	}
	stream := streambc.TimestampUpdates(mixed, 0.05, 0.25, 3)

	// Two workers share the source set, exactly like two mappers of the
	// paper's parallel deployment.
	s, err := streambc.New(g.Clone(), streambc.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	before := snapshot(s)

	report, err := s.Replay(stream)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("replayed %d updates: %d (%.1f%%) were not ready before the next arrival, avg delay %.0f ms\n",
		report.Updates, report.Missed, report.MissedFraction*100, report.AvgDelay*1000)
	fmt.Printf("total processing time: %.2fs (%.1f ms per update)\n",
		report.TotalProcessing, 1000*report.TotalProcessing/float64(report.Updates))

	fmt.Println("\ncurrent top brokers (highest betweenness):")
	for _, v := range s.TopVertices(5) {
		fmt.Printf("  person %-6d betweenness %12.0f\n", v.Vertex, v.Score)
	}

	fmt.Println("\nfastest risers (largest betweenness gain during the stream):")
	type riser struct {
		vertex int
		gain   float64
	}
	var best []riser
	for v, now := range s.VBC() {
		gain := now
		if v < len(before) {
			gain = now - before[v]
		}
		best = append(best, riser{v, gain})
	}
	for i := 0; i < 5; i++ {
		top := i
		for j := i + 1; j < len(best); j++ {
			if best[j].gain > best[top].gain {
				top = j
			}
		}
		best[i], best[top] = best[top], best[i]
		fmt.Printf("  person %-6d gained %12.0f\n", best[i].vertex, best[i].gain)
	}

	fmt.Println("\nmost critical ties (highest edge betweenness):")
	for _, e := range s.TopEdges(5) {
		fmt.Printf("  tie (%d,%d)  betweenness %12.0f\n", e.Edge.U, e.Edge.V, e.Score)
	}
}

func snapshot(s *streambc.Stream) []float64 {
	vbc := s.VBC()
	out := make([]float64, len(vbc))
	copy(out, vbc)
	return out
}
