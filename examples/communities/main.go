// Communities: Girvan-Newman community detection powered by incrementally
// maintained edge betweenness (the use case of Section 6.3 of the paper).
// The example plants a known community structure, recovers it by repeatedly
// removing the highest-betweenness edge, and checks the result against the
// ground truth.
package main

import (
	"fmt"
	"log"
	"time"

	"streambc"
)

func main() {
	const (
		communities = 4
		size        = 60
	)
	g, truth := streambc.GenerateCommunityGraph(communities, size, 0.2, 0.002, 7)
	fmt.Printf("planted-partition graph: %d vertices, %d edges, %d hidden communities\n", g.N(), g.M(), communities)

	// Incremental Girvan-Newman: one offline Brandes pass, then one cheap
	// betweenness update per removed edge.
	start := time.Now()
	res, err := streambc.DetectCommunities(g, streambc.CommunityOptions{TargetCommunities: communities})
	if err != nil {
		log.Fatal(err)
	}
	incTime := time.Since(start)

	// The classic baseline recomputes betweenness from scratch after every
	// removal.
	start = time.Now()
	if _, err := streambc.DetectCommunities(g, streambc.CommunityOptions{
		TargetCommunities: communities,
		Recompute:         true,
	}); err != nil {
		log.Fatal(err)
	}
	recTime := time.Since(start)

	fmt.Printf("edges removed: %d, best modularity: %.3f\n", len(res.Steps), res.BestModularity)
	fmt.Printf("incremental: %s   recompute baseline: %s   speedup: %.1fx\n",
		incTime.Round(time.Millisecond), recTime.Round(time.Millisecond),
		float64(recTime)/float64(incTime))
	fmt.Println("(the speedup grows with graph size — see `bcbench -exp fig9` for the paper-scale curve)")

	groups := res.Communities()
	fmt.Printf("\ncommunities found: %d\n", len(groups))
	for i, members := range groups {
		preview := members
		if len(preview) > 10 {
			preview = preview[:10]
		}
		fmt.Printf("  community %d: %d members, e.g. %v\n", i, len(members), preview)
	}

	// How well do the detected communities match the planted ones? Count
	// vertex pairs on which the two partitions agree.
	agree, total := 0, 0
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			same := truth[u] == truth[v]
			found := res.BestPartition[u] == res.BestPartition[v]
			if same == found {
				agree++
			}
			total++
		}
	}
	fmt.Printf("\nagreement with the planted communities: %.1f%% of vertex pairs\n", 100*float64(agree)/float64(total))
}
