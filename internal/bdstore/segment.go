package bdstore

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// segment is one materialised segment file of a sharded store: a run of
// segRecords consecutive source ids sharing one fixed-stride file. Records
// are read through the mmap view when available and through positional reads
// otherwise; all writes go through the file descriptor (MAP_SHARED keeps the
// view coherent).
type segment struct {
	id   int
	path string
	f    *os.File

	recN       int // vertices per record in this file (the segment's epoch)
	segRecords int

	present []byte // which slots hold a managed source
	written []byte // which managed slots have a materialised record

	mapped []byte // read-only mmap of the whole file; nil on fallback
}

func (sg *segment) base() int { return sg.id * sg.segRecords }

func (sg *segment) fileSize() int64 { return segFileSize(sg.segRecords, sg.recN) }

// mapIn establishes the mmap view of the segment file, if the platform and
// store configuration allow it. Mapping failure is not an error: the segment
// simply serves reads through pread.
func (sg *segment) mapIn(useMmap bool) {
	if !useMmap || !mmapSupported {
		return
	}
	if m, err := mmapFile(sg.f, sg.fileSize()); err == nil {
		sg.mapped = m
	}
}

// unmap drops the mmap view, if any.
func (sg *segment) unmap() {
	if sg.mapped != nil {
		munmapFile(sg.mapped)
		sg.mapped = nil
	}
}

func (sg *segment) close() error {
	sg.unmap()
	if sg.f == nil {
		return nil
	}
	err := sg.f.Close()
	sg.f = nil
	return err
}

// recordBytes returns the raw bytes of length bytes of the record in slot,
// reading through the mmap view when available (zero copy) and into scratch
// otherwise. The returned slice is only valid until the next call that
// touches scratch or remaps the segment.
func (sg *segment) recordBytes(slot, length int, scratch *[]byte) ([]byte, error) {
	off := segRecordOffset(sg.segRecords, sg.recN, slot)
	if sg.mapped != nil {
		end := off + int64(length)
		if end > int64(len(sg.mapped)) {
			return nil, fmt.Errorf("bdstore: record read past mapped segment %d", sg.id)
		}
		return sg.mapped[off:end:end], nil
	}
	b := *scratch
	if cap(b) < length {
		b = make([]byte, length)
		*scratch = b
	}
	b = b[:length]
	if _, err := sg.f.ReadAt(b, off); err != nil {
		return nil, fmt.Errorf("bdstore: reading segment %d slot %d: %w", sg.id, slot, err)
	}
	return b, nil
}

// writeBitmaps persists the in-memory presence and written bitmaps.
func (sg *segment) writeBitmaps() error {
	if _, err := sg.f.WriteAt(sg.present, segHeaderFixed); err != nil {
		return fmt.Errorf("bdstore: writing presence bitmap of segment %d: %w", sg.id, err)
	}
	if _, err := sg.f.WriteAt(sg.written, segHeaderFixed+int64(len(sg.present))); err != nil {
		return fmt.Errorf("bdstore: writing written bitmap of segment %d: %w", sg.id, err)
	}
	return nil
}

// createSegment materialises a new segment file: header, bitmaps, and a
// sparse truncate to the full record area. Record payload is never written
// here — unwritten records are synthesised as isolated vertices on read.
func createSegment(dir string, id int, recN, segRecords int, present []byte, useMmap bool) (*segment, error) {
	path := segmentPath(dir, id)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("bdstore: creating shard directory for segment %d: %w", id, err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bdstore: creating segment %d: %w", id, err)
	}
	sg := &segment{
		id:         id,
		path:       path,
		f:          f,
		recN:       recN,
		segRecords: segRecords,
		present:    present,
		written:    make([]byte, bitmapBytes(segRecords)),
	}
	if err := sg.writeHeaderAndBitmaps(); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := f.Truncate(sg.fileSize()); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("bdstore: sizing segment %d: %w", id, err)
	}
	sg.mapIn(useMmap)
	return sg, nil
}

func (sg *segment) writeHeaderAndBitmaps() error {
	hdr := make([]byte, segHeaderFixed)
	if err := encodeSegHeader(segHeader{recN: sg.recN, base: sg.base(), segRecords: sg.segRecords}, hdr); err != nil {
		return err
	}
	if _, err := sg.f.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("bdstore: writing header of segment %d: %w", sg.id, err)
	}
	return sg.writeBitmaps()
}

// openSegment opens and validates an existing segment file. wantSegRecords
// and maxRecN come from the store manifest; a segment whose recN is below
// maxRecN is a stale epoch awaiting migration, which is legal.
func openSegment(dir string, id int, wantSegRecords, maxRecN int, useMmap bool) (*segment, error) {
	path := segmentPath(dir, id)
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bdstore: opening segment %d: %w", id, err)
	}
	hdr := make([]byte, segHeaderFixed)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, segHeaderFixed), hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("bdstore: reading header of segment %d: %w", id, err)
	}
	h, err := decodeSegHeader(hdr)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("bdstore: segment %d: %w", id, err)
	}
	if h.segRecords != wantSegRecords {
		f.Close()
		return nil, fmt.Errorf("bdstore: segment %d has %d records per segment, manifest says %d", id, h.segRecords, wantSegRecords)
	}
	if h.base != id*wantSegRecords {
		f.Close()
		return nil, fmt.Errorf("bdstore: segment %d claims base source %d, want %d", id, h.base, id*wantSegRecords)
	}
	if h.recN > maxRecN {
		f.Close()
		return nil, fmt.Errorf("bdstore: segment %d covers %d vertices, manifest says %d", id, h.recN, maxRecN)
	}
	bm := bitmapBytes(wantSegRecords)
	bitmaps := make([]byte, 2*bm)
	if _, err := f.ReadAt(bitmaps, segHeaderFixed); err != nil {
		f.Close()
		return nil, fmt.Errorf("bdstore: reading bitmaps of segment %d: %w", id, err)
	}
	sg := &segment{
		id:         id,
		path:       path,
		f:          f,
		recN:       h.recN,
		segRecords: wantSegRecords,
		present:    bitmaps[:bm:bm],
		written:    bitmaps[bm:],
	}
	if st, err := f.Stat(); err == nil && st.Size() < sg.fileSize() {
		f.Close()
		return nil, fmt.Errorf("bdstore: segment %d is %d bytes, want %d", id, st.Size(), sg.fileSize())
	}
	sg.mapIn(useMmap)
	return sg, nil
}
