//go:build unix

package bdstore

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform has a memory-map read path at
// all. When false (or when mapping a particular file fails), the sharded
// store falls back to plain positional reads.
const mmapSupported = true

// mmapFile maps size bytes of f read-only and shared, so that positional
// writes through the file descriptor remain coherently visible through the
// mapping (both go through the same page cache).
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping returned by mmapFile.
func munmapFile(b []byte) error {
	return syscall.Munmap(b)
}
