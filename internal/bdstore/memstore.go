package bdstore

import (
	"fmt"
	"sort"

	"streambc/internal/bc"
)

// MemStore keeps the per-source betweenness data in memory, one contiguous
// record per source. It is the "MO" configuration of the paper (in memory,
// without predecessor lists).
type MemStore struct {
	n     int
	slots map[int]int // source -> index into recs
	order []int       // sources in ascending order
	recs  []memRecord
}

type memRecord struct {
	dist  []int32
	sigma []float64
	delta []float64
}

// NewMemStore returns an in-memory store managing every vertex of an
// n-vertex graph as a source, each initialised as an isolated vertex.
//
// Deprecated: use Open("", Options{NumVertices: n}) — an empty directory
// selects the in-memory store — or NewMemStoreForSources when the concrete
// *MemStore type is needed.
func NewMemStore(n int) *MemStore {
	sources := make([]int, n)
	for i := range sources {
		sources[i] = i
	}
	return NewMemStoreForSources(n, sources)
}

// NewMemStoreForSources returns an in-memory store managing only the given
// sources of an n-vertex graph. It is used by the parallel engine, where each
// worker owns one partition of the source set.
func NewMemStoreForSources(n int, sources []int) *MemStore {
	m := &MemStore{n: n, slots: make(map[int]int, len(sources))}
	for _, s := range sources {
		if _, ok := m.slots[s]; ok {
			continue
		}
		m.slots[s] = len(m.recs)
		m.order = append(m.order, s)
		m.recs = append(m.recs, newMemRecord(s, n))
	}
	sort.Ints(m.order)
	return m
}

func newMemRecord(s, n int) memRecord {
	r := memRecord{
		dist:  make([]int32, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
	}
	for i := range r.dist {
		r.dist[i] = bc.Unreachable
	}
	if s >= 0 && s < n {
		r.dist[s] = 0
		r.sigma[s] = 1
	}
	return r
}

// NumVertices implements incremental.Store.
func (m *MemStore) NumVertices() int { return m.n }

// Sources implements incremental.Store.
func (m *MemStore) Sources() []int { return append([]int(nil), m.order...) }

// Load implements incremental.Store.
func (m *MemStore) Load(s int, rec *bc.SourceState) error {
	slot, ok := m.slots[s]
	if !ok {
		return fmt.Errorf("bdstore: source %d not managed by this store", s)
	}
	rec.Resize(m.n)
	copy(rec.Dist, m.recs[slot].dist)
	copy(rec.Sigma, m.recs[slot].sigma)
	copy(rec.Delta, m.recs[slot].delta)
	return nil
}

// Save implements incremental.Store.
func (m *MemStore) Save(s int, rec *bc.SourceState) error {
	slot, ok := m.slots[s]
	if !ok {
		return fmt.Errorf("bdstore: source %d not managed by this store", s)
	}
	if len(rec.Dist) != m.n {
		return fmt.Errorf("bdstore: record has %d vertices, store expects %d", len(rec.Dist), m.n)
	}
	copy(m.recs[slot].dist, rec.Dist)
	copy(m.recs[slot].sigma, rec.Sigma)
	copy(m.recs[slot].delta, rec.Delta)
	return nil
}

// LoadDistances implements incremental.Store.
func (m *MemStore) LoadDistances(s int, dist *[]int32) error {
	slot, ok := m.slots[s]
	if !ok {
		return fmt.Errorf("bdstore: source %d not managed by this store", s)
	}
	d := *dist
	if cap(d) < m.n {
		d = make([]int32, m.n)
	}
	d = d[:m.n]
	copy(d, m.recs[slot].dist)
	*dist = d
	return nil
}

// Grow implements incremental.Store.
func (m *MemStore) Grow(n int) error {
	if n <= m.n {
		return nil
	}
	for i := range m.recs {
		r := &m.recs[i]
		dist := make([]int32, n)
		sigma := make([]float64, n)
		delta := make([]float64, n)
		copy(dist, r.dist)
		copy(sigma, r.sigma)
		copy(delta, r.delta)
		for j := m.n; j < n; j++ {
			dist[j] = bc.Unreachable
		}
		r.dist, r.sigma, r.delta = dist, sigma, delta
	}
	m.n = n
	return nil
}

// AddSource implements incremental.Store.
func (m *MemStore) AddSource(s int) error {
	if _, ok := m.slots[s]; ok {
		return fmt.Errorf("bdstore: source %d already managed", s)
	}
	if s < 0 || s >= m.n {
		return fmt.Errorf("bdstore: source %d out of range (n=%d)", s, m.n)
	}
	m.slots[s] = len(m.recs)
	m.recs = append(m.recs, newMemRecord(s, m.n))
	m.order = append(m.order, s)
	sort.Ints(m.order)
	return nil
}

// Flush implements incremental.Store. Memory is the backing medium; there is
// never anything staged.
func (m *MemStore) Flush() error { return nil }

// Stats implements incremental.Store.
func (m *MemStore) Stats() StoreStats {
	return StoreStats{Records: int64(len(m.recs)), Bytes: m.Bytes()}
}

// Close implements incremental.Store.
func (m *MemStore) Close() error { return nil }

// Bytes returns the approximate memory footprint of the stored records. It is
// reported by the experiment harness to contrast the MO and DO configurations.
func (m *MemStore) Bytes() int64 {
	return int64(len(m.recs)) * int64(recordSize(m.n))
}
