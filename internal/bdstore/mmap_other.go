//go:build !unix

package bdstore

import (
	"errors"
	"os"
)

// mmapSupported reports whether this platform has a memory-map read path at
// all. Non-unix builds always use the positional-read fallback.
const mmapSupported = false

var errNoMmap = errors.New("bdstore: mmap not supported on this platform")

func mmapFile(f *os.File, size int64) ([]byte, error) {
	return nil, errNoMmap
}

func munmapFile(b []byte) error { return nil }
