package bdstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

// The v2 on-disk layout is a flatfs-style sharded directory of segment
// files. Sources are grouped into fixed-record segments by id prefix:
//
//	segment(s) = s / SegmentRecords
//	slot(s)    = s % SegmentRecords
//
// and each segment file lives under a two-hex-digit shard directory derived
// from the low byte of the segment id, so that no single directory
// accumulates more than 256 entries per 16Ki sources at the default segment
// size:
//
//	<dir>/MANIFEST
//	<dir>/<xx>/seg-<segment>.bds
//
// A segment file is a fixed header, a presence bitmap (which sources of the
// segment's id range are managed), a written bitmap (which managed records
// have been materialised by a flush — unwritten records are synthesised as
// isolated vertices on read), and SegmentRecords fixed-stride records in the
// columnar encoding of codec.go. The file is created sparse at full size, so
// segments whose records were never written cost metadata only.
const (
	// DefaultSegmentRecords is the number of source records per segment file
	// when Options.SegmentRecords is zero.
	DefaultSegmentRecords = 64

	// MaxSegmentRecords bounds the configurable segment size; beyond this a
	// single segment file of a large graph would outgrow what the sparse
	// create and migration rewrite are designed for.
	MaxSegmentRecords = 1 << 20
)

// manifestName is the store-level metadata file at the root of a v2 store
// directory. Its presence is what distinguishes an existing store from an
// empty directory.
const manifestName = "MANIFEST"

var (
	segMagic      = [4]byte{'B', 'D', 'S', '2'}
	manifestMagic = [4]byte{'B', 'D', 'M', '2'}
)

const (
	segVersion      = 2
	manifestVersion = 2

	// segHeaderFixed is the fixed prefix of a segment file: magic (4),
	// version (4), recN (8), base source (8), segment records (8).
	segHeaderFixed = 32

	// manifestSize is magic (4), version (4), n (8), segment records (8).
	manifestSize = 24
)

// sourceLoc identifies where a source record lives in the sharded layout.
type sourceLoc struct {
	seg  int // segment id
	slot int // record slot within the segment
}

// locateSource maps a source id onto its segment and slot for a layout with
// segRecords records per segment. Both inputs must be validated by the
// caller (s >= 0, segRecords >= 1).
func locateSource(s, segRecords int) sourceLoc {
	return sourceLoc{seg: s / segRecords, slot: s % segRecords}
}

// shardName returns the shard directory name of a segment: two hex digits
// from the low byte of the segment id.
func shardName(seg int) string {
	return fmt.Sprintf("%02x", seg&0xff)
}

// segmentFileName returns the file name of a segment within its shard
// directory.
func segmentFileName(seg int) string {
	return fmt.Sprintf("seg-%08d.bds", seg)
}

// segmentPath returns the path of a segment file relative to the store root.
func segmentPath(dir string, seg int) string {
	return filepath.Join(dir, shardName(seg), segmentFileName(seg))
}

// bitmapBytes is the size of one per-segment bitmap.
func bitmapBytes(segRecords int) int { return (segRecords + 7) / 8 }

// segRecordsOffset is the file offset of the first record: fixed header plus
// the presence and written bitmaps.
func segRecordsOffset(segRecords int) int64 {
	return segHeaderFixed + 2*int64(bitmapBytes(segRecords))
}

// segFileSize is the full (sparse) size of a segment file whose records
// cover recN vertices.
func segFileSize(segRecords, recN int) int64 {
	return segRecordsOffset(segRecords) + int64(segRecords)*int64(recordSize(recN))
}

// segRecordOffset is the file offset of the record in the given slot.
func segRecordOffset(segRecords, recN, slot int) int64 {
	return segRecordsOffset(segRecords) + int64(slot)*int64(recordSize(recN))
}

// bitGet reports whether bit i of the bitmap is set.
func bitGet(bm []byte, i int) bool { return bm[i>>3]&(1<<uint(i&7)) != 0 }

// bitSet sets bit i of the bitmap.
func bitSet(bm []byte, i int) { bm[i>>3] |= 1 << uint(i&7) }

// segHeader is the decoded fixed prefix of a segment file.
type segHeader struct {
	recN       int // vertices per record (the segment's epoch)
	base       int // first source id of the segment (segment id * segRecords)
	segRecords int // records per segment
}

// encodeSegHeader serialises h into buf, which must be segHeaderFixed bytes.
func encodeSegHeader(h segHeader, buf []byte) error {
	if len(buf) != segHeaderFixed {
		return fmt.Errorf("bdstore: segment header buffer is %d bytes, want %d", len(buf), segHeaderFixed)
	}
	copy(buf[0:4], segMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], segVersion)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(h.recN))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(h.base))
	binary.LittleEndian.PutUint64(buf[24:32], uint64(h.segRecords))
	return nil
}

// decodeSegHeader parses and validates the fixed prefix of a segment file.
func decodeSegHeader(buf []byte) (segHeader, error) {
	var h segHeader
	if len(buf) < segHeaderFixed {
		return h, fmt.Errorf("bdstore: segment header is %d bytes, want %d", len(buf), segHeaderFixed)
	}
	if [4]byte(buf[0:4]) != segMagic {
		return h, fmt.Errorf("bdstore: bad segment magic %q", buf[0:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:8]); v != segVersion {
		return h, fmt.Errorf("bdstore: unsupported segment version %d", v)
	}
	recN := binary.LittleEndian.Uint64(buf[8:16])
	base := binary.LittleEndian.Uint64(buf[16:24])
	segRecords := binary.LittleEndian.Uint64(buf[24:32])
	const maxInt = int(^uint(0) >> 1)
	if recN > uint64(maxInt) || base > uint64(maxInt) || segRecords > uint64(maxInt) {
		return h, fmt.Errorf("bdstore: segment header fields out of range")
	}
	h.recN = int(recN)
	h.base = int(base)
	h.segRecords = int(segRecords)
	if h.segRecords < 1 || h.segRecords > MaxSegmentRecords {
		return h, fmt.Errorf("bdstore: segment records %d out of range [1, %d]", h.segRecords, MaxSegmentRecords)
	}
	if h.base%h.segRecords != 0 {
		return h, fmt.Errorf("bdstore: segment base %d not aligned to %d records", h.base, h.segRecords)
	}
	return h, nil
}

// storeManifest is the decoded MANIFEST of a v2 store directory.
type storeManifest struct {
	n          int // current vertex count (the store epoch)
	segRecords int // records per segment
}

// writeManifest atomically replaces the MANIFEST of dir: write to a
// temporary file, fsync, rename. A reader never observes a torn manifest.
func writeManifest(dir string, m storeManifest) error {
	buf := make([]byte, manifestSize)
	copy(buf[0:4], manifestMagic[:])
	binary.LittleEndian.PutUint32(buf[4:8], manifestVersion)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(m.n))
	binary.LittleEndian.PutUint64(buf[16:24], uint64(m.segRecords))
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("bdstore: creating %s: %w", tmp, err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("bdstore: writing %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("bdstore: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("bdstore: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("bdstore: installing manifest: %w", err)
	}
	return nil
}

// readManifest reads and validates the MANIFEST of dir.
func readManifest(dir string) (storeManifest, error) {
	var m storeManifest
	buf, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return m, err
	}
	if len(buf) != manifestSize {
		return m, fmt.Errorf("bdstore: manifest is %d bytes, want %d", len(buf), manifestSize)
	}
	if [4]byte(buf[0:4]) != manifestMagic {
		return m, fmt.Errorf("bdstore: bad manifest magic %q", buf[0:4])
	}
	if v := binary.LittleEndian.Uint32(buf[4:8]); v != manifestVersion {
		return m, fmt.Errorf("bdstore: unsupported manifest version %d", v)
	}
	n := binary.LittleEndian.Uint64(buf[8:16])
	segRecords := binary.LittleEndian.Uint64(buf[16:24])
	const maxInt = int(^uint(0) >> 1)
	if n > uint64(maxInt) || segRecords > uint64(maxInt) {
		return m, fmt.Errorf("bdstore: manifest fields out of range")
	}
	m.n = int(n)
	m.segRecords = int(segRecords)
	if m.segRecords < 1 || m.segRecords > MaxSegmentRecords {
		return m, fmt.Errorf("bdstore: manifest segment records %d out of range [1, %d]", m.segRecords, MaxSegmentRecords)
	}
	return m, nil
}

// hasManifest reports whether dir contains a v2 store.
func hasManifest(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}
