package bdstore

import (
	"streambc/internal/bc"
)

// Store abstracts the container of the per-source betweenness data BD[·].
// This package provides an in-memory store (the "MO" configuration of the
// paper), the legacy single-file out-of-core store (v1, the shape used for
// the paper's experiments) and the sharded, mmap-backed out-of-core store
// (v2, the production layout opened by Open). Sources and vertices are
// identified by dense integers; a store created for n vertices holds one
// record of n entries per managed source and can be grown when new vertices
// arrive in the stream.
//
// package incremental re-exports this interface as incremental.Store; the
// two names are interchangeable.
type Store interface {
	// NumVertices returns the number of vertices n covered by every record.
	NumVertices() int

	// Load fills rec with the record of source s. The caller owns rec; its
	// slices are resized as needed.
	Load(s int, rec *bc.SourceState) error

	// Save persists rec as the record of source s. Implementations may stage
	// the write in memory; Flush forces staged writes down. A Load or
	// LoadDistances issued after Save always observes the saved record
	// (read-your-writes), flushed or not.
	Save(s int, rec *bc.SourceState) error

	// LoadDistances fills dist (resized as needed) with only the distance
	// column of source s. It is the cheap probe used to skip sources for
	// which the update cannot change anything (dd = 0).
	LoadDistances(s int, dist *[]int32) error

	// Flush writes any staged records to the backing medium. It is called by
	// the incremental framework at the end of every batch. For stores
	// without a write-back stage (MemStore, the v1 DiskStore) it is a no-op.
	Flush() error

	// Grow extends every record to cover n vertices. Existing records are
	// padded with unreachable entries. Growing never removes vertices.
	Grow(n int) error

	// AddSource registers a new source s. Its record is initialised as an
	// isolated vertex: distance 0 and a single shortest path to itself,
	// everything else unreachable. Adding an existing source is an error.
	AddSource(s int) error

	// Sources returns the identifiers of the sources managed by this store,
	// in ascending order. A full store manages every vertex as a source; a
	// partitioned store (one worker of the parallel engine) manages a subset.
	Sources() []int

	// Stats reports the store's current size and write-back state. It is
	// cheap (no I/O) and safe to call between batches; the incremental
	// framework snapshots it at every flush for metrics scraping.
	Stats() StoreStats

	// Close flushes any staged writes and releases the resources held by the
	// store (file handles, memory mappings, background maintenance).
	Close() error
}

// StoreStats is a point-in-time summary of a store, as reported by
// Store.Stats and exported through the obs registry.
type StoreStats struct {
	// Records is the number of source records the store manages.
	Records int64
	// Bytes is the logical size of the backing medium: file bytes for the
	// out-of-core stores (headers, bitmaps and record payload), record bytes
	// for MemStore.
	Bytes int64
	// Dirty is the number of records staged in the write-back buffer and not
	// yet flushed to the backing medium. Always zero for stores that write
	// through (MemStore, the v1 DiskStore).
	Dirty int64
	// Segments is the number of segment files backing the store: 1 for the
	// v1 single-file layout, 0 for MemStore, and the materialised segment
	// count for the sharded v2 layout.
	Segments int64
	// Flushes counts write-back flushes that wrote staged records to the
	// backing medium (explicit Flush calls and budget-triggered auto-flushes;
	// flushes with an empty stage do not count). Always zero for stores that
	// write through.
	Flushes int64
	// Migrations counts segment files rewritten to a newer epoch after a
	// Grow. Only the sharded v2 layout migrates.
	Migrations int64
	// MmapReads and PreadReads split the record reads served to the engine
	// (Load and LoadDistances hitting the backing medium) by read path:
	// through the mmap view versus the positional-read fallback. Reads
	// answered from the write-back stage or synthesised for never-written
	// sources count under neither.
	MmapReads  int64
	PreadReads int64
}
