package bdstore

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"streambc/internal/bc"
)

// TestStoreReadPathCounters pins the medium-read accounting: reads answered
// from the write-back stage count under neither path, flushed records read
// back count under exactly the path the store serves them from.
func TestStoreReadPathCounters(t *testing.T) {
	const n = 9
	for _, tc := range []struct {
		name        string
		disableMmap bool
	}{
		{"mmap", false},
		{"pread", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := openSharded(t, t.TempDir(), Options{
				NumVertices: n, SegmentRecords: 4, DisableMmap: tc.disableMmap,
			})
			defer s.Close()

			st := s.Stats()
			if st.Flushes != 0 || st.Migrations != 0 || st.MmapReads != 0 || st.PreadReads != 0 {
				t.Fatalf("fresh counters not zero: %+v", st)
			}

			rng := rand.New(rand.NewSource(21))
			if err := s.Save(2, randomRecord(rng, n)); err != nil {
				t.Fatal(err)
			}
			// Read-your-writes from the stage touches no backing medium.
			got := bc.NewSourceState(0)
			if err := s.Load(2, got); err != nil {
				t.Fatal(err)
			}
			if st := s.Stats(); st.MmapReads != 0 || st.PreadReads != 0 {
				t.Fatalf("staged read hit the medium: %+v", st)
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}

			if err := s.Load(2, got); err != nil {
				t.Fatal(err)
			}
			var dist []int32
			if err := s.LoadDistances(2, &dist); err != nil {
				t.Fatal(err)
			}
			st = s.Stats()
			if total := st.MmapReads + st.PreadReads; total != 2 {
				t.Fatalf("2 medium reads issued, counted %d: %+v", total, st)
			}
			if tc.disableMmap && st.MmapReads != 0 {
				t.Fatalf("pread store counted mmap reads: %+v", st)
			}
			if !tc.disableMmap && s.MmapActive() && st.MmapReads != 2 {
				t.Fatalf("mmap store split reads wrong: %+v", st)
			}
		})
	}
}

// TestStoreFlushCountersAndObserver: empty flushes count nothing and fire no
// observer; every flush that wrote staged records counts once and fires the
// observer exactly once; a post-grow flush migrates the touched segment and
// counts it.
func TestStoreFlushCountersAndObserver(t *testing.T) {
	const n = 8
	s := openSharded(t, t.TempDir(), Options{NumVertices: n, SegmentRecords: 4})
	defer s.Close()

	var calls atomic.Int64
	var negative atomic.Bool
	s.SetFlushObserver(func(seconds float64) {
		calls.Add(1)
		if seconds < 0 {
			negative.Store(true)
		}
	})

	// Nothing staged: no flush counted, no observation.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Flushes != 0 || calls.Load() != 0 {
		t.Fatalf("empty flush counted: %+v, %d observations", st, calls.Load())
	}

	rng := rand.New(rand.NewSource(23))
	if err := s.Save(1, randomRecord(rng, n)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Flushes < 1 {
		t.Fatalf("staged flush not counted: %+v", st)
	}
	// The observer fires exactly once per counted flush, whoever flushed.
	if calls.Load() != st.Flushes {
		t.Fatalf("%d observations for %d flushes", calls.Load(), st.Flushes)
	}
	if negative.Load() {
		t.Fatal("observer saw a negative duration")
	}

	// Grow bumps the epoch; the next flushed save rewrites its segment at the
	// new stride, which must count as a migration.
	if err := s.Grow(n + 3); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(1, randomRecord(rng, n+3)); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Migrations < 1 {
		t.Fatalf("post-grow flush migrated nothing: %+v", st)
	}
	if calls.Load() != s.Stats().Flushes {
		t.Fatalf("%d observations for %d flushes", calls.Load(), s.Stats().Flushes)
	}
}

// TestDiskStoreReadCounter: the v1 layout counts every record read as a pread.
func TestDiskStoreReadCounter(t *testing.T) {
	const n = 6
	d, err := OpenV1(t.TempDir()+"/v1.bds", n, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	rec := bc.NewSourceState(0)
	if err := d.Load(3, rec); err != nil {
		t.Fatal(err)
	}
	var dist []int32
	if err := d.LoadDistances(3, &dist); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.PreadReads != 2 || st.MmapReads != 0 {
		t.Fatalf("v1 read counters = %+v, want 2 preads", st)
	}
}
