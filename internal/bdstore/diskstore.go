package bdstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"streambc/internal/bc"
)

// DiskStore keeps the per-source betweenness data out of core, in a single
// binary file laid out exactly as described in Section 5.1 of the paper: one
// fixed-size record per source, each record storing the distance column, then
// the shortest-path-count column, then the dependency column, so that records
// are read sequentially and updated in place, and the distance column alone
// can be read to skip unaffected sources.
type DiskStore struct {
	f    *os.File
	path string

	n     int         // vertices per record
	slots map[int]int // source -> slot index in the file
	order []int       // sources in ascending order

	buf     []byte // reusable record buffer
	distBuf []byte // reusable distance-column buffer

	preadReads int64 // record reads served (this layout always preads)
}

// diskHeaderSize is the fixed file prefix: magic (4), version (4), n (8),
// slot count (8).
const diskHeaderSize = 24

var diskMagic = [4]byte{'B', 'D', 'S', '1'}

// NewDiskStore creates (or truncates) the file at path and returns a store
// managing every vertex of an n-vertex graph as a source.
//
// Deprecated: use Open with Options{NumVertices: n} instead. Open defaults
// to the sharded v2 layout with explicit create-vs-reopen semantics, where
// this constructor silently truncates an existing store; code that
// specifically needs the v1 single-file layout should call OpenV1.
func NewDiskStore(path string, n int) (*DiskStore, error) {
	return OpenV1(path, n, nil)
}

// NewDiskStoreForSources creates (or truncates) the file at path and returns
// a store managing only the given sources of an n-vertex graph, as used by
// one worker of the parallel engine.
//
// Deprecated: use Open with Options{NumVertices: n, Sources: sources}
// instead. Open defaults to the sharded v2 layout with explicit
// create-vs-reopen semantics, where this constructor silently truncates an
// existing store; code that specifically needs the v1 single-file layout
// should call OpenV1.
func NewDiskStoreForSources(path string, n int, sources []int) (*DiskStore, error) {
	return OpenV1(path, n, sources)
}

// OpenV1 creates (or truncates) a v1 single-file store at path: one flat
// file of fixed-size records, written through on every Save, wholly
// rewritten on Grow. It is kept for the v1-vs-v2 benchmark pair and for
// tooling that must produce the legacy format; new code should use Open,
// which provides the sharded v2 layout. sources nil means every vertex is a
// source.
func OpenV1(path string, n int, sources []int) (*DiskStore, error) {
	if sources == nil {
		sources = make([]int, n)
		for i := range sources {
			sources[i] = i
		}
	}
	if dir := filepath.Dir(path); dir != "" && dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("bdstore: creating directory for %s: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("bdstore: opening %s: %w", path, err)
	}
	d := &DiskStore{f: f, path: path, n: n, slots: make(map[int]int, len(sources))}
	for _, s := range sources {
		if _, ok := d.slots[s]; ok {
			continue
		}
		d.slots[s] = len(d.slots)
		d.order = append(d.order, s)
	}
	sort.Ints(d.order)
	if err := d.initFile(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// initFile writes the header and one isolated-vertex record per source.
func (d *DiskStore) initFile() error {
	if err := d.writeHeader(); err != nil {
		return err
	}
	rec := bc.NewSourceState(d.n)
	for _, s := range d.order {
		initIsolated(rec, s, d.n)
		if err := d.Save(s, rec); err != nil {
			return err
		}
	}
	return d.f.Sync()
}

func (d *DiskStore) writeHeader() error {
	hdr := make([]byte, diskHeaderSize)
	copy(hdr[0:4], diskMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:8], 1)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(d.n))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(d.slots)))
	if _, err := d.f.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("bdstore: writing header of %s: %w", d.path, err)
	}
	return nil
}

func (d *DiskStore) slotOffset(slot int) int64 {
	return diskHeaderSize + int64(slot)*int64(recordSize(d.n))
}

// NumVertices implements incremental.Store.
func (d *DiskStore) NumVertices() int { return d.n }

// Sources implements incremental.Store.
func (d *DiskStore) Sources() []int { return append([]int(nil), d.order...) }

// Path returns the backing file path.
func (d *DiskStore) Path() string { return d.path }

// FileSize returns the size in bytes of the backing file.
func (d *DiskStore) FileSize() int64 {
	return diskHeaderSize + int64(len(d.slots))*int64(recordSize(d.n))
}

// Load implements incremental.Store.
func (d *DiskStore) Load(s int, rec *bc.SourceState) error {
	slot, ok := d.slots[s]
	if !ok {
		return fmt.Errorf("bdstore: source %d not managed by this store", s)
	}
	size := recordSize(d.n)
	if cap(d.buf) < size {
		d.buf = make([]byte, size)
	}
	buf := d.buf[:size]
	d.preadReads++
	if _, err := d.f.ReadAt(buf, d.slotOffset(slot)); err != nil {
		return fmt.Errorf("bdstore: reading source %d from %s: %w", s, d.path, err)
	}
	return decodeRecord(buf, d.n, rec)
}

// Save implements incremental.Store.
func (d *DiskStore) Save(s int, rec *bc.SourceState) error {
	slot, ok := d.slots[s]
	if !ok {
		return fmt.Errorf("bdstore: source %d not managed by this store", s)
	}
	if len(rec.Dist) != d.n {
		return fmt.Errorf("bdstore: record has %d vertices, store expects %d", len(rec.Dist), d.n)
	}
	size := recordSize(d.n)
	if cap(d.buf) < size {
		d.buf = make([]byte, size)
	}
	buf := d.buf[:size]
	if err := encodeRecord(rec, buf); err != nil {
		return err
	}
	if _, err := d.f.WriteAt(buf, d.slotOffset(slot)); err != nil {
		return fmt.Errorf("bdstore: writing source %d to %s: %w", s, d.path, err)
	}
	return nil
}

// LoadDistances implements incremental.Store. Only the distance column is
// read from disk.
func (d *DiskStore) LoadDistances(s int, dist *[]int32) error {
	slot, ok := d.slots[s]
	if !ok {
		return fmt.Errorf("bdstore: source %d not managed by this store", s)
	}
	size := distColumnSize(d.n)
	if cap(d.distBuf) < size {
		d.distBuf = make([]byte, size)
	}
	buf := d.distBuf[:size]
	d.preadReads++
	if _, err := d.f.ReadAt(buf, d.slotOffset(slot)); err != nil {
		return fmt.Errorf("bdstore: reading distances of source %d from %s: %w", s, d.path, err)
	}
	return decodeDistances(buf, d.n, dist)
}

// Grow implements incremental.Store. Because the record stride depends on the
// number of vertices, growing rewrites the whole file once.
func (d *DiskStore) Grow(n int) error {
	if n <= d.n {
		return nil
	}
	oldN := d.n
	rec := bc.NewSourceState(oldN)
	tmpPath := d.path + ".grow"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("bdstore: creating %s: %w", tmpPath, err)
	}
	newBuf := make([]byte, recordSize(n))
	for _, s := range d.order {
		if err := d.Load(s, rec); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
		rec.Resize(n)
		if err := encodeRecord(rec, newBuf); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
		off := diskHeaderSize + int64(d.slots[s])*int64(recordSize(n))
		if _, err := tmp.WriteAt(newBuf, off); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("bdstore: writing grown record of source %d: %w", s, err)
		}
		rec.Resize(oldN)
	}
	if err := d.f.Close(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("bdstore: closing %s: %w", d.path, err)
	}
	if err := os.Rename(tmpPath, d.path); err != nil {
		tmp.Close()
		return fmt.Errorf("bdstore: replacing %s: %w", d.path, err)
	}
	d.f = tmp
	d.n = n
	d.buf = nil
	d.distBuf = nil
	return d.writeHeader()
}

// AddSource implements incremental.Store.
func (d *DiskStore) AddSource(s int) error {
	if _, ok := d.slots[s]; ok {
		return fmt.Errorf("bdstore: source %d already managed", s)
	}
	if s < 0 || s >= d.n {
		return fmt.Errorf("bdstore: source %d out of range (n=%d)", s, d.n)
	}
	d.slots[s] = len(d.slots)
	rec := bc.NewSourceState(d.n)
	initIsolated(rec, s, d.n)
	if err := d.Save(s, rec); err != nil {
		delete(d.slots, s)
		return err
	}
	d.order = append(d.order, s)
	sort.Ints(d.order)
	return d.writeHeader()
}

// Flush implements incremental.Store. The v1 store writes through on every
// Save, so there is nothing staged to flush.
func (d *DiskStore) Flush() error { return nil }

// Stats implements incremental.Store.
func (d *DiskStore) Stats() StoreStats {
	return StoreStats{
		Records:    int64(len(d.slots)),
		Bytes:      d.FileSize(),
		Dirty:      0,
		Segments:   1,
		PreadReads: d.preadReads,
	}
}

// Close implements incremental.Store.
func (d *DiskStore) Close() error {
	if d.f == nil {
		return nil
	}
	err := d.f.Close()
	d.f = nil
	return err
}

// Remove closes the store and deletes its backing file.
func (d *DiskStore) Remove() error {
	if err := d.Close(); err != nil {
		return err
	}
	return os.Remove(d.path)
}
