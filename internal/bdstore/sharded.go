package bdstore

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"streambc/internal/bc"
)

// stageBudgetBytes bounds the write-back stage of a Sharded store. Saves
// accumulate encoded records in memory and Flush writes them out as
// offset-sorted grouped writes; when a long run of Saves (the engine's
// initial Brandes pass populates every source back to back) crosses this
// budget, the stage auto-flushes so the store never holds more than a bounded
// slice of the record set in memory. Auto-flush points depend only on the
// Save sequence, so replays stay deterministic.
const stageBudgetBytes = 8 << 20

// errShardedClosed is returned by every operation on a closed Sharded store.
var errShardedClosed = errors.New("bdstore: store is closed")

// Sharded is the v2 out-of-core store: a prefix-sharded directory of
// fixed-record segment files (see layout.go) with an mmap read path,
// write-back batching and epoch-based growth.
//
//   - Reads (Load, LoadDistances) decode straight out of the segment's
//     read-only mmap view when available — the distance-column probe that
//     gates every update becomes a page read with no syscall — falling back
//     to positional reads otherwise.
//   - Save stages the encoded record in memory; Flush groups staged records
//     by segment, sorts them by file offset, coalesces contiguous runs into
//     single writes and updates the written bitmaps. Staged records are
//     visible to reads immediately (read-your-writes).
//   - Grow is an epoch bump: it flushes the stage, rewrites the MANIFEST and
//     returns; segment files are rewritten to the new record stride by a
//     background maintainer (or inline, one segment at a time, when a flush
//     targets a segment the maintainer has not reached). Until migrated, a
//     stale segment serves reads by padding records with unreachable
//     entries, which is bit-identical to migrating first.
//
// A Sharded store is safe for the incremental framework's single-owner use;
// the internal mutex exists to coordinate with the background maintainer,
// not to make the store a concurrent data structure.
type Sharded struct {
	mu         sync.Mutex
	dir        string
	n          int // current vertex count (the store epoch)
	segRecords int
	useMmap    bool

	segs  map[int]*segment
	order []int // managed sources, ascending

	staged      map[int][]byte // source -> encoded record at the current epoch
	stagedBytes int
	stagePool   [][]byte

	readBuf  []byte // pread fallback scratch
	flushBuf []byte // coalesced-write assembly scratch

	growCh   chan struct{}
	quit     chan struct{}
	wg       sync.WaitGroup
	closed   bool
	maintErr error // first background migration failure; surfaced by Flush

	// Instrumentation, all guarded by mu: cumulative counters reported
	// through Stats, plus the optional flush-latency observer the engine
	// installs to feed its histogram.
	flushes    int64
	migrations int64
	mmapReads  int64
	preadReads int64
	flushObs   func(seconds float64)
}

// newSharded wires the common fields and starts the background maintainer.
func newSharded(dir string, n, segRecords int, useMmap bool) *Sharded {
	s := &Sharded{
		dir:        dir,
		n:          n,
		segRecords: segRecords,
		useMmap:    useMmap,
		segs:       make(map[int]*segment),
		staged:     make(map[int][]byte),
		growCh:     make(chan struct{}, 1),
		quit:       make(chan struct{}),
	}
	s.wg.Add(1)
	go s.maintain()
	return s
}

// createSharded materialises a fresh v2 store in dir: manifest plus one
// sparse segment file per populated segment. Records are not written —
// every source starts as the synthesised isolated record, exactly like a
// fresh MemStore.
func createSharded(dir string, n int, sources []int, segRecords int, useMmap bool) (*Sharded, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("bdstore: creating %s: %w", dir, err)
	}
	if err := writeManifest(dir, storeManifest{n: n, segRecords: segRecords}); err != nil {
		return nil, err
	}
	s := newSharded(dir, n, segRecords, useMmap)
	// Group the (deduplicated, validated) sources into per-segment presence
	// bitmaps and materialise each segment once.
	seen := make(map[int]bool, len(sources))
	present := make(map[int][]byte)
	for _, src := range sources {
		if seen[src] {
			continue
		}
		if src < 0 || src >= n {
			s.Close()
			return nil, fmt.Errorf("bdstore: source %d out of range (n=%d)", src, n)
		}
		seen[src] = true
		s.order = append(s.order, src)
		loc := locateSource(src, segRecords)
		bm := present[loc.seg]
		if bm == nil {
			bm = make([]byte, bitmapBytes(segRecords))
			present[loc.seg] = bm
		}
		bitSet(bm, loc.slot)
	}
	sort.Ints(s.order)
	segIDs := make([]int, 0, len(present))
	for id := range present {
		segIDs = append(segIDs, id)
	}
	sort.Ints(segIDs)
	for _, id := range segIDs {
		sg, err := createSegment(dir, id, n, segRecords, present[id], useMmap)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.segs[id] = sg
	}
	return s, nil
}

// reopenSharded opens an existing v2 store from its manifest and segment
// files. The managed source set is recovered from the segment presence
// bitmaps; segments left at an older epoch by an interrupted Grow are picked
// up by the background maintainer.
func reopenSharded(dir string, useMmap bool) (*Sharded, error) {
	m, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	segIDs, err := scanSegments(dir)
	if err != nil {
		return nil, err
	}
	s := newSharded(dir, m.n, m.segRecords, useMmap)
	stale := false
	for _, id := range segIDs {
		sg, err := openSegment(dir, id, m.segRecords, m.n, useMmap)
		if err != nil {
			s.Close()
			return nil, err
		}
		s.segs[id] = sg
		if sg.recN < m.n {
			stale = true
		}
		base := sg.base()
		for slot := 0; slot < m.segRecords; slot++ {
			if bitGet(sg.present, slot) {
				s.order = append(s.order, base+slot)
			}
		}
	}
	sort.Ints(s.order)
	if stale {
		s.growCh <- struct{}{}
	}
	return s, nil
}

// scanSegments walks the shard directories of dir and returns the ids of all
// segment files, ascending.
func scanSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("bdstore: reading %s: %w", dir, err)
	}
	var ids []int
	for _, e := range entries {
		if !e.IsDir() || len(e.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(fmt.Sprintf("%s/%s", dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("bdstore: reading shard %s: %w", e.Name(), err)
		}
		for _, fe := range files {
			var id int
			if _, err := fmt.Sscanf(fe.Name(), "seg-%d.bds", &id); err != nil {
				continue
			}
			if shardName(id) != e.Name() || segmentFileName(id) != fe.Name() {
				return nil, fmt.Errorf("bdstore: segment file %s/%s does not match its id %d", e.Name(), fe.Name(), id)
			}
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

// Dir returns the store's root directory.
func (s *Sharded) Dir() string { return s.dir }

// SegmentRecords returns the number of source records per segment file.
func (s *Sharded) SegmentRecords() int { return s.segRecords }

// MmapActive reports whether at least one segment currently serves reads
// through an mmap view (false when disabled, unsupported, or no segment is
// materialised).
func (s *Sharded) MmapActive() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sg := range s.segs {
		if sg.mapped != nil {
			return true
		}
	}
	return false
}

// NumVertices implements Store.
func (s *Sharded) NumVertices() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Sources implements Store.
func (s *Sharded) Sources() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.order...)
}

// lookupLocked resolves a managed source to its segment and slot.
func (s *Sharded) lookupLocked(src int) (*segment, int, error) {
	if src < 0 {
		return nil, 0, fmt.Errorf("bdstore: source %d not managed by this store", src)
	}
	loc := locateSource(src, s.segRecords)
	sg := s.segs[loc.seg]
	if sg == nil || !bitGet(sg.present, loc.slot) {
		return nil, 0, fmt.Errorf("bdstore: source %d not managed by this store", src)
	}
	return sg, loc.slot, nil
}

// Load implements Store.
func (s *Sharded) Load(src int, rec *bc.SourceState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errShardedClosed
	}
	if buf, ok := s.staged[src]; ok {
		return decodeRecord(buf, s.n, rec)
	}
	sg, slot, err := s.lookupLocked(src)
	if err != nil {
		return err
	}
	if !bitGet(sg.written, slot) {
		initIsolated(rec, src, s.n)
		return nil
	}
	s.noteReadLocked(sg)
	buf, err := sg.recordBytes(slot, recordSize(sg.recN), &s.readBuf)
	if err != nil {
		return err
	}
	return decodeRecordPadded(buf, sg.recN, s.n, rec)
}

// noteReadLocked counts one record read about to hit the backing medium,
// split by the path that will serve it.
func (s *Sharded) noteReadLocked(sg *segment) {
	if sg.mapped != nil {
		s.mmapReads++
	} else {
		s.preadReads++
	}
}

// LoadDistances implements Store. Only the distance column is touched: with
// an mmap view this is a read of the column's pages, no syscall and no copy
// beyond the decode into the caller's slice.
func (s *Sharded) LoadDistances(src int, dist *[]int32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errShardedClosed
	}
	if buf, ok := s.staged[src]; ok {
		return decodeDistances(buf[:distColumnSize(s.n)], s.n, dist)
	}
	sg, slot, err := s.lookupLocked(src)
	if err != nil {
		return err
	}
	if !bitGet(sg.written, slot) {
		d := *dist
		if cap(d) < s.n {
			d = make([]int32, s.n)
		}
		d = d[:s.n]
		for i := range d {
			d[i] = bc.Unreachable
		}
		d[src] = 0
		*dist = d
		return nil
	}
	s.noteReadLocked(sg)
	buf, err := sg.recordBytes(slot, distColumnSize(sg.recN), &s.readBuf)
	if err != nil {
		return err
	}
	return decodeDistancesPadded(buf, sg.recN, s.n, dist)
}

// Save implements Store: the record is encoded into the write-back stage and
// becomes durable at the next Flush (or when the stage crosses its budget).
func (s *Sharded) Save(src int, rec *bc.SourceState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errShardedClosed
	}
	if _, _, err := s.lookupLocked(src); err != nil {
		return err
	}
	if len(rec.Dist) != s.n {
		return fmt.Errorf("bdstore: record has %d vertices, store expects %d", len(rec.Dist), s.n)
	}
	size := recordSize(s.n)
	buf, ok := s.staged[src]
	if !ok {
		buf = s.getStageBufLocked(size)
		s.stagedBytes += size
	}
	buf = buf[:size]
	if err := encodeRecord(rec, buf); err != nil {
		return err
	}
	s.staged[src] = buf
	if s.stagedBytes >= stageBudgetBytes {
		return s.flushLocked()
	}
	return nil
}

// getStageBufLocked returns a staging buffer of at least size bytes, reusing
// returned buffers when possible.
func (s *Sharded) getStageBufLocked(size int) []byte {
	for k := len(s.stagePool) - 1; k >= 0; k-- {
		if cap(s.stagePool[k]) >= size {
			buf := s.stagePool[k]
			s.stagePool = append(s.stagePool[:k], s.stagePool[k+1:]...)
			return buf[:size]
		}
	}
	return make([]byte, size)
}

// Flush implements Store: staged records are written to their segments as
// offset-sorted, run-coalesced writes, and the written bitmaps are updated.
func (s *Sharded) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errShardedClosed
	}
	return s.flushLocked()
}

func (s *Sharded) flushLocked() error {
	firstErr := s.maintErr
	s.maintErr = nil
	if len(s.staged) == 0 {
		return firstErr
	}
	start := time.Now()
	srcs := make([]int, 0, len(s.staged))
	for src := range s.staged {
		srcs = append(srcs, src)
	}
	sort.Ints(srcs)
	for i := 0; i < len(srcs); {
		segID := srcs[i] / s.segRecords
		j := i
		for j < len(srcs) && srcs[j]/s.segRecords == segID {
			j++
		}
		if err := s.flushSegmentLocked(segID, srcs[i:j]); err != nil && firstErr == nil {
			firstErr = err
		}
		i = j
	}
	for _, src := range srcs {
		s.stagePool = append(s.stagePool, s.staged[src])
	}
	clear(s.staged)
	s.stagedBytes = 0
	s.flushes++
	if s.flushObs != nil {
		s.flushObs(time.Since(start).Seconds())
	}
	return firstErr
}

// SetFlushObserver installs a callback invoked after every flush that wrote
// staged records, with the flush's wall-clock duration in seconds. The engine
// uses it to feed its streambc_store_flush_seconds histogram. Pass nil to
// remove the observer. The callback runs under the store's lock — keep it
// cheap and never call back into the store.
func (s *Sharded) SetFlushObserver(fn func(seconds float64)) {
	s.mu.Lock()
	s.flushObs = fn
	s.mu.Unlock()
}

// flushSegmentLocked writes the staged records of one segment. srcs is
// ascending, all within the segment. A segment still at an older epoch is
// migrated first, so record strides never mix within a file.
func (s *Sharded) flushSegmentLocked(segID int, srcs []int) error {
	sg := s.segs[segID]
	if sg == nil {
		return fmt.Errorf("bdstore: segment %d vanished", segID)
	}
	if sg.recN < s.n {
		if err := s.migrateSegmentLocked(sg); err != nil {
			return err
		}
	}
	size := recordSize(s.n)
	for i := 0; i < len(srcs); {
		j := i + 1
		for j < len(srcs) && srcs[j] == srcs[j-1]+1 {
			j++
		}
		run := srcs[i:j]
		off := segRecordOffset(s.segRecords, sg.recN, run[0]%s.segRecords)
		if len(run) == 1 {
			if _, err := sg.f.WriteAt(s.staged[run[0]], off); err != nil {
				return fmt.Errorf("bdstore: writing source %d: %w", run[0], err)
			}
		} else {
			need := len(run) * size
			if cap(s.flushBuf) < need {
				s.flushBuf = make([]byte, need)
			}
			wb := s.flushBuf[:need]
			for k, src := range run {
				copy(wb[k*size:(k+1)*size], s.staged[src])
			}
			if _, err := sg.f.WriteAt(wb, off); err != nil {
				return fmt.Errorf("bdstore: writing sources %d..%d: %w", run[0], run[len(run)-1], err)
			}
		}
		i = j
	}
	changed := false
	for _, src := range srcs {
		slot := src % s.segRecords
		if !bitGet(sg.written, slot) {
			bitSet(sg.written, slot)
			changed = true
		}
	}
	if changed {
		return sg.writeBitmaps()
	}
	return nil
}

// migrateSegmentLocked rewrites one segment at the current epoch: every
// written record is re-encoded with the Grow padding (unreachable distances,
// zero sigma/delta for the new vertices) into a sibling file, which then
// atomically replaces the segment. Reads before and after migration are
// bit-identical; only the stride changes.
func (s *Sharded) migrateSegmentLocked(sg *segment) error {
	tmpPath := sg.path + ".mig"
	f, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("bdstore: creating %s: %w", tmpPath, err)
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmpPath)
		return err
	}
	hdr := make([]byte, segHeaderFixed)
	if err := encodeSegHeader(segHeader{recN: s.n, base: sg.base(), segRecords: s.segRecords}, hdr); err != nil {
		return fail(err)
	}
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return fail(fmt.Errorf("bdstore: writing header of %s: %w", tmpPath, err))
	}
	if _, err := f.WriteAt(sg.present, segHeaderFixed); err != nil {
		return fail(fmt.Errorf("bdstore: writing bitmaps of %s: %w", tmpPath, err))
	}
	if _, err := f.WriteAt(sg.written, segHeaderFixed+int64(len(sg.present))); err != nil {
		return fail(fmt.Errorf("bdstore: writing bitmaps of %s: %w", tmpPath, err))
	}
	if err := f.Truncate(segFileSize(s.segRecords, s.n)); err != nil {
		return fail(fmt.Errorf("bdstore: sizing %s: %w", tmpPath, err))
	}
	var rec bc.SourceState
	newBuf := make([]byte, recordSize(s.n))
	for slot := 0; slot < s.segRecords; slot++ {
		if !bitGet(sg.written, slot) {
			continue
		}
		old, err := sg.recordBytes(slot, recordSize(sg.recN), &s.readBuf)
		if err != nil {
			return fail(err)
		}
		if err := decodeRecordPadded(old, sg.recN, s.n, &rec); err != nil {
			return fail(err)
		}
		if err := encodeRecord(&rec, newBuf); err != nil {
			return fail(err)
		}
		if _, err := f.WriteAt(newBuf, segRecordOffset(s.segRecords, s.n, slot)); err != nil {
			return fail(fmt.Errorf("bdstore: writing migrated slot %d of segment %d: %w", slot, sg.id, err))
		}
	}
	if err := os.Rename(tmpPath, sg.path); err != nil {
		return fail(fmt.Errorf("bdstore: installing migrated segment %d: %w", sg.id, err))
	}
	sg.unmap()
	sg.f.Close()
	sg.f = f
	sg.recN = s.n
	sg.mapIn(s.useMmap)
	s.migrations++
	return nil
}

// Grow implements Store as an epoch bump: flush the stage at the old stride,
// record the new vertex count in the manifest and let the background
// maintainer rewrite segment files. No record payload is rewritten
// synchronously; stale segments serve reads through padding until migrated.
func (s *Sharded) Grow(n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errShardedClosed
	}
	if n <= s.n {
		return nil
	}
	if err := s.flushLocked(); err != nil {
		return err
	}
	if err := writeManifest(s.dir, storeManifest{n: n, segRecords: s.segRecords}); err != nil {
		return err
	}
	s.n = n
	select {
	case s.growCh <- struct{}{}:
	default:
	}
	return nil
}

// AddSource implements Store. Only bitmaps are written: the new source's
// record is the synthesised isolated vertex until its first flushed Save.
func (s *Sharded) AddSource(src int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errShardedClosed
	}
	if src < 0 || src >= s.n {
		return fmt.Errorf("bdstore: source %d out of range (n=%d)", src, s.n)
	}
	loc := locateSource(src, s.segRecords)
	sg := s.segs[loc.seg]
	if sg == nil {
		var err error
		sg, err = createSegment(s.dir, loc.seg, s.n, s.segRecords, make([]byte, bitmapBytes(s.segRecords)), s.useMmap)
		if err != nil {
			return err
		}
		s.segs[loc.seg] = sg
	}
	if bitGet(sg.present, loc.slot) {
		return fmt.Errorf("bdstore: source %d already managed", src)
	}
	bitSet(sg.present, loc.slot)
	if err := sg.writeBitmaps(); err != nil {
		return err
	}
	at := sort.SearchInts(s.order, src)
	s.order = append(s.order, 0)
	copy(s.order[at+1:], s.order[at:])
	s.order[at] = src
	return nil
}

// Stats implements Store.
func (s *Sharded) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StoreStats{
		Records:    int64(len(s.order)),
		Dirty:      int64(len(s.staged)),
		Segments:   int64(len(s.segs)),
		Flushes:    s.flushes,
		Migrations: s.migrations,
		MmapReads:  s.mmapReads,
		PreadReads: s.preadReads,
	}
	for _, sg := range s.segs {
		st.Bytes += sg.fileSize()
	}
	return st
}

// Close implements Store: the stage is flushed, the background maintainer is
// stopped and every segment is unmapped and closed.
func (s *Sharded) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.flushLocked()
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sg := range s.segs {
		if cerr := sg.close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.segs = make(map[int]*segment)
	return err
}

// maintain is the background maintainer: after every Grow (and after a
// reopen that found stale segments) it migrates segments to the current
// epoch one at a time, holding the store lock only per segment so foreground
// batches interleave freely.
func (s *Sharded) maintain() {
	defer s.wg.Done()
	for {
		select {
		case <-s.quit:
			return
		case <-s.growCh:
		}
		for {
			select {
			case <-s.quit:
				return
			default:
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				return
			}
			var stale *segment
			for _, sg := range s.segs {
				if sg.recN < s.n {
					stale = sg
					break
				}
			}
			if stale == nil {
				s.mu.Unlock()
				break
			}
			if err := s.migrateSegmentLocked(stale); err != nil {
				if s.maintErr == nil {
					s.maintErr = err
				}
				s.mu.Unlock()
				break
			}
			s.mu.Unlock()
		}
	}
}
