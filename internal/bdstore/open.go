package bdstore

import (
	"errors"
	"fmt"
	"os"
)

// Mode selects the create-vs-reopen semantics of Open. The zero value is
// ModeCreate, the safe default: an existing store is never silently
// destroyed (the v1 constructors' O_TRUNC behaviour is exactly the bug this
// API replaces).
type Mode int

const (
	// ModeCreate initialises a fresh store and fails with ErrStoreExists if
	// the directory already holds one.
	ModeCreate Mode = iota
	// ModeRecreate replaces any existing store in the directory with a fresh
	// one. It refuses to touch a non-empty directory that does not hold a
	// store.
	ModeRecreate
	// ModeReopen opens an existing store and fails with ErrNoStore if the
	// directory does not hold one. The source set and vertex count come from
	// the store itself; Options fields, when non-zero, must agree with it.
	ModeReopen
)

// ErrStoreExists is returned by Open in ModeCreate when the directory
// already holds a store.
var ErrStoreExists = errors.New("bdstore: store already exists")

// ErrNoStore is returned by Open in ModeReopen when the directory does not
// hold a store.
var ErrNoStore = errors.New("bdstore: no store in directory")

// Options configures Open.
type Options struct {
	// NumVertices is the vertex count n covered by every record. Required
	// (non-zero) for ModeCreate and ModeRecreate; for ModeReopen it must be
	// zero or equal to the stored count.
	NumVertices int

	// Sources is the managed source set. nil means every vertex is a source
	// (the full-store convention of the v1 constructors); an empty non-nil
	// slice means no sources. Must be nil for ModeReopen, where the set is
	// recovered from the store.
	Sources []int

	// Mode selects create-vs-reopen semantics; the zero value is ModeCreate.
	Mode Mode

	// SegmentRecords is the number of source records per segment file
	// (0 = DefaultSegmentRecords). For ModeReopen it must be zero or equal
	// to the stored layout.
	SegmentRecords int

	// DisableMmap forces the positional-read fallback even where mmap is
	// available. Reads are bit-identical either way.
	DisableMmap bool
}

// Open returns a Store backed by the sharded v2 layout rooted at dir, or an
// in-memory store when dir is empty (""). It replaces the
// NewDiskStore / NewDiskStoreForSources / NewMemStore constructor zoo with
// one entry point and explicit create-vs-reopen semantics — reopening an
// existing store is a deliberate ModeReopen, never an accidental truncate.
func Open(dir string, o Options) (Store, error) {
	if o.Mode < ModeCreate || o.Mode > ModeReopen {
		return nil, fmt.Errorf("bdstore: invalid mode %d", o.Mode)
	}
	if o.SegmentRecords < 0 || o.SegmentRecords > MaxSegmentRecords {
		return nil, fmt.Errorf("bdstore: segment records %d out of range [1, %d]", o.SegmentRecords, MaxSegmentRecords)
	}
	if o.NumVertices < 0 {
		return nil, fmt.Errorf("bdstore: negative vertex count %d", o.NumVertices)
	}
	if dir == "" {
		if o.Mode == ModeReopen {
			return nil, fmt.Errorf("bdstore: %w: an in-memory store cannot be reopened", ErrNoStore)
		}
		return NewMemStoreForSources(o.NumVertices, o.sourceSet()), nil
	}
	switch o.Mode {
	case ModeReopen:
		if !hasManifest(dir) {
			return nil, fmt.Errorf("%w: %s", ErrNoStore, dir)
		}
		if o.Sources != nil {
			return nil, fmt.Errorf("bdstore: reopening %s: the source set comes from the store, Options.Sources must be nil", dir)
		}
		s, err := reopenSharded(dir, !o.DisableMmap)
		if err != nil {
			return nil, err
		}
		if o.NumVertices != 0 && o.NumVertices != s.n {
			s.Close()
			return nil, fmt.Errorf("bdstore: reopening %s: store covers %d vertices, options say %d", dir, s.n, o.NumVertices)
		}
		if o.SegmentRecords != 0 && o.SegmentRecords != s.segRecords {
			s.Close()
			return nil, fmt.Errorf("bdstore: reopening %s: store has %d records per segment, options say %d", dir, s.segRecords, o.SegmentRecords)
		}
		return s, nil
	case ModeCreate:
		if hasManifest(dir) {
			return nil, fmt.Errorf("%w: %s (use ModeReopen or ModeRecreate)", ErrStoreExists, dir)
		}
	case ModeRecreate:
		if hasManifest(dir) {
			if err := os.RemoveAll(dir); err != nil {
				return nil, fmt.Errorf("bdstore: recreating %s: %w", dir, err)
			}
		} else if entries, err := os.ReadDir(dir); err == nil && len(entries) > 0 {
			return nil, fmt.Errorf("bdstore: recreating %s: directory is not empty and holds no store", dir)
		}
	}
	segRecords := o.SegmentRecords
	if segRecords == 0 {
		segRecords = DefaultSegmentRecords
	}
	return createSharded(dir, o.NumVertices, o.sourceSet(), segRecords, !o.DisableMmap)
}

// sourceSet materialises the nil-means-every-vertex convention.
func (o Options) sourceSet() []int {
	if o.Sources != nil {
		return o.Sources
	}
	sources := make([]int, o.NumVertices)
	for i := range sources {
		sources[i] = i
	}
	return sources
}
