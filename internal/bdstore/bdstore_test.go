package bdstore

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"streambc/internal/bc"
)

// Every store must satisfy the Store interface (which incremental.Store
// aliases — asserting against the local name keeps this package free of an
// import cycle with incremental).
var (
	_ Store = (*MemStore)(nil)
	_ Store = (*DiskStore)(nil)
	_ Store = (*Sharded)(nil)
)

func randomRecord(rng *rand.Rand, n int) *bc.SourceState {
	rec := bc.NewSourceState(n)
	for i := 0; i < n; i++ {
		if rng.Intn(5) == 0 {
			rec.Dist[i] = bc.Unreachable
			rec.Sigma[i] = 0
			rec.Delta[i] = 0
			continue
		}
		rec.Dist[i] = int32(rng.Intn(100))
		rec.Sigma[i] = float64(rng.Intn(1000) + 1)
		rec.Delta[i] = rng.Float64() * 50
	}
	return rec
}

func recordsEqual(a, b *bc.SourceState) bool {
	if len(a.Dist) != len(b.Dist) {
		return false
	}
	for i := range a.Dist {
		if a.Dist[i] != b.Dist[i] || a.Sigma[i] != b.Sigma[i] || math.Abs(a.Delta[i]-b.Delta[i]) > 1e-12 {
			return false
		}
	}
	return true
}

func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 3, 17, 100} {
		rec := randomRecord(rng, n)
		buf := make([]byte, recordSize(n))
		if err := encodeRecord(rec, buf); err != nil {
			t.Fatalf("encode n=%d: %v", n, err)
		}
		out := bc.NewSourceState(0)
		if err := decodeRecord(buf, n, out); err != nil {
			t.Fatalf("decode n=%d: %v", n, err)
		}
		if !recordsEqual(rec, out) {
			t.Fatalf("round trip mismatch for n=%d", n)
		}
		var dist []int32
		if err := decodeDistances(buf[:distColumnSize(n)], n, &dist); err != nil {
			t.Fatalf("decodeDistances: %v", err)
		}
		for i := range dist {
			if dist[i] != rec.Dist[i] {
				t.Fatalf("distance column mismatch at %d", i)
			}
		}
	}
}

func TestCodecErrors(t *testing.T) {
	rec := bc.NewSourceState(4)
	if err := encodeRecord(rec, make([]byte, 10)); err == nil {
		t.Fatal("expected error for wrong buffer size")
	}
	if err := decodeRecord(make([]byte, 10), 4, rec); err == nil {
		t.Fatal("expected error for wrong decode size")
	}
	rec.Sigma = rec.Sigma[:2]
	if err := encodeRecord(rec, make([]byte, recordSize(4))); err == nil {
		t.Fatal("expected error for inconsistent record")
	}
}

// quick property: codec round trip preserves arbitrary float payloads.
func TestQuickCodecRoundTrip(t *testing.T) {
	f := func(dists []int32, sigmas []float64) bool {
		n := len(dists)
		if len(sigmas) < n {
			n = len(sigmas)
		}
		if n == 0 {
			return true
		}
		rec := bc.NewSourceState(n)
		for i := 0; i < n; i++ {
			rec.Dist[i] = dists[i]
			rec.Sigma[i] = sigmas[i]
			rec.Delta[i] = sigmas[i] / 2
		}
		buf := make([]byte, recordSize(n))
		if err := encodeRecord(rec, buf); err != nil {
			return false
		}
		out := bc.NewSourceState(0)
		if err := decodeRecord(buf, n, out); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if out.Dist[i] != rec.Dist[i] {
				return false
			}
			if math.Float64bits(out.Sigma[i]) != math.Float64bits(rec.Sigma[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func newDiskStore(t *testing.T, n int) *DiskStore {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bd.bin")
	d, err := NewDiskStore(path, n)
	if err != nil {
		t.Fatalf("NewDiskStore: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func storeConformance(t *testing.T, name string, store Store, n int) {
	t.Helper()
	if store.NumVertices() != n {
		t.Fatalf("%s: NumVertices = %d, want %d", name, store.NumVertices(), n)
	}
	if got := len(store.Sources()); got != n {
		t.Fatalf("%s: Sources = %d, want %d", name, got, n)
	}

	// A freshly created store holds isolated-vertex records.
	rec := bc.NewSourceState(0)
	if err := store.Load(1, rec); err != nil {
		t.Fatalf("%s: Load: %v", name, err)
	}
	if rec.Dist[1] != 0 || rec.Sigma[1] != 1 || rec.Dist[0] != bc.Unreachable {
		t.Fatalf("%s: default record wrong: %+v", name, rec)
	}

	// Save then load round trip.
	rng := rand.New(rand.NewSource(7))
	want := randomRecord(rng, n)
	if err := store.Save(2, want); err != nil {
		t.Fatalf("%s: Save: %v", name, err)
	}
	got := bc.NewSourceState(0)
	if err := store.Load(2, got); err != nil {
		t.Fatalf("%s: Load: %v", name, err)
	}
	if !recordsEqual(want, got) {
		t.Fatalf("%s: save/load mismatch", name)
	}

	// Distance-only load matches.
	var dist []int32
	if err := store.LoadDistances(2, &dist); err != nil {
		t.Fatalf("%s: LoadDistances: %v", name, err)
	}
	for i := range dist {
		if dist[i] != want.Dist[i] {
			t.Fatalf("%s: distance column mismatch at %d", name, i)
		}
	}

	// Unknown source is an error.
	if err := store.Load(n+5, rec); err == nil {
		t.Fatalf("%s: expected error for unknown source", name)
	}

	// Grow pads existing records and allows new sources.
	if err := store.Grow(n + 2); err != nil {
		t.Fatalf("%s: Grow: %v", name, err)
	}
	if err := store.Load(2, got); err != nil {
		t.Fatalf("%s: Load after grow: %v", name, err)
	}
	if len(got.Dist) != n+2 || got.Dist[n] != bc.Unreachable || got.Dist[n+1] != bc.Unreachable {
		t.Fatalf("%s: grown record not padded: %v", name, got.Dist)
	}
	for i := 0; i < n; i++ {
		if got.Dist[i] != want.Dist[i] {
			t.Fatalf("%s: grow lost data at %d", name, i)
		}
	}
	if err := store.AddSource(n); err != nil {
		t.Fatalf("%s: AddSource: %v", name, err)
	}
	if err := store.AddSource(n); err == nil {
		t.Fatalf("%s: duplicate AddSource must fail", name)
	}
	if err := store.Load(n, got); err != nil {
		t.Fatalf("%s: Load new source: %v", name, err)
	}
	if got.Dist[n] != 0 || got.Sigma[n] != 1 {
		t.Fatalf("%s: new source record wrong", name)
	}
	if err := store.Close(); err != nil {
		t.Fatalf("%s: Close: %v", name, err)
	}
}

func TestMemStoreConformance(t *testing.T) {
	storeConformance(t, "mem", NewMemStore(6), 6)
}

func TestDiskStoreConformance(t *testing.T) {
	storeConformance(t, "disk", newDiskStore(t, 6), 6)
}

func TestStoreForSourcesPartition(t *testing.T) {
	n := 10
	mem := NewMemStoreForSources(n, []int{2, 5, 7})
	if got := mem.Sources(); len(got) != 3 || got[0] != 2 || got[2] != 7 {
		t.Fatalf("mem sources = %v", got)
	}
	rec := bc.NewSourceState(0)
	if err := mem.Load(3, rec); err == nil {
		t.Fatal("expected error loading unmanaged source")
	}
	path := filepath.Join(t.TempDir(), "part.bin")
	disk, err := NewDiskStoreForSources(path, n, []int{1, 4})
	if err != nil {
		t.Fatalf("NewDiskStoreForSources: %v", err)
	}
	defer disk.Close()
	if got := disk.Sources(); len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Fatalf("disk sources = %v", got)
	}
	if err := disk.Load(1, rec); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if rec.Dist[1] != 0 {
		t.Fatalf("partition default record wrong")
	}
}

func TestDiskStoreFileSizeAndRemove(t *testing.T) {
	d := newDiskStore(t, 8)
	want := int64(diskHeaderSize + 8*recordSize(8))
	if d.FileSize() != want {
		t.Fatalf("FileSize = %d, want %d", d.FileSize(), want)
	}
	if d.Path() == "" {
		t.Fatal("empty path")
	}
	if err := d.Remove(); err != nil {
		t.Fatalf("Remove: %v", err)
	}
}

func TestMemStoreBytes(t *testing.T) {
	m := NewMemStore(10)
	if m.Bytes() != int64(10*recordSize(10)) {
		t.Fatalf("Bytes = %d", m.Bytes())
	}
}

func TestMemAndDiskStoreAgree(t *testing.T) {
	n := 12
	mem := NewMemStore(n)
	disk := newDiskStore(t, n)
	rng := rand.New(rand.NewSource(99))
	for s := 0; s < n; s++ {
		rec := randomRecord(rng, n)
		if err := mem.Save(s, rec); err != nil {
			t.Fatal(err)
		}
		if err := disk.Save(s, rec); err != nil {
			t.Fatal(err)
		}
	}
	a, b := bc.NewSourceState(0), bc.NewSourceState(0)
	for s := 0; s < n; s++ {
		if err := mem.Load(s, a); err != nil {
			t.Fatal(err)
		}
		if err := disk.Load(s, b); err != nil {
			t.Fatal(err)
		}
		if !recordsEqual(a, b) {
			t.Fatalf("mem and disk records differ for source %d", s)
		}
	}
}
