package bdstore

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"streambc/internal/bc"
)

func openSharded(t *testing.T, dir string, o Options) *Sharded {
	t.Helper()
	s, err := Open(dir, o)
	if err != nil {
		t.Fatalf("Open(%s, %+v): %v", dir, o, err)
	}
	sh, ok := s.(*Sharded)
	if !ok {
		t.Fatalf("Open returned %T, want *Sharded", s)
	}
	return sh
}

func TestShardedConformance(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"mmap", Options{NumVertices: 6, SegmentRecords: 2}},
		{"pread", Options{NumVertices: 6, SegmentRecords: 2, DisableMmap: true}},
		{"one-segment", Options{NumVertices: 6, SegmentRecords: 512}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			storeConformance(t, "sharded/"+tc.name, openSharded(t, t.TempDir(), tc.opts), 6)
		})
	}
}

func TestOpenMemStoreAndErrors(t *testing.T) {
	s, err := Open("", Options{NumVertices: 4})
	if err != nil {
		t.Fatalf("Open(mem): %v", err)
	}
	if _, ok := s.(*MemStore); !ok {
		t.Fatalf("Open(\"\") returned %T, want *MemStore", s)
	}
	s.Close()
	if _, err := Open("", Options{NumVertices: 4, Mode: ModeReopen}); !errors.Is(err, ErrNoStore) {
		t.Fatalf("reopening a memory store: err = %v, want ErrNoStore", err)
	}
	if _, err := Open(t.TempDir(), Options{NumVertices: 4, Mode: Mode(9)}); err == nil {
		t.Fatal("invalid mode must be rejected")
	}
	if _, err := Open(t.TempDir(), Options{NumVertices: 4, SegmentRecords: MaxSegmentRecords + 1}); err == nil {
		t.Fatal("oversized segment records must be rejected")
	}
	if _, err := Open(t.TempDir(), Options{NumVertices: -1}); err == nil {
		t.Fatal("negative vertex count must be rejected")
	}
}

func TestOpenCreateReopenRecreateSemantics(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(21))
	const n = 11

	s := openSharded(t, dir, Options{NumVertices: n, Sources: []int{1, 4, 9}, SegmentRecords: 4})
	want := randomRecord(rng, n)
	if err := s.Save(4, want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A second create must refuse to clobber the store.
	if _, err := Open(dir, Options{NumVertices: n}); !errors.Is(err, ErrStoreExists) {
		t.Fatalf("ModeCreate on existing store: err = %v, want ErrStoreExists", err)
	}

	// Reopen recovers the source set and the flushed records; sources never
	// written still read as fresh isolated records.
	r := openSharded(t, dir, Options{Mode: ModeReopen})
	if r.NumVertices() != n {
		t.Fatalf("reopened NumVertices = %d, want %d", r.NumVertices(), n)
	}
	if got := r.Sources(); len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 9 {
		t.Fatalf("reopened Sources = %v, want [1 4 9]", got)
	}
	got := bc.NewSourceState(0)
	if err := r.Load(4, got); err != nil {
		t.Fatalf("Load after reopen: %v", err)
	}
	if !recordsEqual(want, got) {
		t.Fatal("reopened record differs from the flushed one")
	}
	if err := r.Load(9, got); err != nil {
		t.Fatalf("Load unwritten source: %v", err)
	}
	if got.Dist[9] != 0 || got.Sigma[9] != 1 || got.Dist[0] != bc.Unreachable {
		t.Fatalf("unwritten source must read as isolated, got %+v", got)
	}
	r.Close()

	// Reopen validations: non-zero options must agree with the manifest, and
	// the source set always comes from the store.
	if _, err := Open(dir, Options{Mode: ModeReopen, NumVertices: n + 1}); err == nil {
		t.Fatal("reopen with wrong vertex count must fail")
	}
	if _, err := Open(dir, Options{Mode: ModeReopen, SegmentRecords: 8}); err == nil {
		t.Fatal("reopen with wrong segment size must fail")
	}
	if _, err := Open(dir, Options{Mode: ModeReopen, Sources: []int{1}}); err == nil {
		t.Fatal("reopen with an explicit source set must fail")
	}

	// Recreate replaces the store...
	s2 := openSharded(t, dir, Options{NumVertices: 5, Mode: ModeRecreate})
	if s2.NumVertices() != 5 || len(s2.Sources()) != 5 {
		t.Fatalf("recreated store: n=%d sources=%d", s2.NumVertices(), len(s2.Sources()))
	}
	s2.Close()

	// ...but refuses to delete a non-empty directory that is not a store.
	plain := t.TempDir()
	if err := os.WriteFile(filepath.Join(plain, "keep.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(plain, Options{NumVertices: 5, Mode: ModeRecreate}); err == nil {
		t.Fatal("ModeRecreate must refuse a non-store directory with contents")
	}
	// Reopen of a store-less directory is explicit too.
	if _, err := Open(plain, Options{Mode: ModeReopen}); !errors.Is(err, ErrNoStore) {
		t.Fatalf("ModeReopen without a store: err = %v, want ErrNoStore", err)
	}
}

func TestShardedFlushStatsAndDirtyAccounting(t *testing.T) {
	const n = 9
	s := openSharded(t, t.TempDir(), Options{NumVertices: n, SegmentRecords: 4})
	defer s.Close()

	st := s.Stats()
	if st.Records != n || st.Dirty != 0 || st.Segments != 3 {
		t.Fatalf("fresh stats = %+v", st)
	}
	if st.Bytes == 0 {
		t.Fatalf("fresh stats report zero bytes: %+v", st)
	}

	rng := rand.New(rand.NewSource(3))
	for src := 0; src < 5; src++ {
		if err := s.Save(src, randomRecord(rng, n)); err != nil {
			t.Fatalf("Save: %v", err)
		}
	}
	if got := s.Stats().Dirty; got != 5 {
		t.Fatalf("Dirty after 5 staged saves = %d, want 5", got)
	}
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if got := s.Stats().Dirty; got != 0 {
		t.Fatalf("Dirty after flush = %d, want 0", got)
	}
	// Staged records must be readable before any flush (read-your-writes).
	want := randomRecord(rng, n)
	if err := s.Save(7, want); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got := bc.NewSourceState(0)
	if err := s.Load(7, got); err != nil {
		t.Fatalf("Load staged: %v", err)
	}
	if !recordsEqual(want, got) {
		t.Fatal("staged record not visible to Load")
	}
	var dist []int32
	if err := s.LoadDistances(7, &dist); err != nil {
		t.Fatalf("LoadDistances staged: %v", err)
	}
	for i := range dist {
		if dist[i] != want.Dist[i] {
			t.Fatalf("staged distance column differs at %d", i)
		}
	}
}

// TestShardedMmapAndPreadAgree drives an identical save/flush/grow sequence
// through both read paths and requires byte-identical results.
func TestShardedMmapAndPreadAgree(t *testing.T) {
	const n = 13
	mm := openSharded(t, t.TempDir(), Options{NumVertices: n, SegmentRecords: 4})
	pr := openSharded(t, t.TempDir(), Options{NumVertices: n, SegmentRecords: 4, DisableMmap: true})
	defer mm.Close()
	defer pr.Close()
	if pr.MmapActive() {
		t.Fatal("DisableMmap store reports an active mapping")
	}

	rng := rand.New(rand.NewSource(8))
	for src := 0; src < n; src += 2 {
		rec := randomRecord(rng, n)
		if err := mm.Save(src, rec); err != nil {
			t.Fatal(err)
		}
		if err := pr.Save(src, rec); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range []*Sharded{mm, pr} {
		if err := s.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}
		if err := s.Grow(n + 3); err != nil {
			t.Fatalf("Grow: %v", err)
		}
	}
	a, b := bc.NewSourceState(0), bc.NewSourceState(0)
	for src := 0; src < n; src++ {
		if err := mm.Load(src, a); err != nil {
			t.Fatal(err)
		}
		if err := pr.Load(src, b); err != nil {
			t.Fatal(err)
		}
		if !recordsEqual(a, b) {
			t.Fatalf("mmap and pread records differ for source %d", src)
		}
	}
}

// TestShardedGrowServesPaddedReadsAndMigrates verifies the epoch-based Grow:
// reads are correct immediately after the epoch bump (padded from stale
// segments), and the background maintainer eventually rewrites every segment
// to the new stride without changing what readers see.
func TestShardedGrowServesPaddedReadsAndMigrates(t *testing.T) {
	const n, grown = 10, 17
	s := openSharded(t, t.TempDir(), Options{NumVertices: n, SegmentRecords: 4})
	defer s.Close()

	rng := rand.New(rand.NewSource(12))
	want := make([]*bc.SourceState, n)
	for src := 0; src < n; src++ {
		want[src] = randomRecord(rng, n)
		if err := s.Save(src, want[src]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Grow(grown); err != nil {
		t.Fatalf("Grow: %v", err)
	}

	check := func(context string) {
		t.Helper()
		got := bc.NewSourceState(0)
		for src := 0; src < n; src++ {
			if err := s.Load(src, got); err != nil {
				t.Fatalf("%s: Load(%d): %v", context, src, err)
			}
			if len(got.Dist) != grown {
				t.Fatalf("%s: record length %d, want %d", context, len(got.Dist), grown)
			}
			for v := 0; v < len(want[src].Dist); v++ {
				if got.Dist[v] != want[src].Dist[v] || got.Sigma[v] != want[src].Sigma[v] || got.Delta[v] != want[src].Delta[v] {
					t.Fatalf("%s: source %d differs at vertex %d", context, src, v)
				}
			}
			for v := len(want[src].Dist); v < grown; v++ {
				if got.Dist[v] != bc.Unreachable || got.Sigma[v] != 0 || got.Delta[v] != 0 {
					t.Fatalf("%s: source %d padding wrong at vertex %d", context, src, v)
				}
			}
		}
	}
	check("immediately after Grow")

	// A flushed save at the new epoch forces the target segment to the new
	// stride inline; the maintainer handles the rest. Closing waits for it.
	upd := randomRecord(rng, grown)
	if err := s.Save(0, upd); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want[0] = upd
	check("after a post-grow flush")

	// AddSource beyond the old range lands in a brand-new segment.
	if err := s.AddSource(grown - 1); err != nil {
		t.Fatalf("AddSource: %v", err)
	}
	got := bc.NewSourceState(0)
	if err := s.Load(grown-1, got); err != nil {
		t.Fatalf("Load new source: %v", err)
	}
	if got.Dist[grown-1] != 0 || got.Sigma[grown-1] != 1 {
		t.Fatalf("new source record wrong: %+v", got)
	}

	// After Close (which stops the maintainer), a reopen must find every
	// segment at the current epoch or migrate the stragglers itself — either
	// way, the data reads back unchanged.
	dir := s.Dir()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r := openSharded(t, dir, Options{Mode: ModeReopen})
	s = r
	check("after reopen")
}

// TestShardedGrowPersistsAcrossAbruptReopen simulates an interrupted Grow:
// the manifest carries the new epoch while segment files are still at the old
// stride. A reopen must serve padded reads and finish the migration.
func TestShardedGrowPersistsAcrossAbruptReopen(t *testing.T) {
	const n, grown = 6, 9
	dir := t.TempDir()
	s := openSharded(t, dir, Options{NumVertices: n, SegmentRecords: 2})
	rng := rand.New(rand.NewSource(5))
	want := randomRecord(rng, n)
	if err := s.Save(3, want); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Bump the epoch behind the store's back: only the manifest moves, as if
	// the process died right after Grow's manifest write.
	if err := writeManifest(dir, storeManifest{n: grown, segRecords: 2}); err != nil {
		t.Fatal(err)
	}

	r := openSharded(t, dir, Options{Mode: ModeReopen})
	defer r.Close()
	if r.NumVertices() != grown {
		t.Fatalf("NumVertices = %d, want %d", r.NumVertices(), grown)
	}
	got := bc.NewSourceState(0)
	if err := r.Load(3, got); err != nil {
		t.Fatal(err)
	}
	if len(got.Dist) != grown {
		t.Fatalf("record length %d, want %d", len(got.Dist), grown)
	}
	for v := 0; v < n; v++ {
		if got.Dist[v] != want.Dist[v] || got.Sigma[v] != want.Sigma[v] || got.Delta[v] != want.Delta[v] {
			t.Fatalf("reopened record differs at vertex %d", v)
		}
	}
	for v := n; v < grown; v++ {
		if got.Dist[v] != bc.Unreachable {
			t.Fatalf("padding wrong at vertex %d", v)
		}
	}
}

func TestShardedLayoutOnDisk(t *testing.T) {
	dir := t.TempDir()
	s := openSharded(t, dir, Options{NumVertices: 520, Sources: []int{0, 100, 515}, SegmentRecords: 2})
	defer s.Close()
	// Sources 0, 100 and 515 live in segments 0, 50 and 257; segment 257
	// wraps to shard 0x01.
	for _, want := range []string{
		filepath.Join(dir, "MANIFEST"),
		filepath.Join(dir, "00", "seg-00000000.bds"),
		filepath.Join(dir, "32", "seg-00000050.bds"),
		filepath.Join(dir, "01", "seg-00000257.bds"),
	} {
		if _, err := os.Stat(want); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
	if s.SegmentRecords() != 2 {
		t.Fatalf("SegmentRecords = %d", s.SegmentRecords())
	}
	if got := s.Stats().Segments; got != 3 {
		t.Fatalf("Segments = %d, want 3", got)
	}
}

// FuzzSourceLocation checks the source → (segment, slot, offset) mapping
// invariants for arbitrary ids and segment sizes.
func FuzzSourceLocation(f *testing.F) {
	f.Add(0, 64, 100)
	f.Add(63, 64, 100)
	f.Add(64, 64, 100)
	f.Add(1<<30, 3, 7)
	f.Add(515, 2, 520)
	f.Fuzz(func(t *testing.T, src, segRecords, recN int) {
		if src < 0 || segRecords < 1 || segRecords > MaxSegmentRecords {
			t.Skip()
		}
		if recN < 1 || recN > 1<<20 {
			t.Skip()
		}
		loc := locateSource(src, segRecords)
		if loc.seg < 0 || loc.slot < 0 || loc.slot >= segRecords {
			t.Fatalf("locateSource(%d, %d) = %+v out of range", src, segRecords, loc)
		}
		if loc.seg*segRecords+loc.slot != src {
			t.Fatalf("locateSource(%d, %d) = %+v does not invert", src, segRecords, loc)
		}
		// Slots must map to non-overlapping, in-bounds record windows.
		off := segRecordOffset(segRecords, recN, loc.slot)
		if off < segRecordsOffset(segRecords) {
			t.Fatalf("record offset %d inside header/bitmaps", off)
		}
		if end := off + int64(recordSize(recN)); end > segFileSize(segRecords, recN) {
			t.Fatalf("record [%d, %d) beyond file size %d", off, end, segFileSize(segRecords, recN))
		}
		if loc.slot+1 < segRecords {
			if next := segRecordOffset(segRecords, recN, loc.slot+1); next != off+int64(recordSize(recN)) {
				t.Fatalf("slots %d and %d overlap or leave a gap", loc.slot, loc.slot+1)
			}
		}
		// The shard path must round-trip through the scanner's validation.
		if shardName(loc.seg) != filepath.Base(filepath.Dir(segmentPath("root", loc.seg))) {
			t.Fatalf("shard path mismatch for segment %d", loc.seg)
		}
	})
}

// FuzzSegmentHeader feeds arbitrary bytes to the segment-header codec: it
// must never panic, and whatever it accepts must re-encode to the same bytes.
func FuzzSegmentHeader(f *testing.F) {
	valid := make([]byte, segHeaderFixed)
	if err := encodeSegHeader(segHeader{recN: 100, base: 128, segRecords: 64}, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte("BDS2 short"))
	f.Add(make([]byte, segHeaderFixed))
	f.Fuzz(func(t *testing.T, buf []byte) {
		h, err := decodeSegHeader(buf)
		if err != nil {
			return
		}
		if h.segRecords < 1 || h.segRecords > MaxSegmentRecords || h.base%h.segRecords != 0 {
			t.Fatalf("decode accepted invalid header %+v", h)
		}
		out := make([]byte, segHeaderFixed)
		if err := encodeSegHeader(h, out); err != nil {
			t.Fatalf("re-encode of accepted header %+v: %v", h, err)
		}
		if string(out) != string(buf[:segHeaderFixed]) {
			t.Fatalf("header round trip differs:\n in  %x\n out %x", buf[:segHeaderFixed], out)
		}
		// Sanity: the decoded sizes must be consistent with the u64 fields.
		if got := binary.LittleEndian.Uint64(buf[8:16]); got != uint64(h.recN) {
			t.Fatalf("recN mismatch: %d vs %d", got, h.recN)
		}
	})
}
