// Package bdstore provides the containers for the per-source betweenness
// data BD[·] used by the incremental framework: an in-memory store (the "MO"
// configuration of the paper) and an out-of-core store that keeps the data on
// disk in the columnar, fixed-width binary layout of Section 5.1 (the "DO"
// configuration). Both implement the incremental.Store interface, can manage
// either the full source set or an arbitrary subset (one partition of the
// parallel engine), and can grow when new vertices arrive in the stream.
package bdstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"unsafe"

	"streambc/internal/bc"
)

// hostLittleEndian reports whether the host already stores integers and
// floats in the on-disk byte order. On such hosts (amd64, arm64, ...) the
// codec degenerates to bulk copies between the record columns and the I/O
// buffer; the per-element encoding/binary loops remain as the portable
// big-endian fallback. The raw byte image of a float64 is exactly its
// Float64bits round trip, so the fast path is bit-identical to the slow one.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// int32Bytes returns the raw byte image of an int32 column. The pointer is
// derived from the typed slice — always aligned for its element type — never
// from the byte buffer, which keeps the conversion valid under checkptr.
func int32Bytes(v []int32) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), len(v)*distWidth)
}

// float64Bytes returns the raw byte image of a float64 column.
func float64Bytes(v []float64) []byte {
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(v))), len(v)*sigmaWidth)
}

// Record layout on disk, per source, for n vertices (little endian):
//
//	distance column:  n * 4 bytes (int32, -1 = unreachable)
//	sigma column:     n * 8 bytes (float64)
//	delta column:     n * 8 bytes (float64)
//
// Columns are stored back to back so that the distance column — the only data
// needed to decide whether a source can be skipped (dd = 0) — can be read
// with a single short sequential read.
const (
	distWidth  = 4
	sigmaWidth = 8
	deltaWidth = 8
)

// recordSize returns the number of bytes of one source record for n vertices.
func recordSize(n int) int { return n * (distWidth + sigmaWidth + deltaWidth) }

// distColumnSize returns the number of bytes of the distance column alone.
func distColumnSize(n int) int { return n * distWidth }

// encodeRecord serialises rec into buf, which must be recordSize(n) bytes.
func encodeRecord(rec *bc.SourceState, buf []byte) error {
	n := len(rec.Dist)
	if len(rec.Sigma) != n || len(rec.Delta) != n {
		return fmt.Errorf("bdstore: inconsistent record columns (%d/%d/%d)", n, len(rec.Sigma), len(rec.Delta))
	}
	if len(buf) != recordSize(n) {
		return fmt.Errorf("bdstore: encode buffer is %d bytes, want %d", len(buf), recordSize(n))
	}
	if hostLittleEndian {
		off := copy(buf, int32Bytes(rec.Dist))
		off += copy(buf[off:], float64Bytes(rec.Sigma))
		copy(buf[off:], float64Bytes(rec.Delta))
		return nil
	}
	off := 0
	for _, d := range rec.Dist {
		binary.LittleEndian.PutUint32(buf[off:], uint32(d))
		off += distWidth
	}
	for _, s := range rec.Sigma {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(s))
		off += sigmaWidth
	}
	for _, d := range rec.Delta {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(d))
		off += deltaWidth
	}
	return nil
}

// decodeRecord fills rec (resized to n vertices) from buf.
func decodeRecord(buf []byte, n int, rec *bc.SourceState) error {
	if len(buf) != recordSize(n) {
		return fmt.Errorf("bdstore: decode buffer is %d bytes, want %d", len(buf), recordSize(n))
	}
	rec.Resize(n)
	if hostLittleEndian {
		off := copy(int32Bytes(rec.Dist), buf)
		off += copy(float64Bytes(rec.Sigma), buf[off:])
		copy(float64Bytes(rec.Delta), buf[off:])
		return nil
	}
	off := 0
	for i := 0; i < n; i++ {
		rec.Dist[i] = int32(binary.LittleEndian.Uint32(buf[off:]))
		off += distWidth
	}
	for i := 0; i < n; i++ {
		rec.Sigma[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += sigmaWidth
	}
	for i := 0; i < n; i++ {
		rec.Delta[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += deltaWidth
	}
	return nil
}

// decodeDistances fills dist (resized to n entries) from the distance column.
func decodeDistances(buf []byte, n int, dist *[]int32) error {
	if len(buf) != distColumnSize(n) {
		return fmt.Errorf("bdstore: distance buffer is %d bytes, want %d", len(buf), distColumnSize(n))
	}
	d := *dist
	if cap(d) < n {
		d = make([]int32, n)
	}
	d = d[:n]
	if hostLittleEndian {
		copy(int32Bytes(d), buf)
	} else {
		for i := 0; i < n; i++ {
			d[i] = int32(binary.LittleEndian.Uint32(buf[i*distWidth:]))
		}
	}
	*dist = d
	return nil
}

// decodeRecordPadded fills rec (resized to n vertices) from a record encoded
// for recN <= n vertices, padding the tail the way Grow does: unreachable
// distances, zero sigma and delta. It is how the sharded store reads a
// segment that has not yet been migrated to the current epoch — the result is
// bit-identical to migrating the record first and reading it after.
func decodeRecordPadded(buf []byte, recN, n int, rec *bc.SourceState) error {
	if recN == n {
		return decodeRecord(buf, n, rec)
	}
	if recN > n {
		return fmt.Errorf("bdstore: record covers %d vertices, store expects at most %d", recN, n)
	}
	if len(buf) != recordSize(recN) {
		return fmt.Errorf("bdstore: decode buffer is %d bytes, want %d", len(buf), recordSize(recN))
	}
	rec.Resize(n)
	if hostLittleEndian {
		off := copy(int32Bytes(rec.Dist[:recN]), buf)
		off += copy(float64Bytes(rec.Sigma[:recN]), buf[off:])
		copy(float64Bytes(rec.Delta[:recN]), buf[off:])
	} else {
		off := 0
		for i := 0; i < recN; i++ {
			rec.Dist[i] = int32(binary.LittleEndian.Uint32(buf[off:]))
			off += distWidth
		}
		for i := 0; i < recN; i++ {
			rec.Sigma[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += sigmaWidth
		}
		for i := 0; i < recN; i++ {
			rec.Delta[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += deltaWidth
		}
	}
	for i := recN; i < n; i++ {
		rec.Dist[i] = bc.Unreachable
		rec.Sigma[i] = 0
		rec.Delta[i] = 0
	}
	return nil
}

// decodeDistancesPadded fills dist (resized to n entries) from a distance
// column of recN <= n entries, padding the tail with unreachable.
func decodeDistancesPadded(buf []byte, recN, n int, dist *[]int32) error {
	if recN == n {
		return decodeDistances(buf, n, dist)
	}
	if recN > n {
		return fmt.Errorf("bdstore: distance column covers %d vertices, store expects at most %d", recN, n)
	}
	if len(buf) != distColumnSize(recN) {
		return fmt.Errorf("bdstore: distance buffer is %d bytes, want %d", len(buf), distColumnSize(recN))
	}
	d := *dist
	if cap(d) < n {
		d = make([]int32, n)
	}
	d = d[:n]
	if hostLittleEndian {
		copy(int32Bytes(d[:recN]), buf)
	} else {
		for i := 0; i < recN; i++ {
			d[i] = int32(binary.LittleEndian.Uint32(buf[i*distWidth:]))
		}
	}
	for i := recN; i < n; i++ {
		d[i] = bc.Unreachable
	}
	*dist = d
	return nil
}

// initIsolated fills rec (resized to n vertices) with the record of a source
// that can only reach itself.
func initIsolated(rec *bc.SourceState, s, n int) {
	rec.Resize(n)
	for i := 0; i < n; i++ {
		rec.Dist[i] = bc.Unreachable
		rec.Sigma[i] = 0
		rec.Delta[i] = 0
	}
	rec.Dist[s] = 0
	rec.Sigma[s] = 1
}
