package router

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"streambc/internal/obs"
	"streambc/internal/server"
)

// Federation tests: bcrouter's GET /metrics must serve one strictly parseable
// exposition covering the router and every shard (each shard series stamped
// with a shard label), degrade — never fail — when a shard cannot be scraped,
// and keep counters monotonic across scrapes; GET /v1/cluster/status must
// aggregate identity, position, lag and health the same way.

// scrape fetches and strictly parses the router's federated /metrics page.
func scrape(t *testing.T, rt *Router) []*obs.ExpoFamily {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", rec.Code, rec.Body.String())
	}
	fams, err := obs.ParseExposition(rec.Body.Bytes())
	if err != nil {
		t.Fatalf("federated exposition does not parse: %v", err)
	}
	return fams
}

func famIndex(fams []*obs.ExpoFamily) map[string]*obs.ExpoFamily {
	out := make(map[string]*obs.ExpoFamily, len(fams))
	for _, f := range fams {
		out[f.Name] = f
	}
	return out
}

// shardUpValues returns the streambc_cluster_shard_up samples keyed by their
// label block.
func shardUpValues(t *testing.T, fams []*obs.ExpoFamily) map[string]string {
	t.Helper()
	up := famIndex(fams)["streambc_cluster_shard_up"]
	if up == nil {
		t.Fatal("streambc_cluster_shard_up missing from the federated page")
	}
	out := make(map[string]string, len(up.Samples))
	for _, s := range up.Samples {
		out[s.Labels] = s.Value
	}
	return out
}

// counterValues flattens every counter sample to name+labels -> value.
func counterValues(t *testing.T, fams []*obs.ExpoFamily) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, f := range fams {
		if f.Type != "counter" {
			continue
		}
		for _, s := range f.Samples {
			v, err := strconv.ParseFloat(s.Value, 64)
			if err != nil {
				t.Fatalf("counter %s%s: %v", s.Name, s.Labels, err)
			}
			out[s.Name+s.Labels] = v
		}
	}
	return out
}

// hasShardSeries reports whether shard idx's scrape made it onto the page,
// using a family only shards export (the router has no WAL): its series can
// carry a shard label solely via the federation stamp, unlike the router's
// own shard-labelled gauges.
func hasShardSeries(fams []*obs.ExpoFamily, idx string) bool {
	needle := `shard="` + idx + `"`
	for _, f := range fams {
		if f.Name != "streambc_wal_appends_total" {
			continue
		}
		for _, s := range f.Samples {
			if strings.Contains(s.Labels, needle) {
				return true
			}
		}
	}
	return false
}

// TestFederatedMetricsExposition: a healthy 3-shard cluster serves one strict
// exposition with every shard up, every shard's families shard-labelled, and
// all counters monotonic across scrapes with ingest in between.
func TestFederatedMetricsExposition(t *testing.T) {
	base := testGraph(t, 20, 48, 41)
	stream := testStream(t, base, 12, 42)
	parts := chunks(stream, 8)
	const cnt = 3
	c := startCluster(t, base, cnt, nil)
	c.apply(t, parts[0])

	fams := scrape(t, c.router)
	up := shardUpValues(t, fams)
	for i := 0; i < cnt; i++ {
		key := `{shard="` + strconv.Itoa(i) + `"}`
		if up[key] != "1" {
			t.Fatalf("cluster_shard_up%s = %q, want 1 (have %v)", key, up[key], up)
		}
	}
	for i := 0; i < cnt; i++ {
		if !hasShardSeries(fams, strconv.Itoa(i)) {
			t.Fatalf("no series labelled shard=%d on the federated page", i)
		}
	}

	before := counterValues(t, fams)
	if len(before) == 0 {
		t.Fatal("no counter samples on the federated page")
	}
	c.apply(t, parts[1])
	after := counterValues(t, scrape(t, c.router))
	for key, a := range before {
		b, ok := after[key]
		if !ok {
			t.Fatalf("counter %s disappeared between scrapes", key)
		}
		if b < a {
			t.Fatalf("counter %s went backwards: %g -> %g", key, a, b)
		}
	}
	// The shards did work between the scrapes, so at least one shard-labelled
	// counter must have moved.
	moved := false
	for key, a := range before {
		if strings.Contains(key, `shard="`) && after[key] > a {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("no shard counter advanced across an ingest")
	}
}

// flakyConn wraps a ShardConn whose observability surface can be switched off
// (scrapes and status fetches fail) while the write path keeps working — a
// shard that is alive but unmonitorable.
type flakyConn struct {
	ShardConn
	down atomic.Bool
}

func (f *flakyConn) Metrics(ctx context.Context) ([]byte, error) {
	if f.down.Load() {
		return nil, errors.New("scrape refused")
	}
	return f.ShardConn.Metrics(ctx)
}

func (f *flakyConn) Status(ctx context.Context) (server.ShardStatus, error) {
	if f.down.Load() {
		return server.ShardStatus{}, errors.New("status refused")
	}
	return f.ShardConn.Status(ctx)
}

// TestFederationDegradesWhenShardDown: an unscrapable shard zeroes its
// streambc_cluster_shard_up gauge and drops its families, but the page still
// serves 200 and parses; /v1/cluster/status reports the shard down with the
// error text instead of failing.
func TestFederationDegradesWhenShardDown(t *testing.T) {
	base := testGraph(t, 16, 36, 45)
	const cnt = 3
	conns := make([]ShardConn, cnt)
	wrapped := make([]*flakyConn, cnt)
	for i := 0; i < cnt; i++ {
		h := startShard(t, base, i, cnt, nil)
		w := &flakyConn{ShardConn: NewLocalShard("s"+strconv.Itoa(i), h.srv)}
		wrapped[i] = w
		conns[i] = w
	}
	rt, err := New(context.Background(), Config{
		Shards:        conns,
		RetryInterval: 5 * time.Millisecond,
		ApplyTimeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	rt.Start()
	t.Cleanup(func() { rt.Close() })

	wrapped[1].down.Store(true)
	fams := scrape(t, rt)
	up := shardUpValues(t, fams)
	for i := 0; i < cnt; i++ {
		key := `{shard="` + strconv.Itoa(i) + `"}`
		want := "1"
		if i == 1 {
			want = "0"
		}
		if up[key] != want {
			t.Fatalf("cluster_shard_up%s = %q, want %s", key, up[key], want)
		}
	}
	if hasShardSeries(fams, "1") {
		t.Fatal("downed shard's families still on the federated page")
	}
	if !hasShardSeries(fams, "0") || !hasShardSeries(fams, "2") {
		t.Fatal("healthy shards' families missing from the degraded page")
	}

	st := clusterStatus(t, rt)
	if st.ShardCount != cnt || len(st.Shards) != cnt {
		t.Fatalf("cluster status shape: count=%d shards=%d", st.ShardCount, len(st.Shards))
	}
	if st.Shards[1].Up {
		t.Fatal("downed shard reported up")
	}
	if st.Shards[1].Error == "" {
		t.Fatal("downed shard carries no error text")
	}
	if st.ShardsHealthy != cnt-1 {
		t.Fatalf("shards_healthy = %d, want %d", st.ShardsHealthy, cnt-1)
	}
	for _, i := range []int{0, 2} {
		sj := st.Shards[i]
		if !sj.Up || !sj.Healthy || sj.LagRecords != 0 {
			t.Fatalf("healthy shard %d degraded: %+v", i, sj)
		}
	}
}

// clusterStatusJSON mirrors the /v1/cluster/status document.
type clusterStatusJSON struct {
	Router struct {
		MergedSequence uint64 `json:"merged_sequence"`
		Halted         bool   `json:"halted"`
	} `json:"router"`
	ShardCount    int                `json:"shard_count"`
	ShardsHealthy int                `json:"shards_healthy"`
	Shards        []clusterShardJSON `json:"shards"`
}

func clusterStatus(t *testing.T, rt *Router) clusterStatusJSON {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/v1/cluster/status", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/cluster/status status %d: %s", rec.Code, rec.Body.String())
	}
	var st clusterStatusJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decoding cluster status: %v", err)
	}
	return st
}

// TestClusterStatusAggregates: after an ingest every shard reports the same
// applied sequence as the router's merged view, with zero lag, correct
// identity and full health.
func TestClusterStatusAggregates(t *testing.T) {
	base := testGraph(t, 18, 40, 47)
	stream := testStream(t, base, 10, 48)
	const cnt = 3
	c := startCluster(t, base, cnt, nil)
	c.apply(t, stream)

	st := clusterStatus(t, c.router)
	if st.Router.MergedSequence == 0 {
		t.Fatal("router merged sequence never advanced")
	}
	if st.Router.Halted {
		t.Fatal("router reports halted")
	}
	if st.ShardCount != cnt || st.ShardsHealthy != cnt || len(st.Shards) != cnt {
		t.Fatalf("cluster shape: %+v", st)
	}
	for i, sj := range st.Shards {
		if !sj.Up || !sj.Healthy {
			t.Fatalf("shard %d not healthy: %+v", i, sj)
		}
		if sj.Shard != i || sj.ShardIndex != i || sj.ShardCount != cnt {
			t.Fatalf("shard %d identity: %+v", i, sj)
		}
		if sj.AppliedSeq != st.Router.MergedSequence {
			t.Fatalf("shard %d at sequence %d, router at %d", i, sj.AppliedSeq, st.Router.MergedSequence)
		}
		if sj.LagRecords != 0 {
			t.Fatalf("shard %d lag = %d records at idle", i, sj.LagRecords)
		}
	}
}
