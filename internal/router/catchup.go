package router

import (
	"context"
	"errors"
	"fmt"

	"streambc/internal/bc"
	"streambc/internal/obs"
	"streambc/internal/replication"
	"streambc/internal/server"
)

// catchupBatch is how many records one equalisation pull asks a donor for.
const catchupBatch = 256

// bootstrap builds the router's merged state from the live cluster:
//
//  1. Every shard's status is fetched and verified against its configured
//     position — shard i must answer ShardIndex i of ShardCount len(Shards),
//     and directedness/sampling must agree across the cluster.
//  2. Shards whose applied sequence trails the cluster maximum are equalised:
//     the missing records are read from a caught-up peer's write-ahead log
//     and applied through the normal shard-apply path (their delta responses
//     are discarded — the baseline fold below starts from the equalised
//     state). Write-all fanout keeps the spread to at most the one record
//     that was in flight when the previous router stopped.
//  3. Each shard's snapshot state is fetched and the per-shard scores are
//     summed, shard-by-shard in index order, into the merged baseline.
//
// Exactness caveat: the per-key fold order of step 3 is "shard 0 first" over
// each shard's TOTAL, not the update-major interleaving the running merge
// uses, so a re-baselined router matches the single-process bits exactly at
// sequence 0 (fresh shards: totals and per-update deltas coincide) and
// matches to ULP-level rounding otherwise. The differential tests therefore
// pin bit-identity for the running accumulator and for the snapshot-sum
// against a partition-scores engine, which reproduces this exact fold.
func (r *Router) bootstrap(ctx context.Context) error {
	shards := r.cfg.Shards
	n := len(shards)
	statuses := make([]server.ShardStatus, n)
	for i, sc := range shards {
		st, err := sc.Status(ctx)
		if err != nil {
			return fmt.Errorf("router: shard %d (%s) status: %w", i, sc.Name(), err)
		}
		statuses[i] = st
	}
	for i, st := range statuses {
		if st.ShardCount != n || st.ShardIndex != i {
			return fmt.Errorf("router: shard %d (%s) is configured as shard %d of %d, want %d of %d — "+
				"the -shards list must name every shard once, in shard-index order",
				i, shards[i].Name(), st.ShardIndex, st.ShardCount, i, n)
		}
		if st.Directed != statuses[0].Directed {
			return fmt.Errorf("router: shard %d is directed=%v but shard 0 is directed=%v",
				i, st.Directed, statuses[0].Directed)
		}
		if st.Sampled != statuses[0].Sampled {
			return fmt.Errorf("router: shard %d is sampled=%v but shard 0 is sampled=%v",
				i, st.Sampled, statuses[0].Sampled)
		}
		if st.Workers != 1 {
			// Legal, but cross-process bit-identity with a single engine is
			// pinned at one worker per shard (the shard's internal fold of
			// multiple worker deltas regroups the additions).
			r.log.Warn("shard runs more than one worker; merged scores are exact per shard but "+
				"not bit-comparable to a single-process engine",
				obs.KeyComponent, "router", "shard", i, "workers", st.Workers)
		}
	}
	if err := r.equalize(ctx, statuses); err != nil {
		return err
	}
	return r.baseline(ctx, statuses)
}

// equalize replays missing records from a caught-up peer's write-ahead log
// into every lagging shard, in sequence order, until the whole cluster
// stands at the same applied sequence.
func (r *Router) equalize(ctx context.Context, statuses []server.ShardStatus) error {
	target, donor := uint64(0), 0
	for i, st := range statuses {
		if st.AppliedSeq > target {
			target, donor = st.AppliedSeq, i
		}
	}
	for i := range statuses {
		for statuses[i].AppliedSeq < target {
			from := statuses[i].AppliedSeq
			recs, _, err := r.cfg.Shards[donor].WALRecords(ctx, from, catchupBatch)
			if err != nil {
				if errors.Is(err, replication.ErrTruncated) {
					return fmt.Errorf("router: shard %d lags at sequence %d but the donor shard %d has "+
						"truncated its log below that: restore shard %d from a fresh snapshot of its own "+
						"directories before routing resumes: %w", i, from, donor, i, err)
				}
				return fmt.Errorf("router: reading catch-up records %d.. from shard %d: %w", from, donor, err)
			}
			if len(recs) == 0 {
				return fmt.Errorf("router: donor shard %d returned no records at sequence %d (log end behind "+
					"its applied sequence?)", donor, from)
			}
			for _, rec := range recs {
				if rec.Seq >= target {
					break
				}
				if _, err := r.cfg.Shards[i].Apply(ctx, rec); err != nil {
					return fmt.Errorf("router: equalising shard %d at record %d: %w", i, rec.Seq, err)
				}
				statuses[i].AppliedSeq = rec.Seq + 1
			}
			r.log.Info("equalised shard",
				obs.KeyComponent, "router", "shard", i, "through", statuses[i].AppliedSeq, "target", target)
		}
	}
	return nil
}

// baseline folds the equalised shards' snapshots into the merged starting
// state: the graph is taken from shard 0 (all shards hold the identical
// graph) and every score is the sum of the shards' partials, added in
// shard-index order.
func (r *Router) baseline(ctx context.Context, statuses []server.ShardStatus) error {
	shards := r.cfg.Shards
	var g0n, g0m int
	for i, sc := range shards {
		st, err := sc.State(ctx)
		if err != nil {
			return fmt.Errorf("router: shard %d (%s) state: %w", i, sc.Name(), err)
		}
		if st.WALOffset != statuses[0].AppliedSeq {
			return fmt.Errorf("router: shard %d snapshot covers sequence %d, cluster equalised at %d — "+
				"writes reached a shard outside the router?", i, st.WALOffset, statuses[0].AppliedSeq)
		}
		if i == 0 {
			r.g = st.Graph
			r.directed = st.Graph.Directed()
			r.res = bc.NewResult(st.Graph.N())
			r.sampled = statuses[0].Sampled
			r.scale = statuses[0].Scale
			r.seq = st.WALOffset
			r.applied = int64(st.Applied)
			g0n, g0m = st.Graph.N(), st.Graph.M()
		} else if st.Graph.N() != g0n || st.Graph.M() != g0m {
			return fmt.Errorf("router: shard %d graph (%d vertices, %d edges) differs from shard 0 "+
				"(%d, %d) at the same sequence — the cluster has forked", i, st.Graph.N(), st.Graph.M(), g0n, g0m)
		}
		for v, x := range st.Scores.VBC {
			r.res.VBC[v] += x
		}
		for e, x := range st.Scores.EBC {
			r.res.EBC[e] += x
		}
		if r.sampled {
			r.sampleK += len(st.Sources)
		}
	}
	r.log.Info("bootstrapped from shard snapshots",
		obs.KeyComponent, "router",
		"shards", len(shards), "sequence", r.seq, "vertices", g0n, "edges", g0m)
	return nil
}
