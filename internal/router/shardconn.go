package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"streambc/internal/engine"
	"streambc/internal/obs"
	"streambc/internal/replication"
	"streambc/internal/server"
)

// errShardUnavailable marks a shard answer the router may retry: the shard is
// down, restarting, overloaded or mid-shutdown (a network error, a timeout or
// HTTP 503). Anything else — a sequence gap, a decode failure, an application
// error — is a protocol-level fact retrying cannot change.
var errShardUnavailable = errors.New("router: shard unavailable")

// ShardConn is the router's connection to one shard: the fanout/ack apply
// call plus the status, state and log reads bootstrap and readiness need.
// HTTPShard speaks to a remote bcserved; LocalShard wraps an in-process
// *server.Server (the differential tests drive whole clusters through it).
type ShardConn interface {
	// Name identifies the shard in logs and errors (for HTTP shards, the
	// base URL).
	Name() string
	// Apply ships one fanout record and returns the shard's decoded
	// per-update delta response. Sequence gaps surface as
	// server.ErrShardSequenceGap; retryable outages wrap errShardUnavailable.
	Apply(ctx context.Context, rec server.WALRecord) (*server.ShardResponse, error)
	// Status fetches the shard's identity and applied position.
	Status(ctx context.Context) (server.ShardStatus, error)
	// State fetches one consistent snapshot of the shard's engine state.
	State(ctx context.Context) (*engine.SnapshotState, error)
	// WALRecords reads up to max records of the shard's own log starting at
	// sequence from (catch-up donor side).
	WALRecords(ctx context.Context, from uint64, max int) ([]server.WALRecord, uint64, error)
	// Snapshot asks the shard to write a snapshot now and returns its path.
	Snapshot(ctx context.Context) (string, error)
	// Metrics scrapes the shard's metrics endpoint and returns the raw
	// Prometheus text exposition (the router's federation plane re-exports it
	// under a shard label).
	Metrics(ctx context.Context) ([]byte, error)
	// Spans fetches the shard's spans of one distributed trace, oldest first
	// (the router's /v1/debug/trace stitches them under the router's spans).
	Spans(ctx context.Context, trace obs.TraceID) ([]obs.Span, error)
}

// HTTPShard connects to a remote shard over its HTTP API.
type HTTPShard struct {
	base string
	hc   *http.Client
	repl *replication.Client
}

// NewHTTPShard returns a connection to the shard at baseURL
// (scheme://host:port). The underlying client carries no global timeout;
// bound calls through contexts.
func NewHTTPShard(baseURL string) *HTTPShard {
	base := strings.TrimRight(baseURL, "/")
	return &HTTPShard{base: base, hc: &http.Client{}, repl: replication.NewClient(base)}
}

func (s *HTTPShard) Name() string { return s.base }

// errBody extracts the {"error": ...} payload of a non-200 answer.
func errBody(data []byte) string {
	var payload struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &payload) == nil && payload.Error != "" {
		return payload.Error
	}
	if len(data) > 256 {
		data = data[:256]
	}
	return string(data)
}

func (s *HTTPShard) Apply(ctx context.Context, rec server.WALRecord) (*server.ShardResponse, error) {
	body := server.EncodeWALRecord(nil, rec)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base+"/v1/shard/apply", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	// The fanout attaches the drain's per-shard span context to ctx; the
	// traceparent header extends the trace across the process boundary (and a
	// retry re-sends the identical header, keeping the trace ID stable).
	obs.InjectTrace(req.Header, obs.SpanFromContext(ctx))
	resp, err := s.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", errShardUnavailable, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%w: reading apply response: %w", errShardUnavailable, err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		return nil, fmt.Errorf("%w: %s", server.ErrShardSequenceGap, errBody(data))
	case http.StatusServiceUnavailable:
		return nil, fmt.Errorf("%w: %s", errShardUnavailable, errBody(data))
	default:
		return nil, fmt.Errorf("router: shard %s apply: status %d: %s", s.base, resp.StatusCode, errBody(data))
	}
	return server.DecodeShardResponse(data)
}

// getJSON issues one GET and decodes the 200 answer into out; non-200
// answers wrap errShardUnavailable (a status probe of a down shard is the
// normal retryable case).
func (s *HTTPShard) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+path, nil)
	if err != nil {
		return err
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %w", errShardUnavailable, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("%w: %w", errShardUnavailable, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: GET %s: status %d: %s", errShardUnavailable, path, resp.StatusCode, errBody(data))
	}
	return json.Unmarshal(data, out)
}

func (s *HTTPShard) Status(ctx context.Context) (server.ShardStatus, error) {
	var st server.ShardStatus
	err := s.getJSON(ctx, "/v1/shard/status", &st)
	return st, err
}

func (s *HTTPShard) State(ctx context.Context) (*engine.SnapshotState, error) {
	return s.repl.Snapshot(ctx)
}

func (s *HTTPShard) WALRecords(ctx context.Context, from uint64, max int) ([]server.WALRecord, uint64, error) {
	return s.repl.WALRecords(ctx, from, max, 0)
}

func (s *HTTPShard) Snapshot(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.base+"/v1/snapshot", nil)
	if err != nil {
		return "", err
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("%w: %w", errShardUnavailable, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("router: shard %s snapshot: status %d: %s", s.base, resp.StatusCode, errBody(data))
	}
	var payload struct {
		Path string `json:"path"`
	}
	if err := json.Unmarshal(data, &payload); err != nil {
		return "", err
	}
	return payload.Path, nil
}

// Metrics scrapes the shard's GET /metrics and returns the raw exposition.
func (s *HTTPShard) Metrics(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", errShardUnavailable, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, fmt.Errorf("%w: %w", errShardUnavailable, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%w: GET /metrics: status %d: %s", errShardUnavailable, resp.StatusCode, errBody(data))
	}
	return data, nil
}

// Spans fetches the shard's spans of one trace from its debug endpoint.
func (s *HTTPShard) Spans(ctx context.Context, trace obs.TraceID) ([]obs.Span, error) {
	var payload struct {
		Spans []obs.Span `json:"spans"`
	}
	if err := s.getJSON(ctx, "/v1/debug/trace?trace="+trace.String(), &payload); err != nil {
		return nil, err
	}
	return payload.Spans, nil
}

// LocalShard adapts an in-process *server.Server to the ShardConn interface,
// bypassing HTTP: the differential and fuzz tests run whole shard clusters in
// one process through it, and an embedded single-binary deployment can too.
type LocalShard struct {
	name string
	srv  *server.Server
}

// NewLocalShard wraps srv as a shard connection named name.
func NewLocalShard(name string, srv *server.Server) *LocalShard {
	return &LocalShard{name: name, srv: srv}
}

func (l *LocalShard) Name() string { return l.name }

func (l *LocalShard) Apply(ctx context.Context, rec server.WALRecord) (*server.ShardResponse, error) {
	body, err := l.srv.ApplyShardRecordTraced(rec, obs.SpanFromContext(ctx))
	if err != nil {
		// Map the shutdown/outage family to the retryable sentinel, exactly
		// like the HTTP transport maps 503.
		if errors.Is(err, server.ErrClosed) || errors.Is(err, engine.ErrClosed) ||
			errors.Is(err, server.ErrIngestHalted) || errors.Is(err, server.ErrWALClosed) {
			return nil, fmt.Errorf("%w: %w", errShardUnavailable, err)
		}
		return nil, err
	}
	return server.DecodeShardResponse(body)
}

func (l *LocalShard) Status(_ context.Context) (server.ShardStatus, error) {
	return l.srv.ShardStatus(), nil
}

func (l *LocalShard) State(_ context.Context) (*engine.SnapshotState, error) {
	return l.srv.ShardState()
}

func (l *LocalShard) WALRecords(_ context.Context, from uint64, max int) ([]server.WALRecord, uint64, error) {
	return l.srv.ShardWALRecords(from, max)
}

func (l *LocalShard) Snapshot(_ context.Context) (string, error) {
	return l.srv.Snapshot()
}

func (l *LocalShard) Metrics(_ context.Context) ([]byte, error) {
	return l.srv.MetricsText()
}

func (l *LocalShard) Spans(_ context.Context, trace obs.TraceID) ([]obs.Span, error) {
	return l.srv.SpansByTrace(trace), nil
}
