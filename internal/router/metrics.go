package router

import (
	"streambc/internal/obs"
	"streambc/internal/version"
)

// metrics holds the router's instruments. The per-shard families are keyed
// by shard index; streambc_shard_applied_sequence is the gauge operators
// watch for lag (a shard whose sequence trails the router's merged sequence
// by more than the one in-flight record is stuck), streambc_shard_up flips
// on every failed fanout attempt or status probe.
type metrics struct {
	reg *obs.Registry

	enqueued *obs.Counter
	applied  *obs.Counter
	rejected *obs.Counter
	drains   *obs.Counter

	drainLat  *obs.Histogram
	fanoutLat *obs.HistogramVec // {shard}: one fanout attempt round trip
	retries   *obs.CounterVec   // {shard}: fanout attempts retried

	shardUp   *obs.GaugeVec // {shard}: 1 answering, 0 unavailable/unhealthy
	shardSeq  *obs.GaugeVec // {shard}: shard's applied sequence
	mergedSeq *obs.Gauge    // router's merged (next) sequence
	clusterUp *obs.GaugeVec // {shard}: 1 while the last federation scrape succeeded

	httpRequests *obs.CounterVec   // {route, code}
	httpLatency  *obs.HistogramVec // {route}
}

func newMetrics(r *Router, reg *obs.Registry) *metrics {
	m := &metrics{reg: reg}
	reg.GaugeFunc("streambc_build_info",
		"Build version of the running binary (constant 1).",
		func() float64 { return 1 }, "version", version.Version)
	m.enqueued = reg.Counter("streambc_router_updates_enqueued_total",
		"Updates admitted to the router's fanout queue.")
	m.applied = reg.Counter("streambc_router_updates_applied_total",
		"Updates applied by every shard and merged.")
	m.rejected = reg.Counter("streambc_router_updates_rejected_total",
		"Updates rejected by the cluster (validation failures).")
	m.drains = reg.Counter("streambc_router_drains_total",
		"Fanout records acknowledged by every shard.")
	reg.IntGaugeFunc("streambc_router_queue_depth",
		"Updates queued and not yet fanned out.",
		func() int64 { return int64(r.QueueDepth()) })
	reg.IntGaugeFunc("streambc_router_halted",
		"1 when the write path has halted on a shard disagreement.",
		func() int64 {
			if r.Halted() != nil {
				return 1
			}
			return 0
		})
	m.mergedSeq = reg.Gauge("streambc_router_merged_sequence",
		"The router's next record sequence (every earlier record is merged).")
	m.shardSeq = reg.GaugeVec("streambc_shard_applied_sequence",
		"Applied record sequence per shard.", "shard")
	m.shardUp = reg.GaugeVec("streambc_shard_up",
		"1 while the shard answers and reports healthy.", "shard")
	m.clusterUp = reg.GaugeVec("streambc_cluster_shard_up",
		"1 while the shard answered the router's last federation scrape.", "shard")
	m.drainLat = reg.Histogram("streambc_router_drain_seconds",
		"Wall-clock latency of one drain: fanout, verification and merge.",
		obs.LatencyBuckets())
	m.fanoutLat = reg.HistogramVec("streambc_router_fanout_seconds",
		"Round-trip latency of one fanout attempt, per shard.",
		obs.LatencyBuckets(), "shard")
	m.retries = reg.CounterVec("streambc_router_fanout_retries_total",
		"Fanout attempts retried against an unavailable shard.", "shard")
	m.httpRequests = reg.CounterVec("streambc_http_requests_total",
		"HTTP requests served, by route and status code.", "route", "code")
	m.httpLatency = reg.HistogramVec("streambc_http_request_seconds",
		"HTTP request latency by route.", obs.LatencyBuckets(), "route")
	return m
}
