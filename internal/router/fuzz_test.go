package router

import (
	"encoding/binary"
	"math"
	"testing"

	"streambc/internal/bc"
	"streambc/internal/graph"
	"streambc/internal/server"
)

// fuzzVertices bounds the vertex space of the fuzzed deltas so overlapping
// keys (the interesting case for the fold) are common.
const fuzzVertices = 24

// buildFuzzResponses deterministically derives a cluster's worth of per-shard
// delta responses from the fuzz input: `shards` responses, each carrying the
// same number of updates, with vertex/edge keys drawn from a small space (so
// shards overlap constantly) and values drawn from the raw bytes (so
// negatives, zero-sum cancellations, denormals, infinities and NaNs all
// occur). Returns nil when the input is too short to be interesting.
func buildFuzzResponses(data []byte, shards, updates int) []*server.ShardResponse {
	if shards < 1 || shards > 6 || updates < 1 || updates > 8 {
		return nil
	}
	next := func() uint64 {
		if len(data) < 8 {
			return 0
		}
		x := binary.LittleEndian.Uint64(data)
		data = data[8:]
		return x
	}
	var prev float64
	value := func(sel uint64) float64 {
		switch sel % 4 {
		case 0:
			return math.Float64frombits(next()) // arbitrary bits: NaN, Inf, denormal
		case 1:
			return float64(int64(next()%4096) - 2048) // small integers
		case 2:
			return -prev // exact cancellation of the previous term
		default:
			return float64(next()%1024) / 64 // small dyadic rationals
		}
	}
	resps := make([]*server.ShardResponse, shards)
	for i := range resps {
		resp := &server.ShardResponse{ShardIndex: i, ShardCount: shards}
		for j := 0; j < updates; j++ {
			var u server.ShardUpdateResult
			nv := int(next() % 5)
			for k := 0; k < nv; k++ {
				sel := next()
				x := value(sel >> 8)
				u.VBC = append(u.VBC, server.ShardDeltaVertex{V: int(sel % fuzzVertices), X: x})
				prev = x
			}
			ne := int(next() % 5)
			for k := 0; k < ne; k++ {
				sel := next()
				x := value(sel >> 16)
				e := graph.Edge{U: int(sel % fuzzVertices), V: int((sel >> 8) % fuzzVertices)}
				u.EBC = append(u.EBC, server.ShardDeltaEdge{E: e, X: x})
				prev = x
			}
			resp.Updates = append(resp.Updates, u)
		}
		resps[i] = resp
	}
	return resps
}

// referenceMerge is the trivially-correct model of the router's fold: plain
// maps, iterated shard by shard in index order, term by term — the same
// per-key addition sequence, so the comparison below can demand bit equality,
// not tolerances.
func referenceMerge(resps []*server.ShardResponse, updates int) (map[int]float64, map[graph.Edge]float64) {
	vbc := map[int]float64{}
	ebc := map[graph.Edge]float64{}
	for j := 0; j < updates; j++ {
		for _, resp := range resps {
			u := resp.Updates[j]
			for _, t := range u.VBC {
				vbc[t.V] += t.X
			}
			for _, t := range u.EBC {
				ebc[t.E] += t.X
			}
		}
	}
	return vbc, ebc
}

// FuzzMergeDelta feeds random per-shard delta sets — overlapping keys,
// zero-sum cancellations, NaNs, infinities — through the router's actual
// fold (foldUpdate, the function merge uses record by record) and through the
// map-reference merge, and requires bit-identical accumulators. It also
// round-trips every response through the wire codec first, so an
// encode/decode bug that perturbs even one bit of one term fails the fuzz.
func FuzzMergeDelta(f *testing.F) {
	f.Add([]byte("seed"), uint8(2), uint8(1))
	f.Add(bytes64(0xdeadbeef, 48), uint8(3), uint8(4))
	f.Add(bytes64(0x7ff0000000000001, 64), uint8(4), uint8(2)) // NaN-patterned
	f.Fuzz(func(t *testing.T, data []byte, shardsRaw, updatesRaw uint8) {
		shards := int(shardsRaw%6) + 1
		updates := int(updatesRaw%8) + 1
		resps := buildFuzzResponses(data, shards, updates)
		if resps == nil {
			t.Skip()
		}
		// Wire round trip: the router folds what the codec delivered.
		for i, resp := range resps {
			decoded, err := server.DecodeShardResponse(server.EncodeShardResponse(nil, *resp))
			if err != nil {
				t.Fatalf("round-tripping shard %d response: %v", i, err)
			}
			resps[i] = decoded
		}
		res := bc.NewResult(fuzzVertices)
		for j := 0; j < updates; j++ {
			foldUpdate(res, resps, j)
		}
		wantVBC, wantEBC := referenceMerge(resps, updates)
		for v, want := range wantVBC {
			if math.Float64bits(res.VBC[v]) != math.Float64bits(want) {
				t.Fatalf("VBC[%d] = %x, reference %x", v, math.Float64bits(res.VBC[v]), math.Float64bits(want))
			}
		}
		for v, got := range res.VBC {
			if got != 0 && math.Float64bits(got) != math.Float64bits(wantVBC[v]) {
				t.Fatalf("VBC[%d] = %g, reference has %g", v, got, wantVBC[v])
			}
		}
		for e, want := range wantEBC {
			if math.Float64bits(res.EBC[e]) != math.Float64bits(want) {
				t.Fatalf("EBC[%v] = %x, reference %x", e, math.Float64bits(res.EBC[e]), math.Float64bits(want))
			}
		}
		for e := range res.EBC {
			if _, ok := wantEBC[e]; !ok {
				t.Fatalf("EBC key %v not in reference", e)
			}
		}
	})
}

// FuzzDecodeShardResponse hammers the wire decoder with raw bytes: it must
// never panic, and everything it does accept must re-encode to bytes that
// decode to the same value.
func FuzzDecodeShardResponse(f *testing.F) {
	f.Add([]byte("garbage"))
	f.Add(server.EncodeShardResponse(nil, server.ShardResponse{
		ShardIndex: 1, ShardCount: 2, Seq: 7,
		Updates: []server.ShardUpdateResult{
			{VBC: []server.ShardDeltaVertex{{V: 3, X: 1.5}}},
			{Rejected: true, Err: "nope"},
		},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := server.DecodeShardResponse(data)
		if err != nil {
			return
		}
		re := server.EncodeShardResponse(nil, *resp)
		back, err := server.DecodeShardResponse(re)
		if err != nil {
			t.Fatalf("re-encoded response does not decode: %v", err)
		}
		if back.ShardIndex != resp.ShardIndex || back.Seq != resp.Seq || len(back.Updates) != len(resp.Updates) {
			t.Fatalf("re-encode changed the response: %+v vs %+v", back, resp)
		}
	})
}

// bytes64 builds a seed-corpus byte string of n 8-byte words derived from x.
func bytes64(x uint64, n int) []byte {
	out := make([]byte, 0, 8*n)
	for i := 0; i < n; i++ {
		out = binary.LittleEndian.AppendUint64(out, x)
		x = x*6364136223846793005 + 1442695040888963407
	}
	return out
}
