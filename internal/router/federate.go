package router

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"streambc/internal/obs"
)

// The router's federation plane: one scrape of the router answers for the
// whole cluster. GET /metrics concurrently scrapes every shard's exposition,
// stamps a shard label onto each series and merges them with the router's own
// families into a single page; GET /v1/cluster/status aggregates shard
// identity, position, lag and health into one JSON document; and the ?trace=
// form of GET /v1/debug/trace stitches one distributed trace's spans from the
// router's ring and every shard's.

// handleMetrics serves the federated exposition. A shard that cannot be
// scraped degrades the page — its families are absent and its
// streambc_cluster_shard_up gauge reads 0 — but never fails the scrape: the
// monitoring plane must keep answering precisely when shards are down.
func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	bodies := make([][]byte, len(r.cfg.Shards))
	errs := make([]error, len(r.cfg.Shards))
	var wg sync.WaitGroup
	for i, sc := range r.cfg.Shards {
		wg.Add(1)
		go func(i int, sc ShardConn) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(req.Context(), r.cfg.ScrapeTimeout)
			defer cancel()
			bodies[i], errs[i] = sc.Metrics(ctx)
		}(i, sc)
	}
	wg.Wait()
	// Stamp the scrape-health gauges before rendering the local registry so
	// one page is self-consistent: the exposition that omits shard i's
	// families is the same one whose streambc_cluster_shard_up{shard="i"}
	// reads 0.
	for i, err := range errs {
		v := 1.0
		if err != nil {
			v = 0
		}
		r.met.clusterUp.With(strconv.Itoa(i)).Set(v)
	}
	var local bytes.Buffer
	if _, err := r.met.reg.WriteTo(&local); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	// The router's own families anchor the page (and the merge order): a
	// shard family already exported locally keeps one HELP/TYPE block with
	// the shard series appended after the router's.
	fams, err := obs.ParseExposition(local.Bytes())
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("rendering local metrics: %w", err))
		return
	}
	byName := make(map[string]*obs.ExpoFamily, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	for i, body := range bodies {
		if errs[i] != nil {
			r.log.Warn("federation scrape failed",
				obs.KeyComponent, "router", "shard", i, "error", errs[i])
			continue
		}
		shardFams, err := obs.ParseExposition(body)
		if err != nil {
			// A shard answering garbage is degraded the same way as a shard
			// not answering: log, zero its gauge, keep the page serving.
			r.log.Warn("federation scrape unparsable",
				obs.KeyComponent, "router", "shard", i, "error", err)
			r.met.clusterUp.With(strconv.Itoa(i)).Set(0)
			continue
		}
		label := strconv.Itoa(i)
		for _, f := range shardFams {
			dst := byName[f.Name]
			if dst == nil {
				dst = &obs.ExpoFamily{Name: f.Name, Help: f.Help, Type: f.Type}
				byName[f.Name] = dst
				fams = append(fams, dst)
			}
			for _, s := range f.Samples {
				s.Labels = obs.MergeLabels(s.Labels, "shard", label)
				dst.Samples = append(dst.Samples, s)
			}
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	obs.WriteExposition(w, fams) //nolint:errcheck // client went away mid-scrape
}

// clusterShardJSON is one shard's block in /v1/cluster/status: identity and
// position from a fresh status fetch, lag relative to the router's merged
// sequence.
type clusterShardJSON struct {
	Shard      int    `json:"shard"`
	Name       string `json:"name"`
	Up         bool   `json:"up"`
	Healthy    bool   `json:"healthy"`
	ShardIndex int    `json:"shard_index"`
	ShardCount int    `json:"shard_count"`
	AppliedSeq uint64 `json:"applied_sequence"`
	WALSeq     uint64 `json:"wal_sequence"`
	LagRecords uint64 `json:"lag_records"`
	Workers    int    `json:"workers"`
	Vertices   int    `json:"vertices"`
	Edges      int    `json:"edges"`
	Error      string `json:"error,omitempty"`
}

// handleClusterStatus aggregates fresh per-shard status fetches and the
// router's merged position into one JSON document — the single answer to
// "where is the cluster right now".
func (r *Router) handleClusterStatus(w http.ResponseWriter, req *http.Request) {
	v := r.currentView()
	shards := make([]clusterShardJSON, len(r.cfg.Shards))
	var wg sync.WaitGroup
	for i, sc := range r.cfg.Shards {
		wg.Add(1)
		go func(i int, sc ShardConn) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(req.Context(), r.cfg.ScrapeTimeout)
			defer cancel()
			sj := clusterShardJSON{Shard: i, Name: sc.Name()}
			st, err := sc.Status(ctx)
			if err != nil {
				sj.Error = err.Error()
			} else {
				sj.Up = true
				sj.Healthy = st.Healthy
				sj.ShardIndex = st.ShardIndex
				sj.ShardCount = st.ShardCount
				sj.AppliedSeq = st.AppliedSeq
				sj.WALSeq = st.WALSeq
				sj.Workers = st.Workers
				sj.Vertices = st.Vertices
				sj.Edges = st.Edges
				if v.seq > st.AppliedSeq {
					sj.LagRecords = v.seq - st.AppliedSeq
				}
			}
			shards[i] = sj
		}(i, sc)
	}
	wg.Wait()
	healthy := 0
	for _, sj := range shards {
		if sj.Up && sj.Healthy {
			healthy++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"router": map[string]any{
			"merged_sequence":  v.seq,
			"updates_applied":  v.applied,
			"updates_rejected": v.rejected,
			"queue_depth":      r.QueueDepth(),
			"halted":           r.Halted() != nil,
			"sampled":          v.sampled,
			"sampled_sources":  v.sampleSize,
			"sample_scale":     v.scale,
		},
		"shard_count":    len(r.cfg.Shards),
		"shards_healthy": healthy,
		"shards":         shards,
	})
}

// handleTrace serves the newest ?n= drain traces (default 32), newest first.
// With ?trace= (a 32-hex-digit trace ID) it instead stitches the whole
// distributed trace: the router's own spans plus every shard's, fetched
// concurrently, merged oldest first — one ingest's full cluster-wide
// lifecycle on one page.
func (r *Router) handleTrace(w http.ResponseWriter, req *http.Request) {
	if raw := req.URL.Query().Get("trace"); raw != "" {
		id, err := obs.ParseTraceID(raw)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad trace: %w", err))
			return
		}
		spans := r.stitchTrace(req.Context(), id)
		writeJSON(w, http.StatusOK, map[string]any{
			"trace_id": id, "count": len(spans), "spans": spans,
		})
		return
	}
	n := 32
	if raw := req.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			httpError(w, http.StatusBadRequest, errors.New("bad n: want a positive integer"))
			return
		}
		n = v
	}
	traces := r.traces.Last(n)
	type traceJSON struct {
		ID         uint64             `json:"id"`
		TraceID    obs.TraceID        `json:"trace_id"`
		Updates    int                `json:"updates"`
		EnqueuedAt time.Time          `json:"enqueued_at"`
		Stages     map[string]float64 `json:"stages_seconds"`
		Error      string             `json:"error,omitempty"`
	}
	out := make([]traceJSON, len(traces))
	for i, tr := range traces {
		out[i] = traceJSON{
			ID:         tr.ID,
			TraceID:    tr.TraceID,
			Updates:    tr.Updates,
			EnqueuedAt: tr.EnqueuedAt,
			Stages:     tr.Stages(),
			Error:      tr.Error,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(out), "traces": out})
}

// stitchTrace collects every span of one trace the cluster holds: the
// router's ring plus a concurrent fetch from each shard, sorted by start
// time. Shards that cannot answer contribute nothing (their spans are simply
// missing from the stitched view, like any expired span).
func (r *Router) stitchTrace(ctx context.Context, id obs.TraceID) []obs.Span {
	perShard := make([][]obs.Span, len(r.cfg.Shards))
	var wg sync.WaitGroup
	for i, sc := range r.cfg.Shards {
		wg.Add(1)
		go func(i int, sc ShardConn) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, r.cfg.ScrapeTimeout)
			defer cancel()
			spans, err := sc.Spans(sctx, id)
			if err != nil {
				r.log.Warn("trace stitch fetch failed",
					obs.KeyComponent, "router", "shard", i, "error", err)
				return
			}
			perShard[i] = spans
		}(i, sc)
	}
	spans := r.spans.ByTrace(id)
	wg.Wait()
	for _, ss := range perShard {
		spans = append(spans, ss...)
	}
	sort.SliceStable(spans, func(a, b int) bool { return spans[a].Start.Before(spans[b].Start) })
	if spans == nil {
		spans = []obs.Span{}
	}
	return spans
}
