// Package router is the merging front of the sharded write path: N bcserved
// shards each own one stride of the source pool (engine.Config.ShardIndex of
// ShardCount) and compute partial betweenness over it; the router fans every
// accepted ingest drain to all shards as one numbered record, folds the
// per-update score deltas the shards send back, and serves the single-process
// HTTP API from the merged state.
//
// Exactness. Betweenness is a sum of per-source contributions, and the shard
// strides partition the source pool exactly as the workers of one
// ShardCount-worker engine partition it. The router folds each update's
// deltas in shard-index order, term by term in the shards' own fold order —
// the same floating-point additions, in the same order, as the reduce phase
// of that single engine — so with one worker per shard the merged scores are
// bit-identical to the single-process ones, not merely approximately equal
// (the differential tests in this package compare bits, not tolerances).
//
// Ordering and durability. Records are numbered by a single sequence and
// fanned out write-all: a drain is acknowledged only after every shard has
// applied its record, so no shard is ever more than the one in-flight record
// behind. Each shard appends the record to its own write-ahead log before
// applying, which makes the cluster's durability the conjunction of the
// shards'; the router itself keeps no log — at startup it equalises laggards
// from a peer shard's WAL (see catchup.go), folds the shards' snapshots into
// a fresh baseline and resumes at their common sequence. A shard that
// restarts mid-record replays its own log and answers the router's retry
// from its response cache, so the retry converges without re-applying.
//
// Failure model. A transient shard outage stalls the write path (retries
// with backoff) but never forks it. A protocol disagreement — shards
// answering different sequences or diverging on which updates they rejected
// — is unrecoverable by retry; the router halts the write path (ingest
// answers 503, /healthz reports unhealthy) while continuing to serve reads
// from the last merged state.
package router

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streambc/internal/bc"
	"streambc/internal/graph"
	"streambc/internal/incremental"
	"streambc/internal/obs"
	"streambc/internal/server"
)

// Errors returned by Enqueue (the HTTP layer maps all three to 503).
var (
	// ErrQueueFull: admitting the batch would push the ingest queue past its
	// configured capacity.
	ErrQueueFull = errors.New("router: ingest queue full")
	// ErrClosed: the router has been shut down.
	ErrClosed = errors.New("router: closed")
	// ErrHalted: the write path halted on a shard protocol disagreement;
	// reads still serve the last merged state, writes need operator action.
	ErrHalted = errors.New("router: write path halted")
)

// Config configures a Router.
type Config struct {
	// Shards are the cluster's shard connections, in shard-index order: the
	// connection at position i must answer with ShardIndex i of ShardCount
	// len(Shards). New verifies this against every shard's status.
	Shards []ShardConn
	// MaxQueue bounds the ingest queue in updates; Enqueue fails with
	// ErrQueueFull beyond it. Values < 1 mean the default of 65536.
	MaxQueue int
	// RetryInterval is the pause between fanout retries against an
	// unavailable shard. Values <= 0 mean the default of 200ms.
	RetryInterval time.Duration
	// ApplyTimeout bounds one fanout attempt against one shard; an attempt
	// that exceeds it is retried. Values <= 0 mean the default of 30s.
	ApplyTimeout time.Duration
	// StatusInterval is the period of the background shard status poll
	// feeding /readyz and the per-shard gauges. Values <= 0 mean the
	// default of 2s.
	StatusInterval time.Duration
	// ScrapeTimeout bounds the federation plane's per-shard fetches (the
	// /metrics scrape fan-in, /v1/cluster/status and trace stitching).
	// Values <= 0 mean the default of 2s.
	ScrapeTimeout time.Duration
	// SlowRequest is the latency at or above which a served HTTP request is
	// logged at warn level. Values <= 0 disable slow-request logging.
	SlowRequest time.Duration
	// TraceCapacity sets how many recent drain traces GET /v1/debug/trace
	// can list. Values < 1 mean the default of 256.
	TraceCapacity int
	// Obs is the metrics registry; nil creates a private one.
	Obs *obs.Registry
	// Logger receives the router's structured logs; nil discards them.
	Logger *slog.Logger
}

// item is one queued update tagged with the batch that submitted it.
type item struct {
	upd   graph.Update
	batch *Batch
}

// view is the immutable state queries read, swapped atomically after every
// merged drain.
type view struct {
	res        *bc.Result
	n, m       int
	directed   bool
	seq        uint64 // next record sequence (== applied records)
	applied    int64  // updates applied since the shards were born
	rejected   int64  // updates rejected since this router started
	sampled    bool
	scale      float64
	sampleSize int
}

// shardProbe is the result of one background status poll of one shard.
type shardProbe struct {
	st  server.ShardStatus
	err error
}

// Router merges a cluster of write-path shards behind one serving API.
// Create it with New (which bootstraps from the shards' state), start the
// drain loop with Start, and shut down with Close.
type Router struct {
	cfg Config
	log *slog.Logger
	met *metrics

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []item
	closed bool

	// haltErr is set once, on a protocol disagreement between shards.
	haltErr atomic.Pointer[error]

	// Merge state, owned by the drain loop after New.
	g        *graph.Graph
	res      *bc.Result
	directed bool
	sampled  bool
	scale    float64
	sampleK  int // total sampled sources across the cluster (sampled mode)
	seq      uint64
	applied  int64
	rejected int64

	view   atomic.Pointer[view]
	probes []atomic.Pointer[shardProbe]

	traces *obs.TraceRing
	spans  *obs.SpanRing

	ctx      context.Context
	cancel   context.CancelFunc
	started  bool
	runDone  chan struct{}
	pollDone chan struct{}
	closeOne sync.Once
}

// Batch tracks one Enqueue call: it completes when every update of the batch
// has been applied or rejected by the whole cluster.
type Batch struct {
	done       chan struct{}
	enqueuedAt time.Time
	mu         sync.Mutex
	applied    int
	errs       []error
}

func newBatch() *Batch { return &Batch{done: make(chan struct{}), enqueuedAt: time.Now()} }

// Wait blocks until the batch has been processed or ctx is cancelled.
func (b *Batch) Wait(ctx context.Context) error {
	select {
	case <-b.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Applied returns how many updates of the batch were applied.
func (b *Batch) Applied() int { b.mu.Lock(); defer b.mu.Unlock(); return b.applied }

// Errs returns the batch's rejection (or drain-failure) errors, in order.
func (b *Batch) Errs() []error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]error(nil), b.errs...)
}

func (b *Batch) noteApplied() { b.mu.Lock(); b.applied++; b.mu.Unlock() }
func (b *Batch) noteError(err error) {
	b.mu.Lock()
	b.errs = append(b.errs, err)
	b.mu.Unlock()
}

// New connects to the cluster and bootstraps the merged state: it verifies
// every shard's identity against its position, equalises shards that lag the
// cluster's maximum sequence by replaying records from a peer's write-ahead
// log, and folds the shards' snapshots into the merged baseline (see
// catchup.go). It returns an error when the cluster is unreachable,
// misconfigured or cannot be equalised.
func New(ctx context.Context, cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("router: no shards configured")
	}
	if cfg.MaxQueue < 1 {
		cfg.MaxQueue = 65536
	}
	if cfg.RetryInterval <= 0 {
		cfg.RetryInterval = 200 * time.Millisecond
	}
	if cfg.ApplyTimeout <= 0 {
		cfg.ApplyTimeout = 30 * time.Second
	}
	if cfg.StatusInterval <= 0 {
		cfg.StatusInterval = 2 * time.Second
	}
	if cfg.ScrapeTimeout <= 0 {
		cfg.ScrapeTimeout = 2 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Nop()
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &Router{
		cfg:      cfg,
		log:      cfg.Logger,
		runDone:  make(chan struct{}),
		pollDone: make(chan struct{}),
		probes:   make([]atomic.Pointer[shardProbe], len(cfg.Shards)),
		traces:   obs.NewTraceRing(cfg.TraceCapacity),
		spans:    obs.NewSpanRing(0),
	}
	r.cond = sync.NewCond(&r.mu)
	r.ctx, r.cancel = context.WithCancel(context.Background())
	r.met = newMetrics(r, reg)
	if err := r.bootstrap(ctx); err != nil {
		r.cancel()
		return nil, err
	}
	r.publishView()
	return r, nil
}

// Start launches the drain loop and the background status poller.
func (r *Router) Start() {
	r.started = true
	go r.run()
	go r.pollLoop()
}

// Close stops the router: further enqueues are rejected, the drain loop
// finishes the queue it has (retries against an unavailable shard are
// abandoned — the shards' logs disagree by at most that one in-flight
// record, which the next startup equalises), and the pollers stop. The
// shards themselves are not closed; the caller owns them.
func (r *Router) Close() error {
	r.closeOne.Do(func() {
		r.mu.Lock()
		r.closed = true
		r.cond.Broadcast()
		r.mu.Unlock()
		r.cancel()
		if r.started {
			<-r.runDone
			<-r.pollDone
		}
		// Fail whatever is still queued: with the loop gone nothing will.
		r.mu.Lock()
		rest := r.queue
		r.queue = nil
		r.mu.Unlock()
		finishItems(rest, ErrClosed)
	})
	return nil
}

// Halted returns the halt reason, or nil while the write path is live.
func (r *Router) Halted() error {
	if p := r.haltErr.Load(); p != nil {
		return *p
	}
	return nil
}

// halt stops the write path permanently (first reason wins).
func (r *Router) halt(err error) {
	wrapped := fmt.Errorf("%w: %w", ErrHalted, err)
	if r.haltErr.CompareAndSwap(nil, &wrapped) {
		r.log.Error("write path halted", obs.KeyComponent, "router", "error", err)
	}
}

// Enqueue admits updates to the fanout queue. The returned Batch completes
// once every shard has applied the drain containing them.
func (r *Router) Enqueue(upds []graph.Update) (*Batch, error) {
	if err := r.Halted(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	// Admit any batch while the queue has room (it may overshoot by one
	// batch): rejecting batches larger than the remaining room would make an
	// oversized batch unservable forever, not throttled.
	if len(r.queue) >= r.cfg.MaxQueue {
		return nil, ErrQueueFull
	}
	b := newBatch()
	if len(upds) == 0 {
		close(b.done)
		return b, nil
	}
	for _, u := range upds {
		r.queue = append(r.queue, item{upd: u, batch: b})
	}
	r.met.enqueued.Add(int64(len(upds)))
	r.cond.Signal()
	return b, nil
}

// QueueDepth returns the number of updates queued and not yet drained.
func (r *Router) QueueDepth() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queue)
}

// run is the drain loop: it takes everything queued and processes it as one
// record — fanout, verification, merge, view publication.
func (r *Router) run() {
	defer close(r.runDone)
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.closed {
			r.cond.Wait()
		}
		if len(r.queue) == 0 {
			r.mu.Unlock()
			return
		}
		items := r.queue
		r.queue = nil
		r.mu.Unlock()
		r.drain(items)
	}
}

// finishItems completes every batch of items, recording err (if any) once
// per batch.
func finishItems(items []item, err error) {
	seen := make(map[*Batch]struct{}, len(items))
	for _, it := range items {
		if _, ok := seen[it.batch]; ok {
			continue
		}
		seen[it.batch] = struct{}{}
		if err != nil {
			it.batch.noteError(err)
		}
		close(it.batch.done)
	}
}

// drain ships one drained run of updates as one record: write-all fanout,
// response verification, shard-order merge, view publication. Updates are
// not coalesced — every shard must see the identical stream, and the merge
// is exact for any batching, so there is nothing to gain and a differential
// bit to lose.
func (r *Router) drain(items []item) {
	if err := r.Halted(); err != nil {
		finishItems(items, err)
		return
	}
	upds := make([]graph.Update, len(items))
	needVertices := 0
	for i, it := range items {
		upds[i] = it.upd
		// Mirrors the single-process pipeline's growth requirement: valid
		// additions grow the graph to cover their endpoints (self loops and
		// negative endpoints are rejected before growing).
		if u := it.upd; !u.Remove && u.U != u.V && u.U >= 0 && u.V >= 0 {
			if n := max(u.U, u.V) + 1; n > needVertices {
				needVertices = n
			}
		}
	}
	rec := server.WALRecord{Seq: r.seq, NeedVertices: needVertices, Updates: upds}
	// One root span context per drain: the fanout derives one child per shard
	// from it, and the shards' traceparent headers extend the same trace — the
	// whole cluster-wide lifecycle of this record shares sc.TraceID.
	sc := obs.NewSpanContext()
	tr := obs.IngestTrace{TraceID: sc.TraceID, Updates: len(items), EnqueuedAt: items[0].batch.enqueuedAt}
	for _, it := range items[1:] {
		if t := it.batch.enqueuedAt; t.Before(tr.EnqueuedAt) {
			tr.EnqueuedAt = t
		}
	}
	start := time.Now()
	resps, err := r.fanout(sc, rec)
	if err != nil {
		if r.ctx.Err() != nil {
			finishItems(items, ErrClosed)
			return
		}
		r.recordTrace(tr, sc, err)
		r.halt(err)
		finishItems(items, r.Halted())
		return
	}
	// Every shard has appended and applied the record: the cluster-durable
	// point of this drain.
	tr.WALDurableAt = time.Now()
	if err := r.checkResponses(rec, resps); err != nil {
		r.recordTrace(tr, sc, err)
		r.halt(err)
		finishItems(items, r.Halted())
		return
	}
	if err := r.merge(rec, resps, items); err != nil {
		r.recordTrace(tr, sc, err)
		r.halt(err)
		finishItems(items, r.Halted())
		return
	}
	tr.AppliedAt = time.Now()
	r.seq = rec.Seq + 1
	r.met.drains.Inc()
	r.met.drainLat.Observe(time.Since(start).Seconds())
	r.publishView()
	tr.VisibleAt = time.Now()
	r.recordTrace(tr, sc, nil)
	finishItems(items, nil)
}

// recordTrace stores one drain's ingest trace and synthesizes its router-side
// spans: the root "ingest" span (the ancestor of every shard's spans via the
// fanout children) plus "merge" and "publish" children for the stages the
// drain reached. GET /v1/debug/trace serves both.
func (r *Router) recordTrace(tr obs.IngestTrace, sc obs.SpanContext, err error) {
	if err != nil {
		tr.Error = err.Error()
	}
	stored := r.traces.Add(tr)
	end := tr.VisibleAt
	for _, t := range []time.Time{tr.AppliedAt, tr.WALDurableAt, time.Now()} {
		if end.IsZero() {
			end = t
		}
	}
	if !tr.WALDurableAt.IsZero() && !tr.AppliedAt.IsZero() {
		r.spans.Add(obs.Span{
			TraceID: sc.TraceID, SpanID: obs.NewSpanID(), ParentID: sc.SpanID,
			Component: "router", Name: "merge", Start: tr.WALDurableAt, End: tr.AppliedAt,
		})
	}
	if !tr.AppliedAt.IsZero() && !tr.VisibleAt.IsZero() {
		r.spans.Add(obs.Span{
			TraceID: sc.TraceID, SpanID: obs.NewSpanID(), ParentID: sc.SpanID,
			Component: "router", Name: "publish", Start: tr.AppliedAt, End: tr.VisibleAt,
		})
	}
	r.spans.Add(obs.Span{
		TraceID: sc.TraceID, SpanID: sc.SpanID,
		Component: "router", Name: "ingest", Start: tr.EnqueuedAt, End: end,
		Attrs: map[string]string{"updates": strconv.Itoa(tr.Updates)},
		Error: stored.Error,
	})
}

// fanout ships rec to every shard concurrently and collects the decoded
// responses. Unavailable shards are retried until they answer or the router
// shuts down; any fatal answer cancels the siblings' retries and fails the
// fanout.
func (r *Router) fanout(root obs.SpanContext, rec server.WALRecord) ([]*server.ShardResponse, error) {
	ctx, cancel := context.WithCancel(r.ctx)
	defer cancel()
	resps := make([]*server.ShardResponse, len(r.cfg.Shards))
	errs := make([]error, len(r.cfg.Shards))
	var wg sync.WaitGroup
	for i, sc := range r.cfg.Shards {
		wg.Add(1)
		go func(i int, sc ShardConn) {
			defer wg.Done()
			resps[i], errs[i] = r.applyShard(ctx, root, i, sc, rec)
			if errs[i] != nil {
				cancel()
			}
		}(i, sc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, fmt.Errorf("shard %d (%s): record %d: %w", i, r.cfg.Shards[i].Name(), rec.Seq, err)
		}
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d (%s): record %d: %w", i, r.cfg.Shards[i].Name(), rec.Seq, err)
		}
	}
	return resps, nil
}

// applyShard ships rec to one shard, retrying while the shard is merely
// unavailable. The retried record is always the identical in-flight one, and
// the shard's response cache answers a retry of a record it already applied,
// so retries converge without double application.
func (r *Router) applyShard(ctx context.Context, root obs.SpanContext, idx int, sc ShardConn, rec server.WALRecord) (*server.ShardResponse, error) {
	label := fmt.Sprint(idx)
	// One child context for the whole retry loop, minted once: every attempt
	// — including the retry a restarted shard answers from its response cache
	// — carries the identical traceparent, so the record's shard-side spans
	// land in the drain's trace no matter how many attempts it took.
	ssc := root.Child()
	ctx = obs.ContextWithSpan(ctx, ssc)
	fanStart := time.Now()
	attempts := 0
	for {
		attempts++
		actx, acancel := context.WithTimeout(ctx, r.cfg.ApplyTimeout)
		start := time.Now()
		resp, err := sc.Apply(actx, rec)
		acancel()
		r.met.fanoutLat.With(label).Observe(time.Since(start).Seconds())
		if err == nil {
			r.met.shardUp.With(label).Set(1)
			r.met.shardSeq.With(label).Set(float64(rec.Seq + 1))
			r.noteFanoutSpan(ssc, root, idx, attempts, rec.Seq, fanStart, nil)
			return resp, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if !errors.Is(err, errShardUnavailable) {
			r.noteFanoutSpan(ssc, root, idx, attempts, rec.Seq, fanStart, err)
			return nil, err
		}
		r.met.shardUp.With(label).Set(0)
		r.met.retries.With(label).Inc()
		r.log.Warn("shard unavailable, retrying",
			obs.KeyComponent, "router", "shard", idx, "seq", rec.Seq, "error", err)
		select {
		case <-time.After(r.cfg.RetryInterval):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// noteFanoutSpan records the router-side span of one shard's fanout: the span
// the shard's own "shard_apply" span is parented under.
func (r *Router) noteFanoutSpan(ssc obs.SpanContext, root obs.SpanContext, idx, attempts int, seq uint64, start time.Time, err error) {
	sp := obs.Span{
		TraceID: ssc.TraceID, SpanID: ssc.SpanID, ParentID: root.SpanID,
		Component: "router", Name: "fanout_shard", Start: start, End: time.Now(),
		Attrs: map[string]string{
			"shard":    strconv.Itoa(idx),
			"attempts": strconv.Itoa(attempts),
			"seq":      strconv.FormatUint(seq, 10),
		},
	}
	if err != nil {
		sp.Error = err.Error()
	}
	r.spans.Add(sp)
}

// checkResponses verifies the fanout answers agree before anything is
// merged: every shard must echo the record's sequence, its configured
// identity, and the identical accept/reject status for every update (the
// statuses are deterministic functions of identical graph state — any
// disagreement means the cluster has forked).
func (r *Router) checkResponses(rec server.WALRecord, resps []*server.ShardResponse) error {
	n := len(r.cfg.Shards)
	for i, resp := range resps {
		if resp.ShardIndex != i || resp.ShardCount != n {
			return fmt.Errorf("shard %d (%s) answered as shard %d/%d — cluster misconfigured",
				i, r.cfg.Shards[i].Name(), resp.ShardIndex, resp.ShardCount)
		}
		if resp.Seq != rec.Seq {
			return fmt.Errorf("shard %d answered sequence %d for record %d", i, resp.Seq, rec.Seq)
		}
		if len(resp.Updates) != len(rec.Updates) {
			return fmt.Errorf("shard %d answered %d results for %d updates", i, len(resp.Updates), len(rec.Updates))
		}
	}
	for j := range rec.Updates {
		want := resps[0].Updates[j].Rejected
		for i := 1; i < n; i++ {
			if resps[i].Updates[j].Rejected != want {
				return fmt.Errorf("shards 0 and %d disagree on update %d of record %d (%v): rejected %v vs %v",
					i, j, rec.Seq, rec.Updates[j], want, resps[i].Updates[j].Rejected)
			}
		}
	}
	return nil
}

// merge folds one verified fanout into the merged state, update-major in
// shard-index order — exactly the reduce order of a single
// len(Shards)-worker engine, so the merged scores track the single-process
// bits (see the package comment).
func (r *Router) merge(rec server.WALRecord, resps []*server.ShardResponse, items []item) error {
	if rec.NeedVertices > r.g.N() {
		incremental.GrowGraphAndResult(r.g, r.res, rec.NeedVertices)
	}
	for j, upd := range rec.Updates {
		if resps[0].Updates[j].Rejected {
			r.rejected++
			r.met.rejected.Inc()
			items[j].batch.noteError(fmt.Errorf("%v: %s", upd, resps[0].Updates[j].Err))
			continue
		}
		if !upd.Remove {
			if m := max(upd.U, upd.V); m >= r.g.N() {
				incremental.GrowGraphAndResult(r.g, r.res, m+1)
			}
		}
		if err := r.g.Apply(upd); err != nil {
			// The shards accepted what our graph refuses: the merged state no
			// longer mirrors theirs.
			return fmt.Errorf("merged graph diverged from the shards at record %d update %d (%v): %w",
				rec.Seq, j, upd, err)
		}
		foldUpdate(r.res, resps, j)
		if upd.Remove {
			// The edge is gone and its centrality has been driven to zero by
			// the shards' corrections; drop the entry like the engine does.
			delete(r.res.EBC, bc.EdgeKey(r.g, upd.U, upd.V))
		}
		r.applied++
		r.met.applied.Inc()
		items[j].batch.noteApplied()
	}
	return nil
}

// foldUpdate adds update j's per-shard score deltas into res: shard by shard
// in index order, term by term in each shard's own fold order. This iteration
// IS the bitwise contract — it performs the same floating-point additions, in
// the same order, as the reduce phase of a single len(resps)-worker engine —
// so it is kept as one tiny function and fuzzed against a map-reference merge
// (see FuzzMergeDelta).
func foldUpdate(res *bc.Result, resps []*server.ShardResponse, j int) {
	for _, resp := range resps {
		u := resp.Updates[j]
		for _, t := range u.VBC {
			res.VBC[t.V] += t.X
		}
		for _, t := range u.EBC {
			res.EBC[t.E] += t.X
		}
	}
}

// publishView captures the merged state into an immutable read view.
func (r *Router) publishView() {
	r.view.Store(&view{
		res:        r.res.Clone(),
		n:          r.g.N(),
		m:          r.g.M(),
		directed:   r.directed,
		seq:        r.seq,
		applied:    r.applied,
		rejected:   r.rejected,
		sampled:    r.sampled,
		scale:      r.scale,
		sampleSize: r.sampleSizeNow(),
	})
	r.met.mergedSeq.Set(float64(r.seq))
}

func (r *Router) currentView() *view { return r.view.Load() }

// Result returns a copy of the cluster's current merged scores and the
// sequence they reflect (the number of records merged so far). The copy is
// the caller's; reads never block the write path.
func (r *Router) Result() (*bc.Result, uint64) {
	v := r.currentView()
	return v.res.Clone(), v.seq
}

// sampleSizeNow mirrors the engine's SampleSize: the number of sources
// maintained cluster-wide (the fixed sample in sampled mode, every vertex in
// exact mode).
func (r *Router) sampleSizeNow() int {
	if r.sampled {
		return r.sampleK
	}
	return r.g.N()
}

// pollLoop probes every shard's status on a fixed period, feeding /readyz
// and the per-shard health gauges.
func (r *Router) pollLoop() {
	defer close(r.pollDone)
	ticker := time.NewTicker(r.cfg.StatusInterval)
	defer ticker.Stop()
	r.probeShards()
	for {
		select {
		case <-ticker.C:
			r.probeShards()
		case <-r.ctx.Done():
			return
		}
	}
}

func (r *Router) probeShards() {
	for i, sc := range r.cfg.Shards {
		ctx, cancel := context.WithTimeout(r.ctx, r.cfg.StatusInterval)
		st, err := sc.Status(ctx)
		cancel()
		r.probes[i].Store(&shardProbe{st: st, err: err})
		label := fmt.Sprint(i)
		if err != nil || !st.Healthy {
			r.met.shardUp.With(label).Set(0)
			continue
		}
		r.met.shardUp.With(label).Set(1)
		r.met.shardSeq.With(label).Set(float64(st.AppliedSeq))
	}
}
