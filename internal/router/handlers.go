package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"streambc/internal/bc"
	"streambc/internal/graph"
	"streambc/internal/obs"
)

// defaultWaitTimeout bounds how long an ingest request with "wait":true may
// block before the router answers 202 anyway.
const defaultWaitTimeout = 30 * time.Second

// Handler returns the router's HTTP API — the same routes and JSON shapes as
// a single bcserved, so clients and dashboards do not care whether they talk
// to one process or a shard cluster:
//
//	GET  /healthz           liveness (503 once the write path has halted)
//	GET  /readyz            readiness (every shard answering and healthy)
//	GET  /metrics           federated metrics: router + every shard, shard-labelled
//	POST /v1/updates        ingest a batch of updates (fanned to every shard)
//	POST /v1/update         ingest a single update
//	GET  /v1/vertices/{v}   merged betweenness of one vertex
//	GET  /v1/edges?u=&v=    merged betweenness of one edge
//	GET  /v1/top/vertices   top-k vertices by merged betweenness
//	GET  /v1/top/edges      top-k edges by merged betweenness
//	GET  /v1/graph          graph summary
//	GET  /v1/stats          router and per-shard counters
//	GET  /v1/cluster/status aggregated shard identity, position, lag and health
//	GET  /v1/debug/trace    recent drain traces; ?trace= stitches one trace's spans
//	POST /v1/snapshot       ask every shard to snapshot now
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, r.instrument(route, h))
	}
	handle("GET /healthz", "/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if err := r.Halted(); err != nil {
			http.Error(w, "unhealthy: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	})
	handle("GET /readyz", "/readyz", r.handleReady)
	handle("GET /metrics", "/metrics", r.handleMetrics)
	handle("POST /v1/updates", "/v1/updates", r.handleUpdates)
	handle("POST /v1/update", "/v1/update", r.handleUpdate)
	handle("GET /v1/vertices/{v}", "/v1/vertices/{v}", r.handleVertex)
	handle("GET /v1/edges", "/v1/edges", r.handleEdge)
	handle("GET /v1/top/vertices", "/v1/top/vertices", r.handleTopVertices)
	handle("GET /v1/top/edges", "/v1/top/edges", r.handleTopEdges)
	handle("GET /v1/graph", "/v1/graph", r.handleGraph)
	handle("GET /v1/stats", "/v1/stats", r.handleStats)
	handle("GET /v1/cluster/status", "/v1/cluster/status", r.handleClusterStatus)
	handle("GET /v1/debug/trace", "/v1/debug/trace", r.handleTrace)
	handle("POST /v1/snapshot", "/v1/snapshot", r.handleSnapshot)
	return mux
}

func (r *Router) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, req)
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		elapsed := time.Since(start)
		r.met.httpRequests.With(route, strconv.Itoa(code)).Inc()
		r.met.httpLatency.With(route).Observe(elapsed.Seconds())
		if slow := r.cfg.SlowRequest; slow > 0 && elapsed >= slow {
			r.log.Warn("slow request",
				obs.KeyComponent, "http",
				"route", route, "method", req.Method, "status", code,
				"seconds", elapsed.Seconds())
		}
	}
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's optional
// interfaces (flush, deadlines) through the instrumentation wrapper.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// handleReady aggregates the cluster: the router is ready while the write
// path is live and the last status probe of every shard answered healthy. A
// router fronting an unreachable shard keeps serving reads but reports
// unready, so load balancers drain it before its queue fills.
func (r *Router) handleReady(w http.ResponseWriter, _ *http.Request) {
	if err := r.Halted(); err != nil {
		http.Error(w, "not ready: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	for i := range r.probes {
		p := r.probes[i].Load()
		switch {
		case p == nil:
			http.Error(w, fmt.Sprintf("not ready: shard %d not probed yet", i), http.StatusServiceUnavailable)
			return
		case p.err != nil:
			http.Error(w, fmt.Sprintf("not ready: shard %d unreachable: %v", i, p.err), http.StatusServiceUnavailable)
			return
		case !p.st.Healthy:
			http.Error(w, fmt.Sprintf("not ready: shard %d unhealthy", i), http.StatusServiceUnavailable)
			return
		}
	}
	w.Write([]byte("ready\n"))
}

type updateJSON struct {
	Op string `json:"op"` // "add" or "remove"
	U  int    `json:"u"`
	V  int    `json:"v"`
}

func (u updateJSON) toUpdate() (graph.Update, error) {
	switch u.Op {
	case "add", "":
		return graph.Addition(u.U, u.V), nil
	case "remove":
		return graph.Removal(u.U, u.V), nil
	default:
		return graph.Update{}, fmt.Errorf("unknown op %q (want \"add\" or \"remove\")", u.Op)
	}
}

type ingestRequest struct {
	Updates []updateJSON `json:"updates"`
	Wait    bool         `json:"wait"`
}

type ingestResponse struct {
	Enqueued  int      `json:"enqueued"`
	Waited    bool     `json:"waited"`
	Applied   int      `json:"applied"`
	Coalesced int      `json:"coalesced"` // always 0: the router never coalesces
	Rejected  int      `json:"rejected"`
	Errors    []string `json:"errors,omitempty"`
}

func (r *Router) handleUpdates(w http.ResponseWriter, req *http.Request) {
	var body ingestRequest
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	r.ingest(w, req, body)
}

func (r *Router) handleUpdate(w http.ResponseWriter, req *http.Request) {
	var body struct {
		updateJSON
		Wait bool `json:"wait"`
	}
	if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	r.ingest(w, req, ingestRequest{Updates: []updateJSON{body.updateJSON}, Wait: body.Wait})
}

func (r *Router) ingest(w http.ResponseWriter, req *http.Request, body ingestRequest) {
	if len(body.Updates) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("empty update batch"))
		return
	}
	upds := make([]graph.Update, len(body.Updates))
	for i, u := range body.Updates {
		upd, err := u.toUpdate()
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("update %d: %w", i, err))
			return
		}
		upds[i] = upd
	}
	batch, err := r.Enqueue(upds)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed) || errors.Is(err, ErrHalted) {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err)
		return
	}
	resp := ingestResponse{Enqueued: len(upds)}
	status := http.StatusAccepted
	if body.Wait {
		ctx, cancel := context.WithTimeout(req.Context(), defaultWaitTimeout)
		defer cancel()
		if err := batch.Wait(ctx); err == nil {
			resp.Waited = true
			resp.Applied = batch.Applied()
			for _, e := range batch.Errs() {
				resp.Errors = append(resp.Errors, e.Error())
			}
			resp.Rejected = len(resp.Errors)
			status = http.StatusOK
		}
	}
	writeJSON(w, status, resp)
}

func (r *Router) handleVertex(w http.ResponseWriter, req *http.Request) {
	vtx, err := strconv.Atoi(req.PathValue("v"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad vertex id: %w", err))
		return
	}
	v := r.currentView()
	score := 0.0
	known := vtx >= 0 && vtx < len(v.res.VBC)
	if known {
		score = v.res.VBC[vtx]
	}
	writeJSON(w, http.StatusOK, map[string]any{"vertex": vtx, "known": known, "score": score})
}

func (r *Router) handleEdge(w http.ResponseWriter, req *http.Request) {
	u, err1 := strconv.Atoi(req.URL.Query().Get("u"))
	vtx, err2 := strconv.Atoi(req.URL.Query().Get("v"))
	if err1 != nil || err2 != nil {
		httpError(w, http.StatusBadRequest, errors.New("query parameters u and v must be integers"))
		return
	}
	key := graph.Edge{U: u, V: vtx}
	if !r.directed {
		key = key.Canonical()
	}
	v := r.currentView()
	score, known := v.res.EBC[key]
	writeJSON(w, http.StatusOK, map[string]any{"u": u, "v": vtx, "known": known, "score": score})
}

type vertexScoreJSON struct {
	Vertex int     `json:"vertex"`
	Score  float64 `json:"score"`
}

type edgeScoreJSON struct {
	U     int     `json:"u"`
	V     int     `json:"v"`
	Score float64 `json:"score"`
}

func (r *Router) handleTopVertices(w http.ResponseWriter, req *http.Request) {
	k, err := parseK(req, 10)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	v := r.currentView()
	top := bc.TopVertices(v.res, k)
	out := make([]vertexScoreJSON, len(top))
	for i, t := range top {
		out[i] = vertexScoreJSON{Vertex: t.Vertex, Score: t.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{"k": len(out), "vertices": out})
}

func (r *Router) handleTopEdges(w http.ResponseWriter, req *http.Request) {
	k, err := parseK(req, 10)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	v := r.currentView()
	top := bc.TopEdges(v.res, k)
	out := make([]edgeScoreJSON, len(top))
	for i, t := range top {
		out[i] = edgeScoreJSON{U: t.Edge.U, V: t.Edge.V, Score: t.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{"k": len(out), "edges": out})
}

func (r *Router) handleGraph(w http.ResponseWriter, _ *http.Request) {
	v := r.currentView()
	avg := 0.0
	if v.n > 0 {
		avg = float64(v.m) / float64(v.n)
		if !v.directed {
			avg *= 2
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"n":          v.n,
		"m":          v.m,
		"directed":   v.directed,
		"avg_degree": avg,
	})
}

// shardStatJSON is one shard's block in /v1/stats, from the last background
// status probe.
type shardStatJSON struct {
	Shard      int    `json:"shard"`
	Name       string `json:"name"`
	Up         bool   `json:"up"`
	Healthy    bool   `json:"healthy"`
	AppliedSeq uint64 `json:"applied_sequence"`
	WALSeq     uint64 `json:"wal_sequence"`
	Error      string `json:"error,omitempty"`
}

func (r *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	v := r.currentView()
	shards := make([]shardStatJSON, len(r.cfg.Shards))
	for i, sc := range r.cfg.Shards {
		sj := shardStatJSON{Shard: i, Name: sc.Name()}
		if p := r.probes[i].Load(); p != nil {
			if p.err != nil {
				sj.Error = p.err.Error()
			} else {
				sj.Up = true
				sj.Healthy = p.st.Healthy
				sj.AppliedSeq = p.st.AppliedSeq
				sj.WALSeq = p.st.WALSeq
			}
		}
		shards[i] = sj
	}
	out := map[string]any{
		"updates_applied":  v.applied,
		"updates_enqueued": r.met.enqueued.Value(),
		"updates_rejected": v.rejected,
		"queue_depth":      r.QueueDepth(),
		"merged_sequence":  v.seq,
		"halted":           r.Halted() != nil,
		"sampled":          v.sampled,
		"sampled_sources":  v.sampleSize,
		"sample_scale":     v.scale,
		"shard_count":      len(r.cfg.Shards),
		"shards":           shards,
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSnapshot fans the snapshot request to every shard concurrently: the
// cluster's durable state IS the set of shard snapshots (the router keeps
// none of its own), so "snapshot now" means "every shard snapshots now".
func (r *Router) handleSnapshot(w http.ResponseWriter, req *http.Request) {
	type shardSnap struct {
		Shard int    `json:"shard"`
		Path  string `json:"path,omitempty"`
		Error string `json:"error,omitempty"`
	}
	out := make([]shardSnap, len(r.cfg.Shards))
	var wg sync.WaitGroup
	for i, sc := range r.cfg.Shards {
		wg.Add(1)
		go func(i int, sc ShardConn) {
			defer wg.Done()
			path, err := sc.Snapshot(req.Context())
			out[i] = shardSnap{Shard: i, Path: path}
			if err != nil {
				out[i].Error = err.Error()
			}
		}(i, sc)
	}
	wg.Wait()
	status := http.StatusOK
	for _, s := range out {
		if s.Error != "" {
			status = http.StatusInternalServerError
		}
	}
	writeJSON(w, status, map[string]any{"shards": out})
}

func parseK(req *http.Request, def int) (int, error) {
	raw := req.URL.Query().Get("k")
	if raw == "" {
		return def, nil
	}
	k, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad k: %w", err)
	}
	return k, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}

// Compile-time check that both transports satisfy the interface.
var (
	_ ShardConn = (*HTTPShard)(nil)
	_ ShardConn = (*LocalShard)(nil)
)
