package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"streambc/internal/engine"
	"streambc/internal/graph"
)

// TestShutdownOrderingUnderLoad is the shutdown-race test: readers hammer the
// router's HTTP API and an ingester drives the stream while one shard's
// server and engine are closed mid-flight, then the router itself. Every
// racing query must get a clean answer (200, 202 or 503 — never a partial or
// garbled one), ingest failures must come from the shutdown error family, and
// the merged view must never contain a partial record: whatever sequence the
// router ends at, its scores equal a reference engine that applied exactly
// that prefix of the stream. Run under -race (the CI race job does).
func TestShutdownOrderingUnderLoad(t *testing.T) {
	base := testGraph(t, 22, 55, 17)
	stream := testStream(t, base, 56, 18)
	const cnt = 3
	c := startCluster(t, base, cnt, nil)

	ts := httptest.NewServer(c.router.Handler())
	defer ts.Close()

	var (
		done    = make(chan struct{})
		readers sync.WaitGroup
		readErr = make(chan error, 16)
	)
	reportRead := func(err error) {
		select {
		case readErr <- err:
		default:
		}
	}
	// Readers: every answer must be complete and well-formed, status 200 or
	// 503, for the whole life of the cluster — before, during and after the
	// shard and router shutdowns.
	for _, path := range []string{"/healthz", "/v1/top/vertices?k=5", "/v1/stats", "/v1/vertices/0"} {
		readers.Add(1)
		go func(path string) {
			defer readers.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					reportRead(fmt.Errorf("GET %s: %w", path, err))
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					reportRead(fmt.Errorf("GET %s: reading body: %w", path, err))
					return
				}
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					reportRead(fmt.Errorf("GET %s: status %d: %s", path, resp.StatusCode, body))
					return
				}
				if resp.StatusCode == http.StatusOK && strings.Contains(resp.Header.Get("Content-Type"), "json") {
					var v any
					if err := json.Unmarshal(body, &v); err != nil {
						reportRead(fmt.Errorf("GET %s: partial or garbled answer %q: %w", path, body, err))
						return
					}
				}
			}
		}(path)
	}

	// Ingester: one update per record, sequentially, counting clean acks. The
	// moment the shard dies underneath it, Wait times out or the batch fails
	// with a shutdown-family error; anything else is a bug.
	const closeAfter = 12
	shardDown := make(chan struct{})
	ingestDone := make(chan int, 1)
	go func() {
		acked := 0
		defer func() { ingestDone <- acked }()
		for i, u := range stream {
			b, err := c.router.Enqueue([]graph.Update{u})
			if err != nil {
				if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrHalted) && !errors.Is(err, ErrQueueFull) {
					t.Errorf("Enqueue during shutdown: unexpected error %v", err)
				}
				return
			}
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			err = b.Wait(ctx)
			cancel()
			if err != nil {
				return // stalled on the dead shard: expected
			}
			if errs := b.Errs(); len(errs) > 0 {
				for _, e := range errs {
					if !errors.Is(e, ErrClosed) && !errors.Is(e, ErrHalted) {
						t.Errorf("batch error during shutdown: %v", e)
					}
				}
				return
			}
			acked++
			if i == closeAfter {
				close(shardDown)
			}
		}
	}()

	// Mid-stream, close one shard's server and then its engine — the ordering
	// a real bcserved shutdown performs — while the router is still fanning
	// out and the readers are still querying.
	<-shardDown
	c.shards[2].srv.Close()
	c.shards[2].eng.Close()

	// Give the router time to hit the dead shard and start retrying, with the
	// readers still hammering, then shut the router down underneath everyone.
	time.Sleep(50 * time.Millisecond)
	c.router.Close()

	acked := <-ingestDone
	if t.Failed() {
		return
	}

	// A closed cluster refuses writes with a clean 503, not a hang or a 500.
	resp, err := http.Post(ts.URL+"/v1/update", "application/json", strings.NewReader(`{"u":0,"v":1}`))
	if err != nil {
		t.Fatalf("POST after close: %v", err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST after close: status %d, want 503", resp.StatusCode)
	}
	// Direct enqueue too.
	if _, err := c.router.Enqueue([]graph.Update{{U: 0, V: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Enqueue after close: %v, want ErrClosed", err)
	}

	// Readers must have survived the whole sequence.
	close(done)
	readers.Wait()
	select {
	case err := <-readErr:
		t.Fatal(err)
	default:
	}

	// A shard going away is an outage, not a protocol disagreement: the
	// router must not have halted.
	if err := c.router.Halted(); err != nil {
		t.Fatalf("router halted on shard shutdown: %v", err)
	}

	// No partial merge: the view stopped at some record K >= every clean ack,
	// and its scores are exactly the first K stream updates — bit for bit
	// against a fresh reference engine. A merge that folded only some shards
	// of a record, or half an update, cannot pass this.
	v := c.router.currentView()
	if v.seq < uint64(acked) {
		t.Fatalf("view at sequence %d but %d records were acked", v.seq, acked)
	}
	if v.seq > uint64(len(stream)) {
		t.Fatalf("view at sequence %d beyond the stream (%d)", v.seq, len(stream))
	}
	ref, err := engine.New(base.Clone(), engine.Config{Workers: cnt})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for i, u := range stream[:v.seq] {
		if err := ref.Apply(u); err != nil {
			t.Fatalf("reference apply %d: %v", i, err)
		}
	}
	sameBits(t, "merged view after shutdown", ref.VBC(), ref.EBC(), v.res)
}
