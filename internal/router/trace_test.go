package router

import (
	"bytes"
	"context"
	"strconv"
	"testing"
	"time"

	"streambc/internal/engine"
	"streambc/internal/graph"
	"streambc/internal/obs"
	"streambc/internal/server"
)

// Trace-propagation tests: one ingest through the router must yield ONE
// distributed trace — the router's root ingest span an ancestor of every span
// any shard recorded for that drain — stitched back together by GET
// /v1/debug/trace?trace=. The contract must survive idempotent retries (the
// retry reuses the original trace ID, so a cache-answered replay joins the
// attempt that did the work) and a shard crash/WAL-replay cycle, and the
// instrumentation must not perturb a single score bit.

// assertConnectedTrace fails unless spans form one tree under trace id: a
// single root (the router's ingest span), every parent reference resolving
// within the set, and each of the cnt shards contributing its full apply
// pipeline (fanout_shard → shard_apply → wal_append + apply).
func assertConnectedTrace(t *testing.T, id obs.TraceID, spans []obs.Span, cnt int) {
	t.Helper()
	if len(spans) == 0 {
		t.Fatal("stitched trace holds no spans")
	}
	byID := make(map[obs.SpanID]obs.Span, len(spans))
	var root *obs.Span
	for i := range spans {
		sp := spans[i]
		if sp.TraceID != id {
			t.Fatalf("span %s/%s carries trace %s, want %s", sp.Component, sp.Name, sp.TraceID, id)
		}
		if sp.SpanID.IsZero() {
			t.Fatalf("span %s/%s has a zero span ID", sp.Component, sp.Name)
		}
		byID[sp.SpanID] = sp
		if sp.ParentID.IsZero() {
			if root != nil {
				t.Fatalf("two roots: %s/%s and %s/%s", root.Component, root.Name, sp.Component, sp.Name)
			}
			root = &spans[i]
		}
	}
	if root == nil {
		t.Fatal("no root span in the stitched trace")
	}
	if root.Component != "router" || root.Name != "ingest" {
		t.Fatalf("root span is %s/%s, want router/ingest", root.Component, root.Name)
	}
	children := make(map[obs.SpanID]map[string]int)
	for _, sp := range spans {
		if sp.ParentID.IsZero() {
			continue
		}
		if _, ok := byID[sp.ParentID]; !ok {
			t.Fatalf("span %s/%s has dangling parent %s — the trace is not connected",
				sp.Component, sp.Name, sp.ParentID)
		}
		m := children[sp.ParentID]
		if m == nil {
			m = make(map[string]int)
			children[sp.ParentID] = m
		}
		m[sp.Name]++
	}
	if got := children[root.SpanID]["fanout_shard"]; got != cnt {
		t.Fatalf("root has %d fanout_shard children, want %d", got, cnt)
	}
	fanouts := make(map[string]obs.Span, cnt)
	for _, sp := range spans {
		if sp.Name == "fanout_shard" {
			fanouts[sp.Attrs["shard"]] = sp
		}
	}
	if len(fanouts) != cnt {
		t.Fatalf("fanout spans name %d distinct shards, want %d", len(fanouts), cnt)
	}
	for shard, fo := range fanouts {
		applies := 0
		for _, sp := range spans {
			if sp.Name != "shard_apply" || sp.ParentID != fo.SpanID {
				continue
			}
			applies++
			if sp.Attrs["cached"] == "true" {
				continue // a cache-answered retry does no WAL/apply work
			}
			kids := children[sp.SpanID]
			if kids["wal_append"] != 1 || kids["apply"] != 1 {
				t.Fatalf("shard %s: shard_apply children = %v, want one wal_append and one apply",
					shard, kids)
			}
		}
		if applies == 0 {
			t.Fatalf("shard %s contributed no shard_apply span", shard)
		}
	}
}

// TestRouterIngestProducesOneConnectedTrace drives a stream through a 3-shard
// cluster next to a 3-worker reference engine: scores stay bit-identical (the
// instrumentation is free) and the newest drain stitches into one connected
// trace covering the router and every shard.
func TestRouterIngestProducesOneConnectedTrace(t *testing.T) {
	base := testGraph(t, 24, 60, 21)
	stream := testStream(t, base, 18, 22)
	const cnt = 3
	c := startCluster(t, base, cnt, nil)
	ref, err := engine.New(base.Clone(), engine.Config{Workers: cnt})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	for ci, chunk := range chunks(stream, 6) {
		c.apply(t, chunk)
		if _, err := ref.ApplyBatch(chunk); err != nil {
			t.Fatalf("chunk %d: reference ApplyBatch: %v", ci, err)
		}
		sameBits(t, "traced ingest chunk "+strconv.Itoa(ci), ref.VBC(), ref.EBC(), mergedScores(c.router))
	}

	traces := c.router.traces.Last(1)
	if len(traces) != 1 {
		t.Fatalf("trace ring holds %d traces, want at least 1", len(traces))
	}
	tr := traces[0]
	if tr.TraceID.IsZero() {
		t.Fatal("drain trace has no trace ID")
	}
	if tr.Error != "" {
		t.Fatalf("drain trace recorded an error: %s", tr.Error)
	}
	spans := c.router.stitchTrace(context.Background(), tr.TraceID)
	assertConnectedTrace(t, tr.TraceID, spans, cnt)
}

// TestRouterTraceSurvivesShardCrashRetry crashes a shard mid-drain: the
// router's retries reuse the same per-shard span context, so once the shard
// recovers by WAL replay the drain still stitches into one connected trace —
// with the retried shard's fanout span reporting more than one attempt — and
// the scores still match the reference bit for bit.
func TestRouterTraceSurvivesShardCrashRetry(t *testing.T) {
	base := testGraph(t, 24, 60, 25)
	stream := testStream(t, base, 16, 26)
	parts := chunks(stream, 6)
	const cnt = 3
	c := startCluster(t, base, cnt, nil)
	ref, err := engine.New(base.Clone(), engine.Config{Workers: cnt})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	c.apply(t, parts[0])
	if _, err := ref.ApplyBatch(parts[0]); err != nil {
		t.Fatal(err)
	}

	// Crash shard 1, enqueue the next chunk: the drain must stall on retries.
	c.shards[1].crash()
	b, err := c.router.Enqueue(parts[1])
	if err != nil {
		t.Fatalf("Enqueue during outage: %v", err)
	}
	waitCtx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	err = b.Wait(waitCtx)
	cancel()
	if err == nil {
		t.Fatal("drain completed while a shard was down")
	}

	c.shards[1] = c.shards[1].recover(t, base, 1, cnt, nil)
	c.conns[1].cur.Store(NewLocalShard("shard1*", c.shards[1].srv))
	waitCtx, cancel = context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Wait(waitCtx); err != nil {
		t.Fatalf("drain after recovery: %v", err)
	}
	if errs := b.Errs(); len(errs) > 0 {
		t.Fatalf("batch errors after recovery: %v", errs)
	}
	if _, err := ref.ApplyBatch(parts[1]); err != nil {
		t.Fatal(err)
	}
	sameBits(t, "scores after crash retry", ref.VBC(), ref.EBC(), mergedScores(c.router))

	traces := c.router.traces.Last(1)
	if len(traces) != 1 {
		t.Fatal("no trace recorded for the retried drain")
	}
	tr := traces[0]
	spans := c.router.stitchTrace(context.Background(), tr.TraceID)
	assertConnectedTrace(t, tr.TraceID, spans, cnt)
	for _, sp := range spans {
		if sp.Name != "fanout_shard" || sp.Attrs["shard"] != "1" {
			continue
		}
		attempts, err := strconv.Atoi(sp.Attrs["attempts"])
		if err != nil || attempts < 2 {
			t.Fatalf("shard 1 fanout attempts = %q, want >= 2", sp.Attrs["attempts"])
		}
	}
}

// TestShardCachedRetryJoinsOriginalTrace pins the retry/trace contract at the
// shard: re-sending the last applied record under the same span context (what
// the router's retry does) returns the cached body and records a cached=true
// shard_apply span in the SAME trace, parented like the original.
func TestShardCachedRetryJoinsOriginalTrace(t *testing.T) {
	base := testGraph(t, 20, 50, 31)
	h := startShard(t, base, 0, 1, nil)
	rec := server.WALRecord{Seq: 0, Updates: []graph.Update{{U: 0, V: 21}, {U: 21, V: 5}}}

	sc := obs.NewSpanContext()
	body1, err := h.srv.ApplyShardRecordTraced(rec, sc)
	if err != nil {
		t.Fatalf("first apply: %v", err)
	}
	body2, err := h.srv.ApplyShardRecordTraced(rec, sc)
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("cached retry returned a different body")
	}

	spans := h.srv.SpansByTrace(sc.TraceID)
	var applies, cached int
	for _, sp := range spans {
		if sp.Name != "shard_apply" {
			continue
		}
		applies++
		if sp.ParentID != sc.SpanID {
			t.Fatalf("shard_apply parented under %s, want the caller's span %s", sp.ParentID, sc.SpanID)
		}
		if sp.Attrs["cached"] == "true" {
			cached++
		}
	}
	if applies != 2 || cached != 1 {
		t.Fatalf("shard_apply spans = %d (cached %d), want 2 with exactly 1 cached", applies, cached)
	}
}
