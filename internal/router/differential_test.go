package router

import (
	"context"
	"math"
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"streambc/internal/bc"
	"streambc/internal/engine"
	"streambc/internal/gen"
	"streambc/internal/graph"
	"streambc/internal/obs"
	"streambc/internal/server"
)

// The differential harness: the same stream is driven through a sharded
// cluster (N one-worker shard servers behind a Router) and through
// single-process reference engines, and the scores are compared bit for bit
// at every chunk boundary. Two contracts are pinned:
//
//   - running merge: the router's merged accumulator must equal a standard
//     N-worker engine (whose reduce folds per-update worker deltas into one
//     running result, update-major);
//   - snapshot sum: the key-by-key sum of the N shards' snapshots must equal
//     an N-worker engine in partition-scores mode (whose read fold sums
//     per-worker totals, shard-major).
//
// Both must hold for exact and sampled mode, for N in {2, 3, 4}, and across a
// shard crash/restart mid-stream.

func testGraph(t *testing.T, n, m int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// testStream builds a mixed addition/removal stream that also grows the graph
// beyond its initial vertex count.
func testStream(t *testing.T, g *graph.Graph, count int, seed int64) []graph.Update {
	t.Helper()
	ups, err := gen.MixedStream(g, count, 0.35, seed)
	if err != nil {
		t.Fatalf("MixedStream: %v", err)
	}
	n := g.N()
	ups = append(ups,
		graph.Update{U: 0, V: n},
		graph.Update{U: n, V: n + 1},
		graph.Update{U: 2, V: n + 2},
		graph.Update{U: n + 1, V: 3},
	)
	return ups
}

// shardHandle is one shard of an in-process cluster, with everything needed
// to crash and recover it.
type shardHandle struct {
	srv     *server.Server
	eng     *engine.Engine
	wal     *server.WAL
	walDir  string
	snapDir string
}

// swapShard is a ShardConn whose target can be replaced at runtime — the
// restart tests point it at the recovered server while the router retries.
type swapShard struct {
	cur atomic.Pointer[LocalShard]
}

func (s *swapShard) Name() string { return s.cur.Load().Name() }
func (s *swapShard) Apply(ctx context.Context, rec server.WALRecord) (*server.ShardResponse, error) {
	return s.cur.Load().Apply(ctx, rec)
}
func (s *swapShard) Status(ctx context.Context) (server.ShardStatus, error) {
	return s.cur.Load().Status(ctx)
}
func (s *swapShard) State(ctx context.Context) (*engine.SnapshotState, error) {
	return s.cur.Load().State(ctx)
}
func (s *swapShard) WALRecords(ctx context.Context, from uint64, max int) ([]server.WALRecord, uint64, error) {
	return s.cur.Load().WALRecords(ctx, from, max)
}
func (s *swapShard) Snapshot(ctx context.Context) (string, error) {
	return s.cur.Load().Snapshot(ctx)
}
func (s *swapShard) Metrics(ctx context.Context) ([]byte, error) {
	return s.cur.Load().Metrics(ctx)
}
func (s *swapShard) Spans(ctx context.Context, trace obs.TraceID) ([]obs.Span, error) {
	return s.cur.Load().Spans(ctx, trace)
}

// startShard builds one shard server: a one-worker engine owning stride
// idx/cnt (over the global sample when sources is non-nil) with its own WAL
// and snapshot directory.
func startShard(t *testing.T, g *graph.Graph, idx, cnt int, sources []int) *shardHandle {
	t.Helper()
	snapDir := t.TempDir()
	walDir := filepath.Join(snapDir, "wal")
	eng, err := engine.New(g.Clone(), engine.Config{
		Workers: 1, ShardIndex: idx, ShardCount: cnt, Sources: sources,
	})
	if err != nil {
		t.Fatalf("shard %d/%d engine: %v", idx, cnt, err)
	}
	wal, err := server.OpenWAL(server.WALConfig{Dir: walDir}, 0)
	if err != nil {
		t.Fatalf("shard %d/%d WAL: %v", idx, cnt, err)
	}
	srv := server.New(eng, server.Config{WAL: wal, SnapshotDir: snapDir})
	srv.Start()
	h := &shardHandle{srv: srv, eng: eng, wal: wal, walDir: walDir, snapDir: snapDir}
	t.Cleanup(func() {
		h.srv.Close()
		h.eng.Close()
	})
	return h
}

// crash abandons the shard without a clean server shutdown: the WAL handle is
// closed (everything appended is already durable) and the old server is left
// to fail requests, exactly like a killed process behind a dead socket.
func (h *shardHandle) crash() {
	h.wal.Close()
}

// recover rebuilds the shard from its directories: fresh engine, WAL replay,
// rebuilt last-response cache — what a restarted bcserved -shard does.
func (h *shardHandle) recover(t *testing.T, g *graph.Graph, idx, cnt int, sources []int) *shardHandle {
	t.Helper()
	eng, err := engine.New(g.Clone(), engine.Config{
		Workers: 1, ShardIndex: idx, ShardCount: cnt, Sources: sources,
	})
	if err != nil {
		t.Fatalf("recovered shard %d/%d engine: %v", idx, cnt, err)
	}
	wal, err := server.OpenWAL(server.WALConfig{Dir: h.walDir}, 0)
	if err != nil {
		t.Fatalf("recovered shard %d/%d WAL: %v", idx, cnt, err)
	}
	_, last, err := server.RecoverShardState(wal, eng, 0, h.snapDir)
	if err != nil {
		t.Fatalf("RecoverShardState: %v", err)
	}
	srv := server.New(eng, server.Config{WAL: wal, SnapshotDir: h.snapDir, ShardLast: last})
	srv.Start()
	nh := &shardHandle{srv: srv, eng: eng, wal: wal, walDir: h.walDir, snapDir: h.snapDir}
	t.Cleanup(func() {
		nh.srv.Close()
		nh.eng.Close()
	})
	return nh
}

// cluster bundles N shards with a router over swappable connections.
type cluster struct {
	shards []*shardHandle
	conns  []*swapShard
	router *Router
}

func startCluster(t *testing.T, g *graph.Graph, cnt int, sources []int) *cluster {
	t.Helper()
	c := &cluster{}
	conns := make([]ShardConn, cnt)
	for i := 0; i < cnt; i++ {
		h := startShard(t, g, i, cnt, sources)
		sw := &swapShard{}
		sw.cur.Store(NewLocalShard("shard"+string(rune('0'+i)), h.srv))
		c.shards = append(c.shards, h)
		c.conns = append(c.conns, sw)
		conns[i] = sw
	}
	rt, err := New(context.Background(), Config{
		Shards:        conns,
		RetryInterval: 5 * time.Millisecond,
		ApplyTimeout:  5 * time.Second,
	})
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	rt.Start()
	t.Cleanup(func() { rt.Close() })
	c.router = rt
	return c
}

func (c *cluster) apply(t *testing.T, upds []graph.Update) {
	t.Helper()
	b, err := c.router.Enqueue(upds)
	if err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if errs := b.Errs(); len(errs) > 0 {
		t.Fatalf("batch errors: %v", errs)
	}
}

// sameBits fails unless a and b are bitwise-identical score sets.
func sameBits(t *testing.T, context string, aVBC []float64, aEBC map[graph.Edge]float64, b *bc.Result) {
	t.Helper()
	if len(aVBC) != len(b.VBC) {
		t.Fatalf("%s: VBC length %d vs %d", context, len(aVBC), len(b.VBC))
	}
	for v := range aVBC {
		if math.Float64bits(aVBC[v]) != math.Float64bits(b.VBC[v]) {
			t.Fatalf("%s: VBC[%d] = %x vs %x (%g vs %g)", context, v,
				math.Float64bits(aVBC[v]), math.Float64bits(b.VBC[v]), aVBC[v], b.VBC[v])
		}
	}
	if len(aEBC) != len(b.EBC) {
		t.Fatalf("%s: EBC size %d vs %d", context, len(aEBC), len(b.EBC))
	}
	for e, x := range aEBC {
		y, ok := b.EBC[e]
		if !ok {
			t.Fatalf("%s: EBC key %v missing", context, e)
		}
		if math.Float64bits(x) != math.Float64bits(y) {
			t.Fatalf("%s: EBC[%v] = %x vs %x", context, e, math.Float64bits(x), math.Float64bits(y))
		}
	}
}

// mergedScores reads the router's current merged view.
func mergedScores(r *Router) *bc.Result { return r.currentView().res }

// shardSum folds the cluster's shard snapshots key by key in shard order —
// the same fold the router's bootstrap baseline performs.
func shardSum(t *testing.T, c *cluster) *bc.Result {
	t.Helper()
	var out *bc.Result
	for i, h := range c.shards {
		st, err := h.srv.ShardState()
		if err != nil {
			t.Fatalf("shard %d state: %v", i, err)
		}
		if out == nil {
			out = bc.NewResult(st.Graph.N())
		}
		for v, x := range st.Scores.VBC {
			out.VBC[v] += x
		}
		for e, x := range st.Scores.EBC {
			out.EBC[e] += x
		}
	}
	return out
}

// chunks splits ups into runs of size n (the snapshot points of the
// differential comparison).
func chunks(ups []graph.Update, n int) [][]graph.Update {
	var out [][]graph.Update
	for off := 0; off < len(ups); off += n {
		out = append(out, ups[off:min(off+n, len(ups))])
	}
	return out
}

// TestDifferentialMergedBitIdentical is satellite 1: the same stream through a
// single-process engine and through 2-, 3- and 4-shard clusters, exact and
// sampled, merged VBC/EBC bit-identical at every chunk boundary — both the
// router's running merge and the sum of the shard snapshots.
func TestDifferentialMergedBitIdentical(t *testing.T) {
	base := testGraph(t, 28, 70, 1)
	stream := testStream(t, base, 24, 2)
	sample := bc.SampleSources(base.N(), 10, 3)
	for _, tc := range []struct {
		name    string
		sources []int
	}{
		{"exact", nil},
		{"sampled", sample},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, cnt := range []int{2, 3, 4} {
				c := startCluster(t, base, cnt, tc.sources)

				// Reference A: a standard cnt-worker engine (running merge).
				refRun, err := engine.New(base.Clone(), engine.Config{Workers: cnt, Sources: tc.sources})
				if err != nil {
					t.Fatalf("reference engine: %v", err)
				}
				defer refRun.Close()
				// Reference B: partition-scores engine (snapshot sum).
				refPart, err := engine.New(base.Clone(), engine.Config{
					Workers: cnt, Sources: tc.sources, PartitionScores: true,
				})
				if err != nil {
					t.Fatalf("partition engine: %v", err)
				}
				defer refPart.Close()

				for ci, chunk := range chunks(stream, 7) {
					c.apply(t, chunk)
					if _, err := refRun.ApplyBatch(chunk); err != nil {
						t.Fatalf("chunk %d: reference ApplyBatch: %v", ci, err)
					}
					if _, err := refPart.ApplyBatch(chunk); err != nil {
						t.Fatalf("chunk %d: partition ApplyBatch: %v", ci, err)
					}
					got := mergedScores(c.router)
					sameBits(t, tc.name+" running merge", refRun.VBC(), refRun.EBC(), got)
					sum := shardSum(t, c)
					sameBits(t, tc.name+" snapshot sum", refPart.VBC(), refPart.EBC(), sum)
				}
				if v := c.router.currentView(); v.seq == 0 || v.applied == 0 {
					t.Fatalf("view never advanced: %+v", v)
				}
				c.router.Close()
			}
		})
	}
}

// TestDifferentialShardRestartMidStream crashes one shard mid-stream while
// the router keeps retrying the in-flight record; the shard recovers by WAL
// replay, the retry is answered from the rebuilt response cache, and both
// bitwise contracts still hold for the rest of the stream.
func TestDifferentialShardRestartMidStream(t *testing.T) {
	base := testGraph(t, 24, 60, 5)
	stream := testStream(t, base, 20, 6)
	parts := chunks(stream, 6)
	for _, tc := range []struct {
		name    string
		sources []int
	}{
		{"exact", nil},
		{"sampled", bc.SampleSources(base.N(), 9, 7)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const cnt = 3
			c := startCluster(t, base, cnt, tc.sources)
			refRun, err := engine.New(base.Clone(), engine.Config{Workers: cnt, Sources: tc.sources})
			if err != nil {
				t.Fatal(err)
			}
			defer refRun.Close()
			refPart, err := engine.New(base.Clone(), engine.Config{
				Workers: cnt, Sources: tc.sources, PartitionScores: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer refPart.Close()

			applyRef := func(chunk []graph.Update) {
				t.Helper()
				if _, err := refRun.ApplyBatch(chunk); err != nil {
					t.Fatalf("reference ApplyBatch: %v", err)
				}
				if _, err := refPart.ApplyBatch(chunk); err != nil {
					t.Fatalf("partition ApplyBatch: %v", err)
				}
			}

			c.apply(t, parts[0])
			applyRef(parts[0])

			// Crash shard 1, then feed the next chunk while it is down: the
			// fanout must stall on retries, not fail or skip the shard.
			c.shards[1].crash()
			b, err := c.router.Enqueue(parts[1])
			if err != nil {
				t.Fatalf("Enqueue during outage: %v", err)
			}
			waitCtx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
			err = b.Wait(waitCtx)
			cancel()
			if err == nil {
				t.Fatal("drain completed while a shard was down")
			}

			// Recover the shard from its own directories and swap it in; the
			// router's next retry lands on the recovered server.
			c.shards[1] = c.shards[1].recover(t, base, 1, cnt, tc.sources)
			c.conns[1].cur.Store(NewLocalShard("shard1*", c.shards[1].srv))
			waitCtx, cancel = context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := b.Wait(waitCtx); err != nil {
				t.Fatalf("drain after recovery: %v", err)
			}
			if errs := b.Errs(); len(errs) > 0 {
				t.Fatalf("batch errors after recovery: %v", errs)
			}
			applyRef(parts[1])
			sameBits(t, "running merge after restart", refRun.VBC(), refRun.EBC(), mergedScores(c.router))
			sameBits(t, "snapshot sum after restart", refPart.VBC(), refPart.EBC(), shardSum(t, c))

			// The rest of the stream stays bit-identical.
			for _, chunk := range parts[2:] {
				c.apply(t, chunk)
				applyRef(chunk)
			}
			sameBits(t, "running merge at end", refRun.VBC(), refRun.EBC(), mergedScores(c.router))
			sameBits(t, "snapshot sum at end", refPart.VBC(), refPart.EBC(), shardSum(t, c))

			if c.router.Halted() != nil {
				t.Fatalf("router halted: %v", c.router.Halted())
			}
			c.router.Close()
		})
	}
}

// TestRouterRebootstrapEqualizesLaggard drives two shards apart (one missed
// the tail of the stream), then bootstraps a fresh router over them: the
// laggard must be equalised from the donor's WAL and the new baseline must
// equal the partition-scores reference bit for bit.
func TestRouterRebootstrapEqualizesLaggard(t *testing.T) {
	base := testGraph(t, 20, 50, 9)
	const cnt = 2
	h0 := startShard(t, base, 0, cnt, nil)
	h1 := startShard(t, base, 1, cnt, nil)

	refPart, err := engine.New(base.Clone(), engine.Config{Workers: cnt, PartitionScores: true})
	if err != nil {
		t.Fatal(err)
	}
	defer refPart.Close()

	recs := []server.WALRecord{
		{Seq: 0, NeedVertices: 0, Updates: []graph.Update{{U: 0, V: 21}, {U: 21, V: 5}}},
		{Seq: 1, NeedVertices: 0, Updates: []graph.Update{{U: 1, V: 20}, {U: 3, V: 22}}},
	}
	for _, rec := range recs {
		if _, err := h0.srv.ApplyShardRecord(rec); err != nil {
			t.Fatalf("shard 0 apply %d: %v", rec.Seq, err)
		}
		for _, u := range rec.Updates {
			if err := refPart.Apply(u); err != nil {
				t.Fatalf("reference apply: %v", err)
			}
		}
	}
	// Shard 1 misses the second record entirely.
	if _, err := h1.srv.ApplyShardRecord(recs[0]); err != nil {
		t.Fatalf("shard 1 apply 0: %v", err)
	}

	rt, err := New(context.Background(), Config{Shards: []ShardConn{
		NewLocalShard("s0", h0.srv), NewLocalShard("s1", h1.srv),
	}})
	if err != nil {
		t.Fatalf("router.New over a lagging cluster: %v", err)
	}
	defer rt.Close()
	if st := h1.srv.ShardStatus(); st.AppliedSeq != 2 {
		t.Fatalf("laggard equalised to %d, want 2", st.AppliedSeq)
	}
	v := rt.currentView()
	if v.seq != 2 {
		t.Fatalf("router baseline at sequence %d, want 2", v.seq)
	}
	sameBits(t, "re-bootstrap baseline", refPart.VBC(), refPart.EBC(), v.res)
}

// TestRouterBootstrapRejectsMisconfiguredCluster covers the identity checks:
// shards listed out of order, or with the wrong count, must be refused before
// anything is merged.
func TestRouterBootstrapRejectsMisconfiguredCluster(t *testing.T) {
	base := testGraph(t, 12, 26, 11)
	h0 := startShard(t, base, 0, 2, nil)
	h1 := startShard(t, base, 1, 2, nil)

	// Swapped order: shard 1 answers at position 0.
	if _, err := New(context.Background(), Config{Shards: []ShardConn{
		NewLocalShard("s1", h1.srv), NewLocalShard("s0", h0.srv),
	}}); err == nil {
		t.Fatal("swapped shard order accepted")
	}

	// Wrong cluster size: two shards of a 2-cluster listed as a 3-cluster
	// cannot exist, and a single shard of 2 cannot stand alone.
	if _, err := New(context.Background(), Config{Shards: []ShardConn{
		NewLocalShard("s0", h0.srv),
	}}); err == nil {
		t.Fatal("half a cluster accepted")
	}
}

// faultShard wraps a ShardConn and corrupts the response sequence once,
// simulating a forked or misbehaving shard.
type faultShard struct {
	ShardConn
	corrupt atomic.Bool
}

func (f *faultShard) Apply(ctx context.Context, rec server.WALRecord) (*server.ShardResponse, error) {
	resp, err := f.ShardConn.Apply(ctx, rec)
	if err == nil && f.corrupt.Load() {
		resp.Seq++
	}
	return resp, err
}

// TestRouterHaltsOnProtocolDisagreement: a shard answering the wrong sequence
// halts the write path (ingest fails with ErrHalted) while reads keep serving
// the last merged state.
func TestRouterHaltsOnProtocolDisagreement(t *testing.T) {
	base := testGraph(t, 14, 30, 13)
	const cnt = 2
	h0 := startShard(t, base, 0, cnt, nil)
	h1 := startShard(t, base, 1, cnt, nil)
	f := &faultShard{ShardConn: NewLocalShard("s1", h1.srv)}
	rt, err := New(context.Background(), Config{
		Shards:        []ShardConn{NewLocalShard("s0", h0.srv), f},
		RetryInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Close()

	c := &cluster{router: rt}
	c.apply(t, []graph.Update{{U: 0, V: 15}})
	before := mergedScores(rt)

	f.corrupt.Store(true)
	b, err := rt.Enqueue([]graph.Update{{U: 1, V: 15}})
	if err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := b.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	errs := b.Errs()
	if len(errs) != 1 {
		t.Fatalf("batch errors = %v, want exactly the halt", errs)
	}
	if rt.Halted() == nil {
		t.Fatal("router did not halt on a sequence disagreement")
	}
	if _, err := rt.Enqueue([]graph.Update{{U: 2, V: 15}}); err == nil {
		t.Fatal("ingest accepted after the halt")
	}
	// Reads still serve the pre-halt merged state.
	sameBits(t, "post-halt reads", before.VBC, before.EBC, mergedScores(rt))
}
