// Package gen builds the synthetic graphs and update streams used by the
// experiments. It provides the classic random-graph models (Erdős–Rényi,
// Barabási–Albert, Watts–Strogatz), the Holme–Kim model (preferential
// attachment with triad closure, our stand-in for the measurement-calibrated
// social-graph generator used in the paper), a planted-partition model for
// the community-detection use case, and the dataset presets that mirror
// Table 2 at laptop scale.
package gen

import (
	"math/rand"

	"streambc/internal/graph"
)

// ErdosRenyi generates a G(n, m)-style random graph with exactly m distinct
// edges chosen uniformly at random (self loops excluded).
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	maxEdges := n * (n - 1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		mustAdd(g, u, v)
	}
	return g
}

// BarabasiAlbert generates a preferential-attachment graph: vertices join one
// at a time and attach to k existing vertices chosen proportionally to their
// degree. The result has roughly k*n edges and a heavy-tailed degree
// distribution.
func BarabasiAlbert(n, k int, seed int64) *graph.Graph {
	return HolmeKim(n, k, 0, seed)
}

// HolmeKim generates a Holme–Kim graph: preferential attachment where, after
// each preferential link, a triad-closure step connects the newcomer to a
// random neighbour of the vertex it just attached to with probability p.
// Larger p yields larger clustering coefficients at the same density, which
// is what makes this model a good substitute for the measurement-calibrated
// social-graph generator used by the paper (degree distribution and
// clustering similar to real social graphs).
func HolmeKim(n, k int, p float64, seed int64) *graph.Graph {
	if k < 1 {
		k = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)

	// Repeated-vertex list for preferential sampling: every endpoint of every
	// edge appears once, so sampling uniformly from it is degree-biased.
	var targets []int

	// Seed clique of k+1 vertices.
	seedSize := k + 1
	if seedSize > n {
		seedSize = n
	}
	for i := 0; i < seedSize; i++ {
		for j := i + 1; j < seedSize; j++ {
			mustAdd(g, i, j)
			targets = append(targets, i, j)
		}
	}

	for v := seedSize; v < n; v++ {
		attached := make(map[int]bool, k)
		var last int = -1
		for len(attached) < k && len(attached) < v {
			var t int
			if last >= 0 && p > 0 && rng.Float64() < p {
				// Triad closure: pick a neighbour of the last attached vertex.
				neigh := g.Out(last)
				if len(neigh) > 0 {
					t = int(neigh[rng.Intn(len(neigh))])
				} else {
					t = targets[rng.Intn(len(targets))]
				}
			} else if len(targets) > 0 {
				t = targets[rng.Intn(len(targets))]
			} else {
				t = rng.Intn(v)
			}
			if t == v || attached[t] {
				continue
			}
			attached[t] = true
			mustAdd(g, v, t)
			targets = append(targets, v, t)
			last = t
		}
	}
	return g
}

// WattsStrogatz generates a small-world graph: a ring lattice where every
// vertex is connected to its k nearest neighbours (k even), with each edge
// rewired to a random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	if k >= n {
		k = n - 1
	}
	half := k / 2
	if half < 1 {
		half = 1
	}
	for v := 0; v < n; v++ {
		for j := 1; j <= half; j++ {
			w := (v + j) % n
			if v == w || g.HasEdge(v, w) {
				continue
			}
			mustAdd(g, v, w)
		}
	}
	// Rewire.
	for _, e := range g.Edges() {
		if rng.Float64() >= beta {
			continue
		}
		// Replace e with an edge from e.U to a random vertex.
		w := rng.Intn(n)
		if w == e.U || g.HasEdge(e.U, w) {
			continue
		}
		if err := g.RemoveEdge(e.U, e.V); err != nil {
			continue
		}
		mustAdd(g, e.U, w)
	}
	return g
}

// PlantedPartition generates a graph with `communities` groups of `size`
// vertices each; vertices in the same group are connected with probability
// pIn and vertices in different groups with probability pOut. It returns the
// graph and the ground-truth community of each vertex. It is used to exercise
// the Girvan-Newman use case.
func PlantedPartition(communities, size int, pIn, pOut float64, seed int64) (*graph.Graph, []int) {
	rng := rand.New(rand.NewSource(seed))
	n := communities * size
	g := graph.New(n)
	truth := make([]int, n)
	for v := 0; v < n; v++ {
		truth[v] = v / size
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			p := pOut
			if truth[u] == truth[v] {
				p = pIn
			}
			if rng.Float64() < p {
				mustAdd(g, u, v)
			}
		}
	}
	return g, truth
}

// Connected returns the largest connected component of g, relabelled to
// contiguous identifiers. Generators can produce a handful of stray
// components; experiments follow the paper and work on the LCC.
func Connected(g *graph.Graph) *graph.Graph {
	lcc, _ := g.LargestComponent()
	return lcc
}

func mustAdd(g *graph.Graph, u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		// The generators only call mustAdd with valid, non-duplicate pairs;
		// an error here is a programming bug.
		panic(err)
	}
}
