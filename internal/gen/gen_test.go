package gen

import (
	"testing"

	"streambc/internal/graph"
)

func TestErdosRenyiEdgeCount(t *testing.T) {
	g := ErdosRenyi(100, 300, 1)
	if g.N() != 100 || g.M() != 300 {
		t.Fatalf("n=%d m=%d, want 100 and 300", g.N(), g.M())
	}
	// Edge count capped at the complete graph.
	g2 := ErdosRenyi(5, 100, 1)
	if g2.M() != 10 {
		t.Fatalf("capped m=%d, want 10", g2.M())
	}
}

func TestBarabasiAlbertDegreeSkew(t *testing.T) {
	g := BarabasiAlbert(500, 3, 2)
	if g.N() != 500 {
		t.Fatalf("n=%d", g.N())
	}
	if g.MaxDegree() < 15 {
		t.Fatalf("preferential attachment should produce hubs, max degree = %d", g.MaxDegree())
	}
	st := g.ComputeStats(200, 1)
	if st.AvgDegree < 4 || st.AvgDegree > 8 {
		t.Fatalf("avg degree = %g, want around 6", st.AvgDegree)
	}
}

func TestHolmeKimClustering(t *testing.T) {
	low := HolmeKim(600, 4, 0.0, 3)
	high := HolmeKim(600, 4, 0.9, 3)
	ccLow := low.ClusteringCoefficient(300, 1)
	ccHigh := high.ClusteringCoefficient(300, 1)
	if ccHigh <= ccLow {
		t.Fatalf("triad closure should increase clustering: %g <= %g", ccHigh, ccLow)
	}
	if ccHigh < 0.1 {
		t.Fatalf("high-closure clustering too low: %g", ccHigh)
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(200, 6, 0.1, 4)
	if g.N() != 200 {
		t.Fatalf("n=%d", g.N())
	}
	st := g.ComputeStats(100, 1)
	if st.AvgDegree < 4 || st.AvgDegree > 7 {
		t.Fatalf("avg degree = %g", st.AvgDegree)
	}
	if st.Clustering < 0.2 {
		t.Fatalf("lattice clustering too low: %g", st.Clustering)
	}
}

func TestPlantedPartition(t *testing.T) {
	g, truth := PlantedPartition(3, 20, 0.5, 0.01, 5)
	if g.N() != 60 || len(truth) != 60 {
		t.Fatalf("n=%d len(truth)=%d", g.N(), len(truth))
	}
	if truth[0] != 0 || truth[59] != 2 {
		t.Fatalf("truth assignment wrong: %v", truth)
	}
	// Intra-community edges must dominate.
	intra, inter := 0, 0
	for _, e := range g.Edges() {
		if truth[e.U] == truth[e.V] {
			intra++
		} else {
			inter++
		}
	}
	if intra <= inter*3 {
		t.Fatalf("expected strongly intra-connected communities, intra=%d inter=%d", intra, inter)
	}
}

func TestConnectedExtractsLCC(t *testing.T) {
	g := graph.New(10)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	lcc := Connected(g)
	if lcc.N() != 3 || !lcc.IsConnected() {
		t.Fatalf("LCC n=%d connected=%v", lcc.N(), lcc.IsConnected())
	}
}

func TestPresets(t *testing.T) {
	if len(Presets()) < 10 {
		t.Fatalf("expected at least 10 presets, got %d", len(Presets()))
	}
	if _, err := GetPreset("nope"); err == nil {
		t.Fatal("expected error for unknown preset")
	}
	p, err := GetPreset("1k")
	if err != nil {
		t.Fatalf("GetPreset: %v", err)
	}
	g := p.Build(1)
	if !g.IsConnected() {
		t.Fatal("preset graph must be connected")
	}
	if g.N() < 900 || g.N() > 1000 {
		t.Fatalf("preset 1k size = %d", g.N())
	}
	st := g.ComputeStats(300, 1)
	if st.AvgDegree < 8 || st.AvgDegree > 16 {
		t.Fatalf("preset 1k avg degree = %g, want close to 11.8", st.AvgDegree)
	}
	if st.Clustering < 0.1 {
		t.Fatalf("preset 1k clustering = %g, want social-like clustering", st.Clustering)
	}
	if _, err := BuildPreset("adjnoun", 2); err != nil {
		t.Fatalf("BuildPreset: %v", err)
	}
	if len(PresetNames()) != len(Presets()) {
		t.Fatal("PresetNames and Presets disagree")
	}
}

func TestRandomAdditions(t *testing.T) {
	g := ErdosRenyi(50, 100, 7)
	ups, err := RandomAdditions(g, 30, 1)
	if err != nil {
		t.Fatalf("RandomAdditions: %v", err)
	}
	if len(ups) != 30 {
		t.Fatalf("got %d updates", len(ups))
	}
	seen := map[graph.Edge]bool{}
	for _, u := range ups {
		if u.Remove {
			t.Fatalf("unexpected removal %v", u)
		}
		if g.HasEdge(u.U, u.V) {
			t.Fatalf("addition %v targets an existing edge", u)
		}
		key := u.Edge().Canonical()
		if seen[key] {
			t.Fatalf("duplicate addition %v", u)
		}
		seen[key] = true
	}
	// Too many requested additions on a tiny clique must fail.
	clique := ErdosRenyi(4, 6, 1)
	if _, err := RandomAdditions(clique, 10, 1); err == nil {
		t.Fatal("expected error when not enough unconnected pairs exist")
	}
}

func TestRandomRemovals(t *testing.T) {
	g := ErdosRenyi(50, 100, 9)
	ups, err := RandomRemovals(g, 20, 2)
	if err != nil {
		t.Fatalf("RandomRemovals: %v", err)
	}
	if len(ups) != 20 {
		t.Fatalf("got %d", len(ups))
	}
	seen := map[graph.Edge]bool{}
	for _, u := range ups {
		if !u.Remove || !g.HasEdge(u.U, u.V) {
			t.Fatalf("bad removal %v", u)
		}
		key := u.Edge().Canonical()
		if seen[key] {
			t.Fatalf("duplicate removal %v", u)
		}
		seen[key] = true
	}
	if _, err := RandomRemovals(g, g.M()+1, 2); err == nil {
		t.Fatal("expected error when removing more edges than exist")
	}
}

func TestMixedStreamIsReplayable(t *testing.T) {
	g := ErdosRenyi(40, 80, 11)
	ups, err := MixedStream(g, 60, 0.4, 3)
	if err != nil {
		t.Fatalf("MixedStream: %v", err)
	}
	replay := g.Clone()
	for i, u := range ups {
		if err := replay.Apply(u); err != nil {
			t.Fatalf("update %d (%v) not replayable: %v", i, u, err)
		}
	}
}

func TestTimestampMonotonic(t *testing.T) {
	g := ErdosRenyi(30, 60, 13)
	ups, err := RandomAdditions(g, 25, 5)
	if err != nil {
		t.Fatal(err)
	}
	stamped := Timestamp(ups, ArrivalModel{MeanGap: 2, Burstiness: 0.2}, 7)
	if len(stamped) != len(ups) {
		t.Fatalf("length changed")
	}
	prev := 0.0
	for i, u := range stamped {
		if u.Time <= prev {
			t.Fatalf("timestamps not strictly increasing at %d: %g <= %g", i, u.Time, prev)
		}
		prev = u.Time
	}
	// The original stream must be untouched.
	if ups[0].Time != 0 {
		t.Fatal("Timestamp mutated its input")
	}
}

func TestGrowthStream(t *testing.T) {
	g := ErdosRenyi(40, 120, 17)
	start, ups, err := GrowthStream(g, 0.5, 3)
	if err != nil {
		t.Fatalf("GrowthStream: %v", err)
	}
	if start.M()+len(ups) != g.M() {
		t.Fatalf("edges do not add up: %d + %d != %d", start.M(), len(ups), g.M())
	}
	replay := start.Clone()
	for _, u := range ups {
		if err := replay.Apply(u); err != nil {
			t.Fatalf("replay: %v", err)
		}
	}
	if replay.M() != g.M() {
		t.Fatalf("replayed graph has %d edges, want %d", replay.M(), g.M())
	}
	if _, _, err := GrowthStream(g, 1.5, 3); err == nil {
		t.Fatal("expected error for invalid warmup fraction")
	}
}
