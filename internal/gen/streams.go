package gen

import (
	"fmt"
	"math"
	"math/rand"

	"streambc/internal/graph"
)

// RandomAdditions builds an update stream of count edge additions between
// uniformly chosen pairs of vertices that are not connected in g (the
// workload used for the synthetic graphs in Section 6: "connecting 100 random
// unconnected pairs of vertices"). The graph itself is not modified; the
// returned updates are meant to be replayed against it.
func RandomAdditions(g *graph.Graph, count int, seed int64) ([]graph.Update, error) {
	rng := rand.New(rand.NewSource(seed))
	n := g.N()
	if n < 2 {
		return nil, fmt.Errorf("gen: graph too small for additions (n=%d)", n)
	}
	seen := make(map[graph.Edge]bool, count)
	updates := make([]graph.Update, 0, count)
	attempts := 0
	maxAttempts := count * 1000
	for len(updates) < count {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("gen: could not find %d unconnected pairs (found %d)", count, len(updates))
		}
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		key := (graph.Edge{U: u, V: v}).Canonical()
		if seen[key] {
			continue
		}
		seen[key] = true
		updates = append(updates, graph.Addition(u, v))
	}
	return updates, nil
}

// RandomRemovals builds an update stream of count removals of distinct
// existing edges chosen uniformly at random.
func RandomRemovals(g *graph.Graph, count int, seed int64) ([]graph.Update, error) {
	edges := g.Edges()
	if count > len(edges) {
		return nil, fmt.Errorf("gen: cannot remove %d edges from a graph with %d", count, len(edges))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(edges))
	updates := make([]graph.Update, count)
	for i := 0; i < count; i++ {
		e := edges[perm[i]]
		updates[i] = graph.Removal(e.U, e.V)
	}
	return updates, nil
}

// MixedStream interleaves additions and removals: each update is a removal
// with probability removeFraction (as long as previously added or original
// edges are available), otherwise an addition of an unconnected pair. The
// stream is valid when replayed in order starting from g.
func MixedStream(g *graph.Graph, count int, removeFraction float64, seed int64) ([]graph.Update, error) {
	rng := rand.New(rand.NewSource(seed))
	sim := g.Clone()
	updates := make([]graph.Update, 0, count)
	attempts := 0
	for len(updates) < count {
		attempts++
		if attempts > count*1000 {
			return nil, fmt.Errorf("gen: unable to build mixed stream of %d updates", count)
		}
		if rng.Float64() < removeFraction && sim.M() > 0 {
			edges := sim.Edges()
			e := edges[rng.Intn(len(edges))]
			if err := sim.RemoveEdge(e.U, e.V); err != nil {
				return nil, err
			}
			updates = append(updates, graph.Removal(e.U, e.V))
			continue
		}
		u, v := rng.Intn(sim.N()), rng.Intn(sim.N())
		if u == v || sim.HasEdge(u, v) {
			continue
		}
		if err := sim.AddEdge(u, v); err != nil {
			return nil, err
		}
		updates = append(updates, graph.Addition(u, v))
	}
	return updates, nil
}

// ArrivalModel describes how inter-arrival times are drawn when stamping an
// update stream with arrival times.
type ArrivalModel struct {
	// MeanGap is the average inter-arrival time in seconds.
	MeanGap float64
	// Burstiness in [0,1): 0 yields exponential (Poisson) arrivals; larger
	// values mix in heavy-tailed gaps (long quiet periods followed by bursts),
	// which is what real edge streams such as the paper's facebook and
	// slashdot traces look like.
	Burstiness float64
}

// Timestamp assigns arrival times to a copy of the updates according to the
// arrival model. Times are seconds from the start of the stream and strictly
// increasing.
func Timestamp(updates []graph.Update, model ArrivalModel, seed int64) []graph.Update {
	rng := rand.New(rand.NewSource(seed))
	out := make([]graph.Update, len(updates))
	copy(out, updates)
	t := 0.0
	for i := range out {
		gap := rng.ExpFloat64() * model.MeanGap
		if model.Burstiness > 0 && rng.Float64() < model.Burstiness {
			// Heavy tail: Pareto-like long gap.
			gap = model.MeanGap * math.Pow(1/(1-rng.Float64()), 1.5)
		}
		if gap < 1e-6 {
			gap = 1e-6
		}
		t += gap
		out[i].Time = t
	}
	return out
}

// GrowthStream builds a stream that replays the construction of g edge by
// edge in a randomised order (the "real arrival time" workload of the paper,
// where each edge carries its arrival timestamp). The stream starts from the
// subgraph containing a warmup fraction of the edges; the returned graph is
// that starting subgraph and the stream contains the remaining edges as
// additions.
func GrowthStream(g *graph.Graph, warmupFraction float64, seed int64) (*graph.Graph, []graph.Update, error) {
	if warmupFraction < 0 || warmupFraction >= 1 {
		return nil, nil, fmt.Errorf("gen: warmup fraction %g out of range [0,1)", warmupFraction)
	}
	edges := g.Edges()
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(edges))
	warm := int(float64(len(edges)) * warmupFraction)
	start := graph.New(g.N())
	for i := 0; i < warm; i++ {
		e := edges[perm[i]]
		if err := start.AddEdge(e.U, e.V); err != nil {
			return nil, nil, err
		}
	}
	var updates []graph.Update
	for i := warm; i < len(edges); i++ {
		e := edges[perm[i]]
		updates = append(updates, graph.Addition(e.U, e.V))
	}
	return start, updates, nil
}
