package replication

import (
	"context"
	"errors"
	"sync"
	"time"

	"streambc/internal/engine"
	"streambc/internal/server"
)

// TailerConfig configures a Tailer.
type TailerConfig struct {
	// MaxRecords bounds one poll's batch. Values < 1 mean 1024.
	MaxRecords int
	// Wait is the live-edge long-poll duration requested from the leader.
	// Values < 1 mean 25s.
	Wait time.Duration
	// MaxBackoff caps the exponential reconnect backoff (base 100ms).
	// Values < 1 mean 5s.
	MaxBackoff time.Duration
	// Rebootstrap, when non-nil, handles a 410 from the leader (the
	// follower's position was truncated by a leader snapshot): the tailer
	// fetches a fresh leader snapshot and hands it here; the callback must
	// install it as the replica's new state (server.SwapEngine) so tailing
	// can resume from the snapshot's sequence. nil makes 410 terminal.
	Rebootstrap func(st *engine.SnapshotState) error
	// Logf, when non-nil, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

// Tailer drives a replica: an endless fetch/apply loop against the leader's
// WAL with reconnect-and-resume on failures, publishing the lag picture the
// serving layer exposes as streambc_replication_* gauges.
type Tailer struct {
	c   *Client
	app Applier
	cfg TailerConfig

	mu         sync.Mutex
	connected  bool
	leaderSeq  uint64
	caughtUpAt time.Time // last instant applied == leader end
}

// NewTailer wires a tailer to a leader client and the replica's applier.
func NewTailer(c *Client, app Applier, cfg TailerConfig) *Tailer {
	if cfg.MaxRecords < 1 {
		cfg.MaxRecords = 1024
	}
	if cfg.Wait < 1 {
		cfg.Wait = 25 * time.Second
	}
	if cfg.MaxBackoff < 1 {
		cfg.MaxBackoff = 5 * time.Second
	}
	return &Tailer{c: c, app: app, cfg: cfg, caughtUpAt: time.Now()}
}

// logf emits through the configured logger, if any.
func (t *Tailer) logf(format string, args ...any) {
	if t.cfg.Logf != nil {
		t.cfg.Logf(format, args...)
	}
}

// Run tails the leader until ctx is cancelled (returns nil) or a terminal
// condition is hit (returns the error): divergence, a failed re-bootstrap,
// or an engine failure mid-apply — states where continuing could only fork
// or corrupt the replica. Transient failures (leader down, network cuts,
// leader restarts) are retried forever with capped exponential backoff,
// resuming from the replica's applied sequence.
func (t *Tailer) Run(ctx context.Context) error {
	// A stopped tailer is a disconnected replica, whatever the reason: the
	// lag gauges must never freeze at "connected" on a loop that is no
	// longer applying records (that would keep /readyz green on a replica
	// serving ever-staler data).
	defer t.setDisconnected()
	backoff := 100 * time.Millisecond
	for ctx.Err() == nil {
		from := t.app.AppliedWALSeq()
		recs, leaderSeq, err := t.c.WALRecords(ctx, from, t.cfg.MaxRecords, t.cfg.Wait)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			t.setDisconnected()
			switch {
			case errors.Is(err, ErrDiverged):
				return err
			case errors.Is(err, ErrTruncated):
				if t.cfg.Rebootstrap == nil {
					return err
				}
				t.logf("replication: position %d truncated on the leader, re-bootstrapping from its snapshot", from)
				if err := t.rebootstrap(ctx); err != nil {
					if ctx.Err() != nil {
						return nil
					}
					return err
				}
				backoff = 100 * time.Millisecond
				continue
			}
			t.logf("replication: leader poll failed (retrying in %s): %v", backoff, err)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil
			}
			backoff = min(backoff*2, t.cfg.MaxBackoff)
			continue
		}
		backoff = 100 * time.Millisecond
		for _, rec := range recs {
			if err := t.app.ApplyReplicated(rec); err != nil {
				if errors.Is(err, server.ErrSequenceGap) {
					// A duplicate or out-of-order batch (e.g. a retried poll
					// overlapping an applied prefix): drop the rest and
					// re-poll from the applied sequence.
					t.logf("replication: %v, re-polling", err)
					break
				}
				// The engine failed mid-record: the replica's state is
				// untrusted and must not keep advancing.
				t.setDisconnected()
				return err
			}
		}
		t.observe(leaderSeq)
	}
	return nil
}

// rebootstrap replaces the replica's state with a fresh leader snapshot.
func (t *Tailer) rebootstrap(ctx context.Context) error {
	st, err := t.c.Snapshot(ctx)
	if err != nil {
		return err
	}
	return t.cfg.Rebootstrap(st)
}

// setDisconnected marks the leader unreachable (or the replica stopped).
func (t *Tailer) setDisconnected() {
	t.mu.Lock()
	t.connected = false
	t.mu.Unlock()
}

// observe publishes the lag picture after one successful poll-and-apply.
func (t *Tailer) observe(leaderSeq uint64) {
	applied := t.app.AppliedWALSeq()
	t.mu.Lock()
	t.connected = true
	t.leaderSeq = leaderSeq
	if applied >= leaderSeq {
		t.caughtUpAt = time.Now()
	}
	t.mu.Unlock()
}

// Stats implements the server's replication-stats provider: wire it with
// srv.SetReplicationStats(tailer.Stats).
func (t *Tailer) Stats() server.ReplicationStats {
	applied := t.app.AppliedWALSeq()
	t.mu.Lock()
	defer t.mu.Unlock()
	st := server.ReplicationStats{
		Connected:  t.connected,
		AppliedSeq: applied,
		LeaderSeq:  t.leaderSeq,
	}
	if t.leaderSeq > applied {
		st.LagRecords = t.leaderSeq - applied
		st.LagSeconds = time.Since(t.caughtUpAt).Seconds()
	}
	return st
}
