package replication

import (
	"context"
	"errors"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"streambc/internal/engine"
	"streambc/internal/obs"
	"streambc/internal/server"
)

// TailerConfig configures a Tailer.
type TailerConfig struct {
	// MaxRecords bounds one poll's batch. Values < 1 mean 1024.
	MaxRecords int
	// Wait is the live-edge long-poll duration requested from the leader.
	// Values < 1 mean 25s.
	Wait time.Duration
	// MaxBackoff caps the exponential reconnect backoff (base 100ms).
	// Values < 1 mean 5s.
	MaxBackoff time.Duration
	// Rebootstrap, when non-nil, handles a 410 from the leader (the
	// follower's position was truncated by a leader snapshot): the tailer
	// fetches a fresh leader snapshot and hands it here; the callback must
	// install it as the replica's new state (server.SwapEngine) so tailing
	// can resume from the snapshot's sequence. nil makes 410 terminal.
	Rebootstrap func(st *engine.SnapshotState) error
	// Log, when non-nil, receives connection state transitions and
	// lifecycle messages. nil discards them.
	Log *slog.Logger
	// Obs, when non-nil, registers the tailer's reconnect/rebootstrap
	// counters and poll/apply latency histograms on this registry.
	Obs *obs.Registry
}

// Tailer drives a replica: an endless fetch/apply loop against the leader's
// WAL with reconnect-and-resume on failures, publishing the lag picture the
// serving layer exposes as streambc_replication_* gauges.
type Tailer struct {
	c   *Client
	app Applier
	cfg TailerConfig
	log *slog.Logger

	// reconnects counts polls that failed transiently (leader down, network
	// cut) and entered backoff; rebootstraps counts 410-triggered snapshot
	// reinstalls. Atomics because the metrics registry reads them at scrape
	// time while Run is looping.
	reconnects   atomic.Int64
	rebootstraps atomic.Int64

	pollLat  *obs.Histogram // leader poll round-trip (successful polls)
	applyLat *obs.Histogram // local apply time of one poll's records

	mu         sync.Mutex
	connected  bool
	leaderSeq  uint64
	caughtUpAt time.Time // last instant applied == leader end
}

// NewTailer wires a tailer to a leader client and the replica's applier.
func NewTailer(c *Client, app Applier, cfg TailerConfig) *Tailer {
	if cfg.MaxRecords < 1 {
		cfg.MaxRecords = 1024
	}
	if cfg.Wait < 1 {
		cfg.Wait = 25 * time.Second
	}
	if cfg.MaxBackoff < 1 {
		cfg.MaxBackoff = 5 * time.Second
	}
	t := &Tailer{c: c, app: app, cfg: cfg, log: cfg.Log, caughtUpAt: time.Now()}
	if t.log == nil {
		t.log = obs.Nop()
	}
	if reg := cfg.Obs; reg != nil {
		reg.CounterFunc("streambc_replication_reconnects_total",
			"Leader polls that failed transiently and entered reconnect backoff.",
			t.reconnects.Load)
		reg.CounterFunc("streambc_replication_rebootstraps_total",
			"Times the replica re-bootstrapped from a leader snapshot after its position was truncated.",
			t.rebootstraps.Load)
		t.pollLat = reg.Histogram("streambc_replication_poll_seconds",
			"Round-trip latency of successful leader WAL polls (includes long-poll wait at the live edge).",
			obs.LatencyBuckets())
		t.applyLat = reg.Histogram("streambc_replication_apply_seconds",
			"Local apply time of one poll's worth of replicated records.",
			obs.LatencyBuckets())
	}
	return t
}

// Reconnects reports how many polls failed transiently and entered backoff.
func (t *Tailer) Reconnects() int64 { return t.reconnects.Load() }

// Rebootstraps reports how many leader-snapshot re-bootstraps were triggered
// by the leader truncating this replica's position.
func (t *Tailer) Rebootstraps() int64 { return t.rebootstraps.Load() }

// Run tails the leader until ctx is cancelled (returns nil) or a terminal
// condition is hit (returns the error): divergence, a failed re-bootstrap,
// or an engine failure mid-apply — states where continuing could only fork
// or corrupt the replica. Transient failures (leader down, network cuts,
// leader restarts) are retried forever with capped exponential backoff,
// resuming from the replica's applied sequence.
func (t *Tailer) Run(ctx context.Context) error {
	// A stopped tailer is a disconnected replica, whatever the reason: the
	// lag gauges must never freeze at "connected" on a loop that is no
	// longer applying records (that would keep /readyz green on a replica
	// serving ever-staler data).
	defer t.setDisconnected()
	backoff := 100 * time.Millisecond
	for ctx.Err() == nil {
		from := t.app.AppliedWALSeq()
		pollStart := time.Now()
		recs, leaderSeq, traces, err := t.c.WALRecordsTraced(ctx, from, t.cfg.MaxRecords, t.cfg.Wait)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			t.setDisconnected()
			switch {
			case errors.Is(err, ErrDiverged):
				t.log.Error("replica diverged from leader, stopping",
					obs.KeyComponent, "replication", obs.KeySeq, from, "error", err)
				return err
			case errors.Is(err, ErrTruncated):
				if t.cfg.Rebootstrap == nil {
					t.log.Error("position truncated on leader and re-bootstrap disabled, stopping",
						obs.KeyComponent, "replication", obs.KeySeq, from)
					return err
				}
				t.rebootstraps.Add(1)
				t.log.Warn("position truncated on leader, re-bootstrapping from its snapshot",
					obs.KeyComponent, "replication", obs.KeySeq, from)
				if err := t.rebootstrap(ctx); err != nil {
					if ctx.Err() != nil {
						return nil
					}
					t.log.Error("re-bootstrap failed, stopping",
						obs.KeyComponent, "replication", "error", err)
					return err
				}
				t.log.Info("re-bootstrap complete, resuming tail",
					obs.KeyComponent, "replication", obs.KeySeq, t.app.AppliedWALSeq())
				backoff = 100 * time.Millisecond
				continue
			}
			t.reconnects.Add(1)
			t.log.Warn("leader poll failed, retrying",
				obs.KeyComponent, "replication", obs.KeySeq, from,
				"backoff", backoff.String(), "error", err)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil
			}
			backoff = min(backoff*2, t.cfg.MaxBackoff)
			continue
		}
		if t.pollLat != nil {
			t.pollLat.Observe(time.Since(pollStart).Seconds())
		}
		backoff = 100 * time.Millisecond
		applyStart := time.Now()
		for _, rec := range recs {
			if err := t.applyOne(rec, traces[rec.Seq]); err != nil {
				if errors.Is(err, server.ErrSequenceGap) {
					// A duplicate or out-of-order batch (e.g. a retried poll
					// overlapping an applied prefix): drop the rest and
					// re-poll from the applied sequence.
					t.log.Debug("sequence gap, re-polling",
						obs.KeyComponent, "replication", "error", err)
					break
				}
				// The engine failed mid-record: the replica's state is
				// untrusted and must not keep advancing.
				t.setDisconnected()
				t.log.Error("replicated apply failed, stopping",
					obs.KeyComponent, "replication", obs.KeySeq, rec.Seq, "error", err)
				return err
			}
		}
		if t.applyLat != nil && len(recs) > 0 {
			t.applyLat.Observe(time.Since(applyStart).Seconds())
		}
		t.observe(leaderSeq)
	}
	return nil
}

// tracedApplier is the optional extension of Applier that accepts the
// leader's per-record trace context (implemented by *server.Server): the
// replica then records its apply span under the originating ingest's trace.
type tracedApplier interface {
	ApplyReplicatedTraced(rec server.WALRecord, sc obs.SpanContext) error
}

// applyOne applies one replicated record, passing its trace context through
// when both the leader shipped one and the applier can accept it.
func (t *Tailer) applyOne(rec server.WALRecord, sc obs.SpanContext) error {
	if ta, ok := t.app.(tracedApplier); ok && sc.Valid() {
		return ta.ApplyReplicatedTraced(rec, sc)
	}
	return t.app.ApplyReplicated(rec)
}

// rebootstrap replaces the replica's state with a fresh leader snapshot.
func (t *Tailer) rebootstrap(ctx context.Context) error {
	st, err := t.c.Snapshot(ctx)
	if err != nil {
		return err
	}
	return t.cfg.Rebootstrap(st)
}

// setDisconnected marks the leader unreachable (or the replica stopped).
func (t *Tailer) setDisconnected() {
	t.mu.Lock()
	wasConnected := t.connected
	t.connected = false
	t.mu.Unlock()
	if wasConnected {
		t.log.Info("leader disconnected", obs.KeyComponent, "replication")
	}
}

// observe publishes the lag picture after one successful poll-and-apply.
func (t *Tailer) observe(leaderSeq uint64) {
	applied := t.app.AppliedWALSeq()
	t.mu.Lock()
	wasConnected := t.connected
	t.connected = true
	t.leaderSeq = leaderSeq
	if applied >= leaderSeq {
		t.caughtUpAt = time.Now()
	}
	t.mu.Unlock()
	if !wasConnected {
		t.log.Info("leader connected",
			obs.KeyComponent, "replication", obs.KeySeq, applied, "leader_seq", leaderSeq)
	}
}

// Stats implements the server's replication-stats provider: wire it with
// srv.SetReplicationStats(tailer.Stats).
func (t *Tailer) Stats() server.ReplicationStats {
	applied := t.app.AppliedWALSeq()
	t.mu.Lock()
	defer t.mu.Unlock()
	st := server.ReplicationStats{
		Connected:  t.connected,
		AppliedSeq: applied,
		LeaderSeq:  t.leaderSeq,
	}
	if t.leaderSeq > applied {
		st.LagRecords = t.leaderSeq - applied
		st.LagSeconds = time.Since(t.caughtUpAt).Seconds()
	}
	return st
}
