// Package replication turns bcserved into a leader/follower cluster by
// physical write-ahead-log shipping over HTTP. The leader (any bcserved with
// a WAL) exposes its latest state and log on /v1/replication/*; a follower
// bootstraps from the snapshot stream, then tails the log and applies every
// record through the same replay path crash recovery uses. Because score
// accumulation is history-independent (PR 4), a follower that has applied
// the log through sequence S holds state bit-identical to the leader's at S
// — replication correctness is a byte-comparison away.
//
// The package splits along the follower's three concerns: the Client speaks
// the wire protocol, the Tailer drives the catch-up/live-edge loop and
// measures lag, and the Applier (implemented by *server.Server in replica
// mode) owns applying records to the engine and publishing read views.
package replication

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"streambc/internal/engine"
	"streambc/internal/obs"
	"streambc/internal/server"
)

// Errors distinguishing protocol outcomes the tailer reacts to.
var (
	// ErrTruncated: the requested WAL range was truncated by a leader
	// snapshot (HTTP 410). The follower must re-bootstrap from a snapshot.
	ErrTruncated = errors.New("replication: requested records truncated on the leader")
	// ErrDiverged: the follower's applied sequence is ahead of the leader's
	// log (HTTP 409). The pair no longer shares a history; continuing would
	// silently fork the scores, so this is terminal.
	ErrDiverged = errors.New("replication: follower is ahead of the leader's log")
	// ErrNotALeader: the remote end has no write-ahead log (HTTP 412), so it
	// cannot be replicated from.
	ErrNotALeader = errors.New("replication: remote has no write-ahead log")
)

// Client speaks the leader's replication API.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the leader at baseURL (scheme://host:port).
// The underlying http.Client carries no global timeout — WAL polls long-poll
// by design — so cancel through contexts.
func NewClient(baseURL string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), hc: &http.Client{}}
}

// BaseURL returns the leader base URL the client was built with.
func (c *Client) BaseURL() string { return c.base }

// do issues one GET and maps the protocol's error statuses to sentinels.
func (c *Client) do(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusOK {
		return resp, nil
	}
	defer resp.Body.Close()
	var payload struct {
		Error string `json:"error"`
	}
	json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&payload) //nolint:errcheck
	var sentinel error
	switch resp.StatusCode {
	case http.StatusGone:
		sentinel = ErrTruncated
	case http.StatusConflict:
		sentinel = ErrDiverged
	case http.StatusPreconditionFailed:
		sentinel = ErrNotALeader
	default:
		return nil, fmt.Errorf("replication: GET %s: status %d: %s", path, resp.StatusCode, payload.Error)
	}
	return nil, fmt.Errorf("%w: %s", sentinel, payload.Error)
}

// Snapshot fetches and decodes one consistent snapshot of the leader's
// state. The returned state's WALOffset is the sequence to start tailing
// from; the stream's trailing checksum guarantees a half-transferred
// snapshot fails loudly instead of bootstrapping a corrupt replica.
func (c *Client) Snapshot(ctx context.Context) (*engine.SnapshotState, error) {
	resp, err := c.do(ctx, "/v1/replication/snapshot")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	st, err := engine.ReadSnapshot(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("replication: decoding leader snapshot: %w", err)
	}
	return st, nil
}

// WALRecords fetches up to max log records starting at sequence from,
// long-polling up to wait at the live edge, and returns them together with
// the leader's log end sequence. An empty batch with a fresh leader sequence
// is the normal caught-up answer.
func (c *Client) WALRecords(ctx context.Context, from uint64, max int, wait time.Duration) ([]server.WALRecord, uint64, error) {
	recs, leaderSeq, _, err := c.WALRecordsTraced(ctx, from, max, wait)
	return recs, leaderSeq, err
}

// WALRecordsTraced is WALRecords plus the leader's trace map: for each
// returned record still held in the leader's sequence→trace ring, the span
// context the record was originally appended under. The map may be nil or
// partial — trace context is advisory and never gates application.
func (c *Client) WALRecordsTraced(ctx context.Context, from uint64, max int, wait time.Duration) ([]server.WALRecord, uint64, map[uint64]obs.SpanContext, error) {
	path := fmt.Sprintf("/v1/replication/wal?from=%d&max=%d&wait=%s", from, max, wait)
	resp, err := c.do(ctx, path)
	if err != nil {
		return nil, 0, nil, err
	}
	defer resp.Body.Close()
	leaderSeq, err := strconv.ParseUint(resp.Header.Get(server.WalSeqHeader), 10, 64)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("replication: bad %s header: %w", server.WalSeqHeader, err)
	}
	traces := server.ParseWALTraceMap(resp.Header.Get(server.WalTraceMapHeader))
	var recs []server.WALRecord
	for {
		rec, err := server.ReadWALRecord(resp.Body)
		if err == io.EOF {
			return recs, leaderSeq, traces, nil
		}
		if err != nil {
			// A record that frames but fails its CRC (or a cut stream) is a
			// transport problem: drop the batch and let the tailer re-poll
			// from its applied sequence.
			return nil, leaderSeq, nil, fmt.Errorf("replication: reading WAL stream: %w", err)
		}
		recs = append(recs, rec)
	}
}

// LeaderStatus is the decoded /v1/replication/status answer.
type LeaderStatus struct {
	WalSequence     uint64 `json:"wal_sequence"`
	SyncedSequence  uint64 `json:"synced_sequence"`
	OldestRetained  uint64 `json:"oldest_retained"`
	AppliedSequence uint64 `json:"applied_sequence"`
	Workers         int    `json:"workers"`
	Healthy         bool   `json:"healthy"`
}

// Status fetches the leader's replication status.
func (c *Client) Status(ctx context.Context) (*LeaderStatus, error) {
	resp, err := c.do(ctx, "/v1/replication/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st LeaderStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("replication: decoding leader status: %w", err)
	}
	return &st, nil
}
