package replication

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"streambc/internal/bc"
	"streambc/internal/engine"
	"streambc/internal/graph"
	"streambc/internal/obs"
	"streambc/internal/server"
)

func testGraph(t *testing.T, n, m int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// testStream builds a deterministic well-formed batch stream: additions
// (some to brand-new vertices) and removals of live edges.
func testStream(seed int64, n, batches, perBatch int) [][]graph.Update {
	rng := rand.New(rand.NewSource(seed))
	mirror := graph.New(n)
	var live []graph.Edge
	next := n
	out := make([][]graph.Update, 0, batches)
	for b := 0; b < batches; b++ {
		var batch []graph.Update
		for len(batch) < perBatch {
			switch r := rng.Intn(8); {
			case r == 0 && len(live) > 0:
				i := rng.Intn(len(live))
				e := live[i]
				live = append(live[:i], live[i+1:]...)
				mirror.Apply(graph.Removal(e.U, e.V)) //nolint:errcheck
				batch = append(batch, graph.Removal(e.U, e.V))
			default:
				u, v := rng.Intn(mirror.N()), rng.Intn(mirror.N())
				if r == 1 {
					v = next
					next++
				}
				if u == v || (v < mirror.N() && mirror.HasEdge(u, v)) {
					continue
				}
				for grow := mirror.N(); grow <= v; grow++ {
					mirror.AddVertex()
				}
				mirror.Apply(graph.Addition(u, v)) //nolint:errcheck
				live = append(live, graph.Edge{U: u, V: v})
				batch = append(batch, graph.Addition(u, v))
			}
		}
		out = append(out, batch)
	}
	return out
}

// leaderHarness is one in-process leader: engine + WAL + server + HTTP.
type leaderHarness struct {
	wal *server.WAL
	srv *server.Server
	ts  *httptest.Server
}

func startLeader(t *testing.T, g *graph.Graph, engCfg engine.Config, walDir, snapDir string) *leaderHarness {
	t.Helper()
	// Tiny segments so snapshots actually truncate history in these tests.
	wal, err := server.OpenWAL(server.WALConfig{Dir: walDir, SegmentBytes: 64}, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(g, engCfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng, server.Config{WAL: wal, SnapshotDir: snapDir, MaxBatch: 8})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	h := &leaderHarness{wal: wal, srv: srv, ts: ts}
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		eng.Close()
	})
	return h
}

// followerHarness is one in-process replica: client + server + tailer.
type followerHarness struct {
	eng    *engine.Engine
	srv    *server.Server
	tailer *Tailer
	reg    *obs.Registry
	cancel context.CancelFunc
	done   chan error
}

func startFollower(t *testing.T, leaderURL, snapDir string, engCfg engine.Config) *followerHarness {
	t.Helper()
	client := NewClient(leaderURL)
	ctx, cancel := context.WithCancel(context.Background())
	eng, err := Bootstrap(ctx, client, snapDir, engCfg)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := server.New(eng, server.Config{
		Replica: true, LeaderURL: leaderURL, SnapshotDir: snapDir, MaxBatch: 8,
		Obs: reg,
	})
	tailer := NewTailer(client, srv, TailerConfig{
		Wait:       100 * time.Millisecond,
		MaxBackoff: 100 * time.Millisecond,
		Rebootstrap: func(st *engine.SnapshotState) error {
			return srv.SwapEngine(func() (*engine.Engine, error) {
				return engine.RestoreEngine(st, engCfg)
			})
		},
		Obs: reg,
	})
	srv.SetReplicationStats(tailer.Stats)
	srv.Start()
	done := make(chan error, 1)
	go func() { done <- tailer.Run(ctx) }()
	f := &followerHarness{eng: eng, srv: srv, tailer: tailer, reg: reg, cancel: cancel, done: done}
	t.Cleanup(func() {
		cancel()
		<-done
		srv.Close()
		eng.Close()
	})
	return f
}

// stop cancels tailing and waits for the loop to exit.
func (f *followerHarness) stop(t *testing.T) error {
	t.Helper()
	f.cancel()
	select {
	case err := <-f.done:
		f.done <- err // keep the cleanup's receive working
		return err
	case <-time.After(10 * time.Second):
		t.Fatal("tailer did not stop")
		return nil
	}
}

func enqueueWait(t *testing.T, srv *server.Server, batch []graph.Update) {
	t.Helper()
	b, err := srv.Enqueue(batch)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

// waitCaughtUp polls until the follower has applied the leader's log end.
func waitCaughtUp(t *testing.T, f *followerHarness, leaderSeq uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := f.tailer.Stats()
		if st.Connected && st.AppliedSeq >= leaderSeq {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v (leader at %d)", st, leaderSeq)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// snapshotBytes writes a snapshot through the server and returns its bytes.
func snapshotBytes(t *testing.T, srv *server.Server) []byte {
	t.Helper()
	path, err := srv.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestReplicationDifferential is the acceptance contract: after N ingested
// batches the follower's snapshot at the leader's WAL sequence is
// byte-identical to the leader's own — in exact and in sampled mode — and
// the lag gauges return to zero once ingest stops.
func TestReplicationDifferential(t *testing.T) {
	const (
		nVertices = 24
		nEdges    = 40
		seed      = 11
		k         = 9
	)
	for _, tc := range []struct {
		name    string
		sampled bool
	}{
		{"exact", false},
		{"sampled", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			engCfg := engine.Config{Workers: 2}
			if tc.sampled {
				engCfg.Sources = bc.SampleSources(nVertices, k, seed)
			}
			// Bit-identity requires the replica to reduce deltas exactly like
			// the leader, which (as for crash recovery) means the same worker
			// count: the per-worker grouping of floating-point accumulation
			// is part of the contract.
			leader := startLeader(t, testGraph(t, nVertices, nEdges, seed), engCfg, t.TempDir(), t.TempDir())
			follower := startFollower(t, leader.ts.URL, t.TempDir(), engine.Config{Workers: 2})

			for _, b := range testStream(seed+1, nVertices, 10, 6) {
				enqueueWait(t, leader.srv, b)
			}
			waitCaughtUp(t, follower, leader.wal.Seq())

			// Bit-identity at the same WAL sequence: both snapshots must be
			// the same bytes (same graph, scores, applied count, offset).
			lb := snapshotBytes(t, leader.srv)
			fb := snapshotBytes(t, follower.srv)
			if !bytes.Equal(lb, fb) {
				t.Fatalf("leader and follower snapshots differ at sequence %d (%d vs %d bytes)",
					leader.wal.Seq(), len(lb), len(fb))
			}
			if tc.sampled && !follower.srv.Replica() {
				t.Fatal("follower lost replica mode")
			}

			// Ingest has stopped: the lag picture must settle at zero.
			st := follower.tailer.Stats()
			if !st.Connected || st.LagRecords != 0 || st.LagSeconds != 0 {
				t.Fatalf("lag after ingest stopped: %+v, want connected with zero lag", st)
			}
		})
	}
}

// TestFollowerServesReadsAndRedirectsWrites checks the replica's HTTP
// surface: reads answer locally, writes answer 307 to the leader, /readyz
// flips ready only once caught up.
func TestFollowerServesReadsAndRedirectsWrites(t *testing.T) {
	leader := startLeader(t, testGraph(t, 16, 24, 3), engine.Config{Workers: 1}, t.TempDir(), t.TempDir())
	follower := startFollower(t, leader.ts.URL, t.TempDir(), engine.Config{Workers: 1})
	fts := httptest.NewServer(follower.srv.Handler())
	defer fts.Close()

	for _, b := range testStream(5, 16, 4, 5) {
		enqueueWait(t, leader.srv, b)
	}
	waitCaughtUp(t, follower, leader.wal.Seq())

	// Reads serve locally with the replicated state.
	resp, err := http.Get(fts.URL + "/v1/graph")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replica read: %d %s", resp.StatusCode, body)
	}

	// Writes redirect (307 preserves the method and body).
	noRedirect := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err = noRedirect.Post(fts.URL+"/v1/updates", "application/json",
		bytes.NewReader([]byte(`{"updates":[{"u":0,"v":1}]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("replica write: status %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != leader.ts.URL+"/v1/updates" {
		t.Fatalf("replica write redirect to %q, want %q", loc, leader.ts.URL+"/v1/updates")
	}

	// Library-level writes fail loudly too.
	if _, err := follower.srv.Enqueue([]graph.Update{graph.Addition(0, 1)}); !errors.Is(err, server.ErrReadOnlyReplica) {
		t.Fatalf("Enqueue on replica: %v, want ErrReadOnlyReplica", err)
	}

	// Caught up within the lag threshold: ready.
	resp, err = http.Get(fts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("caught-up replica /readyz: %d, want 200", resp.StatusCode)
	}
}

// TestFollowerResumesAcrossLeaderRestart: the leader process is replaced (a
// new engine recovered from its snapshot + WAL, behind the same URL); the
// follower must reconnect and resume from its applied sequence with no gap
// and no re-bootstrap.
func TestFollowerResumesAcrossLeaderRestart(t *testing.T) {
	walDir, snapDir := t.TempDir(), t.TempDir()
	g := testGraph(t, 16, 24, 7)

	// The "stable address": a handler that forwards to the current leader
	// incarnation (nil = leader down, answer 503 like a dead backend).
	var current atomic.Pointer[http.Handler]
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := current.Load()
		if h == nil {
			http.Error(w, "leader down", http.StatusServiceUnavailable)
			return
		}
		(*h).ServeHTTP(w, r)
	}))
	defer front.Close()

	wal, err := server.OpenWAL(server.WALConfig{Dir: walDir, SegmentBytes: 512}, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(g, engine.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(eng, server.Config{WAL: wal, SnapshotDir: snapDir, MaxBatch: 8})
	srv.Start()
	h := srv.Handler()
	current.Store(&h)

	follower := startFollower(t, front.URL, t.TempDir(), engine.Config{Workers: 1})
	stream := testStream(13, 16, 8, 5)
	for _, b := range stream[:4] {
		enqueueWait(t, srv, b)
	}
	waitCaughtUp(t, follower, wal.Seq())

	// Leader "crashes": snapshot, close, gone from the address.
	current.Store(nil)
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	eng.Close()

	// Give the follower a failed poll or two, then bring up the restarted
	// leader from its own durable state.
	time.Sleep(150 * time.Millisecond)
	st, err := server.LoadSnapshotFile(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := engine.RestoreEngine(st, engine.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	wal2, err := server.OpenWAL(server.WALConfig{Dir: walDir, SegmentBytes: 512}, eng2.WALOffset())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.ReplayWAL(wal2, eng2, 8); err != nil {
		t.Fatal(err)
	}
	srv2 := server.New(eng2, server.Config{WAL: wal2, SnapshotDir: snapDir, MaxBatch: 8})
	srv2.Start()
	defer srv2.Close()
	h2 := srv2.Handler()
	current.Store(&h2)

	for _, b := range stream[4:] {
		enqueueWait(t, srv2, b)
	}
	waitCaughtUp(t, follower, wal2.Seq())
	lb := snapshotBytes(t, srv2)
	fb := snapshotBytes(t, follower.srv)
	if !bytes.Equal(lb, fb) {
		t.Fatal("follower diverged from the restarted leader")
	}

	// The outage must be visible: at least one poll failed and entered
	// backoff, and recovery went through resume, not re-bootstrap.
	if got := follower.tailer.Reconnects(); got < 1 {
		t.Fatalf("reconnects counter = %d, want >= 1 after a leader outage", got)
	}
	if got := follower.tailer.Rebootstraps(); got != 0 {
		t.Fatalf("rebootstraps counter = %d, want 0 (resume, not re-bootstrap)", got)
	}
	var buf bytes.Buffer
	if _, err := follower.reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"streambc_replication_reconnects_total ",
		"streambc_replication_rebootstraps_total 0",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("follower metrics missing %q", want)
		}
	}
}

// TestFollowerRebootstrapAfterTruncation: a follower that fell behind a
// leader snapshot's truncation horizon gets 410 and must rebuild itself from
// a fresh leader snapshot, then converge again.
func TestFollowerRebootstrapAfterTruncation(t *testing.T) {
	leader := startLeader(t, testGraph(t, 16, 24, 9), engine.Config{Workers: 1}, t.TempDir(), t.TempDir())
	follower := startFollower(t, leader.ts.URL, "", engine.Config{Workers: 1})

	stream := testStream(17, 16, 12, 5)
	for _, b := range stream[:3] {
		enqueueWait(t, leader.srv, b)
	}
	waitCaughtUp(t, follower, leader.wal.Seq())
	behindAt := follower.tailer.Stats().AppliedSeq

	// Detach the follower, push the leader far ahead and truncate its log
	// past the follower's position.
	if err := follower.stop(t); err != nil {
		t.Fatalf("tailer stopped with: %v", err)
	}
	for _, b := range stream[3:] {
		enqueueWait(t, leader.srv, b)
	}
	if _, err := leader.srv.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if oldest := leader.wal.OldestSeq(); oldest <= behindAt {
		t.Fatalf("test setup: leader retained sequence %d, needed > %d for a truncation gap", oldest, behindAt)
	}

	// Reattach: the tailer must hit 410, re-bootstrap via SwapEngine and
	// catch up to the leader's live edge.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- follower.tailer.Run(ctx) }()
	waitCaughtUp(t, follower, leader.wal.Seq())
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("tailer after rebootstrap: %v", err)
	}
	if got := follower.tailer.Rebootstraps(); got != 1 {
		t.Fatalf("rebootstraps counter = %d, want 1", got)
	}

	fb, err := follower.srv.Snapshot()
	if !errors.Is(err, server.ErrNoSnapshotDir) {
		t.Fatalf("snapshot without a dir: %v, %v", fb, err)
	}
	// Compare state through the engines directly (no snapshot dir on the
	// follower in this test): graph and applied counters must match, and
	// the applied sequence must equal the leader's.
	if got, want := follower.srv.AppliedWALSeq(), leader.wal.Seq(); got != want {
		t.Fatalf("follower at sequence %d, leader at %d", got, want)
	}
}

// TestPromoteFollower: after the leader dies, promoting the replica makes it
// writable (durably: it opens a fresh WAL at its applied sequence) and its
// replication endpoints start serving — a full failover.
func TestPromoteFollower(t *testing.T) {
	leader := startLeader(t, testGraph(t, 16, 24, 21), engine.Config{Workers: 1}, t.TempDir(), t.TempDir())
	follower := startFollower(t, leader.ts.URL, t.TempDir(), engine.Config{Workers: 1})
	for _, b := range testStream(23, 16, 5, 5) {
		enqueueWait(t, leader.srv, b)
	}
	waitCaughtUp(t, follower, leader.wal.Seq())
	seq := follower.srv.AppliedWALSeq()

	// Failover: stop tailing, open a fresh WAL at the applied sequence,
	// flip to primary.
	if err := follower.stop(t); err != nil {
		t.Fatalf("tailer stopped with: %v", err)
	}
	newWALDir := t.TempDir()
	wal, err := server.OpenWAL(server.WALConfig{Dir: newWALDir, AllowFresh: true}, seq)
	if err != nil {
		t.Fatal(err)
	}
	if got := wal.Seq(); got != seq {
		t.Fatalf("fresh WAL starts at %d, want %d", got, seq)
	}
	if err := follower.srv.AttachWAL(wal); err != nil {
		t.Fatal(err)
	}
	if err := follower.srv.Promote(); err != nil {
		t.Fatal(err)
	}
	if err := follower.srv.Promote(); !errors.Is(err, server.ErrNotReplica) {
		t.Fatalf("second promote: %v, want ErrNotReplica", err)
	}

	// Writes now apply locally and are logged durably from seq on.
	enqueueWait(t, follower.srv, []graph.Update{graph.Addition(0, 15)})
	if got := wal.Seq(); got != seq+1 {
		t.Fatalf("promoted WAL at %d after one batch, want %d", got, seq+1)
	}
	if !follower.eng.Graph().HasEdge(0, 15) {
		t.Fatal("promoted replica did not apply the write")
	}

	// The promoted node is a leader now: a brand-new follower can bootstrap
	// from it and replicate the post-failover write.
	fts := httptest.NewServer(follower.srv.Handler())
	defer fts.Close()
	second := startFollower(t, fts.URL, t.TempDir(), engine.Config{Workers: 1})
	waitCaughtUp(t, second, wal.Seq())
	lb := snapshotBytes(t, follower.srv)
	sb := snapshotBytes(t, second.srv)
	if !bytes.Equal(lb, sb) {
		t.Fatal("second-generation follower diverged from the promoted leader")
	}
}

// TestApplyReplicatedSequenceGap: records must continue exactly at the
// replica's applied sequence; anything else is refused without touching
// state.
func TestApplyReplicatedSequenceGap(t *testing.T) {
	eng, err := engine.New(testGraph(t, 8, 10, 2), engine.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := server.New(eng, server.Config{Replica: true})
	srv.Start()
	defer srv.Close()
	rec := server.WALRecord{Seq: 5, Updates: []graph.Update{graph.Addition(0, 7)}}
	if err := srv.ApplyReplicated(rec); !errors.Is(err, server.ErrSequenceGap) {
		t.Fatalf("gap apply: %v, want ErrSequenceGap", err)
	}
	rec.Seq = 0
	if err := srv.ApplyReplicated(rec); err != nil {
		t.Fatal(err)
	}
	if got := srv.AppliedWALSeq(); got != 1 {
		t.Fatalf("applied sequence %d, want 1", got)
	}
}

// TestClientErrorMapping covers the protocol's error statuses end to end
// through the client.
func TestClientErrorMapping(t *testing.T) {
	// A server without a WAL refuses replication with 412.
	eng, err := engine.New(testGraph(t, 8, 10, 2), engine.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := server.New(eng, server.Config{})
	srv.Start()
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()
	if _, err := c.Snapshot(ctx); !errors.Is(err, ErrNotALeader) {
		t.Fatalf("snapshot from non-leader: %v, want ErrNotALeader", err)
	}
	if _, _, err := c.WALRecords(ctx, 0, 10, 0); !errors.Is(err, ErrNotALeader) {
		t.Fatalf("tail from non-leader: %v, want ErrNotALeader", err)
	}

	// A leader whose log ends below the requested sequence answers 409.
	leader := startLeader(t, testGraph(t, 8, 10, 2), engine.Config{Workers: 1}, t.TempDir(), t.TempDir())
	if _, _, err := NewClient(leader.ts.URL).WALRecords(ctx, 99, 10, 0); !errors.Is(err, ErrDiverged) {
		t.Fatalf("tail ahead of the leader: %v, want ErrDiverged", err)
	}

	// Truncated ranges answer 410.
	stream := testStream(3, 8, 6, 4)
	for _, b := range stream {
		enqueueWait(t, leader.srv, b)
	}
	if _, err := leader.srv.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if oldest := leader.wal.OldestSeq(); oldest > 0 {
		if _, _, err := NewClient(leader.ts.URL).WALRecords(ctx, 0, 10, 0); !errors.Is(err, ErrTruncated) {
			t.Fatalf("tail below retention: %v, want ErrTruncated", err)
		}
	} else {
		t.Fatalf("test setup: snapshot did not truncate (oldest %d)", oldest)
	}
}

// TestLongPollWakesOnAppend: a live-edge poll parks until the next append
// and returns the fresh record well before the full wait elapses.
func TestLongPollWakesOnAppend(t *testing.T) {
	leader := startLeader(t, testGraph(t, 8, 10, 4), engine.Config{Workers: 1}, t.TempDir(), t.TempDir())
	c := NewClient(leader.ts.URL)
	ctx := context.Background()

	start := time.Now()
	got := make(chan error, 1)
	go func() {
		recs, _, err := c.WALRecords(ctx, 0, 10, 10*time.Second)
		if err == nil && len(recs) != 1 {
			err = fmt.Errorf("got %d records, want 1", len(recs))
		}
		got <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the poll park at the live edge
	enqueueWait(t, leader.srv, []graph.Update{graph.Addition(0, 7)})
	select {
	case err := <-got:
		if err != nil {
			t.Fatal(err)
		}
		if e := time.Since(start); e > 5*time.Second {
			t.Fatalf("long-poll took %s, should have woken on the append", e)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("long-poll never returned")
	}
}
