package replication

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"streambc/internal/engine"
	"streambc/internal/obs"
)

// TestReplicationExtendsIngestTrace: an ingest traced on the leader is
// extended to the follower through the WAL stream's trace map — the follower
// records a replica_apply span under the SAME trace ID, parented to the span
// the leader noted for that record's sequence.
func TestReplicationExtendsIngestTrace(t *testing.T) {
	g := testGraph(t, 16, 30, 51)
	leader := startLeader(t, g.Clone(), engine.Config{Workers: 2}, t.TempDir(), t.TempDir())
	f := startFollower(t, leader.ts.URL, t.TempDir(), engine.Config{Workers: 2})

	for _, batch := range testStream(52, 16, 3, 4) {
		enqueueWait(t, leader.srv, batch)
	}
	waitCaughtUp(t, f, leader.wal.Seq())

	// The leader's newest drain trace, via the same debug endpoint an
	// operator would use.
	resp, err := http.Get(leader.ts.URL + "/v1/debug/trace?n=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/trace: %d %s", resp.StatusCode, body)
	}
	var listing struct {
		Traces []struct {
			TraceID obs.TraceID `json:"trace_id"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
	if len(listing.Traces) == 0 {
		t.Fatal("leader recorded no drain traces")
	}
	id := listing.Traces[0].TraceID
	if id.IsZero() {
		t.Fatal("leader trace has no trace ID")
	}

	leaderSpans := leader.srv.SpansByTrace(id)
	if len(leaderSpans) == 0 {
		t.Fatal("leader holds no spans for its newest trace")
	}
	leaderIDs := make(map[obs.SpanID]bool, len(leaderSpans))
	for _, sp := range leaderSpans {
		leaderIDs[sp.SpanID] = true
	}

	followerSpans := f.srv.SpansByTrace(id)
	if len(followerSpans) == 0 {
		t.Fatal("follower recorded no spans under the leader's trace — the trace map did not propagate")
	}
	for _, sp := range followerSpans {
		if sp.Component != "replica" || sp.Name != "replica_apply" {
			t.Fatalf("unexpected follower span %s/%s", sp.Component, sp.Name)
		}
		if !leaderIDs[sp.ParentID] {
			t.Fatalf("replica span parented under %s, which is not a leader span of this trace", sp.ParentID)
		}
	}
}
