package replication

import (
	"context"
	"errors"
	"fmt"
	"os"

	"streambc/internal/engine"
	"streambc/internal/server"
)

// Applier is the follower-local state the tailer feeds: it applies leader
// WAL records in sequence and reports the sequence its state covers.
// *server.Server in replica mode implements it (ApplyReplicated replays the
// record through the engine and publishes a fresh read view).
type Applier interface {
	ApplyReplicated(rec server.WALRecord) error
	AppliedWALSeq() uint64
}

// Bootstrap produces the engine a follower starts from. A usable local
// snapshot wins — it avoids re-transferring state the follower already has,
// and the WAL offset it carries tells the tailer where to resume; otherwise
// the leader's snapshot stream seeds the replica (and, when snapshotDir is
// set, is persisted locally so the next restart can skip the transfer).
// cfg carries only local execution choices (workers, store backend); the
// sampled-mode source set always comes from the snapshot, because follower
// scores can only be bit-identical to the leader's under the exact same
// sample.
func Bootstrap(ctx context.Context, c *Client, snapshotDir string, cfg engine.Config) (*engine.Engine, error) {
	// Bit-identity requires the leader's worker count: the per-worker
	// grouping of floating-point delta reduction is part of the contract,
	// and a silent mismatch would drift the scores with no error anywhere.
	// Best-effort: an unreachable leader must not stop a restart that can
	// resume from a local snapshot (the mismatch then surfaces here on the
	// next clean start).
	if st, err := c.Status(ctx); err == nil && st.Workers > 0 {
		if local := max(cfg.Workers, 1); local != st.Workers {
			return nil, fmt.Errorf("replication: leader runs %d workers but this replica is configured for %d — scores would not be bit-identical; start the replica with -workers %d",
				st.Workers, local, st.Workers)
		}
	}
	if snapshotDir != "" {
		st, err := server.LoadSnapshotFile(snapshotDir)
		switch {
		case err == nil:
			return engine.RestoreEngine(st, cfg)
		case errors.Is(err, os.ErrNotExist):
			// First start: fall through to the leader.
		default:
			return nil, fmt.Errorf("replication: restoring local snapshot: %w", err)
		}
	}
	return BootstrapFromLeader(ctx, c, snapshotDir, cfg)
}

// BootstrapFromLeader fetches the leader's snapshot and builds a replica
// engine from it, persisting the snapshot into snapshotDir (when set) so a
// restart resumes locally.
func BootstrapFromLeader(ctx context.Context, c *Client, snapshotDir string, cfg engine.Config) (*engine.Engine, error) {
	st, err := c.Snapshot(ctx)
	if err != nil {
		return nil, err
	}
	eng, err := engine.RestoreEngine(st, cfg)
	if err != nil {
		return nil, fmt.Errorf("replication: restoring leader snapshot: %w", err)
	}
	if snapshotDir != "" {
		if _, err := server.WriteSnapshotFile(snapshotDir, eng); err != nil {
			eng.Close()
			return nil, fmt.Errorf("replication: persisting bootstrap snapshot: %w", err)
		}
	}
	return eng, nil
}
