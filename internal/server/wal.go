package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"streambc/internal/engine"
	"streambc/internal/graph"
)

// The write-ahead log makes accepted updates durable before they reach the
// engine: the ingest pipeline appends each coalesced drain as one record,
// fsyncs it according to the configured policy, and only then applies it. On
// startup the log tail not covered by the latest snapshot is replayed through
// the engine's batch path, so a kill -9 at any point loses at most the
// batches the fsync policy had not yet flushed — and loses them atomically
// (a torn tail record is discarded as a whole, never half-applied).
//
// The log is a directory of segment files named wal-<seq>.seg, where <seq>
// is the sequence number of the first record in the segment. Sequence
// numbers count records (one per accepted drain) from the creation of the
// log; a snapshot records the sequence it covers, and after a successful
// snapshot every segment whose records are all covered is deleted.
//
// Segment format:
//
//	magic    [8]byte  "STBCWAL1"
//	start    uvarint  sequence number of the first record (= filename)
//	records  until EOF
//
// Record format:
//
//	length   uint32 LE  payload length in bytes
//	crc      uint32 LE  CRC-32 (IEEE) of the payload
//	payload:
//	  seq          uvarint  sequence number (consecutive within the log)
//	  needVertices uvarint  vertex count the drain must grow the graph to
//	  count        uvarint  number of updates
//	  updates      count × update wire encoding (graph.AppendUpdate)
//
// A record is torn when the file ends before its frame or payload completes,
// or when the checksum does not match: in the final segment that is the
// expected signature of a crash mid-append and the tail is truncated away;
// anywhere else it is corruption and opening the log fails.

// walMagic begins every segment file.
var walMagic = [8]byte{'S', 'T', 'B', 'C', 'W', 'A', 'L', '1'}

const (
	walSegPrefix = "wal-"
	walSegSuffix = ".seg"
	// defaultSegmentBytes is the rotation threshold of WALConfig.SegmentBytes.
	defaultSegmentBytes = 64 << 20
	// maxWALRecordBytes bounds one record payload, so a corrupted length
	// field produces ErrBadWAL instead of a giant allocation.
	maxWALRecordBytes = 1 << 28
)

// ErrBadWAL is wrapped by every WAL decoding or consistency failure.
var ErrBadWAL = errors.New("server: bad write-ahead log")

// FsyncMode selects when appended WAL records are flushed to stable storage.
type FsyncMode int

const (
	// FsyncPerBatch fsyncs after every appended record: an acknowledged
	// batch survives any crash. The default.
	FsyncPerBatch FsyncMode = iota
	// FsyncInterval fsyncs on a timer: a crash loses at most the records of
	// the last interval.
	FsyncInterval
	// FsyncOff never fsyncs the log explicitly: durability is whatever the
	// operating system's page cache provides.
	FsyncOff
)

// String implements fmt.Stringer.
func (m FsyncMode) String() string {
	switch m {
	case FsyncPerBatch:
		return "batch"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	}
	return fmt.Sprintf("FsyncMode(%d)", int(m))
}

// ParseFsyncPolicy parses the -fsync flag of bcserved: "batch" (or empty)
// fsyncs per record, "off" never fsyncs, and a positive duration such as
// "200ms" fsyncs on that interval.
func ParseFsyncPolicy(s string) (FsyncMode, time.Duration, error) {
	switch s {
	case "", "batch":
		return FsyncPerBatch, 0, nil
	case "off":
		return FsyncOff, 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("bad fsync policy %q (want \"batch\", \"off\" or a positive interval like \"200ms\")", s)
	}
	return FsyncInterval, d, nil
}

// WALConfig configures a write-ahead log.
type WALConfig struct {
	// Dir is the log directory, created if missing.
	Dir string
	// SegmentBytes is the rotation threshold: a segment reaching it is
	// closed and a new one started. Values < 1 mean 64 MiB.
	SegmentBytes int64
	// Mode is the fsync policy.
	Mode FsyncMode
	// Interval is the fsync period of FsyncInterval. Values < 1 mean 100ms.
	Interval time.Duration
	// AllowFresh permits an empty directory to start a brand-new log at a
	// nonzero base sequence. Normal recovery must NOT set it: an empty
	// directory under a snapshot covering sequence S means acknowledged
	// records were wiped. A promoted follower sets it — its state at
	// sequence S came from replication, not from a local log, so a fresh
	// log legitimately begins there.
	AllowFresh bool
}

// WALRecord is one logged drain: the batch of updates handed to the engine,
// plus the vertex count the coalescer requires the graph to grow to (folded
// -away additions still grow the graph).
type WALRecord struct {
	Seq          uint64
	NeedVertices int
	Updates      []graph.Update
}

// walSegment is one on-disk segment of the log.
type walSegment struct {
	start uint64 // sequence number of its first record
	path  string
	bytes int64
}

// WAL is an append-only segmented log of accepted update batches. All
// methods are safe for concurrent use; appends are serialised by an internal
// mutex (in the server there is a single appender, the pipeline goroutine).
type WAL struct {
	cfg WALConfig

	mu       sync.Mutex
	segs     []walSegment // ascending by start; the last one is active
	f        *os.File     // active segment, positioned at its end
	seq      uint64       // sequence number of the next record
	synced   uint64       // sequence up to which records are fsynced (== seq after every sync)
	dirty    bool         // bytes written since the last fsync
	lastSync time.Time
	err      error         // sticky: after a failed write or fsync the log is dead
	notify   chan struct{} // closed (and replaced) on every append: the live-edge wakeup

	// readPos caches, per live segment (keyed by start sequence), the
	// furthest record boundary any ReadRecords call has decoded, so a
	// sequentially tailing follower resumes each poll exactly where the
	// previous one stopped instead of re-decoding the segment prefix
	// (without it, catching up through one segment is O(bytes²)).
	readPos map[uint64]walReadPos

	stopSync chan struct{} // closes the FsyncInterval loop
	doneSync chan struct{}

	// appendObs and fsyncObs, when non-nil, receive the wall-clock latency in
	// seconds of every Append call and every actual fsync (set once by
	// SetObservers before the log is shared across goroutines).
	appendObs, fsyncObs latencyObserver
}

// latencyObserver receives one latency observation in seconds (satisfied by
// *obs.Histogram). An interface here keeps the WAL free of a direct metrics
// dependency.
type latencyObserver interface{ Observe(float64) }

// SetObservers installs latency observers for Append calls and fsyncs. Call
// it right after OpenWAL, before the log is used from multiple goroutines.
func (w *WAL) SetObservers(append, fsync latencyObserver) {
	w.mu.Lock()
	w.appendObs = append
	w.fsyncObs = fsync
	w.mu.Unlock()
}

// walReadPos is a resumable position inside a segment: the byte offset of a
// record boundary and the sequence of the record starting there.
type walReadPos struct {
	seq uint64
	off int64
}

// OpenWAL opens (or creates) the write-ahead log in cfg.Dir and prepares it
// for appending: every segment is validated, a torn record at the tail of
// the final segment is truncated away, and the next append continues the
// sequence. base is the sequence number the log must start at when the
// directory is empty (the WAL offset of the snapshot being restored, or 0);
// a non-empty log must already extend to base or beyond.
func OpenWAL(cfg WALConfig, base uint64) (*WAL, error) {
	if cfg.Dir == "" {
		return nil, errors.New("server: write-ahead log needs a directory")
	}
	if cfg.SegmentBytes < 1 {
		cfg.SegmentBytes = defaultSegmentBytes
	}
	if cfg.Mode == FsyncInterval && cfg.Interval < 1 {
		cfg.Interval = 100 * time.Millisecond
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating WAL directory: %w", err)
	}
	w := &WAL{cfg: cfg, lastSync: time.Now(), notify: make(chan struct{}), readPos: make(map[uint64]walReadPos)}
	segs, err := listSegments(cfg.Dir)
	if err != nil {
		return nil, err
	}
	// A crash between segment creation and a durable header leaves a final
	// segment too short to hold its own header. It cannot contain any
	// record, so — like a torn record — it is discarded whole; the segment
	// before it (which rotation leaves on disk) carries the log's tail.
	if n := len(segs); n > 0 {
		if last := segs[n-1]; last.bytes < int64(len(walMagic)+uvarintLen(last.start)) {
			if err := os.Remove(last.path); err != nil {
				return nil, fmt.Errorf("server: removing torn WAL segment: %w", err)
			}
			if err := syncDir(cfg.Dir); err != nil {
				return nil, err
			}
			segs = segs[:n-1]
		}
	}
	if len(segs) == 0 {
		if base > 0 && !cfg.AllowFresh {
			// A snapshot covering sequence base implies the log once held
			// records 0..base-1 and its active segment is never deleted by
			// truncation: an empty directory means the log was wiped, and
			// any acknowledged record after the snapshot is gone with it.
			return nil, fmt.Errorf("%w: directory %s is empty but the snapshot covers sequence %d (log deleted?)",
				ErrBadWAL, cfg.Dir, base)
		}
		w.seq = base
		if err := w.openSegmentLocked(); err != nil {
			return nil, err
		}
	} else {
		if err := w.recoverSegments(segs); err != nil {
			return nil, err
		}
		if base > w.seq {
			w.f.Close()
			return nil, fmt.Errorf("%w: log in %s ends at sequence %d but the snapshot covers %d (stale or partially deleted log)",
				ErrBadWAL, cfg.Dir, w.seq, base)
		}
	}
	// Records read back from disk survived whatever ended the last process:
	// that is the strongest durability statement available, so the durable
	// horizon starts at the recovered end.
	w.synced = w.seq
	if cfg.Mode == FsyncInterval {
		w.stopSync = make(chan struct{})
		w.doneSync = make(chan struct{})
		go w.syncLoop()
	}
	return w, nil
}

// listSegments returns the segment files of dir in ascending start order.
func listSegments(dir string) ([]walSegment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("server: reading WAL directory: %w", err)
	}
	var segs []walSegment
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasPrefix(name, walSegPrefix) || !strings.HasSuffix(name, walSegSuffix) {
			continue
		}
		start, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, walSegPrefix), walSegSuffix), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: segment name %q", ErrBadWAL, name)
		}
		info, err := ent.Info()
		if err != nil {
			return nil, fmt.Errorf("server: reading WAL directory: %w", err)
		}
		segs = append(segs, walSegment{start: start, path: filepath.Join(dir, name), bytes: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	for i := 1; i < len(segs); i++ {
		if segs[i].start == segs[i-1].start {
			return nil, fmt.Errorf("%w: duplicate segment start %d", ErrBadWAL, segs[i].start)
		}
	}
	return segs, nil
}

// recoverSegments validates the record chain across segs, truncates a torn
// tail in the final segment and opens it for appending.
func (w *WAL) recoverSegments(segs []walSegment) error {
	seq := segs[0].start
	for i := range segs {
		last := i == len(segs)-1
		end, next, err := scanSegment(&segs[i], seq, last, nil)
		if err != nil {
			return err
		}
		if !last && next != segs[i+1].start {
			return fmt.Errorf("%w: segment %s ends at sequence %d but the next segment starts at %d",
				ErrBadWAL, segs[i].path, next, segs[i+1].start)
		}
		if last && end < segs[i].bytes {
			// Torn tail from a crash mid-append: the record was never
			// acknowledged, drop it.
			if err := os.Truncate(segs[i].path, end); err != nil {
				return fmt.Errorf("server: truncating torn WAL tail: %w", err)
			}
			segs[i].bytes = end
		}
		seq = next
	}
	f, err := os.OpenFile(segs[len(segs)-1].path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: opening WAL segment: %w", err)
	}
	w.segs = segs
	w.f = f
	w.seq = seq
	return nil
}

// scanSegment reads one segment, verifying its header (the start sequence
// must match both the filename and the running sequence) and every record
// frame, calling fn (when non-nil) with each decoded record. It returns the
// byte offset after the last intact record and the sequence after it. In the
// final segment (tail true) a torn trailing record ends the scan cleanly;
// elsewhere it is an error.
func scanSegment(seg *walSegment, seq uint64, tail bool, fn func(WALRecord) error) (end int64, next uint64, err error) {
	f, err := os.Open(seg.path)
	if err != nil {
		return 0, 0, fmt.Errorf("server: opening WAL segment: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: %s: reading magic: %v", ErrBadWAL, seg.path, err)
	}
	if magic != walMagic {
		return 0, 0, fmt.Errorf("%w: %s: magic %q", ErrBadWAL, seg.path, magic[:])
	}
	headerLen := int64(len(magic))
	start, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: %s: reading start sequence: %v", ErrBadWAL, seg.path, err)
	}
	headerLen += int64(uvarintLen(start))
	if start != seg.start {
		return 0, 0, fmt.Errorf("%w: %s: header start %d does not match filename", ErrBadWAL, seg.path, start)
	}
	if start != seq {
		return 0, 0, fmt.Errorf("%w: %s: starts at sequence %d, expected %d", ErrBadWAL, seg.path, start, seq)
	}
	end = headerLen
	// torn resolves a failed record at the tail of the final segment: a torn
	// append is by definition the last thing that hit the file, so if any
	// intact record can still be parsed after the failure point the damage
	// is corruption of acknowledged history — refuse to open rather than
	// silently dropping the records that follow.
	torn := func(what string) (int64, uint64, error) {
		if err := intactRecordAfter(f, seg, end); err != nil {
			return 0, 0, fmt.Errorf("%w: %s: %s at offset %d: %v", ErrBadWAL, seg.path, what, end, err)
		}
		return end, seq, nil
	}
	for {
		var frame [8]byte
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			if err == io.EOF {
				return end, seq, nil // clean end at a record boundary
			}
			if tail {
				return end, seq, nil // file ends inside the frame header: torn
			}
			return 0, 0, fmt.Errorf("%w: %s: torn record frame in a non-final segment", ErrBadWAL, seg.path)
		}
		length := binary.LittleEndian.Uint32(frame[:4])
		sum := binary.LittleEndian.Uint32(frame[4:])
		if length > maxWALRecordBytes {
			if tail {
				return torn("implausible record length")
			}
			return 0, 0, fmt.Errorf("%w: %s: implausible record length %d", ErrBadWAL, seg.path, length)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(br, payload); err != nil {
			if tail {
				return torn("short record")
			}
			return 0, 0, fmt.Errorf("%w: %s: torn record in a non-final segment", ErrBadWAL, seg.path)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			if tail {
				return torn("record checksum mismatch")
			}
			return 0, 0, fmt.Errorf("%w: %s: record checksum mismatch", ErrBadWAL, seg.path)
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			// The checksum verified, so this is not a torn write but a
			// corrupted or incompatible log: refuse it even at the tail.
			return 0, 0, fmt.Errorf("%w: %s: %v", ErrBadWAL, seg.path, err)
		}
		if rec.Seq != seq {
			return 0, 0, fmt.Errorf("%w: %s: record sequence %d, expected %d", ErrBadWAL, seg.path, rec.Seq, seq)
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return 0, 0, err
			}
		}
		seq++
		end += int64(len(frame)) + int64(length)
	}
}

// intactRecordAfter probes every byte offset after a failed record (starting
// at off, the failed frame's start) for a frame whose checksum verifies and
// whose payload decodes as a record. Finding one proves the failure was not
// a torn append — something after it survived — so the caller must treat it
// as corruption instead of truncating. A CRC-32 match over a structured
// payload makes false positives vanishingly unlikely.
func intactRecordAfter(f *os.File, seg *walSegment, off int64) error {
	if seg.bytes <= off {
		return nil
	}
	rest := make([]byte, seg.bytes-off)
	if _, err := f.ReadAt(rest, off); err != nil && err != io.EOF {
		return nil // unreadable remainder: nothing provably intact follows
	}
	for i := 1; i+8 <= len(rest); i++ {
		length := binary.LittleEndian.Uint32(rest[i : i+4])
		if length > maxWALRecordBytes || i+8+int(length) > len(rest) {
			continue
		}
		payload := rest[i+8 : i+8+int(length)]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[i+4:i+8]) {
			continue
		}
		if _, err := decodeWALRecord(payload); err == nil {
			return errors.New("intact records follow the damaged one")
		}
	}
	return nil
}

// decodeWALRecord decodes one record payload (already checksum-verified).
func decodeWALRecord(payload []byte) (WALRecord, error) {
	var rec WALRecord
	var n int
	if rec.Seq, n = binary.Uvarint(payload); n <= 0 {
		return rec, errors.New("truncated record sequence")
	}
	payload = payload[n:]
	need, n := binary.Uvarint(payload)
	if n <= 0 {
		return rec, errors.New("truncated vertex requirement")
	}
	payload = payload[n:]
	const maxInt = uint64(int(^uint(0) >> 1))
	if need > maxInt {
		return rec, errors.New("implausible vertex requirement")
	}
	rec.NeedVertices = int(need)
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return rec, errors.New("truncated update count")
	}
	payload = payload[n:]
	for i := uint64(0); i < count; i++ {
		upd, n, err := graph.DecodeUpdate(payload)
		if err != nil {
			return rec, err
		}
		rec.Updates = append(rec.Updates, upd)
		payload = payload[n:]
	}
	if len(payload) != 0 {
		return rec, fmt.Errorf("%d trailing bytes after the last update", len(payload))
	}
	return rec, nil
}

// uvarintLen returns the encoded size of x.
func uvarintLen(x uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], x)
}

// openSegmentLocked creates and syncs a fresh active segment starting at the
// current sequence. The caller holds w.mu (or has exclusive access).
func (w *WAL) openSegmentLocked() error {
	path := filepath.Join(w.cfg.Dir, fmt.Sprintf("%s%020d%s", walSegPrefix, w.seq, walSegSuffix))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: creating WAL segment: %w", err)
	}
	header := append([]byte{}, walMagic[:]...)
	header = binary.AppendUvarint(header, w.seq)
	if _, err := f.Write(header); err != nil {
		f.Close()
		return fmt.Errorf("server: writing WAL segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("server: syncing WAL segment: %w", err)
	}
	// The new name must itself survive a crash before any record does.
	if err := syncDir(w.cfg.Dir); err != nil {
		f.Close()
		return err
	}
	w.segs = append(w.segs, walSegment{start: w.seq, path: path, bytes: int64(len(header))})
	w.f = f
	return nil
}

// Append logs one accepted drain — the coalesced updates about to be handed
// to the engine plus the vertex count the graph must reach — and, under the
// per-batch fsync policy, flushes it to stable storage. The record's
// sequence number is returned. After any write or sync failure the log is
// poisoned: every later Append fails with the same error, so the server
// stops accepting updates it could not make durable.
func (w *WAL) Append(needVertices int, upds []graph.Update) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.appendObs != nil {
		start := time.Now()
		defer func() { w.appendObs.Observe(time.Since(start).Seconds()) }()
	}
	if w.err != nil {
		return 0, w.err
	}
	if w.f == nil {
		return 0, ErrWALClosed
	}
	active := &w.segs[len(w.segs)-1]
	if active.bytes >= w.cfg.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			w.err = err
			return 0, err
		}
		active = &w.segs[len(w.segs)-1]
	}
	seq := w.seq
	frame := EncodeWALRecord(nil, WALRecord{Seq: seq, NeedVertices: needVertices, Updates: upds})
	if _, err := w.f.Write(frame); err != nil {
		// The segment may now hold a torn record; it would be truncated on
		// the next open, but this process must not append after it.
		w.err = fmt.Errorf("server: appending WAL record: %w", err)
		return 0, w.err
	}
	active.bytes += int64(len(frame))
	w.seq++
	w.dirty = true
	switch w.cfg.Mode {
	case FsyncPerBatch:
		// syncLocked advances the durable horizon and wakes the live-edge
		// waiters (replication long-polls).
		if err := w.syncLocked(); err != nil {
			return 0, err
		}
	case FsyncOff:
		// No durability is promised at all, so replication ships records as
		// written: wake the waiters now.
		w.notifyLocked()
	case FsyncInterval:
		// Waiters are woken by the interval flusher: a record must not
		// reach a follower before it is durable on the leader, or a leader
		// crash-restart could leave the follower ahead of the recovered
		// log (permanent divergence). The extra replication latency is
		// bounded by one fsync interval.
	}
	return seq, nil
}

// notifyLocked wakes every live-edge waiter. The caller holds w.mu.
func (w *WAL) notifyLocked() {
	close(w.notify)
	w.notify = make(chan struct{})
}

// EncodeWALRecord appends rec to buf in the log's record wire format — the
// uint32 length/CRC frame followed by the payload — and returns the extended
// buffer. It is the exact on-disk framing, and doubles as the replication
// wire format: the leader streams framed records to followers, which decode
// them with ReadWALRecord.
func EncodeWALRecord(buf []byte, rec WALRecord) []byte {
	payload := binary.AppendUvarint(nil, rec.Seq)
	payload = binary.AppendUvarint(payload, uint64(rec.NeedVertices))
	payload = binary.AppendUvarint(payload, uint64(len(rec.Updates)))
	for _, u := range rec.Updates {
		payload = graph.AppendUpdate(payload, u)
	}
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, frame[:]...)
	return append(buf, payload...)
}

// ReadWALRecord decodes one framed record from r (the inverse of
// EncodeWALRecord). It returns io.EOF when r is cleanly exhausted at a frame
// boundary, and wraps ErrBadWAL for a short or corrupted frame.
func ReadWALRecord(r io.Reader) (WALRecord, error) {
	rec, _, err := readWALRecordN(r)
	return rec, err
}

// readWALRecordN is ReadWALRecord plus the number of bytes consumed (frame
// and payload) — the segment scanner uses it to track record boundaries.
func readWALRecordN(r io.Reader) (WALRecord, int64, error) {
	var frame [8]byte
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		if err == io.EOF {
			return WALRecord{}, 0, io.EOF
		}
		return WALRecord{}, 0, fmt.Errorf("%w: torn record frame: %v", ErrBadWAL, err)
	}
	length := binary.LittleEndian.Uint32(frame[:4])
	if length > maxWALRecordBytes {
		return WALRecord{}, 0, fmt.Errorf("%w: implausible record length %d", ErrBadWAL, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return WALRecord{}, 0, fmt.Errorf("%w: torn record payload: %v", ErrBadWAL, err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(frame[4:]) {
		return WALRecord{}, 0, fmt.Errorf("%w: record checksum mismatch", ErrBadWAL)
	}
	rec, err := decodeWALRecord(payload)
	if err != nil {
		return WALRecord{}, 0, fmt.Errorf("%w: %v", ErrBadWAL, err)
	}
	return rec, int64(len(frame)) + int64(length), nil
}

// rotateLocked closes the active segment (flushing it) and starts a new one.
func (w *WAL) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("server: closing WAL segment: %w", err)
	}
	return w.openSegmentLocked()
}

// Sync flushes appended records to stable storage.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.f == nil {
		return ErrWALClosed
	}
	return w.syncLocked()
}

// poison marks the log dead: every later Append and Sync fails with err.
// The server uses it when the engine fails after a record was durably
// appended — the engine state can no longer be trusted, so accepting more
// writes would only let the live state and the logged history drift apart.
func (w *WAL) poison(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
}

// Err returns the sticky error that poisoned the log (a failed write or
// fsync, or an engine failure after an append), or nil while the log is
// healthy.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *WAL) syncLocked() error {
	if w.dirty {
		start := time.Now()
		err := w.f.Sync()
		if w.fsyncObs != nil {
			w.fsyncObs.Observe(time.Since(start).Seconds())
		}
		if err != nil {
			// An fsync failure means the kernel may have dropped the dirty
			// pages: the log's durable state is unknowable, poison it.
			w.err = fmt.Errorf("server: syncing WAL: %w", err)
			return w.err
		}
		w.dirty = false
	}
	if w.synced != w.seq {
		// The durable horizon advanced: replication long-polls parked at
		// the previous horizon may now ship the new records.
		w.synced = w.seq
		w.notifyLocked()
	}
	w.lastSync = time.Now()
	return nil
}

// syncLoop is the FsyncInterval background flusher.
func (w *WAL) syncLoop() {
	defer close(w.doneSync)
	ticker := time.NewTicker(w.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			w.Sync() //nolint:errcheck // sticky w.err surfaces on the next Append
		case <-w.stopSync:
			return
		}
	}
}

// TruncateThrough deletes every segment all of whose records are covered
// (sequence < covered, typically the WAL offset of a just-written snapshot).
// The active segment is never deleted. Each segment is dropped from the
// in-memory list as it is removed (and an already-missing file counts as
// removed), so a transient deletion failure is retried — not compounded —
// by the next call.
func (w *WAL) TruncateThrough(covered uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	removed := false
	for len(w.segs) > 1 && w.segs[1].start <= covered {
		if err := os.Remove(w.segs[0].path); err != nil && !os.IsNotExist(err) {
			if removed {
				syncDir(w.cfg.Dir) //nolint:errcheck // best effort before reporting the removal failure
			}
			return fmt.Errorf("server: deleting covered WAL segment: %w", err)
		}
		delete(w.readPos, w.segs[0].start)
		w.segs = w.segs[1:]
		removed = true
	}
	if !removed {
		return nil
	}
	return syncDir(w.cfg.Dir)
}

// ErrWALTruncated is wrapped by reads of a sequence range whose segments a
// snapshot has already deleted. It wraps ErrBadWAL for recovery-time callers;
// the replication handler maps it to 410 Gone, telling the follower to
// re-bootstrap from a snapshot instead of tailing.
var ErrWALTruncated = fmt.Errorf("%w: records already truncated by a snapshot", ErrBadWAL)

// errStopRead ends a bounded segment scan early once enough records are out.
var errStopRead = errors.New("stop read")

// AppendNotify returns a channel closed the next time the replication
// horizon advances (an append under FsyncPerBatch/FsyncOff, a completed
// flush under FsyncInterval). Live-edge readers (the replication long-poll)
// grab the channel, re-check SyncedSeq(), and block on the channel if still
// caught up.
func (w *WAL) AppendNotify() <-chan struct{} {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.notify
}

// SyncedSeq returns the replication horizon: the sequence after the last
// record that is safe to ship to a follower. Under FsyncPerBatch and
// FsyncInterval that is the durable (fsynced) end — a record a follower has
// applied must survive any leader crash, or a crash-restart would leave the
// follower permanently ahead of the recovered log. Under FsyncOff no
// durability is promised at all, so the horizon is simply the log end.
func (w *WAL) SyncedSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.cfg.Mode == FsyncOff {
		return w.seq
	}
	return w.synced
}

// OldestSeq returns the sequence number of the oldest record still retained
// (the start of the first live segment; equal to Seq when the log is empty).
func (w *WAL) OldestSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.segs) == 0 {
		return w.seq
	}
	return w.segs[0].start
}

// ReadRecords returns up to max records with sequence >= from and below the
// replication horizon (SyncedSeq — a follower must never receive a record
// the leader could still lose), plus that horizon at capture time. Unlike
// ReplayFrom it is safe while appends are in flight: it captures each
// segment's byte length under the lock and never reads past it — Append
// writes whole frames under the same lock, so the captured bound always
// falls on a record boundary. This is the leader-side read path of
// replication.
func (w *WAL) ReadRecords(from uint64, max int) ([]WALRecord, uint64, error) {
	if max < 1 {
		max = 1024
	}
	w.mu.Lock()
	werr := w.err
	segs := append([]walSegment(nil), w.segs...)
	seq := w.seq
	end := w.synced
	if w.cfg.Mode == FsyncOff {
		end = seq
	}
	w.mu.Unlock()
	if werr != nil {
		return nil, end, werr
	}
	if from > seq {
		return nil, end, fmt.Errorf("%w: read from sequence %d but the log ends at %d", ErrBadWAL, from, seq)
	}
	if from >= end {
		// At (or transiently past) the durable edge: nothing shippable yet.
		return nil, end, nil
	}
	if len(segs) == 0 || from < segs[0].start {
		return nil, end, fmt.Errorf("%w: sequence %d (log begins at %d)", ErrWALTruncated, from, w.OldestSeq())
	}
	var out []WALRecord
	for i := range segs {
		if i < len(segs)-1 && segs[i+1].start <= from {
			continue // every record of this segment is below from
		}
		w.mu.Lock()
		hint := w.readPos[segs[i].start]
		w.mu.Unlock()
		pos, err := scanSegmentBounded(segs[i], hint, from, func(rec WALRecord) error {
			if rec.Seq < from {
				return nil
			}
			if rec.Seq >= end {
				return errStopRead // not yet durable: past the horizon
			}
			out = append(out, rec)
			if len(out) >= max {
				return errStopRead
			}
			return nil
		})
		stopped := errors.Is(err, errStopRead)
		if err == nil || stopped {
			// Remember the furthest boundary decoded so the next poll of a
			// sequential tailer resumes there instead of re-reading the
			// segment prefix. Never move the cache backwards (a concurrent
			// reader may have got further) and never cache for a segment
			// truncation has dropped meanwhile.
			w.mu.Lock()
			if cur, ok := w.readPos[segs[i].start]; (ok || w.liveSegmentLocked(segs[i].start)) && pos.off > cur.off {
				w.readPos[segs[i].start] = pos
			}
			w.mu.Unlock()
		}
		if stopped {
			break
		}
		if err != nil {
			if os.IsNotExist(err) {
				// A concurrent snapshot deleted the segment under us: the
				// range is gone, not corrupt.
				return nil, end, fmt.Errorf("%w: sequence %d", ErrWALTruncated, from)
			}
			return nil, end, err
		}
	}
	return out, end, nil
}

// liveSegmentLocked reports whether a segment with the given start is still
// part of the log. The caller holds w.mu.
func (w *WAL) liveSegmentLocked(start uint64) bool {
	for _, seg := range w.segs {
		if seg.start == start {
			return true
		}
	}
	return false
}

// scanSegmentBounded reads the records of one segment up to the byte length
// captured in seg (never chasing a concurrently growing file), calling fn
// with each, and returns the record boundary it stopped at. A valid hint —
// a previously returned boundary at or below the wanted sequence and inside
// the captured bound — lets the scan seek straight to it instead of
// decoding the segment from its header. Every frame inside the bound must
// be intact: the bound was taken under the append lock, so a short or
// corrupt record here is real corruption, not a torn tail.
func scanSegmentBounded(seg walSegment, hint walReadPos, want uint64, fn func(WALRecord) error) (walReadPos, error) {
	f, err := os.Open(seg.path)
	if err != nil {
		if os.IsNotExist(err) {
			return hint, err
		}
		return hint, fmt.Errorf("server: opening WAL segment: %w", err)
	}
	defer f.Close()
	var (
		seq uint64
		off int64
	)
	if hint.off > 0 && hint.seq >= seg.start && hint.seq <= want && hint.off <= seg.bytes {
		if _, err := f.Seek(hint.off, io.SeekStart); err != nil {
			return hint, fmt.Errorf("server: seeking WAL segment: %w", err)
		}
		seq, off = hint.seq, hint.off
	} else {
		br := bufio.NewReader(io.LimitReader(f, seg.bytes))
		var magic [8]byte
		if _, err := io.ReadFull(br, magic[:]); err != nil || magic != walMagic {
			return hint, fmt.Errorf("%w: %s: bad segment header", ErrBadWAL, seg.path)
		}
		start, err := binary.ReadUvarint(br)
		if err != nil || start != seg.start {
			return hint, fmt.Errorf("%w: %s: bad segment start", ErrBadWAL, seg.path)
		}
		seq = start
		off = int64(len(magic) + uvarintLen(start))
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			return hint, fmt.Errorf("server: seeking WAL segment: %w", err)
		}
	}
	br := bufio.NewReader(io.LimitReader(f, seg.bytes-off))
	for {
		rec, n, err := readWALRecordN(br)
		if err == io.EOF {
			return walReadPos{seq: seq, off: off}, nil
		}
		if err != nil {
			return walReadPos{seq: seq, off: off}, fmt.Errorf("%w: %s: %v", ErrBadWAL, seg.path, err)
		}
		if rec.Seq != seq {
			return walReadPos{seq: seq, off: off}, fmt.Errorf("%w: %s: record sequence %d, expected %d", ErrBadWAL, seg.path, rec.Seq, seq)
		}
		seq++
		off += n
		if err := fn(rec); err != nil {
			return walReadPos{seq: seq, off: off}, err
		}
	}
}

// ReplayFrom re-reads the log and calls fn with every record whose sequence
// is >= from, in order. It must be called after OpenWAL and before the first
// Append (recovery time): it reads the segment files directly.
func (w *WAL) ReplayFrom(from uint64, fn func(WALRecord) error) error {
	w.mu.Lock()
	segs := append([]walSegment(nil), w.segs...)
	seq := w.seq
	w.mu.Unlock()
	if from > seq {
		return fmt.Errorf("%w: replay from sequence %d but the log ends at %d", ErrBadWAL, from, seq)
	}
	if from < segs[0].start {
		return fmt.Errorf("%w: replay from sequence %d but the log begins at %d (covered segments already deleted)",
			ErrWALTruncated, from, segs[0].start)
	}
	for i := range segs {
		if i < len(segs)-1 && segs[i+1].start <= from {
			continue // every record of this segment is covered
		}
		_, _, err := scanSegment(&segs[i], segs[i].start, i == len(segs)-1, func(rec WALRecord) error {
			if rec.Seq < from {
				return nil
			}
			return fn(rec)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// ErrWALClosed is returned by operations on a closed log.
var ErrWALClosed = errors.New("server: write-ahead log closed")

// ReplayWAL replays the log tail not covered by eng's state — every record
// from the engine's WAL offset (the one its snapshot recorded, or 0 for a
// fresh engine) to the end of the log — through the engine's batch path,
// reproducing exactly what the ingest pipeline did when the records were
// first accepted: grow the graph to the drain's vertex requirement, then
// apply the logged updates in chunks of at most maxBatch, skipping the ones
// the engine rejects as invalid. It returns the number of updates replayed.
// Call it after OpenWAL and before handing the WAL to a server.
func ReplayWAL(w *WAL, eng *engine.Engine, maxBatch int) (int, error) {
	if maxBatch < 1 {
		maxBatch = 256
	}
	replayed := 0
	err := w.ReplayFrom(eng.WALOffset(), func(rec WALRecord) error {
		if err := eng.ReplayRecord(rec.Seq, rec.NeedVertices, rec.Updates, maxBatch); err != nil {
			return err
		}
		replayed += len(rec.Updates)
		return nil
	})
	if err != nil {
		return replayed, err
	}
	eng.SetWALOffset(w.Seq())
	return replayed, nil
}

// Seq returns the sequence number the next appended record will get (equal
// to the number of records ever appended plus the base the log started at).
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Segments returns the number of live segment files.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segs)
}

// Bytes returns the total size of the live segment files.
func (w *WAL) Bytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var total int64
	for _, seg := range w.segs {
		total += seg.bytes
	}
	return total
}

// LastSyncAge returns the time since the log was last flushed to stable
// storage (since open when nothing has been flushed yet).
func (w *WAL) LastSyncAge() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	return time.Since(w.lastSync)
}

// Dir returns the log directory.
func (w *WAL) Dir() string { return w.cfg.Dir }

// Close flushes and closes the log. Further appends fail with ErrWALClosed.
func (w *WAL) Close() error {
	if w.stopSync != nil {
		close(w.stopSync)
		<-w.doneSync
		w.stopSync = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	syncErr := error(nil)
	if w.err == nil {
		syncErr = w.syncLocked()
	}
	closeErr := w.f.Close()
	w.f = nil
	if syncErr != nil {
		return syncErr
	}
	if closeErr != nil {
		return fmt.Errorf("server: closing WAL: %w", closeErr)
	}
	return nil
}
