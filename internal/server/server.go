// Package server is the online serving layer of the streaming betweenness
// framework: it wraps an engine behind an HTTP/JSON API with an asynchronous,
// coalescing ingest pipeline, lock-free snapshot-on-read queries and periodic
// snapshot/restore durability — the long-lived daemon shape the paper's
// framework is designed for (command bcserved is a thin wrapper around it).
//
// Concurrency model: a single background goroutine (the pipeline) is the only
// writer; it takes the server's write lock for the duration of one drained,
// coalesced batch of updates. Queries never touch the engine — after every
// batch the pipeline publishes an immutable view (a deep copy of the scores
// plus graph summary) through an atomic pointer, so reads are wait-free and
// never block behind a long update. Snapshots take the read lock, which only
// excludes the writer, not queries.
package server

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"streambc/internal/bc"
	"streambc/internal/engine"
	"streambc/internal/graph"
	"streambc/internal/incremental"
	"streambc/internal/obs"
)

// ErrIngestHalted is wrapped by Enqueue failures after the write-ahead log
// has been poisoned: the server can no longer make writes durable (or the
// engine failed after a durable append) and a restart is required.
var ErrIngestHalted = errors.New("server: ingest halted")

// Config configures a Server.
type Config struct {
	// SnapshotDir, when non-empty, enables durability: Snapshot writes
	// there, Close writes a final snapshot, and SnapshotInterval > 0 adds
	// periodic ones.
	SnapshotDir string
	// WAL, when non-nil, makes ingest durable: the pipeline appends every
	// accepted drain to it before handing the updates to the engine, and a
	// successful snapshot deletes the log segments it makes redundant. Open
	// it with OpenWAL and replay its tail with ReplayWAL before creating the
	// server; the server takes ownership and closes it on Close.
	WAL *WAL
	// SnapshotInterval is the period of automatic snapshots (0 disables).
	SnapshotInterval time.Duration
	// MaxQueue bounds the ingest queue; Enqueue fails with ErrQueueFull
	// beyond it. Values < 1 mean the default of 65536.
	MaxQueue int
	// MaxBatch bounds how many coalesced updates one engine ApplyBatch call
	// may carry: a large drained backlog is fed to the engine in chunks of
	// at most MaxBatch, keeping the per-batch memory of the engine's
	// write-back source cache (and the reduce granularity) bounded. Values
	// < 1 mean the default of 256.
	MaxBatch int
	// Obs is the metrics registry the server registers its families with and
	// renders /metrics from. Pass the process-wide registry to combine the
	// server's metrics with engine or replication instrumentation on one
	// endpoint; nil creates a private registry.
	Obs *obs.Registry
	// Logger receives the server's structured logs (slow requests, trace
	// debug lines). nil discards them.
	Logger *slog.Logger
	// SlowRequest is the request latency at or above which an HTTP request is
	// logged at warn level (0 disables the slow-request log).
	SlowRequest time.Duration
	// TraceCapacity is the size of the ingest trace ring buffer served by
	// GET /v1/debug/trace. Values < 1 mean the default of 256.
	TraceCapacity int
	// Replica puts the server in read-only follower mode: Enqueue fails with
	// ErrReadOnlyReplica, the write endpoints answer 307 to LeaderURL, and
	// state advances only through ApplyReplicated (the replication tailer).
	// Promote flips a replica back to a writable primary.
	Replica bool
	// LeaderURL is the base URL write requests are redirected to in replica
	// mode (empty: writes answer 503 instead of a redirect).
	LeaderURL string
	// ReadyMaxLag is the replication lag, in records, up to which a replica
	// still reports ready on /readyz. Zero is meaningful — ready only when
	// fully caught up — so there is no default coercion here (the bcserved
	// flag supplies the operational default of 1024).
	ReadyMaxLag uint64
	// ShardLast seeds the cached reply to the shard's last applied record,
	// rebuilt by RecoverShardState during crash recovery, so a router retry
	// of that record is answered from cache instead of a sequence gap.
	ShardLast *ShardLastResponse
}

// Server serves an engine over HTTP. Create one with New, start the
// background pipeline with Start, and shut down with Close.
type Server struct {
	cfg      Config
	directed bool

	mu     sync.RWMutex // write: pipeline applying a batch; read: snapshotting
	eng    *engine.Engine
	pipe   *pipeline
	wal    atomic.Pointer[WAL] // nil when ingest durability is off; set by AttachWAL at promotion
	met    *metrics
	log    *slog.Logger
	traces *obs.TraceRing
	spans  *obs.SpanRing
	view   atomic.Pointer[view]

	// seqTraces maps recent WAL sequences to the trace they were appended
	// under, so the replication endpoint can ship each record's trace context
	// to followers (see tracing.go).
	seqTraces seqTraceMap

	// replica marks follower mode (cleared by Promote); replStats is the
	// lag-stats provider installed by the replication tailer.
	replica   atomic.Bool
	replStats atomic.Pointer[func() ReplicationStats]

	// shardLast caches the reply to the last shard record applied (idempotent
	// router retries; persisted with snapshots — see shard.go).
	shardLast atomic.Pointer[ShardLastResponse]

	// closing is set at the very start of Close, before the pipeline drains:
	// write entry points that bypass the pipeline (ApplyShardRecord,
	// ApplyReplicated) check it under the write lock, so a write racing
	// shutdown gets a clean ErrClosed instead of landing on an engine whose
	// pool Close is about to tear down.
	closing atomic.Bool

	started   bool
	snapStop  chan struct{}
	snapDone  chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// view is the immutable state queries read: a deep copy of the scores plus a
// summary of the graph and engine counters, all captured atomically at the
// end of a pipeline batch.
type view struct {
	res      *bc.Result
	n, m     int
	directed bool
	stats    engine.Stats

	// sampleSize is the number of sources maintained (k in sampled mode, n
	// in exact mode); sampled and scale describe the approximate mode.
	sampleSize int
	sampled    bool
	scale      float64
}

// New wraps eng in a server. The server takes ownership of applying updates:
// all writes must go through Enqueue (or the HTTP ingest endpoints).
func New(eng *engine.Engine, cfg Config) *Server {
	if cfg.MaxQueue < 1 {
		cfg.MaxQueue = 65536
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 256
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Nop()
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:      cfg,
		directed: eng.Graph().Directed(),
		eng:      eng,
		log:      cfg.Logger,
		traces:   obs.NewTraceRing(cfg.TraceCapacity),
		spans:    obs.NewSpanRing(0),
		snapStop: make(chan struct{}),
		snapDone: make(chan struct{}),
	}
	if cfg.WAL != nil {
		s.wal.Store(cfg.WAL)
	}
	if cfg.ShardLast != nil {
		s.shardLast.Store(cfg.ShardLast)
	}
	s.replica.Store(cfg.Replica)
	s.met = newMetrics(s, reg)
	if cfg.WAL != nil {
		cfg.WAL.SetObservers(s.met.walAppendLat, s.met.walFsyncLat)
	}
	s.pipe = newPipeline(s.directed, cfg.MaxQueue, s.applyItems, func(n int) {
		s.met.coalesced.Add(int64(n))
	})
	s.publishView()
	return s
}

// Start launches the background pipeline and, when configured, the periodic
// snapshot loop. Start and Close must be called from the same goroutine (or
// be otherwise ordered).
func (s *Server) Start() {
	s.started = true
	go s.pipe.run()
	if s.cfg.SnapshotDir != "" && s.cfg.SnapshotInterval > 0 {
		go s.snapshotLoop()
	} else {
		close(s.snapDone)
	}
}

// Close drains and stops the pipeline and, when a snapshot directory is
// configured, writes a final snapshot. It does not close the engine (the
// caller owns it).
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.closing.Store(true)
		if s.started {
			close(s.snapStop)
			<-s.snapDone
			s.pipe.close()
		} else {
			// Never started: there is no run loop or snapshot loop to wait
			// for, only further enqueues to reject.
			s.pipe.markClosed()
		}
		if s.cfg.SnapshotDir != "" {
			if _, err := s.Snapshot(); err != nil {
				s.closeErr = fmt.Errorf("server: final snapshot: %w", err)
			}
		}
		if wal := s.getWAL(); wal != nil {
			// The pipeline has drained: every accepted update is in the log
			// (and, when a snapshot directory is configured, covered by the
			// final snapshot). Flush and release it.
			if err := wal.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// Enqueue admits updates to the ingest pipeline. The returned Batch reports
// completion; callers that need read-your-writes semantics wait on it.
// Once the write-ahead log is poisoned (a failed log write, or an engine
// failure after a durable append), every Enqueue fails: accepting updates
// that can no longer be made durable — or applied — would silently drop
// them, and fire-and-forget callers would never learn.
func (s *Server) Enqueue(upds []graph.Update) (*Batch, error) {
	if s.Replica() {
		return nil, ErrReadOnlyReplica
	}
	if wal := s.getWAL(); wal != nil {
		if werr := wal.Err(); werr != nil {
			return nil, fmt.Errorf("%w: %w", ErrIngestHalted, werr)
		}
	}
	b, err := s.pipe.enqueue(upds)
	if err != nil {
		return nil, err
	}
	s.met.enqueued.Add(int64(len(upds)))
	return b, nil
}

// applyItems is the pipeline's apply callback: it applies one coalesced
// drain under the write lock — logging it to the write-ahead log first, then
// feeding the surviving updates to the engine as batches of at most MaxBatch
// — and publishes a fresh read view. The returned error (a WAL append, store
// growth or batch flush failure) is reported by the pipeline on every batch
// of the drain, since it can affect updates that were coalesced away.
//
// Along the way it records the drain's ingest trace: stage timestamps from
// the enqueue of its oldest update through WAL durability, engine apply and
// view publication, observed into the streambc_ingest_stage_seconds
// histograms and the /v1/debug/trace ring.
func (s *Server) applyItems(items []item, needVertices int) error {
	// Each drain is the root of one distributed trace: locally-produced spans
	// carry sc, and the WAL sequence→trace map lets replication extend the
	// trace to followers.
	sc := obs.NewSpanContext()
	tr := obs.IngestTrace{TraceID: sc.TraceID}
	for _, it := range items {
		if !it.barrier {
			if tr.Updates == 0 {
				// Items are drained in FIFO order: the first surviving update
				// belongs to the oldest batch still represented in the drain.
				tr.EnqueuedAt = it.batch.enqueuedAt
			}
			tr.Updates++
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	logged := false
	wal := s.getWAL()
	if wal != nil {
		var err error
		var seq uint64
		if seq, logged, err = s.logItems(wal, items, needVertices); err != nil {
			// Nothing of this drain reaches the engine: updates the server
			// cannot make durable must not become externally visible.
			s.recordTrace(tr, sc, err)
			return err
		}
		if logged {
			// Under the per-batch fsync policy the record is durable here;
			// under interval/off policies this timestamp marks the append
			// (durability is deferred by configuration).
			tr.WALDurableAt = time.Now()
			s.seqTraces.note(seq, sc)
		}
	}
	// Grow the graph to cover additions the coalescer folded away, so the
	// served vertex count matches sequential application regardless of how
	// updates were batched.
	firstErr := s.eng.EnsureVertices(needVertices)
	for i := 0; firstErr == nil && i < len(items); {
		if items[i].barrier {
			i++
			continue
		}
		j := i
		for j < len(items) && !items[j].barrier && j-i < s.cfg.MaxBatch {
			j++
		}
		// An infrastructure error stops the whole drain: the engine's state
		// can no longer be trusted, so shipping further chunks would only
		// compound the damage.
		firstErr = s.applyChunk(items[i:j])
		i = j
	}
	tr.AppliedAt = time.Now()
	s.met.batches.Inc()
	if wal != nil {
		if firstErr == nil {
			// The engine state now covers everything logged: a snapshot
			// taken between drains records this sequence and recovery
			// replays only the records after it.
			s.eng.SetWALOffset(wal.Seq())
		} else if logged {
			// The record is durable but the engine failed mid-apply: its
			// state no longer matches any log position, so the covered
			// offset must not advance (a snapshot would otherwise truncate
			// a record the engine never fully absorbed) and no further
			// writes may be accepted. A restart recovers cleanly: the
			// snapshot plus this record replay onto a fresh engine.
			wal.poison(fmt.Errorf("server: engine failed after a WAL append, restart to recover: %w", firstErr))
		}
	}
	s.publishView()
	tr.VisibleAt = time.Now()
	s.recordTrace(tr, sc, firstErr)
	return firstErr
}

// recordTrace stores one drain's ingest trace in the debug ring, feeds its
// stage durations into the stage histograms and synthesizes its span tree.
// Barrier-only drains (no updates) are not traced.
func (s *Server) recordTrace(tr obs.IngestTrace, sc obs.SpanContext, err error) {
	if tr.Updates == 0 {
		return
	}
	if err != nil {
		tr.Error = err.Error()
	}
	stored := s.traces.Add(tr)
	stages := stored.Stages()
	for stage, secs := range stages {
		s.met.stages.With(stage).Observe(secs)
	}
	s.recordPipelineSpans(stored, sc)
	if err != nil {
		s.log.Warn("drain failed",
			obs.KeyComponent, "pipeline", obs.KeyTrace, stored.ID,
			"updates", stored.Updates, "error", err)
		return
	}
	s.log.Debug("drain applied",
		obs.KeyComponent, "pipeline", obs.KeyTrace, stored.ID,
		"updates", stored.Updates, "total_seconds", stages[obs.StageTotal])
}

// logItems appends the drain's surviving updates (and its vertex-growth
// requirement) to the write-ahead log as one record, reporting the appended
// record's sequence and whether a record was written. Drains with nothing to
// make durable — barriers only — are not logged.
func (s *Server) logItems(wal *WAL, items []item, needVertices int) (uint64, bool, error) {
	upds := make([]graph.Update, 0, len(items))
	for _, it := range items {
		if !it.barrier {
			upds = append(upds, it.upd)
		}
	}
	if len(upds) == 0 && needVertices <= s.eng.Graph().N() {
		return 0, false, nil
	}
	seq, err := wal.Append(needVertices, upds)
	if err != nil {
		s.met.walErrs.Inc()
		return 0, false, fmt.Errorf("server: write-ahead log append: %w", err)
	}
	s.met.walAppends.Inc()
	return seq, true, nil
}

// applyChunk ships one bounded run of updates to the engine. A rejected
// update (validation failure, raised before any state is mutated) is
// recorded on its ingest batch and the remainder of the chunk is re-shipped,
// so one bad update never drags its neighbours down — exactly the behaviour
// of sequential application. Any other engine error (a store load, save or
// flush failure, after which the engine's state can no longer be trusted) is
// returned as an infrastructure failure affecting the whole drain.
func (s *Server) applyChunk(chunk []item) error {
	for len(chunk) > 0 {
		upds := make([]graph.Update, len(chunk))
		for k, it := range chunk {
			upds[k] = it.upd
		}
		start := time.Now()
		applied, err := s.eng.ApplyBatch(upds)
		s.met.observeBatch(time.Since(start), len(upds))
		for k := 0; k < applied; k++ {
			s.met.applied.Inc()
			chunk[k].batch.noteApplied()
		}
		if err == nil {
			return nil
		}
		if applied >= len(chunk) || !incremental.IsValidationError(err) ||
			errors.Is(err, incremental.ErrFlushFailed) {
			// Not (only) a per-update rejection: a store flush or mid-batch
			// infrastructure failure — possibly joined with a validation
			// error by the engine. Stop the chunk and report it on the
			// whole drain.
			return err
		}
		s.met.rejected.Inc()
		chunk[applied].batch.noteError(fmt.Errorf("%v: %w", chunk[applied].upd, err))
		chunk = chunk[applied+1:]
	}
	return nil
}

// publishView captures the current engine state into an immutable view. The
// caller must hold the write lock (or have exclusive access during setup).
func (s *Server) publishView() {
	g := s.eng.Graph()
	s.view.Store(&view{
		res:        s.eng.ResultSnapshot(),
		n:          g.N(),
		m:          g.M(),
		directed:   g.Directed(),
		stats:      s.eng.Stats(),
		sampleSize: s.eng.SampleSize(),
		sampled:    s.eng.Sampled(),
		scale:      s.eng.Scale(),
	})
}

// currentView returns the latest published read view.
func (s *Server) currentView() *view { return s.view.Load() }

// QueueDepth returns the number of updates queued and not yet drained.
func (s *Server) QueueDepth() int { return s.pipe.depth() }

// Snapshot writes a checksummed snapshot atomically (temp file + fsync +
// rename + directory fsync) into the configured directory and returns its
// path. It runs under the read lock: it excludes the pipeline writer but not
// queries. After a successful write, write-ahead-log segments the snapshot
// makes redundant are deleted.
func (s *Server) Snapshot() (string, error) {
	if s.cfg.SnapshotDir == "" {
		return "", ErrNoSnapshotDir
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	wal := s.getWAL()
	if wal != nil {
		if werr := wal.Err(); werr != nil {
			// The engine failed after a durable append (or the log itself
			// failed): its state no longer matches any log position, and a
			// snapshot of it would overwrite the last good one — the very
			// state a restart recovers from. Refuse.
			s.met.snapshotErrs.Inc()
			return "", fmt.Errorf("server: refusing snapshot of an unrecoverable state: %w", werr)
		}
	}
	path, err := WriteSnapshotFile(s.cfg.SnapshotDir, s.eng)
	if err != nil {
		s.met.snapshotErrs.Inc()
		return "", err
	}
	// Persist the shard's cached last response alongside the snapshot: when
	// this snapshot covers the whole log, a restart cannot regenerate those
	// deltas from replay (they need the pre-update state), and a router retry
	// of that record must still get the original bytes back. A failed write
	// does not fail the snapshot — the durability point was reached; the
	// retry would merely see a sequence gap and trigger catch-up.
	if s.shardLast.Load() != nil {
		if err := s.saveShardLast(s.cfg.SnapshotDir); err != nil {
			s.met.snapshotErrs.Inc()
		}
	}
	s.met.snapshots.Inc()
	if wal != nil {
		// The snapshot durably covers the engine's WAL offset (nothing can
		// have been applied since: we hold the read lock), so every segment
		// fully below it is dead weight. A failed deletion does not fail
		// the snapshot — the durability point was reached; the failure is
		// counted and the next snapshot's truncation retries it.
		if err := wal.TruncateThrough(s.eng.WALOffset()); err != nil {
			s.met.walErrs.Inc()
		}
	}
	return path, nil
}

func (s *Server) snapshotLoop() {
	defer close(s.snapDone)
	ticker := time.NewTicker(s.cfg.SnapshotInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			// Errors are recorded in the metrics; the loop keeps going so a
			// transiently full disk does not permanently stop durability.
			s.Snapshot() //nolint:errcheck
		case <-s.snapStop:
			return
		}
	}
}
