package server

import (
	"strconv"
	"strings"
	"testing"

	"streambc/internal/graph"
	"streambc/internal/obs"
)

func TestSeqTraceMapNoteAndGet(t *testing.T) {
	var m seqTraceMap
	if _, ok := m.get(0); ok {
		t.Fatal("empty map answered sequence 0")
	}
	sc := obs.NewSpanContext()
	m.note(7, sc)
	got, ok := m.get(7)
	if !ok || got != sc {
		t.Fatalf("get(7) = %+v, %v", got, ok)
	}
	// Invalid contexts are never stored.
	m.note(8, obs.SpanContext{})
	if _, ok := m.get(8); ok {
		t.Fatal("invalid context stored")
	}
	// The ring holds the last seqTraceEntries records: a later sequence
	// reusing the slot evicts the old one, and the evicted sequence must not
	// be answered with the newer context.
	later := obs.NewSpanContext()
	m.note(7+seqTraceEntries, later)
	if _, ok := m.get(7); ok {
		t.Fatal("evicted sequence still answered")
	}
	got, ok = m.get(7 + seqTraceEntries)
	if !ok || got != later {
		t.Fatalf("get(%d) = %+v, %v", 7+seqTraceEntries, got, ok)
	}
}

func TestParseWALTraceMap(t *testing.T) {
	if m := ParseWALTraceMap(""); m != nil {
		t.Fatalf("empty header parsed to %v", m)
	}
	a, b := obs.NewSpanContext(), obs.NewSpanContext()
	hdr := "3=" + a.Traceparent() + ",9=" + b.Traceparent()
	m := ParseWALTraceMap(hdr)
	if len(m) != 2 || m[3] != a || m[9] != b {
		t.Fatalf("parsed %v from %q", m, hdr)
	}
	// Malformed pairs are skipped, never fatal: the map is advisory.
	hdr = "notanumber=" + a.Traceparent() + ",5,6=garbage,9=" + b.Traceparent()
	m = ParseWALTraceMap(hdr)
	if len(m) != 1 || m[9] != b {
		t.Fatalf("malformed pairs not skipped: %v", m)
	}
}

// TestTraceMapHeaderRoundTrip drives the leader half (traceMapHeader over the
// sequence→trace ring) into the follower half (ParseWALTraceMap) and checks
// records without a held trace are simply absent.
func TestTraceMapHeaderRoundTrip(t *testing.T) {
	srv, _ := startServer(t, testGraph(t, 12, 24, 3), Config{})
	scs := map[uint64]obs.SpanContext{}
	recs := make([]WALRecord, 0, 3)
	for seq := uint64(0); seq < 3; seq++ {
		recs = append(recs, WALRecord{Seq: seq})
		if seq == 1 {
			continue // record 1 aged out / was never traced
		}
		sc := obs.NewSpanContext()
		scs[seq] = sc
		srv.seqTraces.note(seq, sc)
	}
	hdr := srv.traceMapHeader(recs)
	if strings.Contains(hdr, "1=") {
		t.Fatalf("untraced record in the header: %q", hdr)
	}
	m := ParseWALTraceMap(hdr)
	if len(m) != len(scs) {
		t.Fatalf("round trip kept %d entries, want %d (%q)", len(m), len(scs), hdr)
	}
	for seq, sc := range scs {
		if m[seq] != sc {
			t.Fatalf("sequence %d: %+v != %+v", seq, m[seq], sc)
		}
	}
}

// TestApplyReplicatedTracedRecordsSpan: a replica applying a record under a
// leader-shipped trace context records a replica_apply span in that trace,
// parented under the leader's span; an invalid context records nothing.
func TestApplyReplicatedTracedRecordsSpan(t *testing.T) {
	g := testGraph(t, 16, 30, 13)
	srv, _ := startServer(t, g, Config{Replica: true})

	sc := obs.NewSpanContext()
	rec := WALRecord{Seq: 0, NeedVertices: 17, Updates: []graph.Update{{U: 0, V: 16}, {U: 16, V: 1}}}
	if err := srv.ApplyReplicatedTraced(rec, sc); err != nil {
		t.Fatalf("ApplyReplicatedTraced: %v", err)
	}
	spans := srv.SpansByTrace(sc.TraceID)
	if len(spans) != 1 {
		t.Fatalf("replica recorded %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Component != "replica" || sp.Name != "replica_apply" || sp.ParentID != sc.SpanID {
		t.Fatalf("replica span = %+v", sp)
	}
	if sp.Attrs["seq"] != "0" || sp.Attrs["updates"] != strconv.Itoa(len(rec.Updates)) {
		t.Fatalf("replica span attrs = %v", sp.Attrs)
	}

	before := len(srv.spans.LastInto(nil, -1))
	rec2 := WALRecord{Seq: 1, Updates: []graph.Update{{U: 2, V: 16}}}
	if err := srv.ApplyReplicatedTraced(rec2, obs.SpanContext{}); err != nil {
		t.Fatalf("untraced apply: %v", err)
	}
	if after := len(srv.spans.LastInto(nil, -1)); after != before {
		t.Fatalf("untraced apply recorded %d spans", after-before)
	}
}
