package server

// Leader/follower replication, leader side and replica plumbing. The
// protocol is physical WAL shipping over HTTP:
//
//	GET /v1/replication/snapshot      one consistent engine snapshot (the
//	                                  exact WriteSnapshot byte stream); the
//	                                  X-Streambc-Wal-Seq header carries the
//	                                  WAL sequence the snapshot covers
//	GET /v1/replication/wal?from=N    framed WAL records from sequence N
//	                                  (EncodeWALRecord wire format); long-
//	                                  polls at the live edge; X-Streambc-
//	                                  Wal-Seq carries the log end sequence
//	GET /v1/replication/status        JSON: sequences, retention, health
//
// A follower bootstraps from the snapshot stream, then tails the log from
// the covered sequence, applying each record through the same ReplayRecord
// path crash recovery uses — so follower state at sequence S is bit-identical
// to leader state at sequence S (PR 4's invariant, now a network contract).
// Replying 410 Gone to a tail request below the retention floor tells the
// follower its position was truncated by a snapshot and it must re-bootstrap.

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"streambc/internal/engine"
)

// WalSeqHeader is the response header carrying a WAL sequence number: the
// sequence a streamed snapshot covers, or the log's end sequence on a WAL
// read.
const WalSeqHeader = "X-Streambc-Wal-Seq"

// Errors of the replication paths.
var (
	// ErrReadOnlyReplica is returned by Enqueue on a replica: writes must go
	// to the leader (the HTTP layer answers 307 when a leader URL is known).
	ErrReadOnlyReplica = errors.New("server: read-only replica")
	// ErrNotReplica is returned by replica-only operations on a primary.
	ErrNotReplica = errors.New("server: not a replica")
	// ErrSequenceGap is returned by ApplyReplicated when the record does not
	// continue exactly at the replica's applied sequence.
	ErrSequenceGap = errors.New("server: replication sequence gap")
)

// replDefaultWait bounds the live-edge long-poll of the WAL endpoint when
// the client does not pass an explicit wait.
const replDefaultWait = 25 * time.Second

// replMaxWait caps client-requested long-poll durations.
const replMaxWait = 55 * time.Second

// ReplicationStats is the follower-side lag picture, provided to the server
// by the replication tailer (SetReplicationStats) and surfaced on /metrics,
// /v1/stats and /readyz.
type ReplicationStats struct {
	// Connected reports whether the last leader poll succeeded.
	Connected bool
	// AppliedSeq is the WAL sequence the replica's state covers.
	AppliedSeq uint64
	// LeaderSeq is the leader's log end sequence at the last successful poll.
	LeaderSeq uint64
	// LagRecords is max(LeaderSeq-AppliedSeq, 0) at the last poll.
	LagRecords uint64
	// LagSeconds is 0 while caught up, else the time since the replica was
	// last at the leader's live edge.
	LagSeconds float64
}

// getWAL returns the attached write-ahead log, or nil. The WAL is attached
// at construction (Config.WAL) or by a promotion (AttachWAL), hence the
// atomic load.
func (s *Server) getWAL() *WAL { return s.wal.Load() }

// Replica reports whether the server is in read-only follower mode.
func (s *Server) Replica() bool { return s.replica.Load() }

// SetReplicationStats installs the lag-stats provider (the replication
// tailer). Install it before Start so /readyz never sees a stats-less
// replica as ready.
func (s *Server) SetReplicationStats(fn func() ReplicationStats) {
	s.replStats.Store(&fn)
}

// replicationStats returns the current follower lag stats, or nil when no
// provider is installed (primary mode, or a replica before its tailer is
// wired).
func (s *Server) replicationStats() *ReplicationStats {
	fn := s.replStats.Load()
	if fn == nil {
		return nil
	}
	st := (*fn)()
	return &st
}

// AppliedWALSeq returns the WAL sequence the engine state covers, consistent
// with the applied batches (it takes the read lock).
func (s *Server) AppliedWALSeq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.eng.WALOffset()
}

// ApplyReplicated applies one leader WAL record to a replica, exactly as
// crash recovery would replay it: grow the graph to the record's vertex
// requirement, apply the updates through the engine's replay path in chunks
// of at most MaxBatch, advance the applied sequence and publish a fresh read
// view. Records must arrive in sequence; a gap fails with ErrSequenceGap
// (the tailer then re-reads from the applied sequence). Any engine error
// leaves the replica's state untrusted — the caller must stop applying and
// re-bootstrap.
func (s *Server) ApplyReplicated(rec WALRecord) error {
	if !s.Replica() {
		return ErrNotReplica
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing.Load() {
		return ErrClosed
	}
	if at := s.eng.WALOffset(); rec.Seq != at {
		return fmt.Errorf("%w: record %d, replica at %d", ErrSequenceGap, rec.Seq, at)
	}
	err := s.eng.ReplayRecord(rec.Seq, rec.NeedVertices, rec.Updates, s.cfg.MaxBatch)
	if err != nil {
		// The record half-applied: the engine state is no longer
		// bit-identical to any leader sequence. Do NOT publish it — readers
		// keep the last consistent view while the caller tears down.
		return err
	}
	s.met.applied.Add(int64(len(rec.Updates)))
	s.met.batches.Inc()
	s.publishView()
	return nil
}

// SwapEngine replaces the replica's engine with one built by build — the
// re-bootstrap path after the leader truncated past the replica's position.
// It runs under the write lock; queries keep serving the last published
// view throughout (views are immutable copies). The new engine is built
// first and the old one closed only after a successful swap, so a failed
// build leaves the replica on its previous consistent state. Caveat for
// disk-backed store factories rooted in a fixed directory: the new engine's
// stores overwrite the old engine's files during build, so after a FAILED
// build the old engine's on-disk data can no longer be trusted either —
// treat the returned error as terminal and restart the process.
func (s *Server) SwapEngine(build func() (*engine.Engine, error)) error {
	if !s.Replica() {
		return ErrNotReplica
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	eng, err := build()
	if err != nil {
		return fmt.Errorf("server: engine swap failed: %w", err)
	}
	old := s.eng
	s.eng = eng
	s.publishView()
	old.Close() //nolint:errcheck // the state has been replaced wholesale
	return nil
}

// AttachWAL installs a write-ahead log on a server constructed without one.
// It is the promotion step of a follower that was started with a -wal-dir:
// call it after replication has stopped and before Promote. Attaching over
// an existing log is refused.
func (s *Server) AttachWAL(w *WAL) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.wal.CompareAndSwap(nil, w) {
		return errors.New("server: a write-ahead log is already attached")
	}
	// Safe to install after the swap: writes only start once Promote returns,
	// which the caller orders after AttachWAL.
	w.SetObservers(s.met.walAppendLat, s.met.walFsyncLat)
	return nil
}

// Promote flips a replica into a writable primary. The caller must have
// stopped the replication tailer first (no ApplyReplicated may be in flight
// or follow) and, for durable ingest, attached a WAL opened at the replica's
// applied sequence (OpenWAL with AllowFresh). Reads are uninterrupted;
// writes start being accepted the moment Promote returns. The replication
// stats provider is uninstalled: a primary exporting frozen follower lag
// gauges would fire "replica disconnected" alerts against a healthy node.
func (s *Server) Promote() error {
	if !s.replica.CompareAndSwap(true, false) {
		return ErrNotReplica
	}
	s.replStats.Store(nil)
	return nil
}

// handleReplSnapshot serves one consistent snapshot of the engine — the
// exact bytes WriteSnapshot produces. The snapshot is serialised into a
// buffer under the read lock (so it covers the single WAL sequence sent in
// the X-Streambc-Wal-Seq header) and streamed after the lock is released: a
// slow follower must never hold up the ingest pipeline's write lock.
// Requires a WAL: a leader without one has no log for the follower to tail
// afterwards.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	wal := s.getWAL()
	if wal == nil {
		httpError(w, http.StatusPreconditionFailed, errors.New("replication needs a write-ahead log (-wal-dir)"))
		return
	}
	if werr := wal.Err(); werr != nil {
		httpError(w, http.StatusServiceUnavailable, werr)
		return
	}
	s.mu.RLock()
	covered := s.eng.WALOffset()
	var buf bytes.Buffer
	err := engine.WriteSnapshot(&buf, s.eng)
	s.mu.RUnlock()
	if err != nil {
		s.met.snapshotErrs.Inc()
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	// The transfer may outlive any server-wide write timeout; streaming
	// routes manage their own deadline (none).
	http.NewResponseController(w).SetWriteDeadline(time.Time{}) //nolint:errcheck
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Header().Set(WalSeqHeader, strconv.FormatUint(covered, 10))
	io.Copy(w, &buf) //nolint:errcheck // client went away mid-stream
}

// handleReplWAL streams framed WAL records from ?from=N (up to ?max, default
// 1024). At the live edge it long-polls for ?wait (default 25s, capped):
// the reply is then empty but fresh, and the follower immediately re-polls.
// 410 Gone means the range was truncated by a snapshot — re-bootstrap; 409
// means the follower is ahead of this leader's log — a diverged pair that
// must not be papered over.
func (s *Server) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	wal := s.getWAL()
	if wal == nil {
		httpError(w, http.StatusPreconditionFailed, errors.New("replication needs a write-ahead log (-wal-dir)"))
		return
	}
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad from: %w", err))
		return
	}
	maxRecords := 1024
	if raw := r.URL.Query().Get("max"); raw != "" {
		if maxRecords, err = strconv.Atoi(raw); err != nil || maxRecords < 1 {
			httpError(w, http.StatusBadRequest, errors.New("bad max: want a positive integer"))
			return
		}
	}
	wait := replDefaultWait
	if raw := r.URL.Query().Get("wait"); raw != "" {
		if wait, err = time.ParseDuration(raw); err != nil || wait < 0 {
			httpError(w, http.StatusBadRequest, errors.New("bad wait: want a non-negative duration"))
			return
		}
		wait = min(wait, replMaxWait)
	}
	if werr := wal.Err(); werr != nil {
		httpError(w, http.StatusServiceUnavailable, werr)
		return
	}
	// The long-poll plus the stream may outlive a server-wide write
	// timeout; streaming routes manage their own deadline (none).
	http.NewResponseController(w).SetWriteDeadline(time.Time{}) //nolint:errcheck
	if end := wal.Seq(); from > end {
		httpError(w, http.StatusConflict,
			fmt.Errorf("follower at sequence %d is ahead of this log (ends at %d): diverged replica or wiped leader", from, end))
		return
	}
	if wait > 0 {
		// Live edge: grab the notify channel first, then re-check — an
		// advance between the check and the wait closes the grabbed
		// channel. The edge is the replication horizon (records durable on
		// the leader), not the raw append end.
		notify := wal.AppendNotify()
		if wal.SyncedSeq() <= from {
			select {
			case <-notify:
			case <-time.After(wait):
			case <-r.Context().Done():
				return
			}
		}
	}
	recs, end, err := wal.ReadRecords(from, maxRecords)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrWALTruncated) {
			status = http.StatusGone
		}
		httpError(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(WalSeqHeader, strconv.FormatUint(end, 10))
	if tm := s.traceMapHeader(recs); tm != "" {
		w.Header().Set(WalTraceMapHeader, tm)
	}
	var buf []byte
	for _, rec := range recs {
		buf = EncodeWALRecord(buf[:0], rec)
		if _, err := w.Write(buf); err != nil {
			return // client went away mid-stream
		}
	}
}

// handleReplStatus reports the leader's replication state as JSON. The
// worker count is included because bit-identical replication requires the
// follower to partition sources (and hence group floating-point delta
// reduction) exactly like the leader: followers verify it at bootstrap.
func (s *Server) handleReplStatus(w http.ResponseWriter, _ *http.Request) {
	wal := s.getWAL()
	if wal == nil {
		httpError(w, http.StatusPreconditionFailed, errors.New("replication needs a write-ahead log (-wal-dir)"))
		return
	}
	s.mu.RLock()
	workers := s.eng.Workers()
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"wal_sequence":     wal.Seq(),
		"synced_sequence":  wal.SyncedSeq(),
		"oldest_retained":  wal.OldestSeq(),
		"applied_sequence": s.AppliedWALSeq(),
		"workers":          workers,
		"healthy":          wal.Err() == nil,
	})
}
