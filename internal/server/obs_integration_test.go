package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"streambc/internal/engine"
	"streambc/internal/graph"
)

// ---------------------------------------------------------------------------
// Exposition-format lint: a promlint-style parser over the full /metrics body,
// run against every server shape (exact, sampled, WAL-enabled, replica).
// ---------------------------------------------------------------------------

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelPairRe  = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"`)
)

// metricsFamily is what the lint parser learned about one metric family.
type metricsFamily struct {
	help bool
	typ  string
}

// lintMetrics parses one Prometheus text scrape and fails the test on any
// exposition-format violation: samples without a preceding HELP/TYPE pair,
// malformed metric or label names, unparsable values, unknown TYPE values,
// or duplicate series. It returns every sample as series -> value.
func lintMetrics(t *testing.T, body string) (map[string]metricsFamily, map[string]float64) {
	t.Helper()
	families := map[string]metricsFamily{}
	samples := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || parts[1] == "" {
				t.Fatalf("HELP line without text: %q", line)
			}
			f := families[parts[0]]
			f.help = true
			families[parts[0]] = f
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary":
			default:
				t.Fatalf("unknown metric type %q in %q", parts[1], line)
			}
			f := families[parts[0]]
			if !f.help {
				t.Fatalf("TYPE before HELP for %s", parts[0])
			}
			f.typ = parts[1]
			families[parts[0]] = f
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unexpected comment line: %q", line)
		default:
			name, labels, value := parseSample(t, line)
			if !metricNameRe.MatchString(name) {
				t.Fatalf("invalid metric name %q in %q", name, line)
			}
			fam, ok := families[familyName(name, families)]
			if !ok || fam.typ == "" {
				t.Fatalf("sample %q has no preceding HELP/TYPE pair", line)
			}
			series := name + "{" + labels + "}"
			if _, dup := samples[series]; dup {
				t.Fatalf("duplicate series %s", series)
			}
			samples[series] = value
		}
	}
	return families, samples
}

// familyName maps a sample name to its declaring family: histogram and
// summary samples carry _bucket/_sum/_count suffixes on the family name.
func familyName(name string, families map[string]metricsFamily) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if f, ok := families[base]; ok && (f.typ == "histogram" || f.typ == "summary") {
			return base
		}
	}
	return name
}

// parseSample splits one sample line into name, raw label block and value,
// validating label syntax and that the value parses as a float. The label
// block is scanned from both ends because label values (route patterns like
// /v1/vertices/{v}) may themselves contain braces.
func parseSample(t *testing.T, line string) (name, labels string, value float64) {
	t.Helper()
	rest := line
	if open := strings.Index(line, "{"); open >= 0 {
		closing := strings.LastIndex(line, "}")
		if closing < open {
			t.Fatalf("unbalanced label braces: %q", line)
		}
		name, labels, rest = line[:open], line[open+1:closing], line[closing+1:]
		matched := labelPairRe.FindAllString(labels, -1)
		if joined := strings.Join(matched, ","); joined != labels {
			t.Fatalf("malformed label block %q in %q", labels, line)
		}
	} else {
		fields := strings.SplitN(line, " ", 2)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, rest = fields[0], fields[1]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		t.Fatalf("unparsable value in %q: %v", line, err)
	}
	return name, labels, v
}

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d %s", resp.StatusCode, body)
	}
	return string(body)
}

// ingestSome pushes a small deterministic batch through the server so the
// write-path counters and histograms have observations.
func ingestSome(t *testing.T, url string) {
	t.Helper()
	batch := []updateJSON{
		{Op: "add", U: 100, V: 101},
		{Op: "add", U: 101, V: 102},
		{Op: "add", U: 100, V: 101}, // duplicate: coalesces
	}
	var out ingestResponse
	if code := postJSON(t, url+"/v1/updates", ingestRequest{Updates: batch, Wait: true}, &out); code != http.StatusOK {
		t.Fatalf("POST /v1/updates: %d", code)
	}
}

func TestMetricsExpositionWellFormed(t *testing.T) {
	walDir := t.TempDir()
	wal, err := OpenWAL(WALConfig{Dir: walDir, SegmentBytes: 1 << 20}, 0)
	if err != nil {
		t.Fatal(err)
	}
	shapes := []struct {
		name  string
		cfg   Config
		engFn func(c *engine.Config)
		repl  bool
		write bool
	}{
		{name: "exact", cfg: Config{}, write: true},
		{name: "sampled", cfg: Config{}, write: true,
			engFn: func(c *engine.Config) { c.Sources = []int{0, 2, 4, 6}; c.Scale = 4 }},
		{name: "wal", cfg: Config{WAL: wal}, write: true},
		{name: "replica", cfg: Config{Replica: true}, repl: true},
	}
	for _, shape := range shapes {
		t.Run(shape.name, func(t *testing.T) {
			engCfg := engine.Config{Workers: 2}
			if shape.engFn != nil {
				shape.engFn(&engCfg)
			}
			eng, err := engine.New(testGraph(t, 16, 24, 5), engCfg)
			if err != nil {
				t.Fatal(err)
			}
			srv := New(eng, shape.cfg)
			if shape.repl {
				srv.SetReplicationStats(func() ReplicationStats {
					return ReplicationStats{Connected: true, AppliedSeq: 7, LeaderSeq: 9, LagRecords: 2, LagSeconds: 0.5}
				})
			}
			srv.Start()
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(func() {
				ts.Close()
				srv.Close()
				eng.Close()
			})

			first := scrape(t, ts.URL)
			families, firstSamples := lintMetrics(t, first)
			if shape.repl {
				for _, want := range []string{
					"streambc_replication_connected", "streambc_replication_lag_records",
					"streambc_replication_lag_seconds", "streambc_replication_applied_sequence",
				} {
					if _, ok := families[want]; !ok {
						t.Fatalf("replica scrape missing family %s", want)
					}
				}
			}
			if shape.write {
				ingestSome(t, ts.URL)
			}
			_, secondSamples := lintMetrics(t, scrape(t, ts.URL))

			// Counters must be monotonic between the two scrapes (the scrape
			// itself bumps the HTTP counters, so some strictly grow).
			for series, v1 := range firstSamples {
				fam := families[familyName(seriesName(series), families)]
				if fam.typ != "counter" {
					continue
				}
				if v2, ok := secondSamples[series]; ok && v2 < v1 {
					t.Fatalf("counter %s went backwards: %g -> %g", series, v1, v2)
				}
			}
		})
	}
}

func seriesName(series string) string { return series[:strings.Index(series, "{")] }

// ---------------------------------------------------------------------------
// Ingest tracing: every applied drain must surface on /v1/debug/trace and in
// the per-stage histograms, covering enqueue -> WAL-durable -> applied ->
// visible -> total.
// ---------------------------------------------------------------------------

func TestIngestTraceAndStageHistograms(t *testing.T) {
	wal, err := OpenWAL(WALConfig{Dir: t.TempDir(), SegmentBytes: 1 << 20}, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(testGraph(t, 12, 18, 3), engine.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{WAL: wal})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		eng.Close()
	})

	for i := 0; i < 3; i++ {
		b, err := srv.Enqueue([]graph.Update{{U: 50 + i, V: 51 + i}})
		if err != nil {
			t.Fatal(err)
		}
		<-b.Done()
	}

	var tracesResp struct {
		Count  int `json:"count"`
		Traces []struct {
			ID     uint64             `json:"id"`
			Stages map[string]float64 `json:"stages_seconds"`
			Error  string             `json:"error"`
		} `json:"traces"`
	}
	getJSON(t, ts.URL+"/v1/debug/trace?n=8", &tracesResp)
	if tracesResp.Count != 3 || len(tracesResp.Traces) != 3 {
		t.Fatalf("trace ring has %d entries, want 3", tracesResp.Count)
	}
	for _, tr := range tracesResp.Traces {
		if tr.Error != "" {
			t.Fatalf("trace %d carries error %q", tr.ID, tr.Error)
		}
		for _, stage := range []string{"wal_durable", "applied", "visible", "total"} {
			if _, ok := tr.Stages[stage]; !ok {
				t.Fatalf("trace %d missing stage %q: %v", tr.ID, stage, tr.Stages)
			}
		}
		if tr.Stages["total"] < tr.Stages["visible"] {
			t.Fatalf("trace %d: total %g < visible %g", tr.ID, tr.Stages["total"], tr.Stages["visible"])
		}
	}

	body := scrape(t, ts.URL)
	for _, stage := range []string{"wal_durable", "applied", "visible", "total"} {
		want := fmt.Sprintf(`streambc_ingest_stage_seconds_count{stage="%s"} 3`, stage)
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// ---------------------------------------------------------------------------
// Differential test: the full observability stack (tracing, histograms,
// counters, middleware) must not perturb the scores — a stream pushed through
// the instrumented server matches a bare engine bit for bit.
// ---------------------------------------------------------------------------

func TestInstrumentationDoesNotChangeScores(t *testing.T) {
	g := testGraph(t, 16, 30, 21)
	updates := differentialStream(g)

	served, err := engine.New(g.Clone(), engine.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(served, Config{MaxBatch: 4, TraceCapacity: 8})
	srv.Start()
	t.Cleanup(func() {
		srv.Close()
		served.Close()
	})
	// One update per drain: no coalescing can fire, so the served engine
	// sees exactly the sequential stream the bare engine does.
	for _, u := range updates {
		b, err := srv.Enqueue([]graph.Update{u})
		if err != nil {
			t.Fatal(err)
		}
		<-b.Done()
		if errs := b.Errs(); len(errs) > 0 {
			t.Fatalf("update %+v rejected: %v", u, errs)
		}
	}

	bare, err := engine.New(g.Clone(), engine.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bare.Close() })
	for _, u := range updates {
		if _, err := bare.ApplyBatch([]graph.Update{u}); err != nil {
			t.Fatal(err)
		}
	}

	sv, bv := served.VBC(), bare.VBC()
	if len(sv) != len(bv) {
		t.Fatalf("VBC length %d vs %d", len(sv), len(bv))
	}
	for v := range sv {
		if sv[v] != bv[v] {
			t.Fatalf("VBC[%d]: served %v != bare %v", v, sv[v], bv[v])
		}
	}
	se, be := served.EBC(), bare.EBC()
	if len(se) != len(be) {
		t.Fatalf("EBC size %d vs %d", len(se), len(be))
	}
	for e, score := range se {
		if bscore, ok := be[e]; !ok || bscore != score {
			t.Fatalf("EBC[%v]: served %v != bare %v", e, score, bscore)
		}
	}
}

// differentialStream builds a deterministic well-formed update sequence for
// g: removals of existing edges interleaved with additions of absent ones
// (including one vertex-growing addition).
func differentialStream(g *graph.Graph) []graph.Update {
	var updates []graph.Update
	edges := g.Edges()
	for i := 0; i < 3 && i < len(edges); i++ {
		updates = append(updates, graph.Update{U: edges[i].U, V: edges[i].V, Remove: true})
	}
	added := 0
	for u := 0; u < g.N() && added < 4; u++ {
		for v := u + 2; v < g.N() && added < 4; v += 3 {
			if !g.HasEdge(u, v) {
				updates = append(updates, graph.Update{U: u, V: v})
				added++
			}
		}
	}
	updates = append(updates, graph.Update{U: 2, V: g.N()}) // grows the graph
	return updates
}
