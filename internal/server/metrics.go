package server

import (
	"math"
	"time"

	"streambc/internal/obs"
	"streambc/internal/version"
)

// metricQuantiles are the quantiles rendered for the latency/size summaries
// (on /metrics) and reported as p50/p90/p99/max on /v1/stats.
var metricQuantiles = []float64{0.5, 0.9, 0.99, 1}

// metrics holds the server's instruments, all registered with one obs
// registry from which /metrics is rendered. Counters incremented on the hot
// path are plain atomic adds; gauges are scrape-time funcs reading state the
// server already maintains (the published view, the queue, the WAL), so
// exposition never adds work to the write path. The WAL and replication
// families are registered unconditionally but rendered only while the
// corresponding subsystem is present (obs.Registry.When), preserving the
// pre-registry behaviour where those sections appeared and disappeared with
// the subsystem.
type metrics struct {
	reg *obs.Registry

	enqueued     *obs.Counter // updates admitted to the queue
	applied      *obs.Counter // updates applied to the engine
	rejected     *obs.Counter // updates rejected by the engine (bad ops)
	coalesced    *obs.Counter // updates folded away before application
	batches      *obs.Counter // drain cycles executed
	engineBatch  *obs.Counter // engine ApplyBatch calls issued
	snapshots    *obs.Counter // snapshots written
	snapshotErrs *obs.Counter // snapshot attempts that failed
	walAppends   *obs.Counter // records appended to the write-ahead log
	walErrs      *obs.Counter // WAL append/truncate failures

	lats       *obs.Histogram // amortised per-update apply latency (seconds)
	batchLats  *obs.Histogram // per-batch apply latency (seconds)
	batchSizes *obs.Histogram // engine batch sizes (updates per ApplyBatch)

	httpRequests *obs.CounterVec   // {route, code}
	httpLatency  *obs.HistogramVec // {route}
	stages       *obs.HistogramVec // {stage}: the ingest trace histograms
	walAppendLat *obs.Histogram    // WAL Append wall-clock latency
	walFsyncLat  *obs.Histogram    // WAL fsync wall-clock latency
}

// newMetrics registers the server's metric families on reg, in the order the
// pre-registry exposition rendered them (new families follow at the end).
// The scrape-time funcs read s's published view and subsystem accessors,
// which are all safe for concurrent use.
func newMetrics(s *Server, reg *obs.Registry) *metrics {
	m := &metrics{reg: reg}
	reg.GaugeFunc("streambc_build_info",
		"Build version of the running binary (constant 1).",
		func() float64 { return 1 }, "version", version.Version)
	m.enqueued = reg.Counter("streambc_updates_enqueued_total",
		"Updates admitted to the ingest queue.")
	m.applied = reg.Counter("streambc_updates_applied_total",
		"Updates applied to the engine.")
	m.rejected = reg.Counter("streambc_updates_rejected_total",
		"Updates rejected by the engine.")
	m.coalesced = reg.Counter("streambc_updates_coalesced_total",
		"Updates folded away before reaching the engine.")
	m.batches = reg.Counter("streambc_update_batches_total",
		"Drain cycles executed by the ingest pipeline.")
	m.engineBatch = reg.Counter("streambc_apply_batches_total",
		"Engine batch calls issued by the pipeline.")
	reg.IntGaugeFunc("streambc_update_queue_depth",
		"Updates queued and not yet drained.",
		func() int64 { return int64(s.QueueDepth()) })
	m.snapshots = reg.Counter("streambc_snapshots_total", "Snapshots written.")
	m.snapshotErrs = reg.Counter("streambc_snapshot_errors_total",
		"Snapshot attempts that failed.")

	// WAL family: rendered only while a write-ahead log is attached (from
	// construction, or by AttachWAL at promotion).
	wal := reg.When(func() bool { return s.getWAL() != nil })
	m.walAppends = wal.Counter("streambc_wal_appends_total",
		"Records appended to the write-ahead log.")
	m.walErrs = wal.Counter("streambc_wal_errors_total",
		"Write-ahead log append or truncate failures.")
	walGauge := func(read func(*WAL) int64) func() int64 {
		return func() int64 {
			if w := s.getWAL(); w != nil {
				return read(w)
			}
			return 0
		}
	}
	wal.IntGaugeFunc("streambc_wal_segments",
		"Live write-ahead log segment files.",
		walGauge(func(w *WAL) int64 { return int64(w.Segments()) }))
	wal.IntGaugeFunc("streambc_wal_bytes",
		"Total size of the live write-ahead log segments.",
		walGauge(func(w *WAL) int64 { return w.Bytes() }))
	wal.IntGaugeFunc("streambc_wal_sequence",
		"Sequence number of the next write-ahead log record.",
		walGauge(func(w *WAL) int64 { return int64(w.Seq()) }))
	wal.GaugeFunc("streambc_wal_last_fsync_age_seconds",
		"Seconds since the write-ahead log was last flushed to stable storage.",
		func() float64 {
			if w := s.getWAL(); w != nil {
				return w.LastSyncAge().Seconds()
			}
			return 0
		})
	m.walAppendLat = wal.Histogram("streambc_wal_append_seconds",
		"Wall-clock latency of write-ahead log appends (including the fsync under the per-batch policy).",
		obs.LatencyBuckets())
	m.walFsyncLat = wal.Histogram("streambc_wal_fsync_seconds",
		"Wall-clock latency of write-ahead log fsyncs.",
		obs.LatencyBuckets())

	// Replication family: rendered only while a tailer's stats provider is
	// installed (it is removed at promotion).
	repl := reg.When(func() bool { return s.replicationStats() != nil })
	replStat := func(read func(*ReplicationStats) float64) func() float64 {
		return func() float64 {
			if rs := s.replicationStats(); rs != nil {
				return read(rs)
			}
			return 0
		}
	}
	repl.IntGaugeFunc("streambc_replication_connected",
		"Whether the replica's last leader poll succeeded (1) or not (0).",
		func() int64 {
			if rs := s.replicationStats(); rs != nil && rs.Connected {
				return 1
			}
			return 0
		})
	repl.IntGaugeFunc("streambc_replication_lag_records",
		"Leader WAL records not yet applied by this replica.",
		func() int64 {
			if rs := s.replicationStats(); rs != nil {
				return int64(rs.LagRecords)
			}
			return 0
		})
	repl.GaugeFunc("streambc_replication_lag_seconds",
		"Seconds since this replica was last at the leader's live edge (0 while caught up).",
		replStat(func(rs *ReplicationStats) float64 { return rs.LagSeconds }))
	repl.IntGaugeFunc("streambc_replication_applied_sequence",
		"Leader WAL sequence this replica's state covers.",
		func() int64 {
			if rs := s.replicationStats(); rs != nil {
				return int64(rs.AppliedSeq)
			}
			return 0
		})

	reg.IntGaugeFunc("streambc_sampled_sources",
		"Sources whose betweenness data is maintained (sample size k in approximate mode, vertex count n in exact mode).",
		func() int64 { return int64(s.currentView().sampleSize) })
	reg.GaugeFunc("streambc_sample_fraction",
		"Fraction of vertices maintained as sources (1 in exact mode).",
		func() float64 {
			v := s.currentView()
			if v.sampled && v.n > 0 {
				return float64(v.sampleSize) / float64(v.n)
			}
			return 1
		})
	reg.GaugeFunc("streambc_sample_error_proxy",
		"Error proxy sqrt(ln(n)/k) for sampled betweenness estimates (0 in exact mode).",
		func() float64 {
			v := s.currentView()
			if v.sampled && v.sampleSize > 0 {
				// Hoeffding-style proxy for the relative error of uniform
				// source sampling: sqrt(ln(n)/k). It is dimensionless and
				// shrinks as the sample grows; 0 means exact scores.
				return math.Sqrt(math.Log(math.Max(float64(v.n), 2)) / float64(v.sampleSize))
			}
			return 0
		})
	reg.CounterFunc("streambc_sources_skipped_total",
		"Sources skipped by the distance probe.",
		func() int64 { return s.currentView().stats.SourcesSkipped })
	reg.CounterFunc("streambc_sources_updated_total",
		"Sources whose betweenness data was recomputed.",
		func() int64 { return s.currentView().stats.SourcesUpdated })

	m.lats = reg.Summary("streambc_update_latency_seconds",
		"Amortised per-update engine apply latency (batch latency / batch size) of recent batches.",
		obs.LatencyBuckets(), metricQuantiles)
	m.batchLats = reg.Summary("streambc_apply_batch_latency_seconds",
		"Engine apply latency of recent batches.",
		obs.LatencyBuckets(), metricQuantiles)
	m.batchSizes = reg.Summary("streambc_apply_batch_size",
		"Updates per engine batch, over recent batches.",
		obs.SizeBuckets(65536), metricQuantiles)

	m.httpRequests = reg.CounterVec("streambc_http_requests_total",
		"HTTP requests served, by route pattern and status code.",
		"route", "code")
	m.httpLatency = reg.HistogramVec("streambc_http_request_seconds",
		"HTTP request latency, by route pattern.",
		obs.LatencyBuckets(), "route")
	m.stages = reg.HistogramVec("streambc_ingest_stage_seconds",
		"Per-stage latency of applied ingest drains: enqueue to WAL-durable (wal_durable), to engine-applied (applied), to read-visible (visible), and end to end (total).",
		obs.LatencyBuckets(), "stage")
	return m
}

// observeBatch records one engine ApplyBatch call of the given size: its
// latency, its size and the amortised per-update latency.
func (m *metrics) observeBatch(d time.Duration, size int) {
	if size < 1 {
		return
	}
	m.engineBatch.Inc()
	sec := d.Seconds()
	m.batchLats.Observe(sec)
	m.batchSizes.Observe(float64(size))
	m.lats.Observe(sec / float64(size))
}

// quantileFields reports a summary's quantiles as a /v1/stats JSON object.
func quantileFields(h *obs.Histogram) map[string]float64 {
	return map[string]float64{
		"p50": h.Quantile(0.5),
		"p90": h.Quantile(0.9),
		"p99": h.Quantile(0.99),
		"max": h.Quantile(1),
	}
}

// walStats is the point-in-time state of the write-ahead log exposed on
// /v1/stats (nil when no WAL is configured).
type walStats struct {
	segments    int
	bytes       int64
	seq         uint64
	lastSyncAge time.Duration
}
