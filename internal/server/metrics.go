package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streambc/internal/version"
)

// metrics holds the serving counters exposed on /metrics. Counters are
// atomics so the hot path never contends; apply latencies and batch sizes go
// into small mutex-protected rings from which quantiles are computed on
// demand.
type metrics struct {
	enqueued     atomic.Int64 // updates admitted to the queue
	applied      atomic.Int64 // updates applied to the engine
	rejected     atomic.Int64 // updates rejected by the engine (bad ops)
	coalesced    atomic.Int64 // updates folded away before application
	batches      atomic.Int64 // drain cycles executed
	engineBatch  atomic.Int64 // engine ApplyBatch calls issued
	snapshots    atomic.Int64 // snapshots written
	snapshotErrs atomic.Int64 // snapshot attempts that failed
	walAppends   atomic.Int64 // records appended to the write-ahead log
	walErrs      atomic.Int64 // WAL append/truncate failures

	lats       *quantileRing // amortised per-update apply latency (seconds)
	batchLats  *quantileRing // per-batch apply latency (seconds)
	batchSizes *quantileRing // engine batch sizes (updates per ApplyBatch)
}

func newMetrics(window int) *metrics {
	if window <= 0 {
		window = 1024
	}
	return &metrics{
		lats:       newQuantileRing(window),
		batchLats:  newQuantileRing(window),
		batchSizes: newQuantileRing(window),
	}
}

// observeBatch records one engine ApplyBatch call of the given size: its
// latency, its size and the amortised per-update latency.
func (m *metrics) observeBatch(d time.Duration, size int) {
	if size < 1 {
		return
	}
	m.engineBatch.Add(1)
	s := d.Seconds()
	m.batchLats.observe(s)
	m.batchSizes.observe(float64(size))
	m.lats.observe(s / float64(size))
}

// quantileRing is a fixed-size sliding window of observations supporting
// quantile queries.
type quantileRing struct {
	mu   sync.Mutex
	vals []float64
	next int
	n    int
}

func newQuantileRing(window int) *quantileRing {
	return &quantileRing{vals: make([]float64, window)}
}

func (r *quantileRing) observe(v float64) {
	r.mu.Lock()
	r.vals[r.next] = v
	r.next = (r.next + 1) % len(r.vals)
	if r.n < len(r.vals) {
		r.n++
	}
	r.mu.Unlock()
}

// quantiles returns the given quantiles (in [0,1]) over the window, or nil
// when nothing has been recorded.
func (r *quantileRing) quantiles(qs []float64) []float64 {
	r.mu.Lock()
	sample := make([]float64, 0, r.n)
	if r.n < len(r.vals) {
		sample = append(sample, r.vals[:r.n]...)
	} else {
		sample = append(sample, r.vals...)
	}
	r.mu.Unlock()
	if len(sample) == 0 {
		return nil
	}
	sort.Float64s(sample)
	out := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(q*float64(len(sample))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sample) {
			idx = len(sample) - 1
		}
		out[i] = sample[idx]
	}
	return out
}

var metricQuantiles = []float64{0.5, 0.9, 0.99, 1}

// walStats is the point-in-time state of the write-ahead log exposed on
// /metrics (nil when no WAL is configured).
type walStats struct {
	segments    int
	bytes       int64
	seq         uint64
	lastSyncAge time.Duration
}

// writeMetrics renders the Prometheus-style plain-text exposition.
func writeMetrics(w io.Writer, m *metrics, queueDepth int, v *view, wal *walStats, repl *ReplicationStats) {
	st := v.stats
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP streambc_build_info Build version of the running binary (constant 1).\n")
	p("# TYPE streambc_build_info gauge\n")
	p("streambc_build_info{version=%q} 1\n", version.Version)
	summary := func(name string, r *quantileRing) {
		if vals := r.quantiles(metricQuantiles); vals != nil {
			for i, q := range metricQuantiles {
				p("%s{quantile=\"%g\"} %g\n", name, q, vals[i])
			}
		}
	}
	p("# HELP streambc_updates_enqueued_total Updates admitted to the ingest queue.\n")
	p("# TYPE streambc_updates_enqueued_total counter\n")
	p("streambc_updates_enqueued_total %d\n", m.enqueued.Load())
	p("# HELP streambc_updates_applied_total Updates applied to the engine.\n")
	p("# TYPE streambc_updates_applied_total counter\n")
	p("streambc_updates_applied_total %d\n", m.applied.Load())
	p("# HELP streambc_updates_rejected_total Updates rejected by the engine.\n")
	p("# TYPE streambc_updates_rejected_total counter\n")
	p("streambc_updates_rejected_total %d\n", m.rejected.Load())
	p("# HELP streambc_updates_coalesced_total Updates folded away before reaching the engine.\n")
	p("# TYPE streambc_updates_coalesced_total counter\n")
	p("streambc_updates_coalesced_total %d\n", m.coalesced.Load())
	p("# HELP streambc_update_batches_total Drain cycles executed by the ingest pipeline.\n")
	p("# TYPE streambc_update_batches_total counter\n")
	p("streambc_update_batches_total %d\n", m.batches.Load())
	p("# HELP streambc_apply_batches_total Engine batch calls issued by the pipeline.\n")
	p("# TYPE streambc_apply_batches_total counter\n")
	p("streambc_apply_batches_total %d\n", m.engineBatch.Load())
	p("# HELP streambc_update_queue_depth Updates queued and not yet drained.\n")
	p("# TYPE streambc_update_queue_depth gauge\n")
	p("streambc_update_queue_depth %d\n", queueDepth)
	p("# HELP streambc_snapshots_total Snapshots written.\n")
	p("# TYPE streambc_snapshots_total counter\n")
	p("streambc_snapshots_total %d\n", m.snapshots.Load())
	p("# HELP streambc_snapshot_errors_total Snapshot attempts that failed.\n")
	p("# TYPE streambc_snapshot_errors_total counter\n")
	p("streambc_snapshot_errors_total %d\n", m.snapshotErrs.Load())
	if wal != nil {
		p("# HELP streambc_wal_appends_total Records appended to the write-ahead log.\n")
		p("# TYPE streambc_wal_appends_total counter\n")
		p("streambc_wal_appends_total %d\n", m.walAppends.Load())
		p("# HELP streambc_wal_errors_total Write-ahead log append or truncate failures.\n")
		p("# TYPE streambc_wal_errors_total counter\n")
		p("streambc_wal_errors_total %d\n", m.walErrs.Load())
		p("# HELP streambc_wal_segments Live write-ahead log segment files.\n")
		p("# TYPE streambc_wal_segments gauge\n")
		p("streambc_wal_segments %d\n", wal.segments)
		p("# HELP streambc_wal_bytes Total size of the live write-ahead log segments.\n")
		p("# TYPE streambc_wal_bytes gauge\n")
		p("streambc_wal_bytes %d\n", wal.bytes)
		p("# HELP streambc_wal_sequence Sequence number of the next write-ahead log record.\n")
		p("# TYPE streambc_wal_sequence gauge\n")
		p("streambc_wal_sequence %d\n", wal.seq)
		p("# HELP streambc_wal_last_fsync_age_seconds Seconds since the write-ahead log was last flushed to stable storage.\n")
		p("# TYPE streambc_wal_last_fsync_age_seconds gauge\n")
		p("streambc_wal_last_fsync_age_seconds %g\n", wal.lastSyncAge.Seconds())
	}
	if repl != nil {
		connected := 0
		if repl.Connected {
			connected = 1
		}
		p("# HELP streambc_replication_connected Whether the replica's last leader poll succeeded (1) or not (0).\n")
		p("# TYPE streambc_replication_connected gauge\n")
		p("streambc_replication_connected %d\n", connected)
		p("# HELP streambc_replication_lag_records Leader WAL records not yet applied by this replica.\n")
		p("# TYPE streambc_replication_lag_records gauge\n")
		p("streambc_replication_lag_records %d\n", repl.LagRecords)
		p("# HELP streambc_replication_lag_seconds Seconds since this replica was last at the leader's live edge (0 while caught up).\n")
		p("# TYPE streambc_replication_lag_seconds gauge\n")
		p("streambc_replication_lag_seconds %g\n", repl.LagSeconds)
		p("# HELP streambc_replication_applied_sequence Leader WAL sequence this replica's state covers.\n")
		p("# TYPE streambc_replication_applied_sequence gauge\n")
		p("streambc_replication_applied_sequence %d\n", repl.AppliedSeq)
	}
	p("# HELP streambc_sampled_sources Sources whose betweenness data is maintained (sample size k in approximate mode, vertex count n in exact mode).\n")
	p("# TYPE streambc_sampled_sources gauge\n")
	p("streambc_sampled_sources %d\n", v.sampleSize)
	fraction := 1.0
	if v.sampled && v.n > 0 {
		fraction = float64(v.sampleSize) / float64(v.n)
	}
	p("# HELP streambc_sample_fraction Fraction of vertices maintained as sources (1 in exact mode).\n")
	p("# TYPE streambc_sample_fraction gauge\n")
	p("streambc_sample_fraction %g\n", fraction)
	proxy := 0.0
	if v.sampled && v.sampleSize > 0 {
		// Hoeffding-style proxy for the relative error of uniform source
		// sampling: sqrt(ln(n)/k). It is dimensionless and shrinks as the
		// sample grows; 0 means exact scores.
		proxy = math.Sqrt(math.Log(math.Max(float64(v.n), 2)) / float64(v.sampleSize))
	}
	p("# HELP streambc_sample_error_proxy Error proxy sqrt(ln(n)/k) for sampled betweenness estimates (0 in exact mode).\n")
	p("# TYPE streambc_sample_error_proxy gauge\n")
	p("streambc_sample_error_proxy %g\n", proxy)
	p("# HELP streambc_sources_skipped_total Sources skipped by the distance probe.\n")
	p("# TYPE streambc_sources_skipped_total counter\n")
	p("streambc_sources_skipped_total %d\n", st.SourcesSkipped)
	p("# HELP streambc_sources_updated_total Sources whose betweenness data was recomputed.\n")
	p("# TYPE streambc_sources_updated_total counter\n")
	p("streambc_sources_updated_total %d\n", st.SourcesUpdated)
	p("# HELP streambc_update_latency_seconds Amortised per-update engine apply latency (batch latency / batch size) of recent batches.\n")
	p("# TYPE streambc_update_latency_seconds summary\n")
	summary("streambc_update_latency_seconds", m.lats)
	p("# HELP streambc_apply_batch_latency_seconds Engine apply latency of recent batches.\n")
	p("# TYPE streambc_apply_batch_latency_seconds summary\n")
	summary("streambc_apply_batch_latency_seconds", m.batchLats)
	p("# HELP streambc_apply_batch_size Updates per engine batch, over recent batches.\n")
	p("# TYPE streambc_apply_batch_size summary\n")
	summary("streambc_apply_batch_size", m.batchSizes)
}
