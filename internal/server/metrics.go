package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"streambc/internal/engine"
)

// metrics holds the serving counters exposed on /metrics. Counters are
// atomics so the hot path never contends; update latencies go into a small
// mutex-protected ring from which quantiles are computed on demand.
type metrics struct {
	enqueued     atomic.Int64 // updates admitted to the queue
	applied      atomic.Int64 // updates applied to the engine
	rejected     atomic.Int64 // updates rejected by the engine (bad ops)
	coalesced    atomic.Int64 // updates folded away before application
	batches      atomic.Int64 // drain cycles executed
	snapshots    atomic.Int64 // snapshots written
	snapshotErrs atomic.Int64 // snapshot attempts that failed

	latMu   sync.Mutex
	lats    []float64 // seconds, ring buffer
	latNext int
	latN    int
}

func newMetrics(window int) *metrics {
	if window <= 0 {
		window = 1024
	}
	return &metrics{lats: make([]float64, window)}
}

// observeLatency records the engine-apply latency of one update.
func (m *metrics) observeLatency(d time.Duration) {
	s := d.Seconds()
	m.latMu.Lock()
	m.lats[m.latNext] = s
	m.latNext = (m.latNext + 1) % len(m.lats)
	if m.latN < len(m.lats) {
		m.latN++
	}
	m.latMu.Unlock()
}

// latencyQuantiles returns the given quantiles (in [0,1]) over the sliding
// window of recent update latencies, or nil when nothing has been recorded.
func (m *metrics) latencyQuantiles(qs []float64) []float64 {
	m.latMu.Lock()
	sample := make([]float64, 0, m.latN)
	if m.latN < len(m.lats) {
		sample = append(sample, m.lats[:m.latN]...)
	} else {
		sample = append(sample, m.lats...)
	}
	m.latMu.Unlock()
	if len(sample) == 0 {
		return nil
	}
	sort.Float64s(sample)
	out := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(q*float64(len(sample))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sample) {
			idx = len(sample) - 1
		}
		out[i] = sample[idx]
	}
	return out
}

var metricQuantiles = []float64{0.5, 0.9, 0.99, 1}

// writeMetrics renders the Prometheus-style plain-text exposition.
func writeMetrics(w io.Writer, m *metrics, queueDepth int, st engine.Stats) {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("# HELP streambc_updates_enqueued_total Updates admitted to the ingest queue.\n")
	p("# TYPE streambc_updates_enqueued_total counter\n")
	p("streambc_updates_enqueued_total %d\n", m.enqueued.Load())
	p("# HELP streambc_updates_applied_total Updates applied to the engine.\n")
	p("# TYPE streambc_updates_applied_total counter\n")
	p("streambc_updates_applied_total %d\n", m.applied.Load())
	p("# HELP streambc_updates_rejected_total Updates rejected by the engine.\n")
	p("# TYPE streambc_updates_rejected_total counter\n")
	p("streambc_updates_rejected_total %d\n", m.rejected.Load())
	p("# HELP streambc_updates_coalesced_total Updates folded away before reaching the engine.\n")
	p("# TYPE streambc_updates_coalesced_total counter\n")
	p("streambc_updates_coalesced_total %d\n", m.coalesced.Load())
	p("# HELP streambc_update_batches_total Drain cycles executed by the ingest pipeline.\n")
	p("# TYPE streambc_update_batches_total counter\n")
	p("streambc_update_batches_total %d\n", m.batches.Load())
	p("# HELP streambc_update_queue_depth Updates queued and not yet drained.\n")
	p("# TYPE streambc_update_queue_depth gauge\n")
	p("streambc_update_queue_depth %d\n", queueDepth)
	p("# HELP streambc_snapshots_total Snapshots written.\n")
	p("# TYPE streambc_snapshots_total counter\n")
	p("streambc_snapshots_total %d\n", m.snapshots.Load())
	p("# HELP streambc_snapshot_errors_total Snapshot attempts that failed.\n")
	p("# TYPE streambc_snapshot_errors_total counter\n")
	p("streambc_snapshot_errors_total %d\n", m.snapshotErrs.Load())
	p("# HELP streambc_sources_skipped_total Sources skipped by the distance probe.\n")
	p("# TYPE streambc_sources_skipped_total counter\n")
	p("streambc_sources_skipped_total %d\n", st.SourcesSkipped)
	p("# HELP streambc_sources_updated_total Sources whose betweenness data was recomputed.\n")
	p("# TYPE streambc_sources_updated_total counter\n")
	p("streambc_sources_updated_total %d\n", st.SourcesUpdated)
	p("# HELP streambc_update_latency_seconds Engine-apply latency of recent updates.\n")
	p("# TYPE streambc_update_latency_seconds summary\n")
	if vals := m.latencyQuantiles(metricQuantiles); vals != nil {
		for i, q := range metricQuantiles {
			p("streambc_update_latency_seconds{quantile=\"%g\"} %g\n", q, vals[i])
		}
	}
}
