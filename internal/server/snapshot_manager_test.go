package server

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"streambc/internal/engine"
)

// Error-path coverage of the snapshot manager: unwritable directories, torn
// (truncated) snapshot files and checksum corruption must all surface as
// errors, never as a silently wrong restore.

func testEngine(t *testing.T) *engine.Engine {
	t.Helper()
	eng, err := engine.New(testGraph(t, 12, 18, 11), engine.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func TestWriteSnapshotFileUnwritableDir(t *testing.T) {
	// A regular file where the directory should be: MkdirAll (and everything
	// after it) must fail, even when running as root.
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshotFile(filepath.Join(file, "snaps"), testEngine(t)); err == nil {
		t.Fatal("want an error writing a snapshot under a regular file")
	}
}

func TestLoadSnapshotFileMissing(t *testing.T) {
	if _, err := LoadSnapshotFile(t.TempDir()); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("got %v, want os.ErrNotExist", err)
	}
}

func TestLoadSnapshotFileTorn(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteSnapshotFile(dir, testEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must be rejected (torn write at any point).
	for _, keep := range []int64{0, 1, info.Size() / 2, info.Size() - 1} {
		if err := os.Truncate(path, keep); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadSnapshotFile(dir); !errors.Is(err, engine.ErrBadSnapshot) {
			t.Fatalf("truncated to %d bytes: got %v, want ErrBadSnapshot", keep, err)
		}
		// Restore the full file for the next iteration.
		full, werr := WriteSnapshotFile(dir, testEngine(t))
		if werr != nil {
			t.Fatal(werr)
		}
		path = full
	}
}

func TestLoadSnapshotFileCRCMismatch(t *testing.T) {
	dir := t.TempDir()
	path, err := WriteSnapshotFile(dir, testEngine(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte (past the magic, before the checksum): the CRC
	// must catch it.
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshotFile(dir); !errors.Is(err, engine.ErrBadSnapshot) {
		t.Fatalf("got %v, want ErrBadSnapshot", err)
	}
}

func TestServerSnapshotErrorCounted(t *testing.T) {
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng := testEngine(t)
	srv := New(eng, Config{SnapshotDir: filepath.Join(file, "snaps")})
	if _, err := srv.Snapshot(); err == nil {
		t.Fatal("want a snapshot error")
	}
	if got := srv.met.snapshotErrs.Value(); got != 1 {
		t.Fatalf("snapshot error counter = %d, want 1", got)
	}
}
