package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"streambc/internal/bc"
	"streambc/internal/graph"
	"streambc/internal/obs"
)

// defaultWaitTimeout bounds how long an ingest request with "wait":true may
// block before the server answers with 202 anyway.
const defaultWaitTimeout = 30 * time.Second

// Handler returns the HTTP API of the server:
//
//	GET  /healthz                  liveness probe
//	GET  /readyz                   readiness probe (see handleReady)
//	GET  /metrics                  plain-text serving metrics
//	POST /v1/updates               ingest a batch of updates
//	POST /v1/update                ingest a single update
//	GET  /v1/vertices/{v}          betweenness of one vertex
//	GET  /v1/edges?u=&v=           betweenness of one edge
//	GET  /v1/top/vertices?k=       top-k vertices by betweenness
//	GET  /v1/top/edges?k=          top-k edges by betweenness
//	GET  /v1/graph                 graph summary (n, m, directedness, degree)
//	GET  /v1/stats                 engine and serving counters
//	POST /v1/snapshot              write a snapshot now
//	GET  /v1/debug/trace?n=        newest N ingest traces (ring buffer)
//	GET  /v1/replication/snapshot  stream a consistent snapshot (leader)
//	GET  /v1/replication/wal       stream WAL records from a sequence (leader)
//	GET  /v1/replication/status    replication sequences and health (leader)
//	POST /v1/shard/apply           apply one router fanout record (shard)
//	GET  /v1/shard/status          shard identity and applied position
//
// Every route runs behind the instrument middleware: per-route request/status
// counters, a latency histogram and the slow-request log.
//
// On a replica the write endpoints answer 307 to the configured leader URL
// (503 when none is known); every read endpoint serves locally.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.instrument(route, h))
	}
	handle("GET /healthz", "/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if wal := s.getWAL(); wal != nil {
			if werr := wal.Err(); werr != nil {
				// Writes are permanently halted until a restart; report it
				// so orchestrators replace the instance instead of routing
				// traffic at a server that discards ingest.
				http.Error(w, "unhealthy: "+werr.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Write([]byte("ok\n"))
	})
	handle("GET /readyz", "/readyz", s.handleReady)
	handle("GET /metrics", "/metrics", s.handleMetrics)
	handle("POST /v1/updates", "/v1/updates", s.handleUpdates)
	handle("POST /v1/update", "/v1/update", s.handleUpdate)
	handle("GET /v1/vertices/{v}", "/v1/vertices/{v}", s.handleVertex)
	handle("GET /v1/edges", "/v1/edges", s.handleEdge)
	handle("GET /v1/top/vertices", "/v1/top/vertices", s.handleTopVertices)
	handle("GET /v1/top/edges", "/v1/top/edges", s.handleTopEdges)
	handle("GET /v1/graph", "/v1/graph", s.handleGraph)
	handle("GET /v1/stats", "/v1/stats", s.handleStats)
	handle("POST /v1/snapshot", "/v1/snapshot", s.handleSnapshot)
	handle("GET /v1/debug/trace", "/v1/debug/trace", s.handleTrace)
	handle("GET /v1/replication/snapshot", "/v1/replication/snapshot", s.handleReplSnapshot)
	handle("GET /v1/replication/wal", "/v1/replication/wal", s.handleReplWAL)
	handle("GET /v1/replication/status", "/v1/replication/status", s.handleReplStatus)
	handle("POST /v1/shard/apply", "/v1/shard/apply", s.handleShardApply)
	handle("GET /v1/shard/status", "/v1/shard/status", s.handleShardStatus)
	return mux
}

// instrument wraps one route with the HTTP observability middleware: a
// per-route/status request counter, a per-route latency histogram, and a
// warn-level log line for requests at or above Config.SlowRequest.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		d := time.Since(start)
		code := sw.status
		if code == 0 {
			code = http.StatusOK
		}
		s.met.httpRequests.With(route, strconv.Itoa(code)).Inc()
		s.met.httpLatency.With(route).Observe(d.Seconds())
		if s.cfg.SlowRequest > 0 && d >= s.cfg.SlowRequest {
			s.log.Warn("slow request",
				obs.KeyComponent, "http",
				"route", route, "method", r.Method, "status", code,
				"seconds", d.Seconds())
		}
	}
}

// statusWriter captures the response status for the middleware. Unwrap keeps
// http.ResponseController working for the streaming replication routes,
// which reach through the wrapper to adjust write deadlines.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// handleReady is the readiness probe, distinct from /healthz liveness: a
// live instance may still be one traffic should not yet be routed to.
//
//   - A replica is ready once its tailer is connected and within
//     Config.ReadyMaxLag records of the leader; a freshly started follower
//     stays unready while it catches up.
//   - A primary with a WAL is ready while the log is healthy AND a snapshot
//     manager is attached (a WAL without snapshots grows without bound and
//     can never be truncated — a misconfiguration worth surfacing).
//   - A plain in-memory server is always ready.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.Replica() {
		rs := s.replicationStats()
		switch {
		case rs == nil:
			http.Error(w, "not ready: replica has no replication tailer", http.StatusServiceUnavailable)
		case !rs.Connected:
			http.Error(w, "not ready: replica disconnected from leader", http.StatusServiceUnavailable)
		case rs.LagRecords > s.cfg.ReadyMaxLag:
			http.Error(w, fmt.Sprintf("not ready: replication lag %d records (max %d)",
				rs.LagRecords, s.cfg.ReadyMaxLag), http.StatusServiceUnavailable)
		default:
			w.Write([]byte("ready\n"))
		}
		return
	}
	if wal := s.getWAL(); wal != nil {
		if werr := wal.Err(); werr != nil {
			http.Error(w, "not ready: "+werr.Error(), http.StatusServiceUnavailable)
			return
		}
		if s.cfg.SnapshotDir == "" {
			http.Error(w, "not ready: write-ahead log without a snapshot manager (log can never be truncated)",
				http.StatusServiceUnavailable)
			return
		}
	}
	w.Write([]byte("ready\n"))
}

type updateJSON struct {
	Op string `json:"op"` // "add" or "remove"
	U  int    `json:"u"`
	V  int    `json:"v"`
}

func (u updateJSON) toUpdate() (graph.Update, error) {
	switch u.Op {
	case "add", "":
		return graph.Addition(u.U, u.V), nil
	case "remove":
		return graph.Removal(u.U, u.V), nil
	default:
		return graph.Update{}, fmt.Errorf("unknown op %q (want \"add\" or \"remove\")", u.Op)
	}
}

type ingestRequest struct {
	Updates []updateJSON `json:"updates"`
	// Wait makes the request block until the batch has been applied, giving
	// read-your-writes semantics to the caller.
	Wait bool `json:"wait"`
}

type ingestResponse struct {
	Enqueued  int      `json:"enqueued"`
	Waited    bool     `json:"waited"`
	Applied   int      `json:"applied"`
	Coalesced int      `json:"coalesced"`
	Rejected  int      `json:"rejected"`
	Errors    []string `json:"errors,omitempty"`
}

func (s *Server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	if s.redirectReplicaWrite(w, r) {
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	s.ingest(w, r, req)
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.redirectReplicaWrite(w, r) {
		return
	}
	var req struct {
		updateJSON
		Wait bool `json:"wait"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	s.ingest(w, r, ingestRequest{Updates: []updateJSON{req.updateJSON}, Wait: req.Wait})
}

// redirectReplicaWrite answers a write request on a replica: 307 to the
// leader (the status preserves method and body, so the client's POST lands
// on the leader unchanged) or 503 when no leader is known. It reports
// whether the request was handled.
func (s *Server) redirectReplicaWrite(w http.ResponseWriter, r *http.Request) bool {
	if !s.Replica() {
		return false
	}
	if s.cfg.LeaderURL != "" {
		http.Redirect(w, r, s.cfg.LeaderURL+r.URL.Path, http.StatusTemporaryRedirect)
	} else {
		httpError(w, http.StatusServiceUnavailable, ErrReadOnlyReplica)
	}
	return true
}

func (s *Server) ingest(w http.ResponseWriter, r *http.Request, req ingestRequest) {
	if len(req.Updates) == 0 {
		httpError(w, http.StatusBadRequest, errors.New("empty update batch"))
		return
	}
	upds := make([]graph.Update, len(req.Updates))
	for i, u := range req.Updates {
		upd, err := u.toUpdate()
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("update %d: %w", i, err))
			return
		}
		upds[i] = upd
	}
	batch, err := s.Enqueue(upds)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrQueueFull) || errors.Is(err, ErrClosed) || errors.Is(err, ErrIngestHalted) {
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err)
		return
	}
	resp := ingestResponse{Enqueued: len(upds)}
	status := http.StatusAccepted
	if req.Wait {
		ctx, cancel := context.WithTimeout(r.Context(), defaultWaitTimeout)
		defer cancel()
		if err := batch.Wait(ctx); err == nil {
			resp.Waited = true
			resp.Applied = batch.Applied()
			resp.Coalesced = batch.Coalesced()
			for _, e := range batch.Errs() {
				resp.Errors = append(resp.Errors, e.Error())
			}
			resp.Rejected = len(resp.Errors)
			status = http.StatusOK
		}
	}
	writeJSON(w, status, resp)
}

func (s *Server) handleVertex(w http.ResponseWriter, r *http.Request) {
	vtx, err := strconv.Atoi(r.PathValue("v"))
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad vertex id: %w", err))
		return
	}
	v := s.currentView()
	score := 0.0
	known := vtx >= 0 && vtx < len(v.res.VBC)
	if known {
		score = v.res.VBC[vtx]
	}
	writeJSON(w, http.StatusOK, map[string]any{"vertex": vtx, "known": known, "score": score})
}

func (s *Server) handleEdge(w http.ResponseWriter, r *http.Request) {
	u, err1 := strconv.Atoi(r.URL.Query().Get("u"))
	vtx, err2 := strconv.Atoi(r.URL.Query().Get("v"))
	if err1 != nil || err2 != nil {
		httpError(w, http.StatusBadRequest, errors.New("query parameters u and v must be integers"))
		return
	}
	key := graph.Edge{U: u, V: vtx}
	if !s.directed {
		key = key.Canonical()
	}
	v := s.currentView()
	score, known := v.res.EBC[key]
	writeJSON(w, http.StatusOK, map[string]any{"u": u, "v": vtx, "known": known, "score": score})
}

type vertexScoreJSON struct {
	Vertex int     `json:"vertex"`
	Score  float64 `json:"score"`
}

type edgeScoreJSON struct {
	U     int     `json:"u"`
	V     int     `json:"v"`
	Score float64 `json:"score"`
}

func (s *Server) handleTopVertices(w http.ResponseWriter, r *http.Request) {
	k, err := parseK(r, 10)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	v := s.currentView()
	top := bc.TopVertices(v.res, k)
	out := make([]vertexScoreJSON, len(top))
	for i, t := range top {
		out[i] = vertexScoreJSON{Vertex: t.Vertex, Score: t.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{"k": len(out), "vertices": out})
}

func (s *Server) handleTopEdges(w http.ResponseWriter, r *http.Request) {
	k, err := parseK(r, 10)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	v := s.currentView()
	top := bc.TopEdges(v.res, k)
	out := make([]edgeScoreJSON, len(top))
	for i, t := range top {
		out[i] = edgeScoreJSON{U: t.Edge.U, V: t.Edge.V, Score: t.Score}
	}
	writeJSON(w, http.StatusOK, map[string]any{"k": len(out), "edges": out})
}

func (s *Server) handleGraph(w http.ResponseWriter, _ *http.Request) {
	v := s.currentView()
	avg := 0.0
	if v.n > 0 {
		avg = float64(v.m) / float64(v.n)
		if !v.directed {
			avg *= 2
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"n":          v.n,
		"m":          v.m,
		"directed":   v.directed,
		"avg_degree": avg,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	v := s.currentView()
	out := map[string]any{
		"updates_applied":   v.stats.UpdatesApplied,
		"sources_skipped":   v.stats.SourcesSkipped,
		"sources_updated":   v.stats.SourcesUpdated,
		"updates_enqueued":  s.met.enqueued.Value(),
		"updates_rejected":  s.met.rejected.Value(),
		"updates_coalesced": s.met.coalesced.Value(),
		"queue_depth":       s.QueueDepth(),
		"snapshots":         s.met.snapshots.Value(),
		"sampled":           v.sampled,
		"sampled_sources":   v.sampleSize,
		"sample_scale":      v.scale,
		// Quantiles interpolated from the registry histograms (the same data
		// behind the /metrics summaries).
		"update_latency_seconds":      quantileFields(s.met.lats),
		"apply_batch_latency_seconds": quantileFields(s.met.batchLats),
		"apply_batch_size":            quantileFields(s.met.batchSizes),
	}
	if wal := s.walStats(); wal != nil {
		out["wal_segments"] = wal.segments
		out["wal_bytes"] = wal.bytes
		out["wal_sequence"] = wal.seq
	}
	if rs := s.replicationStats(); rs != nil {
		out["replication_connected"] = rs.Connected
		out["replication_applied_sequence"] = rs.AppliedSeq
		out["replication_leader_sequence"] = rs.LeaderSeq
		out["replication_lag_records"] = rs.LagRecords
		out["replication_lag_seconds"] = rs.LagSeconds
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.met.reg.WriteTo(w) //nolint:errcheck // client went away mid-scrape
}

// tracePool recycles the trace slices the debug handler copies the ring into:
// handleTrace runs per request, and without the pool every hit re-allocates a
// full ring's worth of IngestTrace values.
var tracePool = sync.Pool{New: func() any { return new([]obs.IngestTrace) }}

// handleTrace serves the newest ?n= ingest traces (default 32) from the ring
// buffer, newest first, with per-stage durations in seconds. With ?trace=
// (a 32-hex-digit trace ID) it instead returns every span this process holds
// for that distributed trace, oldest first — the shard half of the router's
// cross-process trace stitching.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if raw := r.URL.Query().Get("trace"); raw != "" {
		id, err := obs.ParseTraceID(raw)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad trace: %w", err))
			return
		}
		spans := s.SpansByTrace(id)
		if spans == nil {
			spans = []obs.Span{}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"trace_id": id, "count": len(spans), "spans": spans,
		})
		return
	}
	n := 32
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			httpError(w, http.StatusBadRequest, errors.New("bad n: want a positive integer"))
			return
		}
		n = v
	}
	bufp := tracePool.Get().(*[]obs.IngestTrace)
	traces := s.traces.LastInto((*bufp)[:0], n)
	type traceJSON struct {
		ID         uint64             `json:"id"`
		TraceID    obs.TraceID        `json:"trace_id"`
		Updates    int                `json:"updates"`
		EnqueuedAt time.Time          `json:"enqueued_at"`
		Stages     map[string]float64 `json:"stages_seconds"`
		Error      string             `json:"error,omitempty"`
	}
	out := make([]traceJSON, len(traces))
	for i, tr := range traces {
		out[i] = traceJSON{
			ID:         tr.ID,
			TraceID:    tr.TraceID,
			Updates:    tr.Updates,
			EnqueuedAt: tr.EnqueuedAt,
			Stages:     tr.Stages(),
			Error:      tr.Error,
		}
	}
	*bufp = traces[:0]
	tracePool.Put(bufp)
	writeJSON(w, http.StatusOK, map[string]any{"count": len(out), "traces": out})
}

// walStats captures the write-ahead log state for serving, or nil when
// ingest durability is off.
func (s *Server) walStats() *walStats {
	wal := s.getWAL()
	if wal == nil {
		return nil
	}
	return &walStats{
		segments:    wal.Segments(),
		bytes:       wal.Bytes(),
		seq:         wal.Seq(),
		lastSyncAge: wal.LastSyncAge(),
	}
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	path, err := s.Snapshot()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNoSnapshotDir) {
			status = http.StatusConflict
		}
		httpError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"path": path})
}

func parseK(r *http.Request, def int) (int, error) {
	raw := r.URL.Query().Get("k")
	if raw == "" {
		return def, nil
	}
	k, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("bad k: %w", err)
	}
	return k, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]any{"error": err.Error()})
}
