package server

// Write-path sharding, shard side. A shard is a normal bcserved process whose
// engine owns one stride of the global source pool (engine.Config.ShardIndex
// of ShardCount; see bc.StridedSources): it applies every update of the
// stream, but accumulates betweenness only over its own sources. The merge
// router (internal/router) fans each accepted drain to all shards as one WAL
// record and folds the per-update score deltas the shards send back, in shard
// order — the exact arithmetic the reduce phase of a single ShardCount-worker
// engine performs, so the merged scores are bit-identical to the
// single-process ones when every shard runs one worker.
//
// Protocol (mounted on every primary, so a plain bcserved is adoptable as
// shard 0 of 1; refused on replicas):
//
//	POST /v1/shard/apply     body: one framed WAL record (EncodeWALRecord).
//	                         The record's sequence must continue the shard's
//	                         log exactly; the shard appends it to its own WAL
//	                         (durability), applies it, and answers with the
//	                         per-update delta stream (EncodeShardResponse).
//	                         409: sequence gap. Re-sending the last applied
//	                         sequence returns the cached response unchanged —
//	                         the router's retry after a lost reply must not
//	                         re-apply.
//	GET  /v1/shard/status    JSON: shard identity, applied sequence, graph
//	                         summary, health.
//
// The response to the last applied record is kept in memory and persisted
// alongside every snapshot (shard-last-response.bin): after a crash the WAL
// replay rebuilds it for the final record, and when the snapshot already
// covers the whole log (so no replay happens and the deltas cannot be
// regenerated without pre-update state) the persisted copy fills the gap.
// Either way a router retry of the last record gets the original bytes back.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"streambc/internal/engine"
	"streambc/internal/graph"
	"streambc/internal/incremental"
	"streambc/internal/obs"
)

// ErrShardSequenceGap is returned by ApplyShardRecord when the record does
// not continue exactly at the shard's applied sequence (HTTP 409): the router
// must equalise the shard from a peer's WAL before resuming the fanout.
var ErrShardSequenceGap = errors.New("server: shard sequence gap")

// ShardLastResponse is the cached reply to the shard's last applied record,
// kept for idempotent router retries (Seq is the record's sequence, Body the
// exact EncodeShardResponse bytes).
type ShardLastResponse struct {
	Seq  uint64
	Body []byte
}

// shardLastFileName is the snapshot-directory file persisting the cached
// last response across restarts.
const shardLastFileName = "shard-last-response.bin"

// ShardDeltaVertex is one vertex term of an update's score delta.
type ShardDeltaVertex struct {
	V int
	X float64
}

// ShardDeltaEdge is one edge term of an update's score delta.
type ShardDeltaEdge struct {
	E graph.Edge
	X float64
}

// ShardUpdateResult is the outcome of one update of an applied record: either
// a rejection (validation failure, deterministic across shards) or the
// shard's partial score delta, terms in fold order.
type ShardUpdateResult struct {
	Rejected bool
	Err      string
	VBC      []ShardDeltaVertex
	EBC      []ShardDeltaEdge
}

// ShardResponse is the decoded reply to a shard apply: the per-update results
// of record Seq, in stream order, stamped with the shard's identity so the
// router can detect a misconfigured cluster before folding anything.
type ShardResponse struct {
	ShardIndex int
	ShardCount int
	Seq        uint64
	Updates    []ShardUpdateResult
}

// Shard response wire format (multi-byte integers as unsigned varints,
// floats as little-endian IEEE-754 bits):
//
//	magic    [4]byte  "SBCD"
//	version  uvarint  (1)
//	shardIdx uvarint
//	shardCnt uvarint
//	seq      uvarint  sequence of the record this replies to
//	count    uvarint  number of updates
//	per update:
//	  status byte     1 applied, 0 rejected
//	  -- rejected --
//	  errLen uvarint, err bytes
//	  -- applied --
//	  nv uvarint, nv × (uvarint v, float64 x)
//	  ne uvarint, ne × (uvarint u, uvarint v, float64 x)
//	crc      uint32   CRC-32 (IEEE) of every byte before it
//
// The delta terms are written in the engine's fold order (FlatDelta
// first-touch order), so the router re-applies them in exactly the order the
// shard's own reducer did.
var shardRespMagic = [4]byte{'S', 'B', 'C', 'D'}

const shardRespVersion = 1

// EncodeShardResponse appends the wire encoding of resp to buf.
func EncodeShardResponse(buf []byte, resp ShardResponse) []byte {
	start := len(buf)
	buf = append(buf, shardRespMagic[:]...)
	buf = binary.AppendUvarint(buf, shardRespVersion)
	buf = binary.AppendUvarint(buf, uint64(resp.ShardIndex))
	buf = binary.AppendUvarint(buf, uint64(resp.ShardCount))
	buf = binary.AppendUvarint(buf, resp.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(resp.Updates)))
	for _, u := range resp.Updates {
		if u.Rejected {
			buf = append(buf, 0)
			buf = binary.AppendUvarint(buf, uint64(len(u.Err)))
			buf = append(buf, u.Err...)
			continue
		}
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(u.VBC)))
		for _, t := range u.VBC {
			buf = binary.AppendUvarint(buf, uint64(t.V))
			buf = binary.LittleEndian.AppendUint64(buf, floatBits(t.X))
		}
		buf = binary.AppendUvarint(buf, uint64(len(u.EBC)))
		for _, t := range u.EBC {
			buf = binary.AppendUvarint(buf, uint64(t.E.U))
			buf = binary.AppendUvarint(buf, uint64(t.E.V))
			buf = binary.LittleEndian.AppendUint64(buf, floatBits(t.X))
		}
	}
	crc := crc32.ChecksumIEEE(buf[start:])
	return binary.LittleEndian.AppendUint32(buf, crc)
}

// ErrBadShardResponse is wrapped by every shard-response decoding failure.
var ErrBadShardResponse = errors.New("server: bad shard response")

// DecodeShardResponse decodes one shard response, verifying the checksum.
func DecodeShardResponse(data []byte) (*ShardResponse, error) {
	if len(data) < len(shardRespMagic)+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadShardResponse, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (wire %08x, computed %08x)", ErrBadShardResponse, got, want)
	}
	if [4]byte(body[:4]) != shardRespMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadShardResponse, body[:4])
	}
	p := body[4:]
	next := func(what string) (uint64, error) {
		x, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, fmt.Errorf("%w: reading %s", ErrBadShardResponse, what)
		}
		p = p[n:]
		return x, nil
	}
	nextFloat := func(what string) (float64, error) {
		if len(p) < 8 {
			return 0, fmt.Errorf("%w: reading %s", ErrBadShardResponse, what)
		}
		x := floatFromBits(binary.LittleEndian.Uint64(p))
		p = p[8:]
		return x, nil
	}
	version, err := next("version")
	if err != nil {
		return nil, err
	}
	if version != shardRespVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadShardResponse, version)
	}
	resp := &ShardResponse{}
	si, err := next("shard index")
	if err != nil {
		return nil, err
	}
	sc, err := next("shard count")
	if err != nil {
		return nil, err
	}
	if sc < 1 || si >= sc {
		return nil, fmt.Errorf("%w: implausible shard %d/%d", ErrBadShardResponse, si, sc)
	}
	resp.ShardIndex, resp.ShardCount = int(si), int(sc)
	if resp.Seq, err = next("sequence"); err != nil {
		return nil, err
	}
	count, err := next("update count")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < count; i++ {
		if len(p) < 1 {
			return nil, fmt.Errorf("%w: reading update status", ErrBadShardResponse)
		}
		status := p[0]
		p = p[1:]
		var u ShardUpdateResult
		switch status {
		case 0:
			u.Rejected = true
			el, err := next("error length")
			if err != nil {
				return nil, err
			}
			if uint64(len(p)) < el {
				return nil, fmt.Errorf("%w: reading error text", ErrBadShardResponse)
			}
			u.Err = string(p[:el])
			p = p[el:]
		case 1:
			nv, err := next("vertex delta count")
			if err != nil {
				return nil, err
			}
			for j := uint64(0); j < nv; j++ {
				v, err := next("vertex")
				if err != nil {
					return nil, err
				}
				x, err := nextFloat("vertex delta")
				if err != nil {
					return nil, err
				}
				u.VBC = append(u.VBC, ShardDeltaVertex{V: int(v), X: x})
			}
			ne, err := next("edge delta count")
			if err != nil {
				return nil, err
			}
			for j := uint64(0); j < ne; j++ {
				eu, err := next("edge endpoint")
				if err != nil {
					return nil, err
				}
				ev, err := next("edge endpoint")
				if err != nil {
					return nil, err
				}
				x, err := nextFloat("edge delta")
				if err != nil {
					return nil, err
				}
				u.EBC = append(u.EBC, ShardDeltaEdge{E: graph.Edge{U: int(eu), V: int(ev)}, X: x})
			}
		default:
			return nil, fmt.Errorf("%w: update status %d", ErrBadShardResponse, status)
		}
		resp.Updates = append(resp.Updates, u)
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadShardResponse, len(p))
	}
	return resp, nil
}

// ApplyShardRecord applies one router fanout record to this shard: appends it
// to the shard's own write-ahead log (when one is attached), applies its
// updates exactly as the ingest pipeline would, and returns the encoded
// per-update delta response. Records must continue the shard's sequence
// exactly; re-sending the last applied sequence returns the cached response
// without re-applying (the router retries after a lost reply), and any other
// mismatch fails with ErrShardSequenceGap. An engine failure after a durable
// append poisons the WAL, exactly like the ingest path: the shard must
// restart and recover.
func (s *Server) ApplyShardRecord(rec WALRecord) ([]byte, error) {
	return s.ApplyShardRecordTraced(rec, obs.SpanContext{})
}

// ApplyShardRecordTraced is ApplyShardRecord with the router's trace context
// attached: the shard's spans (the apply itself, its WAL append and engine
// apply) are recorded under the caller's trace ID, parented to the caller's
// span. An invalid context starts a fresh local trace instead. Because the
// router reuses one span context across retries of a record, a retry answered
// from the last-response cache lands in the same trace as the original apply
// (recorded as a cached=true span).
func (s *Server) ApplyShardRecordTraced(rec WALRecord, sc obs.SpanContext) ([]byte, error) {
	if s.Replica() {
		return nil, ErrReadOnlyReplica
	}
	// applySC identifies the shard_apply span: same trace as the caller (or a
	// fresh one), fresh span ID that WAL-append/apply children and downstream
	// replica spans parent under.
	applySC := sc.Child()
	if !sc.Valid() {
		applySC = obs.NewSpanContext()
	}
	start := time.Now()
	span := obs.Span{
		TraceID: applySC.TraceID, SpanID: applySC.SpanID, ParentID: sc.SpanID,
		Component: "shard", Name: "shard_apply", Start: start,
		Attrs: map[string]string{
			"seq":     strconv.FormatUint(rec.Seq, 10),
			"updates": strconv.Itoa(len(rec.Updates)),
		},
	}
	body, err := s.applyShardRecordLocked(rec, applySC, &span)
	span.End = time.Now()
	if err != nil {
		span.Error = err.Error()
	}
	s.spans.Add(span)
	return body, err
}

// applyShardRecordLocked is the body of ApplyShardRecordTraced: the sequence
// checks, WAL append, captured apply and cache update, under the write lock.
// It records the wal_append and apply child spans of span as it goes and may
// annotate span's attributes (cache hits).
func (s *Server) applyShardRecordLocked(rec WALRecord, applySC obs.SpanContext, span *obs.Span) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing.Load() {
		return nil, ErrClosed
	}
	if last := s.shardLast.Load(); last != nil && rec.Seq == last.Seq {
		// A router retry of the last applied record: answered from cache, and
		// traced as such — the retry carries the original trace ID, so this
		// span joins the spans of the attempt that did the work.
		span.Attrs["cached"] = "true"
		return last.Body, nil
	}
	child := func(name string, start, stop time.Time) {
		s.spans.Add(obs.Span{
			TraceID: applySC.TraceID, SpanID: obs.NewSpanID(), ParentID: applySC.SpanID,
			Component: "shard", Name: name, Start: start, End: stop,
		})
	}
	wal := s.getWAL()
	if wal != nil {
		if werr := wal.Err(); werr != nil {
			return nil, fmt.Errorf("%w: %w", ErrIngestHalted, werr)
		}
		if at := wal.Seq(); rec.Seq != at {
			return nil, fmt.Errorf("%w: record %d, shard log at %d", ErrShardSequenceGap, rec.Seq, at)
		}
		walStart := time.Now()
		if _, err := wal.Append(rec.NeedVertices, rec.Updates); err != nil {
			s.met.walErrs.Inc()
			return nil, fmt.Errorf("server: shard write-ahead log append: %w", err)
		}
		s.met.walAppends.Inc()
		child("wal_append", walStart, time.Now())
		// The record is durable under the caller's trace: remember the
		// mapping so the replication stream can extend the trace to replicas
		// tailing this shard's log.
		s.seqTraces.note(rec.Seq, applySC)
	} else if at := s.eng.WALOffset(); rec.Seq != at {
		return nil, fmt.Errorf("%w: record %d, shard at %d", ErrShardSequenceGap, rec.Seq, at)
	}
	applyStart := time.Now()
	body, err := applyRecordCaptured(s.eng, rec, s.cfg.MaxBatch)
	if err != nil {
		if wal != nil {
			// The record is durable but the engine failed mid-apply: the
			// state matches no log position any more. Poison, like the
			// ingest pipeline; a restart replays cleanly.
			wal.poison(fmt.Errorf("server: engine failed after a WAL append, restart to recover: %w", err))
		}
		return nil, err
	}
	child("apply", applyStart, time.Now())
	s.met.applied.Add(int64(len(rec.Updates)))
	s.met.batches.Inc()
	s.shardLast.Store(&ShardLastResponse{Seq: rec.Seq, Body: body})
	s.publishView()
	return body, nil
}

// applyRecordCaptured applies one WAL record to eng — vertex growth, then the
// updates in chunks of at most maxBatch with per-update validation rejections
// skipped, exactly like the ingest pipeline — while capturing every applied
// update's per-worker score deltas through the engine's delta observer. It
// returns the encoded ShardResponse and advances the engine's WAL offset past
// the record. Shared by the live apply path and by crash recovery replaying
// the final logged record (whose response a router retry may still want).
func applyRecordCaptured(eng *engine.Engine, rec WALRecord, maxBatch int) ([]byte, error) {
	if maxBatch < 1 {
		maxBatch = 256
	}
	results := make([]ShardUpdateResult, len(rec.Updates))
	var blobs []ShardUpdateResult
	scratch := incremental.NewFlatDelta()
	eng.SetDeltaObserver(func(_ graph.Update, perWorker []*incremental.FlatDelta) {
		// Fold the worker deltas into one (for the pinned one-worker-per-shard
		// deployment this is an exact copy; with more workers the shard's own
		// reduce uses the same fold, so shard-local scores stay exact while
		// cross-process bit-identity is only guaranteed at one worker).
		scratch.Reset()
		scratch.Reserve(eng.Graph().N())
		for _, d := range perWorker {
			d.Each(scratch.AddVBC, scratch.AddEBC)
		}
		var u ShardUpdateResult
		nv, ne := scratch.Len()
		u.VBC = make([]ShardDeltaVertex, 0, nv)
		u.EBC = make([]ShardDeltaEdge, 0, ne)
		scratch.Each(func(v int, x float64) {
			u.VBC = append(u.VBC, ShardDeltaVertex{V: v, X: x})
		}, func(e graph.Edge, x float64) {
			u.EBC = append(u.EBC, ShardDeltaEdge{E: e, X: x})
		})
		blobs = append(blobs, u)
	})
	defer eng.SetDeltaObserver(nil)
	if err := eng.EnsureVertices(rec.NeedVertices); err != nil {
		return nil, err
	}
	for start := 0; start < len(rec.Updates); start += maxBatch {
		end := min(start+maxBatch, len(rec.Updates))
		i := start
		for i < end {
			applied, err := eng.ApplyBatch(rec.Updates[i:end])
			i += applied
			if err == nil {
				break
			}
			if i >= end || !incremental.IsValidationError(err) ||
				errors.Is(err, incremental.ErrFlushFailed) {
				return nil, err
			}
			results[i] = ShardUpdateResult{Rejected: true, Err: err.Error()}
			i++
		}
	}
	// Match the captured deltas (one per applied update, in stream order)
	// back to their slots.
	bi := 0
	for i := range results {
		if results[i].Rejected {
			continue
		}
		if bi >= len(blobs) {
			return nil, fmt.Errorf("server: shard apply captured %d deltas for %d applied updates", len(blobs), bi+1)
		}
		results[i].VBC, results[i].EBC = blobs[bi].VBC, blobs[bi].EBC
		bi++
	}
	if bi != len(blobs) {
		return nil, fmt.Errorf("server: shard apply captured %d deltas, matched %d", len(blobs), bi)
	}
	eng.SetWALOffset(rec.Seq + 1)
	return EncodeShardResponse(nil, ShardResponse{
		ShardIndex: eng.ShardIndex(),
		ShardCount: eng.ShardCount(),
		Seq:        rec.Seq,
		Updates:    results,
	}), nil
}

// RecoverShardState is the shard flavour of ReplayWAL: it replays the
// uncovered WAL tail into eng and rebuilds the response cache of the final
// logged record, so a router retrying that record after the crash gets the
// original reply instead of a sequence gap. When the snapshot already covers
// the whole log the deltas of the final record cannot be regenerated (they
// need the pre-update state); the copy persisted next to the snapshot
// (shard-last-response.bin, written on every snapshot) fills that gap when
// its sequence still matches. Returns the number of updates replayed and the
// rebuilt cache (nil when the log is empty and nothing was persisted).
func RecoverShardState(w *WAL, eng *engine.Engine, maxBatch int, snapshotDir string) (int, *ShardLastResponse, error) {
	last := w.Seq() // sequence of the NEXT record; last-1 is the final logged one
	replayed := 0
	var cache *ShardLastResponse
	err := w.ReplayFrom(eng.WALOffset(), func(rec WALRecord) error {
		if last > 0 && rec.Seq == last-1 {
			body, err := applyRecordCaptured(eng, rec, maxBatch)
			if err != nil {
				return err
			}
			cache = &ShardLastResponse{Seq: rec.Seq, Body: body}
		} else if err := eng.ReplayRecord(rec.Seq, rec.NeedVertices, rec.Updates, maxBatch); err != nil {
			return err
		}
		replayed += len(rec.Updates)
		return nil
	})
	if err != nil {
		return replayed, nil, err
	}
	eng.SetWALOffset(w.Seq())
	if cache == nil && snapshotDir != "" {
		if persisted, err := LoadShardLastResponse(snapshotDir); err == nil &&
			persisted != nil && last > 0 && persisted.Seq == last-1 {
			cache = persisted
		}
	}
	return replayed, cache, nil
}

// LoadShardLastResponse reads the persisted last-response cache from dir.
// A missing file returns (nil, nil); a corrupt one returns an error (the
// body's trailing checksum is verified by decoding it).
func LoadShardLastResponse(dir string) (*ShardLastResponse, error) {
	body, err := os.ReadFile(filepath.Join(dir, shardLastFileName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	resp, err := DecodeShardResponse(body)
	if err != nil {
		return nil, err
	}
	return &ShardLastResponse{Seq: resp.Seq, Body: body}, nil
}

// saveShardLast persists the cached last response next to the snapshot with
// the same atomic discipline (temp file, fsync, rename, directory fsync).
// Called with at least the read lock held, after a successful snapshot.
func (s *Server) saveShardLast(dir string) error {
	last := s.shardLast.Load()
	if last == nil {
		return nil
	}
	tmp, err := os.CreateTemp(dir, shardLastFileName+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(last.Body); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, shardLastFileName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// handleShardApply is POST /v1/shard/apply: one framed WAL record in, the
// per-update delta response out.
func (s *Server) handleShardApply(w http.ResponseWriter, r *http.Request) {
	if s.Replica() {
		httpError(w, http.StatusPreconditionFailed, errors.New("replicas do not accept shard writes"))
		return
	}
	rec, err := ReadWALRecord(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad shard record: %w", err))
		return
	}
	// The router's traceparent header carries the ingest's trace: the spans
	// recorded for this apply join it, and a retry (which re-sends the same
	// header) lands in the same trace even when served from the cache.
	body, err := s.ApplyShardRecordTraced(rec, obs.TraceFromHeader(r.Header))
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, ErrShardSequenceGap):
			status = http.StatusConflict
		case errors.Is(err, ErrClosed), errors.Is(err, engine.ErrClosed),
			errors.Is(err, ErrIngestHalted), errors.Is(err, ErrWALClosed):
			status = http.StatusServiceUnavailable
		}
		httpError(w, status, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(body)))
	w.Write(body) //nolint:errcheck // client went away; the cache keeps the reply
}

// ShardStatus is the shard's identity and applied position, polled by the
// router for readiness aggregation and catch-up planning (the JSON body of
// GET /v1/shard/status).
type ShardStatus struct {
	ShardIndex     int     `json:"shard_index"`
	ShardCount     int     `json:"shard_count"`
	AppliedSeq     uint64  `json:"applied_sequence"`
	AppliedUpdates int     `json:"applied_updates"`
	Vertices       int     `json:"vertices"`
	Edges          int     `json:"edges"`
	Directed       bool    `json:"directed"`
	Sampled        bool    `json:"sampled"`
	Scale          float64 `json:"scale"`
	Workers        int     `json:"workers"`
	WALSeq         uint64  `json:"wal_sequence"`
	Healthy        bool    `json:"healthy"`
}

// ShardStatus captures the shard's current status (see the type).
func (s *Server) ShardStatus() ShardStatus {
	s.mu.RLock()
	g := s.eng.Graph()
	st := ShardStatus{
		ShardIndex:     s.eng.ShardIndex(),
		ShardCount:     s.eng.ShardCount(),
		AppliedSeq:     s.eng.WALOffset(),
		AppliedUpdates: s.eng.Stats().UpdatesApplied,
		Vertices:       g.N(),
		Edges:          g.M(),
		Directed:       g.Directed(),
		Sampled:        s.eng.Sampled(),
		Scale:          s.eng.Scale(),
		Workers:        s.eng.Workers(),
	}
	s.mu.RUnlock()
	st.Healthy = !s.Replica() && !s.closing.Load()
	if wal := s.getWAL(); wal != nil {
		st.WALSeq = wal.Seq()
		st.Healthy = st.Healthy && wal.Err() == nil
	}
	return st
}

// ShardState decodes one consistent snapshot of the shard's engine state —
// the in-process equivalent of streaming GET /v1/replication/snapshot. The
// state's WALOffset is the sequence it covers.
func (s *Server) ShardState() (*engine.SnapshotState, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var buf bytes.Buffer
	if err := engine.WriteSnapshot(&buf, s.eng); err != nil {
		return nil, err
	}
	return engine.ReadSnapshot(&buf)
}

// ShardWALRecords reads up to max records of the shard's own log starting at
// sequence from, returning them with the log's end sequence — the in-process
// equivalent of GET /v1/replication/wal (no long poll).
func (s *Server) ShardWALRecords(from uint64, max int) ([]WALRecord, uint64, error) {
	wal := s.getWAL()
	if wal == nil {
		return nil, 0, errors.New("server: shard has no write-ahead log")
	}
	return wal.ReadRecords(from, max)
}

// handleShardStatus is GET /v1/shard/status.
func (s *Server) handleShardStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.ShardStatus())
}

func floatBits(x float64) uint64     { return math.Float64bits(x) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
