package server

import (
	"bytes"
	"strconv"
	"strings"
	"sync"
	"time"

	"streambc/internal/obs"
)

// WalTraceMapHeader is the replication response header mapping the streamed
// records' sequences to the trace contexts they were appended under, as
// comma-separated "seq=traceparent" pairs. Records whose trace has aged out
// of the leader's sequence→trace ring are simply absent; the follower applies
// them untraced.
const WalTraceMapHeader = "X-Streambc-Trace-Map"

// Distributed-trace support for the server: per-process span recording for
// the pipeline, the shard apply path and the replica apply path, plus the
// sequence→trace map that lets the replication WAL stream carry each record's
// originating trace to the followers.

// seqTraceEntries is the capacity of the sequence→trace ring: how many recent
// WAL records keep their trace context available for replication serving. A
// follower lagging further than this simply tails untraced records.
const seqTraceEntries = 1024

// seqTraceMap remembers the span context under which recent WAL records were
// appended, keyed by record sequence. It is a fixed ring indexed by seq%N —
// sequences are assigned densely, so the ring holds exactly the last N
// records with no eviction bookkeeping.
type seqTraceMap struct {
	mu      sync.Mutex
	entries [seqTraceEntries]seqTraceEntry
}

type seqTraceEntry struct {
	seq uint64
	sc  obs.SpanContext
	set bool
}

// note records the trace context of record seq.
func (m *seqTraceMap) note(seq uint64, sc obs.SpanContext) {
	if !sc.Valid() {
		return
	}
	m.mu.Lock()
	m.entries[seq%seqTraceEntries] = seqTraceEntry{seq: seq, sc: sc, set: true}
	m.mu.Unlock()
}

// get returns the trace context of record seq, if it is still held.
func (m *seqTraceMap) get(seq uint64) (obs.SpanContext, bool) {
	m.mu.Lock()
	e := m.entries[seq%seqTraceEntries]
	m.mu.Unlock()
	if !e.set || e.seq != seq {
		return obs.SpanContext{}, false
	}
	return e.sc, true
}

// recordPipelineSpans synthesizes the span tree of one applied drain from its
// ingest-trace stage timestamps: a root "ingest" span under the drain's trace
// plus one child per pipeline stage the drain reached. Called by recordTrace,
// so standalone daemons get browsable spans from the same data that feeds the
// stage histograms.
func (s *Server) recordPipelineSpans(tr obs.IngestTrace, sc obs.SpanContext) {
	if !sc.Valid() || tr.EnqueuedAt.IsZero() {
		return
	}
	end := tr.VisibleAt
	for _, t := range []time.Time{tr.AppliedAt, tr.WALDurableAt, tr.EnqueuedAt} {
		if end.IsZero() {
			end = t
		}
	}
	child := func(name string, start, stop time.Time) {
		s.spans.Add(obs.Span{
			TraceID: sc.TraceID, SpanID: obs.NewSpanID(), ParentID: sc.SpanID,
			Component: "server", Name: name, Start: start, End: stop,
		})
	}
	last := tr.EnqueuedAt
	if !tr.WALDurableAt.IsZero() {
		child("wal_append", last, tr.WALDurableAt)
		last = tr.WALDurableAt
	}
	if !tr.AppliedAt.IsZero() {
		child("apply", last, tr.AppliedAt)
		last = tr.AppliedAt
	}
	if !tr.VisibleAt.IsZero() {
		child("publish", last, tr.VisibleAt)
	}
	s.spans.Add(obs.Span{
		TraceID: sc.TraceID, SpanID: sc.SpanID,
		Component: "server", Name: "ingest", Start: tr.EnqueuedAt, End: end,
		Attrs: map[string]string{"updates": strconv.Itoa(tr.Updates)},
		Error: tr.Error,
	})
}

// traceMapHeader renders the WalTraceMapHeader value for one batch of
// records about to be streamed to a follower: the "seq=traceparent" pairs of
// every record whose trace context the sequence→trace ring still holds.
func (s *Server) traceMapHeader(recs []WALRecord) string {
	var b strings.Builder
	for _, rec := range recs {
		sc, ok := s.seqTraces.get(rec.Seq)
		if !ok {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(rec.Seq, 10))
		b.WriteByte('=')
		b.WriteString(sc.Traceparent())
	}
	return b.String()
}

// ParseWALTraceMap parses a WalTraceMapHeader value back into its
// sequence→context map. Malformed pairs are skipped — the trace map is
// advisory; a bad entry must never fail record application.
func ParseWALTraceMap(v string) map[uint64]obs.SpanContext {
	if v == "" {
		return nil
	}
	out := make(map[uint64]obs.SpanContext)
	for _, pair := range strings.Split(v, ",") {
		seqStr, tp, ok := strings.Cut(pair, "=")
		if !ok {
			continue
		}
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			continue
		}
		sc, err := obs.ParseTraceparent(tp)
		if err != nil {
			continue
		}
		out[seq] = sc
	}
	return out
}

// SpansByTrace returns every span this process holds for the given trace,
// oldest first — the per-shard half of the router's trace stitching.
func (s *Server) SpansByTrace(id obs.TraceID) []obs.Span {
	return s.spans.ByTrace(id)
}

// MetricsText renders the server's metrics registry as a Prometheus text
// exposition — the in-process equivalent of scraping GET /metrics, used by
// LocalShard connections in the router's federation plane.
func (s *Server) MetricsText() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := s.met.reg.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ApplyReplicatedTraced is ApplyReplicated with the originating trace context
// attached (shipped by the leader in the WAL stream's trace map): the replica
// records a "replica_apply" span under the ingest's trace, extending it to
// replica visibility. The replication tailer calls this in preference to
// ApplyReplicated when the applier supports it.
func (s *Server) ApplyReplicatedTraced(rec WALRecord, sc obs.SpanContext) error {
	if !sc.Valid() {
		return s.ApplyReplicated(rec)
	}
	start := time.Now()
	err := s.ApplyReplicated(rec)
	sp := obs.Span{
		TraceID: sc.TraceID, SpanID: obs.NewSpanID(), ParentID: sc.SpanID,
		Component: "replica", Name: "replica_apply", Start: start, End: time.Now(),
		Attrs: map[string]string{
			"seq":     strconv.FormatUint(rec.Seq, 10),
			"updates": strconv.Itoa(len(rec.Updates)),
		},
	}
	if err != nil {
		sp.Error = err.Error()
	}
	s.spans.Add(sp)
	return err
}
