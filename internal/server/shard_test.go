package server

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"streambc/internal/engine"
	"streambc/internal/graph"
)

// startShardServer builds a one-worker shard server over a WAL in a temp
// directory, mirroring what `bcserved -shard idx/cnt` assembles.
func startShardServer(t *testing.T, g *graph.Graph, idx, cnt int) (*Server, string) {
	t.Helper()
	dir := t.TempDir()
	eng, err := engine.New(g, engine.Config{Workers: 1, ShardIndex: idx, ShardCount: cnt})
	if err != nil {
		t.Fatal(err)
	}
	wal := testWAL(t, WALConfig{Dir: filepath.Join(dir, "wal")}, 0)
	srv := New(eng, Config{WAL: wal, SnapshotDir: dir})
	srv.Start()
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	return srv, dir
}

func shardRecord(seq uint64, needVertices int, upds ...graph.Update) WALRecord {
	return WALRecord{Seq: seq, NeedVertices: needVertices, Updates: upds}
}

func TestShardResponseCodecRoundTrip(t *testing.T) {
	resp := ShardResponse{
		ShardIndex: 2,
		ShardCount: 3,
		Seq:        41,
		Updates: []ShardUpdateResult{
			{
				VBC: []ShardDeltaVertex{{V: 0, X: 1.25}, {V: 7, X: -3.5e-9}},
				EBC: []ShardDeltaEdge{{E: graph.Edge{U: 1, V: 2}, X: 0.75}},
			},
			{Rejected: true, Err: "self loop"},
			{}, // applied, empty delta (no owned source moved)
		},
	}
	body := EncodeShardResponse(nil, resp)
	got, err := DecodeShardResponse(body)
	if err != nil {
		t.Fatalf("DecodeShardResponse: %v", err)
	}
	if got.ShardIndex != 2 || got.ShardCount != 3 || got.Seq != 41 || len(got.Updates) != 3 {
		t.Fatalf("decoded header = %+v", got)
	}
	if len(got.Updates[0].VBC) != 2 || got.Updates[0].VBC[1].X != -3.5e-9 ||
		len(got.Updates[0].EBC) != 1 || got.Updates[0].EBC[0].E != (graph.Edge{U: 1, V: 2}) {
		t.Fatalf("decoded deltas = %+v", got.Updates[0])
	}
	if !got.Updates[1].Rejected || got.Updates[1].Err != "self loop" {
		t.Fatalf("decoded rejection = %+v", got.Updates[1])
	}
	if got.Updates[2].Rejected || len(got.Updates[2].VBC) != 0 {
		t.Fatalf("decoded empty delta = %+v", got.Updates[2])
	}

	// Every corruption is detected: truncation, a flipped bit, bad magic.
	if _, err := DecodeShardResponse(body[:len(body)-3]); !errors.Is(err, ErrBadShardResponse) {
		t.Fatalf("truncated body: err = %v", err)
	}
	for _, i := range []int{0, 5, len(body) / 2, len(body) - 1} {
		flipped := append([]byte(nil), body...)
		flipped[i] ^= 0x10
		if _, err := DecodeShardResponse(flipped); !errors.Is(err, ErrBadShardResponse) {
			t.Fatalf("bit flip at %d: err = %v", i, err)
		}
	}
	if _, err := DecodeShardResponse([]byte("no")); !errors.Is(err, ErrBadShardResponse) {
		t.Fatalf("short body: err = %v", err)
	}
}

func TestApplyShardRecordSequenceAndIdempotence(t *testing.T) {
	g := testGraph(t, 12, 30, 1)
	srv, _ := startShardServer(t, g, 0, 2)

	first, err := srv.ApplyShardRecord(shardRecord(0, 0, graph.Update{U: 0, V: 13, Remove: false}, graph.Update{U: 13, V: 5}))
	if err != nil {
		t.Fatalf("ApplyShardRecord(0): %v", err)
	}
	firstResp, err := DecodeShardResponse(first)
	if err != nil {
		t.Fatalf("decoding first response: %v", err)
	}
	if firstResp.Seq != 0 || firstResp.ShardIndex != 0 || firstResp.ShardCount != 2 {
		t.Fatalf("first response header = %+v", firstResp)
	}
	if len(firstResp.Updates) != 2 {
		t.Fatalf("first response carries %d updates, want 2", len(firstResp.Updates))
	}
	// U=0 V=13 grows the graph past NeedVertices=0; the engine grows on
	// demand, so the update still applies.
	if firstResp.Updates[0].Rejected || firstResp.Updates[1].Rejected {
		t.Fatalf("updates rejected: %+v", firstResp.Updates)
	}

	applied := srv.ShardStatus().AppliedUpdates

	// Retrying the same sequence returns the identical bytes without
	// re-applying anything.
	again, err := srv.ApplyShardRecord(shardRecord(0, 0, graph.Update{U: 0, V: 13}, graph.Update{U: 13, V: 5}))
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	if !bytes.Equal(first, again) {
		t.Fatal("retried record returned different bytes")
	}
	if got := srv.ShardStatus().AppliedUpdates; got != applied {
		t.Fatalf("retry re-applied updates: %d -> %d", applied, got)
	}

	// A gap in either direction is refused.
	if _, err := srv.ApplyShardRecord(shardRecord(5, 0, graph.Update{U: 1, V: 2})); !errors.Is(err, ErrShardSequenceGap) {
		t.Fatalf("future record: err = %v, want ErrShardSequenceGap", err)
	}

	// The next sequence continues, including rejections in the middle.
	second, err := srv.ApplyShardRecord(shardRecord(1, 0,
		graph.Update{U: 4, V: 4},                 // self loop: rejected
		graph.Update{U: 9, V: 10, Remove: false}, // fine
	))
	if err != nil {
		t.Fatalf("ApplyShardRecord(1): %v", err)
	}
	secondResp, err := DecodeShardResponse(second)
	if err != nil {
		t.Fatalf("decoding second response: %v", err)
	}
	if !secondResp.Updates[0].Rejected || secondResp.Updates[0].Err == "" {
		t.Fatalf("self loop not rejected: %+v", secondResp.Updates[0])
	}
	if secondResp.Updates[1].Rejected {
		t.Fatalf("valid update rejected: %+v", secondResp.Updates[1])
	}
	if st := srv.ShardStatus(); st.AppliedSeq != 2 || st.WALSeq != 2 {
		t.Fatalf("status after two records = %+v", st)
	}
}

func TestShardApplyHTTP(t *testing.T) {
	g := testGraph(t, 10, 24, 2)
	srv, _ := startShardServer(t, g, 1, 3)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	rec := shardRecord(0, 0, graph.Update{U: 0, V: 1, Remove: false})
	post := func(rec WALRecord) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/shard/apply", "application/octet-stream",
			bytes.NewReader(EncodeWALRecord(nil, rec)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, body
	}
	resp, body := post(rec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/shard/apply: %d %s", resp.StatusCode, body)
	}
	decoded, err := DecodeShardResponse(body)
	if err != nil {
		t.Fatalf("decoding HTTP response: %v", err)
	}
	if decoded.ShardIndex != 1 || decoded.ShardCount != 3 || decoded.Seq != 0 {
		t.Fatalf("HTTP response header = %+v", decoded)
	}

	// A sequence gap maps to 409.
	if resp, body := post(shardRecord(7, 0, graph.Update{U: 0, V: 2})); resp.StatusCode != http.StatusConflict {
		t.Fatalf("gap: %d %s, want 409", resp.StatusCode, body)
	}

	// Garbage maps to 400.
	gresp, err := http.Post(ts.URL+"/v1/shard/apply", "application/octet-stream",
		bytes.NewReader([]byte("not a record")))
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage record: %d, want 400", gresp.StatusCode)
	}

	// The status endpoint reports the identity.
	var st ShardStatus
	getJSON(t, ts.URL+"/v1/shard/status", &st)
	if st.ShardIndex != 1 || st.ShardCount != 3 || st.AppliedSeq != 1 || !st.Healthy {
		t.Fatalf("GET /v1/shard/status = %+v", st)
	}
}

func TestShardApplyRefusedOnReplica(t *testing.T) {
	g := testGraph(t, 8, 16, 3)
	eng, err := engine.New(g, engine.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{Replica: true})
	srv.Start()
	t.Cleanup(func() {
		srv.Close()
		eng.Close()
	})
	if _, err := srv.ApplyShardRecord(shardRecord(0, 0, graph.Update{U: 0, V: 1})); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("replica apply: err = %v, want ErrReadOnlyReplica", err)
	}
}

// TestShardRecoveryRebuildsLastResponse crashes a shard (by abandoning the
// server without closing the engine state cleanly) and proves the WAL replay
// rebuilds byte-identical state AND the cached reply of the final record.
func TestShardRecoveryRebuildsLastResponse(t *testing.T) {
	g := testGraph(t, 14, 36, 4)
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")

	eng, err := engine.New(g.Clone(), engine.Config{Workers: 1, ShardIndex: 0, ShardCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	wal, err := OpenWAL(WALConfig{Dir: walDir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Config{WAL: wal})
	srv.Start()
	var last []byte
	for seq := uint64(0); seq < 3; seq++ {
		u := graph.Update{U: int(seq), V: int(seq) + 5}
		last, err = srv.ApplyShardRecord(shardRecord(seq, 0, u))
		if err != nil {
			t.Fatalf("ApplyShardRecord(%d): %v", seq, err)
		}
	}
	wantVBC := append([]float64(nil), eng.VBC()...)
	// Simulate the crash: drop the server without Close (the WAL file is
	// already durable) and recover into a fresh engine from scratch.
	wal.Close()

	eng2, err := engine.New(g.Clone(), engine.Config{Workers: 1, ShardIndex: 0, ShardCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	wal2 := testWAL(t, WALConfig{Dir: walDir}, 0)
	replayed, cache, err := RecoverShardState(wal2, eng2, 0, dir)
	if err != nil {
		t.Fatalf("RecoverShardState: %v", err)
	}
	if replayed != 3 {
		t.Fatalf("replayed %d updates, want 3", replayed)
	}
	if cache == nil || cache.Seq != 2 {
		t.Fatalf("cache = %+v, want sequence 2", cache)
	}
	if !bytes.Equal(cache.Body, last) {
		t.Fatal("recovered last-response bytes differ from the original reply")
	}
	if eng2.WALOffset() != 3 {
		t.Fatalf("recovered WAL offset = %d, want 3", eng2.WALOffset())
	}
	for v := range wantVBC {
		if eng2.VBC()[v] != wantVBC[v] {
			t.Fatalf("recovered VBC[%d] = %g, want %g", v, eng2.VBC()[v], wantVBC[v])
		}
	}

	// A server seeded with the rebuilt cache answers the retry from it.
	srv2 := New(eng2, Config{WAL: wal2, ShardLast: cache})
	srv2.Start()
	defer srv2.Close()
	body, err := srv2.ApplyShardRecord(shardRecord(2, 0, graph.Update{U: 2, V: 7}))
	if err != nil {
		t.Fatalf("retry after recovery: %v", err)
	}
	if !bytes.Equal(body, last) {
		t.Fatal("retry after recovery returned different bytes")
	}
	_ = srv
}

// TestShardLastResponsePersistedWithSnapshot covers the no-replay crash
// window: when the snapshot covers the whole log, the persisted
// shard-last-response.bin is the only source of the final record's reply.
func TestShardLastResponsePersistedWithSnapshot(t *testing.T) {
	g := testGraph(t, 12, 28, 5)
	srv, dir := startShardServer(t, g, 0, 2)
	var last []byte
	var err error
	for seq := uint64(0); seq < 2; seq++ {
		last, err = srv.ApplyShardRecord(shardRecord(seq, 0, graph.Update{U: int(seq), V: int(seq) + 3}))
		if err != nil {
			t.Fatalf("ApplyShardRecord(%d): %v", seq, err)
		}
	}
	if _, err := srv.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	loaded, err := LoadShardLastResponse(dir)
	if err != nil {
		t.Fatalf("LoadShardLastResponse: %v", err)
	}
	if loaded == nil || loaded.Seq != 1 || !bytes.Equal(loaded.Body, last) {
		t.Fatalf("persisted cache = %+v, want the sequence-1 reply", loaded)
	}

	// A corrupt persisted file is refused, not trusted.
	path := filepath.Join(dir, shardLastFileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardLastResponse(dir); err == nil {
		t.Fatal("corrupt persisted cache accepted")
	}

	// A missing file is not an error (fresh shard).
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if loaded, err := LoadShardLastResponse(dir); err != nil || loaded != nil {
		t.Fatalf("missing cache: %+v, %v", loaded, err)
	}
}

func TestShardStateAndWALRecords(t *testing.T) {
	g := testGraph(t, 10, 22, 6)
	srv, _ := startShardServer(t, g, 1, 2)
	for seq := uint64(0); seq < 3; seq++ {
		if _, err := srv.ApplyShardRecord(shardRecord(seq, 0, graph.Update{U: int(seq), V: int(seq) + 4})); err != nil {
			t.Fatalf("ApplyShardRecord(%d): %v", seq, err)
		}
	}
	st, err := srv.ShardState()
	if err != nil {
		t.Fatalf("ShardState: %v", err)
	}
	if st.WALOffset != 3 || st.ShardIndex != 1 || st.ShardCount != 2 {
		t.Fatalf("state = offset %d shard %d/%d, want 3 and 1/2", st.WALOffset, st.ShardIndex, st.ShardCount)
	}
	recs, end, err := srv.ShardWALRecords(1, 10)
	if err != nil {
		t.Fatalf("ShardWALRecords: %v", err)
	}
	if len(recs) != 2 || recs[0].Seq != 1 || end != 3 {
		t.Fatalf("records from 1 = %d recs (first %d), end %d", len(recs), recs[0].Seq, end)
	}
}
