package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"streambc/internal/graph"
)

// mkItems wraps updates as queue items sharing one batch, returning both.
func mkItems(upds ...graph.Update) ([]item, *Batch) {
	b := newBatch()
	items := make([]item, len(upds))
	for i, u := range upds {
		items[i] = item{upd: u, batch: b}
	}
	return items, b
}

func updatesOf(items []item) []graph.Update {
	out := make([]graph.Update, 0, len(items))
	for _, it := range items {
		out = append(out, it.upd)
	}
	return out
}

func assertUpdates(t *testing.T, got []item, want ...graph.Update) {
	t.Helper()
	g := updatesOf(got)
	if len(g) != len(want) {
		t.Fatalf("coalesce kept %v, want %v", g, want)
	}
	for i := range g {
		if g[i] != want[i] {
			t.Fatalf("coalesce kept %v, want %v", g, want)
		}
	}
}

func TestCoalesceAddRemoveCancels(t *testing.T) {
	items, b := mkItems(
		graph.Addition(0, 1),
		graph.Addition(2, 3),
		graph.Removal(0, 1),
	)
	kept, dropped, _ := coalesce(items, false)
	assertUpdates(t, kept, graph.Addition(2, 3))
	if dropped != 2 || b.Coalesced() != 2 {
		t.Fatalf("dropped = %d, batch coalesced = %d, want 2 and 2", dropped, b.Coalesced())
	}
}

func TestCoalesceRemoveThenAddBothSurvive(t *testing.T) {
	// A remove followed by an add must NOT cancel: if the edge does not
	// exist the remove must be rejected like sequential application would,
	// not silently swallow the (valid) add of another client in the queue.
	items, _ := mkItems(graph.Removal(4, 5), graph.Addition(4, 5))
	kept, dropped, _ := coalesce(items, false)
	assertUpdates(t, kept, graph.Removal(4, 5), graph.Addition(4, 5))
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
}

func TestCoalesceDuplicatesCollapse(t *testing.T) {
	items, b := mkItems(
		graph.Addition(0, 1),
		graph.Addition(0, 1),
		graph.Removal(2, 3),
		graph.Removal(2, 3),
		graph.Removal(2, 3),
	)
	kept, dropped, _ := coalesce(items, false)
	assertUpdates(t, kept, graph.Addition(0, 1), graph.Removal(2, 3))
	if dropped != 3 || b.Coalesced() != 3 {
		t.Fatalf("dropped = %d, batch coalesced = %d, want 3 and 3", dropped, b.Coalesced())
	}
}

func TestCoalesceCancelThenFreshUpdateSurvives(t *testing.T) {
	// add, remove, add on the same edge: the pair cancels, the final add is
	// a fresh pending update and must survive.
	items, _ := mkItems(graph.Addition(0, 1), graph.Removal(0, 1), graph.Addition(0, 1))
	kept, dropped, _ := coalesce(items, false)
	assertUpdates(t, kept, graph.Addition(0, 1))
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
}

func TestCoalescePreservesOrderOfSurvivors(t *testing.T) {
	items, _ := mkItems(
		graph.Addition(0, 1),
		graph.Addition(2, 3),
		graph.Removal(2, 3), // cancels with the previous
		graph.Addition(4, 5),
		graph.Addition(0, 1), // duplicate, collapses
		graph.Removal(6, 7),
		graph.Addition(8, 9),
	)
	kept, _, _ := coalesce(items, false)
	assertUpdates(t, kept,
		graph.Addition(0, 1),
		graph.Addition(4, 5),
		graph.Removal(6, 7),
		graph.Addition(8, 9),
	)
}

func TestCoalesceUndirectedTreatsOrientationsAsOneEdge(t *testing.T) {
	// add(0,1) then remove(1,0): one undirected edge, so the pair cancels.
	items, _ := mkItems(graph.Addition(0, 1), graph.Removal(1, 0))
	kept, dropped, _ := coalesce(items, false)
	assertUpdates(t, kept)
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2", dropped)
	}
}

func TestCoalesceDirectedKeepsOrientationsDistinct(t *testing.T) {
	items, _ := mkItems(graph.Addition(0, 1), graph.Removal(1, 0))
	kept, dropped, _ := coalesce(items, true)
	assertUpdates(t, kept, graph.Addition(0, 1), graph.Removal(1, 0))
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
}

func TestCoalescePassesBarriersThrough(t *testing.T) {
	b := newBatch()
	items := []item{
		{upd: graph.Addition(0, 1), batch: b},
		{barrier: true, batch: newBatch()},
		{upd: graph.Removal(0, 1), batch: b},
	}
	kept, dropped, _ := coalesce(items, false)
	if dropped != 2 || len(kept) != 1 || !kept[0].barrier {
		t.Fatalf("kept = %v (dropped %d), want only the barrier", kept, dropped)
	}
}

// applyRecorder collects the updates a pipeline hands to its apply callback.
type applyRecorder struct {
	applied [][]graph.Update
}

func (a *applyRecorder) apply(items []item, _ int) error {
	batch := make([]graph.Update, 0, len(items))
	for _, it := range items {
		if !it.barrier {
			batch = append(batch, it.upd)
		}
	}
	a.applied = append(a.applied, batch)
	return nil
}

func TestPipelineDrainsAndCompletesBatches(t *testing.T) {
	rec := &applyRecorder{}
	p := newPipeline(false, 0, rec.apply, nil)
	go p.run()

	b1, err := p.enqueue([]graph.Update{graph.Addition(0, 1), graph.Addition(2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b1.Wait(ctx); err != nil {
		t.Fatalf("batch did not complete: %v", err)
	}
	p.close()

	total := 0
	for _, batch := range rec.applied {
		total += len(batch)
	}
	if total != 2 {
		t.Fatalf("applied %d updates, want 2 (%v)", total, rec.applied)
	}
}

func TestPipelineQueueFull(t *testing.T) {
	p := newPipeline(false, 2, func([]item, int) error { return nil }, nil)
	// Not started: the queue cannot drain, so once it is at capacity any
	// further batch must overflow.
	if _, err := p.enqueue([]graph.Update{graph.Addition(0, 1), graph.Addition(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.enqueue([]graph.Update{graph.Addition(2, 3)}); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	go p.run()
	p.close()
}

func TestPipelineAdmitsOversizedBatchWhenQueueHasRoom(t *testing.T) {
	// A batch larger than maxQueue must be admitted while the queue is below
	// capacity — rejecting it would make it unservable forever, since no
	// amount of draining could ever make it fit.
	p := newPipeline(false, 2, func([]item, int) error { return nil }, nil)
	if _, err := p.enqueue([]graph.Update{
		graph.Addition(0, 1), graph.Addition(1, 2), graph.Addition(2, 3), graph.Addition(3, 4),
	}); err != nil {
		t.Fatalf("oversized batch on empty queue: %v", err)
	}
	if _, err := p.enqueue([]graph.Update{graph.Addition(4, 5)}); err != ErrQueueFull {
		t.Fatalf("err = %v, want ErrQueueFull once at capacity", err)
	}
	go p.run()
	p.close()
}

func TestCoalesceReportsNeededVertices(t *testing.T) {
	// The cancelled pair references vertices 8 and 9: sequential application
	// would have grown the graph to 10 vertices, so the fold must report
	// that. Self loops and removals must not contribute.
	items, _ := mkItems(
		graph.Addition(8, 9),
		graph.Removal(8, 9),
		graph.Addition(3, 3),  // self loop: engine rejects before growing
		graph.Removal(40, 41), // removals never grow the graph
	)
	kept, _, needVertices := coalesce(items, false)
	assertUpdates(t, kept, graph.Addition(3, 3), graph.Removal(40, 41))
	if needVertices != 10 {
		t.Fatalf("needVertices = %d, want 10", needVertices)
	}
}

func TestPipelineReportsDrainWideError(t *testing.T) {
	// An infrastructure error returned by the apply callback must reach
	// every batch of the drain — including one whose updates were all
	// coalesced away and therefore never passed to the callback.
	wantErr := errors.New("store grow failed")
	p := newPipeline(false, 0, func([]item, int) error { return wantErr }, nil)
	go p.run()
	defer p.close()

	b, err := p.enqueue([]graph.Update{graph.Addition(8, 9), graph.Removal(8, 9)})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if errs := b.Errs(); len(errs) != 1 || !errors.Is(errs[0], wantErr) {
		t.Fatalf("batch errors = %v, want exactly [%v]", errs, wantErr)
	}
}

func TestPipelineEnqueueAfterClose(t *testing.T) {
	p := newPipeline(false, 0, func([]item, int) error { return nil }, nil)
	go p.run()
	p.close()
	if _, err := p.enqueue([]graph.Update{graph.Addition(0, 1)}); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}
