package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"streambc/internal/bc"
	"streambc/internal/engine"
	"streambc/internal/graph"
)

func testWAL(t *testing.T, cfg WALConfig, base uint64) *WAL {
	t.Helper()
	w, err := OpenWAL(cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func collectRecords(t *testing.T, w *WAL, from uint64) []WALRecord {
	t.Helper()
	var recs []WALRecord
	if err := w.ReplayFrom(from, func(rec WALRecord) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestWALAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	records := []WALRecord{
		{Seq: 0, NeedVertices: 5, Updates: []graph.Update{graph.Addition(0, 4), graph.Addition(1, 2)}},
		{Seq: 1, NeedVertices: 0, Updates: []graph.Update{graph.Removal(0, 4)}},
		{Seq: 2, NeedVertices: 9, Updates: nil}, // a fully coalesced drain that still grows the graph
		{Seq: 3, NeedVertices: 0, Updates: []graph.Update{{U: 3, V: 7, Time: 1.25}}},
	}
	w := testWAL(t, WALConfig{Dir: dir}, 0)
	for _, rec := range records {
		seq, err := w.Append(rec.NeedVertices, rec.Updates)
		if err != nil {
			t.Fatal(err)
		}
		if seq != rec.Seq {
			t.Fatalf("appended at sequence %d, want %d", seq, rec.Seq)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2 := testWAL(t, WALConfig{Dir: dir}, 0)
	if got := w2.Seq(); got != 4 {
		t.Fatalf("reopened at sequence %d, want 4", got)
	}
	got := collectRecords(t, w2, 0)
	if !reflect.DeepEqual(got, records) {
		t.Fatalf("replayed records:\n  got  %v\n  want %v", got, records)
	}
	if tail := collectRecords(t, w2, 2); !reflect.DeepEqual(tail, records[2:]) {
		t.Fatalf("tail replay: got %v, want %v", tail, records[2:])
	}
	if end := collectRecords(t, w2, 4); len(end) != 0 {
		t.Fatalf("replay from the end returned %d records", len(end))
	}
	if err := w2.ReplayFrom(5, func(WALRecord) error { return nil }); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("replay past the end: got %v, want ErrBadWAL", err)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	for _, tc := range []struct {
		name     string
		mutilate func(t *testing.T, path string)
	}{
		{"truncated mid-record", func(t *testing.T, path string) {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, info.Size()-3); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupted checksum", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			b[len(b)-1] ^= 0xff
			if err := os.WriteFile(path, b, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			w := testWAL(t, WALConfig{Dir: dir}, 0)
			for i := 0; i < 3; i++ {
				if _, err := w.Append(0, []graph.Update{graph.Addition(i, i+1)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			segs, err := listSegments(dir)
			if err != nil || len(segs) != 1 {
				t.Fatalf("segments: %v, %v", segs, err)
			}
			tc.mutilate(t, segs[0].path)

			w2 := testWAL(t, WALConfig{Dir: dir}, 0)
			if got := w2.Seq(); got != 2 {
				t.Fatalf("reopened at sequence %d, want 2 (torn record dropped)", got)
			}
			// The log keeps working after truncation: the dropped sequence
			// number is reused by the next append.
			if seq, err := w2.Append(0, []graph.Update{graph.Addition(9, 10)}); err != nil || seq != 2 {
				t.Fatalf("append after truncation: seq %d, err %v", seq, err)
			}
			recs := collectRecords(t, w2, 0)
			if len(recs) != 3 || recs[2].Updates[0] != graph.Addition(9, 10) {
				t.Fatalf("replay after truncation: %v", recs)
			}
		})
	}
}

// TestWALCorruptionBeforeTailRejected distinguishes corruption from a torn
// tail: a bad record with intact records after it — even inside the final
// segment — is damage to acknowledged history, and the log must refuse to
// open instead of silently truncating the records that follow.
func TestWALCorruptionBeforeTailRejected(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, WALConfig{Dir: dir}, 0)
	for i := 0; i < 3; i++ {
		if _, err := w.Append(0, []graph.Update{graph.Addition(i, i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v, %v", segs, err)
	}
	b, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the first record's payload: the final record stays
	// intact, so this cannot be a torn append.
	b[12] ^= 0xff
	if err := os.WriteFile(segs[0].path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(WALConfig{Dir: dir}, 0); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("open with corrupted non-final record: got %v, want ErrBadWAL", err)
	}
}

func TestWALCorruptionInNonFinalSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	// Tiny rotation threshold: every record starts a new segment.
	w := testWAL(t, WALConfig{Dir: dir, SegmentBytes: 16}, 0)
	for i := 0; i < 3; i++ {
		if _, err := w.Append(0, []graph.Update{graph.Addition(i, i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want >= 2 segments, got %v (%v)", segs, err)
	}
	b, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(segs[0].path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(WALConfig{Dir: dir, SegmentBytes: 16}, 0); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("open with corrupted middle segment: got %v, want ErrBadWAL", err)
	}
}

func TestWALStaleLogRejected(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, WALConfig{Dir: dir}, 0)
	if _, err := w.Append(0, []graph.Update{graph.Addition(0, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// A snapshot claiming to cover sequence 5 cannot be recovered with a log
	// that ends at 1.
	if _, err := OpenWAL(WALConfig{Dir: dir}, 5); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("open stale log: got %v, want ErrBadWAL", err)
	}
}

func TestWALRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, WALConfig{Dir: dir, SegmentBytes: 64}, 0)
	for i := 0; i < 20; i++ {
		if _, err := w.Append(0, []graph.Update{graph.Addition(i, i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Segments() < 3 {
		t.Fatalf("want >= 3 segments after 20 appends at 64-byte rotation, got %d", w.Segments())
	}
	before := w.Bytes()
	if err := w.TruncateThrough(10); err != nil {
		t.Fatal(err)
	}
	if w.Bytes() >= before {
		t.Fatalf("truncation did not shrink the log (%d -> %d bytes)", before, w.Bytes())
	}
	// Everything from sequence 10 on must still replay.
	recs := collectRecords(t, w, 10)
	if len(recs) != 10 || recs[0].Seq != 10 {
		t.Fatalf("replay after truncation: %d records, first %v", len(recs), recs[0])
	}
	// Replaying a deleted prefix is an explicit error, not silence.
	if err := w.ReplayFrom(0, func(WALRecord) error { return nil }); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("replay of deleted prefix: got %v, want ErrBadWAL", err)
	}
	// A reopen continues seamlessly after truncation.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := testWAL(t, WALConfig{Dir: dir, SegmentBytes: 64}, 0)
	if got := w2.Seq(); got != 20 {
		t.Fatalf("reopened at sequence %d, want 20", got)
	}
}

// TestWALReplayFromSegmentBoundaries pins the follower catch-up path:
// ReplayFrom starting exactly at a segment-rotation boundary, mid-segment,
// and after the leader has truncated covered segments.
func TestWALReplayFromSegmentBoundaries(t *testing.T) {
	dir := t.TempDir()
	const n = 24
	w := testWAL(t, WALConfig{Dir: dir, SegmentBytes: 64}, 0)
	for i := 0; i < n; i++ {
		if _, err := w.Append(i+2, []graph.Update{graph.Addition(i, i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >= 3 segments, got %d (%v)", len(segs), err)
	}

	check := func(what string, from uint64) {
		t.Helper()
		recs := collectRecords(t, w, from)
		if len(recs) != n-int(from) {
			t.Fatalf("%s: replay from %d returned %d records, want %d", what, from, len(recs), n-int(from))
		}
		for i, rec := range recs {
			if want := from + uint64(i); rec.Seq != want {
				t.Fatalf("%s: record %d has sequence %d, want %d", what, i, rec.Seq, want)
			}
			if rec.NeedVertices != int(rec.Seq)+2 {
				t.Fatalf("%s: record %d vertex requirement %d, want %d", what, i, rec.NeedVertices, rec.Seq+2)
			}
		}
	}
	// Exactly at each rotation boundary (the first record of every segment).
	for _, seg := range segs {
		check("rotation boundary", seg.start)
	}
	// Mid-segment: one past each boundary (and one before the next).
	for i, seg := range segs {
		if i < len(segs)-1 && seg.start+1 < segs[i+1].start {
			check("mid-segment", seg.start+1)
		}
	}

	// Truncate as a snapshot covering a mid-log sequence would, then resume:
	// replay from the truncation point, from the new oldest boundary, and —
	// the error path followers hit — from below the retained range.
	covered := segs[2].start
	if err := w.TruncateThrough(covered); err != nil {
		t.Fatal(err)
	}
	if got := w.OldestSeq(); got != covered {
		t.Fatalf("oldest retained %d after truncation, want %d", got, covered)
	}
	check("after truncation, at boundary", covered)
	check("after truncation, mid-segment", covered+1)
	err = w.ReplayFrom(covered-1, func(WALRecord) error { return nil })
	if !errors.Is(err, ErrWALTruncated) || !errors.Is(err, ErrBadWAL) {
		t.Fatalf("replay below retention: %v, want ErrWALTruncated (wrapping ErrBadWAL)", err)
	}

	// A reopen after truncation resumes the same picture.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := testWAL(t, WALConfig{Dir: dir, SegmentBytes: 64}, covered)
	check2 := collectRecords(t, w2, covered)
	if len(check2) != n-int(covered) {
		t.Fatalf("replay after reopen: %d records, want %d", len(check2), n-int(covered))
	}
}

// TestWALReadRecordsLive covers the replication read path: bounded reads at
// arbitrary positions while appends are in flight, the max cap, and the
// truncation/past-end error contract.
func TestWALReadRecordsLive(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, WALConfig{Dir: dir, SegmentBytes: 64}, 0)
	for i := 0; i < 10; i++ {
		if _, err := w.Append(0, []graph.Update{graph.Addition(i, i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	recs, end, err := w.ReadRecords(4, 3)
	if err != nil || end != 10 || len(recs) != 3 || recs[0].Seq != 4 || recs[2].Seq != 6 {
		t.Fatalf("ReadRecords(4,3) = %v, %d, %v", recs, end, err)
	}
	if recs, end, err = w.ReadRecords(10, 5); err != nil || end != 10 || len(recs) != 0 {
		t.Fatalf("ReadRecords at the live edge = %v, %d, %v", recs, end, err)
	}
	if _, _, err = w.ReadRecords(11, 1); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("ReadRecords past the end: %v, want ErrBadWAL", err)
	}
	if err := w.TruncateThrough(6); err != nil {
		t.Fatal(err)
	}
	if _, _, err = w.ReadRecords(0, 1); !errors.Is(err, ErrWALTruncated) {
		t.Fatalf("ReadRecords below retention: %v, want ErrWALTruncated", err)
	}

	// Reads interleaved with appends: every batch read must be a gapless
	// prefix-consistent slice (bounded by the capture-time end).
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		defer close(done)
		for from := uint64(6); ; {
			select {
			case <-stop:
				return
			default:
			}
			recs, _, err := w.ReadRecords(from, 4)
			if err != nil {
				done <- err
				return
			}
			for i, rec := range recs {
				if rec.Seq != from+uint64(i) {
					done <- fmt.Errorf("gap: record %d at position %d (from %d)", rec.Seq, i, from)
					return
				}
			}
			from += uint64(len(recs))
		}
	}()
	for i := 10; i < 60; i++ {
		if _, err := w.Append(0, []graph.Update{graph.Addition(i, i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestWALReadRecordsDurableHorizon: a record must never reach a follower
// before it is durable on the leader — a crash-restart would otherwise
// leave the follower ahead of the recovered log, permanently diverged.
// Under an interval fsync policy ReadRecords therefore stops at the synced
// horizon, and serves the tail only once a flush has covered it.
func TestWALReadRecordsDurableHorizon(t *testing.T) {
	// An interval so long it never fires during the test: flushes happen
	// only when the test calls Sync() itself.
	w := testWAL(t, WALConfig{Dir: t.TempDir(), Mode: FsyncInterval, Interval: time.Hour}, 0)
	for i := 0; i < 3; i++ {
		if _, err := w.Append(0, []graph.Update{graph.Addition(i, i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 5; i++ {
		if _, err := w.Append(0, []graph.Update{graph.Addition(i, i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.SyncedSeq(); got != 3 {
		t.Fatalf("synced horizon %d, want 3", got)
	}
	recs, end, err := w.ReadRecords(0, 100)
	if err != nil || end != 3 || len(recs) != 3 {
		t.Fatalf("ReadRecords below horizon: %d records, end %d, err %v (want 3, 3, nil)", len(recs), end, err)
	}
	// At the durable edge with unsynced records beyond: empty, not an error.
	if recs, end, err = w.ReadRecords(3, 100); err != nil || end != 3 || len(recs) != 0 {
		t.Fatalf("ReadRecords at horizon: %d records, end %d, err %v (want 0, 3, nil)", len(recs), end, err)
	}
	notify := w.AppendNotify()
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-notify:
	case <-time.After(time.Second):
		t.Fatal("sync advancing the horizon did not wake live-edge waiters")
	}
	if recs, end, err = w.ReadRecords(3, 100); err != nil || end != 5 || len(recs) != 2 {
		t.Fatalf("ReadRecords after flush: %d records, end %d, err %v (want 2, 5, nil)", len(recs), end, err)
	}
}

// TestWALAppendNotify: live-edge waiters wake on the next append.
func TestWALAppendNotify(t *testing.T) {
	w := testWAL(t, WALConfig{Dir: t.TempDir()}, 0)
	ch := w.AppendNotify()
	select {
	case <-ch:
		t.Fatal("notify channel closed before any append")
	default:
	}
	if _, err := w.Append(0, []graph.Update{graph.Addition(0, 1)}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("notify channel not closed by the append")
	}
}

// TestWALOpenFreshAtBase: AllowFresh legitimises a brand-new log at a
// nonzero base (the promoted-follower case); without it the same open is the
// wiped-log error.
func TestWALOpenFreshAtBase(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenWAL(WALConfig{Dir: dir}, 7); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("open empty dir at base 7: %v, want ErrBadWAL", err)
	}
	w := testWAL(t, WALConfig{Dir: dir, AllowFresh: true}, 7)
	if got := w.Seq(); got != 7 {
		t.Fatalf("fresh log at base: sequence %d, want 7", got)
	}
	if seq, err := w.Append(0, []graph.Update{graph.Addition(0, 1)}); err != nil || seq != 7 {
		t.Fatalf("first append: seq %d, err %v", seq, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopening no longer needs AllowFresh: the log exists and extends to 8.
	w2 := testWAL(t, WALConfig{Dir: dir}, 8)
	if got := w2.Seq(); got != 8 {
		t.Fatalf("reopened at %d, want 8", got)
	}
}

func TestWALFsyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  WALConfig
	}{
		{"per-batch", WALConfig{Mode: FsyncPerBatch}},
		{"interval", WALConfig{Mode: FsyncInterval, Interval: time.Millisecond}},
		{"off", WALConfig{Mode: FsyncOff}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Dir = t.TempDir()
			w := testWAL(t, cfg, 0)
			for i := 0; i < 5; i++ {
				if _, err := w.Append(0, []graph.Update{graph.Addition(i, i+1)}); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			w2 := testWAL(t, cfg, 0)
			if got := w2.Seq(); got != 5 {
				t.Fatalf("sequence %d, want 5", got)
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	cases := []struct {
		in       string
		mode     FsyncMode
		interval time.Duration
		wantErr  bool
	}{
		{in: "batch", mode: FsyncPerBatch},
		{in: "", mode: FsyncPerBatch},
		{in: "off", mode: FsyncOff},
		{in: "200ms", mode: FsyncInterval, interval: 200 * time.Millisecond},
		{in: "2s", mode: FsyncInterval, interval: 2 * time.Second},
		{in: "0s", wantErr: true},
		{in: "-1s", wantErr: true},
		{in: "always", wantErr: true},
	}
	for _, tc := range cases {
		mode, interval, err := ParseFsyncPolicy(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseFsyncPolicy(%q): want error", tc.in)
			}
			continue
		}
		if err != nil || mode != tc.mode || interval != tc.interval {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v, %v; want %v, %v", tc.in, mode, interval, err, tc.mode, tc.interval)
		}
	}
}

// walStream builds a deterministic, well-formed update stream in batches:
// mostly additions (sometimes referencing brand-new vertices), some removals
// of live edges, and occasionally an add+remove pair of the same new edge in
// one batch so the coalescer cancels it (exercising the vertex-growth-only
// WAL record).
func walStream(seed int64, n, batches, perBatch int) [][]graph.Update {
	rng := rand.New(rand.NewSource(seed))
	mirror := graph.New(n)
	var live []graph.Edge
	out := make([][]graph.Update, 0, batches)
	next := n
	for b := 0; b < batches; b++ {
		var batch []graph.Update
		for len(batch) < perBatch {
			switch r := rng.Intn(10); {
			case r == 0 && len(live) > 0:
				i := rng.Intn(len(live))
				e := live[i]
				live = append(live[:i], live[i+1:]...)
				mirror.Apply(graph.Removal(e.U, e.V)) //nolint:errcheck
				batch = append(batch, graph.Removal(e.U, e.V))
			case r == 1:
				// Cancelled pair on a brand-new vertex: survives only as a
				// vertex-growth requirement.
				u, v := rng.Intn(mirror.N()), next
				next++
				batch = append(batch, graph.Addition(u, v), graph.Removal(u, v))
			default:
				u, v := rng.Intn(mirror.N()), rng.Intn(mirror.N())
				if r == 2 {
					v = next
					next++
				}
				if u == v || (v < mirror.N() && mirror.HasEdge(u, v)) {
					continue
				}
				if v >= mirror.N() {
					for grow := mirror.N(); grow <= v; grow++ {
						mirror.AddVertex()
					}
				}
				mirror.Apply(graph.Addition(u, v)) //nolint:errcheck
				live = append(live, graph.Edge{U: u, V: v})
				batch = append(batch, graph.Addition(u, v))
			}
		}
		out = append(out, batch)
	}
	return out
}

// enqueueWait pushes one batch and waits for it to be fully processed, so
// every batch becomes exactly one pipeline drain (and one WAL record) in
// both the reference and the crashed run.
func enqueueWait(t *testing.T, srv *Server, batch []graph.Update) {
	t.Helper()
	b, err := srv.Enqueue(batch)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func sameScores(t *testing.T, what string, got, want *bc.Result) {
	t.Helper()
	if len(got.VBC) != len(want.VBC) {
		t.Fatalf("%s: %d vertices, want %d", what, len(got.VBC), len(want.VBC))
	}
	for v := range want.VBC {
		if got.VBC[v] != want.VBC[v] {
			t.Fatalf("%s: VBC[%d] = %v, want %v (must be bit-identical)", what, v, got.VBC[v], want.VBC[v])
		}
	}
	if len(got.EBC) != len(want.EBC) {
		t.Fatalf("%s: %d edge scores, want %d", what, len(got.EBC), len(want.EBC))
	}
	for k, x := range want.EBC {
		if gx, ok := got.EBC[k]; !ok || gx != x {
			t.Fatalf("%s: EBC[%v] = %v, want %v (must be bit-identical)", what, k, got.EBC[k], x)
		}
	}
}

// TestWALCrashRecoveryBitIdentical simulates a crash (the server is
// abandoned without Close, so no final snapshot is written) after a
// mid-stream snapshot, recovers from snapshot + WAL tail, and requires the
// scores to be bit-identical to an uninterrupted run of the same stream —
// in exact and in sampled mode, with and without a mid-stream snapshot.
func TestWALCrashRecoveryBitIdentical(t *testing.T) {
	const (
		nVertices = 24
		nEdges    = 40
		seed      = 7
		k         = 9 // sampled-source count
		maxBatch  = 8
	)
	for _, tc := range []struct {
		name     string
		sampled  bool
		snapshot bool // take a mid-stream snapshot before the crash
	}{
		{"exact-with-snapshot", false, true},
		{"exact-no-snapshot", false, false},
		{"sampled-with-snapshot", true, true},
		{"sampled-no-snapshot", true, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batches := walStream(seed+100, nVertices, 12, 6)
			engCfg := func() engine.Config {
				cfg := engine.Config{Workers: 2}
				if tc.sampled {
					cfg.Sources = bc.SampleSources(nVertices, k, seed)
				}
				return cfg
			}

			// Reference: the same stream, batch by batch, never interrupted.
			refEng, err := engine.New(testGraph(t, nVertices, nEdges, seed), engCfg())
			if err != nil {
				t.Fatal(err)
			}
			defer refEng.Close()
			refSrv := New(refEng, Config{MaxBatch: maxBatch})
			refSrv.Start()
			for _, b := range batches {
				enqueueWait(t, refSrv, b)
			}
			want := refEng.ResultSnapshot()
			wantStats := refEng.Stats()
			refSrv.Close()

			// The run that will "crash": WAL on, abandoned without Close.
			walDir := t.TempDir()
			snapDir := t.TempDir()
			wal, err := OpenWAL(WALConfig{Dir: walDir, SegmentBytes: 512}, 0)
			if err != nil {
				t.Fatal(err)
			}
			crashEng, err := engine.New(testGraph(t, nVertices, nEdges, seed), engCfg())
			if err != nil {
				t.Fatal(err)
			}
			defer crashEng.Close()
			crashSrv := New(crashEng, Config{MaxBatch: maxBatch, SnapshotDir: snapDir, WAL: wal})
			crashSrv.Start()
			for i, b := range batches {
				if tc.snapshot && i == len(batches)/2 {
					if _, err := crashSrv.Snapshot(); err != nil {
						t.Fatal(err)
					}
				}
				enqueueWait(t, crashSrv, b)
			}
			// Crash: no Close, no final snapshot. Only flush the page cache
			// handle we share with the "next process".
			if err := wal.Sync(); err != nil {
				t.Fatal(err)
			}

			// Recovery, exactly as bcserved does it: restore the snapshot if
			// one exists (else rebuild the same base state), then replay the
			// WAL tail.
			var recEng *engine.Engine
			st, err := LoadSnapshotFile(snapDir)
			switch {
			case err == nil:
				if !tc.snapshot {
					t.Fatal("found a snapshot in a run that never wrote one")
				}
				recEng, err = engine.RestoreEngine(st, engine.Config{Workers: 2})
				if err != nil {
					t.Fatal(err)
				}
				if recEng.WALOffset() == 0 {
					t.Fatal("restored snapshot does not carry a WAL offset")
				}
			case errors.Is(err, os.ErrNotExist):
				if tc.snapshot {
					t.Fatalf("snapshot missing: %v", err)
				}
				recEng, err = engine.New(testGraph(t, nVertices, nEdges, seed), engCfg())
				if err != nil {
					t.Fatal(err)
				}
			default:
				t.Fatal(err)
			}
			defer recEng.Close()
			wal2, err := OpenWAL(WALConfig{Dir: walDir, SegmentBytes: 512}, recEng.WALOffset())
			if err != nil {
				t.Fatal(err)
			}
			defer wal2.Close()
			if _, err := ReplayWAL(wal2, recEng, maxBatch); err != nil {
				t.Fatal(err)
			}

			sameScores(t, "recovered scores", recEng.ResultSnapshot(), want)
			if got := recEng.Stats().UpdatesApplied; got != wantStats.UpdatesApplied {
				t.Fatalf("recovered %d applied updates, want %d", got, wantStats.UpdatesApplied)
			}
			if recEng.Graph().N() != refEng.Graph().N() || recEng.Graph().M() != refEng.Graph().M() {
				t.Fatalf("recovered graph n=%d m=%d, want n=%d m=%d",
					recEng.Graph().N(), recEng.Graph().M(), refEng.Graph().N(), refEng.Graph().M())
			}
			if tc.sampled {
				if !recEng.Sampled() || recEng.SampleSize() != k {
					t.Fatalf("recovered engine lost the source sample (sampled=%v k=%d)", recEng.Sampled(), recEng.SampleSize())
				}
			}
		})
	}
}

// TestSnapshotTruncatesWAL verifies the rotation/truncation protocol end to
// end through the server: segments fully covered by a snapshot are deleted,
// and recovery from snapshot + remaining tail still works.
func TestSnapshotTruncatesWAL(t *testing.T) {
	walDir := t.TempDir()
	snapDir := t.TempDir()
	wal, err := OpenWAL(WALConfig{Dir: walDir, SegmentBytes: 128}, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(testGraph(t, 16, 24, 3), engine.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := New(eng, Config{SnapshotDir: snapDir, WAL: wal})
	srv.Start()
	for i := 0; i < 30; i++ {
		enqueueWait(t, srv, []graph.Update{graph.Addition(16+i, i%16)})
	}
	segsBefore := wal.Segments()
	if segsBefore < 3 {
		t.Fatalf("want >= 3 segments before the snapshot, got %d", segsBefore)
	}
	if _, err := srv.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := wal.Segments(); got != 1 {
		t.Fatalf("want 1 segment after the snapshot, got %d (was %d)", got, segsBefore)
	}
	want := eng.ResultSnapshot()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := LoadSnapshotFile(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	recEng, err := engine.RestoreEngine(st, engine.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer recEng.Close()
	wal2, err := OpenWAL(WALConfig{Dir: walDir, SegmentBytes: 128}, recEng.WALOffset())
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if _, err := ReplayWAL(wal2, recEng, 0); err != nil {
		t.Fatal(err)
	}
	sameScores(t, "recovered after truncation", recEng.ResultSnapshot(), want)
}

// TestWALRejectedUpdatesReplayIdentically covers streams containing updates
// the engine rejects (removal of a missing edge): the WAL logs them, the
// pipeline skips them, and replay must skip them the same way.
func TestWALRejectedUpdatesReplayIdentically(t *testing.T) {
	walDir := t.TempDir()
	wal, err := OpenWAL(WALConfig{Dir: walDir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(testGraph(t, 10, 15, 5), engine.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := New(eng, Config{WAL: wal, MaxBatch: 4})
	srv.Start()
	batch := []graph.Update{
		graph.Addition(10, 0),
		graph.Removal(7, 8), // likely absent; rejected if so
		graph.Removal(97, 98),
		graph.Addition(11, 1),
	}
	b, err := srv.Enqueue(batch)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := b.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if len(b.Errs()) == 0 {
		t.Fatal("expected at least one rejected update in the batch")
	}
	want := eng.ResultSnapshot()
	wantApplied := eng.Stats().UpdatesApplied
	if err := wal.Sync(); err != nil {
		t.Fatal(err)
	}
	// Crash (no Close) and recover onto a fresh engine.
	recEng, err := engine.New(testGraph(t, 10, 15, 5), engine.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer recEng.Close()
	wal2, err := OpenWAL(WALConfig{Dir: walDir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer wal2.Close()
	if _, err := ReplayWAL(wal2, recEng, 4); err != nil {
		t.Fatal(err)
	}
	sameScores(t, "recovered with rejections", recEng.ResultSnapshot(), want)
	if got := recEng.Stats().UpdatesApplied; got != wantApplied {
		t.Fatalf("recovered %d applied updates, want %d", got, wantApplied)
	}
}

// TestWALTornHeaderSegmentDiscarded covers a crash between segment creation
// and a durable header during rotation: the header-less final segment holds
// no records, so reopening must discard it and continue from the previous
// segment's tail.
func TestWALTornHeaderSegmentDiscarded(t *testing.T) {
	dir := t.TempDir()
	w := testWAL(t, WALConfig{Dir: dir}, 0)
	for i := 0; i < 3; i++ {
		if _, err := w.Append(0, []graph.Update{graph.Addition(i, i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash: a next segment created with only part of its
	// header written.
	torn := filepath.Join(dir, "wal-00000000000000000003.seg")
	if err := os.WriteFile(torn, []byte("STB"), 0o644); err != nil {
		t.Fatal(err)
	}
	w2 := testWAL(t, WALConfig{Dir: dir}, 0)
	if got := w2.Seq(); got != 3 {
		t.Fatalf("reopened at sequence %d, want 3", got)
	}
	if _, err := os.Stat(torn); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("torn segment still present: %v", err)
	}
	if _, err := w2.Append(0, []graph.Update{graph.Addition(7, 8)}); err != nil {
		t.Fatal(err)
	}
	if recs := collectRecords(t, w2, 0); len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
}

// TestOpenWALEmptyDirWithCoveredOffset: a snapshot covering a nonzero
// sequence with an empty log directory means the log was wiped — that must
// fail, exactly like a log that ends before the covered sequence.
func TestOpenWALEmptyDirWithCoveredOffset(t *testing.T) {
	if _, err := OpenWAL(WALConfig{Dir: t.TempDir()}, 5); !errors.Is(err, ErrBadWAL) {
		t.Fatalf("open empty log with covered sequence 5: got %v, want ErrBadWAL", err)
	}
}

// TestPoisonedWALBlocksSnapshot: once the log is poisoned (engine failure
// after a durable append), a snapshot would capture an unrecoverable state
// and overwrite the last good one — the server must refuse it.
func TestPoisonedWALBlocksSnapshot(t *testing.T) {
	walDir := t.TempDir()
	wal, err := OpenWAL(WALConfig{Dir: walDir}, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(testGraph(t, 8, 10, 2), engine.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := New(eng, Config{SnapshotDir: t.TempDir(), WAL: wal})
	srv.Start()
	defer srv.Close()
	enqueueWait(t, srv, []graph.Update{graph.Addition(0, 7)})
	if _, err := srv.Snapshot(); err != nil {
		t.Fatalf("healthy snapshot: %v", err)
	}
	wal.poison(errors.New("injected engine failure"))
	if _, err := srv.Snapshot(); err == nil {
		t.Fatal("want a refused snapshot after the WAL was poisoned")
	}
	if got := srv.met.snapshotErrs.Value(); got != 1 {
		t.Fatalf("snapshot error counter = %d, want 1", got)
	}
	// Ingest halts loudly: fire-and-forget callers must not get silent
	// drops, and the liveness probe must flip.
	if _, err := srv.Enqueue([]graph.Update{graph.Addition(1, 6)}); !errors.Is(err, ErrIngestHalted) {
		t.Fatalf("enqueue on a poisoned WAL: got %v, want ErrIngestHalted", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz on a poisoned WAL: %d, want 503", resp.StatusCode)
	}
}

func TestWALClosedAppend(t *testing.T) {
	w := testWAL(t, WALConfig{Dir: t.TempDir()}, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(0, []graph.Update{graph.Addition(0, 1)}); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("append after close: got %v, want ErrWALClosed", err)
	}
}

func TestOpenWALBadDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(WALConfig{Dir: filepath.Join(file, "wal")}, 0); err == nil {
		t.Fatal("want an error opening a WAL under a regular file")
	}
	if _, err := OpenWAL(WALConfig{}, 0); err == nil {
		t.Fatal("want an error opening a WAL without a directory")
	}
}
