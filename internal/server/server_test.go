package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"streambc/internal/bc"
	"streambc/internal/engine"
	"streambc/internal/graph"
)

func testGraph(t *testing.T, n, m int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func startServer(t *testing.T, g *graph.Graph, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	eng, err := engine.New(g, engine.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, cfg)
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
		eng.Close()
	})
	return srv, ts
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("GET %s: decoding %q: %v", url, body, err)
	}
}

func postJSON(t *testing.T, url string, req, out any) int {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("POST %s: decoding %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

func approx(a, b float64) bool { return math.Abs(a-b) <= 1e-7*(1+math.Abs(a)+math.Abs(b)) }

// TestServedScoresMatchStatic is the end-to-end acceptance test: start the
// server on a random port, POST a batch of updates, and check every query
// endpoint against a from-scratch Brandes recomputation; then snapshot,
// restart from the snapshot, and check the restarted server returns the
// identical scores.
func TestServedScoresMatchStatic(t *testing.T) {
	snapDir := t.TempDir()
	g := testGraph(t, 16, 30, 11)
	want := g.Clone() // tracks the expected graph state
	_, ts := startServer(t, g, Config{SnapshotDir: snapDir})

	// One batch mixing additions, removals, coalescing fodder and a vertex
	// that grows the graph.
	edges := want.Edges()
	batch := []updateJSON{
		{Op: "remove", U: edges[0].U, V: edges[0].V},
		{Op: "add", U: 3, V: 16}, // new vertex 16
		{Op: "add", U: 9, V: 9},  // self loop: rejected by the engine
		{Op: "add", U: 14, V: 15},
		{Op: "remove", U: 14, V: 15}, // cancels with the previous add
	}
	if err := want.RemoveEdge(edges[0].U, edges[0].V); err != nil {
		t.Fatal(err)
	}
	want.EnsureVertex(16)
	if want.HasEdge(3, 16) {
		t.Fatal("test graph already has (3,16)")
	}
	if err := want.AddEdge(3, 16); err != nil {
		t.Fatal(err)
	}

	var ingest ingestResponse
	if code := postJSON(t, ts.URL+"/v1/updates", map[string]any{"updates": batch, "wait": true}, &ingest); code != http.StatusOK {
		t.Fatalf("ingest status = %d (%+v)", code, ingest)
	}
	if !ingest.Waited || ingest.Applied != 2 || ingest.Coalesced != 2 || ingest.Rejected != 1 {
		t.Fatalf("ingest = %+v, want applied 2, coalesced 2, rejected 1", ingest)
	}

	ref := bc.Compute(want)

	// Per-vertex scores.
	for v := 0; v < want.N(); v++ {
		var got struct {
			Known bool    `json:"known"`
			Score float64 `json:"score"`
		}
		getJSON(t, fmt.Sprintf("%s/v1/vertices/%d", ts.URL, v), &got)
		if !got.Known || !approx(got.Score, ref.VBC[v]) {
			t.Fatalf("vertex %d: got %+v, want %v", v, got, ref.VBC[v])
		}
	}

	// Per-edge score (canonical and reversed orientation must agree).
	e := want.Edges()[2]
	for _, pair := range [][2]int{{e.U, e.V}, {e.V, e.U}} {
		var got struct {
			Known bool    `json:"known"`
			Score float64 `json:"score"`
		}
		getJSON(t, fmt.Sprintf("%s/v1/edges?u=%d&v=%d", ts.URL, pair[0], pair[1]), &got)
		if !got.Known || !approx(got.Score, ref.EBC[e]) {
			t.Fatalf("edge %v as (%d,%d): got %+v, want %v", e, pair[0], pair[1], got, ref.EBC[e])
		}
	}

	// Top-k against the reference ordering.
	var top struct {
		Vertices []vertexScoreJSON `json:"vertices"`
	}
	getJSON(t, ts.URL+"/v1/top/vertices?k=5", &top)
	wantTop := bc.TopVertices(ref, 5)
	if len(top.Vertices) != 5 {
		t.Fatalf("top-5 returned %d vertices", len(top.Vertices))
	}
	for i, ws := range wantTop {
		if top.Vertices[i].Vertex != ws.Vertex || !approx(top.Vertices[i].Score, ws.Score) {
			t.Fatalf("top[%d] = %+v, want %+v", i, top.Vertices[i], ws)
		}
	}
	var topE struct {
		Edges []edgeScoreJSON `json:"edges"`
	}
	getJSON(t, ts.URL+"/v1/top/edges?k=3", &topE)
	wantTopE := bc.TopEdges(ref, 3)
	for i, ws := range wantTopE {
		got := topE.Edges[i]
		if got.U != ws.Edge.U || got.V != ws.Edge.V || !approx(got.Score, ws.Score) {
			t.Fatalf("topEdge[%d] = %+v, want %+v", i, got, ws)
		}
	}

	// Graph and engine stats.
	var gs struct {
		N, M     int
		Directed bool
	}
	getJSON(t, ts.URL+"/v1/graph", &gs)
	if gs.N != want.N() || gs.M != want.M() || gs.Directed {
		t.Fatalf("graph = %+v, want n=%d m=%d undirected", gs, want.N(), want.M())
	}
	var st struct {
		UpdatesApplied int `json:"updates_applied"`
	}
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.UpdatesApplied != 2 {
		t.Fatalf("updates_applied = %d, want 2", st.UpdatesApplied)
	}

	// Metrics exposition.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"streambc_updates_applied_total 2",
		"streambc_updates_coalesced_total 2",
		"streambc_updates_rejected_total 1",
		"streambc_update_latency_seconds{quantile=\"0.5\"}",
		"streambc_apply_batch_latency_seconds{quantile=\"0.5\"}",
		"streambc_apply_batch_size{quantile=\"0.5\"}",
		"streambc_apply_batches_total",
		"streambc_sample_fraction 1",
		"streambc_sample_error_proxy 0",
		"streambc_sampled_sources",
	} {
		if !strings.Contains(string(met), want) {
			t.Fatalf("metrics missing %q:\n%s", want, met)
		}
	}

	// Snapshot over HTTP, then restart from it and compare every score for
	// exact (bit-identical) equality with the running server.
	var snap struct {
		Path string `json:"path"`
	}
	if code := postJSON(t, ts.URL+"/v1/snapshot", map[string]any{}, &snap); code != http.StatusOK {
		t.Fatalf("snapshot status = %d", code)
	}
	liveScores := topKAll(t, ts.URL)

	state, err := LoadSnapshotFile(snapDir)
	if err != nil {
		t.Fatalf("LoadSnapshotFile: %v", err)
	}
	if state.Applied != 2 {
		t.Fatalf("snapshot applied offset = %d, want 2", state.Applied)
	}
	restoredEng, err := engine.RestoreEngine(state, engine.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	restored := New(restoredEng, Config{})
	restored.Start()
	ts2 := httptest.NewServer(restored.Handler())
	defer func() {
		ts2.Close()
		restored.Close()
		restoredEng.Close()
	}()

	restoredScores := topKAll(t, ts2.URL)
	if len(liveScores) != len(restoredScores) {
		t.Fatalf("restored server returned %d scores, want %d", len(restoredScores), len(liveScores))
	}
	for i := range liveScores {
		if liveScores[i] != restoredScores[i] {
			t.Fatalf("restored score %d: %+v != %+v", i, restoredScores[i], liveScores[i])
		}
	}
	var st2 struct {
		UpdatesApplied int `json:"updates_applied"`
	}
	getJSON(t, ts2.URL+"/v1/stats", &st2)
	if st2.UpdatesApplied != 2 {
		t.Fatalf("restored updates_applied = %d, want 2", st2.UpdatesApplied)
	}
}

// topKAll fetches every vertex and edge score, as served, in a stable order.
func topKAll(t *testing.T, base string) []vertexScoreJSON {
	t.Helper()
	var top struct {
		Vertices []vertexScoreJSON `json:"vertices"`
	}
	getJSON(t, base+"/v1/top/vertices?k=1000000", &top)
	var topE struct {
		Edges []edgeScoreJSON `json:"edges"`
	}
	getJSON(t, base+"/v1/top/edges?k=1000000", &topE)
	out := top.Vertices
	for _, e := range topE.Edges {
		out = append(out, vertexScoreJSON{Vertex: e.U*1000000 + e.V, Score: e.Score})
	}
	return out
}

// TestConcurrentQueriesDuringUpdates exercises the snapshot-on-read path
// under -race: parallel readers hammer the query endpoints while the
// pipeline applies a stream of updates.
func TestConcurrentQueriesDuringUpdates(t *testing.T) {
	g := testGraph(t, 24, 50, 7)
	srv, ts := startServer(t, g, Config{})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			urls := []string{
				ts.URL + "/v1/top/vertices?k=10",
				ts.URL + "/v1/top/edges?k=10",
				fmt.Sprintf("%s/v1/vertices/%d", ts.URL, r),
				ts.URL + "/v1/graph",
				ts.URL + "/v1/stats",
				ts.URL + "/metrics",
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(urls[i%len(urls)])
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s: %d", urls[i%len(urls)], resp.StatusCode)
					return
				}
			}
		}(r)
	}

	// Writer: stream batches through the pipeline while the readers run. A
	// mirror graph (never shared with the engine) decides whether each edge
	// is currently present, so the writer never reads engine state while the
	// pipeline owns it; waiting on each batch keeps the stream well-formed.
	mirror := srv.eng.Graph().Clone()
	rng := rand.New(rand.NewSource(99))
	ctxWait, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < 60; i++ {
		u, v := rng.Intn(24), rng.Intn(24)
		if u == v {
			continue
		}
		var upds []graph.Update
		if mirror.HasEdge(u, v) {
			upds = []graph.Update{graph.Removal(u, v)}
			if err := mirror.RemoveEdge(u, v); err != nil {
				t.Fatal(err)
			}
		} else {
			// The first two coalesce away; the net effect is one addition.
			upds = []graph.Update{graph.Addition(u, v), graph.Removal(u, v), graph.Addition(u, v)}
			if err := mirror.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
		b, err := srv.Enqueue(upds)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Wait(ctxWait); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// After the dust settles the served scores must equal a from-scratch
	// recomputation of the final graph.
	ref := bc.Compute(srv.eng.Graph())
	view := srv.currentView()
	for v := range ref.VBC {
		if !approx(view.res.VBC[v], ref.VBC[v]) {
			t.Fatalf("final VBC[%d] = %v, want %v", v, view.res.VBC[v], ref.VBC[v])
		}
	}
}

// TestCancelledAdditionsStillGrowGraph: an add/remove pair that cancels in
// the coalescer must still grow the vertex set, exactly as applying the two
// updates sequentially would have — the served vertex count must not depend
// on how updates happened to be batched.
func TestCancelledAdditionsStillGrowGraph(t *testing.T) {
	g := testGraph(t, 5, 6, 3)
	srv, ts := startServer(t, g, Config{})

	var ingest ingestResponse
	code := postJSON(t, ts.URL+"/v1/updates", map[string]any{
		"updates": []updateJSON{{Op: "add", U: 8, V: 9}, {Op: "remove", U: 8, V: 9}},
		"wait":    true,
	}, &ingest)
	if code != http.StatusOK || ingest.Coalesced != 2 || ingest.Applied != 0 {
		t.Fatalf("ingest = %d %+v, want both updates coalesced", code, ingest)
	}

	var gs struct{ N, M int }
	getJSON(t, ts.URL+"/v1/graph", &gs)
	if gs.N != 10 || gs.M != 6 {
		t.Fatalf("graph after cancelled pair = n=%d m=%d, want n=10 m=6", gs.N, gs.M)
	}
	var vtx struct {
		Known bool    `json:"known"`
		Score float64 `json:"score"`
	}
	getJSON(t, ts.URL+"/v1/vertices/9", &vtx)
	if !vtx.Known || vtx.Score != 0 {
		t.Fatalf("vertex 9 after growth = %+v, want known with score 0", vtx)
	}
	// The engine itself must agree (stores grown, scores padded).
	if n := srv.eng.Graph().N(); n != 10 {
		t.Fatalf("engine graph n = %d, want 10", n)
	}
}

// TestCloseWithoutStart: Close on a never-started server must not deadlock
// and must leave the pipeline rejecting enqueues.
func TestCloseWithoutStart(t *testing.T) {
	g := testGraph(t, 6, 8, 2)
	eng, err := engine.New(g, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := New(eng, Config{SnapshotDir: t.TempDir()})

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked on a never-started server")
	}
	if _, err := srv.Enqueue([]graph.Update{graph.Addition(0, 1)}); err != ErrClosed {
		t.Fatalf("Enqueue after Close = %v, want ErrClosed", err)
	}
}

// TestSampledServing drives a server over a sampled engine: the sample
// gauges appear on /metrics, /v1/stats reports the approximate mode, and a
// snapshot-restart cycle preserves the sample.
func TestSampledServing(t *testing.T) {
	g := testGraph(t, 40, 90, 7)
	sources := bc.SampleSources(g.N(), 10, 3)
	eng, err := engine.New(g, engine.Config{Workers: 2, Sources: sources})
	if err != nil {
		t.Fatal(err)
	}
	snapDir := t.TempDir()
	srv := New(eng, Config{SnapshotDir: snapDir})
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
		eng.Close()
	}()

	var resp ingestResponse
	if code := postJSON(t, ts.URL+"/v1/updates", map[string]any{
		"updates": []map[string]any{{"op": "add", "u": 0, "v": 39}},
		"wait":    true,
	}, &resp); code != http.StatusOK || resp.Applied != 1 {
		t.Fatalf("sampled ingest = code %d resp %+v", code, resp)
	}

	var st struct {
		Sampled        bool    `json:"sampled"`
		SampledSources int     `json:"sampled_sources"`
		SampleScale    float64 `json:"sample_scale"`
	}
	getJSON(t, ts.URL+"/v1/stats", &st)
	if !st.Sampled || st.SampledSources != 10 || st.SampleScale != 4 {
		t.Fatalf("stats = %+v, want sampled with 10 sources at scale 4", st)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	met, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"streambc_sampled_sources 10",
		"streambc_sample_fraction 0.25",
		"streambc_sample_error_proxy 0.6",
	} {
		if !strings.Contains(string(met), want) {
			t.Fatalf("sampled metrics missing %q:\n%s", want, met)
		}
	}

	// Snapshot, then restore: the sample must survive the restart.
	var snap struct {
		Path string `json:"path"`
	}
	if code := postJSON(t, ts.URL+"/v1/snapshot", map[string]any{}, &snap); code != http.StatusOK {
		t.Fatalf("snapshot status %d", code)
	}
	state, err := LoadSnapshotFile(snapDir)
	if err != nil {
		t.Fatalf("LoadSnapshotFile: %v", err)
	}
	eng2, err := engine.RestoreEngine(state, engine.Config{})
	if err != nil {
		t.Fatalf("RestoreEngine: %v", err)
	}
	defer eng2.Close()
	if !eng2.Sampled() || eng2.SampleSize() != 10 || eng2.Scale() != 4 {
		t.Fatalf("restored engine sample = %d scale %g, want 10 at 4", eng2.SampleSize(), eng2.Scale())
	}
	for v := range eng.VBC() {
		if eng2.VBC()[v] != eng.VBC()[v] {
			t.Fatalf("restored VBC[%d] = %v, want %v", v, eng2.VBC()[v], eng.VBC()[v])
		}
	}
}
