package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"streambc/internal/graph"
)

// Errors returned by Enqueue.
var (
	// ErrQueueFull signals that admitting the batch would push the ingest
	// queue past its configured capacity. Callers should retry later (the
	// HTTP layer maps it to 503).
	ErrQueueFull = errors.New("server: ingest queue full")
	// ErrClosed signals that the pipeline has been shut down.
	ErrClosed = errors.New("server: pipeline closed")
)

// Batch tracks one Enqueue call through the ingest pipeline. It completes
// when every update of the batch has been applied, coalesced away or
// rejected.
type Batch struct {
	done chan struct{}

	// enqueuedAt is when the batch was admitted to the queue — the start of
	// its ingest trace. Set once under the pipeline lock before the batch is
	// visible to the drain loop, immutable afterwards.
	enqueuedAt time.Time

	mu        sync.Mutex
	applied   int
	coalesced int
	errs      []error
}

func newBatch() *Batch { return &Batch{done: make(chan struct{})} }

// Done returns a channel closed when the batch has been fully processed.
func (b *Batch) Done() <-chan struct{} { return b.done }

// Wait blocks until the batch has been processed or ctx is cancelled.
func (b *Batch) Wait(ctx context.Context) error {
	select {
	case <-b.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Applied returns how many updates of the batch were applied to the engine.
func (b *Batch) Applied() int { b.mu.Lock(); defer b.mu.Unlock(); return b.applied }

// Coalesced returns how many updates of the batch were folded away by the
// coalescer (duplicates collapsed or add/remove pairs cancelled).
func (b *Batch) Coalesced() int { b.mu.Lock(); defer b.mu.Unlock(); return b.coalesced }

// Errs returns the rejection errors of the batch's updates, in order.
func (b *Batch) Errs() []error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]error(nil), b.errs...)
}

func (b *Batch) noteApplied()   { b.mu.Lock(); b.applied++; b.mu.Unlock() }
func (b *Batch) noteCoalesced() { b.mu.Lock(); b.coalesced++; b.mu.Unlock() }
func (b *Batch) noteError(err error) {
	b.mu.Lock()
	b.errs = append(b.errs, err)
	b.mu.Unlock()
}

// item is one queued element: a single update tagged with the batch that
// submitted it, or a barrier (an empty batch used by Flush).
type item struct {
	upd     graph.Update
	batch   *Batch
	barrier bool
}

// pipeline is the background ingest path: Enqueue appends updates to a
// queue, the run loop drains the queue, coalesces the drained updates and
// applies what survives off the request path, so a burst of writes never
// holds an HTTP handler hostage and redundant updates never reach the
// (comparatively expensive) incremental engine.
type pipeline struct {
	directed bool
	maxQueue int
	// apply applies the surviving items of one drain (it must handle
	// barriers); needVertices is the vertex count the graph must reach so
	// that additions folded away by the coalescer still grow the graph
	// exactly as sequential application would have. A returned error is an
	// infrastructure failure affecting the whole drain (for example a store
	// growth failure) and is reported on every drained batch; per-update
	// rejections are the callback's own responsibility.
	apply       func(items []item, needVertices int) error
	onCoalesced func(int) // reports updates dropped by each drain's fold

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []item
	closed  bool
	stopped chan struct{}
}

func newPipeline(directed bool, maxQueue int, apply func([]item, int) error, onCoalesced func(int)) *pipeline {
	p := &pipeline{
		directed:    directed,
		maxQueue:    maxQueue,
		apply:       apply,
		onCoalesced: onCoalesced,
		stopped:     make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// enqueue admits a batch of updates (or a barrier, when upds is empty) to the
// queue and returns the Batch tracking it.
func (p *pipeline) enqueue(upds []graph.Update) (*Batch, error) {
	b := newBatch()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	// Admit any batch while the queue has room (the queue may overshoot by
	// one batch): rejecting batches larger than the remaining room would
	// make an oversized batch unservable forever, not throttled.
	if p.maxQueue > 0 && len(p.queue) >= p.maxQueue {
		return nil, ErrQueueFull
	}
	b.enqueuedAt = time.Now()
	if len(upds) == 0 {
		p.queue = append(p.queue, item{batch: b, barrier: true})
	} else {
		for _, u := range upds {
			p.queue = append(p.queue, item{upd: u, batch: b})
		}
	}
	p.cond.Signal()
	return b, nil
}

// depth returns the number of queued, not yet drained updates.
func (p *pipeline) depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queue)
}

// run drains the queue until close. Each drain takes everything currently
// queued, coalesces it and applies the survivors as one engine batch.
func (p *pipeline) run() {
	defer close(p.stopped)
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		drained := p.queue
		p.queue = nil
		p.mu.Unlock()

		kept, dropped, needVertices := coalesce(drained, p.directed)
		if dropped > 0 && p.onCoalesced != nil {
			p.onCoalesced(dropped)
		}
		finishBatches(drained, p.apply(kept, needVertices))
	}
}

// close marks the pipeline closed and waits until the run loop has drained
// everything still queued. It must only be called when run is (or has been)
// running; use markClosed when run was never started.
func (p *pipeline) close() {
	p.markClosed()
	<-p.stopped
}

// markClosed rejects further enqueues without waiting for the run loop.
func (p *pipeline) markClosed() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// coalesce folds a drained slice of items to its net effect while preserving
// the relative order of the survivors:
//
//   - a duplicate of a still-pending update on the same edge collapses into
//     it (add,add -> add; remove,remove -> remove);
//   - a pending add followed by a remove of the same edge cancels both
//     (add,remove -> nothing), after which a later update on that edge
//     starts fresh (add,remove,add -> add).
//
// A remove followed by an add does NOT cancel: a remove of an edge that does
// not exist is rejected by the engine, and cancelling it against a later
// (valid) add from another client sharing the queue would silently swallow
// that client's write; keeping both reproduces sequential behaviour exactly
// (remove rejected with an error, add applied).
//
// For undirected graphs (u,v) and (v,u) are the same edge. Every update
// dropped here is counted on its batch; barriers pass through untouched.
// Folding assumes the stream is well-formed with respect to the graph state
// at drain time (the same assumption sequential application makes): the net
// effect of a well-formed sequence on the scores is exactly the net effect of
// the folded sequence, because betweenness is a pure function of the graph.
//
// needVertices is the vertex count the additions of the drain (surviving or
// not) would have grown the graph to: an add(5,6)/remove(5,6) pair cancels,
// but sequential application would still have left vertices 5 and 6 behind,
// and the served vertex count must not depend on drain timing. Self loops
// and negative endpoints are excluded, mirroring the engine's validation
// (which rejects them before growing the graph).
func coalesce(in []item, directed bool) (out []item, dropped, needVertices int) {
	kept := make([]item, 0, len(in))
	dead := make([]bool, 0, len(in))
	pending := make(map[graph.Edge]int) // edge -> index in kept of the live op
	for _, it := range in {
		if it.barrier {
			kept = append(kept, it)
			dead = append(dead, false)
			continue
		}
		if u := it.upd; !u.Remove && u.U != u.V && u.U >= 0 && u.V >= 0 {
			if n := max(u.U, u.V) + 1; n > needVertices {
				needVertices = n
			}
		}
		key := it.upd.Edge()
		if !directed {
			key = key.Canonical()
		}
		if j, ok := pending[key]; ok {
			if kept[j].upd.Remove == it.upd.Remove {
				// Duplicate: collapse into the pending update.
				it.batch.noteCoalesced()
				dropped++
				continue
			}
			if !kept[j].upd.Remove && it.upd.Remove {
				// Pending add cancelled by this remove.
				dead[j] = true
				kept[j].batch.noteCoalesced()
				it.batch.noteCoalesced()
				dropped += 2
				delete(pending, key)
				continue
			}
			// Pending remove followed by an add: keep both, in order.
		}
		pending[key] = len(kept)
		kept = append(kept, it)
		dead = append(dead, false)
	}
	if dropped == 0 {
		return kept, 0, needVertices
	}
	out = kept[:0]
	for i, it := range kept {
		if !dead[i] {
			out = append(out, it)
		}
	}
	return out, dropped, needVertices
}

// finishBatches records the drain-wide error (if any) on every batch that had
// items in the drained slice and closes each batch's done channel (each batch
// exactly once).
func finishBatches(drained []item, err error) {
	seen := make(map[*Batch]struct{}, len(drained))
	for _, it := range drained {
		if _, ok := seen[it.batch]; ok {
			continue
		}
		seen[it.batch] = struct{}{}
		if err != nil {
			it.batch.noteError(err)
		}
		close(it.batch.done)
	}
}
