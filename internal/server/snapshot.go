package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"streambc/internal/engine"
)

// The snapshot manager: atomic, crash-safe persistence of the engine state.
// A snapshot is written to a temporary file, fsynced, renamed over the
// current snapshot and the directory is fsynced — so at every instant the
// snapshot file is either the complete old snapshot or the complete new one,
// and the rename itself survives a crash (without the directory fsync a
// power loss right after rename can resurrect the old name, or leave no
// snapshot at all on some filesystems).

// SnapshotFileName is the name of the current snapshot inside the snapshot
// directory.
const SnapshotFileName = "streambc.snap"

// ErrNoSnapshotDir is returned by Snapshot when no directory is configured.
var ErrNoSnapshotDir = errors.New("server: no snapshot directory configured")

// WriteSnapshotFile serialises the engine into dir/SnapshotFileName via a
// temporary file, an fsync, an atomic rename and a directory fsync, creating
// dir if needed. The caller must ensure no update is applied concurrently.
func WriteSnapshotFile(dir string, e *engine.Engine) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("server: creating snapshot directory: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".streambc-*.snap.tmp")
	if err != nil {
		return "", fmt.Errorf("server: creating snapshot file: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := engine.WriteSnapshot(tmp, e); err != nil {
		tmp.Close()
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return "", fmt.Errorf("server: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return "", fmt.Errorf("server: closing snapshot: %w", err)
	}
	path := filepath.Join(dir, SnapshotFileName)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return "", fmt.Errorf("server: publishing snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return path, nil
}

// LoadSnapshotFile decodes dir/SnapshotFileName. It returns an error wrapping
// os.ErrNotExist when no snapshot has been written yet.
func LoadSnapshotFile(dir string) (*engine.SnapshotState, error) {
	f, err := os.Open(filepath.Join(dir, SnapshotFileName))
	if err != nil {
		return nil, fmt.Errorf("server: opening snapshot: %w", err)
	}
	defer f.Close()
	return engine.ReadSnapshot(f)
}

// syncDir fsyncs a directory, making renames and file creations/deletions
// inside it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("server: opening directory for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("server: syncing directory: %w", err)
	}
	return nil
}
