package bc

import (
	"streambc/internal/graph"
)

// Naive computes vertex and edge betweenness directly from the definitions
// (Definitions 2.1 and 2.2): for every ordered pair (s,t) it counts the
// fraction of shortest paths through each vertex and edge using
// sigma(s,t|v) = sigma(s,v)*sigma(v,t) when d(s,v)+d(v,t) = d(s,t).
//
// It runs in O(n^2 * (n+m)) time and exists purely as an independent oracle
// for differential tests of Compute and of the incremental framework; it
// shares no traversal code with them.
func Naive(g *graph.Graph) *Result {
	n := g.N()
	res := NewResult(n)

	// Forward BFS data from every vertex, filled through the allocation-free
	// variant with a shared scratch queue.
	dist := make([][]int, n)
	sigma := make([][]float64, n)
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		dist[s] = make([]int, n)
		sigma[s] = make([]float64, n)
		g.ShortestPathCountsInto(s, dist[s], sigma[s], queue)
	}

	// For directed graphs we additionally need sigma(v,t) which is taken from
	// the forward data rooted at v, so the same tables serve both roles.
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t || dist[s][t] == graph.Unreachable {
				continue
			}
			total := sigma[s][t]
			if total == 0 {
				continue
			}
			for v := 0; v < n; v++ {
				if v == s || v == t {
					continue
				}
				if dist[s][v] == graph.Unreachable || dist[v][t] == graph.Unreachable {
					continue
				}
				if dist[s][v]+dist[v][t] == dist[s][t] {
					res.VBC[v] += sigma[s][v] * sigma[v][t] / total
				}
			}
			for _, e := range g.Edges() {
				res.EBC[EdgeKey(g, e.U, e.V)] += naiveEdgeCount(g, dist, sigma, s, t, e) / total
			}
		}
	}
	return res
}

// naiveEdgeCount returns sigma(s,t|e): the number of shortest s-t paths using
// edge e, considering both orientations for undirected graphs.
func naiveEdgeCount(g *graph.Graph, dist [][]int, sigma [][]float64, s, t int, e graph.Edge) float64 {
	count := orientedEdgeCount(dist, sigma, s, t, e.U, e.V)
	if !g.Directed() {
		count += orientedEdgeCount(dist, sigma, s, t, e.V, e.U)
	}
	return count
}

func orientedEdgeCount(dist [][]int, sigma [][]float64, s, t, u, v int) float64 {
	if dist[s][u] == graph.Unreachable || dist[v][t] == graph.Unreachable {
		return 0
	}
	if dist[s][u]+1+dist[v][t] == dist[s][t] {
		return sigma[s][u] * sigma[v][t]
	}
	return 0
}
