package bc

import (
	"streambc/internal/graph"
)

// ComputeWithPredecessors runs the classic Brandes algorithm that builds an
// explicit predecessor list for every vertex during the search phase and
// backtracks along those lists. It produces the same result as Compute and is
// kept as the "MP" (memory, with predecessors) baseline of the paper's
// Figure 5, where the overhead of building and storing the lists is measured.
func ComputeWithPredecessors(g *graph.Graph) *Result {
	res := NewResult(g.N())
	n := g.N()
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	preds := make([][]int, n)
	queue := make([]int, 0, n)

	for s := 0; s < n; s++ {
		for i := 0; i < n; i++ {
			dist[i] = Unreachable
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		queue = queue[:0]
		dist[s] = 0
		sigma[s] = 1
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w32 := range g.Out(v) {
				w := int(w32)
				if dist[w] == Unreachable {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		for i := len(queue) - 1; i >= 0; i-- {
			w := queue[i]
			for _, v := range preds[w] {
				c := sigma[v] / sigma[w] * (1 + delta[w])
				delta[v] += c
				res.EBC[EdgeKey(g, v, w)] += c
			}
			if w != s {
				res.VBC[w] += delta[w]
			}
		}
	}
	return res
}
