// Package bc implements static (from-scratch) betweenness centrality of both
// vertices and edges using Brandes' algorithm, in the two flavours compared
// by the paper: the classic formulation that materialises predecessor lists
// (the "MP" baseline) and the memory-optimised formulation that backtracks by
// scanning neighbour levels instead (the "MO" formulation reused by the
// incremental framework). A naive all-pairs reference implementation is also
// provided for differential testing.
//
// Conventions: betweenness is accumulated over ordered source/target pairs,
// exactly as in Definitions 2.1 and 2.2 of the paper. For undirected graphs
// this means every unordered pair contributes twice; no normalisation or
// halving is applied, so values are directly comparable between the static
// and incremental implementations.
package bc

import (
	"streambc/internal/graph"
)

// Result holds the betweenness centrality of every vertex and edge of a
// graph. Edge keys are canonical (U < V) for undirected graphs and directed
// pairs for directed graphs.
type Result struct {
	VBC []float64
	EBC map[graph.Edge]float64
}

// NewResult returns a zeroed result for a graph with n vertices.
func NewResult(n int) *Result {
	return &Result{
		VBC: make([]float64, n),
		EBC: make(map[graph.Edge]float64),
	}
}

// EdgeKey returns the canonical key under which the edge (u,v) of g is
// accumulated in Result.EBC.
func EdgeKey(g *graph.Graph, u, v int) graph.Edge {
	e := graph.Edge{U: u, V: v}
	if g.Directed() {
		return e
	}
	return e.Canonical()
}

// Clone returns a deep copy of the result.
func (r *Result) Clone() *Result {
	c := &Result{
		VBC: append([]float64(nil), r.VBC...),
		EBC: make(map[graph.Edge]float64, len(r.EBC)),
	}
	for e, v := range r.EBC {
		c.EBC[e] = v
	}
	return c
}

// SourceState is the per-source output of a single Brandes iteration: the
// distance from the source, the number of shortest paths from the source and
// the dependency accumulated on each vertex. It is exactly the BD[s] record
// maintained by the incremental framework.
type SourceState struct {
	Dist  []int32
	Sigma []float64
	Delta []float64
}

// NewSourceState allocates a state for n vertices with all vertices marked
// unreachable.
func NewSourceState(n int) *SourceState {
	s := &SourceState{
		Dist:  make([]int32, n),
		Sigma: make([]float64, n),
		Delta: make([]float64, n),
	}
	for i := range s.Dist {
		s.Dist[i] = Unreachable
	}
	return s
}

// Resize adjusts the state's columns to n vertices, preserving existing
// prefixes and padding new entries as unreachable with zero path count and
// dependency (exactly how a store pads grown records).
func (s *SourceState) Resize(n int) {
	old := len(s.Dist)
	if old == n {
		return
	}
	if cap(s.Dist) >= n {
		s.Dist = s.Dist[:n]
		s.Sigma = s.Sigma[:n]
		s.Delta = s.Delta[:n]
	} else {
		dist := make([]int32, n)
		sigma := make([]float64, n)
		delta := make([]float64, n)
		copy(dist, s.Dist)
		copy(sigma, s.Sigma)
		copy(delta, s.Delta)
		s.Dist, s.Sigma, s.Delta = dist, sigma, delta
	}
	for i := old; i < n; i++ {
		s.Dist[i] = Unreachable
		s.Sigma[i] = 0
		s.Delta[i] = 0
	}
}

// Unreachable marks a vertex with no path from the source.
const Unreachable int32 = -1

// Compute runs Brandes' algorithm without predecessor lists and returns the
// betweenness centrality of every vertex and edge.
func Compute(g *graph.Graph) *Result {
	res := NewResult(g.N())
	state := NewSourceState(g.N())
	queue := make([]int, 0, g.N())
	for s := 0; s < g.N(); s++ {
		SingleSource(g, s, state, &queue)
		AccumulateSource(g, s, state, res)
	}
	return res
}

// ComputeVertexOnly runs Brandes' algorithm and returns only vertex
// betweenness. It avoids the edge map overhead and is used by baselines that
// do not track edge centrality.
func ComputeVertexOnly(g *graph.Graph) []float64 {
	vbc := make([]float64, g.N())
	state := NewSourceState(g.N())
	queue := make([]int, 0, g.N())
	for s := 0; s < g.N(); s++ {
		SingleSource(g, s, state, &queue)
		for _, w := range queue {
			if w != s {
				vbc[w] += state.Delta[w]
			}
		}
	}
	return vbc
}

// SingleSource runs one Brandes iteration from source s into state, reusing
// the provided state and queue buffers. After the call, state holds the
// distances, shortest-path counts and dependencies of every vertex w.r.t. s,
// and *queue holds the vertices reached, in BFS discovery order.
//
// The dependency accumulation scans, for every vertex, its incoming
// neighbours one level closer to the source rather than a predecessor list,
// which is the memory optimisation described in Section 3 of the paper.
func SingleSource(g *graph.Graph, s int, state *SourceState, queue *[]int) {
	n := g.N()
	q := (*queue)[:0]
	// Reset only the vertices touched by the previous call if the buffers are
	// already sized; otherwise (re)allocate.
	if len(state.Dist) != n {
		state.Dist = make([]int32, n)
		state.Sigma = make([]float64, n)
		state.Delta = make([]float64, n)
		for i := range state.Dist {
			state.Dist[i] = Unreachable
		}
	}
	for i := range state.Dist {
		state.Dist[i] = Unreachable
		state.Sigma[i] = 0
		state.Delta[i] = 0
	}

	state.Dist[s] = 0
	state.Sigma[s] = 1
	q = append(q, s)
	for head := 0; head < len(q); head++ {
		v := q[head]
		dv := state.Dist[v]
		sv := state.Sigma[v]
		for _, w32 := range g.Out(v) {
			w := int(w32)
			if state.Dist[w] == Unreachable {
				state.Dist[w] = dv + 1
				q = append(q, w)
			}
			if state.Dist[w] == dv+1 {
				state.Sigma[w] += sv
			}
		}
	}

	// Dependency accumulation in reverse BFS order, scanning neighbours one
	// level down instead of predecessor lists. The sum is gathered per vertex
	// over its out-neighbourhood — in (sorted) adjacency order — rather than
	// scattered from successors in stack order: this is the exact summation
	// the incremental repair (incremental.UpdateSource) performs when it
	// recomputes a dependency, so a freshly initialised per-source record is
	// bit-identical to an incrementally maintained one. Snapshot recovery
	// relies on that: the per-source data is regenerated by this pass, and
	// replayed updates must produce bit-identical deltas.
	for i := len(q) - 1; i >= 0; i-- {
		w := q[i]
		dw := state.Dist[w]
		sw := state.Sigma[w]
		var dep float64
		for _, x32 := range g.Out(w) {
			x := int(x32)
			if state.Dist[x] == dw+1 {
				dep += sw / state.Sigma[x] * (1 + state.Delta[x])
			}
		}
		state.Delta[w] = dep
	}
	*queue = q
}

// AccumulateSource folds the per-source state produced by SingleSource into
// the aggregate result. The edge contribution of a shortest-path DAG edge
// (v,w), with v one level closer to the source, is
// sigma[v]/sigma[w]*(1+delta[w]). It is exported so that the incremental
// framework can reuse it during its offline initialisation step.
func AccumulateSource(g *graph.Graph, s int, state *SourceState, res *Result) {
	for v := 0; v < g.N(); v++ {
		if state.Dist[v] == Unreachable {
			continue
		}
		if v != s {
			res.VBC[v] += state.Delta[v]
		}
		for _, w32 := range g.Out(v) {
			w := int(w32)
			if state.Dist[w] == state.Dist[v]+1 {
				c := state.Sigma[v] / state.Sigma[w] * (1 + state.Delta[w])
				res.EBC[EdgeKey(g, v, w)] += c
			}
		}
	}
}
