package bc

import (
	"runtime"
	"sync"

	"streambc/internal/graph"
)

// ComputeParallel runs Brandes' algorithm with the source set partitioned
// across workers goroutines (defaulting to GOMAXPROCS when workers <= 0).
// Each worker accumulates partial scores for its source range and the partial
// results are merged at the end, mirroring the map/reduce deployment of the
// framework.
func ComputeParallel(g *graph.Graph, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.N()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return Compute(g)
	}

	partials := make([]*Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lo, hi := SourceRange(n, workers, id)
			partials[id] = computeRange(g, lo, hi)
		}(w)
	}
	wg.Wait()

	res := NewResult(n)
	for _, p := range partials {
		if p == nil {
			continue
		}
		for v := range p.VBC {
			res.VBC[v] += p.VBC[v]
		}
		for e, c := range p.EBC {
			res.EBC[e] += c
		}
	}
	return res
}

// SourceRange returns the half-open range [lo, hi) of sources assigned to
// partition id out of parts partitions of n sources, balancing the remainder
// over the first partitions.
func SourceRange(n, parts, id int) (lo, hi int) {
	if parts <= 0 {
		return 0, n
	}
	base := n / parts
	extra := n % parts
	lo = id * base
	if id < extra {
		lo += id
	} else {
		lo += extra
	}
	size := base
	if id < extra {
		size++
	}
	return lo, lo + size
}

// StridedSources returns a copy of the sources of pool assigned to
// partition id out of parts under the strided scheme: the source of rank r
// goes to partition r mod parts. Unlike a contiguous split, the assignment
// of an existing source never changes when the pool grows at the end — new
// sources simply continue the stride — so the partition is a pure function
// of the (sorted) pool and the partition count, independent of the growth
// history. The incremental engine partitions its sources this way, which is
// what lets a snapshot-restored engine reproduce the exact per-worker
// delta grouping (and hence bit-identical floating-point accumulation) of
// the engine it replaces.
func StridedSources(pool []int, parts, id int) []int {
	if parts <= 0 {
		parts = 1
	}
	out := make([]int, 0, (len(pool)+parts-1)/parts)
	for j := id; j < len(pool); j += parts {
		out = append(out, pool[j])
	}
	return out
}

func computeRange(g *graph.Graph, lo, hi int) *Result {
	res := NewResult(g.N())
	state := NewSourceState(g.N())
	queue := make([]int, 0, g.N())
	for s := lo; s < hi; s++ {
		SingleSource(g, s, state, &queue)
		AccumulateSource(g, s, state, res)
	}
	return res
}
