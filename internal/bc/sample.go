package bc

import (
	"math/rand"
	"sort"

	"streambc/internal/graph"
)

// This file holds the source-sampling primitives of the approximate execution
// mode. Betweenness decomposes into independent per-source contributions
// (Definition 2.1), so maintaining only a uniform sample S of k sources and
// scaling every contribution by n/k yields an unbiased estimator of both VBC
// and EBC while cutting the O(n²) footprint and the per-update work to
// O(k·n). The incremental framework runs unchanged on the sampled source set;
// only the accumulation step applies the scaling factor.

// SampleSources returns a uniform random sample of k distinct sources drawn
// from {0, …, n-1}, in ascending order, deterministically for a given seed.
// k is clamped to [0, n]; k == n returns every vertex (the exact source set).
func SampleSources(n, k int, seed int64) []int {
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	if k == n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	perm := rand.New(rand.NewSource(seed)).Perm(n)
	sample := append([]int(nil), perm[:k]...)
	sort.Ints(sample)
	return sample
}

// AccumulateSourceScaled folds the per-source state produced by SingleSource
// into the aggregate result with every contribution multiplied by scale. It
// is the sampled-mode counterpart of AccumulateSource: with a uniform sample
// of k out of n sources and scale = n/k the accumulated scores are unbiased
// estimates of the exact ones (and scale = 1 reproduces AccumulateSource
// bit for bit).
func AccumulateSourceScaled(g *graph.Graph, s int, state *SourceState, res *Result, scale float64) {
	for v := 0; v < g.N(); v++ {
		if state.Dist[v] == Unreachable {
			continue
		}
		if v != s {
			res.VBC[v] += scale * state.Delta[v]
		}
		for _, w32 := range g.Out(v) {
			w := int(w32)
			if state.Dist[w] == state.Dist[v]+1 {
				c := state.Sigma[v] / state.Sigma[w] * (1 + state.Delta[w])
				res.EBC[EdgeKey(g, v, w)] += scale * c
			}
		}
	}
}

// ComputeSampled runs Brandes' algorithm from only the given sources and
// scales every contribution by scale, producing the static sampled-source
// betweenness estimate. It is the from-scratch reference for the incremental
// approximate mode: an incremental run over the same sample must converge to
// ComputeSampled of the final graph.
func ComputeSampled(g *graph.Graph, sources []int, scale float64) *Result {
	res := NewResult(g.N())
	state := NewSourceState(g.N())
	queue := make([]int, 0, g.N())
	for _, s := range sources {
		SingleSource(g, s, state, &queue)
		AccumulateSourceScaled(g, s, state, res, scale)
	}
	return res
}
