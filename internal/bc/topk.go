package bc

import (
	"sort"

	"streambc/internal/graph"
)

// VertexScore pairs a vertex with its betweenness.
type VertexScore struct {
	Vertex int
	Score  float64
}

// EdgeScore pairs an edge with its betweenness.
type EdgeScore struct {
	Edge  graph.Edge
	Score float64
}

// TopVertices returns the k vertices of res with the highest betweenness, in
// decreasing order (ties broken by vertex identifier). Out-of-range values of
// k are clamped to [0, n].
func TopVertices(res *Result, k int) []VertexScore {
	scores := make([]VertexScore, len(res.VBC))
	for v, x := range res.VBC {
		scores[v] = VertexScore{Vertex: v, Score: x}
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].Score != scores[j].Score {
			return scores[i].Score > scores[j].Score
		}
		return scores[i].Vertex < scores[j].Vertex
	})
	return scores[:clampK(k, len(scores))]
}

// TopEdges returns the k edges of res with the highest betweenness, in
// decreasing order (ties broken by edge order). Out-of-range values of k are
// clamped to [0, m].
func TopEdges(res *Result, k int) []EdgeScore {
	scores := make([]EdgeScore, 0, len(res.EBC))
	for e, x := range res.EBC {
		scores = append(scores, EdgeScore{Edge: e, Score: x})
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].Score != scores[j].Score {
			return scores[i].Score > scores[j].Score
		}
		if scores[i].Edge.U != scores[j].Edge.U {
			return scores[i].Edge.U < scores[j].Edge.U
		}
		return scores[i].Edge.V < scores[j].Edge.V
	})
	return scores[:clampK(k, len(scores))]
}

func clampK(k, n int) int {
	if k < 0 {
		return 0
	}
	if k > n {
		return n
	}
	return k
}
