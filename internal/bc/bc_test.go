package bc

import (
	"math"
	"math/rand"
	"testing"

	"streambc/internal/graph"
)

const tol = 1e-9

func approxEqual(a, b float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func buildGraph(t testing.TB, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for _, e := range edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", e[0], e[1], err)
		}
	}
	return g
}

func pathGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func starGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(0, i); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func completeGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddEdge(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

// randomGraph builds a connected-ish Erdős–Rényi graph for differential tests.
func randomGraph(t testing.TB, n int, p float64, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				if err := g.AddEdge(i, j); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return g
}

func randomDirectedGraph(t testing.TB, n int, p float64, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewDirected(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < p {
				if err := g.AddEdge(i, j); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return g
}

func resultsEqual(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if len(got.VBC) != len(want.VBC) {
		t.Fatalf("%s: VBC length %d, want %d", name, len(got.VBC), len(want.VBC))
	}
	for v := range want.VBC {
		if !approxEqual(got.VBC[v], want.VBC[v]) {
			t.Fatalf("%s: VBC[%d] = %g, want %g", name, v, got.VBC[v], want.VBC[v])
		}
	}
	for e, w := range want.EBC {
		if !approxEqual(got.EBC[e], w) {
			t.Fatalf("%s: EBC[%v] = %g, want %g", name, e, got.EBC[e], w)
		}
	}
	for e, w := range got.EBC {
		if _, ok := want.EBC[e]; !ok && !approxEqual(w, 0) {
			t.Fatalf("%s: unexpected EBC[%v] = %g", name, e, w)
		}
	}
}

func TestPathGraphAnalytic(t *testing.T) {
	// On a path 0-1-...-k, VBC(i) = 2*i*(n-1-i) and EBC(i,i+1) = 2*(i+1)*(n-1-i)
	// with the ordered-pair convention.
	n := 7
	g := pathGraph(t, n)
	res := Compute(g)
	for i := 0; i < n; i++ {
		want := 2 * float64(i) * float64(n-1-i)
		if !approxEqual(res.VBC[i], want) {
			t.Fatalf("VBC[%d] = %g, want %g", i, res.VBC[i], want)
		}
	}
	for i := 0; i+1 < n; i++ {
		want := 2 * float64(i+1) * float64(n-1-i)
		got := res.EBC[graph.Edge{U: i, V: i + 1}]
		if !approxEqual(got, want) {
			t.Fatalf("EBC[(%d,%d)] = %g, want %g", i, i+1, got, want)
		}
	}
}

func TestStarGraphAnalytic(t *testing.T) {
	n := 9
	g := starGraph(t, n)
	res := Compute(g)
	wantCentre := float64((n - 1) * (n - 2))
	if !approxEqual(res.VBC[0], wantCentre) {
		t.Fatalf("centre VBC = %g, want %g", res.VBC[0], wantCentre)
	}
	for i := 1; i < n; i++ {
		if !approxEqual(res.VBC[i], 0) {
			t.Fatalf("leaf VBC[%d] = %g, want 0", i, res.VBC[i])
		}
		want := 2*float64(n-2) + 2
		got := res.EBC[graph.Edge{U: 0, V: i}]
		if !approxEqual(got, want) {
			t.Fatalf("EBC[(0,%d)] = %g, want %g", i, got, want)
		}
	}
}

func TestCompleteGraphAnalytic(t *testing.T) {
	g := completeGraph(t, 6)
	res := Compute(g)
	for v, b := range res.VBC {
		if !approxEqual(b, 0) {
			t.Fatalf("VBC[%d] = %g, want 0 in a clique", v, b)
		}
	}
	for e, b := range res.EBC {
		if !approxEqual(b, 2) {
			t.Fatalf("EBC[%v] = %g, want 2 in a clique", e, b)
		}
	}
}

func TestBridgeGraph(t *testing.T) {
	// Two triangles joined by a bridge (2,3): the bridge carries all 2*3*3
	// cross pairs plus its endpoints' pair.
	g := buildGraph(t, 6, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}})
	res := Compute(g)
	bridge := res.EBC[graph.Edge{U: 2, V: 3}]
	if !approxEqual(bridge, 2*9) {
		t.Fatalf("bridge EBC = %g, want 18", bridge)
	}
	if !(res.VBC[2] > res.VBC[0] && res.VBC[3] > res.VBC[5]) {
		t.Fatalf("bridge endpoints should dominate: %v", res.VBC)
	}
}

func TestDisconnectedGraph(t *testing.T) {
	g := buildGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	res := Compute(g)
	if !approxEqual(res.VBC[1], 2) {
		t.Fatalf("VBC[1] = %g, want 2", res.VBC[1])
	}
	if !approxEqual(res.VBC[3], 0) || !approxEqual(res.VBC[4], 0) {
		t.Fatalf("isolated component VBC = %v", res.VBC)
	}
}

func TestAgainstNaiveUndirected(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g := randomGraph(t, 20, 0.15, seed)
		resultsEqual(t, "brandes-vs-naive", Compute(g), Naive(g))
	}
}

func TestAgainstNaiveDirected(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g := randomDirectedGraph(t, 15, 0.12, seed)
		resultsEqual(t, "brandes-vs-naive-directed", Compute(g), Naive(g))
	}
}

func TestPredecessorVariantMatches(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := randomGraph(t, 30, 0.1, seed)
		resultsEqual(t, "mp-vs-mo", ComputeWithPredecessors(g), Compute(g))
	}
	gd := randomDirectedGraph(t, 20, 0.1, 3)
	resultsEqual(t, "mp-vs-mo-directed", ComputeWithPredecessors(gd), Compute(gd))
}

func TestParallelMatchesSequential(t *testing.T) {
	g := randomGraph(t, 60, 0.08, 42)
	want := Compute(g)
	for _, workers := range []int{1, 2, 3, 8, 100} {
		resultsEqual(t, "parallel", ComputeParallel(g, workers), want)
	}
	if got := ComputeParallel(g, 0); got == nil {
		t.Fatal("ComputeParallel(0) returned nil")
	}
}

func TestComputeVertexOnlyMatches(t *testing.T) {
	g := randomGraph(t, 40, 0.1, 7)
	want := Compute(g)
	got := ComputeVertexOnly(g)
	for v := range want.VBC {
		if !approxEqual(got[v], want.VBC[v]) {
			t.Fatalf("VBC[%d] = %g, want %g", v, got[v], want.VBC[v])
		}
	}
}

func TestSourceRangePartitioning(t *testing.T) {
	n, parts := 17, 5
	covered := make([]int, n)
	prevHi := 0
	for id := 0; id < parts; id++ {
		lo, hi := SourceRange(n, parts, id)
		if lo != prevHi {
			t.Fatalf("partition %d starts at %d, want %d", id, lo, prevHi)
		}
		if hi < lo {
			t.Fatalf("partition %d: hi %d < lo %d", id, hi, lo)
		}
		for i := lo; i < hi; i++ {
			covered[i]++
		}
		prevHi = hi
	}
	if prevHi != n {
		t.Fatalf("partitions end at %d, want %d", prevHi, n)
	}
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("source %d covered %d times", i, c)
		}
	}
	if lo, hi := SourceRange(10, 0, 0); lo != 0 || hi != 10 {
		t.Fatalf("SourceRange with 0 parts = (%d,%d)", lo, hi)
	}
}

func TestSingleSourceState(t *testing.T) {
	g := buildGraph(t, 5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}})
	state := NewSourceState(g.N())
	var queue []int
	SingleSource(g, 0, state, &queue)
	if state.Dist[4] != 3 {
		t.Fatalf("dist[4] = %d, want 3", state.Dist[4])
	}
	if state.Sigma[3] != 2 || state.Sigma[4] != 2 {
		t.Fatalf("sigma = %v", state.Sigma)
	}
	// delta[3] from source 0: vertex 4 depends fully on 3 => delta[3] >= 1.
	if state.Delta[3] < 1 {
		t.Fatalf("delta[3] = %g, want >= 1", state.Delta[3])
	}
	// Reuse of the same state must reset correctly.
	SingleSource(g, 4, state, &queue)
	if state.Dist[0] != 3 || state.Sigma[0] != 2 {
		t.Fatalf("after reuse: dist[0]=%d sigma[0]=%g", state.Dist[0], state.Sigma[0])
	}
}

func TestResultClone(t *testing.T) {
	g := pathGraph(t, 4)
	res := Compute(g)
	c := res.Clone()
	c.VBC[1] = -1
	c.EBC[graph.Edge{U: 0, V: 1}] = -1
	if res.VBC[1] == -1 || res.EBC[graph.Edge{U: 0, V: 1}] == -1 {
		t.Fatal("Clone is not independent of the original")
	}
}

func TestDirectedCycleBetweenness(t *testing.T) {
	// Directed 4-cycle 0->1->2->3->0. Each vertex lies on paths between the
	// others: VBC(v) = sum over ordered pairs (s,t) passing through v.
	g := graph.NewDirected(4)
	for i := 0; i < 4; i++ {
		if err := g.AddEdge(i, (i+1)%4); err != nil {
			t.Fatal(err)
		}
	}
	res := Compute(g)
	// For a directed n-cycle every vertex has betweenness (n-1)(n-2)/2 = 3.
	for v, b := range res.VBC {
		if !approxEqual(b, 3) {
			t.Fatalf("VBC[%d] = %g, want 3", v, b)
		}
	}
	resultsEqual(t, "directed-cycle-naive", res, Naive(g))
}
