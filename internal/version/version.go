// Package version carries the build version stamped into the binaries.
package version

// Version identifies the build. It is "dev" for plain `go build` and is
// overwritten by release/CI builds via
//
//	go build -ldflags "-X streambc/internal/version.Version=<v>"
var Version = "dev"
