package engine

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"

	"streambc/internal/bc"
	"streambc/internal/graph"
)

// snapshotTestEngine builds an engine over a small random-ish graph and
// applies a mixed update stream so the snapshot captures a non-trivial state
// (including a removal, whose EBC entry must not reappear after restore).
func snapshotTestEngine(t *testing.T, workers int) (*Engine, []graph.Update) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	g := graph.New(20)
	for g.M() < 40 {
		u, v := rng.Intn(20), rng.Intn(20)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			t.Fatal(err)
		}
	}
	e, err := New(g, Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	edges := e.Graph().Edges()
	upds := []graph.Update{
		graph.Removal(edges[0].U, edges[0].V),
		graph.Addition(edges[0].U, edges[0].V),
		graph.Removal(edges[3].U, edges[3].V),
		graph.Addition(5, 21), // grows the graph
	}
	for _, u := range upds {
		if err := e.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	return e, upds
}

func sameScores(t *testing.T, a, b *bc.Result) {
	t.Helper()
	if len(a.VBC) != len(b.VBC) {
		t.Fatalf("VBC length %d != %d", len(a.VBC), len(b.VBC))
	}
	for v := range a.VBC {
		if a.VBC[v] != b.VBC[v] {
			t.Fatalf("VBC[%d]: %v != %v", v, a.VBC[v], b.VBC[v])
		}
	}
	if len(a.EBC) != len(b.EBC) {
		t.Fatalf("EBC size %d != %d", len(a.EBC), len(b.EBC))
	}
	for e, x := range a.EBC {
		if y, ok := b.EBC[e]; !ok || x != y {
			t.Fatalf("EBC[%v]: %v != %v (present=%v)", e, x, y, ok)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	e, _ := snapshotTestEngine(t, 2)
	defer e.Close()

	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, e); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	st, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if st.Applied != e.Stats().UpdatesApplied {
		t.Fatalf("applied offset = %d, want %d", st.Applied, e.Stats().UpdatesApplied)
	}
	if got, want := st.Graph.Edges(), e.Graph().Edges(); len(got) != len(want) {
		t.Fatalf("edge count %d != %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("edge %d: %v != %v", i, got[i], want[i])
			}
		}
	}
	sameScores(t, e.Result(), st.Scores)

	restored, err := RestoreEngine(st, Config{Workers: 3})
	if err != nil {
		t.Fatalf("RestoreEngine: %v", err)
	}
	defer restored.Close()
	if restored.Stats().UpdatesApplied != e.Stats().UpdatesApplied {
		t.Fatal("restored engine lost the applied-update offset")
	}
	sameScores(t, e.Result(), restored.Result())

	// The regenerated per-source data must keep the restored engine exact:
	// applying the same new updates to both engines must agree with a
	// from-scratch recomputation.
	more := []graph.Update{graph.Addition(0, 21), graph.Removal(0, 21), graph.Addition(2, 19)}
	for _, u := range more {
		if err := e.Apply(u); err != nil {
			t.Fatal(err)
		}
		if err := restored.Apply(u); err != nil {
			t.Fatal(err)
		}
	}
	want := bc.Compute(restored.Graph())
	for v := range want.VBC {
		if diff := want.VBC[v] - restored.VBC()[v]; diff > 1e-7 || diff < -1e-7 {
			t.Fatalf("restored VBC[%d] = %v, want %v", v, restored.VBC()[v], want.VBC[v])
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	e, _ := snapshotTestEngine(t, 1)
	defer e.Close()
	var a, b bytes.Buffer
	if err := WriteSnapshot(&a, e); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&b, e); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical states must produce byte-identical snapshots")
	}
}

func TestSnapshotDetectsCorruption(t *testing.T) {
	e, _ := snapshotTestEngine(t, 1)
	defer e.Close()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, e); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte: the checksum (or a structural check) must fail.
	corrupt := append([]byte(nil), buf.Bytes()...)
	corrupt[len(corrupt)/2] ^= 0xff
	if _, err := ReadSnapshot(bytes.NewReader(corrupt)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("corrupted snapshot: err = %v, want ErrBadSnapshot", err)
	}

	// Truncation must fail too.
	if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes()[:buf.Len()-5])); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("truncated snapshot: err = %v, want ErrBadSnapshot", err)
	}

	// Bad magic.
	if _, err := ReadSnapshot(bytes.NewReader([]byte("not a snapshot"))); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("bad magic: err = %v, want ErrBadSnapshot", err)
	}
}

func TestSnapshotDirectedGraph(t *testing.T) {
	g := graph.NewDirected(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Apply(graph.Removal(1, 3)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, e); err != nil {
		t.Fatal(err)
	}
	st, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Graph.Directed() {
		t.Fatal("directedness must round-trip")
	}
	restored, err := RestoreEngine(st, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	sameScores(t, e.Result(), restored.Result())
}

func TestSnapshotCorruptHeaderDoesNotAllocate(t *testing.T) {
	// A header claiming billions of vertices over a tiny payload must fail
	// fast (EOF while decoding) instead of allocating n-sized structures
	// before the checksum is checked.
	var buf bytes.Buffer
	buf.WriteString("STBCSNAP")
	var tmp [10]byte
	for _, x := range []uint64{1, 0, 1 << 39, 1 << 39} { // version, flags, n, m
		n := binary.PutUvarint(tmp[:], x)
		buf.Write(tmp[:n])
	}
	buf.WriteString("short")
	if _, err := ReadSnapshot(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("err = %v, want ErrBadSnapshot", err)
	}
}

func TestSnapshotRejectsImplausibleAppliedOffset(t *testing.T) {
	// A structurally valid, correctly checksummed snapshot whose applied
	// counter overflows int must be rejected, not decoded as negative.
	var payload bytes.Buffer
	payload.WriteString("STBCSNAP")
	var tmp [10]byte
	// version, flags, n=0, m=0, (no edges), applied=2^64-1.
	for _, x := range []uint64{1, 0, 0, 0, ^uint64(0)} {
		n := binary.PutUvarint(tmp[:], x)
		payload.Write(tmp[:n])
	}
	full := payload.Bytes()
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(full))
	full = append(full, sum[:]...)
	if _, err := ReadSnapshot(bytes.NewReader(full)); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("err = %v, want ErrBadSnapshot", err)
	}
}

// TestSnapshotWALOffsetRoundTrip covers the version-3 snapshot: the
// write-ahead-log offset must survive the round trip, in exact and in
// sampled mode, and restoring must hand it back through Engine.WALOffset.
func TestSnapshotWALOffsetRoundTrip(t *testing.T) {
	for _, sampled := range []bool{false, true} {
		name := "exact"
		if sampled {
			name = "sampled"
		}
		t.Run(name, func(t *testing.T) {
			e, _ := snapshotTestEngine(t, 2)
			defer e.Close()
			if sampled {
				// Rebuild in sampled mode over the same graph.
				se, err := New(e.Graph().Clone(), Config{Workers: 2, Sources: bc.SampleSources(e.Graph().N(), 7, 3)})
				if err != nil {
					t.Fatal(err)
				}
				defer se.Close()
				e = se
			}
			e.SetWALOffset(42)
			var buf bytes.Buffer
			if err := WriteSnapshot(&buf, e); err != nil {
				t.Fatal(err)
			}
			st, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if st.WALOffset != 42 {
				t.Fatalf("WALOffset = %d, want 42", st.WALOffset)
			}
			if sampled && len(st.Sources) != 7 {
				t.Fatalf("sample lost: %v", st.Sources)
			}
			r, err := RestoreEngine(st, Config{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			if r.WALOffset() != 42 {
				t.Fatalf("restored WALOffset = %d, want 42", r.WALOffset())
			}
			sameScores(t, e.Result(), r.Result())
		})
	}
}

// TestSnapshotWithoutWALStaysVersion1 pins the compatibility guarantee: an
// engine that never saw a write-ahead log keeps writing the exact pre-WAL
// snapshot bytes (version 1), so old snapshots and new ones are
// interchangeable when the feature is off.
func TestSnapshotWithoutWALStaysVersion1(t *testing.T) {
	e, _ := snapshotTestEngine(t, 1)
	defer e.Close()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, e); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Byte 8 (after the magic) is the version uvarint.
	if b[8] != snapshotVersion1 {
		t.Fatalf("version byte = %d, want %d", b[8], snapshotVersion1)
	}
	e.SetWALOffset(7)
	buf.Reset()
	if err := WriteSnapshot(&buf, e); err != nil {
		t.Fatal(err)
	}
	if b := buf.Bytes(); b[8] != snapshotVersion3 {
		t.Fatalf("version byte with WAL offset = %d, want %d", b[8], snapshotVersion3)
	}
}
