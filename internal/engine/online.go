package engine

import (
	"fmt"
	"time"

	"streambc/internal/graph"
)

// Applier is anything that can consume an edge update and keep betweenness up
// to date. Both the single-machine incremental.Updater and the parallel
// Engine satisfy it, so the online replay can compare them.
type Applier interface {
	Apply(graph.Update) error
}

// UpdateTiming records what happened to a single update of a timestamped
// stream during an online replay.
type UpdateTiming struct {
	// Arrival is the arrival time of the update (seconds from stream start).
	Arrival float64
	// Processing is the measured wall-clock processing time in seconds.
	Processing float64
	// Completed is the simulated completion time: processing starts when the
	// update arrives or when the previous update finishes, whichever is later.
	Completed float64
	// Missed reports whether the updated scores were not ready before the
	// next update arrived (the paper's "missed" edges of Table 5).
	Missed bool
	// Delay is how long after the next arrival the scores became available
	// (zero when not missed).
	Delay float64
}

// ReplayReport summarises an online replay: the fraction of updates whose new
// betweenness scores were not ready before the next update arrived, and the
// average and maximum delay of those late updates (Table 5 and Figure 8).
type ReplayReport struct {
	Updates        int
	Missed         int
	MissedFraction float64
	AvgDelay       float64
	MaxDelay       float64
	// TotalProcessing is the sum of the measured processing times (seconds).
	TotalProcessing float64
	// Timings holds the per-update detail, in stream order.
	Timings []UpdateTiming
}

// Replay feeds a timestamped update stream to the applier, measuring the
// processing time of every update, and simulates the online behaviour: an
// update starts processing at its arrival time or as soon as the previous one
// finishes, and it is "missed" when it completes after the next update has
// already arrived. The stream must be sorted by arrival time.
func Replay(a Applier, stream []graph.Update) (*ReplayReport, error) {
	report := &ReplayReport{Updates: len(stream), Timings: make([]UpdateTiming, 0, len(stream))}
	clock := 0.0
	var delaySum float64
	for i, upd := range stream {
		if i > 0 && upd.Time < stream[i-1].Time {
			return nil, fmt.Errorf("engine: update stream not sorted by time at index %d", i)
		}
		start := time.Now()
		if err := a.Apply(upd); err != nil {
			return nil, fmt.Errorf("engine: replaying update %d (%v): %w", i, upd, err)
		}
		proc := time.Since(start).Seconds()
		report.TotalProcessing += proc

		begin := upd.Time
		if clock > begin {
			begin = clock
		}
		completed := begin + proc
		clock = completed

		t := UpdateTiming{Arrival: upd.Time, Processing: proc, Completed: completed}
		if i+1 < len(stream) && completed > stream[i+1].Time {
			t.Missed = true
			t.Delay = completed - stream[i+1].Time
			report.Missed++
			delaySum += t.Delay
			if t.Delay > report.MaxDelay {
				report.MaxDelay = t.Delay
			}
		}
		report.Timings = append(report.Timings, t)
	}
	if report.Updates > 0 {
		report.MissedFraction = float64(report.Missed) / float64(report.Updates)
	}
	if report.Missed > 0 {
		report.AvgDelay = delaySum / float64(report.Missed)
	}
	return report, nil
}

// RequiredWorkers estimates, from the average per-source processing time, how
// many workers are needed to keep updates online for a given inter-arrival
// time, following the model of Section 5.3: tU = tS * n / p + tM <= tI.
func RequiredWorkers(tSourceSeconds float64, numSources int, tMergeSeconds, interArrivalSeconds float64) int {
	budget := interArrivalSeconds - tMergeSeconds
	if budget <= 0 {
		return numSources // cannot be met: one source per machine is the limit
	}
	p := int(tSourceSeconds*float64(numSources)/budget) + 1
	if p < 1 {
		p = 1
	}
	if p > numSources && numSources > 0 {
		p = numSources
	}
	return p
}
