package engine

// Snapshot/restore for the serving layer: a snapshot captures everything
// needed to bring a restarted engine back to the exact externally visible
// state of the original — the evolving graph, the applied-update offset and
// the current vertex/edge betweenness scores. The per-source betweenness data
// BD[·] is deliberately not serialised (it is O(n²) and is regenerated
// exactly by one offline initialisation pass over the restored graph).
//
// Format (all multi-byte integers as unsigned varints, floats as
// little-endian IEEE-754 bits):
//
//	magic    [8]byte  "STBCSNAP"
//	version  uvarint  (1 = exact, 2 = adds the sampled-source block,
//	                   3 = adds the WAL-offset field, 4 = adds the shard
//	                   block)
//	flags    uvarint  bit 0: directed; bit 1: sampled (version >= 2);
//	                  bit 2: WAL offset present (version 3); bit 3: shard
//	                  block present (version 4)
//	n        uvarint  number of vertices
//	m        uvarint  number of edges
//	edges    m × (uvarint u, uvarint v)
//	applied  uvarint  cumulative updates applied
//	-- version 3, when flags bit 2 is set --
//	walOff   uvarint  write-ahead-log offset the snapshot covers
//	-- end of WAL block --
//	-- version 4, when flags bit 3 is set --
//	shardIdx uvarint  stride of the global source pool this engine owns
//	shardCnt uvarint  number of shards the pool is split across (>= 2)
//	-- end of shard block --
//	-- version >= 2, when flags bit 1 is set --
//	scale    float64  estimator factor (n/k at construction time)
//	k        uvarint  sample size
//	sources  k × uvarint, strictly ascending
//	-- end of sampled block --
//	vbc      n × float64
//	ebcLen   uvarint
//	ebc      ebcLen × (uvarint u, uvarint v, float64)
//	crc      uint32   CRC-32 (IEEE) of every byte before it
//
// The version written is the lowest one that can carry the engine's state:
// an exact-mode engine with no WAL always writes version 1, so those
// snapshots stay byte-identical to the pre-sampling format; a sampled engine
// writes version 2; an engine fed through a write-ahead log (WALOffset > 0)
// writes version 3, recording the log position its scores cover so recovery
// replays exactly the uncovered tail; a write-path shard writes version 4,
// recording which stride of the source pool its scores cover so recovery (and
// a follower bootstrapping from the shard) can never silently fold partial
// scores into the wrong shape. In a sampled shard snapshot the sources block
// holds the shard's stride of the global sample (the set the engine actually
// maintains); the scale stays the global n/k. The trailing checksum turns
// torn or corrupted snapshot files into load errors instead of silently
// wrong scores.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"streambc/internal/bc"
	"streambc/internal/graph"
)

var snapshotMagic = [8]byte{'S', 'T', 'B', 'C', 'S', 'N', 'A', 'P'}

const (
	snapshotVersion1 = 1 // exact mode
	snapshotVersion2 = 2 // sampled-source approximate mode
	snapshotVersion3 = 3 // adds the WAL-offset field
	snapshotVersion4 = 4 // adds the shard block
)

// flagSampled marks a snapshot (version >= 2) carrying a sampled-source
// block; flagWAL marks a version-3 snapshot carrying the WAL offset it
// covers; flagShard marks a version-4 snapshot of a write-path shard,
// carrying the stride of the source pool its scores cover.
const (
	flagSampled = 1 << 1
	flagWAL     = 1 << 2
	flagShard   = 1 << 3
)

// ErrBadSnapshot is wrapped by every snapshot decoding failure.
var ErrBadSnapshot = errors.New("engine: bad snapshot")

// SnapshotState is the decoded content of a snapshot: the restored graph,
// the applied-update offset and the betweenness scores at snapshot time,
// plus — for a snapshot taken in sampled mode — the source sample and its
// estimator scale (Sources nil and Scale 0 for exact snapshots), and — for a
// snapshot taken behind a write-ahead log — the WAL offset the scores cover
// (0 when no WAL was in use). A snapshot taken by a write-path shard also
// records which stride of the global source pool its scores cover
// (ShardCount 0 for non-sharded snapshots).
type SnapshotState struct {
	Graph      *graph.Graph
	Applied    int
	Scores     *bc.Result
	Sources    []int
	Scale      float64
	WALOffset  uint64
	ShardIndex int
	ShardCount int
}

// WriteSnapshot serialises the engine's graph, applied-update offset and
// scores to w. The caller must ensure no update is applied concurrently.
func WriteSnapshot(w io.Writer, e *Engine) error {
	e.foldParts() // a partition-scores engine snapshots its folded sum
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("engine: writing snapshot: %w", err)
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(x uint64) error {
		n := binary.PutUvarint(scratch[:], x)
		_, err := bw.Write(scratch[:n])
		return err
	}
	writeFloat := func(f float64) error {
		binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(f))
		_, err := bw.Write(scratch[:8])
		return err
	}

	g := e.g
	version := uint64(snapshotVersion1)
	flags := uint64(0)
	if g.Directed() {
		flags |= 1
	}
	if e.sample != nil {
		version = snapshotVersion2
		flags |= flagSampled
	}
	if e.walOffset > 0 {
		version = snapshotVersion3
		flags |= flagWAL
	}
	if e.shardCount > 1 {
		version = snapshotVersion4
		flags |= flagShard
	}
	edges := g.Edges()
	fields := []uint64{version, flags, uint64(g.N()), uint64(len(edges))}
	for _, x := range fields {
		if err := writeUvarint(x); err != nil {
			return fmt.Errorf("engine: writing snapshot: %w", err)
		}
	}
	for _, edge := range edges {
		if err := writeUvarint(uint64(edge.U)); err != nil {
			return fmt.Errorf("engine: writing snapshot: %w", err)
		}
		if err := writeUvarint(uint64(edge.V)); err != nil {
			return fmt.Errorf("engine: writing snapshot: %w", err)
		}
	}
	if err := writeUvarint(uint64(e.applied)); err != nil {
		return fmt.Errorf("engine: writing snapshot: %w", err)
	}
	if e.walOffset > 0 {
		if err := writeUvarint(e.walOffset); err != nil {
			return fmt.Errorf("engine: writing snapshot: %w", err)
		}
	}
	if e.shardCount > 1 {
		if err := writeUvarint(uint64(e.shardIndex)); err != nil {
			return fmt.Errorf("engine: writing snapshot: %w", err)
		}
		if err := writeUvarint(uint64(e.shardCount)); err != nil {
			return fmt.Errorf("engine: writing snapshot: %w", err)
		}
	}
	if e.sample != nil {
		if err := writeFloat(e.scale); err != nil {
			return fmt.Errorf("engine: writing snapshot: %w", err)
		}
		if err := writeUvarint(uint64(len(e.sample))); err != nil {
			return fmt.Errorf("engine: writing snapshot: %w", err)
		}
		for _, s := range e.sample {
			if err := writeUvarint(uint64(s)); err != nil {
				return fmt.Errorf("engine: writing snapshot: %w", err)
			}
		}
	}
	for _, x := range e.res.VBC {
		if err := writeFloat(x); err != nil {
			return fmt.Errorf("engine: writing snapshot: %w", err)
		}
	}
	if err := writeUvarint(uint64(len(e.res.EBC))); err != nil {
		return fmt.Errorf("engine: writing snapshot: %w", err)
	}
	// Iterate edge scores in the deterministic Edges() order so identical
	// states produce byte-identical snapshots. Scores of edges no longer in
	// the graph cannot exist (removals delete their EBC entry).
	written := 0
	for _, edge := range edges {
		x, ok := e.res.EBC[edge]
		if !ok {
			continue
		}
		if err := writeUvarint(uint64(edge.U)); err != nil {
			return fmt.Errorf("engine: writing snapshot: %w", err)
		}
		if err := writeUvarint(uint64(edge.V)); err != nil {
			return fmt.Errorf("engine: writing snapshot: %w", err)
		}
		if err := writeFloat(x); err != nil {
			return fmt.Errorf("engine: writing snapshot: %w", err)
		}
		written++
	}
	if written != len(e.res.EBC) {
		return fmt.Errorf("engine: writing snapshot: %d edge scores do not correspond to live edges", len(e.res.EBC)-written)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("engine: writing snapshot: %w", err)
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := w.Write(sum[:]); err != nil {
		return fmt.Errorf("engine: writing snapshot: %w", err)
	}
	return nil
}

// crcReader hashes every byte it delivers so the trailing checksum can be
// verified after the payload has been decoded.
type crcReader struct {
	br  *bufio.Reader
	crc hash.Hash32
}

func (r *crcReader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err == nil {
		r.crc.Write([]byte{b})
	}
	return b, err
}

func (r *crcReader) Read(p []byte) (int, error) {
	n, err := r.br.Read(p)
	r.crc.Write(p[:n])
	return n, err
}

// ReadSnapshot decodes a snapshot previously written by WriteSnapshot,
// verifying the trailing checksum. Decoding happens in two phases: the
// payload is first read into slices that grow with the bytes actually
// present in the input, and the graph and result are only materialised after
// the checksum has verified — so a corrupted header claiming billions of
// vertices produces ErrBadSnapshot, not a gigantic allocation.
func ReadSnapshot(r io.Reader) (*SnapshotState, error) {
	cr := &crcReader{br: bufio.NewReader(r), crc: crc32.NewIEEE()}
	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %w", ErrBadSnapshot, err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadSnapshot, magic[:])
	}
	readUvarint := func(what string) (uint64, error) {
		x, err := binary.ReadUvarint(cr)
		if err != nil {
			return 0, fmt.Errorf("%w: reading %s: %w", ErrBadSnapshot, what, err)
		}
		return x, nil
	}
	readFloat := func(what string) (float64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(cr, buf[:]); err != nil {
			return 0, fmt.Errorf("%w: reading %s: %w", ErrBadSnapshot, what, err)
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
	}

	version, err := readUvarint("version")
	if err != nil {
		return nil, err
	}
	if version < snapshotVersion1 || version > snapshotVersion4 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, version)
	}
	flags, err := readUvarint("flags")
	if err != nil {
		return nil, err
	}
	directed := flags&1 != 0
	nu, err := readUvarint("vertex count")
	if err != nil {
		return nil, err
	}
	mu, err := readUvarint("edge count")
	if err != nil {
		return nil, err
	}
	const maxInt = int(^uint(0) >> 1)
	if nu > uint64(maxInt) || mu > uint64(maxInt) {
		return nil, fmt.Errorf("%w: implausible sizes n=%d m=%d", ErrBadSnapshot, nu, mu)
	}
	n, m := int(nu), int(mu)

	// Phase 1: decode the payload. Slices are appended to, never
	// preallocated from header counts, so memory stays proportional to the
	// input actually read; a truncated or corrupted file errors out long
	// before n-sized structures exist.
	var edges []graph.Edge
	for i := 0; i < m; i++ {
		uu, err := readUvarint("edge endpoint")
		if err != nil {
			return nil, err
		}
		vv, err := readUvarint("edge endpoint")
		if err != nil {
			return nil, err
		}
		if uu >= nu || vv >= nu {
			return nil, fmt.Errorf("%w: edge (%d,%d) out of range (n=%d)", ErrBadSnapshot, uu, vv, nu)
		}
		edges = append(edges, graph.Edge{U: int(uu), V: int(vv)})
	}
	applied, err := readUvarint("applied-update offset")
	if err != nil {
		return nil, err
	}
	if applied > uint64(maxInt) {
		return nil, fmt.Errorf("%w: implausible applied-update offset %d", ErrBadSnapshot, applied)
	}
	var walOffset uint64
	if version >= snapshotVersion3 && flags&flagWAL != 0 {
		walOffset, err = readUvarint("WAL offset")
		if err != nil {
			return nil, err
		}
	}
	var shardIndex, shardCount int
	if version >= snapshotVersion4 && flags&flagShard != 0 {
		si, err := readUvarint("shard index")
		if err != nil {
			return nil, err
		}
		sc, err := readUvarint("shard count")
		if err != nil {
			return nil, err
		}
		if sc < 2 || si >= sc || sc > uint64(maxInt) {
			return nil, fmt.Errorf("%w: implausible shard %d/%d", ErrBadSnapshot, si, sc)
		}
		shardIndex, shardCount = int(si), int(sc)
	}
	var sample []int
	var scale float64
	if version >= snapshotVersion2 && flags&flagSampled != 0 {
		scale, err = readFloat("sample scale")
		if err != nil {
			return nil, err
		}
		if !(scale > 0) {
			return nil, fmt.Errorf("%w: implausible sample scale %g", ErrBadSnapshot, scale)
		}
		ku, err := readUvarint("sample size")
		if err != nil {
			return nil, err
		}
		if ku == 0 || ku > nu {
			return nil, fmt.Errorf("%w: implausible sample size %d (n=%d)", ErrBadSnapshot, ku, nu)
		}
		for i := 0; i < int(ku); i++ {
			su, err := readUvarint("sampled source")
			if err != nil {
				return nil, err
			}
			if su >= nu {
				return nil, fmt.Errorf("%w: sampled source %d out of range (n=%d)", ErrBadSnapshot, su, nu)
			}
			if len(sample) > 0 && int(su) <= sample[len(sample)-1] {
				return nil, fmt.Errorf("%w: sampled sources not strictly ascending", ErrBadSnapshot)
			}
			sample = append(sample, int(su))
		}
	}
	var vbc []float64
	for v := 0; v < n; v++ {
		x, err := readFloat("vertex score")
		if err != nil {
			return nil, err
		}
		vbc = append(vbc, x)
	}
	el, err := readUvarint("edge score count")
	if err != nil {
		return nil, err
	}
	if el > mu {
		return nil, fmt.Errorf("%w: %d edge scores for %d edges", ErrBadSnapshot, el, mu)
	}
	type edgeScore struct {
		e graph.Edge
		x float64
	}
	var ebc []edgeScore
	for i := 0; i < int(el); i++ {
		uu, err := readUvarint("edge score endpoint")
		if err != nil {
			return nil, err
		}
		vv, err := readUvarint("edge score endpoint")
		if err != nil {
			return nil, err
		}
		if uu >= nu || vv >= nu {
			return nil, fmt.Errorf("%w: edge score (%d,%d) out of range (n=%d)", ErrBadSnapshot, uu, vv, nu)
		}
		x, err := readFloat("edge score")
		if err != nil {
			return nil, err
		}
		ebc = append(ebc, edgeScore{e: graph.Edge{U: int(uu), V: int(vv)}, x: x})
	}
	want := cr.crc.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(cr.br, sum[:]); err != nil {
		return nil, fmt.Errorf("%w: reading checksum: %w", ErrBadSnapshot, err)
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch (file %08x, computed %08x)", ErrBadSnapshot, got, want)
	}

	// Phase 2: the payload is authentic; build the graph and scores.
	var g *graph.Graph
	if directed {
		g = graph.NewDirected(n)
	} else {
		g = graph.New(n)
	}
	for _, e := range edges {
		if err := g.AddEdge(e.U, e.V); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
		}
	}
	scores := bc.NewResult(n)
	copy(scores.VBC, vbc)
	for _, es := range ebc {
		if !g.HasEdge(es.e.U, es.e.V) {
			return nil, fmt.Errorf("%w: score for missing edge %v", ErrBadSnapshot, es.e)
		}
		scores.EBC[bc.EdgeKey(g, es.e.U, es.e.V)] = es.x
	}
	return &SnapshotState{
		Graph: g, Applied: int(applied), Scores: scores,
		Sources: sample, Scale: scale, WALOffset: walOffset,
		ShardIndex: shardIndex, ShardCount: shardCount,
	}, nil
}

// RestoreEngine builds a running engine from a decoded snapshot: it reruns
// the offline initialisation over the restored graph (regenerating the
// per-source data BD[·]) and then overwrites the recomputed scores with the
// snapshotted ones, so queries after a restart return exactly the values
// served before it.
//
// A snapshot taken in sampled mode records its source sample and estimator
// scale; those take precedence over cfg.Sources/cfg.Scale, because the
// snapshotted scores are only coherent with the sample they were accumulated
// over. The same holds for the shard identity of a sharded snapshot: a
// configured shard must match it exactly (the scores cover exactly that
// stride of the source pool, so restoring into any other stride — or into a
// non-sharded engine, or a non-sharded snapshot into a shard — would be
// silently wrong by construction and is refused). An unconfigured cfg adopts
// the snapshot's shard identity, which is how a replica bootstrapping from a
// shard's snapshot ends up maintaining the right stride automatically. Other
// configuration (workers, store backend) is free to differ from the
// snapshotted engine's.
func RestoreEngine(st *SnapshotState, cfg Config) (*Engine, error) {
	if cfg.PartitionScores {
		return nil, errors.New("engine: cannot restore into a partition-scores engine (snapshots hold the folded sum, not the per-worker partials)")
	}
	switch {
	case st.ShardCount > 1 && cfg.ShardCount > 1:
		if st.ShardCount != cfg.ShardCount || st.ShardIndex != cfg.ShardIndex {
			return nil, fmt.Errorf("engine: snapshot covers shard %d/%d, configured as shard %d/%d (resharding requires a fresh initialisation)",
				st.ShardIndex, st.ShardCount, cfg.ShardIndex, cfg.ShardCount)
		}
	case st.ShardCount > 1:
		cfg.ShardIndex, cfg.ShardCount = st.ShardIndex, st.ShardCount
	case cfg.ShardCount > 1:
		return nil, fmt.Errorf("engine: cannot restore a non-sharded snapshot into shard %d/%d (its scores cover every source)",
			cfg.ShardIndex, cfg.ShardCount)
	}
	if st.Sources != nil {
		cfg.Sources = st.Sources
		cfg.Scale = st.Scale
	}
	// A sampled sharded snapshot stores the shard's stride of the sample;
	// constructing from it must not stride a second time.
	e, err := newEngine(st.Graph, cfg, st.Sources != nil && cfg.ShardCount > 1)
	if err != nil {
		return nil, err
	}
	if err := e.ReplaceScores(st.Scores); err != nil {
		e.Close()
		return nil, err
	}
	e.SetUpdatesApplied(st.Applied)
	e.SetWALOffset(st.WALOffset)
	return e, nil
}
