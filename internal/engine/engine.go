// Package engine runs the incremental betweenness framework on a pool of
// shared-nothing workers, mirroring the parallel deployment of Section 5 of
// the paper: the source set is split into contiguous ranges, each worker owns
// the betweenness data BD[Πi] of its range (in memory or on its own disk
// file), processes every update independently for its sources, and emits
// partial vertex/edge betweenness changes that a reducer folds into the
// global scores (Figure 4).
//
// Within a process the workers are goroutines; the rpc sub-files additionally
// provide a net/rpc embodiment where each worker is a separate server
// reachable over TCP, which is the shape a cluster deployment would take.
package engine

import (
	"fmt"
	"path/filepath"
	"sync"

	"streambc/internal/bc"
	"streambc/internal/bdstore"
	"streambc/internal/graph"
	"streambc/internal/incremental"
)

// StoreFactory builds the per-worker store holding the betweenness data of
// one source partition.
type StoreFactory func(workerID, numVertices int, sources []int) (incremental.Store, error)

// MemFactory returns a factory producing in-memory stores (the distributed
// "MO" configuration).
func MemFactory() StoreFactory {
	return func(_, n int, sources []int) (incremental.Store, error) {
		return bdstore.NewMemStoreForSources(n, sources), nil
	}
}

// DiskFactory returns a factory producing one on-disk store per worker inside
// dir (the distributed "DO" configuration, one file per machine/disk).
func DiskFactory(dir string) StoreFactory {
	return func(id, n int, sources []int) (incremental.Store, error) {
		path := filepath.Join(dir, fmt.Sprintf("bd-worker-%03d.bin", id))
		return bdstore.NewDiskStoreForSources(path, n, sources)
	}
}

// Config configures an Engine.
type Config struct {
	// Workers is the number of parallel workers (mappers). Values < 1 mean 1.
	Workers int
	// Store builds the per-worker stores; defaults to MemFactory().
	Store StoreFactory
}

// Stats aggregates the work counters of all workers.
type Stats struct {
	UpdatesApplied int
	SourcesSkipped int64
	SourcesUpdated int64
}

// Engine maintains betweenness centrality of an evolving graph using a pool
// of workers, each owning one partition of the source set.
type Engine struct {
	g       *graph.Graph
	workers []*worker
	res     *bc.Result
	stats   Stats
	nextRR  int // round-robin cursor for assigning newly arrived sources
}

type worker struct {
	id      int
	store   incremental.Store
	sources []int
	ws      *incremental.Workspace
	rec     *bc.SourceState
	distBuf []int32
	delta   *incremental.Delta

	skipped int64
	updated int64
}

// New partitions the sources of g across cfg.Workers workers, runs the
// offline initialisation (a full Brandes pass, parallelised over the
// partitions) and returns an engine ready to process updates. The engine
// takes ownership of g.
func New(g *graph.Graph, cfg Config) (*Engine, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Workers > g.N() && g.N() > 0 {
		cfg.Workers = g.N()
	}
	if cfg.Store == nil {
		cfg.Store = MemFactory()
	}
	e := &Engine{g: g, res: bc.NewResult(g.N())}
	n := g.N()
	for id := 0; id < cfg.Workers; id++ {
		lo, hi := bc.SourceRange(n, cfg.Workers, id)
		sources := make([]int, 0, hi-lo)
		for s := lo; s < hi; s++ {
			sources = append(sources, s)
		}
		store, err := cfg.Store(id, n, sources)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("engine: creating store for worker %d: %w", id, err)
		}
		e.workers = append(e.workers, &worker{
			id:      id,
			store:   store,
			sources: sources,
			ws:      incremental.NewWorkspace(n),
			rec:     bc.NewSourceState(n),
			delta:   incremental.NewDelta(),
		})
	}
	if err := e.initialize(); err != nil {
		e.Close()
		return nil, err
	}
	return e, nil
}

// initialize runs step 1 of the framework: one Brandes iteration per source,
// executed in parallel across the workers, storing BD[s] and accumulating the
// initial betweenness scores.
func (e *Engine) initialize() error {
	partials := make([]*bc.Result, len(e.workers))
	errs := make([]error, len(e.workers))
	var wg sync.WaitGroup
	for i, w := range e.workers {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			partial := bc.NewResult(e.g.N())
			state := bc.NewSourceState(e.g.N())
			var queue []int
			for _, s := range w.sources {
				bc.SingleSource(e.g, s, state, &queue)
				bc.AccumulateSource(e.g, s, state, partial)
				if err := w.store.Save(s, state); err != nil {
					errs[i] = fmt.Errorf("engine: worker %d saving source %d: %w", w.id, s, err)
					return
				}
			}
			partials[i] = partial
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, p := range partials {
		if p == nil {
			continue
		}
		for v := range p.VBC {
			e.res.VBC[v] += p.VBC[v]
		}
		for k, x := range p.EBC {
			e.res.EBC[k] += x
		}
	}
	return nil
}

// Graph returns the evolving graph (read-only for callers).
func (e *Engine) Graph() *graph.Graph { return e.g }

// Result returns the live betweenness scores.
func (e *Engine) Result() *bc.Result { return e.res }

// VBC returns the current vertex betweenness (live slice, do not modify).
func (e *Engine) VBC() []float64 { return e.res.VBC }

// EBC returns the current edge betweenness (live map, do not modify).
func (e *Engine) EBC() map[graph.Edge]float64 { return e.res.EBC }

// Workers returns the number of workers.
func (e *Engine) Workers() int { return len(e.workers) }

// Stats returns aggregated work counters.
func (e *Engine) Stats() Stats {
	st := e.stats
	for _, w := range e.workers {
		st.SourcesSkipped += w.skipped
		st.SourcesUpdated += w.updated
	}
	return st
}

// ResultSnapshot returns a deep copy of the current betweenness scores. The
// caller must ensure no update is applied concurrently; the copy can then be
// read freely while the engine keeps processing updates (the snapshot-on-read
// pattern used by the serving layer).
func (e *Engine) ResultSnapshot() *bc.Result { return e.res.Clone() }

// SetUpdatesApplied overwrites the cumulative applied-update counter. It is
// used when restoring an engine from a snapshot so that the applied-update
// offset of the stream survives a restart.
func (e *Engine) SetUpdatesApplied(n int) { e.stats.UpdatesApplied = n }

// ReplaceScores overwrites the live betweenness scores with res (deep copy).
// It is used when restoring from a snapshot: the offline initialisation
// recomputes the scores from the graph, but overwriting them with the
// snapshotted values guarantees a bit-exact round trip regardless of
// floating-point accumulation order.
func (e *Engine) ReplaceScores(res *bc.Result) error {
	if len(res.VBC) != e.g.N() {
		return fmt.Errorf("engine: replacing scores: got %d vertex scores for %d vertices", len(res.VBC), e.g.N())
	}
	e.res.VBC = append(e.res.VBC[:0], res.VBC...)
	clear(e.res.EBC)
	for k, v := range res.EBC {
		e.res.EBC[k] = v
	}
	return nil
}

// EnsureVertices grows the graph, the worker stores and the result so that
// at least n vertices exist, exactly as an addition referencing vertex n-1
// would. Isolated vertices have zero betweenness, so no scores change.
func (e *Engine) EnsureVertices(n int) error {
	if n <= e.g.N() {
		return nil
	}
	return e.growTo(n)
}

// Apply processes one update: the map phase runs the per-source incremental
// algorithm on every worker in parallel, the reduce phase merges the partial
// betweenness changes into the global result.
func (e *Engine) Apply(upd graph.Update) error {
	if err := e.validate(upd); err != nil {
		return err
	}
	if !upd.Remove {
		if m := max(upd.U, upd.V); m >= e.g.N() {
			if err := e.growTo(m + 1); err != nil {
				return err
			}
		}
	}
	if err := e.g.Apply(upd); err != nil {
		return err
	}

	errs := make([]error, len(e.workers))
	var wg sync.WaitGroup
	for i, w := range e.workers {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			errs[i] = w.apply(e.g, upd)
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for _, w := range e.workers {
		w.delta.ApplyTo(e.res)
		w.delta.Reset()
	}
	if upd.Remove {
		delete(e.res.EBC, bc.EdgeKey(e.g, upd.U, upd.V))
	}
	e.stats.UpdatesApplied++
	return nil
}

// ApplyAll applies a stream of updates in order.
func (e *Engine) ApplyAll(updates []graph.Update) (int, error) {
	for i, upd := range updates {
		if err := e.Apply(upd); err != nil {
			return i, err
		}
	}
	return len(updates), nil
}

func (w *worker) apply(g *graph.Graph, upd graph.Update) error {
	directed := g.Directed()
	for _, s := range w.sources {
		if err := w.store.LoadDistances(s, &w.distBuf); err != nil {
			return fmt.Errorf("engine: worker %d loading distances of source %d: %w", w.id, s, err)
		}
		if !incremental.Affected(w.distBuf, upd, directed) {
			w.skipped++
			continue
		}
		if err := w.store.Load(s, w.rec); err != nil {
			return fmt.Errorf("engine: worker %d loading source %d: %w", w.id, s, err)
		}
		if incremental.UpdateSource(g, s, upd, w.rec, w.delta, w.ws) {
			if err := w.store.Save(s, w.rec); err != nil {
				return fmt.Errorf("engine: worker %d saving source %d: %w", w.id, s, err)
			}
		}
		w.updated++
	}
	return nil
}

func (e *Engine) validate(upd graph.Update) error {
	if upd.U == upd.V {
		return graph.ErrSelfLoop
	}
	if upd.U < 0 || upd.V < 0 {
		return fmt.Errorf("%w: negative vertex in %v", graph.ErrVertexRange, upd)
	}
	if upd.Remove {
		if !e.g.HasEdge(upd.U, upd.V) {
			return fmt.Errorf("%w: %v", graph.ErrMissingEdge, upd.Edge())
		}
		return nil
	}
	if upd.U < e.g.N() && upd.V < e.g.N() && e.g.HasEdge(upd.U, upd.V) {
		return fmt.Errorf("%w: %v", graph.ErrDuplicateEdge, upd.Edge())
	}
	return nil
}

// growTo extends the graph, every worker store and the result to n vertices;
// the new sources are spread over the workers round-robin.
func (e *Engine) growTo(n int) error {
	old := e.g.N()
	for e.g.N() < n {
		e.g.AddVertex()
	}
	for _, w := range e.workers {
		if err := w.store.Grow(n); err != nil {
			return fmt.Errorf("engine: growing store of worker %d: %w", w.id, err)
		}
	}
	for s := old; s < n; s++ {
		w := e.workers[e.nextRR%len(e.workers)]
		e.nextRR++
		if err := w.store.AddSource(s); err != nil {
			return fmt.Errorf("engine: adding source %d to worker %d: %w", s, w.id, err)
		}
		w.sources = append(w.sources, s)
	}
	for len(e.res.VBC) < n {
		e.res.VBC = append(e.res.VBC, 0)
	}
	return nil
}

// Close releases every worker store.
func (e *Engine) Close() error {
	var firstErr error
	for _, w := range e.workers {
		if w == nil || w.store == nil {
			continue
		}
		if err := w.store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
