// Package engine runs the incremental betweenness framework on a pool of
// shared-nothing workers, mirroring the parallel deployment of Section 5 of
// the paper: the source set is split into contiguous ranges, each worker owns
// the betweenness data BD[Πi] of its range (in memory or on its own disk
// file), processes every update independently for its sources, and emits
// partial vertex/edge betweenness changes that a reducer folds into the
// global scores (Figure 4).
//
// Within a process the workers are persistent goroutines fed tasks over
// channels; the rpc sub-files additionally provide a net/rpc embodiment where
// each worker is a separate server reachable over TCP, which is the shape a
// cluster deployment would take. Both embodiments expose the same batched
// execution path: ApplyBatch ships a whole batch of updates through the
// workers with one store load/save per affected source and one reduce of the
// partial deltas at the end of the batch.
//
// Both embodiments also run on an explicit source list instead of the full
// vertex set (Config.Sources / NewSampledCluster): the sampled-source
// approximate mode, where only k uniformly sampled sources are maintained
// and every contribution is scaled by n/k, trading bounded estimation error
// for k/n of the memory and update cost.
package engine

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"streambc/internal/bc"
	"streambc/internal/bdstore"
	"streambc/internal/graph"
	"streambc/internal/incremental"
	"streambc/internal/obs"
)

// StoreFactory builds the per-worker store holding the betweenness data of
// one source partition.
type StoreFactory func(workerID, numVertices int, sources []int) (incremental.Store, error)

// MemFactory returns a factory producing in-memory stores (the distributed
// "MO" configuration).
func MemFactory() StoreFactory {
	return func(_, n int, sources []int) (incremental.Store, error) {
		return bdstore.NewMemStoreForSources(n, sources), nil
	}
}

// DiskFactory returns a factory producing one on-disk store per worker inside
// dir (the distributed "DO" configuration, one store per machine/disk). Each
// worker owns a sharded v2 store rooted at dir/worker-NNN; recreating an
// engine over the same directory (a bcserved restart rebuilding from
// snapshot + WAL) replaces the previous run's stores.
func DiskFactory(dir string) StoreFactory {
	return DiskFactoryOpts(dir, bdstore.Options{})
}

// DiskFactoryOpts is DiskFactory with explicit store options (segment size,
// mmap toggle). NumVertices, Sources and Mode are set per worker by the
// factory; the remaining fields pass through to bdstore.Open.
func DiskFactoryOpts(dir string, o bdstore.Options) StoreFactory {
	return func(id, n int, sources []int) (incremental.Store, error) {
		wo := o
		wo.NumVertices = n
		wo.Sources = sources
		if wo.Sources == nil {
			// Open treats nil as "every vertex": a worker's partition is
			// always explicit, even when it happens to be empty.
			wo.Sources = []int{}
		}
		wo.Mode = bdstore.ModeRecreate
		return bdstore.Open(filepath.Join(dir, fmt.Sprintf("worker-%03d", id)), wo)
	}
}

// Config configures an Engine.
type Config struct {
	// Workers is the number of parallel workers (mappers). Values < 1 mean 1.
	Workers int
	// Store builds the per-worker stores; defaults to MemFactory().
	Store StoreFactory
	// Sources, when non-nil, selects the sampled-source approximate mode: the
	// per-source betweenness data is maintained only for these sources
	// (partitioned across the workers) and every contribution is scaled by
	// Scale, so the accumulated scores are unbiased estimates of the exact
	// ones when Sources is a uniform sample. The sample is fixed for the life
	// of the engine: vertices arriving later in the stream are never added as
	// sources. nil means exact mode (every vertex is a source).
	Sources []int
	// Scale is the estimator factor of the sampled mode (normally n/k for a
	// sample of k out of n sources). Values <= 0 mean n/len(Sources),
	// computed at construction. Ignored in exact mode.
	Scale float64
	// Obs, when non-nil, registers the engine's metrics (apply-batch latency,
	// per-worker source counters, store probe/load/save and classification
	// counters) with the given registry. Metric names are process-wide, so set
	// it on at most one engine per registry and leave it nil for engines that
	// may be replaced at runtime (a replica's engine is rebuilt on
	// rebootstrap; re-registering would panic).
	Obs *obs.Registry

	// ShardIndex/ShardCount select the write-path sharding mode: the engine
	// owns only the sources whose rank in the global source pool is congruent
	// to ShardIndex modulo ShardCount — exactly the stride worker ShardIndex
	// of a ShardCount-worker engine would own (bc.StridedSources), so the sum
	// of the N shard results reproduces the single-process scores bit for bit
	// when every shard runs one worker. In exact mode vertices arriving later
	// in the stream join the stride the same way (vertex v is owned iff
	// v mod ShardCount == ShardIndex); in sampled mode the sample is fixed, so
	// the shard's stride of it is too. ShardCount <= 1 means no sharding.
	ShardIndex int
	ShardCount int

	// PartitionScores keeps the accumulated scores as per-worker partial
	// results, folded key-by-key in worker order only when read. The folded
	// scores of a ShardCount-worker partition engine are bit-identical to the
	// sum of the ShardCount shard engines' scores (each partial evolves by
	// exactly the arithmetic of the matching one-worker shard), which is what
	// the sharding differential harness asserts against. The mode is a
	// reference for that contract, not a serving configuration: snapshots
	// store the folded scores and cannot be restored back into it.
	PartitionScores bool
}

// Stats aggregates the work counters of all workers. It is the same type as
// the sequential updater's counters.
type Stats = incremental.Stats

// ErrClosed is returned by ApplyBatch (and the other mutating entry points)
// after Close: the worker pool is gone, so late writers get a clean error
// instead of a send on a closed channel. The serving layer maps it to 503.
var ErrClosed = errors.New("engine: engine closed")

// Engine maintains betweenness centrality of an evolving graph using a pool
// of workers, each owning one partition of the source set.
type Engine struct {
	g       *graph.Graph
	workers []*worker
	res     *bc.Result
	applied int
	nextRR  int // round-robin cursor for assigning newly arrived sources

	// walOffset is the write-ahead-log position the engine state covers: the
	// number of updates durably logged before the serving layer handed them to
	// the engine. It is carried through snapshots so that, after a restart,
	// recovery knows exactly which WAL tail to replay. Zero means "no WAL".
	walOffset uint64

	// sample is the explicit source set of the approximate mode (nil in
	// exact mode) and scale the matching estimator factor (1 in exact mode).
	sample []int
	scale  float64

	// shardIndex/shardCount record the stride of the global source pool this
	// engine owns (0/1 when not sharded; see Config.ShardIndex).
	shardIndex int
	shardCount int

	// parts holds the per-worker partial results of the partition-scores
	// mode (nil otherwise); partsDirty marks the folded cache in res stale.
	parts      []*bc.Result
	partsDirty bool

	// deltaObs, when non-nil, receives every applied update's per-worker
	// partial deltas during the reduce phase (see SetDeltaObserver);
	// obsScratch is the reused slice handed to it.
	deltaObs   func(upd graph.Update, perWorker []*incremental.FlatDelta)
	obsScratch []*incremental.FlatDelta

	// applyHist, when non-nil, records the wall-clock latency of every
	// ApplyBatch call (set when Config.Obs registered the engine's metrics).
	applyHist *obs.Histogram

	// pooled reports whether persistent worker goroutines are running. A
	// single-worker engine stays inline: updates are processed on the
	// caller's goroutine, with no goroutine spawned or channel crossed.
	pooled bool
	closed bool // makes Close idempotent (a swapped-out replica engine is closed twice)

	one [1]graph.Update // scratch slice backing Apply's batch of one
}

// taskKind selects what a dispatched worker task does.
type taskKind uint8

const (
	// taskUpdate processes one update of the current batch for the worker's
	// sources (the engine has already applied it to the shared graph).
	taskUpdate taskKind = iota
	// taskFlush writes the worker's write-back cache to its store, ending
	// the batch.
	taskFlush
)

type workerTask struct {
	kind taskKind
	upd  graph.Update
}

type worker struct {
	id      int
	store   incremental.Store
	sources []int
	proc    *incremental.SourceProcessor

	// deltas holds one partial-score delta per update of the current batch,
	// in stream order; the reduce phase folds them into the global result
	// (update-major, worker order) so the outcome is bit-identical to
	// per-update reduction. The flat layout keeps accumulation allocation-free
	// in steady state (see incremental.FlatDelta).
	deltas    []*incremental.FlatDelta
	deltaPool []*incremental.FlatDelta

	tasks chan workerTask
	acks  chan error
}

// New partitions the sources of g across cfg.Workers workers, runs the
// offline initialisation (a full Brandes pass, parallelised over the
// partitions) and returns an engine ready to process updates. The engine
// takes ownership of g.
func New(g *graph.Graph, cfg Config) (*Engine, error) {
	return newEngine(g, cfg, false)
}

// newEngine is New with one extra restore-path knob: sourcesPreSharded marks
// cfg.Sources as already being this shard's stride of the global sample (the
// set a sharded snapshot stores), so the shard stride must not be applied a
// second time.
func newEngine(g *graph.Graph, cfg Config, sourcesPreSharded bool) (*Engine, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.Store == nil {
		cfg.Store = MemFactory()
	}
	if cfg.ShardCount > 1 && (cfg.ShardIndex < 0 || cfg.ShardIndex >= cfg.ShardCount) {
		return nil, fmt.Errorf("engine: shard index %d out of range for %d shards", cfg.ShardIndex, cfg.ShardCount)
	}
	if cfg.ShardCount > 1 && cfg.PartitionScores {
		return nil, errors.New("engine: PartitionScores is the single-process reference for sharding and cannot be combined with it")
	}
	n := g.N()
	// The pool and the estimator scale are resolved over the GLOBAL source
	// set first — a sampled shard scales by n/k of the whole sample, not of
	// its stride — and only then cut down to this shard's stride.
	pool, scale, err := sourcePool(n, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.ShardCount > 1 && !sourcesPreSharded {
		pool = bc.StridedSources(pool, cfg.ShardCount, cfg.ShardIndex)
		if cfg.Sources != nil && len(pool) == 0 {
			return nil, fmt.Errorf("engine: shard %d/%d owns no sampled sources (the sample must have at least %d entries)",
				cfg.ShardIndex, cfg.ShardCount, cfg.ShardCount)
		}
	}
	if cfg.Workers > len(pool) && len(pool) > 0 {
		cfg.Workers = len(pool)
	}
	e := &Engine{g: g, res: bc.NewResult(n), scale: scale, shardCount: 1}
	if cfg.ShardCount > 1 {
		e.shardIndex, e.shardCount = cfg.ShardIndex, cfg.ShardCount
	}
	if cfg.Sources != nil {
		e.sample = pool
	}
	// Sources are partitioned by stride (rank mod workers), not by
	// contiguous ranges: growth appends to the pool and continues the
	// stride (nextRR), so the source-to-worker assignment — and with it the
	// per-worker grouping of floating-point delta accumulation — depends
	// only on the current pool, never on the order it grew in. A restored
	// engine therefore reduces deltas in exactly the order the original
	// did, which bit-identical crash recovery requires.
	e.nextRR = len(pool)
	for id := 0; id < cfg.Workers; id++ {
		sources := bc.StridedSources(pool, cfg.Workers, id)
		store, err := cfg.Store(id, n, sources)
		if err != nil {
			e.Close()
			return nil, fmt.Errorf("engine: creating store for worker %d: %w", id, err)
		}
		proc := incremental.NewSourceProcessor(store, n)
		proc.SetScale(scale)
		e.workers = append(e.workers, &worker{
			id:      id,
			store:   store,
			sources: sources,
			proc:    proc,
		})
	}
	if cfg.PartitionScores {
		e.parts = make([]*bc.Result, len(e.workers))
		for i := range e.parts {
			e.parts[i] = bc.NewResult(n)
		}
	}
	if err := e.initialize(); err != nil {
		e.Close()
		return nil, err
	}
	// With every record stored, give each worker its transposed probe plane:
	// classification then reads two plane rows per update instead of one
	// distance column per source.
	for _, w := range e.workers {
		if err := w.proc.BuildProbeIndex(); err != nil {
			e.Close()
			return nil, fmt.Errorf("engine: worker %d: %w", w.id, err)
		}
	}
	if len(e.workers) > 1 {
		e.pooled = true
		for _, w := range e.workers {
			w.tasks = make(chan workerTask, 1)
			w.acks = make(chan error, 1)
			go w.run(e.g)
		}
	}
	if cfg.Obs != nil {
		e.registerMetrics(cfg.Obs)
	}
	return e, nil
}

// registerMetrics exposes the engine's work counters on the registry. The
// worker set is fixed for the engine's lifetime and every counter read is an
// atomic load, so scrape-time reads race with nothing.
func (e *Engine) registerMetrics(reg *obs.Registry) {
	e.applyHist = reg.Histogram("streambc_engine_apply_batch_seconds",
		"Wall-clock latency of engine ApplyBatch calls (map, flush and reduce phases).",
		obs.LatencyBuckets())
	for _, w := range e.workers {
		id := strconv.Itoa(w.id)
		reg.CounterFunc("streambc_engine_worker_sources_updated_total",
			"Source iterations that ran the partial recomputation, per worker.",
			w.proc.Updated, "worker", id)
		reg.CounterFunc("streambc_engine_worker_sources_skipped_total",
			"Source iterations skipped by the distance probe, per worker.",
			w.proc.Skipped, "worker", id)
	}
	sum := func(read func(*incremental.SourceProcessor) int64) func() int64 {
		return func() int64 {
			var t int64
			for _, w := range e.workers {
				t += read(w.proc)
			}
			return t
		}
	}
	reg.CounterFunc("streambc_store_probes_total",
		"Probe columns read from the per-source stores (LoadDistances calls).",
		sum((*incremental.SourceProcessor).Probes))
	reg.CounterFunc("streambc_store_loads_total",
		"Full per-source records read from the stores.",
		sum((*incremental.SourceProcessor).Loads))
	reg.CounterFunc("streambc_store_saves_total",
		"Dirty per-source records written back to the stores.",
		sum((*incremental.SourceProcessor).Saves))
	classified := "Per-source update classifications by the distance probe (classify.go kinds)."
	reg.CounterFunc("streambc_updates_classified_total", classified,
		sum((*incremental.SourceProcessor).Additions), "kind", "addition")
	reg.CounterFunc("streambc_updates_classified_total", classified,
		sum((*incremental.SourceProcessor).Removals), "kind", "removal")
	reg.CounterFunc("streambc_updates_classified_total", classified,
		sum((*incremental.SourceProcessor).Skipped), "kind", "skip")
	// Store shape and write-back state, summed across the worker stores. The
	// values are the snapshots taken at each worker's last flush (a quiescent
	// moment for its store), so scrapes never call into a store mid-batch.
	sumStat := func(read func(incremental.StoreStats) int64) func() int64 {
		return func() int64 {
			var t int64
			for _, w := range e.workers {
				t += read(w.proc.StoreStats())
			}
			return t
		}
	}
	reg.IntGaugeFunc("streambc_store_records",
		"Per-source records managed across the worker stores.",
		sumStat(func(st incremental.StoreStats) int64 { return st.Records }))
	reg.IntGaugeFunc("streambc_store_bytes",
		"Logical size in bytes of the worker stores' backing media.",
		sumStat(func(st incremental.StoreStats) int64 { return st.Bytes }))
	reg.IntGaugeFunc("streambc_store_dirty_records",
		"Records staged in the stores' write-back buffers, pending flush.",
		sumStat(func(st incremental.StoreStats) int64 { return st.Dirty }))
	reg.IntGaugeFunc("streambc_store_segments",
		"Segment files backing the worker stores (0 for in-memory stores).",
		sumStat(func(st incremental.StoreStats) int64 { return st.Segments }))
	reg.CounterFunc("streambc_store_flushes_total",
		"Write-back flushes that wrote staged records to the backing media.",
		sumStat(func(st incremental.StoreStats) int64 { return st.Flushes }))
	reg.CounterFunc("streambc_store_migrations_total",
		"Segment files rewritten to a newer epoch after a Grow.",
		sumStat(func(st incremental.StoreStats) int64 { return st.Migrations }))
	reads := "Record reads served from the stores' backing media, by read path."
	reg.CounterFunc("streambc_store_medium_reads_total", reads,
		sumStat(func(st incremental.StoreStats) int64 { return st.MmapReads }), "path", "mmap")
	reg.CounterFunc("streambc_store_medium_reads_total", reads,
		sumStat(func(st incremental.StoreStats) int64 { return st.PreadReads }), "path", "pread")
	// Stores with a write-back stage report each flush's wall-clock duration
	// through the observer hook; write-through stores have no flushes to time.
	flushHist := reg.Histogram("streambc_store_flush_seconds",
		"Wall-clock duration of store write-back flushes.",
		obs.LatencyBuckets())
	type flushObserved interface {
		SetFlushObserver(func(seconds float64))
	}
	for _, w := range e.workers {
		if fo, ok := w.store.(flushObserved); ok {
			fo.SetFlushObserver(flushHist.Observe)
		}
	}
}

// sourcePool resolves the configured source set: every vertex in exact mode,
// or a validated, sorted, deduplicated copy of cfg.Sources (with its n/k
// estimator scale) in sampled mode.
func sourcePool(n int, cfg Config) ([]int, float64, error) {
	if cfg.Sources == nil {
		pool := make([]int, n)
		for i := range pool {
			pool[i] = i
		}
		return pool, 1, nil
	}
	pool := append([]int(nil), cfg.Sources...)
	sort.Ints(pool)
	uniq := pool[:0]
	for i, s := range pool {
		if s < 0 || s >= n {
			return nil, 0, fmt.Errorf("engine: sampled source %d out of range (n=%d)", s, n)
		}
		if i > 0 && s == pool[i-1] {
			continue
		}
		uniq = append(uniq, s)
	}
	pool = uniq
	if len(pool) == 0 {
		return nil, 0, fmt.Errorf("engine: sampled mode needs at least one source")
	}
	scale := cfg.Scale
	if scale <= 0 {
		scale = float64(n) / float64(len(pool))
	}
	return pool, scale, nil
}

// initialize runs step 1 of the framework: one Brandes iteration per source,
// executed in parallel across the workers, storing BD[s] and accumulating the
// initial betweenness scores.
func (e *Engine) initialize() error {
	partials := make([]*bc.Result, len(e.workers))
	errs := make([]error, len(e.workers))
	var wg sync.WaitGroup
	for i, w := range e.workers {
		wg.Add(1)
		go func(i int, w *worker) {
			defer wg.Done()
			partial := bc.NewResult(e.g.N())
			state := bc.NewSourceState(e.g.N())
			var queue []int
			for _, s := range w.sources {
				bc.SingleSource(e.g, s, state, &queue)
				if e.scale == 1 {
					bc.AccumulateSource(e.g, s, state, partial)
				} else {
					bc.AccumulateSourceScaled(e.g, s, state, partial, e.scale)
				}
				if err := w.store.Save(s, state); err != nil {
					errs[i] = fmt.Errorf("engine: worker %d saving source %d: %w", w.id, s, err)
					return
				}
			}
			// Push the initial records down before serving: the sharded v2
			// store stages Saves in memory until flushed.
			if err := w.store.Flush(); err != nil {
				errs[i] = fmt.Errorf("engine: worker %d flushing initial records: %w", w.id, err)
				return
			}
			partials[i] = partial
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i, p := range partials {
		if p == nil {
			continue
		}
		// The fold target is the worker's own partial in partition-scores
		// mode, the shared result otherwise. Folding with += from a zeroed
		// result (rather than adopting the partial) keeps each partial's
		// bits exactly those of the matching one-worker shard engine, which
		// initialises its result by this same loop.
		dst := e.res
		if e.parts != nil {
			dst = e.parts[i]
		}
		for v := range p.VBC {
			dst.VBC[v] += p.VBC[v]
		}
		for k, x := range p.EBC {
			dst.EBC[k] += x
		}
	}
	e.partsDirty = e.parts != nil
	return nil
}

// foldParts refreshes the folded-score cache of the partition-scores mode:
// the per-worker partials are summed key-by-key in worker order — the
// arithmetic of folding N one-worker shard results in shard order, which is
// the equivalence the mode exists to witness. No-op outside the mode or when
// the cache is fresh.
func (e *Engine) foldParts() {
	if e.parts == nil || !e.partsDirty {
		return
	}
	res := bc.NewResult(e.g.N())
	for _, p := range e.parts {
		for v := range p.VBC {
			res.VBC[v] += p.VBC[v]
		}
		for k, x := range p.EBC {
			res.EBC[k] += x
		}
	}
	e.res = res
	e.partsDirty = false
}

// run is the persistent loop of one pooled worker: it executes tasks in
// order and acknowledges each one. The channel handshake makes the
// coordinator's graph mutations between tasks visible to the worker.
func (w *worker) run(g *graph.Graph) {
	for t := range w.tasks {
		w.acks <- w.exec(g, t)
	}
}

// exec performs one task on the caller's goroutine.
func (w *worker) exec(g *graph.Graph, t workerTask) error {
	switch t.kind {
	case taskUpdate:
		return w.proc.ProcessUpdate(g, w.sources, t.upd, w.nextDelta(g.N()))
	case taskFlush:
		return w.proc.Flush()
	}
	return nil
}

// nextDelta appends (and returns) the delta receiving the changes of the
// next update of the current batch, reusing pooled deltas across batches.
func (w *worker) nextDelta(n int) *incremental.FlatDelta {
	var d *incremental.FlatDelta
	if k := len(w.deltaPool); k > 0 {
		d = w.deltaPool[k-1]
		w.deltaPool = w.deltaPool[:k-1]
	} else {
		d = incremental.NewFlatDelta()
	}
	d.Reserve(n)
	w.deltas = append(w.deltas, d)
	return d
}

// recycleDeltas returns the batch's deltas to the pool.
func (w *worker) recycleDeltas() {
	for _, d := range w.deltas {
		d.Reset()
		w.deltaPool = append(w.deltaPool, d)
	}
	w.deltas = w.deltas[:0]
}

// dispatch runs one task on every worker: inline on the caller's goroutine
// for a single-worker engine, through the persistent pool otherwise. It
// returns the first worker error.
func (e *Engine) dispatch(t workerTask) error {
	if !e.pooled {
		var firstErr error
		for _, w := range e.workers {
			if err := w.exec(e.g, t); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	for _, w := range e.workers {
		w.tasks <- t
	}
	var firstErr error
	for _, w := range e.workers {
		if err := <-w.acks; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Graph returns the evolving graph (read-only for callers).
func (e *Engine) Graph() *graph.Graph { return e.g }

// Result returns the live betweenness scores.
func (e *Engine) Result() *bc.Result { e.foldParts(); return e.res }

// VBC returns the current vertex betweenness (live slice, do not modify).
func (e *Engine) VBC() []float64 { e.foldParts(); return e.res.VBC }

// EBC returns the current edge betweenness (live map, do not modify).
func (e *Engine) EBC() map[graph.Edge]float64 { e.foldParts(); return e.res.EBC }

// Workers returns the number of workers.
func (e *Engine) Workers() int { return len(e.workers) }

// ShardIndex returns the stride of the global source pool this engine owns
// (0 when not sharded).
func (e *Engine) ShardIndex() int { return e.shardIndex }

// ShardCount returns the number of shards the source pool is split across
// (1 when not sharded).
func (e *Engine) ShardCount() int { return e.shardCount }

// Sharded reports whether the engine owns only one stride of the source pool.
func (e *Engine) Sharded() bool { return e.shardCount > 1 }

// SetDeltaObserver installs fn, invoked during the reduce phase of every
// batch once per applied update, in stream order, with that update's
// per-worker partial score deltas in worker order — the exact values and
// order the reducer folds into the global scores. The deltas are owned by
// the engine and valid only for the duration of the call. The shard serving
// layer uses this to stream per-update deltas to the merge router. Pass nil
// to uninstall. Must not be called concurrently with ApplyBatch.
func (e *Engine) SetDeltaObserver(fn func(upd graph.Update, perWorker []*incremental.FlatDelta)) {
	e.deltaObs = fn
}

// Sampled reports whether the engine runs in the sampled-source approximate
// mode.
func (e *Engine) Sampled() bool { return e.sample != nil }

// SampledSources returns a copy of the sampled source set, in ascending
// order, or nil in exact mode.
func (e *Engine) SampledSources() []int {
	if e.sample == nil {
		return nil
	}
	return append([]int(nil), e.sample...)
}

// SampleSize returns the number of sources whose betweenness data the engine
// maintains: the sample size k in sampled mode, the vertex count n in exact
// mode.
func (e *Engine) SampleSize() int {
	if e.sample != nil {
		return len(e.sample)
	}
	return e.g.N()
}

// Scale returns the estimator factor applied to every betweenness
// contribution (n/k in sampled mode, 1 in exact mode).
func (e *Engine) Scale() float64 { return e.scale }

// Stats returns aggregated work counters.
func (e *Engine) Stats() Stats {
	st := Stats{UpdatesApplied: e.applied}
	for _, w := range e.workers {
		st.SourcesSkipped += w.proc.Skipped()
		st.SourcesUpdated += w.proc.Updated()
	}
	return st
}

// ResultSnapshot returns a deep copy of the current betweenness scores. The
// caller must ensure no update is applied concurrently; the copy can then be
// read freely while the engine keeps processing updates (the snapshot-on-read
// pattern used by the serving layer).
func (e *Engine) ResultSnapshot() *bc.Result { e.foldParts(); return e.res.Clone() }

// SetUpdatesApplied overwrites the cumulative applied-update counter. It is
// used when restoring an engine from a snapshot so that the applied-update
// offset of the stream survives a restart.
func (e *Engine) SetUpdatesApplied(n int) { e.applied = n }

// WALOffset returns the write-ahead-log position the engine state covers (0
// when no WAL is in use).
func (e *Engine) WALOffset() uint64 { return e.walOffset }

// SetWALOffset records the write-ahead-log position the engine state covers.
// The serving layer calls it after every logged-and-applied batch (and
// recovery after every replayed record), so a snapshot taken between batches
// knows which WAL prefix it makes redundant.
func (e *Engine) SetWALOffset(off uint64) { e.walOffset = off }

// ReplayBatch is the recovery entry point: it re-applies one logged batch of
// updates through the ApplyBatch path, skipping updates the engine rejects as
// invalid — exactly what the serving pipeline did when the batch was first
// accepted, so replayed scores are bit-identical to the uninterrupted run.
// Any non-validation error (a store load, save or flush failure) is returned
// and leaves the engine in an undefined state, like ApplyBatch.
func (e *Engine) ReplayBatch(updates []graph.Update) error {
	for len(updates) > 0 {
		applied, err := e.ApplyBatch(updates)
		if err == nil {
			return nil
		}
		if applied >= len(updates) || !incremental.IsValidationError(err) ||
			errors.Is(err, incremental.ErrFlushFailed) {
			return err
		}
		updates = updates[applied+1:]
	}
	return nil
}

// ReplayRecord applies one logged drain — the vertex-growth requirement plus
// the updates of a single write-ahead-log record carrying sequence seq — in
// chunks of at most maxBatch (values < 1 mean 256), and advances the engine's
// WAL offset past it. It is the shared application step of crash recovery
// (ReplayWAL) and of a replication follower consuming the leader's log:
// both reproduce exactly what the ingest pipeline did when the record was
// first accepted, so the resulting scores are bit-identical to the leader's.
func (e *Engine) ReplayRecord(seq uint64, needVertices int, updates []graph.Update, maxBatch int) error {
	if maxBatch < 1 {
		maxBatch = 256
	}
	if err := e.EnsureVertices(needVertices); err != nil {
		return err
	}
	for i := 0; i < len(updates); i += maxBatch {
		j := min(i+maxBatch, len(updates))
		if err := e.ReplayBatch(updates[i:j]); err != nil {
			return err
		}
	}
	e.SetWALOffset(seq + 1)
	return nil
}

// ReplaceScores overwrites the live betweenness scores with res (deep copy).
// It is used when restoring from a snapshot: the offline initialisation
// recomputes the scores from the graph, but overwriting them with the
// snapshotted values guarantees a bit-exact round trip regardless of
// floating-point accumulation order.
func (e *Engine) ReplaceScores(res *bc.Result) error {
	if e.parts != nil {
		return errors.New("engine: cannot replace scores of a partition-scores engine (the per-worker partials cannot be recovered from their sum)")
	}
	if len(res.VBC) != e.g.N() {
		return fmt.Errorf("engine: replacing scores: got %d vertex scores for %d vertices", len(res.VBC), e.g.N())
	}
	e.res.VBC = append(e.res.VBC[:0], res.VBC...)
	clear(e.res.EBC)
	for k, v := range res.EBC {
		e.res.EBC[k] = v
	}
	return nil
}

// EnsureVertices grows the graph, the worker stores and the result so that
// at least n vertices exist, exactly as an addition referencing vertex n-1
// would. Isolated vertices have zero betweenness, so no scores change.
func (e *Engine) EnsureVertices(n int) error {
	if e.closed {
		return ErrClosed
	}
	if n <= e.g.N() {
		return nil
	}
	return e.growTo(n)
}

// Apply processes one update — a batch of one: the map phase runs the
// per-source incremental algorithm on every worker, the reduce phase merges
// the partial betweenness changes into the global result.
func (e *Engine) Apply(upd graph.Update) error {
	e.one[0] = upd
	_, err := e.ApplyBatch(e.one[:])
	return err
}

// ApplyBatch processes a batch of updates as one unit. Updates are applied
// strictly in stream order — after every update the workers run their map
// phase against the graph state of exactly that update, so the resulting
// scores are bit-identical to sequential Apply calls on the same stream —
// but the store I/O and the reduce are amortised: each worker loads and
// saves every affected source at most once per batch (write-back cache), and
// the partial deltas of the whole batch are reduced in a single pass at the
// end. It returns the number of updates applied before the first error.
//
// Error contract: a validation rejection (incremental.IsValidationError) is
// raised before the offending update mutates anything, so the stores and
// scores reflect exactly the applied prefix and the engine remains usable.
// Any other error — a store load, save or flush failure — leaves the engine
// in an undefined state (graph, scores and stores may disagree) and the
// engine should be discarded.
func (e *Engine) ApplyBatch(updates []graph.Update) (int, error) {
	if e.closed {
		return 0, ErrClosed
	}
	if len(updates) == 0 {
		return 0, nil
	}
	if e.applyHist != nil {
		start := time.Now()
		defer func() { e.applyHist.Observe(time.Since(start).Seconds()) }()
	}
	for _, w := range e.workers {
		// Workers are idle between batches; the next task's channel
		// handshake publishes the mode change.
		w.proc.SetBatching(len(updates) > 1)
	}
	applied := 0
	var firstErr error
	for _, upd := range updates {
		if err := e.stepUpdate(upd); err != nil {
			firstErr = err
			break
		}
		applied++
	}
	// A flush failure means the stores may not reflect the applied prefix:
	// surface it even when an update error came first.
	if err := e.finishBatch(updates[:applied]); err != nil {
		firstErr = errors.Join(firstErr, err)
	}
	return applied, firstErr
}

// ApplyAll applies a stream of updates in order, one at a time. Use
// ApplyBatch to amortise store I/O across the stream.
func (e *Engine) ApplyAll(updates []graph.Update) (int, error) {
	for i, upd := range updates {
		if err := e.Apply(upd); err != nil {
			return i, err
		}
	}
	return len(updates), nil
}

// stepUpdate validates one update, applies it to the shared graph and runs
// the map phase on every worker, without flushing caches or reducing.
func (e *Engine) stepUpdate(upd graph.Update) error {
	if err := incremental.ValidateUpdate(e.g, upd); err != nil {
		return err
	}
	if !upd.Remove {
		if m := max(upd.U, upd.V); m >= e.g.N() {
			if err := e.growTo(m + 1); err != nil {
				return err
			}
		}
	}
	if err := e.g.Apply(upd); err != nil {
		return err
	}
	return e.dispatch(workerTask{kind: taskUpdate, upd: upd})
}

// finishBatch ends the batch: the workers flush their write-back caches (one
// Save per dirty source), and the reduce folds the per-update deltas into
// the global scores in update-major, worker order — the exact order
// per-update reduction would have used.
func (e *Engine) finishBatch(applied []graph.Update) error {
	flushErr := e.dispatch(workerTask{kind: taskFlush})
	for i, upd := range applied {
		if e.deltaObs != nil {
			e.obsScratch = e.obsScratch[:0]
			for _, w := range e.workers {
				if i < len(w.deltas) {
					e.obsScratch = append(e.obsScratch, w.deltas[i])
				}
			}
			e.deltaObs(upd, e.obsScratch)
		}
		for _, w := range e.workers {
			if i < len(w.deltas) {
				if e.parts != nil {
					w.deltas[i].ApplyTo(e.parts[w.id])
				} else {
					w.deltas[i].ApplyTo(e.res)
				}
			}
		}
		if upd.Remove {
			// The edge no longer exists at this point of the stream: its
			// accumulated centrality has been driven to zero by the
			// per-source corrections, drop the entry (a later addition in
			// the same batch re-creates it).
			key := bc.EdgeKey(e.g, upd.U, upd.V)
			if e.parts != nil {
				for _, p := range e.parts {
					delete(p.EBC, key)
				}
			} else {
				delete(e.res.EBC, key)
			}
		}
		e.applied++
	}
	if e.parts != nil && len(applied) > 0 {
		e.partsDirty = true
	}
	for _, w := range e.workers {
		w.recycleDeltas()
	}
	// The workers are idle between batches (the flush handshake above is the
	// last task of the batch), so this is the safe point to fold the graph's
	// delta overlay back into its flat CSR columns: the next batch — and any
	// snapshot taken between batches — runs on pure flat memory.
	e.g.Compact()
	return flushErr
}

// growTo extends the graph, every worker store and the result to n vertices;
// the new sources are spread over the workers round-robin. It runs between
// worker tasks, so the workers observe the growth through the next task's
// channel handshake. In sampled mode the source set is fixed, so the records
// grow but no new sources are registered.
func (e *Engine) growTo(n int) error {
	old := incremental.GrowGraphAndResult(e.g, e.res, n)
	for _, p := range e.parts {
		for len(p.VBC) < n {
			p.VBC = append(p.VBC, 0)
		}
	}
	for _, w := range e.workers {
		if err := w.proc.GrowStore(n); err != nil {
			return fmt.Errorf("engine: growing store of worker %d: %w", w.id, err)
		}
	}
	if e.sample != nil {
		return nil
	}
	for s := old; s < n; s++ {
		if e.shardCount > 1 && s%e.shardCount != e.shardIndex {
			// Another shard's stride of the vertex set: the record grows
			// (above) but the source is not ours to maintain.
			continue
		}
		w := e.workers[e.nextRR%len(e.workers)]
		e.nextRR++
		if err := w.proc.AddStoreSource(s); err != nil {
			return fmt.Errorf("engine: adding source %d to worker %d: %w", s, w.id, err)
		}
		w.sources = append(w.sources, s)
	}
	return nil
}

// Close stops the worker pool and releases every worker store. It is
// idempotent: closing an already-closed engine is a no-op.
func (e *Engine) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	if e.pooled {
		for _, w := range e.workers {
			close(w.tasks)
		}
		e.pooled = false
	}
	var firstErr error
	for _, w := range e.workers {
		if w == nil {
			continue
		}
		if w.proc != nil {
			// Return the worker's pooled workspace so a successor engine (a
			// replica rebootstrap, a recovery replay) reuses the scratch
			// memory instead of allocating fresh columns.
			w.proc.Release()
			w.proc = nil
		}
		if w.store == nil {
			continue
		}
		if err := w.store.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
