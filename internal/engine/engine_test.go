package engine

import (
	"math"
	"math/rand"
	"net"
	"path/filepath"
	"testing"

	"streambc/internal/bc"
	"streambc/internal/gen"
	"streambc/internal/graph"
)

const tol = 1e-7

func approx(a, b float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func checkEngineAgainstBrandes(t *testing.T, g *graph.Graph, vbc []float64, ebc map[graph.Edge]float64, context string) {
	t.Helper()
	want := bc.Compute(g)
	for v := range want.VBC {
		if !approx(vbc[v], want.VBC[v]) {
			t.Fatalf("%s: VBC[%d] = %g, want %g", context, v, vbc[v], want.VBC[v])
		}
	}
	for _, e := range g.Edges() {
		key := bc.EdgeKey(g, e.U, e.V)
		if !approx(ebc[key], want.EBC[key]) {
			t.Fatalf("%s: EBC[%v] = %g, want %g", context, key, ebc[key], want.EBC[key])
		}
	}
}

func testGraph(t *testing.T, n, m int, seed int64) *graph.Graph {
	t.Helper()
	g := gen.Connected(gen.ErdosRenyi(n, m, seed))
	if g.N() < 3 {
		t.Fatalf("test graph too small: n=%d", g.N())
	}
	return g
}

func mixedUpdates(t *testing.T, g *graph.Graph, count int, seed int64) []graph.Update {
	t.Helper()
	ups, err := gen.MixedStream(g, count, 0.4, seed)
	if err != nil {
		t.Fatalf("MixedStream: %v", err)
	}
	return ups
}

func TestEngineMatchesBrandesAcrossWorkerCounts(t *testing.T) {
	base := testGraph(t, 40, 120, 1)
	updates := mixedUpdates(t, base, 20, 2)
	for _, workers := range []int{1, 2, 3, 7} {
		e, err := New(base.Clone(), Config{Workers: workers})
		if err != nil {
			t.Fatalf("New(%d workers): %v", workers, err)
		}
		if e.Workers() != workers {
			t.Fatalf("Workers() = %d, want %d", e.Workers(), workers)
		}
		if _, err := e.ApplyAll(updates); err != nil {
			t.Fatalf("%d workers: ApplyAll: %v", workers, err)
		}
		checkEngineAgainstBrandes(t, e.Graph(), e.VBC(), e.EBC(), "engine")
		st := e.Stats()
		if st.UpdatesApplied != len(updates) || st.SourcesUpdated == 0 {
			t.Fatalf("stats = %+v", st)
		}
		if err := e.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
}

func TestEngineDiskFactory(t *testing.T) {
	base := testGraph(t, 25, 70, 3)
	updates := mixedUpdates(t, base, 12, 4)
	e, err := New(base.Clone(), Config{Workers: 3, Store: DiskFactory(t.TempDir())})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	if _, err := e.ApplyAll(updates); err != nil {
		t.Fatalf("ApplyAll: %v", err)
	}
	checkEngineAgainstBrandes(t, e.Graph(), e.VBC(), e.EBC(), "disk engine")
}

func TestEngineNewVertexArrival(t *testing.T) {
	base := testGraph(t, 15, 40, 5)
	e, err := New(base.Clone(), Config{Workers: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	n := e.Graph().N()
	if err := e.Apply(graph.Addition(0, n)); err != nil {
		t.Fatalf("Apply new vertex: %v", err)
	}
	if err := e.Apply(graph.Addition(1, n+1)); err != nil {
		t.Fatalf("Apply second new vertex: %v", err)
	}
	checkEngineAgainstBrandes(t, e.Graph(), e.VBC(), e.EBC(), "engine growth")
}

func TestEngineValidation(t *testing.T) {
	base := testGraph(t, 10, 20, 7)
	e, err := New(base.Clone(), Config{Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	if err := e.Apply(graph.Addition(0, 0)); err == nil {
		t.Fatal("self loop accepted")
	}
	edges := e.Graph().Edges()
	if err := e.Apply(graph.Addition(edges[0].U, edges[0].V)); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if err := e.Apply(graph.Removal(0, e.Graph().N()+10)); err == nil {
		t.Fatal("removal of non-existent edge accepted")
	}
	checkEngineAgainstBrandes(t, e.Graph(), e.VBC(), e.EBC(), "after rejected updates")
}

func TestEngineDefaultsToSingleWorker(t *testing.T) {
	base := testGraph(t, 12, 30, 9)
	e, err := New(base.Clone(), Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	if e.Workers() != 1 {
		t.Fatalf("default workers = %d, want 1", e.Workers())
	}
}

func TestReplayOnlineAccounting(t *testing.T) {
	base := testGraph(t, 30, 90, 11)
	adds, err := gen.RandomAdditions(base, 10, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Generous inter-arrival gaps: nothing should be missed.
	slow := gen.Timestamp(adds, gen.ArrivalModel{MeanGap: 10}, 2)
	e1, err := New(base.Clone(), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	rep, err := Replay(e1, slow)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Updates != len(slow) || rep.Missed != 0 || rep.MissedFraction != 0 {
		t.Fatalf("slow replay report = %+v", rep)
	}
	if rep.TotalProcessing <= 0 || len(rep.Timings) != len(slow) {
		t.Fatalf("replay timings missing: %+v", rep)
	}

	// Impossibly tight gaps: every non-final update must be missed.
	fast := gen.Timestamp(adds, gen.ArrivalModel{MeanGap: 1e-12}, 2)
	e2, err := New(base.Clone(), Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	rep2, err := Replay(e2, fast)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep2.Missed != len(fast)-1 {
		t.Fatalf("fast replay missed = %d, want %d", rep2.Missed, len(fast)-1)
	}
	if rep2.AvgDelay <= 0 || rep2.MaxDelay < rep2.AvgDelay {
		t.Fatalf("fast replay delays = %+v", rep2)
	}

	// Unsorted stream is rejected.
	bad := append([]graph.Update(nil), slow...)
	bad[0].Time = 1e9
	if _, err := Replay(e2, bad); err == nil {
		t.Fatal("unsorted stream accepted")
	}
}

func TestRequiredWorkersModel(t *testing.T) {
	// 1 ms per source, 10000 sources, negligible merge, 2 s inter-arrival:
	// tS*n = 10 s of work, so at least 5 workers are needed.
	p := RequiredWorkers(0.001, 10000, 0, 2.0)
	if p < 5 || p > 6 {
		t.Fatalf("RequiredWorkers = %d, want about 5", p)
	}
	// Impossible budget falls back to one source per machine.
	if p := RequiredWorkers(0.001, 100, 1.0, 0.5); p != 100 {
		t.Fatalf("RequiredWorkers impossible budget = %d, want 100", p)
	}
	if p := RequiredWorkers(1e-9, 10, 0, 100); p != 1 {
		t.Fatalf("RequiredWorkers trivial = %d, want 1", p)
	}
}

func startWorkers(t *testing.T, count int) []string {
	t.Helper()
	addrs := make([]string, count)
	for i := 0; i < count; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		t.Cleanup(func() { l.Close() })
		ServeWorker(l, NewWorkerServer())
		addrs[i] = l.Addr().String()
	}
	return addrs
}

func TestRPCClusterMatchesBrandes(t *testing.T) {
	base := testGraph(t, 25, 70, 13)
	updates := mixedUpdates(t, base, 12, 5)
	addrs := startWorkers(t, 3)

	cluster, err := NewCluster(base.Clone(), addrs, nil)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()

	for i, upd := range updates {
		if err := cluster.Apply(upd); err != nil {
			t.Fatalf("cluster apply %d (%v): %v", i, upd, err)
		}
	}
	checkEngineAgainstBrandes(t, cluster.Graph(), cluster.VBC(), cluster.EBC(), "rpc cluster")
}

func TestRPCClusterDiskWorkersAndGrowth(t *testing.T) {
	base := testGraph(t, 15, 40, 17)
	addrs := startWorkers(t, 2)
	dir := t.TempDir()
	paths := []string{filepath.Join(dir, "w0.bin"), filepath.Join(dir, "w1.bin")}

	cluster, err := NewCluster(base.Clone(), addrs, paths)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()

	n := cluster.Graph().N()
	seq := []graph.Update{
		graph.Addition(0, n), // new vertex
		graph.Addition(2, n),
		graph.Removal(0, n),
	}
	rng := rand.New(rand.NewSource(1))
	chosen := map[graph.Edge]bool{}
	for len(seq) < 8 {
		a, b := rng.Intn(n), rng.Intn(n)
		key := (graph.Edge{U: a, V: b}).Canonical()
		if a == b || cluster.Graph().HasEdge(a, b) || chosen[key] {
			continue
		}
		chosen[key] = true
		seq = append(seq, graph.Addition(a, b))
	}
	for i, upd := range seq {
		if err := cluster.Apply(upd); err != nil {
			t.Fatalf("apply %d (%v): %v", i, upd, err)
		}
	}
	checkEngineAgainstBrandes(t, cluster.Graph(), cluster.VBC(), cluster.EBC(), "rpc cluster disk")
}

func TestClusterRequiresWorkers(t *testing.T) {
	if _, err := NewCluster(graph.New(3), nil, nil); err == nil {
		t.Fatal("expected error for empty worker list")
	}
}
