package engine

import (
	"fmt"
	"testing"

	"streambc/internal/graph"
)

// growthStream appends updates that reference unseen vertices (growing the
// graph mid-stream) to a mixed addition/removal stream, so the batched path
// is exercised across growth boundaries.
func growthStream(t *testing.T, g *graph.Graph, count int, seed int64) []graph.Update {
	t.Helper()
	stream := mixedUpdates(t, g, count, seed)
	n := g.N()
	stream = append(stream,
		graph.Addition(0, n),   // new vertex n
		graph.Addition(1, n+1), // new vertex n+1
		graph.Addition(n, n+1), // edge between two new vertices
		graph.Removal(0, n),
	)
	return stream
}

// applyChunks replays the stream through ApplyBatch in chunks of batch.
func applyChunks(t *testing.T, e *Engine, stream []graph.Update, batch int) {
	t.Helper()
	for off := 0; off < len(stream); off += batch {
		end := min(off+batch, len(stream))
		if n, err := e.ApplyBatch(stream[off:end]); err != nil || n != end-off {
			t.Fatalf("ApplyBatch(%d:%d) = (%d, %v)", off, end, n, err)
		}
	}
}

// requireBitIdentical asserts that two result sets are equal to the last bit
// (not merely within tolerance): the batched path must replay the exact
// floating-point accumulation order of sequential application.
func requireBitIdentical(t *testing.T, context string, gotVBC, wantVBC []float64, gotEBC, wantEBC map[graph.Edge]float64) {
	t.Helper()
	if len(gotVBC) != len(wantVBC) {
		t.Fatalf("%s: VBC length %d, want %d", context, len(gotVBC), len(wantVBC))
	}
	for v := range wantVBC {
		if gotVBC[v] != wantVBC[v] {
			t.Fatalf("%s: VBC[%d] = %v, want exactly %v", context, v, gotVBC[v], wantVBC[v])
		}
	}
	if len(gotEBC) != len(wantEBC) {
		t.Fatalf("%s: EBC has %d entries, want %d", context, len(gotEBC), len(wantEBC))
	}
	for k, want := range wantEBC {
		got, ok := gotEBC[k]
		if !ok || got != want {
			t.Fatalf("%s: EBC[%v] = %v (present=%v), want exactly %v", context, k, got, ok, want)
		}
	}
}

// TestApplyBatchDifferential is the batched-path stress test: random mixed
// add/remove streams (including mid-stream vertex growth) applied through
// ApplyBatch — on memory and disk stores, with 1 and 4 workers, at several
// batch sizes — must equal a from-scratch Brandes recomputation, and must be
// bit-identical to sequential Apply on an identically configured engine.
func TestApplyBatchDifferential(t *testing.T) {
	base := testGraph(t, 32, 90, 21)
	stream := growthStream(t, base, 24, 22)

	stores := map[string]func(t *testing.T) StoreFactory{
		"mem":  func(t *testing.T) StoreFactory { return MemFactory() },
		"disk": func(t *testing.T) StoreFactory { return DiskFactory(t.TempDir()) },
	}
	for storeName, factory := range stores {
		for _, workers := range []int{1, 4} {
			// Sequential reference: per-update Apply on the same configuration.
			ref, err := New(base.Clone(), Config{Workers: workers, Store: factory(t)})
			if err != nil {
				t.Fatalf("%s/%d: New(ref): %v", storeName, workers, err)
			}
			for i, upd := range stream {
				if err := ref.Apply(upd); err != nil {
					t.Fatalf("%s/%d: ref apply %d (%v): %v", storeName, workers, i, upd, err)
				}
			}
			checkEngineAgainstBrandes(t, ref.Graph(), ref.VBC(), ref.EBC(),
				fmt.Sprintf("%s/%d workers sequential", storeName, workers))

			for _, batch := range []int{1, 3, 16, len(stream)} {
				name := fmt.Sprintf("%s/%d workers/batch %d", storeName, workers, batch)
				e, err := New(base.Clone(), Config{Workers: workers, Store: factory(t)})
				if err != nil {
					t.Fatalf("%s: New: %v", name, err)
				}
				applyChunks(t, e, stream, batch)
				checkEngineAgainstBrandes(t, e.Graph(), e.VBC(), e.EBC(), name)
				requireBitIdentical(t, name, e.VBC(), ref.VBC(), e.EBC(), ref.EBC())
				if st := e.Stats(); st.UpdatesApplied != len(stream) {
					t.Fatalf("%s: UpdatesApplied = %d, want %d", name, st.UpdatesApplied, len(stream))
				}
				if err := e.Close(); err != nil {
					t.Fatalf("%s: Close: %v", name, err)
				}
			}
			if err := ref.Close(); err != nil {
				t.Fatalf("%s/%d: Close(ref): %v", storeName, workers, err)
			}
		}
	}
}

// TestApplyBatchErrorPrefix checks the mid-batch error contract: the valid
// prefix is applied (and the scores reflect exactly that prefix), the
// offending update is reported, and the rest of the batch is untouched.
func TestApplyBatchErrorPrefix(t *testing.T) {
	base := testGraph(t, 20, 50, 31)
	bad := graph.Removal(0, 0) // self loop: always rejected
	stream := mixedUpdates(t, base, 6, 32)
	batch := append(append([]graph.Update{}, stream[:4]...), bad)
	batch = append(batch, stream[4:]...)

	e, err := New(base.Clone(), Config{Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	n, err := e.ApplyBatch(batch)
	if err == nil || n != 4 {
		t.Fatalf("ApplyBatch = (%d, %v), want (4, error)", n, err)
	}

	ref, err := New(base.Clone(), Config{Workers: 2})
	if err != nil {
		t.Fatalf("New(ref): %v", err)
	}
	defer ref.Close()
	for _, upd := range stream[:4] {
		if err := ref.Apply(upd); err != nil {
			t.Fatalf("ref apply: %v", err)
		}
	}
	requireBitIdentical(t, "error prefix", e.VBC(), ref.VBC(), e.EBC(), ref.EBC())
	if st := e.Stats(); st.UpdatesApplied != 4 {
		t.Fatalf("UpdatesApplied = %d, want 4", st.UpdatesApplied)
	}
}

// TestSingleWorkerApplyInline asserts the degenerate-pool contract: a
// 1-worker engine applies updates inline, without spawning (or crossing a
// channel to) any goroutine, so per-update allocations stay at a small
// constant regardless of how many updates have been applied.
func TestSingleWorkerApplyInline(t *testing.T) {
	base := testGraph(t, 30, 80, 41)
	e, err := New(base.Clone(), Config{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	if e.pooled {
		t.Fatal("single-worker engine started a persistent pool")
	}

	// An add/remove pair of the same (previously absent) edge returns the
	// graph to its initial state, so the pair can repeat forever.
	u, v := -1, -1
	for a := 0; a < e.Graph().N() && u < 0; a++ {
		for b := a + 1; b < e.Graph().N(); b++ {
			if !e.Graph().HasEdge(a, b) {
				u, v = a, b
				break
			}
		}
	}
	if u < 0 {
		t.Fatal("no absent edge found")
	}
	pair := func() {
		if err := e.Apply(graph.Addition(u, v)); err != nil {
			t.Fatalf("Apply add: %v", err)
		}
		if err := e.Apply(graph.Removal(u, v)); err != nil {
			t.Fatalf("Apply remove: %v", err)
		}
	}
	for i := 0; i < 4; i++ {
		pair() // warm the workspace, record pool and delta maps
	}
	avg := testing.AllocsPerRun(100, pair)
	// Two engine Apply calls per run. The steady state reuses the workspace,
	// the cached source records and the delta maps; a small constant covers
	// map-bucket churn. A regression to goroutine-per-update or
	// allocation-per-source immediately blows past this.
	if avg > 32 {
		t.Errorf("allocations per add/remove pair = %.1f, want <= 32 (inline single-worker path must not allocate per update)", avg)
	}
}

// TestClusterInvalidUpdateDoesNotGrow guards the validate-before-apply order
// of Cluster.ApplyBatch: an invalid update naming an out-of-range vertex
// must not grow the coordinator replica as a side effect (graph.Apply grows
// eagerly), or later growth skips registering those sources with the
// workers and every subsequent score is silently wrong.
func TestClusterInvalidUpdateDoesNotGrow(t *testing.T) {
	base := testGraph(t, 10, 24, 91)
	n := base.N()
	cluster, err := NewCluster(base.Clone(), startWorkers(t, 2), nil)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()

	if applied, err := cluster.ApplyBatch([]graph.Update{graph.Removal(0, n+40)}); err == nil || applied != 0 {
		t.Fatalf("ApplyBatch(bad removal) = (%d, %v), want (0, error)", applied, err)
	}
	if applied, err := cluster.ApplyBatch([]graph.Update{graph.Addition(n+40, n+40)}); err == nil || applied != 0 {
		t.Fatalf("ApplyBatch(big self loop) = (%d, %v), want (0, error)", applied, err)
	}
	if cluster.Graph().N() != n {
		t.Fatalf("invalid updates grew the replica: N = %d, want %d", cluster.Graph().N(), n)
	}

	// Real growth must still work and produce correct scores.
	if applied, err := cluster.ApplyBatch([]graph.Update{graph.Addition(0, n+2)}); err != nil || applied != 1 {
		t.Fatalf("ApplyBatch(growth) = (%d, %v)", applied, err)
	}
	checkEngineAgainstBrandes(t, cluster.Graph(), cluster.VBC(), cluster.EBC(), "cluster after rejected growth")
}

// TestClusterApplyBatchMatchesSequential drives two RPC clusters over the
// same stream — one per-update, one batched — and requires bit-identical
// scores plus agreement with Brandes, including across vertex growth.
func TestClusterApplyBatchMatchesSequential(t *testing.T) {
	base := testGraph(t, 24, 60, 51)
	stream := growthStream(t, base, 12, 52)

	seq, err := NewCluster(base.Clone(), startWorkers(t, 2), nil)
	if err != nil {
		t.Fatalf("NewCluster(seq): %v", err)
	}
	defer seq.Close()
	for i, upd := range stream {
		if err := seq.Apply(upd); err != nil {
			t.Fatalf("seq apply %d (%v): %v", i, upd, err)
		}
	}
	checkEngineAgainstBrandes(t, seq.Graph(), seq.VBC(), seq.EBC(), "cluster sequential")

	for _, batch := range []int{4, len(stream)} {
		bat, err := NewCluster(base.Clone(), startWorkers(t, 2), nil)
		if err != nil {
			t.Fatalf("NewCluster(batch %d): %v", batch, err)
		}
		for off := 0; off < len(stream); off += batch {
			end := min(off+batch, len(stream))
			if n, err := bat.ApplyBatch(stream[off:end]); err != nil || n != end-off {
				t.Fatalf("cluster ApplyBatch(%d:%d) = (%d, %v)", off, end, n, err)
			}
		}
		name := fmt.Sprintf("cluster batch %d", batch)
		checkEngineAgainstBrandes(t, bat.Graph(), bat.VBC(), bat.EBC(), name)
		requireBitIdentical(t, name, bat.VBC(), seq.VBC(), bat.EBC(), seq.EBC())
		if err := bat.Close(); err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
	}
}
