package engine

import (
	"bytes"
	"testing"

	"streambc/internal/bc"
	"streambc/internal/bdstore"
	"streambc/internal/graph"
	"streambc/internal/incremental"
)

// checkSampledAgainstStatic compares the engine estimate with a from-scratch
// sampled Brandes pass over the same sample and scale.
func checkSampledAgainstStatic(t *testing.T, g *graph.Graph, sources []int, scale float64, vbc []float64, ebc map[graph.Edge]float64, context string) {
	t.Helper()
	want := bc.ComputeSampled(g, sources, scale)
	for v := range want.VBC {
		if !approx(vbc[v], want.VBC[v]) {
			t.Fatalf("%s: VBC[%d] = %g, want %g", context, v, vbc[v], want.VBC[v])
		}
	}
	for e, x := range want.EBC {
		if !approx(ebc[e], x) {
			t.Fatalf("%s: EBC[%v] = %g, want %g", context, e, ebc[e], x)
		}
	}
}

// TestSampledEngineAcrossWorkersAndStores runs the sampled engine at 1 and 4
// workers, in memory and on disk, against the static sampled reference.
func TestSampledEngineAcrossWorkersAndStores(t *testing.T) {
	base := testGraph(t, 40, 100, 17)
	updates := mixedUpdates(t, base, 14, 9)
	n := base.N()
	sources := bc.SampleSources(n, n/4, 5)

	for _, workers := range []int{1, 4} {
		for _, disk := range []bool{false, true} {
			cfg := Config{Workers: workers, Sources: sources}
			name := "mem"
			if disk {
				cfg.Store = DiskFactory(t.TempDir())
				name = "disk"
			}
			e, err := New(base.Clone(), cfg)
			if err != nil {
				t.Fatalf("New(%s, %d workers): %v", name, workers, err)
			}
			if !e.Sampled() || e.SampleSize() != len(sources) {
				t.Fatalf("Sampled=%v SampleSize=%d, want true/%d", e.Sampled(), e.SampleSize(), len(sources))
			}
			if want := float64(n) / float64(len(sources)); e.Scale() != want {
				t.Fatalf("Scale = %g, want %g", e.Scale(), want)
			}
			if _, err := e.ApplyBatch(updates); err != nil {
				t.Fatalf("ApplyBatch(%s, %d workers): %v", name, workers, err)
			}
			checkSampledAgainstStatic(t, e.Graph(), sources, e.Scale(), e.VBC(), e.EBC(),
				name)
			e.Close()
		}
	}
}

// TestSampledEngineGrowthKeepsSampleFixed checks that new vertices arriving
// in the stream are not registered as sources in sampled mode.
func TestSampledEngineGrowthKeepsSampleFixed(t *testing.T) {
	base := testGraph(t, 20, 50, 3)
	n := base.N()
	sources := bc.SampleSources(n, 6, 2)
	e, err := New(base.Clone(), Config{Workers: 2, Sources: sources})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	if err := e.Apply(graph.Addition(1, n+1)); err != nil {
		t.Fatalf("growth update: %v", err)
	}
	if got := e.Graph().N(); got != n+2 {
		t.Fatalf("graph grew to %d, want %d", got, n+2)
	}
	got := e.SampledSources()
	if len(got) != len(sources) {
		t.Fatalf("sample changed on growth: %v -> %v", sources, got)
	}
	total := 0
	for _, w := range e.workers {
		total += len(w.sources)
	}
	if total != len(sources) {
		t.Fatalf("workers own %d sources after growth, want %d", total, len(sources))
	}
	checkSampledAgainstStatic(t, e.Graph(), sources, e.Scale(), e.VBC(), e.EBC(), "after growth")
}

// TestSampledSnapshotRoundTrip checks that a sampled engine's snapshot
// records the sample and scale, that Restore rebuilds the same sampled
// engine, and that both continue identically on further updates.
func TestSampledSnapshotRoundTrip(t *testing.T) {
	base := testGraph(t, 30, 80, 23)
	updates := mixedUpdates(t, base, 10, 4)
	n := base.N()
	sources := bc.SampleSources(n, n/3, 9)

	e, err := New(base.Clone(), Config{Workers: 2, Sources: sources})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	if _, err := e.ApplyBatch(updates[:6]); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}

	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, e); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	st, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if len(st.Sources) != len(sources) || st.Scale != e.Scale() {
		t.Fatalf("snapshot sample = %d sources scale %g, want %d scale %g",
			len(st.Sources), st.Scale, len(sources), e.Scale())
	}
	for i := range sources {
		if st.Sources[i] != sources[i] {
			t.Fatalf("snapshot sources = %v, want %v", st.Sources, sources)
		}
	}

	// Restoring with a different worker count and store backend must keep the
	// snapshot's sample; a conflicting cfg sample is overridden.
	r, err := RestoreEngine(st, Config{Workers: 3, Store: DiskFactory(t.TempDir()),
		Sources: []int{0, 1}, Scale: 15})
	if err != nil {
		t.Fatalf("RestoreEngine: %v", err)
	}
	defer r.Close()
	if got := r.SampledSources(); len(got) != len(sources) {
		t.Fatalf("restored sample = %v, want %v", got, sources)
	}
	if r.Scale() != e.Scale() {
		t.Fatalf("restored scale = %g, want %g", r.Scale(), e.Scale())
	}
	for v := range e.VBC() {
		if r.VBC()[v] != e.VBC()[v] {
			t.Fatalf("restored VBC[%d] = %v, want %v", v, r.VBC()[v], e.VBC()[v])
		}
	}

	// Both engines keep producing the same sampled estimates.
	rest := updates[6:]
	if _, err := e.ApplyBatch(rest); err != nil {
		t.Fatalf("original ApplyBatch: %v", err)
	}
	if _, err := r.ApplyBatch(rest); err != nil {
		t.Fatalf("restored ApplyBatch: %v", err)
	}
	for v := range e.VBC() {
		if !approx(r.VBC()[v], e.VBC()[v]) {
			t.Fatalf("post-restore VBC[%d] = %g, want %g", v, r.VBC()[v], e.VBC()[v])
		}
	}
	checkSampledAgainstStatic(t, r.Graph(), sources, r.Scale(), r.VBC(), r.EBC(), "restored")
}

// TestExactSnapshotStaysVersion1 pins the exact-mode snapshot encoding: no
// sampled block, version byte 1 — byte-compatible with pre-sampling readers.
func TestExactSnapshotStaysVersion1(t *testing.T) {
	base := testGraph(t, 12, 24, 2)
	e, err := New(base, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, e); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	raw := buf.Bytes()
	if len(raw) < 10 || raw[8] != snapshotVersion1 {
		t.Fatalf("exact snapshot version byte = %d, want %d", raw[8], snapshotVersion1)
	}
	st, err := ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if st.Sources != nil || st.Scale != 0 {
		t.Fatalf("exact snapshot decoded sample %v scale %g, want none", st.Sources, st.Scale)
	}
}

// TestSampledClusterMatchesEngine drives the RPC embodiment with an explicit
// source sample and checks it against the in-process sampled engine and the
// static sampled reference.
func TestSampledClusterMatchesEngine(t *testing.T) {
	base := testGraph(t, 24, 60, 31)
	updates := mixedUpdates(t, base, 10, 7)
	n := base.N()
	sources := bc.SampleSources(n, n/3, 13)
	addrs := startWorkers(t, 2)

	cluster, err := NewSampledCluster(base.Clone(), addrs, nil, sources, 0)
	if err != nil {
		t.Fatalf("NewSampledCluster: %v", err)
	}
	defer cluster.Close()
	if !cluster.Sampled() || len(cluster.SampledSources()) != len(sources) {
		t.Fatalf("cluster sample = %v, want %v", cluster.SampledSources(), sources)
	}
	if want := float64(n) / float64(len(sources)); cluster.Scale() != want {
		t.Fatalf("cluster scale = %g, want %g", cluster.Scale(), want)
	}
	if _, err := cluster.ApplyBatch(updates); err != nil {
		t.Fatalf("cluster ApplyBatch: %v", err)
	}
	checkSampledAgainstStatic(t, cluster.Graph(), sources, cluster.Scale(),
		cluster.VBC(), cluster.EBC(), "cluster")
}

// TestSampledUpdaterViaEngineSingleWorkerIsDeterministic double-checks the
// engine's single-worker sampled path against the sequential sampled updater.
func TestSampledEngineMatchesSampledUpdater(t *testing.T) {
	base := testGraph(t, 30, 70, 41)
	updates := mixedUpdates(t, base, 12, 3)
	n := base.N()
	sources := bc.SampleSources(n, n/2, 21)

	e, err := New(base.Clone(), Config{Workers: 1, Sources: sources})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	u, err := incremental.NewSampledUpdater(base.Clone(), bdstore.NewMemStoreForSources(n, sources), 0)
	if err != nil {
		t.Fatalf("NewSampledUpdater: %v", err)
	}
	for i, upd := range updates {
		if err := e.Apply(upd); err != nil {
			t.Fatalf("engine update %d: %v", i, err)
		}
		if err := u.Apply(upd); err != nil {
			t.Fatalf("updater update %d: %v", i, err)
		}
	}
	for v := range u.VBC() {
		if !approx(e.VBC()[v], u.VBC()[v]) {
			t.Fatalf("VBC[%d]: engine %g, updater %g", v, e.VBC()[v], u.VBC()[v])
		}
	}
}
