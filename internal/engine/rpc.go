package engine

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"streambc/internal/bc"
	"streambc/internal/bdstore"
	"streambc/internal/graph"
	"streambc/internal/incremental"
)

// This file contains the cross-machine embodiment of the framework: each
// worker is an RPC server that owns one source partition (and its BD file),
// and a coordinator fans updates out to the workers and reduces their partial
// betweenness deltas, exactly like the mapper/reducer roles of Figure 4. Only
// the standard library net/rpc stack is used, so a deployment is a matter of
// starting `bcrun -serve` processes on each machine.
//
// The unit of exchange between workers and the coordinator is
// incremental.Delta — the same sparse partial-score type the in-process
// engine reduces — and the preferred call is Worker.ApplyBatch, which ships
// a whole batch of updates in one round-trip and returns one delta per
// update so the coordinator can reduce them in exact stream order.

// InitArgs ships the graph replica and the source partition to a worker.
type InitArgs struct {
	N        int
	Directed bool
	Edges    []graph.Edge
	Sources  []int
	// DiskPath, when non-empty, makes the worker keep its BD partition in an
	// out-of-core store (sharded v2 layout) rooted at that directory instead
	// of in memory. Any store already in the directory is replaced.
	DiskPath string
	// Scale is the estimator factor applied to every betweenness
	// contribution of this worker's sources (n/k in the sampled-source
	// approximate mode). Values <= 0 mean 1 (exact mode).
	Scale float64
}

// ApplyArgs carries one edge update to a worker.
type ApplyArgs struct {
	Update graph.Update
}

// BatchArgs carries a batch of edge updates to a worker, in stream order.
type BatchArgs struct {
	Updates []graph.Update
}

// BatchReply returns one partial-score delta per update of the batch, in the
// same order.
type BatchReply struct {
	Deltas []*incremental.Delta
}

// WorkerServer is the RPC-exposed worker. It is safe for the sequential use
// pattern of the coordinator (one in-flight call per worker); a mutex guards
// against accidental concurrent calls.
type WorkerServer struct {
	mu      sync.Mutex
	g       *graph.Graph
	store   incremental.Store
	sources []int
	proc    *incremental.SourceProcessor
}

// NewWorkerServer returns an uninitialised worker server; the coordinator
// initialises it through the Init RPC.
func NewWorkerServer() *WorkerServer { return &WorkerServer{} }

// Init builds the worker's graph replica, creates its store and runs the
// offline Brandes pass for its source partition, returning the partial
// initial scores.
func (w *WorkerServer) Init(args *InitArgs, reply *incremental.Delta) error {
	w.mu.Lock()
	defer w.mu.Unlock()

	var g *graph.Graph
	if args.Directed {
		g = graph.NewDirected(args.N)
	} else {
		g = graph.New(args.N)
	}
	for _, e := range args.Edges {
		if err := g.AddEdge(e.U, e.V); err != nil {
			return fmt.Errorf("engine: worker init: %w", err)
		}
	}
	var store incremental.Store
	var err error
	if args.DiskPath != "" {
		// DiskPath is this worker's store directory (sharded v2 layout); a
		// re-Init over the same directory replaces the previous store.
		sources := args.Sources
		if sources == nil {
			sources = []int{}
		}
		store, err = bdstore.Open(args.DiskPath, bdstore.Options{
			NumVertices: args.N,
			Sources:     sources,
			Mode:        bdstore.ModeRecreate,
		})
		if err != nil {
			return err
		}
	} else {
		store = bdstore.NewMemStoreForSources(args.N, args.Sources)
	}

	scale := args.Scale
	if scale <= 0 {
		scale = 1
	}
	w.g = g
	w.store = store
	w.sources = append([]int(nil), args.Sources...)
	w.proc = incremental.NewSourceProcessor(store, args.N)
	w.proc.SetScale(scale)

	partial := bc.NewResult(args.N)
	state := bc.NewSourceState(args.N)
	var queue []int
	for _, s := range w.sources {
		bc.SingleSource(g, s, state, &queue)
		if scale == 1 {
			bc.AccumulateSource(g, s, state, partial)
		} else {
			bc.AccumulateSourceScaled(g, s, state, partial, scale)
		}
		if err := store.Save(s, state); err != nil {
			return err
		}
	}
	if err := store.Flush(); err != nil {
		return err
	}
	if err := w.proc.BuildProbeIndex(); err != nil {
		return err
	}
	reply.VBC = make(map[int]float64)
	for v, x := range partial.VBC {
		if x != 0 {
			reply.VBC[v] = x
		}
	}
	reply.EBC = partial.EBC
	return nil
}

// ApplyUpdate applies one update to the worker's replica and source partition
// and returns the partial betweenness changes (a batch of one).
func (w *WorkerServer) ApplyUpdate(args *ApplyArgs, reply *incremental.Delta) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	deltas, err := w.applyBatch([]graph.Update{args.Update})
	if err != nil {
		return err
	}
	*reply = *deltas[0]
	return nil
}

// ApplyBatch applies a batch of updates, in order, to the worker's replica
// and source partition, loading and saving each affected source at most once
// for the whole batch, and returns one partial delta per update.
func (w *WorkerServer) ApplyBatch(args *BatchArgs, reply *BatchReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	deltas, err := w.applyBatch(args.Updates)
	if err != nil {
		return err
	}
	reply.Deltas = deltas
	return nil
}

// applyBatch is the shared map phase: it mutates the replica and the BD
// partition and returns the per-update deltas. The caller holds the mutex.
func (w *WorkerServer) applyBatch(updates []graph.Update) ([]*incremental.Delta, error) {
	if w.g == nil {
		return nil, fmt.Errorf("engine: worker not initialised")
	}
	w.proc.SetBatching(len(updates) > 1)
	deltas := make([]*incremental.Delta, 0, len(updates))
	fail := func(err error) ([]*incremental.Delta, error) {
		// Flush what reached the store; a flush failure compounds the
		// original error and must not be swallowed.
		return nil, errors.Join(err, w.proc.Flush())
	}
	for _, upd := range updates {
		if !upd.Remove {
			if m := max(upd.U, upd.V); m >= w.g.N() {
				if err := w.grow(m + 1); err != nil {
					return fail(err)
				}
			}
		}
		if err := w.g.Apply(upd); err != nil {
			return fail(err)
		}
		d := incremental.NewDelta()
		if err := w.proc.ProcessUpdate(w.g, w.sources, upd, d); err != nil {
			return fail(err)
		}
		deltas = append(deltas, d)
	}
	return deltas, w.proc.Flush()
}

// AddSources registers extra sources (new vertices) with this worker.
func (w *WorkerServer) AddSources(sources []int, reply *bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.g == nil {
		return fmt.Errorf("engine: worker not initialised")
	}
	for _, s := range sources {
		if s >= w.g.N() {
			if err := w.grow(s + 1); err != nil {
				return err
			}
		}
		if err := w.proc.AddStoreSource(s); err != nil {
			return err
		}
		w.sources = append(w.sources, s)
	}
	*reply = true
	return nil
}

func (w *WorkerServer) grow(n int) error {
	for w.g.N() < n {
		w.g.AddVertex()
	}
	if err := w.proc.GrowStore(n); err != nil {
		return err
	}
	return nil
}

// Shutdown closes the worker's store.
func (w *WorkerServer) Shutdown(_ *struct{}, reply *bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.store != nil {
		if err := w.store.Close(); err != nil {
			return err
		}
		w.store = nil
	}
	*reply = true
	return nil
}

// ServeWorker serves a WorkerServer on the listener until the listener is
// closed. It returns the RPC server so tests can register additional
// services.
func ServeWorker(l net.Listener, w *WorkerServer) *rpc.Server {
	srv := rpc.NewServer()
	// RegisterName cannot fail for a type with valid exported methods.
	_ = srv.RegisterName("Worker", w)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return srv
}

// Cluster is the coordinator of a set of RPC workers: it keeps its own graph
// replica (to validate updates and serve reads) and the global betweenness
// scores, and delegates the per-source work to the workers.
type Cluster struct {
	g       *graph.Graph
	clients []*rpc.Client
	res     *bc.Result
	nextRR  int
	applied int

	// sample is the explicit source set of the approximate mode (nil in
	// exact mode) and scale the matching estimator factor.
	sample []int
	scale  float64
}

// NewCluster connects to the worker addresses, partitions the sources of g
// across them, initialises every worker and merges the initial partial
// scores. Pass diskDirs non-nil (one path per worker, may be empty strings)
// to ask workers to keep their BD partition on disk.
func NewCluster(g *graph.Graph, addrs []string, diskPaths []string) (*Cluster, error) {
	return NewSampledCluster(g, addrs, diskPaths, nil, 0)
}

// NewSampledCluster is NewCluster with the sampled-source approximate mode:
// only the given sources (nil = every vertex, exact mode) are partitioned
// across the workers, and every betweenness contribution is scaled by scale
// (<= 0 means n/len(sources)). As in the in-process engine the sample is
// fixed: vertices arriving later in the stream are never added as sources.
func NewSampledCluster(g *graph.Graph, addrs []string, diskPaths []string, sources []int, scale float64) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("engine: cluster needs at least one worker address")
	}
	pool, poolScale, err := sourcePool(g.N(), Config{Sources: sources, Scale: scale})
	if err != nil {
		return nil, err
	}
	// nextRR continues the strided partition: the source of rank r lives on
	// worker r mod len(addrs), whether it was present at construction or
	// arrived later in the stream.
	c := &Cluster{g: g, res: bc.NewResult(g.N()), scale: poolScale, nextRR: len(pool)}
	if sources != nil {
		c.sample = pool
	}
	edges := g.Edges()
	for i, addr := range addrs {
		client, err := rpc.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("engine: dialing worker %s: %w", addr, err)
		}
		c.clients = append(c.clients, client)

		args := &InitArgs{
			N:        g.N(),
			Directed: g.Directed(),
			Edges:    edges,
			Sources:  bc.StridedSources(pool, len(addrs), i),
			Scale:    poolScale,
		}
		if diskPaths != nil && i < len(diskPaths) {
			args.DiskPath = diskPaths[i]
		}
		var reply incremental.Delta
		if err := client.Call("Worker.Init", args, &reply); err != nil {
			c.Close()
			return nil, fmt.Errorf("engine: initialising worker %s: %w", addr, err)
		}
		c.mergePartial(&reply)
	}
	return c, nil
}

func (c *Cluster) mergePartial(d *incremental.Delta) {
	for v, x := range d.VBC {
		c.res.VBC[v] += x
	}
	for e, x := range d.EBC {
		c.res.EBC[e] += x
	}
}

// Graph returns the coordinator's replica of the evolving graph.
func (c *Cluster) Graph() *graph.Graph { return c.g }

// Result returns the live betweenness scores.
func (c *Cluster) Result() *bc.Result { return c.res }

// VBC returns the current vertex betweenness scores.
func (c *Cluster) VBC() []float64 { return c.res.VBC }

// EBC returns the current edge betweenness scores.
func (c *Cluster) EBC() map[graph.Edge]float64 { return c.res.EBC }

// Stats returns the coordinator's applied-update counter (per-source skip
// counters live on the remote workers).
func (c *Cluster) Stats() Stats { return Stats{UpdatesApplied: c.applied} }

// Apply sends one update to every worker and reduces their partial score
// changes — a batch of one.
func (c *Cluster) Apply(upd graph.Update) error {
	_, err := c.ApplyBatch([]graph.Update{upd})
	return err
}

// ApplyBatch ships a whole batch of updates to every worker in a single
// round-trip per worker and reduces the per-update deltas in stream order,
// so a cluster pays one RPC (and one store load/save per affected source)
// per batch instead of per update. It returns how many updates were applied
// to the coordinator replica. A replica validation error only truncates the
// batch (the valid prefix is applied and reduced, like sequential Apply); a
// worker RPC error leaves the cluster diverged — replica advanced, scores
// not reduced — and the returned error says so.
//
// New vertices referenced by an addition are registered with the workers
// before the batch is shipped; this is equivalent to growing mid-stream
// because a vertex is isolated — and therefore skipped by every source —
// until the update that first references it.
func (c *Cluster) ApplyBatch(updates []graph.Update) (int, error) {
	if len(updates) == 0 {
		return 0, nil
	}
	// Validate against the coordinator replica by applying, growing the
	// cluster exactly when the update being applied needs it (as sequential
	// Apply would): a batch that fails early leaves no growth from its
	// unapplied tail behind. Workers only ever see the valid prefix.
	shipped := 0
	var applyErr error
	for _, upd := range updates {
		// Validate before touching the replica: graph.Apply grows the
		// vertex range as a side effect even when it rejects the update,
		// which would silently desynchronise the replica from the workers'
		// source assignment.
		if err := incremental.ValidateUpdate(c.g, upd); err != nil {
			applyErr = err
			break
		}
		if !upd.Remove {
			if n := max(upd.U, upd.V) + 1; n > c.g.N() {
				if err := c.growTo(n); err != nil {
					return shipped, err
				}
			}
		}
		if err := c.g.Apply(upd); err != nil {
			applyErr = err
			break
		}
		shipped++
	}
	if shipped == 0 {
		return 0, applyErr
	}
	batch := updates[:shipped]

	replies := make([]BatchReply, len(c.clients))
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for i, client := range c.clients {
		wg.Add(1)
		go func(i int, client *rpc.Client) {
			defer wg.Done()
			errs[i] = client.Call("Worker.ApplyBatch", &BatchArgs{Updates: batch}, &replies[i])
		}(i, client)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			// The coordinator replica (and possibly some workers) already
			// advanced by the shipped prefix while the scores were never
			// reduced: report the shipped count truthfully and leave the
			// cluster to be rebuilt — there is no safe automatic retry.
			return shipped, fmt.Errorf("engine: worker %d apply batch (cluster state diverged, rebuild required): %w", i, err)
		}
	}
	for len(c.res.VBC) < c.g.N() {
		c.res.VBC = append(c.res.VBC, 0)
	}
	// Reduce in update-major, worker order — the order sequential per-update
	// application would have used, so the scores are bit-identical.
	for i, upd := range batch {
		for j := range replies {
			if i < len(replies[j].Deltas) && replies[j].Deltas[i] != nil {
				c.mergePartial(replies[j].Deltas[i])
			}
		}
		if upd.Remove {
			delete(c.res.EBC, bc.EdgeKey(c.g, upd.U, upd.V))
		}
		c.applied++
	}
	return shipped, applyErr
}

// Sampled reports whether the cluster runs in the sampled-source mode.
func (c *Cluster) Sampled() bool { return c.sample != nil }

// SampledSources returns a copy of the sampled source set (nil in exact mode).
func (c *Cluster) SampledSources() []int {
	if c.sample == nil {
		return nil
	}
	return append([]int(nil), c.sample...)
}

// Scale returns the estimator factor (1 in exact mode).
func (c *Cluster) Scale() float64 { return c.scale }

// growTo grows the coordinator replica and assigns the new sources to workers
// round-robin (sampled mode keeps its fixed source set: workers only grow
// their records through the batch itself).
func (c *Cluster) growTo(n int) error {
	old := c.g.N()
	for c.g.N() < n {
		c.g.AddVertex()
	}
	if c.sample != nil {
		return nil
	}
	for s := old; s < n; s++ {
		i := c.nextRR % len(c.clients)
		c.nextRR++
		var ok bool
		if err := c.clients[i].Call("Worker.AddSources", []int{s}, &ok); err != nil {
			return fmt.Errorf("engine: assigning source %d to worker %d: %w", s, i, err)
		}
	}
	return nil
}

// Close shuts the workers down and closes the connections.
func (c *Cluster) Close() error {
	var firstErr error
	for _, client := range c.clients {
		if client == nil {
			continue
		}
		var ok bool
		if err := client.Call("Worker.Shutdown", &struct{}{}, &ok); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := client.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
