package engine

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"

	"streambc/internal/bc"
	"streambc/internal/bdstore"
	"streambc/internal/graph"
	"streambc/internal/incremental"
)

// This file contains the cross-machine embodiment of the framework: each
// worker is an RPC server that owns one source partition (and its BD file),
// and a coordinator fans updates out to the workers and reduces their partial
// betweenness deltas, exactly like the mapper/reducer roles of Figure 4. Only
// the standard library net/rpc stack is used, so a deployment is a matter of
// starting `bcrun -serve` processes on each machine.

// InitArgs ships the graph replica and the source partition to a worker.
type InitArgs struct {
	N        int
	Directed bool
	Edges    []graph.Edge
	Sources  []int
	// DiskPath, when non-empty, makes the worker keep its BD partition in an
	// out-of-core store at that path instead of in memory.
	DiskPath string
}

// PartialScores is the unit of exchange between workers and the coordinator:
// sparse partial vertex and edge betweenness values.
type PartialScores struct {
	VBC map[int]float64
	EBC map[graph.Edge]float64
}

// ApplyArgs carries one edge update to a worker.
type ApplyArgs struct {
	Update graph.Update
}

// WorkerServer is the RPC-exposed worker. It is safe for the sequential use
// pattern of the coordinator (one in-flight call per worker); a mutex guards
// against accidental concurrent calls.
type WorkerServer struct {
	mu      sync.Mutex
	g       *graph.Graph
	store   incremental.Store
	sources []int
	ws      *incremental.Workspace
	rec     *bc.SourceState
	distBuf []int32
}

// NewWorkerServer returns an uninitialised worker server; the coordinator
// initialises it through the Init RPC.
func NewWorkerServer() *WorkerServer { return &WorkerServer{} }

// Init builds the worker's graph replica, creates its store and runs the
// offline Brandes pass for its source partition, returning the partial
// initial scores.
func (w *WorkerServer) Init(args *InitArgs, reply *PartialScores) error {
	w.mu.Lock()
	defer w.mu.Unlock()

	var g *graph.Graph
	if args.Directed {
		g = graph.NewDirected(args.N)
	} else {
		g = graph.New(args.N)
	}
	for _, e := range args.Edges {
		if err := g.AddEdge(e.U, e.V); err != nil {
			return fmt.Errorf("engine: worker init: %w", err)
		}
	}
	var store incremental.Store
	var err error
	if args.DiskPath != "" {
		store, err = bdstore.NewDiskStoreForSources(args.DiskPath, args.N, args.Sources)
		if err != nil {
			return err
		}
	} else {
		store = bdstore.NewMemStoreForSources(args.N, args.Sources)
	}

	w.g = g
	w.store = store
	w.sources = append([]int(nil), args.Sources...)
	w.ws = incremental.NewWorkspace(args.N)
	w.rec = bc.NewSourceState(args.N)

	partial := bc.NewResult(args.N)
	state := bc.NewSourceState(args.N)
	var queue []int
	for _, s := range w.sources {
		bc.SingleSource(g, s, state, &queue)
		bc.AccumulateSource(g, s, state, partial)
		if err := store.Save(s, state); err != nil {
			return err
		}
	}
	reply.VBC = make(map[int]float64)
	for v, x := range partial.VBC {
		if x != 0 {
			reply.VBC[v] = x
		}
	}
	reply.EBC = partial.EBC
	return nil
}

// ApplyUpdate applies one update to the worker's replica and source partition
// and returns the partial betweenness changes.
func (w *WorkerServer) ApplyUpdate(args *ApplyArgs, reply *PartialScores) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.g == nil {
		return fmt.Errorf("engine: worker not initialised")
	}
	upd := args.Update
	if !upd.Remove {
		if m := max(upd.U, upd.V); m >= w.g.N() {
			if err := w.grow(m + 1); err != nil {
				return err
			}
		}
	}
	if err := w.g.Apply(upd); err != nil {
		return err
	}
	delta := incremental.NewDelta()
	directed := w.g.Directed()
	for _, s := range w.sources {
		if err := w.store.LoadDistances(s, &w.distBuf); err != nil {
			return err
		}
		if !incremental.Affected(w.distBuf, upd, directed) {
			continue
		}
		if err := w.store.Load(s, w.rec); err != nil {
			return err
		}
		if incremental.UpdateSource(w.g, s, upd, w.rec, delta, w.ws) {
			if err := w.store.Save(s, w.rec); err != nil {
				return err
			}
		}
	}
	reply.VBC = delta.VBC
	reply.EBC = delta.EBC
	return nil
}

// AddSources registers extra sources (new vertices) with this worker.
func (w *WorkerServer) AddSources(sources []int, reply *bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.g == nil {
		return fmt.Errorf("engine: worker not initialised")
	}
	for _, s := range sources {
		if s >= w.g.N() {
			if err := w.grow(s + 1); err != nil {
				return err
			}
		}
		if err := w.store.AddSource(s); err != nil {
			return err
		}
		w.sources = append(w.sources, s)
	}
	*reply = true
	return nil
}

func (w *WorkerServer) grow(n int) error {
	for w.g.N() < n {
		w.g.AddVertex()
	}
	if err := w.store.Grow(n); err != nil {
		return err
	}
	return nil
}

// Shutdown closes the worker's store.
func (w *WorkerServer) Shutdown(_ *struct{}, reply *bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.store != nil {
		if err := w.store.Close(); err != nil {
			return err
		}
		w.store = nil
	}
	*reply = true
	return nil
}

// ServeWorker serves a WorkerServer on the listener until the listener is
// closed. It returns the RPC server so tests can register additional
// services.
func ServeWorker(l net.Listener, w *WorkerServer) *rpc.Server {
	srv := rpc.NewServer()
	// RegisterName cannot fail for a type with valid exported methods.
	_ = srv.RegisterName("Worker", w)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go srv.ServeConn(conn)
		}
	}()
	return srv
}

// Cluster is the coordinator of a set of RPC workers: it keeps its own graph
// replica (to validate updates and serve reads) and the global betweenness
// scores, and delegates the per-source work to the workers.
type Cluster struct {
	g       *graph.Graph
	clients []*rpc.Client
	res     *bc.Result
	nextRR  int
	applied int
}

// NewCluster connects to the worker addresses, partitions the sources of g
// across them, initialises every worker and merges the initial partial
// scores. Pass diskDirs non-nil (one path per worker, may be empty strings)
// to ask workers to keep their BD partition on disk.
func NewCluster(g *graph.Graph, addrs []string, diskPaths []string) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("engine: cluster needs at least one worker address")
	}
	c := &Cluster{g: g, res: bc.NewResult(g.N())}
	edges := g.Edges()
	for i, addr := range addrs {
		client, err := rpc.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("engine: dialing worker %s: %w", addr, err)
		}
		c.clients = append(c.clients, client)

		lo, hi := bc.SourceRange(g.N(), len(addrs), i)
		sources := make([]int, 0, hi-lo)
		for s := lo; s < hi; s++ {
			sources = append(sources, s)
		}
		args := &InitArgs{N: g.N(), Directed: g.Directed(), Edges: edges, Sources: sources}
		if diskPaths != nil && i < len(diskPaths) {
			args.DiskPath = diskPaths[i]
		}
		var reply PartialScores
		if err := client.Call("Worker.Init", args, &reply); err != nil {
			c.Close()
			return nil, fmt.Errorf("engine: initialising worker %s: %w", addr, err)
		}
		c.mergePartial(&reply)
	}
	return c, nil
}

func (c *Cluster) mergePartial(p *PartialScores) {
	for v, x := range p.VBC {
		c.res.VBC[v] += x
	}
	for e, x := range p.EBC {
		c.res.EBC[e] += x
	}
}

// Graph returns the coordinator's replica of the evolving graph.
func (c *Cluster) Graph() *graph.Graph { return c.g }

// Result returns the live betweenness scores.
func (c *Cluster) Result() *bc.Result { return c.res }

// VBC returns the current vertex betweenness scores.
func (c *Cluster) VBC() []float64 { return c.res.VBC }

// EBC returns the current edge betweenness scores.
func (c *Cluster) EBC() map[graph.Edge]float64 { return c.res.EBC }

// Apply sends the update to every worker in parallel and reduces their
// partial score changes.
func (c *Cluster) Apply(upd graph.Update) error {
	if !upd.Remove {
		if m := max(upd.U, upd.V); m >= c.g.N() {
			if err := c.growTo(m + 1); err != nil {
				return err
			}
		}
	}
	if err := c.g.Apply(upd); err != nil {
		return err
	}
	replies := make([]PartialScores, len(c.clients))
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for i, client := range c.clients {
		wg.Add(1)
		go func(i int, client *rpc.Client) {
			defer wg.Done()
			errs[i] = client.Call("Worker.ApplyUpdate", &ApplyArgs{Update: upd}, &replies[i])
		}(i, client)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("engine: worker %d apply: %w", i, err)
		}
	}
	for len(c.res.VBC) < c.g.N() {
		c.res.VBC = append(c.res.VBC, 0)
	}
	for i := range replies {
		c.mergePartial(&replies[i])
	}
	if upd.Remove {
		delete(c.res.EBC, bc.EdgeKey(c.g, upd.U, upd.V))
	}
	c.applied++
	return nil
}

// growTo grows the coordinator replica and assigns the new sources to workers
// round-robin.
func (c *Cluster) growTo(n int) error {
	old := c.g.N()
	for c.g.N() < n {
		c.g.AddVertex()
	}
	for s := old; s < n; s++ {
		i := c.nextRR % len(c.clients)
		c.nextRR++
		var ok bool
		if err := c.clients[i].Call("Worker.AddSources", []int{s}, &ok); err != nil {
			return fmt.Errorf("engine: assigning source %d to worker %d: %w", s, i, err)
		}
	}
	return nil
}

// Close shuts the workers down and closes the connections.
func (c *Cluster) Close() error {
	var firstErr error
	for _, client := range c.clients {
		if client == nil {
			continue
		}
		var ok bool
		if err := client.Call("Worker.Shutdown", &struct{}{}, &ok); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := client.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
