package engine

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"streambc/internal/obs"
)

// TestStoreMetricsExported: an engine built over the disk store and a metrics
// registry must export the full streambc_store_* surface — shape gauges,
// flush/migration counters, the per-path medium-read counter and the
// flush-latency histogram — with the counters actually moving.
func TestStoreMetricsExported(t *testing.T) {
	base := testGraph(t, 25, 70, 9)
	reg := obs.NewRegistry()
	e, err := New(base.Clone(), Config{Workers: 2, Store: DiskFactory(t.TempDir()), Obs: reg})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	if _, err := e.ApplyAll(mixedUpdates(t, base, 10, 11)); err != nil {
		t.Fatalf("ApplyAll: %v", err)
	}

	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("engine exposition does not parse: %v\n%s", err, buf.String())
	}
	byName := map[string]*obs.ExpoFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	for _, want := range []string{
		"streambc_store_records", "streambc_store_bytes",
		"streambc_store_dirty_records", "streambc_store_segments",
		"streambc_store_flushes_total", "streambc_store_migrations_total",
		"streambc_store_medium_reads_total", "streambc_store_flush_seconds",
	} {
		if byName[want] == nil {
			t.Fatalf("family %s missing from a store-backed engine's registry", want)
		}
	}

	sampleValue := func(name string) float64 {
		t.Helper()
		f := byName[name]
		if len(f.Samples) != 1 {
			t.Fatalf("%s has %d samples, want 1", name, len(f.Samples))
		}
		v, err := strconv.ParseFloat(f.Samples[0].Value, 64)
		if err != nil {
			t.Fatalf("%s value %q: %v", name, f.Samples[0].Value, err)
		}
		return v
	}
	if v := sampleValue("streambc_store_records"); v != float64(base.N()) {
		t.Fatalf("streambc_store_records = %g, want one per source (%d)", v, base.N())
	}
	// Every worker flushed its initial records at startup and again per batch.
	if v := sampleValue("streambc_store_flushes_total"); v < 2 {
		t.Fatalf("streambc_store_flushes_total = %g, want >= workers", v)
	}

	// The medium-read counter splits by path, one series each.
	readsFam := byName["streambc_store_medium_reads_total"]
	paths := map[string]bool{}
	for _, s := range readsFam.Samples {
		for _, p := range []string{"mmap", "pread"} {
			if strings.Contains(s.Labels, `path="`+p+`"`) {
				paths[p] = true
			}
		}
	}
	if !paths["mmap"] || !paths["pread"] {
		t.Fatalf("medium reads missing a path series: %+v", readsFam.Samples)
	}

	// The flush histogram observed those flushes.
	countSample := 0.0
	for _, s := range byName["streambc_store_flush_seconds"].Samples {
		if s.Name == "streambc_store_flush_seconds_count" {
			v, err := strconv.ParseFloat(s.Value, 64)
			if err != nil {
				t.Fatal(err)
			}
			countSample = v
		}
	}
	if countSample < 2 {
		t.Fatalf("flush histogram count = %g, want >= workers", countSample)
	}
}
