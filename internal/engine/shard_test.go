package engine

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"streambc/internal/bc"
	"streambc/internal/graph"
)

// shardStream builds a mixed stream that also grows the graph: the tail adds
// edges touching vertices the initial graph does not have, so the per-shard
// ownership of late-arriving sources is exercised too.
func shardStream(t *testing.T, g *graph.Graph) []graph.Update {
	t.Helper()
	ups := mixedUpdates(t, g, 16, 5)
	n := g.N()
	ups = append(ups,
		graph.Update{U: 0, V: n},     // new vertex n
		graph.Update{U: n, V: n + 1}, // new vertex n+1
		graph.Update{U: 1, V: n + 2}, // new vertex n+2
		graph.Update{U: n + 2, V: 2},
	)
	return ups
}

// sameBits asserts a and b hold identical float64 bit patterns everywhere.
func sameBits(t *testing.T, context string, a, b *bc.Result) {
	t.Helper()
	if len(a.VBC) != len(b.VBC) {
		t.Fatalf("%s: VBC length %d vs %d", context, len(a.VBC), len(b.VBC))
	}
	for v := range a.VBC {
		if math.Float64bits(a.VBC[v]) != math.Float64bits(b.VBC[v]) {
			t.Fatalf("%s: VBC[%d] bits %x vs %x (%g vs %g)", context, v,
				math.Float64bits(a.VBC[v]), math.Float64bits(b.VBC[v]), a.VBC[v], b.VBC[v])
		}
	}
	if len(a.EBC) != len(b.EBC) {
		t.Fatalf("%s: EBC size %d vs %d", context, len(a.EBC), len(b.EBC))
	}
	for e, x := range a.EBC {
		y, ok := b.EBC[e]
		if !ok {
			t.Fatalf("%s: EBC key %v missing from reference", context, e)
		}
		if math.Float64bits(x) != math.Float64bits(y) {
			t.Fatalf("%s: EBC[%v] bits %x vs %x", context, e, math.Float64bits(x), math.Float64bits(y))
		}
	}
}

// sumShards replays the stream through cnt one-worker shard engines and
// returns the key-by-key sum of their results, added in shard order.
func sumShards(t *testing.T, g *graph.Graph, ups []graph.Update, cnt int, sources []int) *bc.Result {
	t.Helper()
	var out *bc.Result
	for i := 0; i < cnt; i++ {
		e, err := New(g.Clone(), Config{Workers: 1, ShardIndex: i, ShardCount: cnt, Sources: sources})
		if err != nil {
			t.Fatalf("New(shard %d/%d): %v", i, cnt, err)
		}
		if !e.Sharded() || e.ShardIndex() != i || e.ShardCount() != cnt {
			t.Fatalf("shard identity = %d/%d sharded=%v, want %d/%d", e.ShardIndex(), e.ShardCount(), e.Sharded(), i, cnt)
		}
		if _, err := e.ApplyAll(ups); err != nil {
			t.Fatalf("shard %d/%d: ApplyAll: %v", i, cnt, err)
		}
		if out == nil {
			out = bc.NewResult(len(e.VBC()))
		}
		for v, x := range e.VBC() {
			out.VBC[v] += x
		}
		for k, x := range e.EBC() {
			out.EBC[k] += x
		}
		e.Close()
	}
	return out
}

// TestShardSumMatchesPartitionEngineBitwise is the in-package core of the
// sharding exactness claim: the key-by-key sum of N one-worker shard engines
// equals, bit for bit, a single N-worker engine that keeps per-worker partial
// scores and folds them in worker order — for exact and sampled mode, across
// a stream that removes edges and grows the graph.
func TestShardSumMatchesPartitionEngineBitwise(t *testing.T) {
	base := testGraph(t, 36, 100, 11)
	ups := shardStream(t, base)
	sample := bc.SampleSources(base.N(), base.N()/3, 9)
	for _, tc := range []struct {
		name    string
		sources []int
	}{
		{"exact", nil},
		{"sampled", sample},
	} {
		for _, cnt := range []int{2, 3, 4} {
			ref, err := New(base.Clone(), Config{Workers: cnt, PartitionScores: true, Sources: tc.sources})
			if err != nil {
				t.Fatalf("%s/%d: New(partition): %v", tc.name, cnt, err)
			}
			if _, err := ref.ApplyAll(ups); err != nil {
				t.Fatalf("%s/%d: partition ApplyAll: %v", tc.name, cnt, err)
			}
			want := &bc.Result{VBC: ref.VBC(), EBC: ref.EBC()}
			got := sumShards(t, base, ups, cnt, tc.sources)
			sameBits(t, tc.name+"/"+string(rune('0'+cnt))+" shards", got, want)
			if tc.sources == nil {
				checkEngineAgainstBrandes(t, ref.Graph(), got.VBC, got.EBC, "summed shards")
			}
			ref.Close()
		}
	}
}

// TestShardStrideOwnership pins the construction: shard i of n owns exactly
// bc.StridedSources(pool, n, i) — for the initial sample and, in exact mode,
// for vertices that arrive after construction.
func TestShardStrideOwnership(t *testing.T) {
	base := testGraph(t, 30, 80, 13)
	sample := bc.SampleSources(base.N(), 12, 3)
	for i := 0; i < 3; i++ {
		e, err := New(base.Clone(), Config{Workers: 1, ShardIndex: i, ShardCount: 3, Sources: sample})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		want := bc.StridedSources(sample, 3, i)
		got := e.SampledSources()
		if len(got) != len(want) {
			t.Fatalf("shard %d: %d sources, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("shard %d: sources[%d] = %d, want %d", i, j, got[j], want[j])
			}
		}
		// The sampled shard still scales by n/k of the WHOLE sample.
		wantScale := float64(base.N()) / float64(len(sample))
		if math.Abs(e.Scale()-wantScale) > 1e-12 {
			t.Fatalf("shard %d: scale %g, want %g (n/k of the global sample)", i, e.Scale(), wantScale)
		}
		e.Close()
	}

	// Exact mode: a vertex arriving later joins stride v%n == i, so across
	// the shards every new source is owned exactly once. Ownership is
	// observable through the stats: only the owner probes the new source.
	n := base.N()
	var owners int64
	for i := 0; i < 3; i++ {
		e, err := New(base.Clone(), Config{Workers: 1, ShardIndex: i, ShardCount: 3})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		before := e.Stats()
		if err := e.Apply(graph.Update{U: 0, V: n}); err != nil {
			t.Fatalf("Apply: %v", err)
		}
		after := e.Stats()
		probed := (after.SourcesSkipped + after.SourcesUpdated) - (before.SourcesSkipped + before.SourcesUpdated)
		strideSize := int64(0)
		for v := i; v < n+1; v += 3 {
			strideSize++
		}
		if probed != strideSize {
			t.Fatalf("shard %d probed %d sources for the growing update, want its stride size %d", i, probed, strideSize)
		}
		owners += probed
		e.Close()
	}
	if owners != int64(n+1) {
		t.Fatalf("strides probed %d sources in total, want every one of %d exactly once", owners, n+1)
	}
}

func TestShardConfigValidation(t *testing.T) {
	g := testGraph(t, 10, 20, 1)
	if _, err := New(g.Clone(), Config{ShardIndex: 3, ShardCount: 3}); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if _, err := New(g.Clone(), Config{ShardIndex: -1, ShardCount: 2}); err == nil {
		t.Fatal("negative shard index accepted")
	}
	if _, err := New(g.Clone(), Config{ShardCount: 2, PartitionScores: true}); err == nil {
		t.Fatal("PartitionScores combined with sharding accepted")
	}
	// A sampled shard whose stride of the sample is empty cannot exist.
	if _, err := New(g.Clone(), Config{ShardIndex: 3, ShardCount: 4, Sources: []int{0, 1, 2}}); err == nil {
		t.Fatal("shard owning no sampled sources accepted")
	}
}

// TestShardSnapshotIdentity pins the restore rules: a sharded snapshot
// carries its stride and refuses to restore into any other one.
func TestShardSnapshotIdentity(t *testing.T) {
	base := testGraph(t, 24, 60, 7)
	ups := mixedUpdates(t, base, 10, 8)
	e, err := New(base.Clone(), Config{Workers: 1, ShardIndex: 1, ShardCount: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	if _, err := e.ApplyAll(ups); err != nil {
		t.Fatalf("ApplyAll: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, e); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	st, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if st.ShardIndex != 1 || st.ShardCount != 3 {
		t.Fatalf("snapshot shard identity = %d/%d, want 1/3", st.ShardIndex, st.ShardCount)
	}

	// Matching identity restores and reproduces the scores bit for bit.
	same, err := RestoreEngine(st, Config{Workers: 1, ShardIndex: 1, ShardCount: 3})
	if err != nil {
		t.Fatalf("RestoreEngine(matching): %v", err)
	}
	sameBits(t, "restored shard", &bc.Result{VBC: same.VBC(), EBC: same.EBC()},
		&bc.Result{VBC: e.VBC(), EBC: e.EBC()})
	same.Close()

	// An unconfigured restore adopts the snapshot's identity.
	adopted, err := RestoreEngine(st, Config{Workers: 1})
	if err != nil {
		t.Fatalf("RestoreEngine(unconfigured): %v", err)
	}
	if adopted.ShardIndex() != 1 || adopted.ShardCount() != 3 {
		t.Fatalf("adopted identity = %d/%d, want 1/3", adopted.ShardIndex(), adopted.ShardCount())
	}
	adopted.Close()

	// Any other stride is refused: the scores cover exactly stride 1 of 3.
	if _, err := RestoreEngine(st, Config{ShardIndex: 2, ShardCount: 3}); err == nil ||
		!strings.Contains(err.Error(), "resharding") {
		t.Fatalf("restoring into the wrong stride: err = %v, want a resharding refusal", err)
	}
	if _, err := RestoreEngine(st, Config{ShardIndex: 1, ShardCount: 4}); err == nil {
		t.Fatal("restoring into a different shard count accepted")
	}

	// A non-sharded snapshot cannot seed a shard.
	full, err := New(base.Clone(), Config{Workers: 1})
	if err != nil {
		t.Fatalf("New(full): %v", err)
	}
	defer full.Close()
	var fbuf bytes.Buffer
	if err := WriteSnapshot(&fbuf, full); err != nil {
		t.Fatalf("WriteSnapshot(full): %v", err)
	}
	fst, err := ReadSnapshot(bytes.NewReader(fbuf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot(full): %v", err)
	}
	if _, err := RestoreEngine(fst, Config{ShardIndex: 0, ShardCount: 2}); err == nil {
		t.Fatal("non-sharded snapshot restored into a shard")
	}
}

// TestShardSampledSnapshotRoundTrip pins the pre-strided sources rule: a
// sampled shard's snapshot stores the stride it owns, and restoring must not
// stride that set a second time.
func TestShardSampledSnapshotRoundTrip(t *testing.T) {
	base := testGraph(t, 30, 80, 17)
	sample := bc.SampleSources(base.N(), 12, 5)
	ups := mixedUpdates(t, base, 8, 18)
	e, err := New(base.Clone(), Config{Workers: 1, ShardIndex: 2, ShardCount: 3, Sources: sample})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer e.Close()
	if _, err := e.ApplyAll(ups); err != nil {
		t.Fatalf("ApplyAll: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, e); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	st, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	r, err := RestoreEngine(st, Config{Workers: 1})
	if err != nil {
		t.Fatalf("RestoreEngine: %v", err)
	}
	defer r.Close()
	want := e.SampledSources()
	got := r.SampledSources()
	if len(got) != len(want) {
		t.Fatalf("restored %d sources, want %d (double-strided?)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored sources[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if math.Float64bits(r.Scale()) != math.Float64bits(e.Scale()) {
		t.Fatalf("restored scale %g, want %g", r.Scale(), e.Scale())
	}
	sameBits(t, "restored sampled shard", &bc.Result{VBC: r.VBC(), EBC: r.EBC()},
		&bc.Result{VBC: e.VBC(), EBC: e.EBC()})
}
