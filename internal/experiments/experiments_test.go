package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"streambc/internal/gen"
)

func quickConfig(t *testing.T) Config {
	t.Helper()
	return Config{Quick: true, Seed: 7, ScratchDir: t.TempDir()}
}

func TestSummarizeAndPercentile(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || math.Abs(s.Mean-3) > 1e-12 {
		t.Fatalf("summary = %+v", s)
	}
	if Summarize(nil) != (Summary{}) {
		t.Fatal("empty summary must be zero")
	}
	sorted := []float64{1, 2, 3, 4}
	if p := Percentile(sorted, 0); p != 1 {
		t.Fatalf("p0 = %g", p)
	}
	if p := Percentile(sorted, 1); p != 4 {
		t.Fatalf("p100 = %g", p)
	}
	if p := Percentile(sorted, 0.5); math.Abs(p-2.5) > 1e-12 {
		t.Fatalf("p50 = %g", p)
	}
	if p := Percentile(nil, 0.5); p != 0 {
		t.Fatalf("empty percentile = %g", p)
	}
}

func TestCDFAndSpeedups(t *testing.T) {
	cdf := CDF([]float64{3, 1, 2, 4}, 0)
	if len(cdf) != 4 || cdf[0].Value != 1 || cdf[3].P != 1 {
		t.Fatalf("cdf = %+v", cdf)
	}
	small := CDF([]float64{3, 1, 2, 4, 5, 6, 7, 8}, 4)
	if len(small) != 4 {
		t.Fatalf("downsampled cdf = %+v", small)
	}
	if CDF(nil, 5) != nil {
		t.Fatal("empty cdf must be nil")
	}
	sp := Speedups(time.Second, []time.Duration{100 * time.Millisecond, time.Second})
	if math.Abs(sp[0]-10) > 1e-9 || math.Abs(sp[1]-1) > 1e-9 {
		t.Fatalf("speedups = %v", sp)
	}
	sp0 := Speedups(time.Second, []time.Duration{0})
	if sp0[0] <= 0 {
		t.Fatal("zero duration must not produce a non-positive speedup")
	}
}

func TestTableRender(t *testing.T) {
	table := Table{Title: "demo", Columns: []string{"a", "bb"}}
	table.AddRow("1", "2")
	var buf bytes.Buffer
	table.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "bb") || !strings.Contains(out, "--") {
		t.Fatalf("render output:\n%s", out)
	}
	if F(0) != "0" || F(123.4) != "123" || F(12.34) != "12.3" || F(0.1234) != "0.123" {
		t.Fatalf("F formatting wrong: %s %s %s %s", F(0), F(123.4), F(12.34), F(0.1234))
	}
	if D(1500*time.Millisecond) != "1.500s" {
		t.Fatalf("D formatting wrong: %s", D(1500*time.Millisecond))
	}
}

func TestVariantUpdaters(t *testing.T) {
	g := gen.Connected(gen.HolmeKim(120, 4, 0.5, 3))
	ups, err := gen.RandomAdditions(g, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{VariantMP, VariantMO, VariantDO} {
		upd, cleanup, err := NewVariantUpdater(g.Clone(), v, t.TempDir(), 0)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		times, err := MeasureUpdates(upd, ups)
		cleanup()
		if err != nil {
			t.Fatalf("%v: MeasureUpdates: %v", v, err)
		}
		if len(times) != len(ups) {
			t.Fatalf("%v: got %d times", v, len(times))
		}
	}
	if VariantMP.String() != "MP" || VariantMO.String() != "MO" || VariantDO.String() != "DO" {
		t.Fatal("variant names wrong")
	}
	if _, _, err := NewVariantUpdater(g.Clone(), Variant(99), "", 0); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestMeasureBrandesPositive(t *testing.T) {
	g := gen.Connected(gen.ErdosRenyi(80, 200, 5))
	if d := MeasureBrandes(g, 2); d <= 0 {
		t.Fatalf("MeasureBrandes = %v", d)
	}
}

func TestProfileStreamAndSimulation(t *testing.T) {
	g := gen.Connected(gen.HolmeKim(100, 4, 0.5, 9))
	ups, err := gen.RandomAdditions(g, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := ProfileStream(g, ups, false, t.TempDir(), 0)
	if err != nil {
		t.Fatalf("ProfileStream: %v", err)
	}
	if len(profiles) != len(ups) {
		t.Fatalf("got %d profiles", len(profiles))
	}
	p := profiles[0]
	if len(p.SourceTimes) != g.N() || p.Total() <= 0 {
		t.Fatalf("profile malformed: %d sources, total %v", len(p.SourceTimes), p.Total())
	}
	// More workers can only reduce (or keep) the simulated wall time; the
	// single-worker wall equals the total.
	if p.SimulatedWall(1) < p.SimulatedWall(4) {
		t.Fatalf("wall(1)=%v < wall(4)=%v", p.SimulatedWall(1), p.SimulatedWall(4))
	}
	if p.SimulatedWall(1) != p.Total() {
		t.Fatalf("wall(1)=%v, total=%v", p.SimulatedWall(1), p.Total())
	}
	if p.SimulatedWall(0) != p.Total() {
		t.Fatal("workers<1 must behave like a single worker")
	}

	// Disk-backed profiling also works.
	diskProfiles, err := ProfileStream(g, ups[:2], true, t.TempDir(), 0)
	if err != nil {
		t.Fatalf("ProfileStream disk: %v", err)
	}
	if len(diskProfiles) != 2 {
		t.Fatalf("disk profiles = %d", len(diskProfiles))
	}
}

func TestRunAllQuickExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers skipped in short mode")
	}
	cfg := quickConfig(t)
	var buf bytes.Buffer
	for _, name := range Names() {
		buf.Reset()
		if err := Run(name, cfg, &buf); err != nil {
			t.Fatalf("Run(%s): %v", name, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("Run(%s) produced no output", name)
		}
	}
	if err := Run("does-not-exist", cfg, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Describe()) != len(Names()) {
		t.Fatal("Describe and Names disagree")
	}
}

func TestRunAllAggregate(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers skipped in short mode")
	}
	cfg := quickConfig(t)
	var buf bytes.Buffer
	if err := Run("all", cfg, &buf); err != nil {
		t.Fatalf("Run(all): %v", err)
	}
	out := buf.String()
	for _, name := range Names() {
		if !strings.Contains(out, "== "+name) {
			t.Fatalf("aggregate output missing section %s", name)
		}
	}
}

func TestRunApproxQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers skipped in short mode")
	}
	res, err := RunApprox(quickConfig(t))
	if err != nil {
		t.Fatalf("RunApprox: %v", err)
	}
	if len(res.Rows) < 3 {
		t.Fatalf("approx ladder has %d rows, want exact + at least 2 sampled", len(res.Rows))
	}
	exact := res.Rows[0]
	if !exact.Exact || exact.K != res.N || exact.Probes != int64(res.N) {
		t.Fatalf("exact row = %+v, want k = n = %d probing every source", exact, res.N)
	}
	fullSample := false
	for _, row := range res.Rows[1:] {
		// The mechanism behind the speedup is deterministic even when the
		// timing is noisy: every update probes exactly k sources.
		if row.Probes != int64(row.K) {
			t.Fatalf("k=%d probes %d sources per update, want %d", row.K, row.Probes, row.K)
		}
		if row.Exact || row.K > res.N {
			t.Fatalf("sampled row with exact=%v k=%d n=%d", row.Exact, row.K, res.N)
		}
		if row.K == res.N {
			// The full-sample ladder entry must reproduce the baseline.
			fullSample = true
			if row.MaxRel != 0 {
				t.Fatalf("full-sample row has max relative error %g, want 0", row.MaxRel)
			}
		}
		if math.IsNaN(row.MaxRel) || math.IsNaN(row.AvgRel) || row.MaxRel < row.AvgRel {
			t.Fatalf("k=%d error stats max=%g avg=%g", row.K, row.MaxRel, row.AvgRel)
		}
		if row.Top10 < 0 || row.Top10 > 1 {
			t.Fatalf("k=%d top10 overlap = %g", row.K, row.Top10)
		}
	}
	if !fullSample {
		t.Fatal("ladder is missing the full-sample (k = n) row")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	for _, want := range []string{"exact", "sampled", "max-rel", "speedup"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("approx render missing %q:\n%s", want, buf.String())
		}
	}
}

func TestRunApproxHeadlineSampleSize(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers skipped in short mode")
	}
	cfg := quickConfig(t)
	cfg.SampleK = 37
	res, err := RunApprox(cfg)
	if err != nil {
		t.Fatalf("RunApprox: %v", err)
	}
	found := false
	for _, row := range res.Rows {
		if row.K == 37 {
			found = true
		}
	}
	if !found {
		t.Fatalf("ladder %v missing the headline k=37", res.Rows)
	}
}

func TestRunShardQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers skipped in short mode")
	}
	res, err := RunShard(quickConfig(t))
	if err != nil {
		t.Fatalf("RunShard: %v", err)
	}
	if len(res.Rows) != 8 { // {exact, sampled} x {1, 2, 3, 4} shards
		t.Fatalf("got %d rows, want 8", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.VBCDiff != 0 || row.EBCDiff != 0 || row.ExtraEBC != 0 {
			t.Fatalf("shards=%d sampled=%v: summed shard scores differ from the single process "+
				"(vbc=%d ebc=%d extra=%d)", row.Shards, row.Sampled, row.VBCDiff, row.EBCDiff, row.ExtraEBC)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "write-path sharding") {
		t.Fatal("Render produced no shard table")
	}
}
