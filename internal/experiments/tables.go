package experiments

import (
	"fmt"
	"io"
	"time"

	"streambc/internal/gen"
	"streambc/internal/graph"
)

// ---------------------------------------------------------------------------
// Table 2: description of the graphs used.
// ---------------------------------------------------------------------------

// Table2Row compares a dataset as reported by the paper with the generated
// stand-in actually used by this reproduction.
type Table2Row struct {
	Name      string
	Kind      string
	Paper     gen.PaperStats
	Generated graph.Stats
}

// Table2Result is the outcome of the Table 2 experiment.
type Table2Result struct {
	Rows []Table2Row
}

var table2Datasets = []string{
	"1k", "10k", "100k", "1000k",
	"wikielections", "slashdot", "facebook", "epinions", "dblp", "amazon",
}

// RunTable2 builds every dataset of Table 2 and measures its structural
// statistics.
func RunTable2(cfg Config) (*Table2Result, error) {
	cfg = cfg.normalized()
	names := table2Datasets
	if cfg.Quick {
		names = []string{"1k", "wikielections", "amazon"}
	}
	res := &Table2Result{}
	for i, name := range names {
		g, preset, err := dataset(name, cfg)
		if err != nil {
			return nil, err
		}
		sample := 400
		if cfg.Quick {
			sample = 100
		}
		st := g.ComputeStats(sample, cfg.Seed+int64(i))
		res.Rows = append(res.Rows, Table2Row{Name: name, Kind: preset.Kind, Paper: preset.Paper, Generated: st})
	}
	return res, nil
}

// Render writes the result as a plain-text table.
func (r *Table2Result) Render(w io.Writer) {
	t := Table{
		Title:   "Table 2: datasets (paper scale vs generated stand-in)",
		Columns: []string{"dataset", "kind", "paper |V|", "paper |E|", "paper AD", "paper CC", "paper ED", "gen |V|", "gen |E|", "gen AD", "gen CC", "gen ED"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Kind,
			fmt.Sprintf("%d", row.Paper.V), fmt.Sprintf("%d", row.Paper.E),
			F(row.Paper.AvgDegree), F(row.Paper.CC), F(row.Paper.ED),
			fmt.Sprintf("%d", row.Generated.N), fmt.Sprintf("%d", row.Generated.M),
			F(row.Generated.AvgDegree), F(row.Generated.Clustering), F(row.Generated.EffectiveDiameter))
	}
	t.Render(w)
}

// ---------------------------------------------------------------------------
// Table 3: speedup of the MO configuration on small graphs, next to the
// speedups reported by related work.
// ---------------------------------------------------------------------------

// Table3Row is one dataset of Table 3.
type Table3Row struct {
	Name     string
	Vertices int
	Edges    int
	Avg      float64
	Max      float64
	// Reported speedups of related work on the original datasets, straight
	// from the paper (we cannot rerun those systems): Kas et al. [21],
	// QUBE [24], Green et al. [17]. Zero means "not reported".
	Kas, Qube, Green float64
}

// Table3Result is the outcome of the Table 3 experiment.
type Table3Result struct {
	Rows []Table3Row
}

var table3Related = map[string][3]float64{ // [21], [24], [17]
	"wikivote":    {3, 0, 0},
	"contact":     {4, 0, 0},
	"fb-like":     {18, 0, 0},
	"ca-grqc":     {68, 2, 40},
	"ca-hepth":    {358, 0, 40},
	"adjnoun":     {20, 0, 0},
	"ca-condmat":  {109, 0, 0},
	"as-22july06": {61, 0, 0},
	"slashdot":    {0, 0, 0},
}

var table3Datasets = []string{
	"wikivote", "contact", "fb-like", "ca-grqc", "ca-hepth", "adjnoun", "ca-condmat", "as-22july06", "slashdot",
}

// RunTable3 measures the average and maximum speedup of the MO configuration
// over Brandes for 100 edge additions on the small graphs of Table 3.
func RunTable3(cfg Config) (*Table3Result, error) {
	cfg = cfg.normalized()
	names := table3Datasets
	if cfg.Quick {
		names = []string{"adjnoun", "ca-grqc"}
	}
	res := &Table3Result{}
	for _, name := range names {
		g, _, err := dataset(name, cfg)
		if err != nil {
			return nil, err
		}
		ups, err := additions(g, cfg)
		if err != nil {
			return nil, fmt.Errorf("table3 %s: %w", name, err)
		}
		baseline := MeasureBrandes(g, cfg.BrandesRuns)
		upd, cleanup, err := NewVariantUpdater(g.Clone(), VariantMO, cfg.ScratchDir, cfg.SegmentRecords)
		if err != nil {
			return nil, err
		}
		times, err := MeasureUpdates(upd, ups)
		cleanup()
		if err != nil {
			return nil, fmt.Errorf("table3 %s: %w", name, err)
		}
		sp := Summarize(Speedups(baseline, times))
		related := table3Related[name]
		res.Rows = append(res.Rows, Table3Row{
			Name: name, Vertices: g.N(), Edges: g.M(),
			Avg: sp.Mean, Max: sp.Max,
			Kas: related[0], Qube: related[1], Green: related[2],
		})
	}
	return res, nil
}

// Render writes the result as a plain-text table.
func (r *Table3Result) Render(w io.Writer) {
	t := Table{
		Title:   "Table 3: speedup over Brandes on small graphs (MO, edge additions)",
		Columns: []string{"dataset", "|V|", "|E|", "MO avg", "MO max", "Kas'13 [21]", "QUBE [24]", "Green'12 [17]"},
	}
	fmtRelated := func(x float64) string {
		if x == 0 {
			return "-"
		}
		return F(x)
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, fmt.Sprintf("%d", row.Vertices), fmt.Sprintf("%d", row.Edges),
			F(row.Avg), F(row.Max), fmtRelated(row.Kas), fmtRelated(row.Qube), fmtRelated(row.Green))
	}
	t.Render(w)
}

// ---------------------------------------------------------------------------
// Table 4: summary of key speedup results (min/median/max for additions and
// removals, DO configuration).
// ---------------------------------------------------------------------------

// Table4Row is one dataset of Table 4.
type Table4Row struct {
	Name     string
	Addition Summary
	Removal  Summary
	// PaperAddMed / PaperRemMed are the median speedups reported by the paper
	// for context (addition / removal).
	PaperAddMed float64
	PaperRemMed float64
}

// Table4Result is the outcome of the Table 4 experiment.
type Table4Result struct {
	Rows []Table4Row
}

var table4Paper = map[string][2]float64{
	"1k": {12, 10}, "10k": {34, 35}, "100k": {49, 45}, "1000k": {10, 12},
	"wikielections": {47, 45}, "slashdot": {25, 24}, "facebook": {66, 102},
	"epinions": {56, 45}, "dblp": {8, 8}, "amazon": {4, 3},
}

// RunTable4 measures min/median/max speedups of the DO configuration over
// Brandes for edge additions and removals on every dataset of Table 4.
func RunTable4(cfg Config) (*Table4Result, error) {
	cfg = cfg.normalized()
	names := table2Datasets
	if cfg.Quick {
		names = []string{"1k", "wikielections"}
	}
	res := &Table4Result{}
	for _, name := range names {
		g, _, err := dataset(name, cfg)
		if err != nil {
			return nil, err
		}
		baseline := MeasureBrandes(g, cfg.BrandesRuns)

		adds, err := additions(g, cfg)
		if err != nil {
			return nil, fmt.Errorf("table4 %s: %w", name, err)
		}
		addTimes, err := measureVariant(g, VariantDO, adds, cfg)
		if err != nil {
			return nil, fmt.Errorf("table4 %s additions: %w", name, err)
		}

		rems, err := removals(g, cfg)
		if err != nil {
			return nil, fmt.Errorf("table4 %s: %w", name, err)
		}
		remTimes, err := measureVariant(g, VariantDO, rems, cfg)
		if err != nil {
			return nil, fmt.Errorf("table4 %s removals: %w", name, err)
		}

		paper := table4Paper[name]
		res.Rows = append(res.Rows, Table4Row{
			Name:        name,
			Addition:    Summarize(Speedups(baseline, addTimes)),
			Removal:     Summarize(Speedups(baseline, remTimes)),
			PaperAddMed: paper[0],
			PaperRemMed: paper[1],
		})
	}
	return res, nil
}

func measureVariant(g *graph.Graph, v Variant, ups []graph.Update, cfg Config) ([]time.Duration, error) {
	upd, cleanup, err := NewVariantUpdater(g.Clone(), v, cfg.ScratchDir, cfg.SegmentRecords)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	return MeasureUpdates(upd, ups)
}

// Render writes the result as a plain-text table.
func (r *Table4Result) Render(w io.Writer) {
	t := Table{
		Title: "Table 4: key speedups over Brandes (DO configuration)",
		Columns: []string{"dataset",
			"add min", "add med", "add max",
			"rem min", "rem med", "rem max",
			"paper add med", "paper rem med"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			F(row.Addition.Min), F(row.Addition.Median), F(row.Addition.Max),
			F(row.Removal.Min), F(row.Removal.Median), F(row.Removal.Max),
			F(row.PaperAddMed), F(row.PaperRemMed))
	}
	t.Render(w)
}

// ---------------------------------------------------------------------------
// Table 5: online updates missed and average delay vs number of workers.
// ---------------------------------------------------------------------------

// Table5Row reports the online behaviour of one dataset at one worker count.
type Table5Row struct {
	Name           string
	Workers        int
	MissedFraction float64
	AvgDelay       float64 // seconds
	// PaperMissedPct is the paper's reported % of missed edges at the nearest
	// configuration, for context (0 when not reported).
	PaperMissedPct float64
}

// Table5Result is the outcome of the Table 5 experiment.
type Table5Result struct {
	Rows []Table5Row
}

var table5Paper = map[string]map[int]float64{
	"slashdot": {1: 44.565, 8: 1.087},
	"facebook": {1: 69.697, 8: 19.192, 16: 3.030, 32: 1.010},
}

// RunTable5 replays a timestamped addition stream for the slashdot and
// facebook stand-ins against a simulated shared-nothing cluster of increasing
// size, reporting the fraction of updates whose new scores were not ready
// before the next arrival and their average delay (cf. Table 5; the worker
// counts are scaled down together with the graphs).
func RunTable5(cfg Config) (*Table5Result, error) {
	cfg = cfg.normalized()
	names := []string{"slashdot", "facebook"}
	workerCounts := []int{1, 2, 4, 8, 16, 32}
	if cfg.Quick {
		names = []string{"slashdot"}
		workerCounts = []int{1, 4}
	}
	res := &Table5Result{}
	for _, name := range names {
		g, _, err := dataset(name, cfg)
		if err != nil {
			return nil, err
		}
		ups, err := additions(g, cfg)
		if err != nil {
			return nil, err
		}
		profiles, err := ProfileStream(g, ups, false, cfg.ScratchDir, cfg.SegmentRecords)
		if err != nil {
			return nil, fmt.Errorf("table5 %s: %w", name, err)
		}
		// Calibrate the synthetic arrival process so that the single-worker
		// processing rate cannot keep up (as with the real traces in the
		// paper) while a moderately sized cluster can.
		var totals []float64
		for _, p := range profiles {
			totals = append(totals, p.Total().Seconds())
		}
		meanGap := Summarize(totals).Median / 3
		stream := gen.Timestamp(ups, gen.ArrivalModel{MeanGap: meanGap, Burstiness: 0.2}, cfg.Seed+7)

		for _, workers := range workerCounts {
			missed, avgDelay := simulateOnline(profiles, stream, workers)
			res.Rows = append(res.Rows, Table5Row{
				Name:           name,
				Workers:        workers,
				MissedFraction: missed,
				AvgDelay:       avgDelay,
				PaperMissedPct: table5Paper[name][workers],
			})
		}
	}
	return res, nil
}

// simulateOnline replays the stream against simulated wall-clock times for
// the given cluster size and returns the missed fraction and average delay.
func simulateOnline(profiles []UpdateProfile, stream []graph.Update, workers int) (missedFraction, avgDelay float64) {
	clock := 0.0
	missed := 0
	var delaySum float64
	for i := range profiles {
		arrival := stream[i].Time
		begin := arrival
		if clock > begin {
			begin = clock
		}
		completed := begin + profiles[i].SimulatedWall(workers).Seconds()
		clock = completed
		if i+1 < len(stream) && completed > stream[i+1].Time {
			missed++
			delaySum += completed - stream[i+1].Time
		}
	}
	if len(profiles) > 0 {
		missedFraction = float64(missed) / float64(len(profiles))
	}
	if missed > 0 {
		avgDelay = delaySum / float64(missed)
	}
	return missedFraction, avgDelay
}

// Render writes the result as a plain-text table.
func (r *Table5Result) Render(w io.Writer) {
	t := Table{
		Title:   "Table 5: online updates missed and average delay vs cluster size (simulated shared-nothing cluster)",
		Columns: []string{"dataset", "workers", "% missed", "avg delay (s)", "paper % missed"},
	}
	for _, row := range r.Rows {
		paper := "-"
		if row.PaperMissedPct > 0 {
			paper = F(row.PaperMissedPct)
		}
		t.AddRow(row.Name, fmt.Sprintf("%d", row.Workers), F(row.MissedFraction*100), fmt.Sprintf("%.3f", row.AvgDelay), paper)
	}
	t.Render(w)
}
