package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"streambc/internal/bc"
	"streambc/internal/bdstore"
	"streambc/internal/gen"
	"streambc/internal/graph"
	"streambc/internal/incremental"
)

// This file measures the sampled-source approximate mode: the same mixed
// addition/removal stream is replayed once exactly (every vertex a source)
// and once per sample size k of a ladder, and each sampled replay is compared
// against the exact one on both axes of the trade-off — update throughput
// (per-update work drops from O(n·n) to O(k·n)) and VBC estimation error
// (the n/k scaling keeps the estimates unbiased; their variance shrinks as k
// grows).

// ApproxRow is one measured replay of the ladder.
type ApproxRow struct {
	Exact    bool // true only for the exact (non-sampled) baseline
	K        int  // sources maintained
	N        int
	Init     time.Duration // offline initialisation (Brandes over the sample)
	Elapsed  time.Duration // replay wall-clock
	Updates  int
	MaxRel   float64 // max floored relative VBC error vs exact (0 for exact)
	AvgRel   float64 // mean floored relative VBC error vs exact
	Top10    float64 // fraction of the exact top-10 vertices recovered
	Probes   int64   // sources probed per update (skipped + updated) / updates
	Speedup  float64 // exact replay time / this replay time
	InitGain float64 // exact init time / this init time
}

// Throughput returns updates per second of the replay.
func (r ApproxRow) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Updates) / r.Elapsed.Seconds()
}

// ApproxResult holds the exact baseline and the sampled ladder.
type ApproxResult struct {
	N        int
	Rows     []ApproxRow // first row is the exact baseline
	ErrFloor float64     // denominator floor of the relative errors
}

// errorFloorFraction floors the denominator of the per-vertex relative error
// at this fraction of the largest exact score, so near-zero exact scores do
// not blow the ratio up.
const errorFloorFraction = 0.01

// RunApprox replays the same stream exactly and at a ladder of sample sizes
// (n, n/2, n/4 — or cfg.SampleK — and n/8), reporting speedup and VBC error.
func RunApprox(cfg Config) (*ApproxResult, error) {
	cfg = cfg.normalized()
	n := 400
	if cfg.Quick {
		n = 120
	}
	g := gen.Connected(gen.HolmeKim(n, 5, 0.6, cfg.Seed))
	n = g.N()
	stream, err := mixedStream(g, cfg)
	if err != nil {
		return nil, err
	}

	// Exact baseline: every vertex is a source.
	exact, err := runApproxOne(g, stream, nil, n)
	if err != nil {
		return nil, err
	}
	exact.row.Exact = true
	res := &ApproxResult{N: n, Rows: []ApproxRow{exact.row}}

	headline := cfg.SampleK
	if headline < 1 {
		headline = n / 4
	}
	if headline > n {
		headline = n
	}
	ladder := []int{n, n / 2, headline, n / 8}
	sort.Sort(sort.Reverse(sort.IntSlice(ladder)))
	seen := map[int]bool{}
	maxExact := 0.0
	for _, x := range exact.vbc {
		maxExact = math.Max(maxExact, x)
	}
	res.ErrFloor = errorFloorFraction * maxExact
	// k == n is a legitimate ladder entry: a full sample at scale 1, whose
	// measured error of ~0 pins the sampled machinery against the baseline.
	for _, k := range ladder {
		if k < 1 || k > n || seen[k] {
			continue
		}
		seen[k] = true
		sources := bc.SampleSources(n, k, cfg.Seed+7)
		run, err := runApproxOne(g, stream, sources, k)
		if err != nil {
			return nil, err
		}
		row := run.row
		row.MaxRel, row.AvgRel = relativeErrors(run.vbc, exact.vbc, res.ErrFloor)
		row.Top10 = topOverlap(run.res, exact.res, 10)
		if run.row.Elapsed > 0 {
			row.Speedup = exact.row.Elapsed.Seconds() / run.row.Elapsed.Seconds()
		}
		if run.row.Init > 0 {
			row.InitGain = exact.row.Init.Seconds() / run.row.Init.Seconds()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// approxRun bundles one measured replay with its final scores.
type approxRun struct {
	row ApproxRow
	res *bc.Result
	vbc []float64
}

// runApproxOne initialises an updater over the given source sample (nil =
// exact) on a private clone of g and replays the stream one update at a time.
func runApproxOne(g *graph.Graph, stream []graph.Update, sources []int, k int) (*approxRun, error) {
	work := g.Clone()
	n := work.N()
	var u *incremental.Updater
	var err error
	initStart := time.Now()
	if sources == nil {
		var store bdstore.Store
		if store, err = bdstore.Open("", bdstore.Options{NumVertices: n}); err == nil {
			u, err = incremental.NewUpdater(work, store)
		}
	} else {
		u, err = incremental.NewSampledUpdater(work, bdstore.NewMemStoreForSources(n, sources), 0)
	}
	initTime := time.Since(initStart)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for i, upd := range stream {
		if err := u.Apply(upd); err != nil {
			return nil, fmt.Errorf("experiments: approx update %d (%v): %w", i, upd, err)
		}
	}
	elapsed := time.Since(start)
	st := u.Stats()
	probes := int64(0)
	if len(stream) > 0 {
		probes = (st.SourcesSkipped + st.SourcesUpdated) / int64(len(stream))
	}
	return &approxRun{
		row: ApproxRow{
			K:       k,
			N:       n,
			Init:    initTime,
			Elapsed: elapsed,
			Updates: len(stream),
			Probes:  probes,
		},
		res: u.Result(),
		vbc: append([]float64(nil), u.VBC()...),
	}, nil
}

// relativeErrors returns the max and mean per-vertex relative VBC error of
// approx against exact, with the denominator floored at floor.
func relativeErrors(approx, exact []float64, floor float64) (maxRel, avgRel float64) {
	if len(exact) == 0 {
		return 0, 0
	}
	sum := 0.0
	for v := range exact {
		den := math.Max(exact[v], floor)
		if den <= 0 {
			continue
		}
		rel := math.Abs(approx[v]-exact[v]) / den
		maxRel = math.Max(maxRel, rel)
		sum += rel
	}
	return maxRel, sum / float64(len(exact))
}

// topOverlap returns the fraction of the exact top-k vertices that the
// approximate top-k recovers.
func topOverlap(approx, exact *bc.Result, k int) float64 {
	et := bc.TopVertices(exact, k)
	if len(et) == 0 {
		return 1
	}
	in := make(map[int]bool, len(et))
	for _, vs := range et {
		in[vs.Vertex] = true
	}
	hits := 0
	for _, vs := range bc.TopVertices(approx, k) {
		if in[vs.Vertex] {
			hits++
		}
	}
	return float64(hits) / float64(len(et))
}

// Render implements Renderer.
func (r *ApproxResult) Render(w io.Writer) {
	fmt.Fprintf(w, "sampled-source approximate mode (n = %d vertices)\n\n", r.N)
	fmt.Fprintf(w, "%-10s %-8s %-10s %-10s %-12s %-9s %-10s %-10s %-10s %s\n",
		"mode", "k", "init", "replay", "updates/s", "speedup", "max-rel", "avg-rel", "top10", "probes/upd")
	for _, row := range r.Rows {
		mode := "sampled"
		speedup, maxRel, avgRel, top10 := "-", "-", "-", "-"
		if row.Exact {
			mode = "exact"
		} else {
			speedup = fmt.Sprintf("%.2fx", row.Speedup)
			maxRel = fmt.Sprintf("%.4f", row.MaxRel)
			avgRel = fmt.Sprintf("%.4f", row.AvgRel)
			top10 = fmt.Sprintf("%.0f%%", 100*row.Top10)
		}
		fmt.Fprintf(w, "%-10s %-8d %-10s %-10s %-12.1f %-9s %-10s %-10s %-10s %d\n",
			mode, row.K, row.Init.Round(time.Microsecond), row.Elapsed.Round(time.Microsecond),
			row.Throughput(), speedup, maxRel, avgRel, top10, row.Probes)
	}
	fmt.Fprintf(w, "\nrelative VBC errors vs the exact replay, denominator floored at %.4g\n", r.ErrFloor)
	fmt.Fprintf(w, "(%.0f%% of the largest exact score); top10 = exact top-10 vertices recovered.\n", 100*errorFloorFraction)
	fmt.Fprintln(w)
}
