package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Renderer is implemented by every experiment result.
type Renderer interface {
	Render(w io.Writer)
}

// runner couples a name with its driver.
type runner struct {
	name        string
	description string
	run         func(Config) (Renderer, error)
}

var registry = []runner{
	{"table2", "dataset statistics (paper vs generated stand-ins)", func(c Config) (Renderer, error) { return RunTable2(c) }},
	{"table3", "speedup on small graphs, MO vs related work", func(c Config) (Renderer, error) { return RunTable3(c) }},
	{"table4", "min/median/max speedups, additions and removals (DO)", func(c Config) (Renderer, error) { return RunTable4(c) }},
	{"table5", "online updates missed vs cluster size", func(c Config) (Renderer, error) { return RunTable5(c) }},
	{"fig5", "speedup CDFs of MP/MO/DO on a single machine", func(c Config) (Renderer, error) { return RunFigure5(c) }},
	{"fig6", "speedup CDFs of DO, additions/removals, synthetic/real", func(c Config) (Renderer, error) { return RunFigure6(c) }},
	{"fig7", "strong and weak scaling on the simulated cluster", func(c Config) (Renderer, error) { return RunFigure7(c) }},
	{"fig8", "inter-arrival vs update time for arriving edges", func(c Config) (Renderer, error) { return RunFigure8(c) }},
	{"fig9", "Girvan-Newman with incremental edge betweenness", func(c Config) (Renderer, error) { return RunFigure9(c) }},
	{"batch", "replay throughput, per-update Apply vs ApplyBatch (MO and DO)", func(c Config) (Renderer, error) { return RunBatch(c) }},
	{"approx", "sampled-source approximate mode: speedup vs VBC error at k = n, n/2, n/4, n/8", func(c Config) (Renderer, error) { return RunApprox(c) }},
	{"shard", "write-path sharding: sum of N shard partials vs one process, bit for bit", func(c Config) (Renderer, error) { return RunShard(c) }},
}

// Names returns the available experiment identifiers in run order.
func Names() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.name
	}
	return out
}

// Describe returns a map from experiment name to a one-line description.
func Describe() map[string]string {
	out := make(map[string]string, len(registry))
	for _, r := range registry {
		out[r.name] = r.description
	}
	return out
}

// Run executes the named experiment (or every experiment for "all") and
// renders the results to w.
func Run(name string, cfg Config, w io.Writer) error {
	if name == "all" {
		for _, r := range registry {
			fmt.Fprintf(w, "== %s: %s ==\n\n", r.name, r.description)
			res, err := r.run(cfg)
			if err != nil {
				return fmt.Errorf("experiments: %s: %w", r.name, err)
			}
			res.Render(w)
		}
		return nil
	}
	for _, r := range registry {
		if r.name == name {
			res, err := r.run(cfg)
			if err != nil {
				return fmt.Errorf("experiments: %s: %w", r.name, err)
			}
			res.Render(w)
			return nil
		}
	}
	valid := Names()
	sort.Strings(valid)
	return fmt.Errorf("experiments: unknown experiment %q (available: %v, or \"all\")", name, valid)
}
