// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section 6), the measurement machinery they share, and
// plain-text renderers used by cmd/bcbench and the repository benchmarks.
//
// Absolute numbers differ from the paper (the graphs are scaled down and the
// hardware is a small container rather than a Hadoop cluster — see DESIGN.md
// for the substitutions), but each driver reproduces the *shape* of the
// corresponding result: which configuration wins, by roughly what factor, and
// how the metric moves along the swept parameter.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary holds order statistics of a sample.
type Summary struct {
	Min, Median, Mean, Max float64
}

// Summarize computes order statistics of values (which it does not modify).
func Summarize(values []float64) Summary {
	if len(values) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return Summary{
		Min:    sorted[0],
		Median: Percentile(sorted, 0.5),
		Mean:   sum / float64(len(sorted)),
		Max:    sorted[len(sorted)-1],
	}
}

// Percentile returns the p-quantile (0 <= p <= 1) of an ascending-sorted
// sample using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDFPoint is one point of an empirical cumulative distribution function.
type CDFPoint struct {
	Value float64 // x: the sample value
	P     float64 // y: fraction of samples <= Value
}

// CDF computes the empirical CDF of values, downsampled to at most points
// entries (all entries when points <= 0).
func CDF(values []float64, points int) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	n := len(sorted)
	if points <= 0 || points > n {
		points = n
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := (i + 1) * n / points
		if idx > n {
			idx = n
		}
		out = append(out, CDFPoint{Value: sorted[idx-1], P: float64(idx) / float64(n)})
	}
	return out
}

// Speedups converts a per-update duration series into speedups over a
// baseline duration.
func Speedups(baseline time.Duration, updates []time.Duration) []float64 {
	out := make([]float64, 0, len(updates))
	for _, d := range updates {
		if d <= 0 {
			d = time.Nanosecond
		}
		out = append(out, float64(baseline)/float64(d))
	}
	return out
}

// Table is a minimal fixed-width text table used by every experiment
// renderer.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of already formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// F formats a float with sensible precision for the experiment tables.
func F(x float64) string {
	switch {
	case x == 0:
		return "0"
	case math.Abs(x) >= 100:
		return fmt.Sprintf("%.0f", x)
	case math.Abs(x) >= 1:
		return fmt.Sprintf("%.1f", x)
	default:
		return fmt.Sprintf("%.3f", x)
	}
}

// D formats a duration in seconds with millisecond precision.
func D(d time.Duration) string { return fmt.Sprintf("%.3fs", d.Seconds()) }
