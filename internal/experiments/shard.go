package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"streambc/internal/bc"
	"streambc/internal/engine"
	"streambc/internal/gen"
	"streambc/internal/graph"
)

// This file demonstrates the exactness of write-path sharding: the same mixed
// addition/removal stream is replayed once per shard count N on N independent
// shard engines (each owning source stride i of N), the N partial results are
// summed key by key, and the sum is compared bit for bit against a
// single-process N-worker engine in partition-scores mode — the reference
// whose fold groups the per-source additions exactly like the shard sum does.
// The paper's decomposition of betweenness as a sum over sources makes the
// split exact — not approximate — and the stride construction makes it
// bit-identical, which is the invariant bcrouter relies on.

// ShardRow is one sharded replay compared against the single-process one.
type ShardRow struct {
	Shards   int           // shard engines run (1 = the single-process baseline)
	Sampled  bool          // sampled-source approximate mode
	Elapsed  time.Duration // slowest shard's replay wall-clock
	Updates  int
	VBCDiff  int     // vertices whose summed VBC bits differ from the baseline
	EBCDiff  int     // edges whose summed EBC bits differ from the baseline
	ExtraEBC int     // edge keys present in exactly one of the two results
	Speedup  float64 // baseline elapsed / slowest shard elapsed
}

// ShardResult holds the baseline and the sharded replays.
type ShardResult struct {
	N, M    int
	SampleK int
	Rows    []ShardRow
}

// RunShard replays one stream through 1 process and through N ∈ {2, 3, 4}
// shard engines, exact and sampled, and counts bitwise score differences
// between the summed shard partials and a single-process N-worker
// partition-scores engine (all-zero counts are the expected outcome).
func RunShard(cfg Config) (*ShardResult, error) {
	cfg = cfg.normalized()
	n := 400
	if cfg.Quick {
		n = 120
	}
	g := gen.Connected(gen.HolmeKim(n, 5, 0.6, cfg.Seed))
	n = g.N()
	stream, err := mixedStream(g, cfg)
	if err != nil {
		return nil, err
	}
	sampleK := cfg.SampleK
	if sampleK < 1 {
		sampleK = n / 4
	}
	if sampleK > n {
		sampleK = n
	}
	res := &ShardResult{N: n, M: g.M(), SampleK: sampleK}
	for _, sampled := range []bool{false, true} {
		var sources []int
		if sampled {
			sources = bc.SampleSources(n, sampleK, cfg.Seed+7)
		}
		_, baseElapsed, err := runShardOne(g, stream, engine.Config{Workers: 1, Sources: sources})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ShardRow{
			Shards: 1, Sampled: sampled, Elapsed: baseElapsed, Updates: len(stream),
		})
		for _, shards := range []int{2, 3, 4} {
			// The bitwise reference: one process, N workers, scores kept as
			// per-worker partials and folded in worker order on read — the
			// same grouping of additions the shard sum below produces.
			ref, _, err := runShardOne(g, stream, engine.Config{
				Workers: shards, Sources: sources, PartitionScores: true,
			})
			if err != nil {
				return nil, err
			}
			merged := bc.NewResult(0)
			slowest := time.Duration(0)
			for i := 0; i < shards; i++ {
				part, elapsed, err := runShardOne(g, stream, engine.Config{
					Workers: 1, Sources: sources, ShardIndex: i, ShardCount: shards,
				})
				if err != nil {
					return nil, err
				}
				if elapsed > slowest {
					slowest = elapsed
				}
				sumInto(merged, part)
			}
			row := ShardRow{Shards: shards, Sampled: sampled, Elapsed: slowest, Updates: len(stream)}
			row.VBCDiff, row.EBCDiff, row.ExtraEBC = bitDiff(merged, ref)
			if slowest > 0 {
				row.Speedup = baseElapsed.Seconds() / slowest.Seconds()
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// runShardOne replays the stream through one engine built from cfg on a
// private clone of g.
func runShardOne(g *graph.Graph, stream []graph.Update, cfg engine.Config) (*bc.Result, time.Duration, error) {
	eng, err := engine.New(g.Clone(), cfg)
	if err != nil {
		return nil, 0, err
	}
	defer eng.Close()
	start := time.Now()
	for i, upd := range stream {
		if err := eng.Apply(upd); err != nil {
			return nil, 0, fmt.Errorf("experiments: shard %d/%d update %d (%v): %w",
				cfg.ShardIndex, cfg.ShardCount, i, upd, err)
		}
	}
	elapsed := time.Since(start)
	r := eng.Result()
	out := bc.NewResult(len(r.VBC))
	copy(out.VBC, r.VBC)
	for e, x := range r.EBC {
		out.EBC[e] = x
	}
	return out, elapsed, nil
}

// sumInto adds part's scores into acc, growing acc's VBC as needed.
func sumInto(acc, part *bc.Result) {
	for len(acc.VBC) < len(part.VBC) {
		acc.VBC = append(acc.VBC, 0)
	}
	for v, x := range part.VBC {
		acc.VBC[v] += x
	}
	for e, x := range part.EBC {
		acc.EBC[e] += x
	}
}

// bitDiff counts the keys where a and b hold different float64 bit patterns,
// plus the edge keys present in only one of them.
func bitDiff(a, b *bc.Result) (vbc, ebc, extra int) {
	if len(a.VBC) != len(b.VBC) {
		extra += abs(len(a.VBC) - len(b.VBC))
	}
	for v := 0; v < min(len(a.VBC), len(b.VBC)); v++ {
		if math.Float64bits(a.VBC[v]) != math.Float64bits(b.VBC[v]) {
			vbc++
		}
	}
	for e, x := range a.EBC {
		y, ok := b.EBC[e]
		if !ok {
			extra++
			continue
		}
		if math.Float64bits(x) != math.Float64bits(y) {
			ebc++
		}
	}
	for e := range b.EBC {
		if _, ok := a.EBC[e]; !ok {
			extra++
		}
	}
	return vbc, ebc, extra
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Render implements Renderer.
func (r *ShardResult) Render(w io.Writer) {
	fmt.Fprintf(w, "write-path sharding exactness (n = %d vertices, m = %d edges, sample k = %d)\n\n",
		r.N, r.M, r.SampleK)
	fmt.Fprintf(w, "%-9s %-9s %-10s %-12s %-9s %-9s %-9s %s\n",
		"mode", "shards", "replay", "updates/s", "speedup", "vbc≠", "ebc≠", "extra-edges")
	for _, row := range r.Rows {
		mode := "exact"
		if row.Sampled {
			mode = "sampled"
		}
		speedup, diffs := "-", "-"
		if row.Shards > 1 {
			speedup = fmt.Sprintf("%.2fx", row.Speedup)
			diffs = ""
		}
		tput := 0.0
		if row.Elapsed > 0 {
			tput = float64(row.Updates) / row.Elapsed.Seconds()
		}
		if diffs == "-" {
			fmt.Fprintf(w, "%-9s %-9d %-10s %-12.1f %-9s %-9s %-9s %s\n",
				mode, row.Shards, row.Elapsed.Round(time.Microsecond), tput, speedup, "-", "-", "-")
			continue
		}
		fmt.Fprintf(w, "%-9s %-9d %-10s %-12.1f %-9s %-9d %-9d %d\n",
			mode, row.Shards, row.Elapsed.Round(time.Microsecond), tput, speedup,
			row.VBCDiff, row.EBCDiff, row.ExtraEBC)
	}
	fmt.Fprintf(w, "\nvbc≠/ebc≠/extra-edges count bitwise differences between the sum of the N shard\n")
	fmt.Fprintf(w, "partials and the single-process scores — every count must be zero; replay is the\n")
	fmt.Fprintf(w, "slowest shard's wall-clock (the shards of a cluster run concurrently).\n")
	fmt.Fprintln(w)
}
