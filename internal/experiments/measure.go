package experiments

import (
	"fmt"
	"os"
	"time"

	"streambc/internal/bc"
	"streambc/internal/bdstore"
	"streambc/internal/graph"
	"streambc/internal/incremental"
)

// Variant identifies the three framework configurations compared in
// Section 6.1: in memory with predecessor lists (MP), in memory without (MO),
// and on disk without (DO).
type Variant int

const (
	VariantMP Variant = iota
	VariantMO
	VariantDO
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantMP:
		return "MP"
	case VariantMO:
		return "MO"
	case VariantDO:
		return "DO"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Applier is the common surface of all updater flavours.
type Applier interface {
	Apply(graph.Update) error
}

// NewVariantUpdater builds an updater of the requested variant over g (which
// it takes ownership of). The returned cleanup function releases any disk
// resources and must always be called. segmentRecords sizes the segment
// files of the out-of-core variant (0 = bdstore.DefaultSegmentRecords).
func NewVariantUpdater(g *graph.Graph, v Variant, scratchDir string, segmentRecords int) (Applier, func(), error) {
	switch v {
	case VariantMO:
		store, err := bdstore.Open("", bdstore.Options{NumVertices: g.N()})
		if err != nil {
			return nil, func() {}, err
		}
		u, err := incremental.NewUpdater(g, store)
		return u, func() {}, err
	case VariantMP:
		store, err := bdstore.Open("", bdstore.Options{NumVertices: g.N()})
		if err != nil {
			return nil, func() {}, err
		}
		u, err := incremental.NewPredUpdater(g, store)
		return u, func() {}, err
	case VariantDO:
		if scratchDir == "" {
			scratchDir = os.TempDir()
		}
		dir, err := os.MkdirTemp(scratchDir, "streambc-do-")
		if err != nil {
			return nil, func() {}, err
		}
		store, err := bdstore.Open(dir, bdstore.Options{
			NumVertices:    g.N(),
			Mode:           bdstore.ModeRecreate,
			SegmentRecords: segmentRecords,
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, func() {}, err
		}
		u, err := incremental.NewUpdater(g, store)
		cleanup := func() {
			store.Close()
			os.RemoveAll(dir)
		}
		if err != nil {
			cleanup()
			return nil, func() {}, err
		}
		return u, cleanup, nil
	default:
		return nil, func() {}, fmt.Errorf("experiments: unknown variant %v", v)
	}
}

// MeasureBrandes returns the median wall-clock time of `runs` executions of
// the from-scratch Brandes algorithm on g. This is the denominator of every
// speedup reported by the paper.
func MeasureBrandes(g *graph.Graph, runs int) time.Duration {
	if runs < 1 {
		runs = 1
	}
	times := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		start := time.Now()
		bc.Compute(g)
		times = append(times, time.Since(start).Seconds())
	}
	return time.Duration(Summarize(times).Median * float64(time.Second))
}

// MeasureUpdates applies the stream one update at a time and returns the
// wall-clock duration of each Apply call.
func MeasureUpdates(a Applier, updates []graph.Update) ([]time.Duration, error) {
	out := make([]time.Duration, 0, len(updates))
	for i, upd := range updates {
		start := time.Now()
		if err := a.Apply(upd); err != nil {
			return nil, fmt.Errorf("experiments: update %d (%v): %w", i, upd, err)
		}
		out = append(out, time.Since(start))
	}
	return out, nil
}

// UpdateProfile records how one update's work is distributed over the
// sources: the processing time of every source (including the cheap skip
// probe for unaffected ones) plus the time needed to merge the partial scores
// into the global result. It is the raw material for simulating the
// shared-nothing cluster of Section 5.2 at any number of workers.
type UpdateProfile struct {
	SourceTimes []time.Duration
	Merge       time.Duration
}

// Total returns the single-worker processing time of the update.
func (p UpdateProfile) Total() time.Duration {
	sum := p.Merge
	for _, d := range p.SourceTimes {
		sum += d
	}
	return sum
}

// SimulatedWall returns the simulated wall-clock time of the update when the
// sources are split into `workers` contiguous partitions processed in
// parallel on shared-nothing machines: the slowest partition plus the merge.
func (p UpdateProfile) SimulatedWall(workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	n := len(p.SourceTimes)
	if workers > n && n > 0 {
		workers = n
	}
	var slowest time.Duration
	for w := 0; w < workers; w++ {
		lo, hi := bc.SourceRange(n, workers, w)
		var sum time.Duration
		for s := lo; s < hi; s++ {
			sum += p.SourceTimes[s]
		}
		if sum > slowest {
			slowest = sum
		}
	}
	return slowest + p.Merge
}

// ProfileStream runs the update stream on a single machine, timing every
// source of every update separately. useDisk selects the out-of-core store.
// The profiles can then be replayed at any simulated cluster size with
// SimulatedWall.
func ProfileStream(g *graph.Graph, updates []graph.Update, useDisk bool, scratchDir string, segmentRecords int) ([]UpdateProfile, error) {
	work := g.Clone()
	var store incremental.Store
	var cleanup func()
	if useDisk {
		if scratchDir == "" {
			scratchDir = os.TempDir()
		}
		dir, err := os.MkdirTemp(scratchDir, "streambc-profile-")
		if err != nil {
			return nil, err
		}
		ds, err := bdstore.Open(dir, bdstore.Options{
			NumVertices:    work.N(),
			Mode:           bdstore.ModeRecreate,
			SegmentRecords: segmentRecords,
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		store = ds
		cleanup = func() { ds.Close(); os.RemoveAll(dir) }
	} else {
		ms, err := bdstore.Open("", bdstore.Options{NumVertices: work.N()})
		if err != nil {
			return nil, err
		}
		store = ms
		cleanup = func() {}
	}
	defer cleanup()

	// Offline step: Brandes per source.
	res := bc.NewResult(work.N())
	state := bc.NewSourceState(work.N())
	var queue []int
	for s := 0; s < work.N(); s++ {
		bc.SingleSource(work, s, state, &queue)
		bc.AccumulateSource(work, s, state, res)
		if err := store.Save(s, state); err != nil {
			return nil, err
		}
	}
	// Settle the offline records so the per-source timings below measure the
	// steady-state read path, not a first-flush of the initialisation writes.
	if err := store.Flush(); err != nil {
		return nil, err
	}

	ws := incremental.NewWorkspace(work.N())
	rec := bc.NewSourceState(work.N())
	var distBuf []int32
	profiles := make([]UpdateProfile, 0, len(updates))
	directed := work.Directed()

	for i, upd := range updates {
		if !upd.Remove {
			if m := max(upd.U, upd.V); m >= work.N() {
				return nil, fmt.Errorf("experiments: profiling does not support vertex growth (update %d)", i)
			}
		}
		if err := work.Apply(upd); err != nil {
			return nil, fmt.Errorf("experiments: update %d (%v): %w", i, upd, err)
		}
		prof := UpdateProfile{SourceTimes: make([]time.Duration, work.N())}
		delta := incremental.NewDelta()
		for s := 0; s < work.N(); s++ {
			start := time.Now()
			if err := store.LoadDistances(s, &distBuf); err != nil {
				return nil, err
			}
			if incremental.Affected(distBuf, upd, directed) {
				if err := store.Load(s, rec); err != nil {
					return nil, err
				}
				if incremental.UpdateSource(work, s, upd, rec, delta, ws) {
					if err := store.Save(s, rec); err != nil {
						return nil, err
					}
				}
			}
			prof.SourceTimes[s] = time.Since(start)
		}
		mergeStart := time.Now()
		delta.ApplyTo(res)
		if upd.Remove {
			delete(res.EBC, bc.EdgeKey(work, upd.U, upd.V))
		}
		prof.Merge = time.Since(mergeStart)
		profiles = append(profiles, prof)
	}
	return profiles, nil
}
