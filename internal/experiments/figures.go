package experiments

import (
	"fmt"
	"io"
	"time"

	"streambc/internal/community"
	"streambc/internal/gen"
	"streambc/internal/graph"
)

// percentile grid used when summarising the CDF figures as text.
var cdfPercentiles = []float64{0.10, 0.25, 0.50, 0.75, 0.90}

// SpeedupCDF is one curve of a speedup CDF figure.
type SpeedupCDF struct {
	Label    string
	Speedups []float64
	CDF      []CDFPoint
}

func newSpeedupCDF(label string, speedups []float64) SpeedupCDF {
	return SpeedupCDF{Label: label, Speedups: speedups, CDF: CDF(speedups, 20)}
}

func cdfRow(c SpeedupCDF) []string {
	sorted := append([]float64(nil), c.Speedups...)
	sum := Summarize(sorted)
	cells := []string{c.Label}
	sortedAsc := append([]float64(nil), c.Speedups...)
	sortFloats(sortedAsc)
	for _, p := range cdfPercentiles {
		cells = append(cells, F(Percentile(sortedAsc, p)))
	}
	cells = append(cells, F(sum.Mean), F(sum.Max))
	return cells
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

func cdfTable(title string, curves []SpeedupCDF) Table {
	t := Table{
		Title:   title,
		Columns: []string{"series", "p10", "p25", "p50", "p75", "p90", "mean", "max"},
	}
	for _, c := range curves {
		t.AddRow(cdfRow(c)...)
	}
	return t
}

// ---------------------------------------------------------------------------
// Figure 5: CDF of speedups of the three framework variants (MP, MO, DO) on a
// single machine, edge additions.
// ---------------------------------------------------------------------------

// Figure5Result holds one CDF per dataset and variant.
type Figure5Result struct {
	Curves []SpeedupCDF
}

var figure5Datasets = []string{"1k", "10k", "ca-grqc", "wikielections"}

// RunFigure5 measures the per-update speedup of the MP, MO and DO variants
// over Brandes for edge additions on the Figure 5 datasets.
func RunFigure5(cfg Config) (*Figure5Result, error) {
	cfg = cfg.normalized()
	names := figure5Datasets
	if cfg.Quick {
		names = []string{"1k"}
	}
	res := &Figure5Result{}
	for _, name := range names {
		g, _, err := dataset(name, cfg)
		if err != nil {
			return nil, err
		}
		ups, err := additions(g, cfg)
		if err != nil {
			return nil, err
		}
		baseline := MeasureBrandes(g, cfg.BrandesRuns)
		for _, variant := range []Variant{VariantMP, VariantMO, VariantDO} {
			times, err := measureVariant(g, variant, ups, cfg)
			if err != nil {
				return nil, fmt.Errorf("figure5 %s %v: %w", name, variant, err)
			}
			res.Curves = append(res.Curves, newSpeedupCDF(fmt.Sprintf("%s-%v", name, variant), Speedups(baseline, times)))
		}
	}
	return res, nil
}

// Render writes the CDFs as percentile rows.
func (r *Figure5Result) Render(w io.Writer) {
	t := cdfTable("Figure 5: speedup CDF of MP/MO/DO over Brandes (single machine, additions)", r.Curves)
	t.Render(w)
}

// ---------------------------------------------------------------------------
// Figure 6: CDF of speedups of the DO configuration on the parallel engine,
// additions and removals, synthetic and real graphs.
// ---------------------------------------------------------------------------

// Figure6Result groups the four panels of Figure 6.
type Figure6Result struct {
	SyntheticAdd []SpeedupCDF
	SyntheticRem []SpeedupCDF
	RealAdd      []SpeedupCDF
	RealRem      []SpeedupCDF
}

var (
	figure6Synthetic = []string{"1k", "10k", "100k", "1000k"}
	figure6Real      = []string{"wikielections", "facebook", "slashdot", "epinions", "dblp", "amazon"}
)

// RunFigure6 measures per-update speedups of the out-of-core configuration
// over Brandes, comparing Brandes' single-machine time with the cumulative
// per-update work of the framework (as the paper does for its MapReduce
// deployment), for additions and removals on synthetic and real stand-ins.
func RunFigure6(cfg Config) (*Figure6Result, error) {
	cfg = cfg.normalized()
	synthetic, real := figure6Synthetic, figure6Real
	if cfg.Quick {
		synthetic, real = []string{"1k"}, []string{"wikielections"}
	}
	res := &Figure6Result{}
	run := func(names []string, remove bool) ([]SpeedupCDF, error) {
		var curves []SpeedupCDF
		for _, name := range names {
			g, _, err := dataset(name, cfg)
			if err != nil {
				return nil, err
			}
			var ups []graph.Update
			if remove {
				ups, err = removals(g, cfg)
			} else {
				ups, err = additions(g, cfg)
			}
			if err != nil {
				return nil, err
			}
			baseline := MeasureBrandes(g, cfg.BrandesRuns)
			times, err := measureVariant(g, VariantDO, ups, cfg)
			if err != nil {
				return nil, fmt.Errorf("figure6 %s: %w", name, err)
			}
			curves = append(curves, newSpeedupCDF(name, Speedups(baseline, times)))
		}
		return curves, nil
	}
	var err error
	if res.SyntheticAdd, err = run(synthetic, false); err != nil {
		return nil, err
	}
	if res.SyntheticRem, err = run(synthetic, true); err != nil {
		return nil, err
	}
	if res.RealAdd, err = run(real, false); err != nil {
		return nil, err
	}
	if res.RealRem, err = run(real, true); err != nil {
		return nil, err
	}
	return res, nil
}

// Render writes the four panels.
func (r *Figure6Result) Render(w io.Writer) {
	panels := []struct {
		title  string
		curves []SpeedupCDF
	}{
		{"Figure 6(a): speedup CDF, additions, synthetic graphs (DO)", r.SyntheticAdd},
		{"Figure 6(b): speedup CDF, removals, synthetic graphs (DO)", r.SyntheticRem},
		{"Figure 6(c): speedup CDF, additions, real-graph stand-ins (DO)", r.RealAdd},
		{"Figure 6(d): speedup CDF, removals, real-graph stand-ins (DO)", r.RealRem},
	}
	for _, panel := range panels {
		tbl := cdfTable(panel.title, panel.curves)
		tbl.Render(w)
	}
}

// ---------------------------------------------------------------------------
// Figure 7: strong and weak scaling on the (simulated) cluster.
// ---------------------------------------------------------------------------

// Figure7Point is one measurement of the scaling curves.
type Figure7Point struct {
	Dataset string
	Workers int
	// Edges is the number of stream edges in the workload.
	Edges int
	// WallPerEdge is the average simulated wall-clock time per edge (strong
	// scaling panels a-b).
	WallPerEdge time.Duration
	// TotalWall is the simulated wall-clock time of the whole workload (weak
	// scaling panels c-d, where Edges/Workers is kept constant).
	TotalWall time.Duration
	// Ratio is the workload-per-worker ratio of the weak-scaling panels
	// (zero for strong-scaling points).
	Ratio int
}

// Figure7Result holds the strong- and weak-scaling series.
type Figure7Result struct {
	Strong []Figure7Point
	Weak   []Figure7Point
}

// RunFigure7 profiles the per-source work of every update once and then
// replays it at different simulated cluster sizes: strong scaling keeps the
// workload fixed and increases the workers, weak scaling keeps the ratio of
// stream edges per worker fixed.
func RunFigure7(cfg Config) (*Figure7Result, error) {
	cfg = cfg.normalized()
	datasets := []string{"10k", "100k"}
	workerCounts := []int{1, 2, 4, 8, 16, 32, 64}
	batchSizes := []int{100, 200, 300}
	ratios := []int{1, 2, 3}
	if cfg.Quick {
		datasets = []string{"1k"}
		workerCounts = []int{1, 2, 4}
		batchSizes = []int{6, 12}
		ratios = []int{1, 2}
	}
	res := &Figure7Result{}
	for _, name := range datasets {
		g, _, err := dataset(name, cfg)
		if err != nil {
			return nil, err
		}
		maxBatch := batchSizes[len(batchSizes)-1]
		streamCfg := cfg
		streamCfg.UpdateCount = maxBatch
		ups, err := additions(g, streamCfg)
		if err != nil {
			return nil, err
		}
		profiles, err := ProfileStream(g, ups, false, cfg.ScratchDir, cfg.SegmentRecords)
		if err != nil {
			return nil, fmt.Errorf("figure7 %s: %w", name, err)
		}

		// Strong scaling: fixed batch, growing cluster.
		for _, batch := range batchSizes {
			if batch > len(profiles) {
				batch = len(profiles)
			}
			for _, workers := range workerCounts {
				var total time.Duration
				for _, p := range profiles[:batch] {
					total += p.SimulatedWall(workers)
				}
				res.Strong = append(res.Strong, Figure7Point{
					Dataset: name, Workers: workers, Edges: batch,
					WallPerEdge: total / time.Duration(batch), TotalWall: total,
				})
			}
		}

		// Weak scaling: edges per worker kept constant.
		for _, ratio := range ratios {
			for _, workers := range workerCounts {
				batch := ratio * workers
				if batch > len(profiles) {
					batch = len(profiles)
				}
				var total time.Duration
				for _, p := range profiles[:batch] {
					total += p.SimulatedWall(workers)
				}
				res.Weak = append(res.Weak, Figure7Point{
					Dataset: name, Workers: workers, Edges: batch, Ratio: ratio, TotalWall: total,
				})
			}
		}
	}
	return res, nil
}

// Render writes the scaling series.
func (r *Figure7Result) Render(w io.Writer) {
	strong := Table{
		Title:   "Figure 7(a-b): strong scaling — simulated wall-clock time per new edge",
		Columns: []string{"dataset", "edges", "workers", "wall/edge"},
	}
	for _, p := range r.Strong {
		strong.AddRow(p.Dataset, fmt.Sprintf("%d", p.Edges), fmt.Sprintf("%d", p.Workers), D(p.WallPerEdge))
	}
	strong.Render(w)

	weak := Table{
		Title:   "Figure 7(c-d): weak scaling — simulated total time at constant edges/worker ratio",
		Columns: []string{"dataset", "ratio", "workers", "edges", "total wall"},
	}
	for _, p := range r.Weak {
		weak.AddRow(p.Dataset, fmt.Sprintf("%d", p.Ratio), fmt.Sprintf("%d", p.Workers), fmt.Sprintf("%d", p.Edges), D(p.TotalWall))
	}
	weak.Render(w)
}

// ---------------------------------------------------------------------------
// Figure 8: inter-arrival times vs update times for arriving edges.
// ---------------------------------------------------------------------------

// Figure8Point is one arriving edge of the Figure 8 series.
type Figure8Point struct {
	Index        int
	InterArrival float64         // seconds since the previous arrival
	UpdateTime   map[int]float64 // workers -> simulated update wall time (seconds)
}

// Figure8Result holds one series per dataset.
type Figure8Result struct {
	Workers []int
	Series  map[string][]Figure8Point
}

// RunFigure8 produces, for each arriving edge of a timestamped stream, its
// inter-arrival gap and the simulated time needed to update betweenness at
// several cluster sizes (cf. Figure 8).
func RunFigure8(cfg Config) (*Figure8Result, error) {
	cfg = cfg.normalized()
	names := []string{"slashdot", "facebook"}
	workerCounts := []int{1, 8, 32}
	if cfg.Quick {
		names = []string{"slashdot"}
		workerCounts = []int{1, 4}
	}
	res := &Figure8Result{Workers: workerCounts, Series: make(map[string][]Figure8Point)}
	for _, name := range names {
		g, _, err := dataset(name, cfg)
		if err != nil {
			return nil, err
		}
		ups, err := additions(g, cfg)
		if err != nil {
			return nil, err
		}
		profiles, err := ProfileStream(g, ups, false, cfg.ScratchDir, cfg.SegmentRecords)
		if err != nil {
			return nil, fmt.Errorf("figure8 %s: %w", name, err)
		}
		var totals []float64
		for _, p := range profiles {
			totals = append(totals, p.Total().Seconds())
		}
		meanGap := Summarize(totals).Median
		stream := gen.Timestamp(ups, gen.ArrivalModel{MeanGap: meanGap, Burstiness: 0.3}, cfg.Seed+9)

		points := make([]Figure8Point, 0, len(stream))
		prev := 0.0
		for i := range stream {
			pt := Figure8Point{Index: i, InterArrival: stream[i].Time - prev, UpdateTime: make(map[int]float64, len(workerCounts))}
			prev = stream[i].Time
			for _, wkr := range workerCounts {
				pt.UpdateTime[wkr] = profiles[i].SimulatedWall(wkr).Seconds()
			}
			points = append(points, pt)
		}
		res.Series[name] = points
	}
	return res, nil
}

// Render writes a downsampled series per dataset.
func (r *Figure8Result) Render(w io.Writer) {
	for name, points := range r.Series {
		t := Table{Title: fmt.Sprintf("Figure 8: inter-arrival vs update time (%s)", name)}
		t.Columns = []string{"edge", "inter-arrival (s)"}
		for _, wkr := range r.Workers {
			t.Columns = append(t.Columns, fmt.Sprintf("update t, %d workers (s)", wkr))
		}
		step := len(points) / 20
		if step < 1 {
			step = 1
		}
		for i := 0; i < len(points); i += step {
			p := points[i]
			row := []string{fmt.Sprintf("%d", p.Index), fmt.Sprintf("%.4f", p.InterArrival)}
			for _, wkr := range r.Workers {
				row = append(row, fmt.Sprintf("%.4f", p.UpdateTime[wkr]))
			}
			t.AddRow(row...)
		}
		t.Render(w)
	}
}

// ---------------------------------------------------------------------------
// Figure 9: Girvan-Newman with incremental edge betweenness.
// ---------------------------------------------------------------------------

// Figure9Point is the speedup of the incremental Girvan-Newman over the
// recompute baseline after removing the top-k betweenness edges.
type Figure9Point struct {
	Dataset         string
	EdgesRemoved    int
	IncrementalTime time.Duration
	RecomputeTime   time.Duration
	Speedup         float64
}

// Figure9Result is the outcome of the Figure 9 experiment.
type Figure9Result struct {
	Points []Figure9Point
}

// RunFigure9 runs the Girvan-Newman decomposition with incrementally
// maintained edge betweenness and with full recomputation, for increasing
// numbers of removed top-betweenness edges, and reports the speedup
// (cf. Figure 9).
func RunFigure9(cfg Config) (*Figure9Result, error) {
	cfg = cfg.normalized()
	datasets := []string{"1k", "10k"}
	removalCounts := []int{1, 10, 50, 100}
	if cfg.Quick {
		datasets = []string{"1k"}
		removalCounts = []int{1, 5}
	}
	res := &Figure9Result{}
	for _, name := range datasets {
		g, _, err := dataset(name, cfg)
		if err != nil {
			return nil, err
		}
		for _, k := range removalCounts {
			if k > g.M() {
				k = g.M()
			}
			start := time.Now()
			if _, err := community.Detect(g, community.Options{Method: community.Incremental, MaxRemovals: k}); err != nil {
				return nil, fmt.Errorf("figure9 %s incremental: %w", name, err)
			}
			inc := time.Since(start)

			start = time.Now()
			if _, err := community.Detect(g, community.Options{Method: community.Recompute, MaxRemovals: k}); err != nil {
				return nil, fmt.Errorf("figure9 %s recompute: %w", name, err)
			}
			rec := time.Since(start)

			res.Points = append(res.Points, Figure9Point{
				Dataset: name, EdgesRemoved: k,
				IncrementalTime: inc, RecomputeTime: rec,
				Speedup: float64(rec) / float64(inc),
			})
		}
	}
	return res, nil
}

// Render writes the speedup curve.
func (r *Figure9Result) Render(w io.Writer) {
	t := Table{
		Title:   "Figure 9: Girvan-Newman — incremental edge betweenness vs recomputation",
		Columns: []string{"dataset", "edges removed", "incremental", "recompute", "speedup"},
	}
	for _, p := range r.Points {
		t.AddRow(p.Dataset, fmt.Sprintf("%d", p.EdgesRemoved), D(p.IncrementalTime), D(p.RecomputeTime), F(p.Speedup))
	}
	t.Render(w)
}
