package experiments

import (
	"fmt"
	"io"
	"time"

	"streambc/internal/gen"
	"streambc/internal/graph"
)

// This file measures the batched update execution path: the same mixed
// addition/removal stream is replayed once with per-update Apply calls and
// once with ApplyBatch in chunks, on both the in-memory (MO) and out-of-core
// (DO) configurations. Batching loads and saves each affected source once
// per batch instead of once per update, so the DO configuration — whose
// per-update cost is dominated by store I/O — is where the speedup lands.

// BatchApplier is an updater that supports the batched execution path.
type BatchApplier interface {
	Applier
	ApplyBatch(updates []graph.Update) (int, error)
}

// BatchRow is one measured replay.
type BatchRow struct {
	Variant   Variant
	BatchSize int // 1 = sequential Apply
	Updates   int
	Elapsed   time.Duration
}

// Throughput returns updates per second.
func (r BatchRow) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Updates) / r.Elapsed.Seconds()
}

// BatchResult holds the sequential and batched replays of every variant.
type BatchResult struct {
	BatchSize int
	Rows      []BatchRow
}

// RunBatch replays the same stream sequentially and in batches of
// cfg.BatchSize on the MO and DO configurations.
func RunBatch(cfg Config) (*BatchResult, error) {
	cfg = cfg.normalized()
	n := 400
	if cfg.Quick {
		n = 120
	}
	res := &BatchResult{BatchSize: cfg.BatchSize}
	for _, variant := range []Variant{VariantMO, VariantDO} {
		for _, batch := range []int{1, cfg.BatchSize} {
			g := gen.Connected(gen.HolmeKim(n, 5, 0.6, cfg.Seed))
			stream, err := mixedStream(g, cfg)
			if err != nil {
				return nil, err
			}
			a, cleanup, err := NewVariantUpdater(g, variant, cfg.ScratchDir, cfg.SegmentRecords)
			if err != nil {
				cleanup()
				return nil, err
			}
			elapsed, err := replay(a, stream, batch)
			cleanup()
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, BatchRow{Variant: variant, BatchSize: batch, Updates: len(stream), Elapsed: elapsed})
		}
	}
	return res, nil
}

// mixedStream interleaves additions with their removals so the stream leaves
// the graph unchanged and both update kinds are exercised.
func mixedStream(g *graph.Graph, cfg Config) ([]graph.Update, error) {
	adds, err := gen.RandomAdditions(g, cfg.UpdateCount, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	stream := make([]graph.Update, 0, 2*len(adds))
	for _, a := range adds {
		stream = append(stream, a, graph.Removal(a.U, a.V))
	}
	return stream, nil
}

// replay applies the stream in chunks of batch (1 = per-update Apply) and
// returns the wall-clock time.
func replay(a Applier, stream []graph.Update, batch int) (time.Duration, error) {
	start := time.Now()
	if batch <= 1 {
		for i, upd := range stream {
			if err := a.Apply(upd); err != nil {
				return 0, fmt.Errorf("experiments: update %d (%v): %w", i, upd, err)
			}
		}
		return time.Since(start), nil
	}
	ba, ok := a.(BatchApplier)
	if !ok {
		return 0, fmt.Errorf("experiments: %T does not support ApplyBatch", a)
	}
	for off := 0; off < len(stream); off += batch {
		end := min(off+batch, len(stream))
		if _, err := ba.ApplyBatch(stream[off:end]); err != nil {
			return 0, fmt.Errorf("experiments: batch at offset %d: %w", off, err)
		}
	}
	return time.Since(start), nil
}

// Render implements Renderer.
func (r *BatchResult) Render(w io.Writer) {
	fmt.Fprintf(w, "batched replay (batch size %d vs per-update Apply)\n\n", r.BatchSize)
	fmt.Fprintf(w, "%-8s %-8s %-10s %-12s %-14s %s\n", "variant", "batch", "updates", "elapsed", "updates/s", "speedup")
	base := make(map[Variant]float64)
	for _, row := range r.Rows {
		if row.BatchSize == 1 {
			base[row.Variant] = row.Throughput()
		}
	}
	for _, row := range r.Rows {
		speedup := "-"
		if b := base[row.Variant]; b > 0 && row.BatchSize != 1 {
			speedup = fmt.Sprintf("%.2fx", row.Throughput()/b)
		}
		fmt.Fprintf(w, "%-8s %-8d %-10d %-12s %-14.1f %s\n",
			row.Variant, row.BatchSize, row.Updates, row.Elapsed.Round(time.Microsecond), row.Throughput(), speedup)
	}
	fmt.Fprintln(w)
}
