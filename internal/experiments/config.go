package experiments

import (
	"streambc/internal/gen"
	"streambc/internal/graph"
)

// Config controls the scale of an experiment run.
type Config struct {
	// Quick shrinks every experiment (tiny graphs, few updates) so that the
	// whole suite runs in seconds. Used by unit tests and the default `go
	// test -bench` run; `cmd/bcbench` uses the full scale by default.
	Quick bool
	// Seed makes the generated graphs and streams deterministic.
	Seed int64
	// UpdateCount is the number of stream updates per experiment; 0 means the
	// paper's value (100) at full scale and 12 in quick mode.
	UpdateCount int
	// BrandesRuns is how many times the baseline is measured (median taken).
	BrandesRuns int
	// ScratchDir hosts temporary on-disk stores (defaults to the system temp
	// directory).
	ScratchDir string
	// SegmentRecords is the number of source records per segment file of the
	// out-of-core stores; 0 means bdstore.DefaultSegmentRecords.
	SegmentRecords int
	// BatchSize is the chunk size used by the batched-replay experiment;
	// 0 means 16.
	BatchSize int
	// SampleK is the headline sample size of the approx experiment (the
	// sampled-source ladder always includes it); 0 means n/4.
	SampleK int
}

func (c Config) normalized() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.UpdateCount == 0 {
		if c.Quick {
			c.UpdateCount = 12
		} else {
			c.UpdateCount = 100
		}
	}
	if c.BrandesRuns == 0 {
		if c.Quick {
			c.BrandesRuns = 1
		} else {
			c.BrandesRuns = 3
		}
	}
	if c.BatchSize < 1 {
		c.BatchSize = 16
	}
	return c
}

// dataset builds the graph for a named preset, shrunk drastically in quick
// mode (quick graphs only exercise the code paths; they are not meant to
// reproduce the paper's numbers).
func dataset(name string, cfg Config) (*graph.Graph, gen.Preset, error) {
	preset, err := gen.GetPreset(name)
	if err != nil {
		return nil, gen.Preset{}, err
	}
	if cfg.Quick {
		var g *graph.Graph
		if preset.Paper.CC < 0.05 {
			g = gen.Connected(gen.ErdosRenyi(220, 700, cfg.Seed))
		} else {
			g = gen.Connected(gen.HolmeKim(220, 5, 0.6, cfg.Seed))
		}
		return g, preset, nil
	}
	return preset.Build(cfg.Seed), preset, nil
}

// additions builds the paper's addition workload for a dataset: updates
// connecting random unconnected pairs.
func additions(g *graph.Graph, cfg Config) ([]graph.Update, error) {
	return gen.RandomAdditions(g, cfg.UpdateCount, cfg.Seed+1)
}

// removals builds the paper's removal workload: updates deleting random
// existing edges.
func removals(g *graph.Graph, cfg Config) ([]graph.Update, error) {
	count := cfg.UpdateCount
	if count > g.M() {
		count = g.M()
	}
	return gen.RandomRemovals(g, count, cfg.Seed+2)
}
