package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// LoadEdgeList reads a whitespace-separated edge list ("u v" or "u v time"
// per line, '#' and '%' prefixed lines ignored) and builds an undirected (or
// directed) graph over the vertices mentioned. Duplicate edges and self loops
// in the input are skipped. Vertex identifiers must be non-negative integers;
// they are used as-is, so sparse identifier spaces produce isolated vertices.
func LoadEdgeList(r io.Reader, directed bool) (*Graph, error) {
	g := newGraph(0, directed)
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for scanner.Scan() {
		line++
		u, v, _, ok, err := parseEdgeLine(scanner.Text(), line)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		g.EnsureVertex(u)
		g.EnsureVertex(v)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		if err := g.AddEdge(u, v); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return g, nil
}

// LoadEdgeListFile is a convenience wrapper around LoadEdgeList.
func LoadEdgeListFile(path string, directed bool) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return LoadEdgeList(f, directed)
}

// LoadUpdateStream reads a timestamped update stream. Each non-comment line
// is "op u v [time]" where op is "+" or "-", or simply "u v [time]" which is
// interpreted as an addition. Times are float seconds.
func LoadUpdateStream(r io.Reader) ([]Update, error) {
	var updates []Update
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		remove := false
		if fields[0] == "+" || fields[0] == "-" {
			remove = fields[0] == "-"
			fields = fields[1:]
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: malformed update %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		t := 0.0
		if len(fields) >= 3 {
			t, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", line, err)
			}
		}
		updates = append(updates, Update{U: u, V: v, Remove: remove, Time: t})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading update stream: %w", err)
	}
	return updates, nil
}

// WriteEdgeList writes the graph as a plain edge list, one "u v" pair per
// line, suitable for LoadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.U, e.V); err != nil {
			return fmt.Errorf("graph: writing edge list: %w", err)
		}
	}
	return bw.Flush()
}

// WriteUpdateStream writes updates in the format read by LoadUpdateStream.
func WriteUpdateStream(w io.Writer, updates []Update) error {
	bw := bufio.NewWriter(w)
	for _, u := range updates {
		op := "+"
		if u.Remove {
			op = "-"
		}
		if _, err := fmt.Fprintf(bw, "%s %d %d %g\n", op, u.U, u.V, u.Time); err != nil {
			return fmt.Errorf("graph: writing update stream: %w", err)
		}
	}
	return bw.Flush()
}

func parseEdgeLine(text string, line int) (u, v int, t float64, ok bool, err error) {
	text = strings.TrimSpace(text)
	if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
		return 0, 0, 0, false, nil
	}
	fields := strings.Fields(text)
	if len(fields) < 2 {
		return 0, 0, 0, false, fmt.Errorf("graph: line %d: malformed edge %q", line, text)
	}
	u, err = strconv.Atoi(fields[0])
	if err != nil {
		return 0, 0, 0, false, fmt.Errorf("graph: line %d: %w", line, err)
	}
	v, err = strconv.Atoi(fields[1])
	if err != nil {
		return 0, 0, 0, false, fmt.Errorf("graph: line %d: %w", line, err)
	}
	if len(fields) >= 3 {
		if t, err = strconv.ParseFloat(fields[2], 64); err != nil {
			return 0, 0, 0, false, fmt.Errorf("graph: line %d: %w", line, err)
		}
	}
	return u, v, t, true, nil
}
