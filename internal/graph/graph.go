// Package graph provides the dynamic graph substrate used by the streaming
// betweenness framework: an adjacency-list graph supporting online edge
// additions and removals, for both undirected and directed graphs, together
// with loaders, generators' building blocks, statistics and traversal
// utilities.
//
// Vertices are dense integer identifiers in the range [0, N()). The graph is
// simple: self loops and parallel edges are rejected.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Common errors returned by mutating operations.
var (
	ErrSelfLoop      = errors.New("graph: self loops are not allowed")
	ErrDuplicateEdge = errors.New("graph: edge already exists")
	ErrMissingEdge   = errors.New("graph: edge does not exist")
	ErrVertexRange   = errors.New("graph: vertex out of range")
)

// Graph is a simple dynamic graph with dense integer vertices.
//
// For undirected graphs each edge {u,v} is stored in both adjacency lists and
// counted once by M(). For directed graphs the out- and in-adjacency are kept
// separately so that shortest-path searches can expand forward along
// out-edges and backtrack along in-edges, as required by the betweenness
// algorithms.
type Graph struct {
	directed bool
	out      [][]int // out[u] = neighbours reachable from u (undirected: all neighbours)
	in       [][]int // in[v] = vertices with an edge into v (directed only)
	m        int     // number of edges
}

// New returns an empty undirected graph with n vertices.
func New(n int) *Graph { return newGraph(n, false) }

// NewDirected returns an empty directed graph with n vertices.
func NewDirected(n int) *Graph { return newGraph(n, true) }

func newGraph(n int, directed bool) *Graph {
	g := &Graph{
		directed: directed,
		out:      make([][]int, n),
	}
	if directed {
		g.in = make([][]int, n)
	}
	return g
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.out) }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddVertex appends a new isolated vertex and returns its identifier.
func (g *Graph) AddVertex() int {
	g.out = append(g.out, nil)
	if g.directed {
		g.in = append(g.in, nil)
	}
	return len(g.out) - 1
}

// EnsureVertex grows the graph so that vertex id v exists.
func (g *Graph) EnsureVertex(v int) {
	for g.N() <= v {
		g.AddVertex()
	}
}

func (g *Graph) checkVertex(v int) error {
	if v < 0 || v >= g.N() {
		return fmt.Errorf("%w: %d (n=%d)", ErrVertexRange, v, g.N())
	}
	return nil
}

// HasEdge reports whether the edge (u,v) exists. For undirected graphs the
// order of the endpoints is irrelevant.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return false
	}
	return contains(g.out[u], v)
}

// AddEdge inserts the edge (u,v). Both endpoints must already exist.
func (g *Graph) AddEdge(u, v int) error {
	if err := g.checkVertex(u); err != nil {
		return err
	}
	if err := g.checkVertex(v); err != nil {
		return err
	}
	if u == v {
		return ErrSelfLoop
	}
	if contains(g.out[u], v) {
		return fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, u, v)
	}
	g.out[u] = insert(g.out[u], v)
	if g.directed {
		g.in[v] = insert(g.in[v], u)
	} else {
		g.out[v] = insert(g.out[v], u)
	}
	g.m++
	return nil
}

// RemoveEdge deletes the edge (u,v).
func (g *Graph) RemoveEdge(u, v int) error {
	if err := g.checkVertex(u); err != nil {
		return err
	}
	if err := g.checkVertex(v); err != nil {
		return err
	}
	if !contains(g.out[u], v) {
		return fmt.Errorf("%w: (%d,%d)", ErrMissingEdge, u, v)
	}
	g.out[u] = remove(g.out[u], v)
	if g.directed {
		g.in[v] = remove(g.in[v], u)
	} else {
		g.out[v] = remove(g.out[v], u)
	}
	g.m--
	return nil
}

// Neighbors returns the adjacency list of v. For directed graphs it is the
// out-neighbourhood. The returned slice is owned by the graph and must not be
// modified by the caller.
func (g *Graph) Neighbors(v int) []int { return g.out[v] }

// OutNeighbors returns the vertices reachable from v by a single edge.
func (g *Graph) OutNeighbors(v int) []int { return g.out[v] }

// InNeighbors returns the vertices with an edge into v. For undirected graphs
// it coincides with Neighbors.
func (g *Graph) InNeighbors(v int) []int {
	if g.directed {
		return g.in[v]
	}
	return g.out[v]
}

// Degree returns the degree of v (out-degree for directed graphs).
func (g *Graph) Degree(v int) int { return len(g.out[v]) }

// InDegree returns the in-degree of v (same as Degree for undirected graphs).
func (g *Graph) InDegree(v int) int { return len(g.InNeighbors(v)) }

// Edges returns all edges of the graph. For undirected graphs each edge is
// reported once with U < V. The result is sorted for determinism.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	for u := range g.out {
		for _, v := range g.out[u] {
			if !g.directed && u > v {
				continue
			}
			edges = append(edges, Edge{U: u, V: v})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	return edges
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{directed: g.directed, m: g.m}
	c.out = cloneAdj(g.out)
	if g.directed {
		c.in = cloneAdj(g.in)
	}
	return c
}

// Apply applies a single update (addition or removal) to the graph, growing
// the vertex set if the update references unseen vertices.
func (g *Graph) Apply(u Update) error {
	g.EnsureVertex(u.U)
	g.EnsureVertex(u.V)
	if u.Remove {
		return g.RemoveEdge(u.U, u.V)
	}
	return g.AddEdge(u.U, u.V)
}

func cloneAdj(adj [][]int) [][]int {
	c := make([][]int, len(adj))
	for i, row := range adj {
		if len(row) == 0 {
			continue
		}
		c[i] = append([]int(nil), row...)
	}
	return c
}

// Adjacency lists are kept sorted at all times, so the neighbourhood order —
// and with it the floating-point accumulation order of every betweenness
// traversal — is a pure function of the edge set, independent of the
// addition/removal history that produced it. That is what makes scores
// bit-identical across an uninterrupted run, a snapshot restore (which
// rebuilds the graph from the sorted edge list) and a write-ahead-log
// replay. Sorted order also buys O(log deg) membership tests.

func contains(s []int, x int) bool {
	i := sort.SearchInts(s, x)
	return i < len(s) && s[i] == x
}

func insert(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

func remove(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	if i < len(s) && s[i] == x {
		return append(s[:i], s[i+1:]...)
	}
	return s
}
