// Package graph provides the dynamic graph substrate used by the streaming
// betweenness framework: a compressed-sparse-row graph with a delta overlay
// supporting online edge additions and removals, for both undirected and
// directed graphs, together with loaders, generators' building blocks,
// statistics and traversal utilities.
//
// Vertices are dense integer identifiers in the range [0, N()). The graph is
// simple: self loops and parallel edges are rejected.
package graph

import (
	"errors"
	"fmt"
)

// Common errors returned by mutating operations.
var (
	ErrSelfLoop      = errors.New("graph: self loops are not allowed")
	ErrDuplicateEdge = errors.New("graph: edge already exists")
	ErrMissingEdge   = errors.New("graph: edge does not exist")
	ErrVertexRange   = errors.New("graph: vertex out of range")
)

// Graph is a simple dynamic graph with dense integer vertices, stored as flat
// CSR columns plus a per-vertex delta overlay (see csr.go).
//
// For undirected graphs each edge {u,v} appears in both endpoints' rows and
// is counted once by M(). For directed graphs the out- and in-adjacency are
// kept separately so that shortest-path searches can expand forward along
// out-edges and backtrack along in-edges, as required by the betweenness
// algorithms.
type Graph struct {
	directed bool
	out      adjacency // out[u] = neighbours reachable from u (undirected: all neighbours)
	in       adjacency // in[v] = vertices with an edge into v (directed only)
	m        int       // number of edges
}

// New returns an empty undirected graph with n vertices.
func New(n int) *Graph { return newGraph(n, false) }

// NewDirected returns an empty directed graph with n vertices.
func NewDirected(n int) *Graph { return newGraph(n, true) }

func newGraph(n int, directed bool) *Graph {
	g := &Graph{directed: directed}
	g.out.init(n)
	if directed {
		g.in.init(n)
	}
	return g
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.out.off) - 1 }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddVertex appends a new isolated vertex and returns its identifier.
func (g *Graph) AddVertex() int {
	n := g.N() + 1
	g.out.grow(n)
	if g.directed {
		g.in.grow(n)
	}
	return n - 1
}

// EnsureVertex grows the graph so that vertex id v exists.
func (g *Graph) EnsureVertex(v int) {
	if v >= g.N() {
		g.out.grow(v + 1)
		if g.directed {
			g.in.grow(v + 1)
		}
	}
}

func (g *Graph) checkVertex(v int) error {
	if v < 0 || v >= g.N() {
		return fmt.Errorf("%w: %d (n=%d)", ErrVertexRange, v, g.N())
	}
	return nil
}

// HasEdge reports whether the edge (u,v) exists. For undirected graphs the
// order of the endpoints is irrelevant. Membership is a binary search on u's
// sorted row.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.N() || v >= g.N() {
		return false
	}
	return g.out.contains(u, int32(v))
}

// AddEdge inserts the edge (u,v). Both endpoints must already exist.
func (g *Graph) AddEdge(u, v int) error {
	if err := g.checkVertex(u); err != nil {
		return err
	}
	if err := g.checkVertex(v); err != nil {
		return err
	}
	if u == v {
		return ErrSelfLoop
	}
	if g.out.contains(u, int32(v)) {
		return fmt.Errorf("%w: (%d,%d)", ErrDuplicateEdge, u, v)
	}
	g.out.insert(u, int32(v))
	if g.directed {
		g.in.insert(v, int32(u))
	} else {
		g.out.insert(v, int32(u))
	}
	g.m++
	g.maybeCompact()
	return nil
}

// RemoveEdge deletes the edge (u,v).
func (g *Graph) RemoveEdge(u, v int) error {
	if err := g.checkVertex(u); err != nil {
		return err
	}
	if err := g.checkVertex(v); err != nil {
		return err
	}
	if !g.out.contains(u, int32(v)) {
		return fmt.Errorf("%w: (%d,%d)", ErrMissingEdge, u, v)
	}
	g.out.remove(u, int32(v))
	if g.directed {
		g.in.remove(v, int32(u))
	} else {
		g.out.remove(v, int32(u))
	}
	g.m--
	g.maybeCompact()
	return nil
}

// Out returns the sorted out-neighbour row of v (all neighbours for
// undirected graphs) as a view into the graph's flat storage. It never
// allocates; the slice is owned by the graph, must not be modified, and is
// invalidated by the next mutation or Compact.
func (g *Graph) Out(v int) []int32 { return g.out.row(v) }

// In returns the sorted in-neighbour row of v. For undirected graphs it
// coincides with Out. Ownership rules are the same as Out's.
func (g *Graph) In(v int) []int32 {
	if g.directed {
		return g.in.row(v)
	}
	return g.out.row(v)
}

// Neighbors returns the adjacency list of v as a freshly allocated slice. For
// directed graphs it is the out-neighbourhood. Hot paths should iterate
// Out/In instead, which do not allocate.
func (g *Graph) Neighbors(v int) []int { return toInts(g.out.row(v)) }

// OutNeighbors returns the vertices reachable from v by a single edge, as a
// freshly allocated slice.
func (g *Graph) OutNeighbors(v int) []int { return toInts(g.out.row(v)) }

// InNeighbors returns the vertices with an edge into v, as a freshly
// allocated slice. For undirected graphs it coincides with Neighbors.
func (g *Graph) InNeighbors(v int) []int { return toInts(g.In(v)) }

func toInts(row []int32) []int {
	if len(row) == 0 {
		return nil
	}
	s := make([]int, len(row))
	for i, x := range row {
		s[i] = int(x)
	}
	return s
}

// Degree returns the degree of v (out-degree for directed graphs).
func (g *Graph) Degree(v int) int { return len(g.out.row(v)) }

// InDegree returns the in-degree of v (same as Degree for undirected graphs).
func (g *Graph) InDegree(v int) int { return len(g.In(v)) }

// Edges returns all edges of the graph. For undirected graphs each edge is
// reported once with U < V. The result is sorted (ascending U, then V); this
// ordering — a pure function of the edge set — is what snapshots serialise,
// so it must not change across representations.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.m)
	n := g.N()
	for u := 0; u < n; u++ {
		for _, v32 := range g.out.row(u) {
			v := int(v32)
			if !g.directed && u > v {
				continue
			}
			edges = append(edges, Edge{U: u, V: v})
		}
	}
	return edges
}

// Clone returns a deep copy of the graph. The copy starts fully compacted;
// the receiver is left untouched.
func (g *Graph) Clone() *Graph {
	c := &Graph{directed: g.directed, m: g.m}
	c.out.cloneFrom(&g.out)
	if g.directed {
		c.in.cloneFrom(&g.in)
	}
	return c
}

// Apply applies a single update (addition or removal) to the graph, growing
// the vertex set if the update references unseen vertices.
func (g *Graph) Apply(u Update) error {
	g.EnsureVertex(u.U)
	g.EnsureVertex(u.V)
	if u.Remove {
		return g.RemoveEdge(u.U, u.V)
	}
	return g.AddEdge(u.U, u.V)
}

// Compact folds the delta overlay back into the flat CSR columns. It is
// automatically invoked when the overlay grows past a fraction of M, and by
// the engine after each applied batch; callers that finish a bulk load may
// invoke it explicitly. Compaction changes no observable state, but it
// invalidates row views returned by Out/In and must not run concurrently
// with readers.
func (g *Graph) Compact() {
	g.out.compact()
	if g.directed {
		g.in.compact()
	}
}

// OverlayPending returns the number of edge-endpoint mutations currently
// absorbed by the delta overlay (0 when fully compacted). Exposed for tests
// of the compaction policy.
func (g *Graph) OverlayPending() int { return g.out.pending + g.in.pending }

func (g *Graph) maybeCompact() {
	p := g.out.pending + g.in.pending
	if p > compactMinPending && p > g.m/compactOverlayFraction {
		g.Compact()
	}
}

// Adjacency rows are kept sorted at all times, so the neighbourhood order —
// and with it the floating-point accumulation order of every betweenness
// traversal — is a pure function of the edge set, independent of the
// addition/removal history that produced it. That is what makes scores
// bit-identical across an uninterrupted run, a snapshot restore (which
// rebuilds the graph from the sorted edge list) and a write-ahead-log
// replay. Sorted order also buys O(log deg) membership tests.
