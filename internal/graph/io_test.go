package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadEdgeList(t *testing.T) {
	input := `# comment
% another comment
0 1
1 2 3.5
2 0
2 2
0 1
`
	g, err := LoadEdgeList(strings.NewReader(input), false)
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want 3 and 3 (self loop and duplicate skipped)", g.N(), g.M())
	}
}

func TestLoadEdgeListMalformed(t *testing.T) {
	if _, err := LoadEdgeList(strings.NewReader("0\n"), false); err == nil {
		t.Fatal("expected error for malformed line")
	}
	if _, err := LoadEdgeList(strings.NewReader("a b\n"), false); err == nil {
		t.Fatal("expected error for non-integer vertex")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := New(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatalf("WriteEdgeList: %v", err)
	}
	g2, err := LoadEdgeList(&buf, false)
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip mismatch: n=%d m=%d", g2.N(), g2.M())
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v lost in round trip", e)
		}
	}
}

func TestUpdateStreamRoundTrip(t *testing.T) {
	updates := []Update{
		{U: 0, V: 1, Time: 1.5},
		{U: 2, V: 3, Remove: true, Time: 2},
		{U: 4, V: 5, Time: 10},
	}
	var buf bytes.Buffer
	if err := WriteUpdateStream(&buf, updates); err != nil {
		t.Fatalf("WriteUpdateStream: %v", err)
	}
	got, err := LoadUpdateStream(&buf)
	if err != nil {
		t.Fatalf("LoadUpdateStream: %v", err)
	}
	if len(got) != len(updates) {
		t.Fatalf("got %d updates, want %d", len(got), len(updates))
	}
	for i := range updates {
		if got[i] != updates[i] {
			t.Fatalf("update %d = %+v, want %+v", i, got[i], updates[i])
		}
	}
}

func TestLoadUpdateStreamImplicitAddition(t *testing.T) {
	got, err := LoadUpdateStream(strings.NewReader("3 4\n# c\n- 1 2 7\n"))
	if err != nil {
		t.Fatalf("LoadUpdateStream: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d updates, want 2", len(got))
	}
	if got[0].Remove || got[0].U != 3 || got[0].V != 4 {
		t.Fatalf("first update = %+v", got[0])
	}
	if !got[1].Remove || got[1].Time != 7 {
		t.Fatalf("second update = %+v", got[1])
	}
}

func TestUpdateString(t *testing.T) {
	if s := Addition(1, 2).String(); !strings.HasPrefix(s, "+(1,2)") {
		t.Fatalf("Addition string = %q", s)
	}
	if s := Removal(1, 2).String(); !strings.HasPrefix(s, "-(1,2)") {
		t.Fatalf("Removal string = %q", s)
	}
}
