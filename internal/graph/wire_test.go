package graph

import (
	"errors"
	"testing"
)

func TestUpdateWireRoundTrip(t *testing.T) {
	cases := []Update{
		{},
		Addition(0, 1),
		Addition(3, 12345678),
		Removal(7, 7),
		Removal(1<<40, 2),
		{U: -1, V: 5}, // invalid for the engine, but encodable
		{U: 2, V: -3, Remove: true},
		{U: 4, V: 9, Time: 1.5},
		{U: 4, V: 9, Remove: true, Time: 1e-9},
	}
	var buf []byte
	for _, u := range cases {
		buf = AppendUpdate(buf, u)
	}
	for i, want := range cases {
		got, n, err := DecodeUpdate(buf)
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("update %d: got %v, want %v", i, got, want)
		}
		buf = buf[n:]
	}
	if len(buf) != 0 {
		t.Fatalf("%d trailing bytes after decoding all updates", len(buf))
	}
}

func TestUpdateWireErrors(t *testing.T) {
	full := AppendUpdate(nil, Update{U: 300, V: 4, Time: 2.5})
	cases := map[string][]byte{
		"empty":               nil,
		"unknown flags":       {0xff},
		"truncated endpoint":  full[:2],
		"truncated timestamp": full[:len(full)-1],
	}
	for name, b := range cases {
		if _, _, err := DecodeUpdate(b); !errors.Is(err, ErrBadUpdateWire) {
			t.Errorf("%s: got %v, want ErrBadUpdateWire", name, err)
		}
	}
}
