package graph

// Unreachable is the distance value used for vertices that cannot be reached
// from the BFS source.
const Unreachable = -1

// BFS computes unweighted shortest-path distances from source s following
// out-edges. Unreachable vertices get distance Unreachable.
func (g *Graph) BFS(s int) []int {
	dist := make([]int, g.N())
	g.BFSInto(s, dist, nil)
	return dist
}

// BFSInto is the allocation-free form of BFS: it fills dist (which must have
// length N()) with distances from s, using queue as scratch space when its
// capacity suffices (pass nil to let the search allocate its own queue).
// It returns the number of vertices reached, including s itself.
func (g *Graph) BFSInto(s int, dist []int, queue []int) int {
	for i := range dist {
		dist[i] = Unreachable
	}
	if s < 0 || s >= g.N() {
		return 0
	}
	if cap(queue) < g.N() {
		queue = make([]int, 0, g.N())
	}
	queue = queue[:0]
	dist[s] = 0
	queue = append(queue, s)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w32 := range g.Out(v) {
			w := int(w32)
			if dist[w] == Unreachable {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return len(queue)
}

// ShortestPathCounts runs a BFS from s and returns, for every vertex, its
// distance from s and the number of distinct shortest paths from s. It is the
// forward phase of Brandes' algorithm and is exposed here for tests and
// tooling.
func (g *Graph) ShortestPathCounts(s int) (dist []int, sigma []float64) {
	n := g.N()
	dist = make([]int, n)
	sigma = make([]float64, n)
	g.ShortestPathCountsInto(s, dist, sigma, nil)
	return dist, sigma
}

// ShortestPathCountsInto is the allocation-free form of ShortestPathCounts:
// dist and sigma must have length N(); queue is optional scratch space (a nil
// or undersized queue is allocated internally). It returns the number of
// vertices reached from s.
func (g *Graph) ShortestPathCountsInto(s int, dist []int, sigma []float64, queue []int) int {
	n := g.N()
	for i := range dist {
		dist[i] = Unreachable
	}
	for i := range sigma {
		sigma[i] = 0
	}
	if s < 0 || s >= n {
		return 0
	}
	if cap(queue) < n {
		queue = make([]int, 0, n)
	}
	queue = queue[:0]
	dist[s] = 0
	sigma[s] = 1
	queue = append(queue, s)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		sv := sigma[v]
		for _, w32 := range g.Out(v) {
			w := int(w32)
			if dist[w] == Unreachable {
				dist[w] = dv + 1
				queue = append(queue, w)
			}
			if dist[w] == dv+1 {
				sigma[w] += sv
			}
		}
	}
	return len(queue)
}

// Eccentricity returns the maximum finite BFS distance from s, or 0 if s has
// no reachable vertices.
func (g *Graph) Eccentricity(s int) int {
	max := 0
	for _, d := range g.BFS(s) {
		if d > max {
			max = d
		}
	}
	return max
}
