package graph

// Unreachable is the distance value used for vertices that cannot be reached
// from the BFS source.
const Unreachable = -1

// BFS computes unweighted shortest-path distances from source s following
// out-edges. Unreachable vertices get distance Unreachable.
func (g *Graph) BFS(s int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = Unreachable
	}
	if s < 0 || s >= g.N() {
		return dist
	}
	queue := make([]int, 0, g.N())
	dist[s] = 0
	queue = append(queue, s)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.out[v] {
			if dist[w] == Unreachable {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// ShortestPathCounts runs a BFS from s and returns, for every vertex, its
// distance from s and the number of distinct shortest paths from s. It is the
// forward phase of Brandes' algorithm and is exposed here for tests and
// tooling.
func (g *Graph) ShortestPathCounts(s int) (dist []int, sigma []float64) {
	n := g.N()
	dist = make([]int, n)
	sigma = make([]float64, n)
	for i := range dist {
		dist[i] = Unreachable
	}
	if s < 0 || s >= n {
		return dist, sigma
	}
	dist[s] = 0
	sigma[s] = 1
	queue := make([]int, 0, n)
	queue = append(queue, s)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.out[v] {
			if dist[w] == Unreachable {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
			if dist[w] == dist[v]+1 {
				sigma[w] += sigma[v]
			}
		}
	}
	return dist, sigma
}

// Eccentricity returns the maximum finite BFS distance from s, or 0 if s has
// no reachable vertices.
func (g *Graph) Eccentricity(s int) int {
	max := 0
	for _, d := range g.BFS(s) {
		if d > max {
			max = d
		}
	}
	return max
}
