package graph

import (
	"math"
	"math/rand"
	"sort"
)

// Stats summarises the structural properties reported in Table 2 of the
// paper: number of vertices and edges, average degree, clustering coefficient
// and effective diameter.
type Stats struct {
	N, M              int
	AvgDegree         float64
	Clustering        float64
	EffectiveDiameter float64
}

// ComputeStats measures the graph. The clustering coefficient and effective
// diameter are estimated from at most sampleSize sampled vertices (pass
// sampleSize <= 0 or >= N to use every vertex). The computation is
// deterministic for a given seed.
func (g *Graph) ComputeStats(sampleSize int, seed int64) Stats {
	st := Stats{N: g.N(), M: g.M()}
	if g.N() == 0 {
		return st
	}
	if g.directed {
		st.AvgDegree = float64(g.M()) / float64(g.N())
	} else {
		st.AvgDegree = 2 * float64(g.M()) / float64(g.N())
	}
	st.Clustering = g.ClusteringCoefficient(sampleSize, seed)
	st.EffectiveDiameter = g.EffectiveDiameter(sampleSize, seed)
	return st
}

// ClusteringCoefficient estimates the average local clustering coefficient
// over at most sampleSize vertices (all vertices if sampleSize <= 0 or >= N).
func (g *Graph) ClusteringCoefficient(sampleSize int, seed int64) float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	vertices := sampleVertices(n, sampleSize, seed)
	total := 0.0
	for _, v := range vertices {
		total += g.localClustering(v)
	}
	return total / float64(len(vertices))
}

func (g *Graph) localClustering(v int) float64 {
	// Deduplicate for directed graphs where u may appear in both rows.
	set := make(map[int]struct{}, g.Degree(v)+g.InDegree(v))
	for _, u := range g.Out(v) {
		if int(u) != v {
			set[int(u)] = struct{}{}
		}
	}
	if g.directed {
		for _, u := range g.In(v) {
			if int(u) != v {
				set[int(u)] = struct{}{}
			}
		}
	}
	k := len(set)
	if k < 2 {
		return 0
	}
	links := 0
	uniq := make([]int, 0, k)
	for u := range set {
		uniq = append(uniq, u)
	}
	for i := 0; i < len(uniq); i++ {
		for j := i + 1; j < len(uniq); j++ {
			if g.HasEdge(uniq[i], uniq[j]) || g.HasEdge(uniq[j], uniq[i]) {
				links++
			}
		}
	}
	return 2 * float64(links) / float64(k*(k-1))
}

// EffectiveDiameter estimates the 90th-percentile shortest-path distance over
// reachable pairs, using BFS from at most sampleSize sources.
func (g *Graph) EffectiveDiameter(sampleSize int, seed int64) float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	sources := sampleVertices(n, sampleSize, seed+1)
	var dists []int
	for _, s := range sources {
		for _, d := range g.BFS(s) {
			if d > 0 {
				dists = append(dists, d)
			}
		}
	}
	if len(dists) == 0 {
		return 0
	}
	sort.Ints(dists)
	idx := int(math.Ceil(0.9*float64(len(dists)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(dists) {
		idx = len(dists) - 1
	}
	return float64(dists[idx])
}

// DegreeHistogram returns a map from degree value to the number of vertices
// with that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	hist := make(map[int]int)
	for v := 0; v < g.N(); v++ {
		hist[g.Degree(v)]++
	}
	return hist
}

// MaxDegree returns the maximum out-degree in the graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

func sampleVertices(n, sampleSize int, seed int64) []int {
	if sampleSize <= 0 || sampleSize >= n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	return perm[:sampleSize]
}
