package graph

import (
	"math/rand"
	"testing"
)

// refGraph is the trivially-correct reference the CSR+overlay implementation
// is differentially tested against: plain adjacency maps, no flat storage, no
// overlay, no compaction.
type refGraph struct {
	directed bool
	out      []map[int]bool
	in       []map[int]bool
	m        int
}

func newRefGraph(n int, directed bool) *refGraph {
	r := &refGraph{directed: directed}
	for i := 0; i < n; i++ {
		r.addVertex()
	}
	return r
}

func (r *refGraph) n() int { return len(r.out) }

func (r *refGraph) addVertex() {
	r.out = append(r.out, map[int]bool{})
	r.in = append(r.in, map[int]bool{})
}

func (r *refGraph) hasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= r.n() || v >= r.n() {
		return false
	}
	return r.out[u][v]
}

// addEdge mirrors Graph.AddEdge's contract and reports whether the edge was
// inserted (false means the Graph must have returned an error).
func (r *refGraph) addEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= r.n() || v >= r.n() || u == v || r.out[u][v] {
		return false
	}
	r.out[u][v] = true
	if r.directed {
		r.in[v][u] = true
	} else {
		r.out[v][u] = true
	}
	r.m++
	return true
}

func (r *refGraph) removeEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= r.n() || v >= r.n() || !r.out[u][v] {
		return false
	}
	delete(r.out[u], v)
	if r.directed {
		delete(r.in[v], u)
	} else {
		delete(r.out[v], u)
	}
	r.m--
	return true
}

// checkAgainstRef verifies every observable invariant of g against ref: vertex
// and edge counts, per-vertex degrees, strictly-sorted neighbour rows whose
// element sets match the reference exactly (out and in), and HasEdge over the
// full vertex-pair matrix.
func checkAgainstRef(t *testing.T, g *Graph, ref *refGraph, ctx string) {
	t.Helper()
	if g.N() != ref.n() {
		t.Fatalf("%s: N() = %d, want %d", ctx, g.N(), ref.n())
	}
	if g.M() != ref.m {
		t.Fatalf("%s: M() = %d, want %d", ctx, g.M(), ref.m)
	}
	checkRows := func(name string, row func(int) []int32, want []map[int]bool) {
		for v := 0; v < ref.n(); v++ {
			got := row(v)
			if len(got) != len(want[v]) {
				t.Fatalf("%s: %s(%d) has %d neighbours %v, want %d", ctx, name, v, len(got), got, len(want[v]))
			}
			for i, x := range got {
				if i > 0 && got[i-1] >= x {
					t.Fatalf("%s: %s(%d) not strictly sorted: %v", ctx, name, v, got)
				}
				if !want[v][int(x)] {
					t.Fatalf("%s: %s(%d) contains %d, reference does not", ctx, name, v, x)
				}
			}
		}
	}
	checkRows("Out", g.Out, ref.out)
	if ref.directed {
		checkRows("In", g.In, ref.in)
	} else {
		checkRows("In", g.In, ref.out) // In must coincide with Out
	}
	for v := 0; v < ref.n(); v++ {
		if g.Degree(v) != len(ref.out[v]) {
			t.Fatalf("%s: Degree(%d) = %d, want %d", ctx, v, g.Degree(v), len(ref.out[v]))
		}
	}
	for u := 0; u < ref.n(); u++ {
		for v := 0; v < ref.n(); v++ {
			if got, want := g.HasEdge(u, v), ref.hasEdge(u, v); got != want {
				t.Fatalf("%s: HasEdge(%d,%d) = %v, want %v", ctx, u, v, got, want)
			}
		}
	}
}

// runGraphScript drives one add/remove/grow/compact script through the
// CSR+overlay graph and the map reference in lockstep, checking all
// invariants after every operation. The script format is the fuzz input:
// each operation consumes three bytes (op, u, v).
func runGraphScript(t *testing.T, directed bool, script []byte) {
	t.Helper()
	const n0 = 8
	g := New(n0)
	if directed {
		g = NewDirected(n0)
	}
	ref := newRefGraph(n0, directed)
	for i := 0; i+2 < len(script); i += 3 {
		op, bu, bv := script[i], script[i+1], script[i+2]
		u := int(bu) % (ref.n() + 1)
		v := int(bv) % (ref.n() + 1)
		switch op % 8 {
		case 0, 1, 2: // addition-heavy mix keeps the graphs non-trivial
			wantOK := ref.addEdge(u, v)
			err := g.AddEdge(u, v)
			if (err == nil) != wantOK {
				t.Fatalf("op %d: AddEdge(%d,%d) err=%v, reference ok=%v", i/3, u, v, err, wantOK)
			}
		case 3, 4:
			wantOK := ref.removeEdge(u, v)
			err := g.RemoveEdge(u, v)
			if (err == nil) != wantOK {
				t.Fatalf("op %d: RemoveEdge(%d,%d) err=%v, reference ok=%v", i/3, u, v, err, wantOK)
			}
		case 5: // remove a definitely-existing edge when there is one
			if len(ref.out[u%ref.n()]) > 0 {
				w := u % ref.n()
				var x int
				for x = range ref.out[w] {
					break
				}
				ref.removeEdge(w, x)
				if err := g.RemoveEdge(w, x); err != nil {
					t.Fatalf("op %d: RemoveEdge(%d,%d) of existing edge: %v", i/3, w, x, err)
				}
			}
		case 6:
			if ref.n() < 64 { // keep the full-matrix HasEdge check affordable
				g.AddVertex()
				ref.addVertex()
			}
		case 7:
			// Explicit compaction mid-script: must change nothing observable.
			g.Compact()
			if p := g.OverlayPending(); p != 0 {
				t.Fatalf("op %d: OverlayPending() = %d after Compact", i/3, p)
			}
		}
		checkAgainstRef(t, g, ref, "after op")
	}
	// Terminal compaction plus a final full check: the folded CSR columns
	// must present the same graph the overlay did.
	g.Compact()
	if p := g.OverlayPending(); p != 0 {
		t.Fatalf("OverlayPending() = %d after final Compact", p)
	}
	checkAgainstRef(t, g, ref, "after final Compact")
}

// TestGraphDifferentialRandom replays long random mutation scripts through
// the CSR+overlay graph and the map reference, undirected and directed.
func TestGraphDifferentialRandom(t *testing.T) {
	for _, directed := range []bool{false, true} {
		rng := rand.New(rand.NewSource(97))
		for trial := 0; trial < 8; trial++ {
			script := make([]byte, 3*120)
			rng.Read(script)
			runGraphScript(t, directed, script)
		}
	}
}

// FuzzGraphOverlay is the fuzz entry point over the same harness: `go test
// -fuzz FuzzGraphOverlay ./internal/graph` explores mutation interleavings
// (including overlay/compaction boundaries) beyond the random seeds.
func FuzzGraphOverlay(f *testing.F) {
	f.Add(false, []byte{0, 1, 2, 0, 2, 3, 3, 1, 2, 7, 0, 0})
	f.Add(true, []byte{0, 1, 2, 1, 2, 1, 6, 0, 0, 0, 8, 1, 4, 1, 2, 7, 0, 0})
	f.Add(false, []byte{0, 0, 1, 0, 1, 0, 5, 0, 0, 3, 0, 1})
	f.Fuzz(func(t *testing.T, directed bool, script []byte) {
		if len(script) > 3*400 {
			script = script[:3*400]
		}
		runGraphScript(t, directed, script)
	})
}
