package graph

import "fmt"

// Edge identifies an edge by its endpoints. For undirected graphs the
// canonical form has U < V; Canonical normalises an edge to that form.
type Edge struct {
	U, V int
}

// Canonical returns the edge with endpoints ordered so that U <= V. It is the
// canonical key for undirected edges.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Reverse returns the edge with swapped endpoints.
func (e Edge) Reverse() Edge { return Edge{U: e.V, V: e.U} }

// String implements fmt.Stringer.
func (e Edge) String() string { return fmt.Sprintf("(%d,%d)", e.U, e.V) }

// Update is a single element of an evolving-graph edge stream: the addition
// or removal of one edge, optionally annotated with an arrival time expressed
// in seconds from the beginning of the stream.
type Update struct {
	U, V   int
	Remove bool
	// Time is the arrival time of the update, in seconds since the start of
	// the stream. It is only meaningful for timestamped streams (online
	// experiments); a zero value means "untimed".
	Time float64
}

// Edge returns the edge referenced by the update.
func (u Update) Edge() Edge { return Edge{U: u.U, V: u.V} }

// Addition builds an untimed edge-addition update.
func Addition(u, v int) Update { return Update{U: u, V: v} }

// Removal builds an untimed edge-removal update.
func Removal(u, v int) Update { return Update{U: u, V: v, Remove: true} }

// String implements fmt.Stringer.
func (u Update) String() string {
	op := "+"
	if u.Remove {
		op = "-"
	}
	return fmt.Sprintf("%s(%d,%d)@%.3f", op, u.U, u.V, u.Time)
}
