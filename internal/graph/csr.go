package graph

// This file implements the flat-memory adjacency core: a compressed-sparse-row
// (CSR) base — one offsets column and one neighbours column, both []int32 —
// plus a small per-vertex delta overlay that absorbs in-flight edge additions
// and removals. Reads never allocate: a vertex's neighbourhood is either a
// subslice of the CSR neighbours column or, for a vertex mutated since the
// last compaction, its overlay row. Overlay rows are fully merged and sorted,
// so iteration order and binary-search membership are identical for clean and
// dirty vertices — which keeps the floating-point accumulation order of every
// betweenness traversal a pure function of the edge set (the bit-identity
// invariant introduced with the write-ahead log).
//
// Mutations copy the affected vertex's row into the overlay once per
// compaction epoch and then edit it in place; compaction folds every overlay
// row back into the CSR columns in one sequential pass and recycles the rows.
// The graph compacts itself when the number of absorbed mutations crosses
// compactOverlayFraction of the edge count, and the engine additionally
// compacts after every applied batch, so the overlay stays a few cache lines
// big in steady state.
//
// Readers (Out, In, HasEdge, BFS, Edges, …) never mutate the structure, so
// concurrent reads — the engine's worker pool scanning neighbourhoods in
// parallel — are safe; mutations and Compact belong to the single writer
// between worker tasks, as before.

// compactMinPending is the floor below which the overlay is never compacted
// automatically (mutating tiny graphs would otherwise compact on every edge).
const compactMinPending = 32

// compactOverlayFraction triggers automatic compaction when the mutations
// absorbed since the last compaction exceed M/compactOverlayFraction.
const compactOverlayFraction = 4

// adjacency is one direction of the graph: CSR base plus delta overlay.
type adjacency struct {
	off []int32 // CSR offsets, len n+1
	dat []int32 // CSR neighbours column, sorted per vertex

	ovIdx   []int32   // per vertex: index into ovRows, or -1 when clean
	ovRows  [][]int32 // merged, sorted rows of vertices mutated this epoch
	ovVerts []int32   // vertices with an overlay row, in first-touch order
	spare   [][]int32 // recycled overlay rows

	offSpare []int32 // double buffers so compaction allocates nothing
	datSpare []int32

	pending int // mutations absorbed by the overlay since the last compaction
}

func (a *adjacency) init(n int) {
	a.off = make([]int32, n+1)
	a.ovIdx = make([]int32, n)
	for i := range a.ovIdx {
		a.ovIdx[i] = -1
	}
}

// grow appends vertices up to n (all isolated).
func (a *adjacency) grow(n int) {
	last := a.off[len(a.off)-1]
	for len(a.off)-1 < n {
		a.off = append(a.off, last)
		a.ovIdx = append(a.ovIdx, -1)
	}
}

// row returns the current sorted neighbour row of v without allocating.
func (a *adjacency) row(v int) []int32 {
	if i := a.ovIdx[v]; i >= 0 {
		return a.ovRows[i]
	}
	return a.dat[a.off[v]:a.off[v+1]]
}

// mutableRow returns the overlay-row index of v, materialising the row (one
// copy of the CSR row into a recycled buffer) on first touch in this epoch.
func (a *adjacency) mutableRow(v int) int {
	if i := a.ovIdx[v]; i >= 0 {
		return int(i)
	}
	base := a.dat[a.off[v]:a.off[v+1]]
	var r []int32
	if k := len(a.spare); k > 0 {
		r, a.spare = a.spare[k-1][:0], a.spare[:k-1]
	}
	r = append(r, base...)
	i := len(a.ovRows)
	a.ovRows = append(a.ovRows, r)
	a.ovIdx[v] = int32(i)
	a.ovVerts = append(a.ovVerts, int32(v))
	return i
}

// insert adds x to v's row, keeping it sorted. The caller guarantees x is not
// already present.
func (a *adjacency) insert(v int, x int32) {
	i := a.mutableRow(v)
	r := a.ovRows[i]
	p := searchInt32(r, x)
	r = append(r, 0)
	copy(r[p+1:], r[p:])
	r[p] = x
	a.ovRows[i] = r
	a.pending++
}

// remove deletes x from v's row. The caller guarantees x is present.
func (a *adjacency) remove(v int, x int32) {
	i := a.mutableRow(v)
	r := a.ovRows[i]
	p := searchInt32(r, x)
	if p < len(r) && r[p] == x {
		a.ovRows[i] = append(r[:p], r[p+1:]...)
		a.pending++
	}
}

// contains reports membership of x in v's row by binary search.
func (a *adjacency) contains(v int, x int32) bool {
	r := a.row(v)
	p := searchInt32(r, x)
	return p < len(r) && r[p] == x
}

// compact folds every overlay row back into the CSR columns with one
// sequential rebuild of the offsets and neighbours columns (double-buffered,
// so steady-state compaction performs zero allocations) and recycles the
// overlay rows.
func (a *adjacency) compact() {
	if len(a.ovVerts) == 0 {
		a.pending = 0
		return
	}
	n := len(a.off) - 1
	total := int(a.off[n])
	for _, v := range a.ovVerts {
		i := a.ovIdx[v]
		total += len(a.ovRows[i]) - int(a.off[v+1]-a.off[v])
	}
	newOff := a.offSpare
	if cap(newOff) < n+1 {
		newOff = make([]int32, 0, n+1+n/4)
	}
	newOff = newOff[:0]
	newDat := a.datSpare
	if cap(newDat) < total {
		newDat = make([]int32, 0, total+total/4)
	}
	newDat = newDat[:0]
	newOff = append(newOff, 0)
	for v := 0; v < n; v++ {
		newDat = append(newDat, a.row(v)...)
		newOff = append(newOff, int32(len(newDat)))
	}
	a.offSpare, a.off = a.off, newOff
	a.datSpare, a.dat = a.dat, newDat
	for _, v := range a.ovVerts {
		i := a.ovIdx[v]
		a.spare = append(a.spare, a.ovRows[i][:0])
		a.ovRows[i] = nil
		a.ovIdx[v] = -1
	}
	a.ovRows = a.ovRows[:0]
	a.ovVerts = a.ovVerts[:0]
	a.pending = 0
}

// cloneFrom rebuilds a as a compacted deep copy of src (which is left
// untouched, overlay included).
func (a *adjacency) cloneFrom(src *adjacency) {
	n := len(src.off) - 1
	a.init(n)
	total := int(src.off[n])
	for _, v := range src.ovVerts {
		i := src.ovIdx[v]
		total += len(src.ovRows[i]) - int(src.off[v+1]-src.off[v])
	}
	a.dat = make([]int32, 0, total)
	for v := 0; v < n; v++ {
		a.dat = append(a.dat, src.row(v)...)
		a.off[v+1] = int32(len(a.dat))
	}
}

// searchInt32 returns the smallest index i with s[i] >= x (binary search on a
// sorted row).
func searchInt32(s []int32, x int32) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
