package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Compact binary wire encoding of updates, shared by everything that
// persists or ships an edge stream (the serving layer's write-ahead log, and
// the public streambc.EncodeUpdate/DecodeUpdate API).
//
// Format of one update:
//
//	flags  byte    bit 0: removal; bit 1: a timestamp follows
//	u      varint  (zig-zag — updates with negative endpoints are encodable,
//	v      varint   they are rejected later, by engine validation)
//	time   float64 little-endian IEEE-754 bits, only when flags bit 1 is set
//
// The encoding is self-delimiting: DecodeUpdate reports how many bytes the
// update occupied, so updates can be packed back to back without separators.

const (
	wireRemove = 1 << 0
	wireTimed  = 1 << 1
)

// ErrBadUpdateWire is wrapped by every update decoding failure.
var ErrBadUpdateWire = errors.New("graph: bad update encoding")

// AppendUpdate appends the wire encoding of u to dst and returns the extended
// slice.
func AppendUpdate(dst []byte, u Update) []byte {
	flags := byte(0)
	if u.Remove {
		flags |= wireRemove
	}
	if u.Time != 0 {
		flags |= wireTimed
	}
	dst = append(dst, flags)
	dst = binary.AppendVarint(dst, int64(u.U))
	dst = binary.AppendVarint(dst, int64(u.V))
	if u.Time != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(u.Time))
	}
	return dst
}

// DecodeUpdate decodes one update from the front of b, returning the update
// and the number of bytes it occupied.
func DecodeUpdate(b []byte) (Update, int, error) {
	if len(b) == 0 {
		return Update{}, 0, fmt.Errorf("%w: empty input", ErrBadUpdateWire)
	}
	flags := b[0]
	if flags&^(wireRemove|wireTimed) != 0 {
		return Update{}, 0, fmt.Errorf("%w: unknown flags %#02x", ErrBadUpdateWire, flags)
	}
	n := 1
	u, k := binary.Varint(b[n:])
	if k <= 0 {
		return Update{}, 0, fmt.Errorf("%w: truncated endpoint", ErrBadUpdateWire)
	}
	n += k
	v, k := binary.Varint(b[n:])
	if k <= 0 {
		return Update{}, 0, fmt.Errorf("%w: truncated endpoint", ErrBadUpdateWire)
	}
	n += k
	const maxInt = int64(int(^uint(0) >> 1))
	if u > maxInt || u < -maxInt-1 || v > maxInt || v < -maxInt-1 {
		return Update{}, 0, fmt.Errorf("%w: endpoint out of range", ErrBadUpdateWire)
	}
	upd := Update{U: int(u), V: int(v), Remove: flags&wireRemove != 0}
	if flags&wireTimed != 0 {
		if len(b) < n+8 {
			return Update{}, 0, fmt.Errorf("%w: truncated timestamp", ErrBadUpdateWire)
		}
		upd.Time = math.Float64frombits(binary.LittleEndian.Uint64(b[n:]))
		n += 8
	}
	return upd, n, nil
}
