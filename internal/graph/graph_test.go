package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func path(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1); err != nil {
			t.Fatalf("AddEdge(%d,%d): %v", i, i+1, err)
		}
	}
	return g
}

func TestAddRemoveEdge(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
	if !g.HasEdge(1, 0) {
		t.Fatal("undirected edge should be visible from both endpoints")
	}
	if err := g.RemoveEdge(1, 0); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	if g.HasEdge(0, 1) || g.M() != 1 {
		t.Fatalf("edge not removed: hasEdge=%v m=%d", g.HasEdge(0, 1), g.M())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("self loop error = %v, want ErrSelfLoop", err)
	}
	if err := g.AddEdge(0, 5); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("range error = %v, want ErrVertexRange", err)
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(1, 0); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("duplicate error = %v, want ErrDuplicateEdge", err)
	}
	if err := g.RemoveEdge(1, 2); !errors.Is(err, ErrMissingEdge) {
		t.Fatalf("missing error = %v, want ErrMissingEdge", err)
	}
}

func TestDirectedEdges(t *testing.T) {
	g := NewDirected(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if g.HasEdge(1, 0) {
		t.Fatal("directed edge must not be visible in reverse")
	}
	if got := g.InNeighbors(1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("InNeighbors(1) = %v, want [0]", got)
	}
	if got := g.OutNeighbors(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("OutNeighbors(0) = %v, want [1]", got)
	}
	if err := g.RemoveEdge(0, 1); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	if len(g.InNeighbors(1)) != 0 {
		t.Fatal("in-neighbour list not cleaned after removal")
	}
}

func TestAddVertexAndEnsure(t *testing.T) {
	g := New(0)
	id := g.AddVertex()
	if id != 0 || g.N() != 1 {
		t.Fatalf("AddVertex: id=%d n=%d", id, g.N())
	}
	g.EnsureVertex(5)
	if g.N() != 6 {
		t.Fatalf("EnsureVertex(5): n=%d, want 6", g.N())
	}
	g.EnsureVertex(2) // no shrink
	if g.N() != 6 {
		t.Fatalf("EnsureVertex(2) shrank the graph: n=%d", g.N())
	}
}

func TestApplyUpdate(t *testing.T) {
	g := New(0)
	if err := g.Apply(Addition(0, 3)); err != nil {
		t.Fatalf("Apply addition: %v", err)
	}
	if g.N() != 4 || !g.HasEdge(0, 3) {
		t.Fatalf("apply addition: n=%d hasEdge=%v", g.N(), g.HasEdge(0, 3))
	}
	if err := g.Apply(Removal(0, 3)); err != nil {
		t.Fatalf("Apply removal: %v", err)
	}
	if g.HasEdge(0, 3) {
		t.Fatal("edge still present after applying removal")
	}
}

func TestEdgesCanonicalAndSorted(t *testing.T) {
	g := New(4)
	for _, e := range [][2]int{{2, 1}, {0, 3}, {0, 1}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	edges := g.Edges()
	want := []Edge{{0, 1}, {0, 3}, {1, 2}}
	if len(edges) != len(want) {
		t.Fatalf("Edges() = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges()[%d] = %v, want %v", i, edges[i], want[i])
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := path(t, 5)
	c := g.Clone()
	if err := c.RemoveEdge(0, 1); err != nil {
		t.Fatalf("RemoveEdge on clone: %v", err)
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("mutating the clone affected the original")
	}
	if c.M() != g.M()-1 {
		t.Fatalf("clone m=%d, original m=%d", c.M(), g.M())
	}
}

func TestBFSDistances(t *testing.T) {
	g := path(t, 5)
	d := g.BFS(0)
	for i := 0; i < 5; i++ {
		if d[i] != i {
			t.Fatalf("BFS dist[%d] = %d, want %d", i, d[i], i)
		}
	}
	g2 := New(3)
	if err := g2.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	d2 := g2.BFS(0)
	if d2[2] != Unreachable {
		t.Fatalf("unreachable vertex distance = %d, want %d", d2[2], Unreachable)
	}
}

func TestShortestPathCounts(t *testing.T) {
	// 0-1, 0-2, 1-3, 2-3: two shortest paths from 0 to 3.
	g := New(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	dist, sigma := g.ShortestPathCounts(0)
	if dist[3] != 2 || sigma[3] != 2 {
		t.Fatalf("dist[3]=%d sigma[3]=%g, want 2 and 2", dist[3], sigma[3])
	}
	if sigma[0] != 1 {
		t.Fatalf("sigma[source]=%g, want 1", sigma[0])
	}
}

func TestComponentsAndLCC(t *testing.T) {
	g := New(7)
	// Component A: 0-1-2 triangle. Component B: 3-4. Vertex 5, 6 isolated.
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	comps := g.Components()
	if len(comps) != 4 {
		t.Fatalf("components = %d, want 4", len(comps))
	}
	if len(comps[0]) != 3 {
		t.Fatalf("largest component size = %d, want 3", len(comps[0]))
	}
	lcc, mapping := g.LargestComponent()
	if lcc.N() != 3 || lcc.M() != 3 {
		t.Fatalf("LCC n=%d m=%d, want 3 and 3", lcc.N(), lcc.M())
	}
	if len(mapping) != 3 {
		t.Fatalf("mapping size = %d, want 3", len(mapping))
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported as connected")
	}
	if !lcc.IsConnected() {
		t.Fatal("LCC must be connected")
	}
}

func TestStatsOnKnownGraphs(t *testing.T) {
	// Triangle: clustering 1, avg degree 2, diameter 1.
	tri := New(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := tri.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	st := tri.ComputeStats(0, 1)
	if st.Clustering != 1 {
		t.Fatalf("triangle clustering = %g, want 1", st.Clustering)
	}
	if st.AvgDegree != 2 {
		t.Fatalf("triangle avg degree = %g, want 2", st.AvgDegree)
	}
	if st.EffectiveDiameter != 1 {
		t.Fatalf("triangle effective diameter = %g, want 1", st.EffectiveDiameter)
	}

	// Star K1,4: leaves have clustering 0, centre 0.
	star := New(5)
	for i := 1; i < 5; i++ {
		if err := star.AddEdge(0, i); err != nil {
			t.Fatal(err)
		}
	}
	if cc := star.ClusteringCoefficient(0, 1); cc != 0 {
		t.Fatalf("star clustering = %g, want 0", cc)
	}
	if md := star.MaxDegree(); md != 4 {
		t.Fatalf("star max degree = %d, want 4", md)
	}
	hist := star.DegreeHistogram()
	if hist[1] != 4 || hist[4] != 1 {
		t.Fatalf("star degree histogram = %v", hist)
	}
}

func TestEdgeCanonical(t *testing.T) {
	e := Edge{U: 5, V: 2}
	if c := e.Canonical(); c.U != 2 || c.V != 5 {
		t.Fatalf("Canonical = %v", c)
	}
	if r := e.Reverse(); r.U != 2 || r.V != 5 {
		t.Fatalf("Reverse = %v", r)
	}
}

// Property: after a random sequence of valid additions and removals, M()
// equals the number of distinct present edges and adjacency is symmetric for
// undirected graphs.
func TestQuickRandomMutationInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		present := make(map[Edge]bool)
		for step := 0; step < 200; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			e := (Edge{U: u, V: v}).Canonical()
			if present[e] {
				if rng.Intn(2) == 0 {
					if err := g.RemoveEdge(u, v); err != nil {
						return false
					}
					delete(present, e)
				}
			} else {
				if err := g.AddEdge(u, v); err != nil {
					return false
				}
				present[e] = true
			}
		}
		if g.M() != len(present) {
			return false
		}
		for e := range present {
			if !g.HasEdge(e.U, e.V) || !g.HasEdge(e.V, e.U) {
				return false
			}
		}
		// Symmetry: each neighbour relation holds both ways.
		for v := 0; v < n; v++ {
			for _, w := range g.Neighbors(v) {
				if !g.HasEdge(w, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEccentricity(t *testing.T) {
	g := path(t, 6)
	if ecc := g.Eccentricity(0); ecc != 5 {
		t.Fatalf("eccentricity = %d, want 5", ecc)
	}
	if ecc := g.Eccentricity(3); ecc != 3 {
		t.Fatalf("eccentricity = %d, want 3", ecc)
	}
}
