package graph

import "sort"

// Components labels the (weakly) connected components of the graph and
// returns one slice of vertex identifiers per component, ordered by
// decreasing size (ties broken by smallest contained vertex).
func (g *Graph) Components() [][]int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	queue := make([]int, 0, n)
	visit := func(w int, id int, members []int) []int {
		if comp[w] == -1 {
			comp[w] = id
			queue = append(queue, w)
			members = append(members, w)
		}
		return members
	}
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(comps)
		comp[s] = id
		queue = queue[:0]
		queue = append(queue, s)
		members := []int{s}
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.Out(v) {
				members = visit(int(w), id, members)
			}
			if g.directed {
				// Weak connectivity: follow in-edges too.
				for _, w := range g.In(v) {
					members = visit(int(w), id, members)
				}
			}
		}
		sort.Ints(members)
		comps = append(comps, members)
	}
	sort.SliceStable(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// ComponentCount returns the number of (weakly) connected components.
func (g *Graph) ComponentCount() int { return len(g.Components()) }

// LargestComponent extracts the largest (weakly) connected component as a new
// graph with vertices relabelled to [0, k). The second return value maps new
// identifiers back to the original ones.
func (g *Graph) LargestComponent() (*Graph, []int) {
	comps := g.Components()
	if len(comps) == 0 {
		return newGraph(0, g.directed), nil
	}
	members := comps[0]
	oldToNew := make(map[int]int, len(members))
	for newID, oldID := range members {
		oldToNew[oldID] = newID
	}
	sub := newGraph(len(members), g.directed)
	for newU, oldU := range members {
		for _, oldV := range g.Out(oldU) {
			newV, ok := oldToNew[int(oldV)]
			if !ok {
				continue
			}
			if !g.directed && newU > newV {
				continue
			}
			// Errors cannot occur here: endpoints exist and duplicates are
			// impossible because the source graph is simple.
			_ = sub.AddEdge(newU, newV)
		}
	}
	sub.Compact()
	return sub, members
}

// IsConnected reports whether the graph consists of a single (weakly)
// connected component. The empty graph is considered connected.
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	return len(g.Components()) == 1
}
