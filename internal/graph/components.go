package graph

import "sort"

// Components labels the (weakly) connected components of the graph and
// returns one slice of vertex identifiers per component, ordered by
// decreasing size (ties broken by smallest contained vertex).
func (g *Graph) Components() [][]int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		id := len(comps)
		comp[s] = id
		queue = queue[:0]
		queue = append(queue, s)
		members := []int{s}
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.undirectedNeighbors(v) {
				if comp[w] == -1 {
					comp[w] = id
					queue = append(queue, w)
					members = append(members, w)
				}
			}
		}
		sort.Ints(members)
		comps = append(comps, members)
	}
	sort.SliceStable(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// undirectedNeighbors iterates edges in both directions so that directed
// graphs are treated as their underlying undirected graph (weak
// connectivity).
func (g *Graph) undirectedNeighbors(v int) []int {
	if !g.directed {
		return g.out[v]
	}
	res := make([]int, 0, len(g.out[v])+len(g.in[v]))
	res = append(res, g.out[v]...)
	res = append(res, g.in[v]...)
	return res
}

// ComponentCount returns the number of (weakly) connected components.
func (g *Graph) ComponentCount() int { return len(g.Components()) }

// LargestComponent extracts the largest (weakly) connected component as a new
// graph with vertices relabelled to [0, k). The second return value maps new
// identifiers back to the original ones.
func (g *Graph) LargestComponent() (*Graph, []int) {
	comps := g.Components()
	if len(comps) == 0 {
		return newGraph(0, g.directed), nil
	}
	members := comps[0]
	oldToNew := make(map[int]int, len(members))
	for newID, oldID := range members {
		oldToNew[oldID] = newID
	}
	sub := newGraph(len(members), g.directed)
	for newU, oldU := range members {
		for _, oldV := range g.out[oldU] {
			newV, ok := oldToNew[oldV]
			if !ok {
				continue
			}
			if !g.directed && newU > newV {
				continue
			}
			// Errors cannot occur here: endpoints exist and duplicates are
			// impossible because the source graph is simple.
			_ = sub.AddEdge(newU, newV)
		}
	}
	return sub, members
}

// IsConnected reports whether the graph consists of a single (weakly)
// connected component. The empty graph is considered connected.
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	return len(g.Components()) == 1
}
