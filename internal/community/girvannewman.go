// Package community implements the Girvan-Newman community-detection use
// case of Section 6.3: communities are found by repeatedly removing the edge
// with the highest betweenness, and the incremental framework keeps the edge
// betweenness up to date after every removal instead of recomputing it from
// scratch.
package community

import (
	"fmt"
	"math"

	"streambc/internal/bc"
	"streambc/internal/bdstore"
	"streambc/internal/graph"
	"streambc/internal/incremental"
)

// Method selects how edge betweenness is refreshed after each removal.
type Method int

const (
	// Incremental uses the streaming betweenness framework (the paper's use
	// case): one offline Brandes pass, then one incremental update per
	// removed edge.
	Incremental Method = iota
	// Recompute runs Brandes' algorithm from scratch after every removal,
	// which is the baseline the paper compares against (Figure 9).
	Recompute
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case Incremental:
		return "incremental"
	case Recompute:
		return "recompute"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options controls a Girvan-Newman run.
type Options struct {
	// Method selects incremental maintenance or full recomputation.
	Method Method
	// MaxRemovals stops the decomposition after this many edge removals
	// (0 means continue until no edges remain).
	MaxRemovals int
	// TargetCommunities stops as soon as the graph has split into at least
	// this many connected components (0 means ignore).
	TargetCommunities int
}

// Step records one iteration of the decomposition.
type Step struct {
	// Removed is the edge removed at this step.
	Removed graph.Edge
	// EBC is the betweenness of the removed edge at removal time.
	EBC float64
	// Components is the number of connected components after the removal.
	Components int
	// Modularity is the modularity (w.r.t. the original graph) of the
	// partition induced by the components after the removal.
	Modularity float64
}

// Result is the outcome of a Girvan-Newman decomposition.
type Result struct {
	Steps []Step
	// BestPartition assigns a community identifier to every vertex at the
	// step with the highest modularity.
	BestPartition []int
	// BestModularity is the modularity of BestPartition.
	BestModularity float64
	// BestStep is the index into Steps at which the best partition occurred
	// (-1 when no step improved over the trivial partition).
	BestStep int
}

// Communities returns the vertices of the best partition grouped by
// community.
func (r *Result) Communities() [][]int {
	groups := make(map[int][]int)
	for v, c := range r.BestPartition {
		groups[c] = append(groups[c], v)
	}
	out := make([][]int, 0, len(groups))
	for c := 0; ; c++ {
		members, ok := groups[c]
		if !ok {
			break
		}
		out = append(out, members)
	}
	return out
}

// Detect runs the Girvan-Newman decomposition on a copy of g (the input graph
// is not modified).
func Detect(g *graph.Graph, opts Options) (*Result, error) {
	if g.Directed() {
		return nil, fmt.Errorf("community: Girvan-Newman requires an undirected graph")
	}
	work := g.Clone()
	res := &Result{BestStep: -1}

	var updater *incremental.Updater
	var err error
	if opts.Method == Incremental {
		store, serr := bdstore.Open("", bdstore.Options{NumVertices: work.N()})
		if serr == nil {
			updater, err = incremental.NewUpdater(work, store)
		} else {
			err = serr
		}
		if err != nil {
			return nil, fmt.Errorf("community: initialising incremental updater: %w", err)
		}
	}

	// Baseline modularity of the unsplit graph (a single community, or the
	// pre-existing components).
	membership := componentMembership(work)
	res.BestPartition = append([]int(nil), membership...)
	res.BestModularity = Modularity(g, membership)

	maxRemovals := opts.MaxRemovals
	if maxRemovals <= 0 || maxRemovals > g.M() {
		maxRemovals = g.M()
	}

	for step := 0; step < maxRemovals && work.M() > 0; step++ {
		var ebc map[graph.Edge]float64
		if opts.Method == Incremental {
			ebc = updater.EBC()
		} else {
			ebc = bc.Compute(work).EBC
		}
		target, score, ok := highestEdge(work, ebc)
		if !ok {
			break
		}
		if opts.Method == Incremental {
			if err := updater.Apply(graph.Removal(target.U, target.V)); err != nil {
				return nil, fmt.Errorf("community: removing %v: %w", target, err)
			}
		} else if err := work.RemoveEdge(target.U, target.V); err != nil {
			return nil, fmt.Errorf("community: removing %v: %w", target, err)
		}

		membership = componentMembership(work)
		q := Modularity(g, membership)
		comps := 0
		for _, c := range membership {
			if c+1 > comps {
				comps = c + 1
			}
		}
		res.Steps = append(res.Steps, Step{Removed: target, EBC: score, Components: comps, Modularity: q})
		if q > res.BestModularity {
			res.BestModularity = q
			res.BestPartition = append(res.BestPartition[:0], membership...)
			res.BestStep = len(res.Steps) - 1
		}
		if opts.TargetCommunities > 0 && comps >= opts.TargetCommunities {
			break
		}
	}
	return res, nil
}

// highestEdge returns the existing edge with the largest betweenness,
// breaking ties deterministically by canonical edge order.
func highestEdge(g *graph.Graph, ebc map[graph.Edge]float64) (graph.Edge, float64, bool) {
	best := graph.Edge{U: -1, V: -1}
	bestScore := math.Inf(-1)
	found := false
	for _, e := range g.Edges() {
		score := ebc[bc.EdgeKey(g, e.U, e.V)]
		switch {
		case !found, score > bestScore:
			best, bestScore, found = e, score, true
		case score == bestScore && less(e, best):
			best = e
		}
	}
	return best, bestScore, found
}

func less(a, b graph.Edge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// componentMembership labels every vertex with the index of its connected
// component (components ordered by decreasing size).
func componentMembership(g *graph.Graph) []int {
	membership := make([]int, g.N())
	for i, comp := range g.Components() {
		for _, v := range comp {
			membership[v] = i
		}
	}
	return membership
}

// Modularity computes Newman's modularity of a vertex partition with respect
// to graph g: Q = sum_c (e_c/m - (d_c/2m)^2), where e_c is the number of
// edges inside community c and d_c the total degree of its vertices.
func Modularity(g *graph.Graph, membership []int) float64 {
	m := float64(g.M())
	if m == 0 {
		return 0
	}
	inside := make(map[int]float64)
	degree := make(map[int]float64)
	for _, e := range g.Edges() {
		cu, cv := membership[e.U], membership[e.V]
		if cu == cv {
			inside[cu]++
		}
		degree[cu]++
		degree[cv]++
	}
	q := 0.0
	for c, d := range degree {
		q += inside[c]/m - (d/(2*m))*(d/(2*m))
	}
	return q
}
