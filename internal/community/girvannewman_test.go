package community

import (
	"math"
	"testing"

	"streambc/internal/gen"
	"streambc/internal/graph"
)

// twoCliques builds two k-cliques joined by a single bridge edge.
func twoCliques(t *testing.T, k int) *graph.Graph {
	t.Helper()
	g := graph.New(2 * k)
	addClique := func(offset int) {
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if err := g.AddEdge(offset+i, offset+j); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	addClique(0)
	addClique(k)
	if err := g.AddEdge(k-1, k); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBridgeRemovedFirst(t *testing.T) {
	g := twoCliques(t, 5)
	for _, method := range []Method{Incremental, Recompute} {
		res, err := Detect(g, Options{Method: method, MaxRemovals: 1})
		if err != nil {
			t.Fatalf("%v: Detect: %v", method, err)
		}
		if len(res.Steps) != 1 {
			t.Fatalf("%v: steps = %d, want 1", method, len(res.Steps))
		}
		if got := res.Steps[0].Removed.Canonical(); got.U != 4 || got.V != 5 {
			t.Fatalf("%v: removed %v, want the bridge (4,5)", method, got)
		}
		if res.Steps[0].Components != 2 {
			t.Fatalf("%v: components = %d, want 2", method, res.Steps[0].Components)
		}
		if res.BestModularity <= 0.3 {
			t.Fatalf("%v: best modularity = %g, want > 0.3", method, res.BestModularity)
		}
	}
}

func TestIncrementalAndRecomputeAgreeOnCliquePair(t *testing.T) {
	g := twoCliques(t, 4)
	inc, err := Detect(g, Options{Method: Incremental, TargetCommunities: 2})
	if err != nil {
		t.Fatalf("incremental: %v", err)
	}
	rec, err := Detect(g, Options{Method: Recompute, TargetCommunities: 2})
	if err != nil {
		t.Fatalf("recompute: %v", err)
	}
	if len(inc.Steps) != len(rec.Steps) {
		t.Fatalf("step counts differ: %d vs %d", len(inc.Steps), len(rec.Steps))
	}
	for i := range inc.Steps {
		if inc.Steps[i].Removed.Canonical() != rec.Steps[i].Removed.Canonical() {
			t.Fatalf("step %d differs: %v vs %v", i, inc.Steps[i].Removed, rec.Steps[i].Removed)
		}
		if math.Abs(inc.Steps[i].EBC-rec.Steps[i].EBC) > 1e-6*(1+math.Abs(rec.Steps[i].EBC)) {
			t.Fatalf("step %d EBC differs: %g vs %g", i, inc.Steps[i].EBC, rec.Steps[i].EBC)
		}
	}
}

func TestPlantedPartitionRecovery(t *testing.T) {
	g, truth := gen.PlantedPartition(3, 8, 0.85, 0.02, 11)
	lcc := gen.Connected(g)
	// Work on the original (generated) graph if it is connected; otherwise
	// skip: the planted parameters virtually guarantee connectivity.
	if lcc.N() != g.N() {
		t.Skip("planted graph unexpectedly disconnected")
	}
	res, err := Detect(g, Options{Method: Incremental, TargetCommunities: 3, MaxRemovals: g.M()})
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	if res.BestModularity < 0.4 {
		t.Fatalf("best modularity = %g, want >= 0.4", res.BestModularity)
	}
	// The best partition must be highly consistent with the ground truth:
	// vertices in the same true community should mostly share a label.
	agree, total := 0, 0
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			same := truth[u] == truth[v]
			got := res.BestPartition[u] == res.BestPartition[v]
			total++
			if same == got {
				agree++
			}
		}
	}
	if ratio := float64(agree) / float64(total); ratio < 0.85 {
		t.Fatalf("pair agreement with planted communities = %g, want >= 0.85", ratio)
	}
}

func TestModularity(t *testing.T) {
	g := twoCliques(t, 4)
	// Perfect split: each clique a community.
	membership := make([]int, g.N())
	for v := range membership {
		if v >= 4 {
			membership[v] = 1
		}
	}
	q := Modularity(g, membership)
	if q <= 0.3 || q >= 1 {
		t.Fatalf("two-clique modularity = %g, want in (0.3, 1)", q)
	}
	// Single community has modularity 0 (by definition of the formula).
	single := make([]int, g.N())
	if q := Modularity(g, single); math.Abs(q) > 1e-12 {
		t.Fatalf("single-community modularity = %g, want 0", q)
	}
	// Empty graph.
	if q := Modularity(graph.New(3), single[:3]); q != 0 {
		t.Fatalf("empty graph modularity = %g", q)
	}
}

func TestDetectOptionsAndErrors(t *testing.T) {
	if _, err := Detect(graph.NewDirected(3), Options{}); err == nil {
		t.Fatal("directed graphs must be rejected")
	}
	g := twoCliques(t, 3)
	res, err := Detect(g, Options{Method: Recompute, MaxRemovals: 2})
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}
	if len(res.Steps) != 2 {
		t.Fatalf("MaxRemovals not honoured: %d steps", len(res.Steps))
	}
	// Full decomposition terminates and removes every edge.
	full, err := Detect(g, Options{Method: Recompute})
	if err != nil {
		t.Fatalf("Detect full: %v", err)
	}
	if len(full.Steps) != g.M() {
		t.Fatalf("full decomposition removed %d edges, want %d", len(full.Steps), g.M())
	}
	if groups := full.Communities(); len(groups) == 0 {
		t.Fatal("no communities reported")
	}
	if Incremental.String() != "incremental" || Recompute.String() != "recompute" || Method(9).String() == "" {
		t.Fatal("Method.String misbehaves")
	}
}
