package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewSpanContext()
	if !sc.Valid() {
		t.Fatal("fresh span context invalid")
	}
	tp := sc.Traceparent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("malformed traceparent %q", tp)
	}
	got, err := ParseTraceparent(tp)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", tp, err)
	}
	if got != sc {
		t.Fatalf("round trip changed the context: %+v vs %+v", got, sc)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := NewSpanContext().Traceparent()
	zeroTrace := "00-" + strings.Repeat("0", 32) + "-" + NewSpanID().String() + "-01"
	zeroSpan := "00-" + NewTraceID().String() + "-" + strings.Repeat("0", 16) + "-01"
	for _, bad := range []string{
		"",
		"00",
		valid[:54],                          // truncated
		valid + "0",                         // too long
		"01" + valid[2:],                    // unknown version
		strings.Replace(valid, "-", "_", 1), // wrong separator
		"00-" + strings.Repeat("g", 32) + valid[35:],      // non-hex trace ID
		valid[:36] + strings.Repeat("g", 16) + valid[52:], // non-hex span ID
		valid[:53] + "zz", // non-hex flags
		zeroTrace,
		zeroSpan,
	} {
		if sc, err := ParseTraceparent(bad); err == nil {
			t.Fatalf("ParseTraceparent(%q) accepted: %+v", bad, sc)
		}
	}
}

func TestInjectAndExtractTrace(t *testing.T) {
	h := http.Header{}
	sc := NewSpanContext()
	InjectTrace(h, sc)
	if got := TraceFromHeader(h); got != sc {
		t.Fatalf("header round trip: %+v vs %+v", got, sc)
	}

	// An invalid context injects nothing.
	empty := http.Header{}
	InjectTrace(empty, SpanContext{})
	if empty.Get(TraceparentHeader) != "" {
		t.Fatal("invalid context injected a traceparent")
	}
	// Missing or malformed headers extract the zero context.
	if got := TraceFromHeader(empty); got.Valid() {
		t.Fatalf("missing header produced a valid context: %+v", got)
	}
	empty.Set(TraceparentHeader, "garbage")
	if got := TraceFromHeader(empty); got.Valid() {
		t.Fatalf("malformed header produced a valid context: %+v", got)
	}
}

func TestChildKeepsTraceMintsSpan(t *testing.T) {
	root := NewSpanContext()
	child := root.Child()
	if child.TraceID != root.TraceID {
		t.Fatal("child left the trace")
	}
	if child.SpanID == root.SpanID || child.SpanID.IsZero() {
		t.Fatalf("child span ID %s not fresh", child.SpanID)
	}
}

func TestContextWithSpanRoundTrip(t *testing.T) {
	sc := NewSpanContext()
	ctx := ContextWithSpan(context.Background(), sc)
	if got := SpanFromContext(ctx); got != sc {
		t.Fatalf("context round trip: %+v vs %+v", got, sc)
	}
	if got := SpanFromContext(context.Background()); got.Valid() {
		t.Fatalf("bare context produced a valid span context: %+v", got)
	}
}

func TestTraceIDJSONRoundTrip(t *testing.T) {
	type pair struct {
		Trace TraceID `json:"trace"`
		Span  SpanID  `json:"span"`
	}
	in := pair{Trace: NewTraceID(), Span: NewSpanID()}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out pair
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("JSON round trip changed IDs: %+v vs %+v", out, in)
	}
	var bad pair
	if err := json.Unmarshal([]byte(`{"trace":"xyz","span":""}`), &bad); err == nil {
		t.Fatal("malformed trace ID accepted")
	}
}

func TestSpanRingByTraceAndEviction(t *testing.T) {
	ring := NewSpanRing(4)
	t0 := time.Unix(1000, 0)
	a, b := NewTraceID(), NewTraceID()
	add := func(id TraceID, name string, at time.Duration) {
		ring.Add(Span{TraceID: id, SpanID: NewSpanID(), Name: name, Start: t0.Add(at)})
	}
	// Insert out of start order: ByTrace must sort by start time.
	add(a, "second", 2*time.Second)
	add(b, "other", 1*time.Second)
	add(a, "first", 1*time.Second)

	got := ring.ByTrace(a)
	if len(got) != 2 || got[0].Name != "first" || got[1].Name != "second" {
		t.Fatalf("ByTrace(a) = %+v, want [first second]", got)
	}
	if got := ring.ByTrace(b); len(got) != 1 || got[0].Name != "other" {
		t.Fatalf("ByTrace(b) = %+v", got)
	}

	// Three more inserts overflow the 4-slot ring, evicting the two oldest
	// inserts (a/second and b/other).
	add(a, "third", 3*time.Second)
	add(a, "fourth", 4*time.Second)
	add(a, "fifth", 5*time.Second)
	if ring.Len() != 4 {
		t.Fatalf("Len = %d, want the capacity 4", ring.Len())
	}
	got = ring.ByTrace(a)
	if len(got) != 4 || got[0].Name != "first" || got[3].Name != "fifth" {
		t.Fatalf("ByTrace(a) after eviction = %+v", got)
	}
	if got := ring.ByTrace(b); len(got) != 0 {
		t.Fatalf("evicted trace still served: %+v", got)
	}

	// LastInto is newest first and reuses dst.
	dst := ring.LastInto(nil, 2)
	if len(dst) != 2 || dst[0].Name != "fifth" || dst[1].Name != "fourth" {
		t.Fatalf("LastInto = %+v", dst)
	}
	dst = ring.LastInto(dst[:0], -1)
	if len(dst) != 4 {
		t.Fatalf("LastInto(-1) returned %d spans, want all 4", len(dst))
	}
}
