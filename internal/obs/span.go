package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Distributed tracing for the sharded cluster. One ingest through bcrouter
// spans several processes — router fanout, per-shard WAL append and apply,
// replica tailing — and the span model here is what stitches those hops back
// into one trace: a 16-byte trace ID minted at the root, an 8-byte span ID
// per unit of work, and a W3C-traceparent-style header that carries the
// (trace, parent span) pair across every HTTP hop.

// TraceID identifies one distributed trace: every span recorded for one
// ingest, on any process, carries the same TraceID.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

// NewTraceID returns a cryptographically random, non-zero trace ID.
func NewTraceID() TraceID {
	var id TraceID
	fill(id[:])
	return id
}

// NewSpanID returns a cryptographically random, non-zero span ID.
func NewSpanID() SpanID {
	var id SpanID
	fill(id[:])
	return id
}

// fill fills b with random bytes and guarantees it is non-zero (the all-zero
// ID is the traceparent "invalid" sentinel).
func fill(b []byte) {
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("obs: reading random ID bytes: %v", err))
	}
	for _, x := range b {
		if x != 0 {
			return
		}
	}
	b[len(b)-1] = 1
}

// IsZero reports whether the ID is the invalid all-zero value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is the invalid all-zero value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// MarshalJSON renders the ID as a hex string.
func (id TraceID) MarshalJSON() ([]byte, error) { return json.Marshal(id.String()) }

// UnmarshalJSON parses a 32-hex-digit string.
func (id *TraceID) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseTraceID(s)
	if err != nil {
		return err
	}
	*id = parsed
	return nil
}

// MarshalJSON renders the ID as a hex string.
func (id SpanID) MarshalJSON() ([]byte, error) { return json.Marshal(id.String()) }

// UnmarshalJSON parses a 16-hex-digit string.
func (id *SpanID) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, err := ParseSpanID(s)
	if err != nil {
		return err
	}
	*id = parsed
	return nil
}

// ParseTraceID parses 32 hex digits into a TraceID.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if len(s) != 2*len(id) {
		return id, fmt.Errorf("obs: trace ID %q: want %d hex digits", s, 2*len(id))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("obs: trace ID %q: %w", s, err)
	}
	return id, nil
}

// ParseSpanID parses 16 hex digits into a SpanID.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 2*len(id) {
		return id, fmt.Errorf("obs: span ID %q: want %d hex digits", s, 2*len(id))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, fmt.Errorf("obs: span ID %q: %w", s, err)
	}
	return id, nil
}

// SpanContext is the propagated part of a span: which trace it belongs to and
// which span is the parent of any work done under it.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
}

// Valid reports whether both IDs are non-zero (an invalid context means "no
// caller trace": the receiver starts a fresh root).
func (sc SpanContext) Valid() bool { return !sc.TraceID.IsZero() && !sc.SpanID.IsZero() }

// NewSpanContext mints a fresh root context: new trace, new root span.
func NewSpanContext() SpanContext {
	return SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
}

// Child returns a context in the same trace with a fresh span ID — the
// context handed to a sub-operation so its spans parent under sc.SpanID.
func (sc SpanContext) Child() SpanContext {
	return SpanContext{TraceID: sc.TraceID, SpanID: NewSpanID()}
}

// TraceparentHeader is the HTTP header carrying the span context, in the W3C
// Trace Context format: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>.
const TraceparentHeader = "Traceparent"

// Traceparent renders the context as a version-00 traceparent value with the
// sampled flag set.
func (sc SpanContext) Traceparent() string {
	return "00-" + sc.TraceID.String() + "-" + sc.SpanID.String() + "-01"
}

// ParseTraceparent parses a version-00 traceparent value. Unknown versions,
// malformed fields and all-zero IDs return an error.
func ParseTraceparent(s string) (SpanContext, error) {
	var sc SpanContext
	// 2 (version) + 1 + 32 (trace) + 1 + 16 (span) + 1 + 2 (flags)
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return sc, fmt.Errorf("obs: malformed traceparent %q", s)
	}
	if s[:2] != "00" {
		return sc, fmt.Errorf("obs: unsupported traceparent version %q", s[:2])
	}
	tid, err := ParseTraceID(s[3:35])
	if err != nil {
		return sc, err
	}
	sid, err := ParseSpanID(s[36:52])
	if err != nil {
		return sc, err
	}
	if _, err := hex.DecodeString(s[53:55]); err != nil {
		return sc, fmt.Errorf("obs: malformed traceparent flags %q", s[53:55])
	}
	sc = SpanContext{TraceID: tid, SpanID: sid}
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("obs: traceparent %q has a zero ID", s)
	}
	return sc, nil
}

// InjectTrace writes the context into h as a traceparent header. An invalid
// context injects nothing.
func InjectTrace(h http.Header, sc SpanContext) {
	if sc.Valid() {
		h.Set(TraceparentHeader, sc.Traceparent())
	}
}

// TraceFromHeader extracts the span context from an incoming request's
// headers. A missing or malformed header returns the invalid zero context —
// callers treat that as "start a fresh trace".
func TraceFromHeader(h http.Header) SpanContext {
	v := h.Get(TraceparentHeader)
	if v == "" {
		return SpanContext{}
	}
	sc, err := ParseTraceparent(v)
	if err != nil {
		return SpanContext{}
	}
	return sc
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sc, for in-process hops that cross an
// interface boundary without HTTP headers (the router handing a per-shard
// child context to a ShardConn).
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext extracts the span context from ctx, or the invalid zero
// context when none was attached.
func SpanFromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}

// Span is one completed unit of work within a trace. ParentID is zero for a
// trace's root span; Attrs carries small string-valued facts (sequence
// numbers, shard indexes, cache hits) for the debug endpoint.
type Span struct {
	TraceID   TraceID           `json:"trace_id"`
	SpanID    SpanID            `json:"span_id"`
	ParentID  SpanID            `json:"parent_id"`
	Component string            `json:"component"`
	Name      string            `json:"name"`
	Start     time.Time         `json:"start"`
	End       time.Time         `json:"end"`
	Attrs     map[string]string `json:"attrs,omitempty"`
	Error     string            `json:"error,omitempty"`
}

// Duration returns the span's wall-clock length.
func (s Span) Duration() time.Duration { return s.End.Sub(s.Start) }

// SpanRing is a fixed-capacity ring of the most recently completed spans,
// safe for concurrent use. It is the per-process span store the debug
// endpoints read from; old spans are evicted, never flushed anywhere.
type SpanRing struct {
	mu   sync.Mutex
	buf  []Span
	next int
	n    int
}

// DefaultSpanCapacity is the span ring size used when a capacity < 1 is
// requested: ~8 spans per ingest across a deep cluster, times the trace
// ring's default of 256 traces.
const DefaultSpanCapacity = 2048

// NewSpanRing returns a ring holding up to capacity spans (values < 1 mean
// DefaultSpanCapacity).
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 1 {
		capacity = DefaultSpanCapacity
	}
	return &SpanRing{buf: make([]Span, capacity)}
}

// Add stores one completed span, evicting the oldest when full.
func (r *SpanRing) Add(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// ByTrace returns every held span of the given trace, oldest first (start
// order within the process; cross-process ordering is the caller's stitch).
func (r *SpanRing) ByTrace(id TraceID) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Span
	for i := r.n; i >= 1; i-- {
		idx := (r.next - i + len(r.buf)) % len(r.buf)
		if r.buf[idx].TraceID == id {
			out = append(out, r.buf[idx])
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// LastInto appends up to n spans, newest first, to dst and returns the
// extended slice (dst may be nil; its capacity is reused).
func (r *SpanRing) LastInto(dst []Span, n int) []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.n || n < 0 {
		n = r.n
	}
	for i := 1; i <= n; i++ {
		idx := (r.next - i + len(r.buf)) % len(r.buf)
		dst = append(dst, r.buf[idx])
	}
	return dst
}

// Len returns how many spans the ring currently holds.
func (r *SpanRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
