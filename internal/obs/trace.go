package obs

import (
	"sync"
	"time"
)

// Stage names of the ingest trace, in pipeline order. Every accepted drain
// moves enqueue → (WAL durable) → engine applied → snapshot-visible; the
// same names label the streambc_ingest_stage_seconds histograms.
const (
	StageWALDurable = "wal_durable" // enqueue → record durable in the WAL
	StageApplied    = "applied"     // durable (or enqueue) → engine applied
	StageVisible    = "visible"     // applied → published in the read view
	StageTotal      = "total"       // enqueue → visible
)

// IngestTrace records the lifecycle of one applied drain: when its oldest
// update was enqueued and when it passed each pipeline stage. A zero
// WALDurableAt means the server runs without a write-ahead log. ID is a
// monotonic sequence assigned by the ring on Add.
type IngestTrace struct {
	ID           uint64    `json:"id"`
	TraceID      TraceID   `json:"trace_id"`
	Updates      int       `json:"updates"`
	EnqueuedAt   time.Time `json:"enqueued_at"`
	WALDurableAt time.Time `json:"-"`
	AppliedAt    time.Time `json:"-"`
	VisibleAt    time.Time `json:"-"`
	Error        string    `json:"error,omitempty"`
}

// Stages returns the per-stage durations in seconds, keyed by the Stage*
// names. Stages the drain never reached (an error mid-pipeline, or no WAL)
// are absent.
func (t IngestTrace) Stages() map[string]float64 {
	out := make(map[string]float64, 4)
	last := t.EnqueuedAt
	if !t.WALDurableAt.IsZero() {
		out[StageWALDurable] = t.WALDurableAt.Sub(last).Seconds()
		last = t.WALDurableAt
	}
	if !t.AppliedAt.IsZero() {
		out[StageApplied] = t.AppliedAt.Sub(last).Seconds()
		last = t.AppliedAt
	}
	if !t.VisibleAt.IsZero() {
		out[StageVisible] = t.VisibleAt.Sub(last).Seconds()
		out[StageTotal] = t.VisibleAt.Sub(t.EnqueuedAt).Seconds()
	}
	return out
}

// TraceRing is a fixed-capacity ring buffer of the most recent ingest
// traces, safe for concurrent use. The pipeline adds one trace per applied
// drain; the debug endpoint reads the newest N.
type TraceRing struct {
	mu     sync.Mutex
	buf    []IngestTrace
	next   int
	n      int
	nextID uint64
}

// NewTraceRing returns a ring holding up to capacity traces (values < 1 mean
// the default of 256).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 256
	}
	return &TraceRing{buf: make([]IngestTrace, capacity)}
}

// Add assigns the next trace ID, stores the trace (evicting the oldest when
// full) and returns the stored record.
func (r *TraceRing) Add(t IngestTrace) IngestTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	t.ID = r.nextID
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	return t
}

// Last returns up to n traces, newest first. It allocates a fresh slice per
// call; the debug handler uses LastInto with a pooled buffer instead.
func (r *TraceRing) Last(n int) []IngestTrace {
	return r.LastInto(nil, n)
}

// LastInto appends up to n traces, newest first, to dst and returns the
// extended slice (dst may be nil; its capacity is reused).
func (r *TraceRing) LastInto(dst []IngestTrace, n int) []IngestTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.n || n < 0 {
		n = r.n
	}
	for i := 1; i <= n; i++ {
		idx := (r.next - i + len(r.buf)) % len(r.buf)
		dst = append(dst, r.buf[idx])
	}
	return dst
}

// Len returns how many traces the ring currently holds.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
