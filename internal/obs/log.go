package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// Shared structured-logging attribute keys, so log lines from different
// components correlate: every long-lived loop logs its component name, WAL
// positions use KeySeq, and ingest traces carry KeyTrace (the TraceRing ID).
const (
	KeyComponent = "component"
	KeySeq       = "seq"
	KeyTrace     = "trace"
)

// ParseLevel maps a -log-level flag value to a slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
	}
}

// NewLogger builds a logger for the -log-level / -log-format flag pair.
// Format is "text" (default) or "json".
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}

// Nop returns a logger that discards everything, for library code whose
// caller supplied no logger. (slog.DiscardHandler needs Go 1.24; this repo
// still builds on 1.23.)
func Nop() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }
