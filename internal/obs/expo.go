package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Prometheus text-exposition parsing, for the router's federation plane: the
// router scrapes each shard's /metrics, parses the families, stamps a shard
// label onto every series and re-renders everything as one exposition. The
// parser is deliberately strict about the invariants our own renderer
// guarantees (HELP before TYPE before samples, one block per family) so a
// malformed shard exposition fails the merge loudly instead of producing a
// silently unscrapable federated page.

// ExpoSample is one parsed sample line: a metric name (which may carry a
// histogram/summary suffix), its rendered label set (`{k="v",...}` or "") and
// the value text exactly as exposed.
type ExpoSample struct {
	Name   string
	Labels string
	Value  string
}

// ExpoFamily is one parsed metric family: the HELP/TYPE header plus every
// sample that belongs to it, in exposition order.
type ExpoFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []ExpoSample
}

// expoTypes are the metric types our renderer emits; anything else in a
// scraped exposition is a protocol error.
var expoTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// ParseExposition parses a Prometheus text exposition into its families. It
// enforces the shape the obs renderer produces: every family announces HELP
// then TYPE before its samples, sample names resolve to a declared family
// (directly or via the _bucket/_sum/_count suffixes of histograms and
// summaries), and every value parses as a float.
func ParseExposition(body []byte) ([]*ExpoFamily, error) {
	var (
		fams   []*ExpoFamily
		byName = make(map[string]*ExpoFamily)
		cur    *ExpoFamily // family of the most recent HELP, awaiting TYPE
	)
	for ln, line := range strings.Split(string(body), "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("obs: exposition line %d: HELP without a name", ln+1)
			}
			if _, dup := byName[name]; dup {
				return nil, fmt.Errorf("obs: exposition line %d: duplicate family %q", ln+1, name)
			}
			cur = &ExpoFamily{Name: name, Help: help}
			byName[name] = cur
			fams = append(fams, cur)
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("obs: exposition line %d: malformed TYPE", ln+1)
			}
			if cur == nil || cur.Name != fields[0] || cur.Type != "" {
				return nil, fmt.Errorf("obs: exposition line %d: TYPE %q without a preceding HELP", ln+1, fields[0])
			}
			if !expoTypes[fields[1]] {
				return nil, fmt.Errorf("obs: exposition line %d: unknown type %q", ln+1, fields[1])
			}
			cur.Type = fields[1]
		case strings.HasPrefix(line, "#"):
			// Other comments are legal exposition content; skip them.
		default:
			s, err := parseExpoSample(line)
			if err != nil {
				return nil, fmt.Errorf("obs: exposition line %d: %w", ln+1, err)
			}
			fam := byName[s.Name]
			if fam == nil {
				fam = byName[expoFamilyName(s.Name)]
			}
			if fam == nil {
				return nil, fmt.Errorf("obs: exposition line %d: sample %q has no family header", ln+1, s.Name)
			}
			if fam.Type == "" {
				return nil, fmt.Errorf("obs: exposition line %d: family %q has HELP but no TYPE", ln+1, fam.Name)
			}
			fam.Samples = append(fam.Samples, s)
		}
	}
	return fams, nil
}

// parseExpoSample splits one sample line into name, label block and value.
// Label values may contain spaces and escaped quotes, so the value is taken
// from the right and the labels are the braced middle.
func parseExpoSample(line string) (ExpoSample, error) {
	var s ExpoSample
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndex(line, "}")
		if j < i {
			return s, fmt.Errorf("malformed sample %q", line)
		}
		s.Name = line[:i]
		s.Labels = line[i : j+1]
		rest = strings.TrimSpace(line[j+1:])
	} else {
		var ok bool
		s.Name, rest, ok = strings.Cut(line, " ")
		if !ok {
			return s, fmt.Errorf("sample %q has no value", line)
		}
	}
	// Drop an optional timestamp: "value [timestamp]".
	val, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
	if val == "" {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	if _, err := strconv.ParseFloat(val, 64); err != nil {
		return s, fmt.Errorf("sample %q: value %q is not a float", line, val)
	}
	if s.Name == "" || !nameRE.MatchString(s.Name) {
		return s, fmt.Errorf("sample %q has an invalid metric name", line)
	}
	s.Value = val
	return s, nil
}

// expoFamilyName maps a sample name to its family name, resolving the
// histogram/summary suffixes.
func expoFamilyName(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf)
		}
	}
	return name
}

// MergeLabels inserts one more key="value" pair into an already-rendered
// label block ("" or `{...}`), keeping the result a valid exposition label
// set. It is the federation stamp: MergeLabels(s.Labels, "shard", "2").
func MergeLabels(labels, key, value string) string {
	return mergeLabel(labels, key, escapeLabel(value))
}

// WriteExposition renders families back into text-exposition form: one
// HELP/TYPE block per family followed by its samples, in slice order — the
// inverse of ParseExposition, used to emit the federated page.
func WriteExposition(w io.Writer, fams []*ExpoFamily) error {
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(f.Name)
		if f.Help != "" {
			b.WriteByte(' ')
			b.WriteString(f.Help)
		}
		b.WriteString("\n# TYPE ")
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Type)
		b.WriteByte('\n')
		for _, s := range f.Samples {
			b.WriteString(s.Name)
			b.WriteString(s.Labels)
			b.WriteByte(' ')
			b.WriteString(s.Value)
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}
