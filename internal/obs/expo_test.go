package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestParseExpositionOfOwnRegistry(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_ops_total", "Operations.").Add(3)
	reg.Gauge("test_depth", "Depth.").Set(2)
	reg.CounterVec("test_hits_total", "Hits.", "path").With("a").Inc()
	reg.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1}).Observe(0.5)

	var buf bytes.Buffer
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("own exposition does not parse: %v\n%s", err, buf.String())
	}
	byName := map[string]*ExpoFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["test_ops_total"]; f == nil || f.Type != "counter" || len(f.Samples) != 1 || f.Samples[0].Value != "3" {
		t.Fatalf("test_ops_total parsed as %+v", f)
	}
	hist := byName["test_latency_seconds"]
	if hist == nil || hist.Type != "histogram" {
		t.Fatalf("histogram family parsed as %+v", hist)
	}
	// The _bucket/_sum/_count samples must resolve to the histogram family.
	names := map[string]bool{}
	for _, s := range hist.Samples {
		names[s.Name] = true
	}
	for _, want := range []string{"test_latency_seconds_bucket", "test_latency_seconds_sum", "test_latency_seconds_count"} {
		if !names[want] {
			t.Fatalf("histogram sample %s missing (have %v)", want, names)
		}
	}
}

func TestWriteExpositionRoundTrip(t *testing.T) {
	fams := []*ExpoFamily{
		{Name: "alpha_total", Help: "Alpha with spaces in help.", Type: "counter", Samples: []ExpoSample{
			{Name: "alpha_total", Labels: "", Value: "7"},
			{Name: "alpha_total", Labels: `{shard="1",path="a b"}`, Value: "2.5"},
		}},
		{Name: "beta", Help: "", Type: "gauge", Samples: []ExpoSample{
			{Name: "beta", Labels: `{x="y"}`, Value: "0"},
		}},
	}
	var buf bytes.Buffer
	if err := WriteExposition(&buf, fams); err != nil {
		t.Fatal(err)
	}
	got, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("rendered exposition does not parse: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(got, fams) {
		t.Fatalf("round trip changed families:\n got %+v\nwant %+v", got, fams)
	}
}

func TestParseExpositionRejectsMalformed(t *testing.T) {
	for name, body := range map[string]string{
		"duplicate family": "# HELP a_total A.\n# TYPE a_total counter\na_total 1\n" +
			"# HELP a_total A again.\n# TYPE a_total counter\na_total 2\n",
		"type without help":     "# TYPE a_total counter\na_total 1\n",
		"help without type":     "# HELP a_total A.\na_total 1\n",
		"sample without family": "a_total 1\n",
		"unknown type":          "# HELP a A.\n# TYPE a enum\na 1\n",
		"non-float value":       "# HELP a A.\n# TYPE a gauge\na one\n",
		"no value":              "# HELP a A.\n# TYPE a gauge\na\n",
	} {
		if fams, err := ParseExposition([]byte(body)); err == nil {
			t.Fatalf("%s accepted: %+v", name, fams)
		}
	}
}

func TestMergeLabels(t *testing.T) {
	for _, tc := range []struct {
		labels, key, value, want string
	}{
		{"", "shard", "2", `{shard="2"}`},
		{`{path="a"}`, "shard", "0", `{path="a",shard="0"}`},
		{`{le="0.5"}`, "shard", "1", `{le="0.5",shard="1"}`},
	} {
		if got := MergeLabels(tc.labels, tc.key, tc.value); got != tc.want {
			t.Fatalf("MergeLabels(%q, %q, %q) = %q, want %q", tc.labels, tc.key, tc.value, got, tc.want)
		}
	}
	// A stamped page must still parse strictly.
	body := "# HELP a_total A.\n# TYPE a_total counter\na_total" +
		MergeLabels(`{x="y"}`, "shard", "3") + " 1\n"
	if _, err := ParseExposition([]byte(body)); err != nil {
		t.Fatalf("stamped sample does not parse: %v", err)
	}
}

func TestParseExpositionSkipsCommentsAndTimestamps(t *testing.T) {
	body := "# a stray comment\n# HELP a_total A.\n# TYPE a_total counter\na_total 4 1700000000\n"
	fams, err := ParseExposition([]byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || len(fams[0].Samples) != 1 || fams[0].Samples[0].Value != "4" {
		t.Fatalf("parsed %+v", fams)
	}
	if strings.Contains(fams[0].Samples[0].Value, "1700000000") {
		t.Fatal("timestamp leaked into the value")
	}
}
