package obs

import (
	"bufio"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Histogram is a fixed-bucket histogram of non-negative observations. It is
// rendered either as a Prometheus histogram (cumulative _bucket/_sum/_count
// series) or, when registered via Summary, as a summary whose quantile lines
// are interpolated from the buckets — the shape the pre-registry /metrics
// exposition used, kept for byte compatibility of the asserted metric names.
type Histogram struct {
	mu        sync.Mutex
	bounds    []float64 // ascending finite upper bounds
	counts    []uint64  // per-bucket counts; last entry is the +Inf overflow
	sum       float64
	count     uint64
	quantiles []float64 // non-empty: render as a summary with these quantiles
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = overflow
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket holding the target rank, assuming a lower bound of 0 for
// the first bucket. Observations in the overflow bucket report the largest
// finite bound. Returns 0 when nothing has been observed.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if float64(cum)+float64(c) >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lower + frac*(upper-lower)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshot returns a consistent copy for rendering.
func (h *Histogram) snapshot() (counts []uint64, sum float64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	counts = make([]uint64, len(h.counts))
	copy(counts, h.counts)
	return counts, h.sum, h.count
}

func histogramRender(h *Histogram) func(w *bufio.Writer, name, labels string) {
	return func(w *bufio.Writer, name, labels string) {
		counts, sum, count := h.snapshot()
		var cum uint64
		for i, b := range h.bounds {
			cum += counts[i]
			fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(labels, "le", formatFloat(b)), cum)
		}
		cum += counts[len(h.bounds)]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, mergeLabel(labels, "le", "+Inf"), cum)
		fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, sum)
		fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
	}
}

func summaryRender(h *Histogram) func(w *bufio.Writer, name, labels string) {
	return func(w *bufio.Writer, name, labels string) {
		h.mu.Lock()
		count := h.count
		sum := h.sum
		vals := make([]float64, len(h.quantiles))
		for i, q := range h.quantiles {
			vals[i] = h.quantileLocked(q)
		}
		h.mu.Unlock()
		if count > 0 {
			for i, q := range h.quantiles {
				fmt.Fprintf(w, "%s%s %g\n", name, mergeLabel(labels, "quantile", formatFloat(q)), vals[i])
			}
		}
		fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, sum)
		fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
	}
}

func formatFloat(v float64) string {
	return strings.TrimSpace(fmt.Sprintf("%g", v))
}

func newHistogram(name string, buckets, quantiles []float64) *Histogram {
	b := checkBuckets(name, buckets)
	return &Histogram{
		bounds:    b,
		counts:    make([]uint64, len(b)+1),
		quantiles: append([]float64(nil), quantiles...),
	}
}

// Histogram registers an unlabeled histogram with the given bucket upper
// bounds (ascending; an implicit +Inf overflow bucket is added).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(name, buckets, nil)
	f := r.familyFor(name, help, "histogram")
	f.addSeries("", histogramRender(h))
	return h
}

// Summary registers a bucketed histogram rendered as a Prometheus summary:
// one line per requested quantile (interpolated from the buckets; omitted
// while empty) plus _sum and _count. This keeps the pre-registry exposition
// shape for the latency/size summaries asserted in existing tests.
func (r *Registry) Summary(name, help string, buckets, quantiles []float64) *Histogram {
	if len(quantiles) == 0 {
		panic(fmt.Sprintf("obs: summary %q needs at least one quantile", name))
	}
	h := newHistogram(name, buckets, quantiles)
	f := r.familyFor(name, help, "summary")
	f.addSeries("", summaryRender(h))
	return h
}

// HistogramVec is a histogram family with a fixed label-key schema; series
// are created on first use via With.
type HistogramVec struct {
	fam     *family
	keys    []string
	buckets []float64

	mu sync.Mutex
	by map[string]*Histogram
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, keys ...string) *HistogramVec {
	if len(keys) == 0 {
		panic("obs: HistogramVec needs at least one label key")
	}
	return &HistogramVec{
		fam:     r.familyFor(name, help, "histogram"),
		keys:    keys,
		buckets: checkBuckets(name, buckets),
		by:      make(map[string]*Histogram),
	}
}

// With returns the histogram for the given label values, creating the series
// on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", v.fam.name, len(v.keys), len(values)))
	}
	k := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.by[k]; ok {
		return h
	}
	h := newHistogram(v.fam.name, v.buckets, nil)
	pairs := make([]string, 0, 2*len(v.keys))
	for i, key := range v.keys {
		pairs = append(pairs, key, values[i])
	}
	v.fam.addSeries(renderLabels(pairs), histogramRender(h))
	v.by[k] = h
	return h
}
