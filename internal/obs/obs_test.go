package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.String()
}

func TestCounterAndGaugeRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Operations.")
	c.Add(3)
	c.Inc()
	r.GaugeFunc("test_temp", "Temperature.", func() float64 { return 1.5 })
	r.IntGaugeFunc("test_depth", "Depth.", func() int64 { return 7 })
	r.GaugeFunc("test_build_info", "Build.", func() float64 { return 1 }, "version", "dev")

	out := render(t, r)
	for _, want := range []string{
		"# HELP test_ops_total Operations.\n# TYPE test_ops_total counter\ntest_ops_total 4\n",
		"# TYPE test_temp gauge\ntest_temp 1.5\n",
		"test_depth 7\n",
		`test_build_info{version="dev"} 1` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_requests_total", "Requests.", "route", "code")
	v.With("/v1/stats", "200").Add(2)
	v.With("/v1/stats", "200").Inc()
	v.With("/v1/stats", "404").Inc()

	out := render(t, r)
	if !strings.Contains(out, `test_requests_total{route="/v1/stats",code="200"} 3`) {
		t.Errorf("missing 200 series:\n%s", out)
	}
	if !strings.Contains(out, `test_requests_total{route="/v1/stats",code="404"} 1`) {
		t.Errorf("missing 404 series:\n%s", out)
	}
	if got := strings.Count(out, "# TYPE test_requests_total counter"); got != 1 {
		t.Errorf("TYPE emitted %d times, want 1", got)
	}
}

func TestHistogramRenderingAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="10"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		`test_latency_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if q := h.Quantile(1); q != 10 {
		t.Errorf("q=1: got %g, want 10 (overflow reports largest finite bound)", q)
	}
	if q := h.Quantile(0.5); q < 0.1 || q > 1 {
		t.Errorf("q=0.5: got %g, want within (0.1, 1]", q)
	}
	if q := (&Histogram{bounds: []float64{1}, counts: make([]uint64, 2)}).Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile: got %g, want 0", q)
	}
}

func TestSummaryRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Summary("test_apply_seconds", "Apply latency.", LatencyBuckets(), []float64{0.5, 0.9, 0.99, 1})

	// Empty: no quantile lines, but _sum/_count present.
	out := render(t, r)
	if strings.Contains(out, "quantile=") {
		t.Errorf("empty summary rendered quantile lines:\n%s", out)
	}
	if !strings.Contains(out, "test_apply_seconds_count 0") {
		t.Errorf("missing _count:\n%s", out)
	}

	h.Observe(0.001)
	out = render(t, r)
	for _, want := range []string{
		`test_apply_seconds{quantile="0.5"}`,
		`test_apply_seconds{quantile="0.9"}`,
		`test_apply_seconds{quantile="0.99"}`,
		`test_apply_seconds{quantile="1"}`,
		"test_apply_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_stage_seconds", "Stage latency.", []float64{1, 10}, "stage")
	v.With("applied").Observe(0.5)
	v.With("visible").Observe(20)
	out := render(t, r)
	for _, want := range []string{
		`test_stage_seconds_bucket{stage="applied",le="1"} 1`,
		`test_stage_seconds_bucket{stage="visible",le="+Inf"} 1`,
		`test_stage_seconds_count{stage="applied"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestWhenPredicateHidesFamily(t *testing.T) {
	r := NewRegistry()
	on := false
	r.When(func() bool { return on }).CounterFunc("test_cond_total", "Conditional.", func() int64 { return 1 })
	if out := render(t, r); strings.Contains(out, "test_cond_total") {
		t.Errorf("predicate-off family rendered:\n%s", out)
	}
	on = true
	if out := render(t, r); !strings.Contains(out, "test_cond_total 1") {
		t.Errorf("predicate-on family missing")
	}
}

func TestFuncSeriesShareFamily(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("test_worker_total", "Per worker.", func() int64 { return 1 }, "worker", "0")
	r.CounterFunc("test_worker_total", "Per worker.", func() int64 { return 2 }, "worker", "1")
	out := render(t, r)
	if got := strings.Count(out, "# HELP test_worker_total"); got != 1 {
		t.Errorf("HELP emitted %d times, want 1", got)
	}
	if !strings.Contains(out, `test_worker_total{worker="1"} 2`) {
		t.Errorf("missing worker 1 series:\n%s", out)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_dup_total", "Dup.")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("test_dup_total", "Dup.")
}

func TestConcurrentObserveAndRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "Concurrent.")
	h := r.Histogram("test_conc_seconds", "Concurrent.", LatencyBuckets())
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j) * 1e-6)
			}
		}()
	}
	for i := 0; i < 10; i++ {
		render(t, r)
	}
	wg.Wait()
	if c.Value() != 4000 {
		t.Errorf("counter: got %d, want 4000", c.Value())
	}
	if h.Count() != 4000 {
		t.Errorf("histogram: got %d, want 4000", h.Count())
	}
}

func TestSizeBuckets(t *testing.T) {
	b := SizeBuckets(256)
	if b[0] != 1 || b[len(b)-1] != 256 {
		t.Errorf("SizeBuckets(256) = %v", b)
	}
	if math.IsNaN(b[0]) {
		t.Error("NaN bucket")
	}
}

func TestTraceRing(t *testing.T) {
	ring := NewTraceRing(3)
	base := time.Unix(1000, 0)
	for i := 0; i < 5; i++ {
		tr := ring.Add(IngestTrace{Updates: i, EnqueuedAt: base})
		if tr.ID != uint64(i+1) {
			t.Fatalf("trace %d assigned ID %d", i, tr.ID)
		}
	}
	last := ring.Last(2)
	if len(last) != 2 || last[0].ID != 5 || last[1].ID != 4 {
		t.Fatalf("Last(2) = %+v", last)
	}
	if got := ring.Last(100); len(got) != 3 {
		t.Fatalf("Last(100) returned %d, want 3 (capacity)", len(got))
	}
	if ring.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ring.Len())
	}
}

func TestTraceStages(t *testing.T) {
	base := time.Unix(1000, 0)
	tr := IngestTrace{
		EnqueuedAt:   base,
		WALDurableAt: base.Add(10 * time.Millisecond),
		AppliedAt:    base.Add(30 * time.Millisecond),
		VisibleAt:    base.Add(35 * time.Millisecond),
	}
	st := tr.Stages()
	approx := func(got, want float64) bool { return math.Abs(got-want) < 1e-9 }
	if !approx(st[StageWALDurable], 0.010) || !approx(st[StageApplied], 0.020) ||
		!approx(st[StageVisible], 0.005) || !approx(st[StageTotal], 0.035) {
		t.Fatalf("Stages = %v", st)
	}
	// Without a WAL the wal_durable stage is absent and applied measures from
	// the enqueue.
	tr.WALDurableAt = time.Time{}
	st = tr.Stages()
	if _, ok := st[StageWALDurable]; ok {
		t.Fatal("wal_durable present without a WAL")
	}
	if !approx(st[StageApplied], 0.030) {
		t.Fatalf("applied = %g, want 0.030", st[StageApplied])
	}
}

func TestParseLevelAndNewLogger(t *testing.T) {
	for _, bad := range []string{"verbose", "TRACE"} {
		if _, err := ParseLevel(bad); err == nil {
			t.Errorf("ParseLevel(%q) accepted", bad)
		}
	}
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	lg.Debug("hello", KeyComponent, "test")
	if !strings.Contains(buf.String(), `"component":"test"`) {
		t.Errorf("json log missing component: %s", buf.String())
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Error("NewLogger accepted format xml")
	}
	Nop().Info("dropped") // must not panic
}
