// Package obs is the shared observability layer of the streaming betweenness
// framework: a small metrics registry with one Prometheus-text renderer, an
// ingest trace ring buffer, and structured-logging helpers on log/slog.
//
// The registry holds typed metric families — counters, gauges, fixed-bucket
// histograms — registered once at startup and rendered on every scrape in
// registration order. Hot-path instruments are lock-free (atomic counters) or
// take one short mutex (histograms); scrape-time "func" metrics read a value
// the owning subsystem already maintains, so exposing a gauge never adds work
// to the write path.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry is an ordered set of metric families. The zero value is not
// usable; create one with NewRegistry. All registration methods panic on an
// invalid or conflicting registration — metric names are programmer-chosen
// constants, so a bad one is a bug, not a runtime condition.
type Registry struct {
	state *registryState
	pred  func() bool // attached to families registered through this view
}

type registryState struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// family is one metric family: a HELP/TYPE header plus its series.
type family struct {
	name, help, typ string
	pred            func() bool // nil: always rendered

	mu       sync.Mutex
	series   []*seriesEntry
	byLabels map[string]int
}

type seriesEntry struct {
	labels string // pre-rendered `{k="v",...}` or ""
	render func(w *bufio.Writer, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{state: &registryState{byName: make(map[string]*family)}}
}

// When returns a view of the registry through which newly registered families
// carry a presence predicate: the renderer skips the whole family while the
// predicate reports false. This models sections that exist only in some
// configurations (a WAL that may be attached later, a replication tailer that
// detaches at promotion) without unregistering anything.
func (r *Registry) When(pred func() bool) *Registry {
	return &Registry{state: r.state, pred: pred}
}

// familyFor returns the named family, creating it when absent, and panics on
// a help/type conflict with an existing registration.
func (r *Registry) familyFor(name, help, typ string) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	st := r.state
	st.mu.Lock()
	defer st.mu.Unlock()
	if f, ok := st.byName[name]; ok {
		if f.help != help || f.typ != typ {
			panic(fmt.Sprintf("obs: metric %q re-registered with different help or type", name))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, pred: r.pred, byLabels: make(map[string]int)}
	st.fams = append(st.fams, f)
	st.byName[name] = f
	return f
}

// addSeries appends a series to the family, panicking on duplicate labels.
func (f *family) addSeries(labels string, render func(w *bufio.Writer, name, labels string)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.byLabels[labels]; dup {
		panic(fmt.Sprintf("obs: metric %q%s registered twice", f.name, labels))
	}
	f.byLabels[labels] = len(f.series)
	f.series = append(f.series, &seriesEntry{labels: labels, render: render})
}

// renderLabels renders `{k="v",...}` from alternating key/value pairs.
func renderLabels(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	if len(pairs)%2 != 0 {
		panic("obs: label pairs must alternate key, value")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(pairs); i += 2 {
		if !labelRE.MatchString(pairs[i]) {
			panic(fmt.Sprintf("obs: invalid label name %q", pairs[i]))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", pairs[i], escapeLabel(pairs[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format. %q below
// already escapes `"` and `\`; newlines are the remaining hazard.
func escapeLabel(v string) string {
	return strings.ReplaceAll(v, "\n", `\n`)
}

// mergeLabel appends one more pair inside an already-rendered label set (used
// for the `le` and `quantile` labels of histogram and summary series).
func mergeLabel(labels, key, value string) string {
	pair := fmt.Sprintf("%s=%q", key, value)
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// Counter is a monotonically increasing integer, rendered as an integer.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func counterRender(c *Counter) func(w *bufio.Writer, name, labels string) {
	return func(w *bufio.Writer, name, labels string) {
		fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
	}
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.familyFor(name, help, "counter")
	c := &Counter{}
	f.addSeries("", counterRender(c))
	return c
}

// CounterVec is a counter family with a fixed label-key schema; series are
// created on first use via With.
type CounterVec struct {
	fam  *family
	keys []string

	mu sync.Mutex
	by map[string]*Counter
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, keys ...string) *CounterVec {
	if len(keys) == 0 {
		panic("obs: CounterVec needs at least one label key")
	}
	return &CounterVec{fam: r.familyFor(name, help, "counter"), keys: keys, by: make(map[string]*Counter)}
}

// With returns the counter for the given label values (one per key, in key
// order), creating the series on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", v.fam.name, len(v.keys), len(values)))
	}
	k := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.by[k]; ok {
		return c
	}
	c := &Counter{}
	pairs := make([]string, 0, 2*len(v.keys))
	for i, key := range v.keys {
		pairs = append(pairs, key, values[i])
	}
	v.fam.addSeries(renderLabels(pairs), counterRender(c))
	v.by[k] = c
	return c
}

// Gauge is a settable float value (atomic bit store, lock-free on both the
// write and the scrape path). Unlike GaugeFunc it owns its value, for state
// no subsystem maintains on its own — a router's view of a shard's health,
// the sequence a fanout last acknowledged.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(x float64) { g.bits.Store(math.Float64bits(x)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func gaugeRender(g *Gauge) func(w *bufio.Writer, name, labels string) {
	return func(w *bufio.Writer, name, labels string) {
		fmt.Fprintf(w, "%s%s %g\n", name, labels, g.Value())
	}
}

// Gauge registers an unlabeled settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.familyFor(name, help, "gauge")
	g := &Gauge{}
	f.addSeries("", gaugeRender(g))
	return g
}

// GaugeVec is a settable gauge family with a fixed label-key schema; series
// are created on first use via With.
type GaugeVec struct {
	fam  *family
	keys []string

	mu sync.Mutex
	by map[string]*Gauge
}

// GaugeVec registers a labeled settable gauge family.
func (r *Registry) GaugeVec(name, help string, keys ...string) *GaugeVec {
	if len(keys) == 0 {
		panic("obs: GaugeVec needs at least one label key")
	}
	return &GaugeVec{fam: r.familyFor(name, help, "gauge"), keys: keys, by: make(map[string]*Gauge)}
}

// With returns the gauge for the given label values (one per key, in key
// order), creating the series on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", v.fam.name, len(v.keys), len(values)))
	}
	k := strings.Join(values, "\xff")
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok := v.by[k]; ok {
		return g
	}
	g := &Gauge{}
	pairs := make([]string, 0, 2*len(v.keys))
	for i, key := range v.keys {
		pairs = append(pairs, key, values[i])
	}
	v.fam.addSeries(renderLabels(pairs), gaugeRender(g))
	v.by[k] = g
	return g
}

// CounterFunc registers a counter whose value is read at scrape time from fn
// (which must be monotonic, e.g. backed by an atomic the subsystem already
// maintains). Optional alternating label pairs distinguish multiple func
// series within one family; repeated calls with the same name append series.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labelPairs ...string) {
	f := r.familyFor(name, help, "counter")
	f.addSeries(renderLabels(labelPairs), func(w *bufio.Writer, name, labels string) {
		fmt.Fprintf(w, "%s%s %d\n", name, labels, fn())
	})
}

// GaugeFunc registers a float gauge read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	f := r.familyFor(name, help, "gauge")
	f.addSeries(renderLabels(labelPairs), func(w *bufio.Writer, name, labels string) {
		fmt.Fprintf(w, "%s%s %g\n", name, labels, fn())
	})
}

// IntGaugeFunc registers an integer gauge read at scrape time, rendered
// without a decimal point (byte-compatible with %d expositions).
func (r *Registry) IntGaugeFunc(name, help string, fn func() int64, labelPairs ...string) {
	f := r.familyFor(name, help, "gauge")
	f.addSeries(renderLabels(labelPairs), func(w *bufio.Writer, name, labels string) {
		fmt.Fprintf(w, "%s%s %d\n", name, labels, fn())
	})
}

// WriteTo renders the whole registry in the Prometheus text exposition
// format, families in registration order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	st := r.state
	st.mu.Lock()
	fams := make([]*family, len(st.fams))
	copy(fams, st.fams)
	st.mu.Unlock()

	cnt := &countingWriter{w: w}
	bw := bufio.NewWriter(cnt)
	for _, f := range fams {
		if f.pred != nil && !f.pred() {
			continue
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		f.mu.Lock()
		series := make([]*seriesEntry, len(f.series))
		copy(series, f.series)
		f.mu.Unlock()
		for _, s := range series {
			s.render(bw, f.name, s.labels)
		}
	}
	err := bw.Flush()
	return cnt.n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ExponentialBuckets returns n bucket upper bounds starting at start and
// multiplying by factor.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExponentialBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default bucket layout for latencies in seconds:
// 1µs to ~16s in factor-2 steps (25 buckets), fine enough that interpolated
// quantiles track the old sliding-window quantiles closely.
func LatencyBuckets() []float64 {
	return ExponentialBuckets(1e-6, 2, 25)
}

// SizeBuckets is the default bucket layout for batch sizes: powers of two
// from 1 through max (inclusive of the first power >= max).
func SizeBuckets(max int) []float64 {
	var out []float64
	for v := 1; ; v *= 2 {
		out = append(out, float64(v))
		if v >= max {
			return out
		}
	}
}

// checkBuckets validates and defensively copies bucket bounds.
func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %q needs at least one bucket", name))
	}
	out := make([]float64, len(buckets))
	copy(out, buckets)
	if !sort.Float64sAreSorted(out) {
		panic(fmt.Sprintf("obs: histogram %q buckets must be sorted ascending", name))
	}
	return out
}
