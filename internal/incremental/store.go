package incremental

import (
	"streambc/internal/bc"
)

// Store abstracts the container of the per-source betweenness data BD[·].
// Implementations live in package bdstore: an in-memory store (the "MO"
// configuration of the paper) and an out-of-core columnar store (the "DO"
// configuration). Sources and vertices are identified by dense integers; a
// store created for n vertices holds exactly n source records of n entries
// each, and can be grown when new vertices arrive in the stream.
type Store interface {
	// NumVertices returns the number of vertices n covered by every record.
	NumVertices() int

	// Load fills rec with the record of source s. The caller owns rec; its
	// slices are resized as needed.
	Load(s int, rec *bc.SourceState) error

	// Save persists rec as the record of source s.
	Save(s int, rec *bc.SourceState) error

	// LoadDistances fills dist (resized as needed) with only the distance
	// column of source s. It is the cheap probe used to skip sources for
	// which the update cannot change anything (dd = 0).
	LoadDistances(s int, dist *[]int32) error

	// Grow extends every record to cover n vertices. Existing records are
	// padded with unreachable entries. Growing never removes vertices.
	Grow(n int) error

	// AddSource registers a new source s. Its record is initialised as an
	// isolated vertex: distance 0 and a single shortest path to itself,
	// everything else unreachable. Adding an existing source is an error.
	AddSource(s int) error

	// Sources returns the identifiers of the sources managed by this store,
	// in ascending order. A full store manages every vertex as a source; a
	// partitioned store (one worker of the parallel engine) manages a subset.
	Sources() []int

	// Close releases any resources held by the store.
	Close() error
}
