package incremental

import (
	"streambc/internal/bdstore"
)

// Store abstracts the container of the per-source betweenness data BD[·].
// The canonical definition lives in package bdstore alongside its
// implementations — an in-memory store (the "MO" configuration of the
// paper), the legacy v1 single-file store and the sharded mmap-backed v2
// store opened by bdstore.Open — and is re-exported here so the incremental
// framework's signatures keep reading naturally. The two names are
// interchangeable.
type Store = bdstore.Store

// StoreStats is a point-in-time summary of a Store, as reported by
// Store.Stats; see bdstore.StoreStats.
type StoreStats = bdstore.StoreStats
