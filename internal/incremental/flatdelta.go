package incremental

import (
	"streambc/internal/bc"
	"streambc/internal/graph"
)

// FlatDelta is the in-process engine's partial-score accumulator: the same
// sparse set of betweenness changes as Delta, but laid out on flat,
// version-stamped columns so that resetting it between updates is O(1) and
// steady-state accumulation performs no allocations (Go map clears release
// bucket memory, so the map-based Delta re-allocates on every refill; the
// flat layout keeps its arrays). Delta remains the wire type of the net/rpc
// embodiment, which serialises its exported maps.
//
// Bit-identity note: like Delta, FlatDelta aggregates all changes of one
// (update, worker) pair per key before the single add into the global result,
// in exactly the order the changes arrive — so the per-slot floating-point
// sums are identical to the map-based accumulator's.
type FlatDelta struct {
	version uint64

	// Vertex changes: dense stamped column plus the touched-vertex list in
	// first-touch order.
	vbcVals  []float64
	vbcStamp []uint64
	vbcList  []int32

	ebc edgeTable
}

// NewFlatDelta returns an empty accumulator; its columns grow with use.
func NewFlatDelta() *FlatDelta {
	return &FlatDelta{version: 1}
}

// AddVBC implements Accumulator.
func (d *FlatDelta) AddVBC(v int, delta float64) {
	if v >= len(d.vbcVals) {
		d.growVBC(v + 1)
	}
	if d.vbcStamp[v] != d.version {
		d.vbcStamp[v] = d.version
		d.vbcVals[v] = delta
		d.vbcList = append(d.vbcList, int32(v))
		return
	}
	d.vbcVals[v] += delta
}

// AddEBC implements Accumulator.
func (d *FlatDelta) AddEBC(e graph.Edge, delta float64) {
	d.ebc.add(packEdge(e), delta, d.version)
}

// ApplyTo folds the delta into a full result, in first-touch order. The
// result's VBC slice must already cover every vertex mentioned by the delta.
func (d *FlatDelta) ApplyTo(res *bc.Result) {
	for _, v := range d.vbcList {
		res.VBC[v] += d.vbcVals[v]
	}
	for _, i := range d.ebc.order {
		s := &d.ebc.slots[i]
		res.EBC[unpackEdge(s.key)] += s.val
	}
}

// Each visits the delta's entries in first-touch order — the order ApplyTo
// folds them — calling vf for every touched vertex and then ef for every
// touched edge. The shard serving layer uses it to serialise an update's
// per-worker deltas onto the wire so the merge router can fold them in the
// same order, preserving bit-identity across the process boundary.
func (d *FlatDelta) Each(vf func(v int, x float64), ef func(e graph.Edge, x float64)) {
	for _, v := range d.vbcList {
		vf(int(v), d.vbcVals[v])
	}
	for _, i := range d.ebc.order {
		s := &d.ebc.slots[i]
		ef(unpackEdge(s.key), s.val)
	}
}

// Len returns the number of touched vertices and edges.
func (d *FlatDelta) Len() (nv, ne int) {
	return len(d.vbcList), len(d.ebc.order)
}

// Reset clears the delta for reuse, keeping its storage.
func (d *FlatDelta) Reset() {
	d.version++
	d.vbcList = d.vbcList[:0]
	d.ebc.reset(d.version)
}

// Reserve sizes the vertex column for graphs of n vertices and gives the edge
// table its full initial capacity, so that a fresh accumulator reaches its
// steady-state footprint in a handful of allocations instead of a doubling
// chain of them.
func (d *FlatDelta) Reserve(n int) {
	if n > len(d.vbcVals) {
		d.vbcVals = growFloat64(d.vbcVals, n)
		d.vbcStamp = growUint64(d.vbcStamp, n)
	}
	if len(d.ebc.slots) == 0 {
		d.ebc.grow()
	}
}

func (d *FlatDelta) growVBC(n int) {
	// Callers grow one vertex at a time; doubling keeps the growth chain
	// logarithmic when no Reserve sized the column up front.
	if m := 2 * len(d.vbcVals); n < m {
		n = m
	}
	d.vbcVals = growFloat64(d.vbcVals, n)
	d.vbcStamp = growUint64(d.vbcStamp, n)
}

func packEdge(e graph.Edge) uint64 {
	return uint64(uint32(e.U))<<32 | uint64(uint32(e.V))
}

func unpackEdge(key uint64) graph.Edge {
	return graph.Edge{U: int(int32(key >> 32)), V: int(int32(uint32(key)))}
}

// edgeTable is a version-stamped open-addressing hash table from packed edge
// keys to float64 sums, with an insertion-order slot list for deterministic
// iteration. Load factor is kept at or below 1/2.
type edgeTable struct {
	slots   []edgeSlot
	stamp   []uint64
	order   []int32
	version uint64
}

type edgeSlot struct {
	key uint64
	val float64
}

func (t *edgeTable) reset(version uint64) {
	t.order = t.order[:0]
	t.version = version
}

// hashEdge mixes the packed key (Fibonacci hashing: multiplicative spread of
// the high bits, which is where U lives).
func hashEdge(key uint64) uint64 {
	key *= 0x9E3779B97F4A7C15
	return key ^ (key >> 29)
}

func (t *edgeTable) add(key uint64, x float64, version uint64) {
	if version != t.version {
		// The owning delta was reset without touching the table.
		t.reset(version)
	}
	if 2*(len(t.order)+1) > len(t.slots) {
		t.grow()
	}
	mask := uint64(len(t.slots) - 1)
	for i := hashEdge(key) & mask; ; i = (i + 1) & mask {
		if t.stamp[i] != t.version {
			t.stamp[i] = t.version
			t.slots[i] = edgeSlot{key: key, val: x}
			t.order = append(t.order, int32(i))
			return
		}
		if t.slots[i].key == key {
			t.slots[i].val += x
			return
		}
	}
}

// grow doubles the table and re-places every live slot, preserving the
// insertion-order list (values are already aggregated, so re-placement moves
// them without any floating-point operation).
func (t *edgeTable) grow() {
	n := 2 * len(t.slots)
	if n == 0 {
		n = 1024
	}
	oldSlots, oldOrder := t.slots, t.order
	t.slots = make([]edgeSlot, n)
	t.stamp = make([]uint64, n)
	t.order = make([]int32, 0, len(oldOrder)+n/2)
	mask := uint64(n - 1)
	for _, oi := range oldOrder {
		s := oldSlots[oi]
		for i := hashEdge(s.key) & mask; ; i = (i + 1) & mask {
			if t.stamp[i] != t.version {
				t.stamp[i] = t.version
				t.slots[i] = s
				t.order = append(t.order, int32(i))
				break
			}
		}
	}
}
