package incremental

import (
	"testing"

	"streambc/internal/bdstore"
)

// memStore opens an in-memory store over every source of an n-vertex graph
// through the v2 entry point (the non-deprecated spelling of the old
// bdstore.NewMemStore).
func memStore(t testing.TB, n int) Store {
	t.Helper()
	s, err := bdstore.Open("", bdstore.Options{NumVertices: n})
	if err != nil {
		t.Fatalf("Open(mem): %v", err)
	}
	return s
}

// shardedStore creates a fresh sharded v2 store in its own temp directory.
// Mutating opts beyond NumVertices (segment size, mmap, sources) is the
// caller's knob for the differential matrix.
func shardedStore(t testing.TB, n int, opts bdstore.Options) Store {
	t.Helper()
	opts.NumVertices = n
	s, err := bdstore.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("Open(sharded): %v", err)
	}
	return s
}
