package incremental

import (
	"errors"
	"fmt"

	"streambc/internal/bc"
	"streambc/internal/graph"
)

// Stats counts the work performed by an Updater, mirroring the quantities the
// paper reports: how many sources could be skipped thanks to the distance
// probe and how many needed an actual partial recomputation. The parallel
// engine aggregates the same counters across its workers.
type Stats struct {
	UpdatesApplied int
	SourcesSkipped int64
	SourcesUpdated int64
}

// Updater maintains vertex and edge betweenness centrality of an evolving
// graph. It owns the graph it is given, the per-source betweenness data kept
// in a Store, and the running centrality scores; each call to Apply consumes
// one element of the update stream and brings everything up to date, and
// ApplyBatch consumes a batch in one unit of store I/O per affected source.
//
// An Updater is not safe for concurrent use. The parallel engine
// (internal/engine) builds on the same SourceProcessor primitive.
type Updater struct {
	g     *graph.Graph
	store Store
	res   *bc.Result
	proc  *SourceProcessor
	acc   ResultAccumulator

	// sources is the explicit source set in sampled mode (nil in exact mode,
	// where every vertex is a source) and scale the matching n/k estimator
	// factor. The sample is fixed at construction: vertices arriving later in
	// the stream are never added as sources, so the scaling stays coherent
	// with the scores accumulated so far.
	sources []int
	scale   float64

	applied int
}

// NewUpdater runs the offline step of the framework (a full Brandes pass that
// populates the store with BD[s] for every source and computes the initial
// centrality scores) and returns an Updater ready to consume the update
// stream. The store must be empty and sized for g.N() vertices. The Updater
// takes ownership of g: the caller must not mutate it directly afterwards.
func NewUpdater(g *graph.Graph, store Store) (*Updater, error) {
	if store.NumVertices() != g.N() {
		return nil, fmt.Errorf("incremental: store covers %d vertices, graph has %d", store.NumVertices(), g.N())
	}
	u := &Updater{
		g:     g,
		store: store,
		res:   bc.NewResult(g.N()),
		proc:  NewSourceProcessor(store, g.N()),
		scale: 1,
	}
	u.acc = ResultAccumulator{Res: u.res}
	state := bc.NewSourceState(g.N())
	var queue []int
	for s := 0; s < g.N(); s++ {
		bc.SingleSource(g, s, state, &queue)
		bc.AccumulateSource(g, s, state, u.res)
		if err := store.Save(s, state); err != nil {
			return nil, fmt.Errorf("incremental: initialising source %d: %w", s, err)
		}
	}
	if err := store.Flush(); err != nil {
		return nil, fmt.Errorf("incremental: flushing initial records: %w", err)
	}
	if err := u.proc.BuildProbeIndex(); err != nil {
		return nil, err
	}
	return u, nil
}

// ResumeUpdater returns an Updater over a store that already holds the
// per-source records of g — typically a sharded out-of-core store reopened
// with bdstore.Open in ModeReopen after a restart — together with the
// centrality scores res accumulated when those records were written. Unlike
// NewUpdater it runs no Brandes pass and writes nothing: the store's records
// are the state. The caller is responsible for the invariant that g, res and
// the store describe the same moment of the stream; the probe index is
// rebuilt from the store, so scores keep evolving bit-identically to an
// updater that never stopped.
//
// The updater is exact when the store manages every vertex as a source and
// sampled (with the n/k estimator scale) otherwise.
func ResumeUpdater(g *graph.Graph, store Store, res *bc.Result) (*Updater, error) {
	if store.NumVertices() != g.N() {
		return nil, fmt.Errorf("incremental: store covers %d vertices, graph has %d", store.NumVertices(), g.N())
	}
	if len(res.VBC) != g.N() {
		return nil, fmt.Errorf("incremental: result covers %d vertices, graph has %d", len(res.VBC), g.N())
	}
	u := &Updater{
		g:     g,
		store: store,
		res:   res,
		proc:  NewSourceProcessor(store, g.N()),
		scale: 1,
	}
	sources := store.Sources()
	if len(sources) == 0 {
		return nil, fmt.Errorf("incremental: resumed store manages no sources")
	}
	if len(sources) < g.N() {
		u.sources = sources
		u.scale = float64(g.N()) / float64(len(sources))
		u.proc.SetScale(u.scale)
	}
	u.acc = ResultAccumulator{Res: u.res}
	if err := u.proc.BuildProbeIndex(); err != nil {
		return nil, err
	}
	return u, nil
}

// NewSampledUpdater is the approximate-mode counterpart of NewUpdater: the
// per-source data is maintained only for the sources managed by store (a
// uniform sample of the vertex set, typically built with bc.SampleSources and
// a store from bdstore.Open with Options.Sources set to the sample), and
// every betweenness contribution is multiplied by scale (n/k for a uniform
// sample of k out of n sources, which makes the estimates unbiased; values
// <= 0 mean n/k computed from the store). The sample is fixed for the life of
// the updater: vertices added by the stream later are never promoted to
// sources, so the scaling factor stays coherent with the accumulated scores.
func NewSampledUpdater(g *graph.Graph, store Store, scale float64) (*Updater, error) {
	if store.NumVertices() != g.N() {
		return nil, fmt.Errorf("incremental: store covers %d vertices, graph has %d", store.NumVertices(), g.N())
	}
	sources := store.Sources()
	if len(sources) == 0 {
		return nil, fmt.Errorf("incremental: sampled updater needs at least one source")
	}
	if scale <= 0 {
		scale = float64(g.N()) / float64(len(sources))
	}
	u := &Updater{
		g:       g,
		store:   store,
		res:     bc.NewResult(g.N()),
		proc:    NewSourceProcessor(store, g.N()),
		sources: sources,
		scale:   scale,
	}
	u.acc = ResultAccumulator{Res: u.res}
	u.proc.SetScale(scale)
	state := bc.NewSourceState(g.N())
	var queue []int
	for _, s := range sources {
		bc.SingleSource(g, s, state, &queue)
		bc.AccumulateSourceScaled(g, s, state, u.res, scale)
		if err := store.Save(s, state); err != nil {
			return nil, fmt.Errorf("incremental: initialising source %d: %w", s, err)
		}
	}
	if err := store.Flush(); err != nil {
		return nil, fmt.Errorf("incremental: flushing initial records: %w", err)
	}
	if err := u.proc.BuildProbeIndex(); err != nil {
		return nil, err
	}
	return u, nil
}

// Sources returns the explicit sampled source set, in ascending order, or nil
// in exact mode (where every vertex is a source).
func (u *Updater) Sources() []int { return u.sources }

// Scale returns the estimator scaling factor applied to every betweenness
// contribution (1 in exact mode, n/k in sampled mode).
func (u *Updater) Scale() float64 { return u.scale }

// Graph returns the evolving graph. It must be treated as read-only; all
// mutations must go through Apply.
func (u *Updater) Graph() *graph.Graph { return u.g }

// Result returns the live centrality scores. The returned value is owned by
// the Updater and changes with every Apply.
func (u *Updater) Result() *bc.Result { return u.res }

// VBC returns the current vertex betweenness scores (live slice, do not
// modify).
func (u *Updater) VBC() []float64 { return u.res.VBC }

// EBC returns the current edge betweenness scores (live map, do not modify).
func (u *Updater) EBC() map[graph.Edge]float64 { return u.res.EBC }

// Stats returns the work counters accumulated so far.
func (u *Updater) Stats() Stats {
	return Stats{
		UpdatesApplied: u.applied,
		SourcesSkipped: u.proc.Skipped(),
		SourcesUpdated: u.proc.Updated(),
	}
}

// Store exposes the underlying per-source store (used by tests and tools).
func (u *Updater) Store() Store { return u.store }

// Apply consumes one update from the stream: it validates it, applies it to
// the graph, updates the per-source betweenness data of every affected source
// and folds the changes into the running centrality scores. It is exactly a
// batch of one.
func (u *Updater) Apply(upd graph.Update) error {
	u.proc.SetBatching(false)
	err := u.applyOne(upd)
	if ferr := u.proc.Flush(); err == nil {
		err = ferr
	}
	// No traversal is in flight between batches: fold the graph's delta
	// overlay back into its flat columns so the next updates run on pure CSR.
	u.g.Compact()
	return err
}

// ApplyBatch consumes a batch of updates as one unit: updates are applied in
// stream order (the scores after the batch are bit-identical to sequential
// Apply calls), but each affected source is loaded from the store at most
// once and saved at most once for the whole batch. It returns the number of
// updates applied before the first error, if any; the store is always left
// consistent with the graph for the applied prefix.
func (u *Updater) ApplyBatch(updates []graph.Update) (int, error) {
	u.proc.SetBatching(len(updates) > 1)
	applied := 0
	var firstErr error
	for _, upd := range updates {
		if err := u.applyOne(upd); err != nil {
			firstErr = err
			break
		}
		applied++
	}
	// A flush failure means the store may not reflect the applied prefix:
	// surface it even when an update error came first.
	if ferr := u.proc.Flush(); ferr != nil {
		firstErr = errors.Join(firstErr, ferr)
	}
	u.g.Compact()
	return applied, firstErr
}

// Close releases the Updater's pooled scratch memory. The Updater must not be
// used afterwards. Closing is optional — an abandoned Updater is simply
// collected — but closing returns the workspace to the shared pool.
func (u *Updater) Close() { u.proc.Release() }

// applyOne validates and applies one update without flushing the write-back
// cache; the caller flushes at the end of the batch.
func (u *Updater) applyOne(upd graph.Update) error {
	if err := ValidateUpdate(u.g, upd); err != nil {
		return err
	}
	if !upd.Remove {
		if m := max(upd.U, upd.V); m >= u.g.N() {
			if err := u.growTo(m + 1); err != nil {
				return err
			}
		}
	}
	if err := u.g.Apply(upd); err != nil {
		return err
	}
	if err := u.proc.ProcessUpdate(u.g, u.sources, upd, &u.acc); err != nil {
		return err
	}
	if upd.Remove {
		// The edge no longer exists: its accumulated centrality has been
		// driven to zero by the per-source corrections, drop the entry.
		delete(u.res.EBC, bc.EdgeKey(u.g, upd.U, upd.V))
	}
	u.applied++
	return nil
}

// ApplyAll applies a whole stream of updates in order, one at a time,
// stopping at the first error. It returns the number of updates applied
// successfully. Use ApplyBatch to amortise store I/O across the stream.
func (u *Updater) ApplyAll(updates []graph.Update) (int, error) {
	for i, upd := range updates {
		if err := u.Apply(upd); err != nil {
			return i, fmt.Errorf("incremental: update %d (%v): %w", i, upd, err)
		}
	}
	return len(updates), nil
}

// growTo extends the graph, the store and the result to cover n vertices.
// New vertices join with zero centrality and, as sources, see only themselves
// (Section 3.1, handling of new vertices). In sampled mode the source set is
// fixed at construction, so new vertices grow every record but are not added
// as sources — they are still estimated, as targets and intermediates of the
// sampled sources' shortest paths.
func (u *Updater) growTo(n int) error {
	old := GrowGraphAndResult(u.g, u.res, n)
	if err := u.proc.GrowStore(n); err != nil {
		return fmt.Errorf("incremental: growing store to %d vertices: %w", n, err)
	}
	if u.sources != nil {
		return nil
	}
	for s := old; s < n; s++ {
		if err := u.proc.AddStoreSource(s); err != nil {
			return fmt.Errorf("incremental: adding source %d: %w", s, err)
		}
	}
	return nil
}
