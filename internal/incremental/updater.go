package incremental

import (
	"fmt"

	"streambc/internal/bc"
	"streambc/internal/graph"
)

// Stats counts the work performed by an Updater, mirroring the quantities the
// paper reports: how many sources could be skipped thanks to the distance
// probe and how many needed an actual partial recomputation.
type Stats struct {
	UpdatesApplied int
	SourcesSkipped int64
	SourcesUpdated int64
}

// Updater maintains vertex and edge betweenness centrality of an evolving
// graph. It owns the graph it is given, the per-source betweenness data kept
// in a Store, and the running centrality scores; each call to Apply consumes
// one element of the update stream and brings everything up to date.
//
// An Updater is not safe for concurrent use. The parallel engine
// (internal/engine) builds on the per-source primitives instead.
type Updater struct {
	g     *graph.Graph
	store Store
	res   *bc.Result

	ws      *Workspace
	rec     *bc.SourceState
	distBuf []int32

	stats Stats
}

// NewUpdater runs the offline step of the framework (a full Brandes pass that
// populates the store with BD[s] for every source and computes the initial
// centrality scores) and returns an Updater ready to consume the update
// stream. The store must be empty and sized for g.N() vertices. The Updater
// takes ownership of g: the caller must not mutate it directly afterwards.
func NewUpdater(g *graph.Graph, store Store) (*Updater, error) {
	if store.NumVertices() != g.N() {
		return nil, fmt.Errorf("incremental: store covers %d vertices, graph has %d", store.NumVertices(), g.N())
	}
	u := &Updater{
		g:     g,
		store: store,
		res:   bc.NewResult(g.N()),
		ws:    NewWorkspace(g.N()),
		rec:   bc.NewSourceState(g.N()),
	}
	state := bc.NewSourceState(g.N())
	var queue []int
	for s := 0; s < g.N(); s++ {
		bc.SingleSource(g, s, state, &queue)
		bc.AccumulateSource(g, s, state, u.res)
		if err := store.Save(s, state); err != nil {
			return nil, fmt.Errorf("incremental: initialising source %d: %w", s, err)
		}
	}
	return u, nil
}

// Graph returns the evolving graph. It must be treated as read-only; all
// mutations must go through Apply.
func (u *Updater) Graph() *graph.Graph { return u.g }

// Result returns the live centrality scores. The returned value is owned by
// the Updater and changes with every Apply.
func (u *Updater) Result() *bc.Result { return u.res }

// VBC returns the current vertex betweenness scores (live slice, do not
// modify).
func (u *Updater) VBC() []float64 { return u.res.VBC }

// EBC returns the current edge betweenness scores (live map, do not modify).
func (u *Updater) EBC() map[graph.Edge]float64 { return u.res.EBC }

// Stats returns the work counters accumulated so far.
func (u *Updater) Stats() Stats { return u.stats }

// Store exposes the underlying per-source store (used by tests and tools).
func (u *Updater) Store() Store { return u.store }

// Apply consumes one update from the stream: it validates it, applies it to
// the graph, updates the per-source betweenness data of every affected source
// and folds the changes into the running centrality scores.
func (u *Updater) Apply(upd graph.Update) error {
	if err := u.validate(upd); err != nil {
		return err
	}
	if !upd.Remove {
		if m := max(upd.U, upd.V); m >= u.g.N() {
			if err := u.growTo(m + 1); err != nil {
				return err
			}
		}
	}
	if err := u.g.Apply(upd); err != nil {
		return err
	}

	acc := &ResultAccumulator{Res: u.res}
	directed := u.g.Directed()
	for s := 0; s < u.g.N(); s++ {
		if err := u.store.LoadDistances(s, &u.distBuf); err != nil {
			return fmt.Errorf("incremental: loading distances of source %d: %w", s, err)
		}
		if !Affected(u.distBuf, upd, directed) {
			u.stats.SourcesSkipped++
			continue
		}
		if err := u.store.Load(s, u.rec); err != nil {
			return fmt.Errorf("incremental: loading source %d: %w", s, err)
		}
		if UpdateSource(u.g, s, upd, u.rec, acc, u.ws) {
			if err := u.store.Save(s, u.rec); err != nil {
				return fmt.Errorf("incremental: saving source %d: %w", s, err)
			}
		}
		u.stats.SourcesUpdated++
	}

	if upd.Remove {
		// The edge no longer exists: its accumulated centrality has been
		// driven to zero by the per-source corrections, drop the entry.
		delete(u.res.EBC, bc.EdgeKey(u.g, upd.U, upd.V))
	}
	u.stats.UpdatesApplied++
	return nil
}

// ApplyAll applies a whole stream of updates in order, stopping at the first
// error. It returns the number of updates applied successfully.
func (u *Updater) ApplyAll(updates []graph.Update) (int, error) {
	for i, upd := range updates {
		if err := u.Apply(upd); err != nil {
			return i, fmt.Errorf("incremental: update %d (%v): %w", i, upd, err)
		}
	}
	return len(updates), nil
}

func (u *Updater) validate(upd graph.Update) error {
	if upd.U == upd.V {
		return graph.ErrSelfLoop
	}
	if upd.U < 0 || upd.V < 0 {
		return fmt.Errorf("%w: negative vertex in %v", graph.ErrVertexRange, upd)
	}
	if upd.Remove {
		if !u.g.HasEdge(upd.U, upd.V) {
			return fmt.Errorf("%w: %v", graph.ErrMissingEdge, upd.Edge())
		}
		return nil
	}
	if upd.U < u.g.N() && upd.V < u.g.N() && u.g.HasEdge(upd.U, upd.V) {
		return fmt.Errorf("%w: %v", graph.ErrDuplicateEdge, upd.Edge())
	}
	return nil
}

// growTo extends the graph, the store and the result to cover n vertices.
// New vertices join with zero centrality and, as sources, see only themselves
// (Section 3.1, handling of new vertices).
func (u *Updater) growTo(n int) error {
	old := u.g.N()
	for u.g.N() < n {
		u.g.AddVertex()
	}
	if err := u.store.Grow(n); err != nil {
		return fmt.Errorf("incremental: growing store to %d vertices: %w", n, err)
	}
	for s := old; s < n; s++ {
		if err := u.store.AddSource(s); err != nil {
			return fmt.Errorf("incremental: adding source %d: %w", s, err)
		}
	}
	for len(u.res.VBC) < n {
		u.res.VBC = append(u.res.VBC, 0)
	}
	u.ws.grow(n)
	return nil
}
