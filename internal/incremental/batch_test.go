package incremental

import (
	"fmt"
	"math/rand"
	"testing"

	"streambc/internal/bc"
	"streambc/internal/bdstore"
	"streambc/internal/graph"
)

// countingStore wraps a Store and counts, per source, the full-record Load
// and Save calls and the LoadDistances probes — the store traffic a batch
// must amortise.
type countingStore struct {
	Store
	loads  map[int]int
	saves  map[int]int
	probes map[int]int
}

func newCountingStore(s Store) *countingStore {
	return &countingStore{Store: s, loads: map[int]int{}, saves: map[int]int{}, probes: map[int]int{}}
}

func (c *countingStore) Load(s int, rec *bc.SourceState) error {
	c.loads[s]++
	return c.Store.Load(s, rec)
}

func (c *countingStore) Save(s int, rec *bc.SourceState) error {
	c.saves[s]++
	return c.Store.Save(s, rec)
}

func (c *countingStore) LoadDistances(s int, dist *[]int32) error {
	c.probes[s]++
	return c.Store.LoadDistances(s, dist)
}

func (c *countingStore) reset() {
	clear(c.loads)
	clear(c.saves)
	clear(c.probes)
}

// mixedBatchStream builds a well-formed stream of adds and removals against
// g without mutating it, including repeated churn on the same edges so that
// batches genuinely hit the same sources multiple times.
func mixedBatchStream(t *testing.T, g *graph.Graph, pairs int, seed int64) []graph.Update {
	t.Helper()
	sim := g.Clone()
	rng := rand.New(rand.NewSource(seed))
	stream := make([]graph.Update, 0, 2*pairs)
	attempts := 0
	for len(stream) < 2*pairs {
		if attempts++; attempts > pairs*1000 {
			t.Fatal("unable to build stream")
		}
		u, v := rng.Intn(sim.N()), rng.Intn(sim.N())
		if u == v || sim.HasEdge(u, v) {
			continue
		}
		if err := sim.AddEdge(u, v); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
		// Add, then remove the same edge later in the stream: a source
		// affected by both must still be loaded and saved only once per
		// batch containing both.
		stream = append(stream, graph.Addition(u, v), graph.Removal(u, v))
		if err := sim.RemoveEdge(u, v); err != nil {
			t.Fatalf("RemoveEdge: %v", err)
		}
	}
	return stream
}

// TestApplyBatchStoreIO is the instrumented-store test: within one batch,
// every affected source is loaded at most once and saved at most once, on
// both the in-memory and the on-disk store.
func TestApplyBatchStoreIO(t *testing.T) {
	base := randomConnectedGraph(t, 24, 30, 61, false)
	stream := mixedBatchStream(t, base, 12, 62)

	stores := map[string]func(t *testing.T, n int) Store{
		"mem": func(t *testing.T, n int) Store { return memStore(t, n) },
		"disk-v1": func(t *testing.T, n int) Store {
			s, err := bdstore.OpenV1(t.TempDir()+"/bd.bin", n, nil)
			if err != nil {
				t.Fatalf("OpenV1: %v", err)
			}
			return s
		},
		"sharded": func(t *testing.T, n int) Store {
			return shardedStore(t, n, bdstore.Options{SegmentRecords: 4})
		},
	}
	for name, mk := range stores {
		g := base.Clone()
		cs := newCountingStore(mk(t, g.N()))
		u, err := NewUpdater(g, cs)
		if err != nil {
			t.Fatalf("%s: NewUpdater: %v", name, err)
		}
		cs.reset() // drop the offline-initialisation saves

		const batch = 8
		for off := 0; off < len(stream); off += batch {
			end := min(off+batch, len(stream))
			if n, err := u.ApplyBatch(stream[off:end]); err != nil || n != end-off {
				t.Fatalf("%s: ApplyBatch(%d:%d) = (%d, %v)", name, off, end, n, err)
			}
			for s, c := range cs.loads {
				if c > 1 {
					t.Errorf("%s: batch %d: source %d loaded %d times, want <= 1", name, off/batch, s, c)
				}
			}
			for s, c := range cs.saves {
				if c > 1 {
					t.Errorf("%s: batch %d: source %d saved %d times, want <= 1", name, off/batch, s, c)
				}
			}
			for s, c := range cs.probes {
				if c > 1 {
					t.Errorf("%s: batch %d: source %d probed %d times, want <= 1", name, off/batch, s, c)
				}
			}
			cs.reset()
		}
		checkAgainstBrandes(t, u, fmt.Sprintf("%s instrumented batch replay", name))
		if err := cs.Close(); err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
	}
}

// TestUpdaterApplyBatchBitIdentical replays the same stream per-update and
// batched on the sequential Updater and requires exactly equal scores and
// stored records.
func TestUpdaterApplyBatchBitIdentical(t *testing.T) {
	for _, directed := range []bool{false, true} {
		base := randomConnectedGraph(t, 22, 28, 71, directed)
		stream := mixedBatchStream(t, base, 10, 72)
		// Growth across a batch boundary and inside a batch.
		n := base.N()
		stream = append(stream, graph.Addition(2, n), graph.Addition(n, n+1), graph.Removal(2, n))

		ref := newMemUpdater(t, base.Clone())
		for i, upd := range stream {
			if err := ref.Apply(upd); err != nil {
				t.Fatalf("directed=%v: ref apply %d (%v): %v", directed, i, upd, err)
			}
		}

		for _, batch := range []int{2, 7, len(stream)} {
			u := newMemUpdater(t, base.Clone())
			for off := 0; off < len(stream); off += batch {
				end := min(off+batch, len(stream))
				if n, err := u.ApplyBatch(stream[off:end]); err != nil || n != end-off {
					t.Fatalf("directed=%v batch=%d: ApplyBatch(%d:%d) = (%d, %v)", directed, batch, off, end, n, err)
				}
			}
			ctx := fmt.Sprintf("directed=%v batch=%d", directed, batch)
			for v := range ref.VBC() {
				if u.VBC()[v] != ref.VBC()[v] {
					t.Fatalf("%s: VBC[%d] = %v, want exactly %v", ctx, v, u.VBC()[v], ref.VBC()[v])
				}
			}
			if len(u.EBC()) != len(ref.EBC()) {
				t.Fatalf("%s: EBC size %d, want %d", ctx, len(u.EBC()), len(ref.EBC()))
			}
			for k, want := range ref.EBC() {
				if got := u.EBC()[k]; got != want {
					t.Fatalf("%s: EBC[%v] = %v, want exactly %v", ctx, k, got, want)
				}
			}
			// Stored per-source records must round-trip identically too.
			want := bc.NewSourceState(0)
			got := bc.NewSourceState(0)
			for s := 0; s < ref.Graph().N(); s++ {
				if err := ref.Store().Load(s, want); err != nil {
					t.Fatalf("%s: ref load %d: %v", ctx, s, err)
				}
				if err := u.Store().Load(s, got); err != nil {
					t.Fatalf("%s: load %d: %v", ctx, s, err)
				}
				for v := range want.Dist {
					if got.Dist[v] != want.Dist[v] || got.Sigma[v] != want.Sigma[v] || got.Delta[v] != want.Delta[v] {
						t.Fatalf("%s: BD[%d] differs at vertex %d", ctx, s, v)
					}
				}
			}
			st := u.Stats()
			if st.UpdatesApplied != len(stream) {
				t.Fatalf("%s: UpdatesApplied = %d, want %d", ctx, st.UpdatesApplied, len(stream))
			}
			if ref.Stats() != st {
				t.Fatalf("%s: stats %+v, want %+v", ctx, st, ref.Stats())
			}
		}
	}
}

// TestPredUpdaterBatch keeps the MP variant honest on the batched path: its
// predecessor lists must stay in sync when updates arrive via ApplyBatch.
func TestPredUpdaterBatch(t *testing.T) {
	base := randomConnectedGraph(t, 16, 20, 81, false)
	stream := mixedBatchStream(t, base, 8, 82)

	p, err := NewPredUpdater(base.Clone(), memStore(t, base.N()))
	if err != nil {
		t.Fatalf("NewPredUpdater: %v", err)
	}
	if n, err := p.ApplyBatch(stream); err != nil || n != len(stream) {
		t.Fatalf("ApplyBatch = (%d, %v)", n, err)
	}
	checkAgainstBrandes(t, p.Updater, "pred updater batch")

	// Every predecessor list must match a fresh scan of the final graph.
	g := p.Graph()
	rec := bc.NewSourceState(0)
	for s := 0; s < g.N(); s++ {
		if err := p.Store().Load(s, rec); err != nil {
			t.Fatalf("load %d: %v", s, err)
		}
		for v := 0; v < g.N(); v++ {
			want := buildPredList(g, rec, v)
			got := p.Predecessors(s, v)
			if len(want) != len(got) {
				t.Fatalf("preds[%d][%d] = %v, want %v", s, v, got, want)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("preds[%d][%d] = %v, want %v", s, v, got, want)
				}
			}
		}
	}
}
