package incremental

import (
	"fmt"
	"math/rand"
	"testing"

	"streambc/internal/bc"
	"streambc/internal/graph"
)

func newPredUpdater(t *testing.T, g *graph.Graph) *PredUpdater {
	t.Helper()
	u, err := NewPredUpdater(g, memStore(t, g.N()))
	if err != nil {
		t.Fatalf("NewPredUpdater: %v", err)
	}
	return u
}

// checkPredLists verifies that every stored predecessor list matches a fresh
// neighbour scan on the current graph.
func checkPredLists(t *testing.T, u *PredUpdater, context string) {
	t.Helper()
	g := u.Graph()
	state := bc.NewSourceState(g.N())
	var queue []int
	for s := 0; s < g.N(); s++ {
		bc.SingleSource(g, s, state, &queue)
		for v := 0; v < g.N(); v++ {
			want := map[int32]bool{}
			for _, y := range g.InNeighbors(v) {
				if state.Dist[y] != bc.Unreachable && state.Dist[y]+1 == state.Dist[v] {
					want[int32(y)] = true
				}
			}
			got := u.Predecessors(s, v)
			if len(got) != len(want) {
				t.Fatalf("%s: preds[%d][%d] = %v, want %d entries", context, s, v, got, len(want))
			}
			for _, y := range got {
				if !want[y] {
					t.Fatalf("%s: preds[%d][%d] contains %d which is not a predecessor", context, s, v, y)
				}
			}
		}
	}
}

func TestPredUpdaterMatchesBrandesAndKeepsLists(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed * 41))
		n := 12
		g := randomConnectedGraph(t, n, 8, seed, false)
		u := newPredUpdater(t, g.Clone())
		checkPredLists(t, u, "initial")

		for step := 0; step < 12; step++ {
			if rng.Intn(2) == 0 {
				a, b := rng.Intn(n), rng.Intn(n)
				if a == b || u.Graph().HasEdge(a, b) {
					continue
				}
				if err := u.Apply(graph.Addition(a, b)); err != nil {
					t.Fatalf("add: %v", err)
				}
			} else {
				edges := u.Graph().Edges()
				if len(edges) == 0 {
					continue
				}
				e := edges[rng.Intn(len(edges))]
				if err := u.Apply(graph.Removal(e.U, e.V)); err != nil {
					t.Fatalf("remove: %v", err)
				}
			}
			checkAgainstBrandes(t, u.Updater, fmt.Sprintf("pred updater seed %d step %d", seed, step))
			checkPredLists(t, u, fmt.Sprintf("pred lists seed %d step %d", seed, step))
		}
	}
}

func TestPredUpdaterGrowth(t *testing.T) {
	g := graph.New(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	u := newPredUpdater(t, g)
	if err := u.Apply(graph.Addition(3, 5)); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	checkAgainstBrandes(t, u.Updater, "pred updater growth")
	checkPredLists(t, u, "pred lists growth")
	if u.PredecessorListBytes() == 0 {
		t.Fatal("expected non-zero predecessor list memory")
	}
}

func TestPredUpdaterErrors(t *testing.T) {
	g := graph.New(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	u := newPredUpdater(t, g)
	if err := u.Apply(graph.Addition(0, 0)); err == nil {
		t.Fatal("self loop accepted")
	}
	if err := u.Apply(graph.Removal(1, 2)); err == nil {
		t.Fatal("missing edge removal accepted")
	}
}
