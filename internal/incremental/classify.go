package incremental

import (
	"streambc/internal/bc"
	"streambc/internal/graph"
)

// UpdateKind describes how an update affects the shortest-path DAG of one
// source, following the case analysis of Section 3.1.
type UpdateKind int

const (
	// KindSkip: the update cannot change any shortest path from this source
	// (dd = 0, Proposition 3.1, or the endpoints are unreachable).
	KindSkip UpdateKind = iota
	// KindAddition: a new edge creates or shortens paths below uL.
	KindAddition
	// KindRemoval: an existing shortest-path DAG edge disappears.
	KindRemoval
)

// Classify determines, from the old distances of the endpoints, whether the
// update affects source s and which endpoint plays the role of uH (closer to
// the source) and uL (farther). The update must already be applied to the
// graph; dist holds the distances of the old graph.
func Classify(dist []int32, upd graph.Update, directed bool) (uH, uL int, kind UpdateKind) {
	return classifyAt(distOf(dist, upd.U), distOf(dist, upd.V), upd, directed)
}

// classifyAt is Classify on pre-fetched endpoint distances: d1 and d2 are the
// old distances of upd.U and upd.V. The probe plane uses it to classify a
// source from two contiguous reads instead of a full distance column.
func classifyAt(d1, d2 int32, upd graph.Update, directed bool) (uH, uL int, kind UpdateKind) {
	u1, u2 := upd.U, upd.V

	if directed {
		// A directed edge u1->u2 only carries paths entering at u1.
		uH, uL = u1, u2
	} else if closer(d2, d1) {
		uH, uL = u2, u1
		d1, d2 = d2, d1
	} else {
		uH, uL = u1, u2
	}
	dH, dL := d1, d2

	if upd.Remove {
		// The removed edge mattered only if it was a shortest-path DAG edge.
		if dH == bc.Unreachable || dL != dH+1 {
			return uH, uL, KindSkip
		}
		return uH, uL, KindRemoval
	}
	// Addition: paths can only improve through uH, and only if uL is farther
	// than dH+1 (structural change), exactly dH+1 (new shortest paths), or
	// unreachable (possibly an entire component becomes reachable).
	if dH == bc.Unreachable {
		return uH, uL, KindSkip
	}
	if dL != bc.Unreachable && dL <= dH {
		return uH, uL, KindSkip
	}
	return uH, uL, KindAddition
}

// Affected reports whether the update can modify the betweenness data of a
// source whose old distance column is dist. It mirrors Classify and is used
// as the cheap skip test before loading the full per-source record
// (Section 5.1: "we check the distance for the endpoints uH and uL").
func Affected(dist []int32, upd graph.Update, directed bool) bool {
	_, _, kind := Classify(dist, upd, directed)
	return kind != KindSkip
}

func distOf(dist []int32, v int) int32 {
	if v < 0 || v >= len(dist) {
		return bc.Unreachable
	}
	return dist[v]
}

// closer reports whether distance a is strictly closer to the source than b,
// treating Unreachable as infinitely far.
func closer(a, b int32) bool {
	if a == bc.Unreachable {
		return false
	}
	if b == bc.Unreachable {
		return true
	}
	return a < b
}
