package incremental

import (
	"fmt"
	"math/rand"
	"testing"

	"streambc/internal/graph"
)

// TestStressRandomEvolution runs long random evolution histories on a variety
// of graph shapes and checks the updater against a full recomputation after
// every single update. It is the heavyweight safety net behind the shorter
// differential tests.
func TestStressRandomEvolution(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in short mode")
	}
	type config struct {
		name     string
		n        int
		extra    int
		directed bool
		steps    int
		removeP  float64
	}
	configs := []config{
		{"sparse-undirected", 18, 4, false, 40, 0.4},
		{"dense-undirected", 14, 40, false, 40, 0.5},
		{"tree-heavy", 22, 0, false, 40, 0.35},
		{"sparse-directed", 15, 10, true, 35, 0.4},
		{"dense-directed", 12, 40, true, 35, 0.5},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				rng := rand.New(rand.NewSource(seed * 7919))
				g := randomConnectedGraph(t, cfg.n, cfg.extra, seed, cfg.directed)
				u := newMemUpdater(t, g.Clone())
				for step := 0; step < cfg.steps; step++ {
					if rng.Float64() < cfg.removeP && u.Graph().M() > 0 {
						edges := u.Graph().Edges()
						e := edges[rng.Intn(len(edges))]
						if err := u.Apply(graph.Removal(e.U, e.V)); err != nil {
							t.Fatalf("%s seed %d step %d remove %v: %v", cfg.name, seed, step, e, err)
						}
					} else {
						a, b := rng.Intn(cfg.n), rng.Intn(cfg.n)
						if a == b || u.Graph().HasEdge(a, b) {
							continue
						}
						if err := u.Apply(graph.Addition(a, b)); err != nil {
							t.Fatalf("%s seed %d step %d add (%d,%d): %v", cfg.name, seed, step, a, b, err)
						}
					}
					checkAgainstBrandes(t, u, fmt.Sprintf("%s seed %d step %d", cfg.name, seed, step))
				}
			}
		})
	}
}

// TestStressGrowthFromEmpty starts from an edgeless graph and grows it edge by
// edge, including brand-new vertices, then tears it back down.
func TestStressGrowthFromEmpty(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in short mode")
	}
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed * 3331))
		g := graph.New(3)
		u := newMemUpdater(t, g)
		var present []graph.Edge
		for step := 0; step < 60; step++ {
			n := u.Graph().N()
			grow := rng.Intn(6) == 0
			if grow || len(present) == 0 || rng.Intn(3) != 0 {
				a := rng.Intn(n)
				b := rng.Intn(n)
				if grow {
					b = n // brand new vertex
				}
				if a == b || (b < n && u.Graph().HasEdge(a, b)) {
					continue
				}
				if err := u.Apply(graph.Addition(a, b)); err != nil {
					t.Fatalf("seed %d step %d add (%d,%d): %v", seed, step, a, b, err)
				}
				present = append(present, graph.Edge{U: a, V: b})
			} else {
				i := rng.Intn(len(present))
				e := present[i]
				present = append(present[:i], present[i+1:]...)
				if err := u.Apply(graph.Removal(e.U, e.V)); err != nil {
					t.Fatalf("seed %d step %d remove %v: %v", seed, step, e, err)
				}
			}
			checkAgainstBrandes(t, u, fmt.Sprintf("growth seed %d step %d", seed, step))
		}
	}
}
