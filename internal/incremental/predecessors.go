package incremental

import (
	"fmt"

	"streambc/internal/bc"
	"streambc/internal/graph"
)

// This file implements the "MP" configuration used as a baseline in Figure 5
// of the paper: the same incremental algorithm, but with explicit predecessor
// lists kept per source and per vertex, exactly like the original Brandes
// formulation. The lists carry no information that the neighbour scan cannot
// recover (which is why the paper removes them), so the variant's only effect
// is the extra memory for the lists and the extra time spent rebuilding them
// whenever the data of a vertex changes — the overhead the MO configuration
// eliminates.

// PredUpdater is an Updater that additionally maintains per-source
// predecessor lists. It only supports in-memory operation (as in the paper,
// where the predecessor-list variant exists only for the in-memory
// configuration).
type PredUpdater struct {
	*Updater
	// preds[s][v] lists the shortest-path predecessors of v w.r.t. source s.
	preds [][][]int32
}

// NewPredUpdater builds the MP variant of the updater on top of the given
// store (normally an in-memory store). The per-source update loop itself is
// inherited from the Updater (and its SourceProcessor); the MP overhead is
// attached as the processor's OnSourceUpdated hook, which rebuilds the
// predecessor list of every vertex whose record changed.
func NewPredUpdater(g *graph.Graph, store Store) (*PredUpdater, error) {
	u, err := NewUpdater(g, store)
	if err != nil {
		return nil, err
	}
	p := &PredUpdater{Updater: u}
	p.preds = make([][][]int32, g.N())
	rec := bc.NewSourceState(g.N())
	for s := 0; s < g.N(); s++ {
		if err := store.Load(s, rec); err != nil {
			return nil, fmt.Errorf("incremental: loading source %d for predecessor lists: %w", s, err)
		}
		p.preds[s] = make([][]int32, g.N())
		for v := 0; v < g.N(); v++ {
			p.preds[s][v] = buildPredList(g, rec, v)
		}
	}
	u.proc.OnSourceUpdated = func(s int, rec *bc.SourceState, dirty []int) {
		// New vertices join as isolated sources with empty lists; growing
		// lazily here keeps Apply, ApplyBatch and ApplyAll all in sync.
		if n := len(rec.Dist); len(p.preds) < n {
			p.growPreds(n)
		}
		for _, v := range dirty {
			p.preds[s][v] = buildPredList(p.g, rec, v)
		}
	}
	return p, nil
}

// Predecessors returns the predecessor list of vertex v w.r.t. source s.
func (p *PredUpdater) Predecessors(s, v int) []int32 { return p.preds[s][v] }

// PredecessorListBytes returns the approximate extra memory consumed by the
// predecessor lists (the space the MO configuration saves).
func (p *PredUpdater) PredecessorListBytes() int64 {
	var total int64
	for _, bySource := range p.preds {
		for _, list := range bySource {
			total += int64(len(list)) * 4
		}
	}
	return total
}

func (p *PredUpdater) growPreds(n int) {
	for s := range p.preds {
		for len(p.preds[s]) < n {
			p.preds[s] = append(p.preds[s], nil)
		}
	}
	for len(p.preds) < n {
		lists := make([][]int32, n)
		p.preds = append(p.preds, lists)
	}
}

// buildPredList scans the in-neighbours of v and returns those one level
// closer to the source.
func buildPredList(g *graph.Graph, rec *bc.SourceState, v int) []int32 {
	if rec.Dist[v] == bc.Unreachable {
		return nil
	}
	var list []int32
	for _, y := range g.In(v) {
		if rec.Dist[y] != bc.Unreachable && rec.Dist[y]+1 == rec.Dist[v] {
			list = append(list, y)
		}
	}
	return list
}
