package incremental

import (
	"testing"

	"streambc/internal/bc"
	"streambc/internal/bdstore"
	"streambc/internal/gen"
	"streambc/internal/graph"
)

// sampledTestGraph builds a connected graph and a mixed update stream for the
// sampled-mode tests.
func sampledTestGraph(t *testing.T, n int, seed int64) (*graph.Graph, []graph.Update) {
	t.Helper()
	g := gen.Connected(gen.HolmeKim(n, 3, 0.5, seed))
	adds, err := gen.RandomAdditions(g, 10, seed+1)
	if err != nil {
		t.Fatalf("RandomAdditions: %v", err)
	}
	rems, err := gen.RandomRemovals(g, 6, seed+2)
	if err != nil {
		t.Fatalf("RandomRemovals: %v", err)
	}
	var stream []graph.Update
	for i := range adds {
		stream = append(stream, adds[i])
		if i < len(rems) {
			stream = append(stream, rems[i])
		}
	}
	return g, stream
}

// TestSampledUpdaterMatchesSampledBrandes replays a mixed stream on a sampled
// updater and checks the scores against a from-scratch sampled Brandes pass
// over the final graph: the incremental sampled estimates must equal the
// static sampled estimates (they share sample and scale, so they agree up to
// float accumulation order).
func TestSampledUpdaterMatchesSampledBrandes(t *testing.T) {
	g, stream := sampledTestGraph(t, 60, 3)
	n := g.N()
	sources := bc.SampleSources(n, n/3, 7)
	scale := float64(n) / float64(len(sources))

	u, err := NewSampledUpdater(g.Clone(), bdstore.NewMemStoreForSources(n, sources), scale)
	if err != nil {
		t.Fatalf("NewSampledUpdater: %v", err)
	}
	if got := u.Scale(); got != scale {
		t.Fatalf("Scale = %g, want %g", got, scale)
	}
	for i, upd := range stream {
		if err := u.Apply(upd); err != nil {
			t.Fatalf("update %d (%v): %v", i, upd, err)
		}
	}

	want := bc.ComputeSampled(u.Graph(), sources, scale)
	for v := range want.VBC {
		if !approx(u.VBC()[v], want.VBC[v]) {
			t.Fatalf("VBC[%d] = %g, want %g", v, u.VBC()[v], want.VBC[v])
		}
	}
	for e, x := range want.EBC {
		if !approx(u.EBC()[e], x) {
			t.Fatalf("EBC[%v] = %g, want %g", e, u.EBC()[e], x)
		}
	}
	// Every update probes exactly the sampled sources, nothing more.
	st := u.Stats()
	if got := st.SourcesSkipped + st.SourcesUpdated; got != int64(len(sources)*len(stream)) {
		t.Fatalf("probed %d source iterations, want %d", got, len(sources)*len(stream))
	}
}

// TestSampledUpdaterBatchMatchesSequential checks that the batched execution
// path of a sampled updater is bit-identical to sequential Apply.
func TestSampledUpdaterBatchMatchesSequential(t *testing.T) {
	g, stream := sampledTestGraph(t, 50, 11)
	n := g.N()
	sources := bc.SampleSources(n, n/4, 3)

	seq, err := NewSampledUpdater(g.Clone(), bdstore.NewMemStoreForSources(n, sources), 0)
	if err != nil {
		t.Fatalf("NewSampledUpdater: %v", err)
	}
	for i, upd := range stream {
		if err := seq.Apply(upd); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
	}

	bat, err := NewSampledUpdater(g.Clone(), bdstore.NewMemStoreForSources(n, sources), 0)
	if err != nil {
		t.Fatalf("NewSampledUpdater: %v", err)
	}
	if _, err := bat.ApplyBatch(stream); err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}

	for v := range seq.VBC() {
		if seq.VBC()[v] != bat.VBC()[v] {
			t.Fatalf("VBC[%d]: sequential %v != batched %v", v, seq.VBC()[v], bat.VBC()[v])
		}
	}
	for e, x := range seq.EBC() {
		if bat.EBC()[e] != x {
			t.Fatalf("EBC[%v]: sequential %v != batched %v", e, x, bat.EBC()[e])
		}
	}
}

// TestSampledUpdaterFullSampleIsExact checks that a "sample" of every vertex
// with scale 1 reproduces the exact updater bit for bit.
func TestSampledUpdaterFullSampleIsExact(t *testing.T) {
	g, stream := sampledTestGraph(t, 40, 5)
	n := g.N()

	exact, err := NewUpdater(g.Clone(), memStore(t, n))
	if err != nil {
		t.Fatalf("NewUpdater: %v", err)
	}
	full, err := NewSampledUpdater(g.Clone(), bdstore.NewMemStoreForSources(n, bc.SampleSources(n, n, 1)), 0)
	if err != nil {
		t.Fatalf("NewSampledUpdater: %v", err)
	}
	if full.Scale() != 1 {
		t.Fatalf("full-sample scale = %g, want 1", full.Scale())
	}
	for i, upd := range stream {
		if err := exact.Apply(upd); err != nil {
			t.Fatalf("exact update %d: %v", i, err)
		}
		if err := full.Apply(upd); err != nil {
			t.Fatalf("sampled update %d: %v", i, err)
		}
	}
	for v := range exact.VBC() {
		if exact.VBC()[v] != full.VBC()[v] {
			t.Fatalf("VBC[%d]: exact %v != full-sample %v", v, exact.VBC()[v], full.VBC()[v])
		}
	}
	for e, x := range exact.EBC() {
		if full.EBC()[e] != x {
			t.Fatalf("EBC[%v]: exact %v != full-sample %v", e, x, full.EBC()[e])
		}
	}
}

// TestSampledUpdaterGrowthKeepsSampleFixed checks that vertices arriving in
// the stream grow the records but are not promoted to sources.
func TestSampledUpdaterGrowthKeepsSampleFixed(t *testing.T) {
	g := gen.Connected(gen.ErdosRenyi(20, 40, 1))
	n := g.N()
	sources := bc.SampleSources(n, 5, 2)
	scale := float64(n) / 5
	u, err := NewSampledUpdater(g.Clone(), bdstore.NewMemStoreForSources(n, sources), scale)
	if err != nil {
		t.Fatalf("NewSampledUpdater: %v", err)
	}
	if err := u.Apply(graph.Addition(0, n+2)); err != nil {
		t.Fatalf("growth update: %v", err)
	}
	if got := u.Graph().N(); got != n+3 {
		t.Fatalf("graph grew to %d vertices, want %d", got, n+3)
	}
	got := u.Store().Sources()
	if len(got) != len(sources) {
		t.Fatalf("sample changed on growth: %v -> %v", sources, got)
	}
	for i := range got {
		if got[i] != sources[i] {
			t.Fatalf("sample changed on growth: %v -> %v", sources, got)
		}
	}
	// The incremental estimate still matches the static sampled estimate.
	want := bc.ComputeSampled(u.Graph(), sources, scale)
	for v := range want.VBC {
		if !approx(u.VBC()[v], want.VBC[v]) {
			t.Fatalf("VBC[%d] = %g, want %g", v, u.VBC()[v], want.VBC[v])
		}
	}
}
